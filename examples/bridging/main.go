// Bridging-fault study on the 4x4 multiplier (the paper's §2.2 and §4.2
// pipeline in one program):
//
//	go run ./examples/bridging
//
// It enumerates all potentially detectable non-feedback bridging faults
// (screening out feedback bridges and trivially undetectable pairs),
// samples them with the layout-distance-weighted exponential distribution,
// computes exact detectabilities for wired-AND and wired-OR behavior, and
// classifies which bridges degenerate to double stuck-at faults.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/report"
)

func main() {
	c := circuits.MustGet("c95s")
	e, err := diffprop.New(c, nil)
	if err != nil {
		log.Fatal(err)
	}
	w := e.Circuit
	fmt.Println("circuit:", w)

	for _, kind := range []faults.BridgeKind{faults.WiredAND, faults.WiredOR} {
		// Fault population and screening statistics.
		all := faults.AllNFBFs(w, kind)
		n := w.NumNets()
		fmt.Printf("\n%v population: %d of %d net pairs (%d feedback pairs screened)\n",
			kind, len(all), n*(n-1)/2, faults.CountFeedbackPairs(w))

		// Layout-weighted sample, exactly as the paper selects its ~1000
		// faults for the larger circuits.
		const sampleSize, theta, seed = 300, 0.3, 1990
		set := layout.SampleNFBFs(w, all, sampleSize, theta, seed)
		p := layout.Place(w)
		norm := layout.MaxDistance(p, all)
		fmt.Printf("sampled %d faults; mean normalized wire distance %.3f (population %.3f)\n",
			len(set), layout.MeanDistance(p, set, norm), layout.MeanDistance(p, all, norm))

		// Exact analysis.
		study := analysis.RunBridging(e, set, kind, len(all), len(set) < len(all))
		fmt.Printf("detectable: %.1f%%   mean detectability: %.4f   double-stuck-at behavior: %.1f%%\n",
			100*study.CoverageRate(), study.MeanDetectable(), 100*study.StuckAtProportion())

		// Detection probability histogram (the paper's Figure 6).
		fig := report.Figure{
			ID:     "bridging-hist",
			Title:  fmt.Sprintf("%v detection probabilities on %s", kind, w.Name),
			XLabel: "detection probability",
			YLabel: "fault proportion",
			Series: []report.Series{report.HistogramSeries(kind.String(),
				analysis.Histogram(study.Detectabilities(), 10))},
		}
		fmt.Println()
		fmt.Print(fig.Text())
	}
}
