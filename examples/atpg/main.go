// ATPG demonstration: Difference Propagation as a complete deterministic
// test generator (the role §1 and §3 of the paper position it in), with
// the Millman–McCluskey style follow-up the paper motivates its bridging
// study with.
//
//	go run ./examples/atpg
//
// The program generates a test set for every collapsed checkpoint
// stuck-at fault of the 74181 ALU, compacts it by greedy set cover,
// verifies 100% coverage of testable faults with an independent fault
// simulator, and then measures how much of the bridging fault population
// the stuck-at set happens to catch.
package main

import (
	"fmt"
	"log"

	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/simulate"
)

func main() {
	c := circuits.MustGet("alu181")
	e, err := diffprop.New(c, nil)
	if err != nil {
		log.Fatal(err)
	}
	w := e.Circuit
	fs := faults.CheckpointStuckAts(w)
	fmt.Printf("%s: %d collapsed checkpoint stuck-at faults\n", w.Name, len(fs))

	// Generate with fault dropping; redundant faults are *proven*
	// redundant (empty complete test set), never aborted.
	gen := atpg.GenerateStuckAt(e, fs, 1990)
	fmt.Printf("generated %d vectors, proved %d faults redundant\n",
		len(gen.Vectors), len(gen.Redundant))
	for _, f := range gen.Redundant {
		fmt.Println("  redundant:", f.Describe(w))
	}

	// Greedy set-cover compaction.
	compact := atpg.Compact(e, fs, gen.Vectors)
	fmt.Printf("compacted to %d vectors\n", len(compact))
	for _, v := range compact {
		line := make([]byte, len(v))
		for i, b := range v {
			line[i] = '0'
			if b {
				line[i] = '1'
			}
		}
		fmt.Println("  ", string(line))
	}

	// Independent verification with the parallel-pattern fault simulator.
	p := simulate.FromVectors(len(w.Inputs), compact)
	cov := simulate.CoverageStuckAt(w, fs, p)
	fmt.Printf("simulator-verified stuck-at coverage: %d/%d (%.1f%%)\n",
		cov.Detected, cov.Total, 100*cov.Coverage())

	// Millman–McCluskey: how many bridging faults does the stuck-at test
	// set detect for free?
	for _, kind := range []faults.BridgeKind{faults.WiredAND, faults.WiredOR} {
		bs := faults.AllNFBFs(w, kind)
		bcov := simulate.CoverageBridging(w, bs, p)
		fmt.Printf("%v coverage of the same test set: %d/%d (%.1f%%)\n",
			kind, bcov.Detected, bcov.Total, 100*bcov.Coverage())
	}
}
