// Fault diagnosis with a Difference-Propagation-built dictionary:
//
//	go run ./examples/diagnose
//
// The program generates a complete stuck-at test set for the 4x4
// multiplier, builds a full-response fault dictionary directly from the
// per-output difference functions (no fault simulation needed), then
// plays tester: it injects a hidden stuck-at fault, observes the failing
// (vector, output) pairs, and looks the culprit up. Finally it injects a
// bridging defect — the paper's §4.2 point that stuck-at models often fit
// bridging defects poorly appears as an observed response matching no
// dictionary entry, recovered only approximately by nearest-signature
// ranking.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/diagnose"
	"repro/internal/diffprop"
	"repro/internal/faults"
)

func main() {
	c := circuits.MustGet("c95s")
	e, err := diffprop.New(c, nil)
	if err != nil {
		log.Fatal(err)
	}
	w := e.Circuit

	// Test set + dictionary.
	fs := faults.CheckpointStuckAts(w)
	gen := atpg.GenerateStuckAt(e, fs, 1990)
	dict := diagnose.Build(e, fs, gen.Vectors)
	fmt.Println("dictionary:", dict.Resolution())

	// Scenario 1: a hidden stuck-at defect.
	rng := rand.New(rand.NewSource(7))
	hidden := fs[rng.Intn(len(fs))]
	fmt.Println("\ninjecting hidden stuck-at fault:", hidden.Describe(w))
	obs := diagnose.ObserveStuckAt(w, hidden, gen.Vectors)
	for _, cand := range dict.Diagnose(obs) {
		fmt.Println("  exact-match candidate:", cand.Fault.Describe(w))
	}

	// Scenario 2: a bridging defect diagnosed against the stuck-at
	// dictionary.
	bs := faults.AllNFBFs(w, faults.WiredAND)
	bridge := bs[rng.Intn(len(bs))]
	fmt.Println("\ninjecting bridging defect:", bridge.Describe(w))
	bobs := diagnose.ObserveBridging(w, bridge, gen.Vectors)
	exact := dict.Diagnose(bobs)
	if len(exact) == 0 {
		fmt.Println("  no stuck-at signature matches — the defect is outside the fault model")
		fmt.Println("  nearest stuck-at hypotheses by response distance:")
		for _, cand := range dict.Rank(bobs, 3) {
			fmt.Printf("    %-22s distance %d\n", cand.Fault.Describe(w), cand.Distance)
		}
	} else {
		fmt.Println("  bridging defect masquerades exactly as:")
		for _, cand := range exact {
			fmt.Println("   ", cand.Fault.Describe(w))
		}
	}
}
