// Quickstart: run exact Difference Propagation on one circuit and one
// fault, end to end.
//
//	go run ./examples/quickstart
//
// It loads the classic C17 benchmark, analyzes the stuck-at-0 fault on
// primary input "3", and prints the complete test set (every input vector
// that detects the fault), the exact detection probability, and the
// syndrome-based upper bound from the paper's §4.1.
package main

import (
	"fmt"
	"log"

	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
)

func main() {
	// 1. Pick a circuit from the built-in catalog (or parse your own
	//    .bench file with netlist.ParseBench).
	c := circuits.MustGet("c17")
	fmt.Println("circuit:", c)

	// 2. Build the Difference Propagation engine. It decomposes the
	//    circuit to two-input gates and constructs the good function of
	//    every net as an OBDD.
	e, err := diffprop.New(c, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Describe a fault in the engine's working circuit: primary input
	//    "3" stuck at 0.
	w := e.Circuit
	f := faults.StuckAt{Net: w.NetByName("3"), Gate: -1, Pin: -1, Stuck: false}
	fmt.Println("fault:  ", f.Describe(w))

	// 4. One call yields the complete test set as a Boolean function, the
	//    exact detection probability, and the observable outputs.
	res := e.StuckAt(f)
	fmt.Printf("exact detectability: %.4f (syndrome bound %.4f)\n",
		res.Detectability, e.StuckAtUpperBound(f))
	fmt.Printf("observable at %d of %d primary outputs\n",
		len(res.ObservedPOs), len(w.Outputs))

	// 5. Enumerate the complete test set. Cubes come back in BDD variable
	//    order; Assignment/VarToInput translate between vector and
	//    variable order.
	fmt.Println("complete test set (1/0 per input", w.InputNames(), ", - = don't care):")
	v2i := e.VarToInput()
	e.Manager().AllSat(res.Complete, func(cube []int8) bool {
		vec := make([]byte, len(cube))
		for i := range vec {
			vec[i] = '-'
		}
		for v, s := range cube {
			if s >= 0 {
				vec[v2i[v]] = '0' + byte(s)
			}
		}
		fmt.Println("  ", string(vec))
		return true
	})

	// 6. A locally minimal test cube: the fewest specified bits such that
	//    every completion still detects the fault.
	cube := e.MinimalTestCube(res)
	min := make([]byte, len(w.Inputs))
	for i := range min {
		min[i] = '-'
	}
	for v, s := range cube {
		if s >= 0 {
			min[v2i[v]] = '0' + byte(s)
		}
	}
	fmt.Println("one minimal test cube:", string(min))

	// 7. An undetectable fault comes back with an identically-false test
	//    set — Difference Propagation proves redundancy instead of giving
	//    up on it.
	if !res.Detectable() {
		fmt.Println("fault is redundant")
	}
}
