// Design-for-testability demonstration of the paper's central design
// conclusion (§4.1): detectability sags for faults in the middle of the
// circuit and is best repaired through added observability — so test
// points should be observation points at the circuit center.
//
//	go run ./examples/dft
//
// The program uses internal/tpi twice: the one-shot center heuristic on
// the XOR-expanded error corrector c1355s (the paper's least testable
// circuit), and the exact greedy selector on the 4x4 multiplier, where
// each insertion's improvement is measured exactly before committing.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/tpi"
)

func main() {
	// Part 1: heuristic observation points at the center of c1355s.
	fmt.Println("== c1355s: 4 observation points on the worst center nets ==")
	base := circuits.MustGet("c1355s")
	printCurve(base, 8)
	plan, err := tpi.CenterHeuristic(base, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range plan.Names {
		fmt.Println("  observation point:", name)
	}
	fmt.Printf("mean detectability: %.4f -> %.4f (%+.1f%%)\n",
		plan.Before, plan.After, 100*plan.Gain())
	printCurve(plan.Circuit, 8)

	// Part 2: exact greedy on the 74181 ALU — small enough that every
	// candidate insertion is measured before committing.
	fmt.Println("\n== alu181: exact greedy selection of 2 observation points ==")
	gplan, err := tpi.GreedyExact(circuits.MustGet("alu181"), 2, 8)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range gplan.Names {
		fmt.Println("  observation point:", name)
	}
	fmt.Printf("mean detectability: %.4f -> %.4f (%+.1f%%)\n",
		gplan.Before, gplan.After, 100*gplan.Gain())
}

// printCurve shows the bathtub curve of Figure 3: mean detectability by
// maximum levels to a primary output, thinned for readability.
func printCurve(c *netlist.Circuit, stride int) {
	e, err := diffprop.New(c, nil)
	if err != nil {
		log.Fatal(err)
	}
	s := analysis.RunStuckAt(e, faults.CheckpointStuckAts(e.Circuit))
	fmt.Println("  mean detectability vs max levels to PO:")
	for _, p := range s.CurveByMaxLevelsToPO() {
		if p.Distance%stride != 0 {
			continue
		}
		fmt.Printf("    %3d: %.4f (%d faults)\n", p.Distance, p.Mean, p.Count)
	}
}
