// Package experiments reproduces, exhibit by exhibit, the evaluation
// section of the paper: Table 1 and Figures 1-8, plus the quantified
// versions of the section 4 prose claims (X1-X4). Each runner returns
// renderable report structures; cmd/figures prints them and bench_test.go
// regenerates them under `go test -bench`.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/scoap"
	"repro/internal/simulate"
)

// Config scopes an experiment run.
type Config struct {
	// Circuits lists the catalog names for the cross-circuit trend
	// figures (2, 5, 7) and tables; default is the whole catalog in size
	// order, matching the paper.
	Circuits []string
	// MaxBFs caps each bridging fault set; the population is used whole
	// when it is smaller (paper §2.2). The paper used ~1000.
	MaxBFs int
	// Theta is the exponential distance parameter of the layout-weighted
	// sample.
	Theta float64
	// Seed drives all sampling deterministically.
	Seed int64
	// Bins is the histogram resolution of Figures 1, 4 and 6.
	Bins int
	// HistCircuits names the circuits of Figure 1 (the paper shows C95 and
	// the 74LS181).
	HistCircuits []string
	// AdherenceCircuit names the circuit of Figure 4 (the paper's 74LS181).
	AdherenceCircuit string
	// BFHistCircuit names the circuit of Figure 6 (the paper's C95).
	BFHistCircuit string
	// DistanceCircuit names the circuit of Figures 3 and 8 (the paper's
	// C1355).
	DistanceCircuit string
	// Workers sets the analysis parallelism (0 = one worker per CPU).
	Workers int
	// FaultOps and FaultTimeout bound each fault analysis (zero =
	// unlimited); faults blowing either budget degrade to random-vector
	// estimates marked Approximate in the studies (see
	// analysis.CampaignConfig).
	FaultOps     int64
	FaultTimeout time.Duration
	// Recovery configures the per-engine recovery ladder (GC, sifting, one
	// relaxed-budget retry) applied before any fault degrades; the zero
	// value disables it (see diffprop.Recovery).
	Recovery diffprop.Recovery
	// MemLimit is the campaign heap ceiling in bytes: workers park near it
	// instead of growing the heap further (see analysis.CampaignConfig).
	MemLimit int64
	// Calibrate enables budget self-calibration on every campaign the
	// runner launches: per-fault budgets and the retry ladder are learned
	// from each circuit's measured op-cost distribution instead of the
	// hand-tuned FaultOps/Recovery knobs (see analysis.Calibration).
	Calibrate analysis.Calibration
	// Order selects the fault dispatch policy of every campaign the
	// runner launches (see analysis.OrderPolicy); results are
	// bit-identical under any policy, only throughput changes.
	Order analysis.OrderPolicy
	// FullScan forces the full-gate-scan propagation reference on every
	// campaign (the differential-testing baseline; see
	// analysis.CampaignConfig.FullScan).
	FullScan bool
	// Progress, when non-nil, observes every fault-analysis campaign the
	// runner launches: the circuit being studied plus done/total fault
	// counts. Callbacks arrive serially per campaign. Used by cmd/figures
	// -v to stream progress to stderr.
	Progress func(circuit string, done, total int)
	// Obs, when non-nil, attaches the observability layer to every
	// campaign the runner launches: live /progress and /timeline
	// heartbeats, metrics, structured logs, per-fault traces, and —
	// when Obs.Flight is set — flight-recorder events for cmd/obsreport
	// post-mortems (see analysis.CampaignConfig.Obs). All campaigns of
	// a run share the one observer, so a flight dump covers the whole
	// figure-generation sequence.
	Obs *obs.Observer
	// Shards, when positive, runs every catalog-circuit study campaign
	// under the crash-tolerant process supervisor instead of in-process:
	// the fault set is partitioned into Shards lease-tracked shards, each
	// analyzed by a supervised, restartable diffprop worker subprocess
	// (see internal/supervise), and the merged — bit-identical — records
	// are resumed to build the study without recomputation. Campaigns
	// over derived netlists (X7's re-minimized circuit) stay in-process.
	Shards int
	// WorkerBinary is the diffprop executable supervised campaigns exec
	// (it re-executes itself as the shard workers). Required when
	// Shards > 0.
	WorkerBinary string
	// ShardDir is the directory for supervised campaigns' merged and
	// per-shard checkpoints. Required when Shards > 0; rerunning over
	// the same directory resumes the shard checkpoints.
	ShardDir string
}

// DefaultConfig reproduces the paper's choices.
func DefaultConfig() Config {
	return Config{
		Circuits:         circuits.Names(),
		MaxBFs:           1000,
		Theta:            0.3,
		Seed:             1990,
		Bins:             25,
		HistCircuits:     []string{"c95s", "alu181"},
		AdherenceCircuit: "alu181",
		BFHistCircuit:    "c95s",
		DistanceCircuit:  "c1355s",
	}
}

// QuickConfig is a cheap configuration for tests and smoke runs: small
// circuits only and small fault samples.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Circuits = []string{"c17", "fadd", "c95s", "alu181"}
	cfg.MaxBFs = 60
	cfg.HistCircuits = []string{"c95s", "alu181"}
	cfg.AdherenceCircuit = "alu181"
	cfg.BFHistCircuit = "c95s"
	cfg.DistanceCircuit = "c95s"
	return cfg
}

type bfKey struct {
	circuit string
	kind    faults.BridgeKind
}

// Runner caches engines and studies so figures sharing inputs do not
// recompute them.
type Runner struct {
	cfg      Config
	engines  map[string]*diffprop.Engine
	sa       map[string]*analysis.StuckAtStudy
	bf       map[bfKey]*analysis.BridgingStudy
	testSets map[string][][]bool
}

// NewRunner builds a runner over the configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		cfg:      cfg,
		engines:  map[string]*diffprop.Engine{},
		sa:       map[string]*analysis.StuckAtStudy{},
		bf:       map[bfKey]*analysis.BridgingStudy{},
		testSets: map[string][][]bool{},
	}
}

// TestSet returns (building and caching) a compacted complete stuck-at
// test set for the circuit's collapsed checkpoint faults.
func (r *Runner) TestSet(name string) ([][]bool, error) {
	if v, ok := r.testSets[name]; ok {
		return v, nil
	}
	e, err := r.Engine(name)
	if err != nil {
		return nil, err
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	gen := atpg.GenerateStuckAt(e, fs, r.cfg.Seed)
	vectors := atpg.Compact(e, fs, gen.Vectors)
	r.testSets[name] = vectors
	return vectors, nil
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// campaignConfig adapts the runner's worker count and progress callback to
// one named campaign.
func (r *Runner) campaignConfig(label string) analysis.CampaignConfig {
	cfg := analysis.CampaignConfig{
		Workers:      r.cfg.Workers,
		FaultOps:     r.cfg.FaultOps,
		FaultTimeout: r.cfg.FaultTimeout,
		Recovery:     r.cfg.Recovery,
		MemLimit:     r.cfg.MemLimit,
		Calibrate:    r.cfg.Calibrate,
		Order:        r.cfg.Order,
		FullScan:     r.cfg.FullScan,
		Obs:          r.cfg.Obs,
		Name:         label,
	}
	if p := r.cfg.Progress; p != nil {
		cfg.Progress = func(done, total int) { p(label, done, total) }
	}
	return cfg
}

// Engine returns (building and caching on first use) the DP engine for a
// circuit.
func (r *Runner) Engine(name string) (*diffprop.Engine, error) {
	if e, ok := r.engines[name]; ok {
		return e, nil
	}
	c, err := circuits.Get(name)
	if err != nil {
		return nil, err
	}
	e, err := diffprop.New(c, nil)
	if err != nil {
		return nil, err
	}
	r.engines[name] = e
	return e, nil
}

// StuckAtStudy returns the cached collapsed-checkpoint stuck-at study.
func (r *Runner) StuckAtStudy(name string) (*analysis.StuckAtStudy, error) {
	if s, ok := r.sa[name]; ok {
		return s, nil
	}
	e, err := r.Engine(name)
	if err != nil {
		return nil, err
	}
	c, err := circuits.Get(name)
	if err != nil {
		return nil, err
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	cfg := r.campaignConfig(name + " stuck-at")
	if r.cfg.Shards > 0 {
		recs, err := r.shardedRecords(name, "sa", len(fs))
		if err != nil {
			return nil, err
		}
		cfg.Resume = recs
	}
	s, err := analysis.RunStuckAtCampaign(c, nil, fs, cfg)
	if err != nil {
		return nil, err
	}
	r.sa[name] = &s
	return &s, nil
}

// BridgingStudy returns the cached NFBF study of the given kind.
func (r *Runner) BridgingStudy(name string, kind faults.BridgeKind) (*analysis.BridgingStudy, error) {
	k := bfKey{name, kind}
	if s, ok := r.bf[k]; ok {
		return s, nil
	}
	e, err := r.Engine(name)
	if err != nil {
		return nil, err
	}
	c, err := circuits.Get(name)
	if err != nil {
		return nil, err
	}
	set, pop, sampled := analysis.BridgingSet(e.Circuit, kind, r.cfg.MaxBFs, r.cfg.Theta, r.cfg.Seed)
	cfg := r.campaignConfig(fmt.Sprintf("%s %v", name, kind))
	if r.cfg.Shards > 0 {
		model := "and"
		if kind == faults.WiredOR {
			model = "or"
		}
		recs, err := r.shardedRecords(name, model, len(set))
		if err != nil {
			return nil, err
		}
		cfg.Resume = recs
	}
	s, err := analysis.RunBridgingCampaign(c, nil, set, kind, pop, sampled, cfg)
	if err != nil {
		return nil, err
	}
	r.bf[k] = &s
	return &s, nil
}

// Table1 reports the gate output difference functions (the paper's
// Table 1) and verifies each identity over randomized functions.
func (r *Runner) Table1() report.Table {
	const trials = 4096
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	verify := func(check func(fa, fb, da, db uint64) bool) string {
		for i := 0; i < trials; i++ {
			if !check(rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()) {
				return "FAIL"
			}
		}
		return fmt.Sprintf("verified on %d random 64-point function pairs", trials)
	}
	rows := [][]string{
		{"AND / NAND", "ΔC = fA·ΔB ⊕ fB·ΔA ⊕ ΔA·ΔB", verify(func(fa, fb, da, db uint64) bool {
			return (fa&fb)^((fa^da)&(fb^db)) == (fa&db)^(fb&da)^(da&db)
		})},
		{"OR / NOR", "ΔC = ¬fA·ΔB ⊕ ¬fB·ΔA ⊕ ΔA·ΔB", verify(func(fa, fb, da, db uint64) bool {
			return (fa|fb)^((fa^da)|(fb^db)) == (^fa&db)^(^fb&da)^(da&db)
		})},
		{"XOR / XNOR", "ΔC = ΔA ⊕ ΔB", verify(func(fa, fb, da, db uint64) bool {
			return (fa^fb)^((fa^da)^(fb^db)) == da^db
		})},
		{"NOT / BUFF", "ΔC = ΔA", verify(func(fa, fb, da, db uint64) bool {
			return ^fa^^(fa^da) == da
		})},
	}
	return report.Table{
		Title:   "Table 1: output difference functions in terms of input good and difference functions",
		Columns: []string{"gate", "difference function", "status"},
		Rows:    rows,
	}
}

// Fig1 reproduces Figure 1: stuck-at detection probability histograms.
func (r *Runner) Fig1() (report.Figure, error) {
	fig := report.Figure{
		ID:     "fig1",
		Title:  "stuck-at fault detection probability histograms",
		XLabel: "detection probability",
		YLabel: "fault proportion",
	}
	for _, name := range r.cfg.HistCircuits {
		s, err := r.StuckAtStudy(name)
		if err != nil {
			return fig, err
		}
		h := analysis.Histogram(s.Detectabilities(), r.cfg.Bins)
		fig.Series = append(fig.Series,
			report.HistogramSeries(fmt.Sprintf("%s (%d faults)", name, len(s.Records)), h))
	}
	fig.Note = "collapsed checkpoint stuck-at faults, exact detectabilities via Difference Propagation"
	return fig, nil
}

// Fig2 reproduces Figure 2: mean stuck-at detectability (raw and
// PO-normalized) versus netlist size.
func (r *Runner) Fig2() (report.Figure, error) {
	fig := report.Figure{
		ID:     "fig2",
		Title:  "trends of mean stuck-at detection probabilities vs netlist size",
		XLabel: "netlist size (gates)",
		YLabel: "mean detectability of detectable faults",
	}
	var mean, norm report.Series
	mean.Name = "mean detectability"
	norm.Name = "mean detectability / #POs"
	note := "circuits:"
	for _, name := range r.cfg.Circuits {
		s, err := r.StuckAtStudy(name)
		if err != nil {
			return fig, err
		}
		m := s.MeanDetectable()
		mean.X = append(mean.X, float64(s.NetlistSize))
		mean.Y = append(mean.Y, m)
		norm.X = append(norm.X, float64(s.NetlistSize))
		norm.Y = append(norm.Y, m/float64(s.NumPOs))
		note += fmt.Sprintf(" %s(%d)", name, s.NetlistSize)
	}
	fig.Series = []report.Series{mean, norm}
	sortSeriesByX(fig.Series)
	fig.Note = note
	return fig, nil
}

// Fig3 reproduces Figure 3: mean stuck-at detectability versus maximum
// levels to a primary output.
func (r *Runner) Fig3() (report.Figure, error) {
	name := r.cfg.DistanceCircuit
	s, err := r.StuckAtStudy(name)
	if err != nil {
		return report.Figure{}, err
	}
	fig := report.Figure{
		ID:     "fig3",
		Title:  fmt.Sprintf("mean stuck-at detectability vs maximum distance to POs (%s)", name),
		XLabel: "maximum levels to PO",
		YLabel: "mean detection probability",
		Note:   fmt.Sprintf("%d collapsed checkpoint faults", len(s.Records)),
	}
	curve := s.CurveByMaxLevelsToPO()
	var sr report.Series
	sr.Name = name
	for _, p := range curve {
		sr.X = append(sr.X, float64(p.Distance))
		sr.Y = append(sr.Y, p.Mean)
	}
	fig.Series = []report.Series{sr}
	return fig, nil
}

// Fig4 reproduces Figure 4: the stuck-at adherence histogram.
func (r *Runner) Fig4() (report.Figure, error) {
	name := r.cfg.AdherenceCircuit
	s, err := r.StuckAtStudy(name)
	if err != nil {
		return report.Figure{}, err
	}
	h := analysis.Histogram(s.Adherences(), r.cfg.Bins)
	fig := report.Figure{
		ID:     "fig4",
		Title:  fmt.Sprintf("stuck-at fault adherence histogram (%s)", name),
		XLabel: "adherence (detectability / excitation bound)",
		YLabel: "fault proportion",
		Note:   fmt.Sprintf("%d excitable faults; PO faults adhere at exactly 1.0", len(s.Adherences())),
		Series: []report.Series{report.HistogramSeries(name+" stuck-at", h)},
	}
	// §4.2: "The NFBF adherence histograms differed little from the
	// stuck-at adherence histograms except that the spread of values was
	// usually greater." Include the same circuit's bridging series for the
	// comparison.
	ba, err := r.BridgingStudy(name, faults.WiredAND)
	if err != nil {
		return fig, err
	}
	bh := analysis.Histogram(ba.Adherences(), r.cfg.Bins)
	fig.Series = append(fig.Series,
		report.HistogramSeries(fmt.Sprintf("%s AND-NFBF", name), bh))
	return fig, nil
}

// Fig5 reproduces Figure 5: proportions of AND and OR NFBFs that exhibit
// stuck-at behavior, per circuit.
func (r *Runner) Fig5() (report.Figure, error) {
	fig := report.Figure{
		ID:     "fig5",
		Title:  "proportions of AND and OR NFBFs that exhibit stuck-at behavior",
		XLabel: "netlist size (gates)",
		YLabel: "proportion of NFBFs equivalent to double stuck-at faults",
	}
	var andS, orS report.Series
	andS.Name = "AND NFBFs"
	orS.Name = "OR NFBFs"
	note := "circuits:"
	for _, name := range r.cfg.Circuits {
		sa, err := r.BridgingStudy(name, faults.WiredAND)
		if err != nil {
			return fig, err
		}
		so, err := r.BridgingStudy(name, faults.WiredOR)
		if err != nil {
			return fig, err
		}
		andS.X = append(andS.X, float64(sa.NetlistSize))
		andS.Y = append(andS.Y, sa.StuckAtProportion())
		orS.X = append(orS.X, float64(so.NetlistSize))
		orS.Y = append(orS.Y, so.StuckAtProportion())
		note += fmt.Sprintf(" %s(AND %d/%d, OR %d/%d)",
			name, len(sa.Records), sa.Population, len(so.Records), so.Population)
	}
	fig.Series = []report.Series{andS, orS}
	sortSeriesByX(fig.Series)
	fig.Note = note
	return fig, nil
}

// Fig6 reproduces Figure 6: bridging fault detection probability
// histograms for both wired behaviors.
func (r *Runner) Fig6() (report.Figure, error) {
	name := r.cfg.BFHistCircuit
	fig := report.Figure{
		ID:     "fig6",
		Title:  fmt.Sprintf("bridging fault detection probability histograms (%s)", name),
		XLabel: "detection probability",
		YLabel: "fault proportion",
	}
	for _, kind := range []faults.BridgeKind{faults.WiredAND, faults.WiredOR} {
		s, err := r.BridgingStudy(name, kind)
		if err != nil {
			return fig, err
		}
		h := analysis.Histogram(s.Detectabilities(), r.cfg.Bins)
		fig.Series = append(fig.Series,
			report.HistogramSeries(fmt.Sprintf("%v (%d faults)", kind, len(s.Records)), h))
	}
	return fig, nil
}

// Fig7 reproduces Figure 7: mean bridging detectability trends versus
// netlist size (AND and OR merged, as the paper found them nearly equal,
// with the split series included for inspection).
func (r *Runner) Fig7() (report.Figure, error) {
	fig := report.Figure{
		ID:     "fig7",
		Title:  "trends of mean bridging fault detection probabilities vs netlist size",
		XLabel: "netlist size (gates)",
		YLabel: "mean detectability of detectable faults",
	}
	series := map[string]*report.Series{
		"mean detectability (AND+OR)":   {Name: "mean detectability (AND+OR)"},
		"mean detectability / #POs":     {Name: "mean detectability / #POs"},
		"mean detectability (AND only)": {Name: "mean detectability (AND only)"},
		"mean detectability (OR only)":  {Name: "mean detectability (OR only)"},
	}
	for _, name := range r.cfg.Circuits {
		sa, err := r.BridgingStudy(name, faults.WiredAND)
		if err != nil {
			return fig, err
		}
		so, err := r.BridgingStudy(name, faults.WiredOR)
		if err != nil {
			return fig, err
		}
		merged := append(append([]float64{}, sa.Detectabilities()...), so.Detectabilities()...)
		sum, n := 0.0, 0
		for _, d := range merged {
			if d > 0 {
				sum += d
				n++
			}
		}
		m := 0.0
		if n > 0 {
			m = sum / float64(n)
		}
		x := float64(sa.NetlistSize)
		add := func(key string, y float64) {
			s := series[key]
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		add("mean detectability (AND+OR)", m)
		add("mean detectability / #POs", m/float64(sa.NumPOs))
		add("mean detectability (AND only)", sa.MeanDetectable())
		add("mean detectability (OR only)", so.MeanDetectable())
	}
	for _, key := range []string{
		"mean detectability (AND+OR)", "mean detectability / #POs",
		"mean detectability (AND only)", "mean detectability (OR only)",
	} {
		fig.Series = append(fig.Series, *series[key])
	}
	sortSeriesByX(fig.Series)
	return fig, nil
}

// Fig8 reproduces Figure 8: mean bridging detectability versus maximum
// levels to a primary output.
func (r *Runner) Fig8() (report.Figure, error) {
	name := r.cfg.DistanceCircuit
	fig := report.Figure{
		ID:     "fig8",
		Title:  fmt.Sprintf("mean bridging detectability vs maximum distance to POs (%s)", name),
		XLabel: "maximum levels to PO",
		YLabel: "mean detection probability",
	}
	for _, kind := range []faults.BridgeKind{faults.WiredAND, faults.WiredOR} {
		s, err := r.BridgingStudy(name, kind)
		if err != nil {
			return fig, err
		}
		var sr report.Series
		sr.Name = kind.String()
		for _, p := range s.CurveByMaxLevelsToPO() {
			sr.X = append(sr.X, float64(p.Distance))
			sr.Y = append(sr.Y, p.Mean)
		}
		fig.Series = append(fig.Series, sr)
	}
	return fig, nil
}

// X1 quantifies the §4.1 claim that detectability correlates more with
// observability (PO distance) than controllability (PI distance).
func (r *Runner) X1() (report.Table, error) {
	t := report.Table{
		Title:   "X1: correlation of detectability with PO distance vs PI distance",
		Columns: []string{"circuit", "corr(detect, PO distance)", "corr(detect, PI distance)", "|PO| > |PI|"},
	}
	for _, name := range r.cfg.Circuits {
		s, err := r.StuckAtStudy(name)
		if err != nil {
			return t, err
		}
		po, pi := s.DetectabilityVsDistanceCorrelations()
		stronger := "yes"
		if abs(po) <= abs(pi) {
			stronger = "no"
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%+.4f", po), fmt.Sprintf("%+.4f", pi), stronger})
	}
	return t, nil
}

// X2 quantifies the §4.1 claim that the POs fed by a fault site and the
// POs at which the fault is observable are almost always the same.
func (r *Runner) X2() (report.Table, error) {
	t := report.Table{
		Title:   "X2: POs fed by the fault site vs POs where the fault is observable",
		Columns: []string{"circuit", "faults", "observed == fed", "rate"},
	}
	for _, name := range r.cfg.Circuits {
		s, err := r.StuckAtStudy(name)
		if err != nil {
			return t, err
		}
		det := 0
		eq := 0
		for _, rec := range s.Records {
			if !rec.Detectable() {
				continue
			}
			det++
			if rec.ObservedPOs == rec.POsFed {
				eq++
			}
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", det), fmt.Sprintf("%d", eq),
			fmt.Sprintf("%.3f", s.ObservedEqualsFedRate()),
		})
	}
	return t, nil
}

// X3 runs the Millman–McCluskey style experiment: a compacted complete
// stuck-at test set is fault-simulated against the NFBF sets.
func (r *Runner) X3() (report.Table, error) {
	t := report.Table{
		Title:   "X3: bridging fault coverage of complete stuck-at test sets (Millman–McCluskey)",
		Columns: []string{"circuit", "vectors", "SA coverage", "AND-NFBF coverage", "OR-NFBF coverage"},
	}
	for _, name := range r.cfg.Circuits {
		e, err := r.Engine(name)
		if err != nil {
			return t, err
		}
		vectors, err := r.TestSet(name)
		if err != nil {
			return t, err
		}
		fs := faults.CheckpointStuckAts(e.Circuit)
		andSet, _, _ := analysis.BridgingSet(e.Circuit, faults.WiredAND, r.cfg.MaxBFs, r.cfg.Theta, r.cfg.Seed)
		orSet, _, _ := analysis.BridgingSet(e.Circuit, faults.WiredOR, r.cfg.MaxBFs, r.cfg.Theta, r.cfg.Seed)
		p := simulate.FromVectors(len(e.Circuit.Inputs), vectors)
		saCov := simulate.CoverageStuckAt(e.Circuit, fs, p).Coverage()
		andCov := simulate.CoverageBridging(e.Circuit, andSet, p).Coverage()
		orCov := simulate.CoverageBridging(e.Circuit, orSet, p).Coverage()
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", len(vectors)),
			fmt.Sprintf("%.3f", saCov), fmt.Sprintf("%.3f", andCov), fmt.Sprintf("%.3f", orCov),
		})
	}
	return t, nil
}

// X4 reports redundancy identification: checkpoint faults with provably
// empty test sets, cross-checked exhaustively on small circuits.
func (r *Runner) X4() (report.Table, error) {
	t := report.Table{
		Title:   "X4: redundant (untestable) checkpoint faults proven by empty complete test sets",
		Columns: []string{"circuit", "faults", "redundant", "cross-check"},
	}
	for _, name := range r.cfg.Circuits {
		s, err := r.StuckAtStudy(name)
		if err != nil {
			return t, err
		}
		e, err := r.Engine(name)
		if err != nil {
			return t, err
		}
		var redundant []faults.StuckAt
		for _, rec := range s.Records {
			if !rec.Detectable() {
				redundant = append(redundant, rec.Fault)
			}
		}
		check := "skipped (too many inputs)"
		if len(e.Circuit.Inputs) <= 16 {
			ok := true
			for _, f := range redundant {
				if simulate.ExhaustiveDetectabilityStuckAt(e.Circuit, f) != 0 {
					ok = false
				}
			}
			if ok {
				check = "exhaustive simulation agrees"
			} else {
				check = "MISMATCH"
			}
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", len(s.Records)), fmt.Sprintf("%d", len(redundant)), check,
		})
	}
	return t, nil
}

// X5 measures double stuck-at fault coverage of the single stuck-at test
// sets, the question of Hughes & McCluskey (the paper's ref [2]):
// complete single-fault test sets detect nearly all multiple faults.
func (r *Runner) X5() (report.Table, error) {
	t := report.Table{
		Title:   "X5: double stuck-at fault coverage of complete single stuck-at test sets (Hughes-McCluskey, ref [2])",
		Columns: []string{"circuit", "vectors", "double faults", "detected", "coverage"},
	}
	for _, name := range r.cfg.Circuits {
		e, err := r.Engine(name)
		if err != nil {
			return t, err
		}
		vectors, err := r.TestSet(name)
		if err != nil {
			return t, err
		}
		pool := faults.CheckpointStuckAts(e.Circuit)
		rng := rand.New(rand.NewSource(r.cfg.Seed + 5))
		nPairs := r.cfg.MaxBFs
		if max := len(pool) * (len(pool) - 1) / 2; nPairs > max {
			nPairs = max
		}
		seen := map[[2]int]bool{}
		var doubles [][]faults.StuckAt
		for len(doubles) < nPairs {
			i, j := rng.Intn(len(pool)), rng.Intn(len(pool))
			if i == j {
				continue
			}
			if i > j {
				i, j = j, i
			}
			if seen[[2]int{i, j}] {
				continue
			}
			seen[[2]int{i, j}] = true
			doubles = append(doubles, []faults.StuckAt{pool[i], pool[j]})
		}
		p := simulate.FromVectors(len(e.Circuit.Inputs), vectors)
		cov := simulate.CoverageMultiple(e.Circuit, doubles, p)
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", len(vectors)),
			fmt.Sprintf("%d", cov.Total), fmt.Sprintf("%d", cov.Detected),
			fmt.Sprintf("%.3f", cov.Coverage()),
		})
	}
	return t, nil
}

// X6 measures gate-substitution fault coverage of the same stuck-at test
// sets — the "more logical fault models than just the single stuck-at
// fault" direction of the paper's conclusions, quantified.
func (r *Runner) X6() (report.Table, error) {
	t := report.Table{
		Title:   "X6: gate-substitution fault coverage of complete single stuck-at test sets",
		Columns: []string{"circuit", "vectors", "substitutions", "detected", "coverage"},
	}
	for _, name := range r.cfg.Circuits {
		e, err := r.Engine(name)
		if err != nil {
			return t, err
		}
		vectors, err := r.TestSet(name)
		if err != nil {
			return t, err
		}
		subs := faults.AllGateSubs(e.Circuit)
		if len(subs) > 4*r.cfg.MaxBFs {
			rng := rand.New(rand.NewSource(r.cfg.Seed + 6))
			rng.Shuffle(len(subs), func(i, j int) { subs[i], subs[j] = subs[j], subs[i] })
			subs = subs[:4*r.cfg.MaxBFs]
		}
		p := simulate.FromVectors(len(e.Circuit.Inputs), vectors)
		cov := simulate.CoverageGateSubs(e.Circuit, subs, p)
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", len(vectors)),
			fmt.Sprintf("%d", cov.Total), fmt.Sprintf("%d", cov.Detected),
			fmt.Sprintf("%.3f", cov.Coverage()),
		})
	}
	return t, nil
}

// X7 closes the loop on the minimal-design observation: c1355s (the
// XOR-expanded c499s) is re-minimized by the structural optimizer, and the
// mean detectability of its checkpoint faults is compared against both the
// bloated and the original design. The paper argues minimal designs are
// more testable; X7 shows redesign recovers the loss.
func (r *Runner) X7() (report.Table, error) {
	t := report.Table{
		Title:   "X7: redesign for testability — re-minimizing the XOR-expanded corrector",
		Columns: []string{"circuit", "gates", "faults", "mean detectability", "normalized (/#POs)"},
	}
	add := func(label string, s *analysis.StuckAtStudy) {
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%d", s.NetlistSize),
			fmt.Sprintf("%d", len(s.Records)),
			fmt.Sprintf("%.4f", s.MeanDetectable()),
			fmt.Sprintf("%.5f", s.MeanDetectable()/float64(s.NumPOs)),
		})
	}
	orig, err := r.StuckAtStudy("c499s")
	if err != nil {
		return t, err
	}
	bloated, err := r.StuckAtStudy("c1355s")
	if err != nil {
		return t, err
	}
	c, err := circuits.Get("c1355s")
	if err != nil {
		return t, err
	}
	opt := c.Optimize()
	opt.Name = "c1355s.Optimize()"
	e, err := diffprop.New(opt, nil)
	if err != nil {
		return t, err
	}
	reopt, err := analysis.RunStuckAtCampaign(opt, nil, faults.CheckpointStuckAts(e.Circuit), r.campaignConfig(opt.Name+" stuck-at"))
	if err != nil {
		return t, err
	}
	add("c499s (original)", orig)
	add("c1355s (XOR-expanded)", bloated)
	add("c1355s re-minimized", &reopt)
	return t, nil
}

// X8 correlates the SCOAP topological testability estimate with the exact
// per-fault detectability: Spearman rank correlation between SCOAP
// detection cost (controllability + observability) and the exact
// detection probability over the collapsed checkpoint faults. The paper
// shows topology influences fault model performance; X8 quantifies how
// much of the exact picture the standard topological proxy recovers
// (expected: clearly negative, far from -1).
func (r *Runner) X8() (report.Table, error) {
	t := report.Table{
		Title:   "X8: SCOAP cost vs exact detectability (Spearman rank correlation)",
		Columns: []string{"circuit", "faults", "spearman(cost, detectability)", "verdict"},
	}
	for _, name := range r.cfg.Circuits {
		s, err := r.StuckAtStudy(name)
		if err != nil {
			return t, err
		}
		e, err := r.Engine(name)
		if err != nil {
			return t, err
		}
		meas := scoap.Compute(e.Circuit)
		var costs, dets []float64
		for _, rec := range s.Records {
			cost, ok := meas.StuckAtCost(rec.Fault)
			if !ok || !rec.Detectable() {
				continue
			}
			costs = append(costs, float64(cost))
			dets = append(dets, rec.Detectability)
		}
		rho := 0.0
		if len(costs) >= 2 {
			rho = analysis.Spearman(costs, dets)
		}
		verdict := "proxy uninformative"
		if rho < -0.2 {
			verdict = "proxy carries signal"
		} else if rho > 0.2 {
			verdict = "proxy inverted (!)"
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", len(costs)), fmt.Sprintf("%+.4f", rho), verdict,
		})
	}
	return t, nil
}

// X9 uses the exact detection probabilities the way random-pattern testing
// does (the context of the paper's refs [11] and [19]): the expected
// coverage after N uniform random patterns is mean(1-(1-p_i)^N), which is
// compared against actual random-pattern fault simulation.
func (r *Runner) X9() (report.Table, error) {
	t := report.Table{
		Title:   "X9: random-pattern coverage — predicted from exact detectabilities vs simulated",
		Columns: []string{"circuit", "N", "predicted", "simulated", "|diff|"},
	}
	lengths := []int{1, 4, 16, 64, 256, 1024}
	for _, name := range r.cfg.Circuits {
		s, err := r.StuckAtStudy(name)
		if err != nil {
			return t, err
		}
		e, err := r.Engine(name)
		if err != nil {
			return t, err
		}
		fs := faults.CheckpointStuckAts(e.Circuit)
		ps := s.Detectabilities()
		patterns := simulate.Random(len(e.Circuit.Inputs), lengths[len(lengths)-1], r.cfg.Seed+9)
		for _, n := range lengths {
			prefix := &simulate.Patterns{Count: n, Words: make([][]uint64, len(patterns.Words))}
			words := (n + 63) / 64
			for i := range patterns.Words {
				prefix.Words[i] = patterns.Words[i][:words]
			}
			pred := analysis.PredictedRandomCoverage(ps, n)
			sim := simulate.CoverageStuckAt(e.Circuit, fs, prefix).Coverage()
			diff := pred - sim
			if diff < 0 {
				diff = -diff
			}
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.4f", pred), fmt.Sprintf("%.4f", sim), fmt.Sprintf("%.4f", diff),
			})
		}
	}
	return t, nil
}

// X10 runs exact functional fault collapsing (the paper's ref [7],
// decided exactly via canonical per-output difference functions): the
// structurally collapsed checkpoint set is partitioned into true
// functional equivalence classes, revealing the collapsing still left on
// the table. The two largest circuits are skipped — the analysis must
// disable BDD compaction, which is memory-hungry at their size.
func (r *Runner) X10() (report.Table, error) {
	t := report.Table{
		Title:   "X10: exact functional fault equivalence over the structurally collapsed checkpoint sets",
		Columns: []string{"circuit", "collapsed faults", "exact classes", "ratio", "largest class"},
	}
	for _, name := range r.cfg.Circuits {
		if name == "c1355s" || name == "c1908s" {
			t.Rows = append(t.Rows, []string{name, "-", "-", "-", "skipped (no-compaction run too large)"})
			continue
		}
		c, err := circuits.Get(name)
		if err != nil {
			return t, err
		}
		e, err := diffprop.New(c, &diffprop.Options{RebuildLimit: 1 << 29})
		if err != nil {
			return t, err
		}
		fs := faults.CheckpointStuckAts(e.Circuit)
		classes, err := analysis.ExactEquivalenceClasses(e, fs)
		if err != nil {
			return t, err
		}
		largest := 0
		for _, cl := range classes {
			if len(cl.Faults) > largest {
				largest = len(cl.Faults)
			}
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", len(fs)), fmt.Sprintf("%d", len(classes)),
			fmt.Sprintf("%.3f", analysis.CollapseRatio(classes)), fmt.Sprintf("%d", largest),
		})
	}
	return t, nil
}

// X11 measures exact syndrome testability (Savir, the paper's ref [11]):
// the fraction of detectable checkpoint faults whose flips change some
// output's ones-count — the faults a pure syndrome (ones-counting) tester
// can see. The gap to 1.0 is the blind spot syndrome-testable design
// exists to close.
func (r *Runner) X11() (report.Table, error) {
	t := report.Table{
		Title:   "X11: syndrome testability (Savir ones-counting) of detectable checkpoint faults",
		Columns: []string{"circuit", "detectable faults", "syndrome-testable", "fraction"},
	}
	for _, name := range r.cfg.Circuits {
		e, err := r.Engine(name)
		if err != nil {
			return t, err
		}
		fs := faults.CheckpointStuckAts(e.Circuit)
		det, synd := 0, 0
		for _, f := range fs {
			res := e.StuckAt(f)
			if !res.Detectable() {
				continue
			}
			det++
			if analysis.SyndromeTestable(e, res) {
				synd++
			}
		}
		frac := 0.0
		if det > 0 {
			frac = float64(synd) / float64(det)
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", det), fmt.Sprintf("%d", synd), fmt.Sprintf("%.3f", frac),
		})
	}
	return t, nil
}

// X12 closes the loop on the layout model of §2.2: the paper samples
// bridging faults by estimated wire distance but never asks whether
// distance predicts detectability. X12 reports the Spearman rank
// correlation between a sampled NFBF's normalized wire distance and its
// exact detectability, per circuit and wired behavior.
func (r *Runner) X12() (report.Table, error) {
	t := report.Table{
		Title:   "X12: does estimated wire distance predict bridging detectability?",
		Columns: []string{"circuit", "kind", "faults", "spearman(distance, detectability)"},
	}
	for _, name := range r.cfg.Circuits {
		e, err := r.Engine(name)
		if err != nil {
			return t, err
		}
		p := layout.Place(e.Circuit)
		for _, kind := range []faults.BridgeKind{faults.WiredAND, faults.WiredOR} {
			s, err := r.BridgingStudy(name, kind)
			if err != nil {
				return t, err
			}
			all := faults.AllNFBFs(e.Circuit, kind)
			norm := layout.MaxDistance(p, all)
			var ds, dets []float64
			for _, rec := range s.Records {
				if !rec.Detectable() {
					continue
				}
				d := p.Distance(rec.Fault.U, rec.Fault.V)
				if norm > 0 {
					d /= norm
				}
				ds = append(ds, d)
				dets = append(dets, rec.Detectability)
			}
			rho := 0.0
			if len(ds) >= 2 {
				rho = analysis.Spearman(ds, dets)
			}
			t.Rows = append(t.Rows, []string{
				name, kind.String(), fmt.Sprintf("%d", len(ds)), fmt.Sprintf("%+.4f", rho),
			})
		}
	}
	return t, nil
}

// Summary produces the cross-circuit overview table the paper never had
// space to print: per circuit, the fault-set sizes and the headline exact
// statistics of both fault models.
func (r *Runner) Summary() (report.Table, error) {
	t := report.Table{
		Title: "summary: exact fault-model statistics per circuit",
		Columns: []string{"circuit", "gates", "PIs", "POs", "SA faults", "SA cov",
			"SA mean det", "AND-BF mean", "OR-BF mean", "BF SA-like (AND/OR)"},
	}
	for _, name := range r.cfg.Circuits {
		s, err := r.StuckAtStudy(name)
		if err != nil {
			return t, err
		}
		ba, err := r.BridgingStudy(name, faults.WiredAND)
		if err != nil {
			return t, err
		}
		bo, err := r.BridgingStudy(name, faults.WiredOR)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", s.NetlistSize),
			fmt.Sprintf("%d", s.NumPIs),
			fmt.Sprintf("%d", s.NumPOs),
			fmt.Sprintf("%d", len(s.Records)),
			fmt.Sprintf("%.3f", s.CoverageRate()),
			fmt.Sprintf("%.4f", s.MeanDetectable()),
			fmt.Sprintf("%.4f", ba.MeanDetectable()),
			fmt.Sprintf("%.4f", bo.MeanDetectable()),
			fmt.Sprintf("%.3f/%.3f", ba.StuckAtProportion(), bo.StuckAtProportion()),
		})
	}
	return t, nil
}

// sortSeriesByX orders each series' points by ascending X so trend plots
// read left to right even when catalog order differs from working-netlist
// size order.
func sortSeriesByX(series []report.Series) {
	for i := range series {
		s := &series[i]
		idx := make([]int, len(s.X))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
		x := make([]float64, len(s.X))
		y := make([]float64, len(s.Y))
		for j, k := range idx {
			x[j], y[j] = s.X[k], s.Y[k]
		}
		s.X, s.Y = x, y
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Exhibit is one rendered experiment output.
type Exhibit struct {
	ID   string
	Text string
	CSV  string
}

// All regenerates every exhibit in paper order.
func (r *Runner) All() ([]Exhibit, error) {
	var out []Exhibit
	t1 := r.Table1()
	out = append(out, Exhibit{ID: "table1", Text: t1.Text(), CSV: t1.CSV()})
	figs := []func() (report.Figure, error){
		r.Fig1, r.Fig2, r.Fig3, r.Fig4, r.Fig5, r.Fig6, r.Fig7, r.Fig8,
	}
	for _, fn := range figs {
		f, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, Exhibit{ID: f.ID, Text: f.Text(), CSV: f.CSV()})
	}
	tables := []func() (report.Table, error){r.X1, r.X2, r.X3, r.X4, r.X5, r.X6, r.X7, r.X8, r.X9, r.X10, r.X11, r.X12, r.Summary}
	ids := []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10", "x11", "x12", "summary"}
	for i, fn := range tables {
		t, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, Exhibit{ID: ids[i], Text: t.Text(), CSV: t.CSV()})
	}
	return out, nil
}
