package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/faults"
)

func quickRunner() *Runner { return NewRunner(QuickConfig()) }

func TestTable1AllVerified(t *testing.T) {
	tab := quickRunner().Table1()
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 1 must have 4 gate classes, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if strings.Contains(row[2], "FAIL") {
			t.Fatalf("identity %s failed verification", row[0])
		}
	}
	if !strings.Contains(tab.Text(), "Table 1") || !strings.Contains(tab.CSV(), "gate,") {
		t.Fatal("rendering broken")
	}
}

func TestFig1Shapes(t *testing.T) {
	r := quickRunner()
	fig, err := r.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("Fig1 wants 2 circuits, got %d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != r.Config().Bins {
			t.Fatalf("series %s has %d bins", s.Name, len(s.X))
		}
		sum := 0.0
		for _, y := range s.Y {
			sum += y
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("series %s mass %v", s.Name, sum)
		}
	}
	if !strings.Contains(fig.Text(), "fig1") {
		t.Fatal("text rendering broken")
	}
}

func TestFig2TrendShape(t *testing.T) {
	r := quickRunner()
	fig, err := r.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatal("Fig2 wants 2 series")
	}
	n := len(r.Config().Circuits)
	for _, s := range fig.Series {
		if len(s.X) != n {
			t.Fatalf("series %s has %d points, want %d", s.Name, len(s.X), n)
		}
	}
	// X must be netlist sizes in nondecreasing order for the size-ordered
	// quick catalog subset.
	xs := fig.Series[0].X
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("netlist sizes out of order: %v", xs)
		}
	}
	// Normalized series must be <= raw (PO counts >= 1).
	for i := range fig.Series[0].Y {
		if fig.Series[1].Y[i] > fig.Series[0].Y[i]+1e-12 {
			t.Fatal("normalized mean exceeds raw mean")
		}
	}
}

func TestFig3And8Curves(t *testing.T) {
	r := quickRunner()
	f3, err := r.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Series) != 1 || len(f3.Series[0].X) == 0 {
		t.Fatal("Fig3 empty")
	}
	f8, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Series) != 2 {
		t.Fatal("Fig8 wants AND and OR series")
	}
	for _, s := range f8.Series {
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("mean detectability %v out of range", y)
			}
		}
	}
}

func TestFig4Adherence(t *testing.T) {
	r := quickRunner()
	fig, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	// The paper: generally low adherence values with a sharp, isolated
	// rise at adherence 1 — the last bin must be a clear local spike
	// above its high-adherence neighborhood.
	last := s.Y[len(s.Y)-1]
	if last <= 0 {
		t.Fatal("no faults with adherence 1?")
	}
	for i := len(s.Y) - 4; i < len(s.Y)-1; i++ {
		if s.Y[i] >= last {
			t.Fatalf("adherence-1 spike not isolated: bin %d = %v vs last %v", i, s.Y[i], last)
		}
	}
	// Low adherence dominates overall: mass below 0.5 exceeds mass above.
	half := len(s.Y) / 2
	lo, hi := 0.0, 0.0
	for i, y := range s.Y {
		if i < half {
			lo += y
		} else {
			hi += y
		}
	}
	if lo <= hi {
		t.Fatalf("low adherence should dominate: low=%v high=%v", lo, hi)
	}
}

func TestFig5Proportions(t *testing.T) {
	r := quickRunner()
	fig, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatal("Fig5 wants AND and OR series")
	}
	for _, s := range fig.Series {
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("proportion %v out of range", y)
			}
		}
	}
}

func TestFig6And7(t *testing.T) {
	r := quickRunner()
	f6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Series) != 2 {
		t.Fatal("Fig6 wants 2 series")
	}
	f7, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Series) != 4 {
		t.Fatal("Fig7 wants 4 series")
	}
	// AND-only and OR-only means must be close (paper: "little difference
	// was seen").
	andS, orS := f7.Series[2], f7.Series[3]
	for i := range andS.Y {
		if d := andS.Y[i] - orS.Y[i]; d > 0.25 || d < -0.25 {
			t.Fatalf("AND vs OR means diverge too much at point %d: %v vs %v", i, andS.Y[i], orS.Y[i])
		}
	}
}

func TestX1X2X3X4(t *testing.T) {
	r := quickRunner()
	x1, err := r.X1()
	if err != nil {
		t.Fatal(err)
	}
	if len(x1.Rows) != len(r.Config().Circuits) {
		t.Fatal("X1 row count")
	}
	x2, err := r.X2()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range x2.Rows {
		if row[3] == "" {
			t.Fatal("X2 missing rate")
		}
	}
	x3, err := r.X3()
	if err != nil {
		t.Fatal(err)
	}
	if len(x3.Rows) != len(r.Config().Circuits) {
		t.Fatal("X3 row count")
	}
	x4, err := r.X4()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range x4.Rows {
		if strings.Contains(row[3], "MISMATCH") {
			t.Fatalf("X4 cross-check failed for %s", row[0])
		}
	}
	x5, err := r.X5()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range x5.Rows {
		// Hughes-McCluskey: single-SA test sets detect nearly all double
		// faults.
		if row[4] < "0.9" {
			t.Fatalf("X5 double-fault coverage suspiciously low for %s: %s", row[0], row[4])
		}
	}
	x6, err := r.X6()
	if err != nil {
		t.Fatal(err)
	}
	if len(x6.Rows) != len(r.Config().Circuits) {
		t.Fatal("X6 row count")
	}
}

func TestX8ScoapCarriesSignal(t *testing.T) {
	r := quickRunner()
	tab, err := r.X8()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if strings.Contains(row[3], "inverted") {
			t.Fatalf("SCOAP proxy inverted on %s: %s", row[0], row[2])
		}
	}
}

func TestX9PredictionTracksSimulation(t *testing.T) {
	r := quickRunner()
	tab, err := r.X9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		var diff float64
		fmt.Sscanf(row[4], "%f", &diff)
		// One random sample fluctuates; the expectation argument bounds
		// typical deviations well under 0.15 for these fault set sizes.
		if diff > 0.15 {
			t.Fatalf("X9 prediction off by %v for %s at N=%s", diff, row[0], row[1])
		}
	}
}

func TestX10AndSummary(t *testing.T) {
	r := quickRunner()
	x10, err := r.X10()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range x10.Rows {
		if row[2] == "0" {
			t.Fatalf("X10 reported zero classes for %s", row[0])
		}
	}
	x11, err := r.X11()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range x11.Rows {
		if row[3] == "0.000" {
			t.Fatalf("no syndrome-testable faults on %s is implausible", row[0])
		}
	}
	x12, err := r.X12()
	if err != nil {
		t.Fatal(err)
	}
	if len(x12.Rows) != 2*len(r.Config().Circuits) {
		t.Fatal("X12 wants one row per circuit and kind")
	}
	sum, err := r.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != len(r.Config().Circuits) {
		t.Fatal("summary row count")
	}
}

func TestX7RedesignRecoversTestability(t *testing.T) {
	if testing.Short() {
		t.Skip("X7 runs three full studies")
	}
	r := quickRunner()
	tab, err := r.X7()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("X7 wants 3 rows, got %d", len(tab.Rows))
	}
	var gates [3]int
	var mean [3]float64
	for i, row := range tab.Rows {
		fmt.Sscanf(row[1], "%d", &gates[i])
		fmt.Sscanf(row[3], "%f", &mean[i])
	}
	// The re-minimized circuit must land at (or very near) the original
	// gate count, and strictly below the bloated one.
	if gates[2] >= gates[1] {
		t.Fatalf("optimizer did not shrink: %d -> %d gates", gates[1], gates[2])
	}
	if mean[2] <= mean[1] {
		t.Fatalf("redesign did not improve mean detectability: %v -> %v", mean[1], mean[2])
	}
}

func TestCachingSharesStudies(t *testing.T) {
	r := quickRunner()
	a, err := r.StuckAtStudy("c17")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.StuckAtStudy("c17")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("studies must be cached")
	}
	ba, err := r.BridgingStudy("c17", faults.WiredAND)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := r.BridgingStudy("c17", faults.WiredAND)
	if err != nil {
		t.Fatal(err)
	}
	if ba != bb {
		t.Fatal("bridging studies must be cached")
	}
	if _, err := r.StuckAtStudy("bogus"); err == nil {
		t.Fatal("unknown circuit must error")
	}
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full exhibit run in -short mode")
	}
	exhibits, err := quickRunner().All()
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10", "x11", "x12", "summary"}
	if len(exhibits) != len(wantIDs) {
		t.Fatalf("%d exhibits, want %d", len(exhibits), len(wantIDs))
	}
	for i, ex := range exhibits {
		if ex.ID != wantIDs[i] {
			t.Fatalf("exhibit %d is %s, want %s", i, ex.ID, wantIDs[i])
		}
		if ex.Text == "" || ex.CSV == "" {
			t.Fatalf("exhibit %s not rendered", ex.ID)
		}
	}
}

func TestUnknownCircuitPropagatesEverywhere(t *testing.T) {
	cfg := QuickConfig()
	cfg.Circuits = []string{"nonexistent"}
	cfg.HistCircuits = []string{"nonexistent"}
	cfg.AdherenceCircuit = "nonexistent"
	cfg.BFHistCircuit = "nonexistent"
	cfg.DistanceCircuit = "nonexistent"
	r := NewRunner(cfg)
	if _, err := r.Fig1(); err == nil {
		t.Fatal("Fig1 must fail")
	}
	if _, err := r.Fig2(); err == nil {
		t.Fatal("Fig2 must fail")
	}
	if _, err := r.Fig3(); err == nil {
		t.Fatal("Fig3 must fail")
	}
	if _, err := r.Fig5(); err == nil {
		t.Fatal("Fig5 must fail")
	}
	if _, err := r.Fig6(); err == nil {
		t.Fatal("Fig6 must fail")
	}
	if _, err := r.X1(); err == nil {
		t.Fatal("X1 must fail")
	}
	if _, err := r.X3(); err == nil {
		t.Fatal("X3 must fail")
	}
	if _, err := r.X10(); err == nil {
		t.Fatal("X10 must fail")
	}
	if _, err := r.X11(); err == nil {
		t.Fatal("X11 must fail")
	}
	if _, err := r.Summary(); err == nil {
		t.Fatal("Summary must fail")
	}
	if _, err := r.TestSet("nonexistent"); err == nil {
		t.Fatal("TestSet must fail")
	}
	if _, err := r.All(); err == nil {
		t.Fatal("All must fail")
	}
}

func TestTestSetCached(t *testing.T) {
	r := quickRunner()
	a, err := r.TestSet("c17")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.TestSet("c17")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("test sets must be cached")
	}
}
