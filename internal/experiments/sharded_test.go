package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faults"
)

// buildDiffprop compiles the real diffprop binary the supervised runner
// execs. Skips when the toolchain build fails (e.g. in a stripped
// environment); the in-process paths are covered elsewhere.
func buildDiffprop(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "diffprop")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/diffprop").CombinedOutput(); err != nil {
		t.Skipf("building diffprop: %v\n%s", err, out)
	}
	return bin
}

func TestShardedStudiesMatchInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("execs subprocess campaigns")
	}
	bin := buildDiffprop(t)
	base := QuickConfig()
	base.Circuits = []string{"c17"}
	base.MaxBFs = 20

	inproc := NewRunner(base)

	sharded := base
	sharded.Shards = 3
	sharded.WorkerBinary = bin
	sharded.ShardDir = t.TempDir()
	sup := NewRunner(sharded)

	wantSA, err := inproc.StuckAtStudy("c17")
	if err != nil {
		t.Fatal(err)
	}
	gotSA, err := sup.StuckAtStudy("c17")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSA.Records, wantSA.Records) {
		t.Errorf("sharded stuck-at records differ from in-process:\n%s\nvs\n%s",
			mustJSON(t, gotSA.Records), mustJSON(t, wantSA.Records))
	}

	wantBF, err := inproc.BridgingStudy("c17", faults.WiredOR)
	if err != nil {
		t.Fatal(err)
	}
	gotBF, err := sup.BridgingStudy("c17", faults.WiredOR)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotBF.Records, wantBF.Records) {
		t.Errorf("sharded bridging records differ from in-process:\n%s\nvs\n%s",
			mustJSON(t, gotBF.Records), mustJSON(t, wantBF.Records))
	}

	// The merged checkpoints stay in ShardDir for resumption.
	if _, err := os.Stat(filepath.Join(sharded.ShardDir, "c17-sa.jsonl")); err != nil {
		t.Errorf("merged stuck-at checkpoint missing: %v", err)
	}
}

func TestShardedConfigValidation(t *testing.T) {
	cfg := QuickConfig()
	cfg.Circuits = []string{"c17"}
	cfg.Shards = 2
	r := NewRunner(cfg)
	if _, err := r.StuckAtStudy("c17"); err == nil {
		t.Fatal("Shards without WorkerBinary accepted")
	}
	cfg.WorkerBinary = "/bin/false"
	r = NewRunner(cfg)
	if _, err := r.StuckAtStudy("c17"); err == nil {
		t.Fatal("Shards without ShardDir accepted")
	}
	cfg.ShardDir = filepath.Join(os.TempDir(), fmt.Sprintf("exp-shard-val-%d", os.Getpid()))
	defer os.RemoveAll(cfg.ShardDir)
	r = NewRunner(cfg)
	if _, err := r.StuckAtStudy("c17"); err == nil {
		t.Fatal("failing worker binary accepted")
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
