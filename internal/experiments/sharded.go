package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
)

// shardedRecords runs one supervised, crash-tolerant campaign by exec'ing
// the diffprop binary in -shards mode and loading the merged checkpoint it
// writes. The supervisor partitions the fault set across restartable
// worker subprocesses (see internal/supervise); merged records are
// bit-identical to an in-process run, so the caller can rebuild the study
// by resuming from them without recomputing anything.
//
// model is the diffprop -model value ("sa", "and", "or"); total is the
// fault-set size the caller derived, cross-checked against the checkpoint
// header to catch configuration drift between this process and the
// subprocess.
func (r *Runner) shardedRecords(name, model string, total int) (map[int]json.RawMessage, error) {
	cfg := r.cfg
	if cfg.WorkerBinary == "" {
		return nil, fmt.Errorf("experiments: Shards > 0 needs WorkerBinary (the diffprop executable)")
	}
	if cfg.ShardDir == "" {
		return nil, fmt.Errorf("experiments: Shards > 0 needs ShardDir (checkpoint directory)")
	}
	if err := os.MkdirAll(cfg.ShardDir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: shard dir: %w", err)
	}
	ckpt := filepath.Join(cfg.ShardDir, fmt.Sprintf("%s-%s.jsonl", name, model))
	args := []string{
		"-circuit", name,
		"-model", model,
		"-shards", fmt.Sprint(cfg.Shards),
		"-checkpoint", ckpt,
		"-summary",
		"-maxbfs", fmt.Sprint(cfg.MaxBFs),
		"-theta", fmt.Sprint(cfg.Theta),
		"-seed", fmt.Sprint(cfg.Seed),
		"-workers", fmt.Sprint(cfg.Workers),
		"-order", cfg.Order.String(),
	}
	if cfg.FaultOps > 0 {
		args = append(args, "-budget", fmt.Sprint(cfg.FaultOps))
	}
	if cfg.FaultTimeout > 0 {
		args = append(args, "-timeout", cfg.FaultTimeout.String())
	}
	if cfg.Recovery.NodeLimit > 0 {
		args = append(args, "-nodelimit", fmt.Sprint(cfg.Recovery.NodeLimit))
	}
	if cfg.Recovery.SiftPasses > 0 {
		args = append(args, "-gcauto")
	}
	if cfg.Recovery.RetryMultiplier > 1 {
		args = append(args, "-retrybudget", fmt.Sprint(cfg.Recovery.RetryMultiplier))
	}
	if cfg.MemLimit > 0 {
		args = append(args, "-memlimit", fmt.Sprintf("%dB", cfg.MemLimit))
	}
	if cfg.Calibrate.Enabled {
		args = append(args, "-calibrate")
	}
	if cfg.FullScan {
		args = append(args, "-fullscan")
	}
	cmd := exec.Command(cfg.WorkerBinary, args...)
	cmd.Stdout = io.Discard // the human report; the checkpoint is the output
	cmd.Stderr = os.Stderr
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() == 2 {
		// Exit 2 is a completed campaign with per-fault errors (including
		// quarantined poison faults) — those faults carry Err records, the
		// rest are exact. The study reports them; the run is not a failure.
		err = nil
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: supervised %s %s campaign: %w", name, model, err)
	}
	hdr, recs, _, err := analysis.LoadCheckpoint(ckpt)
	if err != nil {
		return nil, fmt.Errorf("experiments: supervised %s %s campaign: %w", name, model, err)
	}
	if hdr.Faults != total || len(recs) != total {
		return nil, fmt.Errorf("experiments: supervised %s %s campaign: checkpoint holds %d of %d faults but this process derived %d — configuration drift between figures and %s",
			name, model, len(recs), hdr.Faults, total, cfg.WorkerBinary)
	}
	return recs, nil
}
