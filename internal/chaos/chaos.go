// Package chaos is a deterministic, seeded fault-injection harness for
// campaign robustness testing.
//
// The campaign stack promises strong invariants — no lost or duplicated
// fault records, rescued records bit-identical to clean runs, checkpoint
// resume bit-identical after a crash — but in normal operation the paths
// that uphold them (budget aborts, the recovery ladder, panic isolation,
// torn-tail truncation, the memory governor) only fire when a circuit
// happens to blow up. This package lets tests and CI force those paths on
// demand, reproducibly: every injection decision is a pure function of a
// user-chosen seed and the injection site, so a failing storm can be
// replayed from its seed alone.
//
// A Config names which injection points fire and how (scripted indices or
// a seeded per-index probability); New compiles it into an Injector that
// the analysis layer consults at each seam. A nil Injector is fully
// inert: every method short-circuits on the nil receiver without
// allocating, so the per-fault hot path of a chaos-free campaign is
// untouched.
//
// Injection points fall in two groups with different determinism
// strength. Fault-keyed points (budget, nodelimit, panic, latency) are
// decided by hashing (seed, point, fault index) — the decision is
// independent of worker count, scheduling and time, so the same seed
// injects at the same faults in every run. Sequence-keyed points
// (ckptwrite, ckptsync, memsample) are keyed by an atomic per-point
// evaluation counter; WHICH append or heap sample a probabilistic rule
// hits depends on goroutine interleaving, so scripted Indices (or
// Count-capped always-fire rules) are the reproducible way to use them.
package chaos

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync/atomic"
	"syscall"
	"time"
)

// Point names one injection site in the campaign stack.
type Point uint8

const (
	// PointBudget forces a bdd.ErrBudget abort at the AtOp-th charged BDD
	// operation of the selected fault's analysis (first attempt only; the
	// recovery ladder's retry runs clean, which is what makes rescued
	// records bit-identical to an uninjected run).
	PointBudget Point = iota
	// PointNodeLimit forces a bdd.ErrNodeLimit abort the same way.
	PointNodeLimit
	// PointPanic raises a worker panic inside the selected fault's
	// analysis (inside the per-fault recover scope, so the campaign
	// records a per-fault error instead of dying).
	PointPanic
	// PointLatency sleeps for Rule.Latency before the selected fault's
	// analysis, simulating slow faults without burning CPU.
	PointLatency
	// PointCheckpointWrite fails a checkpoint Append: the line is
	// truncated to Rule.Bytes bytes (0 = nothing written, a clean ENOSPC;
	// > 0 = a torn line, as left by a crash mid-write) and the append
	// reports an error wrapping syscall.ENOSPC.
	PointCheckpointWrite
	// PointCheckpointSync fails a checkpoint fsync.
	PointCheckpointSync
	// PointMemSample makes the memory governor's heap sampler lie,
	// reporting Rule.MemBytes instead of the real heap occupancy.
	PointMemSample
	// PointWorkerKill SIGKILLs the worker process the moment the selected
	// fault's analysis arrives — the supervision harness's storm point. A
	// SIGKILL cannot be caught, so this is a true abrupt death: no defers,
	// no checkpoint flush beyond what already hit the disk. Process-level
	// points are fault-keyed by the shard-global index (Config.KeyOffset)
	// and, unless Rule.Repeat is set, fire only on a worker's first attempt
	// (Config.Attempt == 0) so restarted workers converge; Repeat makes the
	// kill recur on every restart — the poison-fault scenario the
	// supervisor answers with bisection and quarantine.
	PointWorkerKill
	// PointHeartbeatStall silences the worker's supervision heartbeats from
	// the selected tick on while the analysis keeps running — simulating a
	// wedged runtime the supervisor must detect by timeout and kill.
	// Sequence-keyed by heartbeat tick; attempt-gated like PointWorkerKill.
	PointHeartbeatStall
	// PointShardTear appends a torn partial line to the shard checkpoint
	// (via the Config.Tear seam; Rule.Bytes bytes, default 16) and then
	// SIGKILLs the worker — a crash mid-append, exercising the resuming
	// worker's torn-tail truncation. Fault-keyed and attempt-gated like
	// PointWorkerKill.
	PointShardTear

	numPoints
)

var pointNames = [numPoints]string{
	PointBudget:          "budget",
	PointNodeLimit:       "nodelimit",
	PointPanic:           "panic",
	PointLatency:         "latency",
	PointCheckpointWrite: "ckptwrite",
	PointCheckpointSync:  "ckptsync",
	PointMemSample:       "memsample",
	PointWorkerKill:      "workerkill",
	PointHeartbeatStall:  "hbstall",
	PointShardTear:       "shardtear",
}

// processPoint reports whether p is a process-level supervision point —
// the group that is attempt-gated (fires on a worker's first attempt only
// unless Rule.Repeat is set).
func processPoint(p Point) bool {
	return p == PointWorkerKill || p == PointHeartbeatStall || p == PointShardTear
}

// String returns the point's spec-grammar name.
func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", int(p))
}

// PointByName resolves a spec-grammar name to its Point.
func PointByName(name string) (Point, bool) {
	for p, n := range pointNames {
		if n == name {
			return Point(p), true
		}
	}
	return 0, false
}

// Sentinel errors carried by injected failures. ErrInjected is wrapped by
// every injection-specific error, so errors.Is(err, chaos.ErrInjected)
// identifies any chaos-made failure.
var (
	ErrInjected = errors.New("chaos: injected failure")
	// ErrInjectedPanic is the value raised by worker-panic injections.
	ErrInjectedPanic = fmt.Errorf("injected worker panic: %w", ErrInjected)
	// ErrDiskFull is reported by checkpoint write/fsync injections; it
	// wraps syscall.ENOSPC so callers testing for a real full disk match.
	ErrDiskFull = fmt.Errorf("injected checkpoint I/O failure: %w (%w)", syscall.ENOSPC, ErrInjected)
)

// Rule selects when one injection point fires. Exactly one of Indices and
// Prob should be set; a rule with neither fires on every evaluation
// (useful with Count to fail "the first N"). All selections are further
// capped by Count when positive.
type Rule struct {
	// Point is the injection site this rule arms.
	Point Point
	// Indices fires at exactly these keys: fault indices for fault-keyed
	// points, 0-based evaluation sequence numbers for sequence-keyed ones.
	Indices []int
	// Prob fires with this probability per key, decided by hashing
	// (Config.Seed, Point, key) — reproducible for fault-keyed points.
	Prob float64
	// Count caps the total number of firings (0 = unlimited). The cap is
	// taken in evaluation order, so with concurrent workers WHICH keys
	// consume it is schedule-dependent.
	Count int64
	// AtOp is the charged-operation count at which budget/nodelimit
	// aborts fire within the fault's analysis. The default 1 (abort on
	// the first charged operation) is the only schedule-independent
	// choice: later charge counts depend on how warm the shared computed
	// cache happens to be.
	AtOp int64
	// Latency is the injected sleep for PointLatency.
	Latency time.Duration
	// Bytes is how much of the checkpoint line a PointCheckpointWrite
	// failure lets through: 0 fails before writing (clean ENOSPC), a
	// positive value leaves a torn line of that many bytes.
	Bytes int
	// MemBytes is the fake heap occupancy reported by PointMemSample.
	MemBytes int64
	// Repeat lets a process-level point (workerkill, hbstall, shardtear)
	// fire on every worker restart attempt instead of only the first —
	// the poison-fault scenario. Ignored by every other point.
	Repeat bool
}

// Config activates the harness: a seed (the replay key) plus the armed
// rules. The zero Config — and a nil *Config — injects nothing.
type Config struct {
	Seed  int64
	Rules []Rule

	// KeyOffset shifts every fault-keyed decision by this amount: a shard
	// worker analyzing global faults [lo, hi) as local indices [0, hi-lo)
	// sets KeyOffset = lo, so a spec injects at the same global faults
	// whether the campaign runs sharded or in one process. Zero (the
	// default) leaves local indices as the keys.
	KeyOffset int
	// Attempt is the worker's restart attempt (0 = first launch). Rules on
	// process-level points without Repeat only fire at attempt 0, so a
	// restarted worker converges instead of dying at the same fault again.
	Attempt int
	// Tear is the shard-checkpoint tear seam consulted by PointShardTear:
	// it must append the given number of unterminated garbage bytes to the
	// checkpoint file (shard workers wire it to Checkpointer.TearTail).
	// A firing shardtear rule with a nil Tear only kills.
	Tear func(bytes int)
	// Kill overrides the process self-destruct used by PointWorkerKill and
	// PointShardTear; nil selects the real thing, SIGKILL to the own
	// process. Tests substitute a recording stub.
	Kill func()
}

// compiledRule is a Rule plus its runtime state.
type compiledRule struct {
	Rule
	indices map[int]bool // non-nil iff Indices was set
	taken   atomic.Int64 // firings consumed against Count
}

// match decides whether the rule selects key, ignoring the Count cap.
func (r *compiledRule) match(seed int64, key int) bool {
	if r.indices != nil {
		return r.indices[key]
	}
	if r.Prob > 0 {
		return hash01(seed, r.Point, key) < r.Prob
	}
	return true
}

// take consumes one firing against the Count cap.
func (r *compiledRule) take() bool {
	if r.Count <= 0 {
		return true
	}
	for {
		n := r.taken.Load()
		if n >= r.Count {
			return false
		}
		if r.taken.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Injector is a compiled Config. All methods are safe for concurrent use
// and inert on a nil receiver.
type Injector struct {
	seed    int64
	offset  int // added to every fault-keyed decision key
	attempt int // worker restart attempt gating process-level points
	rules   [numPoints][]*compiledRule
	tear    func(bytes int)
	kill    func()
	log     *slog.Logger
	hook    func(p Point, key int) // observer for every firing; nil = off
	fired   atomic.Int64
	seq     [numPoints]atomic.Int64 // per-point evaluation counters (sequence-keyed points)
}

// killSelf is the real process self-destruct: SIGKILL, uncatchable, no
// defers — exactly what the Linux OOM killer or an operator's kill -9
// delivers.
func killSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL) //nolint:errcheck // the process is gone either way
	// SIGKILL delivery can lag the syscall return by a scheduler tick;
	// block rather than let the analysis continue past its own death.
	select {}
}

// New compiles a Config. A nil config (or one with no rules) yields a nil
// Injector, whose every method is a no-op.
func New(cfg *Config) *Injector {
	if cfg == nil || len(cfg.Rules) == 0 {
		return nil
	}
	in := &Injector{seed: cfg.Seed, offset: cfg.KeyOffset, attempt: cfg.Attempt, tear: cfg.Tear, kill: cfg.Kill}
	if in.kill == nil {
		in.kill = killSelf
	}
	for i := range cfg.Rules {
		r := &compiledRule{Rule: cfg.Rules[i]}
		if r.Point >= numPoints {
			continue
		}
		if len(r.Indices) > 0 {
			r.indices = make(map[int]bool, len(r.Indices))
			for _, idx := range r.Indices {
				r.indices[idx] = true
			}
		}
		if r.AtOp <= 0 {
			r.AtOp = 1
		}
		if r.Point == PointShardTear && r.Bytes <= 0 {
			r.Bytes = 16
		}
		in.rules[r.Point] = append(in.rules[r.Point], r)
	}
	return in
}

// SetLogger attaches a structured logger; every firing is logged at Info
// with its point and key. Set before the campaign starts.
func (in *Injector) SetLogger(log *slog.Logger) {
	if in == nil {
		return
	}
	in.log = log
}

// SetEventHook registers an observer called for every firing with its
// point and key (the flight-recorder seam — the audit trail a post-mortem
// correlates injections against). The hook runs on the firing goroutine;
// it must be cheap and must not inject. Set before the campaign starts; a
// nil hook disables it (the default).
func (in *Injector) SetEventHook(hook func(p Point, key int)) {
	if in == nil {
		return
	}
	in.hook = hook
}

// Injected reports how many injections have fired so far.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	return in.fired.Load()
}

// Has reports whether any rule arms the point (false on nil).
func (in *Injector) Has(p Point) bool {
	return in != nil && p < numPoints && len(in.rules[p]) > 0
}

// fires evaluates the point's rules against key and returns the first
// that fires, recording the firing.
func (in *Injector) fires(p Point, key int) *compiledRule {
	if in == nil {
		return nil
	}
	for _, r := range in.rules[p] {
		// Process-level points without Repeat arm only a worker's first
		// attempt: a restarted worker must converge, not die again.
		if processPoint(p) && in.attempt != 0 && !r.Repeat {
			continue
		}
		if r.match(in.seed, key) && r.take() {
			in.fired.Add(1)
			if in.log != nil {
				in.log.Info("chaos injection fired", "point", p.String(), "key", key)
			}
			if in.hook != nil {
				in.hook(p, key)
			}
			return r
		}
	}
	return nil
}

// next consumes one evaluation of a sequence-keyed point.
func (in *Injector) next(p Point) int {
	return int(in.seq[p].Add(1) - 1)
}

// key maps a local fault index to its decision key: the shard-global
// index when Config.KeyOffset is set, i itself otherwise. All fault-keyed
// points go through this, so one spec selects the same global faults
// whether the campaign runs sharded or in a single process.
func (in *Injector) key(i int) int {
	return i + in.offset
}

// BudgetAbort reports whether fault i's analysis should be aborted with a
// forced bdd.ErrBudget, and at which charged operation.
func (in *Injector) BudgetAbort(i int) (atOp int64, ok bool) {
	if in == nil {
		return 0, false
	}
	if r := in.fires(PointBudget, in.key(i)); r != nil {
		return r.AtOp, true
	}
	return 0, false
}

// NodeLimitAbort is BudgetAbort for forced bdd.ErrNodeLimit.
func (in *Injector) NodeLimitAbort(i int) (atOp int64, ok bool) {
	if in == nil {
		return 0, false
	}
	if r := in.fires(PointNodeLimit, in.key(i)); r != nil {
		return r.AtOp, true
	}
	return 0, false
}

// Panic reports whether fault i's analysis should panic. The caller
// raises the panic (inside its per-fault recover scope) with an error
// wrapping ErrInjectedPanic.
func (in *Injector) Panic(i int) bool {
	if in == nil {
		return false
	}
	return in.fires(PointPanic, in.key(i)) != nil
}

// Latency returns the injected sleep for fault i (0 = none).
func (in *Injector) Latency(i int) time.Duration {
	if in == nil {
		return 0
	}
	if r := in.fires(PointLatency, in.key(i)); r != nil {
		return r.Latency
	}
	return 0
}

// WorkerCrash kills the worker process when a workerkill or shardtear
// rule selects fault i (fault-keyed by shard-global index). A firing
// shardtear first appends a torn partial line to the shard checkpoint
// through the Tear seam, then kills — a crash mid-append. With the real
// Kill (SIGKILL to self) this call never returns; tests substituting a
// recording stub get control back.
func (in *Injector) WorkerCrash(i int) {
	if in == nil {
		return
	}
	if r := in.fires(PointShardTear, in.key(i)); r != nil {
		if in.tear != nil {
			in.tear(r.Bytes)
		}
		in.kill()
		return
	}
	if in.fires(PointWorkerKill, in.key(i)) != nil {
		in.kill()
	}
}

// HeartbeatStall reports whether the worker's supervision heartbeats
// should fall silent from this tick on (sequence-keyed by heartbeat
// tick). Once true, the heartbeat loop stops sending for the remainder
// of the process lifetime; the caller enforces the latching.
func (in *Injector) HeartbeatStall() bool {
	if in == nil {
		return false
	}
	return in.fires(PointHeartbeatStall, in.next(PointHeartbeatStall)) != nil
}

// CheckpointWrite decides the fate of the next checkpoint append. err is
// nil for a clean write; otherwise keep is how many bytes of the line to
// leave behind as a torn tail (0 = none) and err wraps ErrDiskFull.
func (in *Injector) CheckpointWrite() (keep int, err error) {
	if in == nil {
		return 0, nil
	}
	if r := in.fires(PointCheckpointWrite, in.next(PointCheckpointWrite)); r != nil {
		return r.Bytes, ErrDiskFull
	}
	return 0, nil
}

// CheckpointSync decides the fate of the next checkpoint fsync (nil =
// clean).
func (in *Injector) CheckpointSync() error {
	if in == nil {
		return nil
	}
	if in.fires(PointCheckpointSync, in.next(PointCheckpointSync)) != nil {
		return ErrDiskFull
	}
	return nil
}

// MemSample returns a lying heap sample for the governor when the
// memsample point fires for the next sample in sequence.
func (in *Injector) MemSample() (heap int64, ok bool) {
	if in == nil {
		return 0, false
	}
	if r := in.fires(PointMemSample, in.next(PointMemSample)); r != nil {
		return r.MemBytes, true
	}
	return 0, false
}

// hash01 maps (seed, point, key) to a uniform float64 in [0, 1) via a
// splitmix64 finalizer — stateless, so the decision is independent of
// evaluation order.
func hash01(seed int64, p Point, key int) float64 {
	x := uint64(seed)
	x ^= (uint64(p) + 1) * 0x9E3779B97F4A7C15
	x ^= uint64(int64(key)) * 0xBF58476D1CE4E5B9
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
