package chaos

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in != New(nil) {
		t.Fatal("New(nil) must be nil")
	}
	if New(&Config{}) != nil {
		t.Fatal("New of a rule-less config must be nil")
	}
	if at, ok := in.BudgetAbort(0); ok || at != 0 {
		t.Fatal("nil injector armed a budget abort")
	}
	if _, ok := in.NodeLimitAbort(0); ok {
		t.Fatal("nil injector armed a node-limit abort")
	}
	if in.Panic(0) || in.Latency(0) != 0 {
		t.Fatal("nil injector injected panic/latency")
	}
	if _, err := in.CheckpointWrite(); err != nil {
		t.Fatal("nil injector failed a checkpoint write")
	}
	if err := in.CheckpointSync(); err != nil {
		t.Fatal("nil injector failed a checkpoint sync")
	}
	if _, ok := in.MemSample(); ok {
		t.Fatal("nil injector lied about memory")
	}
	if in.Injected() != 0 || in.Has(PointBudget) {
		t.Fatal("nil injector reported state")
	}
	in.SetLogger(nil) // must not crash
}

func TestIndicesSelectExactly(t *testing.T) {
	in := New(&Config{Rules: []Rule{{Point: PointBudget, Indices: []int{3, 17}, AtOp: 5}}})
	for i := 0; i < 30; i++ {
		at, ok := in.BudgetAbort(i)
		want := i == 3 || i == 17
		if ok != want {
			t.Fatalf("fault %d: fired=%v, want %v", i, ok, want)
		}
		if ok && at != 5 {
			t.Fatalf("fault %d: atOp=%d, want 5", i, at)
		}
	}
	if got := in.Injected(); got != 2 {
		t.Fatalf("Injected()=%d, want 2", got)
	}
}

// Probabilistic fault-keyed decisions are a pure function of (seed,
// point, index): independent injector instances agree, evaluation order
// is irrelevant, and different seeds pick different sets.
func TestSeededDecisionsDeterministic(t *testing.T) {
	cfg := &Config{Seed: 42, Rules: []Rule{{Point: PointPanic, Prob: 0.3}}}
	a, b := New(cfg), New(cfg)
	var hitsA, hitsB []int
	for i := 0; i < 200; i++ {
		if a.Panic(i) {
			hitsA = append(hitsA, i)
		}
	}
	for i := 199; i >= 0; i-- { // reverse order on purpose
		if b.Panic(i) {
			hitsB = append(hitsB, i)
		}
	}
	if len(hitsA) == 0 || len(hitsA) == 200 {
		t.Fatalf("p=0.3 over 200 faults fired %d times", len(hitsA))
	}
	for i, j := 0, len(hitsB)-1; j >= 0; i, j = i+1, j-1 {
		if hitsA[i] != hitsB[j] {
			t.Fatalf("same seed disagreed: %v vs reversed %v", hitsA, hitsB)
		}
	}
	other := New(&Config{Seed: 43, Rules: cfg.Rules})
	same := true
	for i := 0; i < 200; i++ {
		if other.Panic(i) != a.Panic(i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical decisions")
	}
}

func TestPointsAreIndependent(t *testing.T) {
	in := New(&Config{Seed: 7, Rules: []Rule{
		{Point: PointBudget, Prob: 0.5},
		{Point: PointNodeLimit, Prob: 0.5},
	}})
	diff := false
	for i := 0; i < 100; i++ {
		_, b := in.BudgetAbort(i)
		_, n := in.NodeLimitAbort(i)
		if b != n {
			diff = true
		}
	}
	if !diff {
		t.Fatal("budget and nodelimit points share decisions; they must hash independently")
	}
}

func TestCountCapsFirings(t *testing.T) {
	in := New(&Config{Rules: []Rule{{Point: PointCheckpointSync, Count: 2}}})
	fails := 0
	for i := 0; i < 10; i++ {
		if in.CheckpointSync() != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("count=2 rule fired %d times", fails)
	}
}

func TestCheckpointWriteTornBytes(t *testing.T) {
	in := New(&Config{Rules: []Rule{{Point: PointCheckpointWrite, Indices: []int{1}, Bytes: 10}}})
	if _, err := in.CheckpointWrite(); err != nil {
		t.Fatal("append 0 should pass")
	}
	keep, err := in.CheckpointWrite()
	if err == nil || keep != 10 {
		t.Fatalf("append 1: keep=%d err=%v, want torn 10-byte failure", keep, err)
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("injected write error %v must wrap ErrInjected and ENOSPC", err)
	}
}

func TestMemSampleLies(t *testing.T) {
	in := New(&Config{Rules: []Rule{{Point: PointMemSample, Indices: []int{0, 1}, MemBytes: 1 << 40}}})
	for i := 0; i < 2; i++ {
		heap, ok := in.MemSample()
		if !ok || heap != 1<<40 {
			t.Fatalf("sample %d: heap=%d ok=%v", i, heap, ok)
		}
	}
	if _, ok := in.MemSample(); ok {
		t.Fatal("sample 2 should be truthful")
	}
}

func TestLatency(t *testing.T) {
	in := New(&Config{Rules: []Rule{{Point: PointLatency, Indices: []int{4}, Latency: 3 * time.Millisecond}}})
	if d := in.Latency(0); d != 0 {
		t.Fatalf("fault 0 latency = %v", d)
	}
	if d := in.Latency(4); d != 3*time.Millisecond {
		t.Fatalf("fault 4 latency = %v", d)
	}
}

func TestParse(t *testing.T) {
	cfg, err := Parse("seed=7;budget:p=0.35,at=2;latency:i=3+9,d=2ms;ckptwrite:i=5,bytes=10;memsample:count=3,mem=1073741824")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || len(cfg.Rules) != 4 {
		t.Fatalf("seed=%d rules=%d", cfg.Seed, len(cfg.Rules))
	}
	b := cfg.Rules[0]
	if b.Point != PointBudget || b.Prob != 0.35 || b.AtOp != 2 {
		t.Fatalf("budget rule = %+v", b)
	}
	l := cfg.Rules[1]
	if l.Point != PointLatency || len(l.Indices) != 2 || l.Indices[1] != 9 || l.Latency != 2*time.Millisecond {
		t.Fatalf("latency rule = %+v", l)
	}
	w := cfg.Rules[2]
	if w.Point != PointCheckpointWrite || w.Bytes != 10 {
		t.Fatalf("ckptwrite rule = %+v", w)
	}
	m := cfg.Rules[3]
	if m.Point != PointMemSample || m.Count != 3 || m.MemBytes != 1<<30 {
		t.Fatalf("memsample rule = %+v", m)
	}
}

func TestParseEmpty(t *testing.T) {
	cfg, err := Parse("  ")
	if err != nil || cfg != nil {
		t.Fatalf("empty spec: cfg=%v err=%v", cfg, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus:p=0.5",        // unknown point
		"budget:q=1",         // unknown key
		"budget:p=2",         // probability out of range
		"budget:p=0.5,i=1",   // exclusive selectors
		"budget:at=0",        // threshold below 1
		"latency:d=-1s",      // negative duration
		"seed=x;budget:p=.1", // bad seed
		"seed=7",             // no rules
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestSetEventHookSeesEveryInjection(t *testing.T) {
	in := New(&Config{Rules: []Rule{{Point: PointBudget, Indices: []int{3, 17}, AtOp: 5}}})
	type hit struct {
		p   Point
		key int
	}
	var hits []hit
	in.SetEventHook(func(p Point, key int) { hits = append(hits, hit{p, key}) })
	for i := 0; i < 20; i++ {
		in.BudgetAbort(i)
	}
	if len(hits) != 2 {
		t.Fatalf("hook saw %d injections, want 2 (scripted indices 3 and 17)", len(hits))
	}
	if hits[0] != (hit{PointBudget, 3}) || hits[1] != (hit{PointBudget, 17}) {
		t.Fatalf("hook saw %v, want budget at keys 3 then 17", hits)
	}
	if in.Injected() != 2 {
		t.Fatalf("Injected() = %d after hook installed, want 2", in.Injected())
	}

	// Nil-safe on a nil injector and after disarming.
	var nilIn *Injector
	nilIn.SetEventHook(func(Point, int) { t.Fatal("hook on nil injector fired") })
	in.SetEventHook(nil)
	in.BudgetAbort(3)
}

// KeyOffset rebases every fault-keyed decision to shard-global indices: a
// worker analyzing global faults [96, ...) as local [0, ...) fires the
// same rules an unsharded run would at the global index.
func TestKeyOffsetShiftsFaultKeyedPoints(t *testing.T) {
	rules := []Rule{
		{Point: PointBudget, Indices: []int{100}, AtOp: 3},
		{Point: PointLatency, Indices: []int{100}, Latency: time.Millisecond},
		{Point: PointPanic, Indices: []int{100}},
	}
	sharded := New(&Config{Rules: rules, KeyOffset: 96})
	if _, ok := sharded.BudgetAbort(100); ok {
		t.Fatal("local index 100 (global 196) fired a rule scripted for global 100")
	}
	if at, ok := sharded.BudgetAbort(4); !ok || at != 3 {
		t.Fatalf("local 4 + offset 96: atOp=%d ok=%v, want the global-100 rule", at, ok)
	}
	if sharded.Latency(4) != time.Millisecond || !sharded.Panic(4) {
		t.Fatal("latency/panic did not rebase to the global index")
	}

	// Probabilistic selection agrees with an unsharded injector on the
	// same global keys.
	probCfg := []Rule{{Point: PointBudget, Prob: 0.3}}
	whole := New(&Config{Seed: 11, Rules: probCfg})
	part := New(&Config{Seed: 11, Rules: probCfg, KeyOffset: 50})
	for i := 0; i < 100; i++ {
		_, w := whole.BudgetAbort(50 + i)
		_, p := part.BudgetAbort(i)
		if w != p {
			t.Fatalf("global fault %d: unsharded fired=%v, sharded fired=%v", 50+i, w, p)
		}
	}
}

func TestWorkerCrashKillsAtScriptedFault(t *testing.T) {
	kills := 0
	in := New(&Config{
		Rules: []Rule{{Point: PointWorkerKill, Indices: []int{10}}},
		Kill:  func() { kills++ },
	})
	for i := 0; i < 20; i++ {
		in.WorkerCrash(i)
	}
	if kills != 1 {
		t.Fatalf("workerkill at i=10 killed %d times over 20 faults, want 1", kills)
	}
	var nilIn *Injector
	nilIn.WorkerCrash(0) // must not crash
}

// A shardtear firing appends the torn bytes through the Tear seam BEFORE
// killing — the order that models a crash mid-append.
func TestShardTearTearsThenKills(t *testing.T) {
	var events []string
	in := New(&Config{
		Rules: []Rule{{Point: PointShardTear, Indices: []int{5}}},
		Tear:  func(n int) { events = append(events, fmt.Sprintf("tear(%d)", n)) },
		Kill:  func() { events = append(events, "kill") },
	})
	in.WorkerCrash(4)
	if len(events) != 0 {
		t.Fatalf("unselected fault crashed: %v", events)
	}
	in.WorkerCrash(5)
	if len(events) != 2 || events[0] != "tear(16)" || events[1] != "kill" {
		t.Fatalf("shardtear events = %v, want [tear(16) kill] (default 16 torn bytes, tear before kill)", events)
	}
}

// Process-level points are attempt-gated: without rep they arm only a
// worker's first launch, so a restarted worker converges; with rep the
// kill recurs on every attempt — the poison fault bisection quarantines.
func TestProcessPointsAttemptGated(t *testing.T) {
	for _, tc := range []struct {
		attempt   int
		repeat    bool
		wantKills int
	}{
		{attempt: 0, repeat: false, wantKills: 1},
		{attempt: 1, repeat: false, wantKills: 0},
		{attempt: 3, repeat: true, wantKills: 1},
	} {
		kills := 0
		in := New(&Config{
			Rules:   []Rule{{Point: PointWorkerKill, Indices: []int{2}, Repeat: tc.repeat}},
			Attempt: tc.attempt,
			Kill:    func() { kills++ },
		})
		for i := 0; i < 5; i++ {
			in.WorkerCrash(i)
		}
		if kills != tc.wantKills {
			t.Errorf("attempt=%d rep=%v: %d kills, want %d", tc.attempt, tc.repeat, kills, tc.wantKills)
		}
	}

	// Fault-keyed analysis points ignore the attempt gate entirely.
	in := New(&Config{Rules: []Rule{{Point: PointBudget, Indices: []int{2}}}, Attempt: 4})
	if _, ok := in.BudgetAbort(2); !ok {
		t.Fatal("budget abort was attempt-gated; only process-level points may be")
	}
}

func TestHeartbeatStallSequenceKeyed(t *testing.T) {
	in := New(&Config{Rules: []Rule{{Point: PointHeartbeatStall, Indices: []int{2}}}})
	got := []bool{in.HeartbeatStall(), in.HeartbeatStall(), in.HeartbeatStall(), in.HeartbeatStall()}
	want := []bool{false, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heartbeat ticks stalled %v, want %v (scripted tick 2)", got, want)
		}
	}
	var nilIn *Injector
	if nilIn.HeartbeatStall() {
		t.Fatal("nil injector stalled a heartbeat")
	}
}

func TestParseProcessPoints(t *testing.T) {
	cfg, err := Parse("seed=3;workerkill:i=7,rep=1;hbstall:i=2;shardtear:p=0.1,bytes=20")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(cfg.Rules))
	}
	k := cfg.Rules[0]
	if k.Point != PointWorkerKill || !k.Repeat || len(k.Indices) != 1 || k.Indices[0] != 7 {
		t.Fatalf("workerkill rule = %+v", k)
	}
	if cfg.Rules[1].Point != PointHeartbeatStall || cfg.Rules[1].Repeat {
		t.Fatalf("hbstall rule = %+v", cfg.Rules[1])
	}
	s := cfg.Rules[2]
	if s.Point != PointShardTear || s.Prob != 0.1 || s.Bytes != 20 {
		t.Fatalf("shardtear rule = %+v", s)
	}
	if _, err := Parse("workerkill:rep=yes!"); err == nil {
		t.Fatal("bad rep value accepted")
	}
}
