// Compact spec grammar for arming the harness from a command line.
//
// A spec is semicolon-separated segments. The first segment may be
// "seed=<int>"; every other segment is "<point>:<key>=<val>,..." arming
// one rule, e.g.
//
//	seed=7;budget:p=0.35;latency:p=0.2,d=2ms;ckptwrite:i=5,bytes=10
//
// Points: budget, nodelimit, panic, latency, ckptwrite, ckptsync,
// memsample, workerkill, hbstall, shardtear. Keys: p (probability), i
// (indices, '+'-separated), at (charged-op threshold for
// budget/nodelimit), count (max firings), d (latency duration), bytes
// (torn-write prefix length), mem (fake heap sample in bytes), rep=1
// (re-arm a process-level point on every worker restart — the
// poison-fault scenario).
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse compiles a spec string into a Config. The empty string yields a
// nil Config (chaos off).
func Parse(spec string) (*Config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	cfg := &Config{}
	for segNo, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if v, ok := strings.CutPrefix(seg, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q", v)
			}
			cfg.Seed = seed
			continue
		}
		name, args, _ := strings.Cut(seg, ":")
		p, ok := PointByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("chaos: segment %d: unknown injection point %q (want budget, nodelimit, panic, latency, ckptwrite, ckptsync, memsample, workerkill, hbstall or shardtear)", segNo+1, name)
		}
		r := Rule{Point: p}
		if strings.TrimSpace(args) != "" {
			for _, kv := range strings.Split(args, ",") {
				k, v, _ := strings.Cut(strings.TrimSpace(kv), "=")
				if err := r.set(k, v); err != nil {
					return nil, fmt.Errorf("chaos: segment %d (%s): %w", segNo+1, name, err)
				}
			}
		}
		if len(r.Indices) > 0 && r.Prob > 0 {
			return nil, fmt.Errorf("chaos: segment %d (%s): i= and p= are mutually exclusive", segNo+1, name)
		}
		cfg.Rules = append(cfg.Rules, r)
	}
	if len(cfg.Rules) == 0 {
		return nil, fmt.Errorf("chaos: spec %q arms no injection points", spec)
	}
	return cfg, nil
}

// set applies one key=value pair to the rule.
func (r *Rule) set(k, v string) error {
	switch k {
	case "p":
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("bad probability p=%q (want 0..1)", v)
		}
		r.Prob = p
	case "i":
		for _, s := range strings.Split(v, "+") {
			idx, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || idx < 0 {
				return fmt.Errorf("bad index list i=%q (want e.g. i=3+17+42)", v)
			}
			r.Indices = append(r.Indices, idx)
		}
	case "at":
		at, err := strconv.ParseInt(v, 10, 64)
		if err != nil || at < 1 {
			return fmt.Errorf("bad op threshold at=%q (want >= 1)", v)
		}
		r.AtOp = at
	case "count":
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 1 {
			return fmt.Errorf("bad count=%q (want >= 1)", v)
		}
		r.Count = n
	case "d":
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return fmt.Errorf("bad duration d=%q (want e.g. 2ms)", v)
		}
		r.Latency = d
	case "bytes":
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("bad bytes=%q (want >= 0)", v)
		}
		r.Bytes = n
	case "mem":
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("bad mem=%q (want a byte count)", v)
		}
		r.MemBytes = n
	case "rep":
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("bad rep=%q (want rep=1 or rep=0)", v)
		}
		r.Repeat = b
	default:
		return fmt.Errorf("unknown key %q (want p, i, at, count, d, bytes, mem or rep)", k)
	}
	return nil
}
