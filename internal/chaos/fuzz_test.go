package chaos

import (
	"strings"
	"testing"
)

// FuzzParse hammers the -chaos spec grammar with arbitrary input. Parse
// is the first thing an operator's command line reaches, so it must
// never panic, and anything it accepts must be a config the compiler
// (New) can arm without blowing up — a spec that parses but cannot
// compile would fail a campaign at launch instead of at flag parsing.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"  ",
		"seed=7;budget:p=0.35;latency:p=0.2,d=2ms",
		"budget:i=3+17+42,at=5,count=2",
		"ckptwrite:i=5,bytes=10;ckptsync:p=0.01",
		"memsample:count=3,mem=1073741824",
		"seed=-9223372036854775808;panic:p=1",
		"workerkill:i=7,rep=1;hbstall:i=2;shardtear:p=0.1,bytes=20",
		"seed=3;workerkill:p=0.5,rep=0",
		"bogus:p=0.5",
		"budget:p=2",
		"budget:p=0.5,i=1",
		"latency:d=-1s",
		"seed=x",
		";;;",
		"budget:",
		"budget:,,",
		"budget:i=",
		"shardtear:bytes=-1",
		strings.Repeat("budget:p=0.1;", 100),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := Parse(spec)
		if err != nil {
			if cfg != nil {
				t.Fatalf("Parse(%q) returned both a config and error %v", spec, err)
			}
			return
		}
		if cfg == nil {
			// Only the chaos-off spelling (blank spec) may yield nil, nil.
			if strings.TrimSpace(spec) != "" {
				t.Fatalf("Parse(%q) = nil, nil for a non-blank spec", spec)
			}
			return
		}
		if len(cfg.Rules) == 0 {
			t.Fatalf("Parse(%q) accepted a spec arming no rules", spec)
		}
		for _, r := range cfg.Rules {
			if r.Point >= numPoints {
				t.Fatalf("Parse(%q) produced out-of-range point %d", spec, r.Point)
			}
			if r.Prob < 0 || r.Prob > 1 {
				t.Fatalf("Parse(%q) produced probability %v", spec, r.Prob)
			}
			for _, i := range r.Indices {
				if i < 0 {
					t.Fatalf("Parse(%q) produced negative index %d", spec, i)
				}
			}
		}
		// Every accepted spec must compile into a live injector.
		if in := New(cfg); in == nil {
			t.Fatalf("Parse(%q) accepted a spec New refuses", spec)
		}
	})
}
