// Package equiv is a combinational equivalence checker built on the OBDD
// engine: two circuits are equivalent iff the BDDs of corresponding
// outputs, built over a shared variable order, are the identical canonical
// node. This is the classic Bryant application and the formal backbone of
// two claims this repository makes: c1355s implements exactly the same
// function as c499s (the paper's central circuit pair), and the netlist
// optimizer never changes a function.
package equiv

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/diffprop"
	"repro/internal/netlist"
)

// Result reports an equivalence check.
type Result struct {
	Equivalent bool
	// FailingOutput is the index of the first differing output pair
	// (-1 when equivalent or when the interfaces mismatch).
	FailingOutput int
	// Counterexample is an input assignment (declaration order of the
	// first circuit) exposing the difference, nil when equivalent.
	Counterexample []bool
	// Reason describes interface mismatches.
	Reason string
}

// Check proves or refutes combinational equivalence of two circuits.
// Inputs are matched by name (order may differ); outputs are matched by
// position. A mismatch in input names or output counts is reported as a
// non-equivalence with a Reason rather than an error.
func Check(a, b *netlist.Circuit) Result {
	if err := a.Validate(); err != nil {
		return Result{FailingOutput: -1, Reason: fmt.Sprintf("first circuit invalid: %v", err)}
	}
	if err := b.Validate(); err != nil {
		return Result{FailingOutput: -1, Reason: fmt.Sprintf("second circuit invalid: %v", err)}
	}
	if len(a.Outputs) != len(b.Outputs) {
		return Result{FailingOutput: -1,
			Reason: fmt.Sprintf("output counts differ: %d vs %d", len(a.Outputs), len(b.Outputs))}
	}
	aNames := map[string]bool{}
	for _, n := range a.InputNames() {
		aNames[n] = true
	}
	if len(a.Inputs) != len(b.Inputs) {
		return Result{FailingOutput: -1,
			Reason: fmt.Sprintf("input counts differ: %d vs %d", len(a.Inputs), len(b.Inputs))}
	}
	for _, n := range b.InputNames() {
		if !aNames[n] {
			return Result{FailingOutput: -1, Reason: fmt.Sprintf("input %q missing from first circuit", n)}
		}
	}

	// Build both circuits' outputs in one manager over a shared order (the
	// first circuit's DFS order keeps the pair balanced).
	ea, err := diffprop.New(a, nil)
	if err != nil {
		return Result{FailingOutput: -1, Reason: err.Error()}
	}
	order := make([]string, ea.NumVars())
	for v := range order {
		order[v] = ea.Manager().VarName(v)
	}
	eb, err := diffprop.New(b, &diffprop.Options{Order: order})
	if err != nil {
		return Result{FailingOutput: -1, Reason: err.Error()}
	}

	// Transfer the second circuit's outputs into the first's manager (same
	// order, so this is a structural copy) and compare canonical nodes.
	m := ea.Manager()
	bOuts := make([]bdd.Ref, len(b.Outputs))
	for i, o := range eb.Circuit.Outputs {
		bOuts[i] = eb.Good(o)
	}
	moved := eb.Manager().Transfer(m, bOuts...)
	for i, ao := range ea.Circuit.Outputs {
		fa := ea.Good(ao)
		fb := moved[i]
		if fa == fb {
			continue
		}
		diff := m.Xor(fa, fb)
		cube := m.AnySat(diff)
		vec := make([]bool, len(a.Inputs))
		v2i := ea.VarToInput()
		for v, s := range cube {
			if v2i[v] >= 0 && s == 1 {
				vec[v2i[v]] = true
			}
		}
		return Result{Equivalent: false, FailingOutput: i, Counterexample: vec}
	}
	return Result{Equivalent: true, FailingOutput: -1}
}

// MustEquivalent panics (with the counterexample) unless the circuits are
// equivalent; a convenience for construction-time assertions.
func MustEquivalent(a, b *netlist.Circuit) {
	r := Check(a, b)
	if !r.Equivalent {
		panic(fmt.Sprintf("equiv: %s and %s differ at output %d (reason %q, counterexample %v)",
			a.Name, b.Name, r.FailingOutput, r.Reason, r.Counterexample))
	}
}
