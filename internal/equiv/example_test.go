package equiv_test

import (
	"fmt"

	"repro/internal/equiv"
	"repro/internal/netlist"
)

// De Morgan, proved rather than tested: NAND(a,b) against OR of the
// complements.
func ExampleCheck() {
	left := netlist.New("nand")
	a := left.AddInput("a")
	b := left.AddInput("b")
	left.MarkOutput(left.AddGate("z", netlist.Nand, a, b))

	right := netlist.New("demorgan")
	a2 := right.AddInput("a")
	b2 := right.AddInput("b")
	na := right.AddGate("na", netlist.Not, a2)
	nb := right.AddGate("nb", netlist.Not, b2)
	right.MarkOutput(right.AddGate("z", netlist.Or, na, nb))

	r := equiv.Check(left, right)
	fmt.Println("equivalent:", r.Equivalent)

	// A wrong "equivalent" circuit yields a concrete counterexample.
	wrong := netlist.New("wrong")
	a3 := wrong.AddInput("a")
	b3 := wrong.AddInput("b")
	wrong.MarkOutput(wrong.AddGate("z", netlist.And, a3, b3))
	r = equiv.Check(left, wrong)
	fmt.Println("equivalent:", r.Equivalent, "counterexample exists:", r.Counterexample != nil)
	// Output:
	// equivalent: true
	// equivalent: false counterexample exists: true
}
