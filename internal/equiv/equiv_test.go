package equiv

import (
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/netlist"
)

func TestC499AndC1355AreFormallyEquivalent(t *testing.T) {
	// The paper's central pair, proved rather than sampled.
	r := Check(circuits.MustGet("c499s"), circuits.MustGet("c1355s"))
	if !r.Equivalent {
		t.Fatalf("c499s and c1355s must be equivalent: output %d, cex %v, reason %q",
			r.FailingOutput, r.Counterexample, r.Reason)
	}
}

func TestOptimizerPreservesAllBenchmarks(t *testing.T) {
	for _, name := range circuits.Names() {
		c := circuits.MustGet(name)
		opt := c.Optimize()
		r := Check(c, opt)
		if !r.Equivalent {
			t.Fatalf("%s: optimizer changed the function at output %d (cex %v)",
				name, r.FailingOutput, r.Counterexample)
		}
	}
}

func TestDecompositionsAreEquivalent(t *testing.T) {
	for _, name := range []string{"c17", "alu181", "c432s"} {
		c := circuits.MustGet(name)
		for _, tr := range []*netlist.Circuit{c.Decompose2(), c.ExpandXOR(), c.Simplify()} {
			if r := Check(c, tr); !r.Equivalent {
				t.Fatalf("%s vs transform: differ at %d", name, r.FailingOutput)
			}
		}
	}
}

func TestInequivalenceFindsCounterexample(t *testing.T) {
	a := netlist.New("a")
	x := a.AddInput("x")
	y := a.AddInput("y")
	a.MarkOutput(a.AddGate("z", netlist.And, x, y))

	b := netlist.New("b")
	x2 := b.AddInput("x")
	y2 := b.AddInput("y")
	b.MarkOutput(b.AddGate("z", netlist.Or, x2, y2))

	r := Check(a, b)
	if r.Equivalent {
		t.Fatal("AND and OR reported equivalent")
	}
	if r.FailingOutput != 0 || r.Counterexample == nil {
		t.Fatalf("missing counterexample: %+v", r)
	}
	// The counterexample must actually distinguish the circuits.
	oa := a.EvalBool(r.Counterexample)
	ob := b.EvalBool(r.Counterexample)
	if oa[0] == ob[0] {
		t.Fatalf("counterexample %v does not distinguish", r.Counterexample)
	}
}

func TestInterfaceMismatches(t *testing.T) {
	a := netlist.New("a")
	x := a.AddInput("x")
	a.MarkOutput(a.AddGate("z", netlist.Not, x))

	b := netlist.New("b")
	p := b.AddInput("p") // different input name
	b.MarkOutput(b.AddGate("z", netlist.Not, p))
	if r := Check(a, b); r.Equivalent || r.Reason == "" {
		t.Fatal("input name mismatch must be reported")
	}

	c := netlist.New("c")
	x3 := c.AddInput("x")
	z := c.AddGate("z", netlist.Not, x3)
	c.MarkOutput(z)
	c.MarkOutput(x3) // extra output
	if r := Check(a, c); r.Equivalent || r.Reason == "" {
		t.Fatal("output count mismatch must be reported")
	}

	bad := netlist.New("bad")
	if r := Check(bad, a); r.Equivalent || r.Reason == "" {
		t.Fatal("invalid circuit must be reported")
	}
	if r := Check(a, bad); r.Equivalent || r.Reason == "" {
		t.Fatal("invalid second circuit must be reported")
	}
}

func TestRandomMutationsAreCaught(t *testing.T) {
	// Flip one gate type in a random circuit; the checker must notice
	// unless the mutation happens to be functionally neutral (rare; we
	// verify against exhaustive evaluation instead of assuming).
	rng := rand.New(rand.NewSource(41))
	caught, neutral := 0, 0
	for trial := 0; trial < 25; trial++ {
		c := circuits.MustGet("c17").Clone()
		mut := c.Clone()
		// Flip one NAND to NOR.
		var gates []int
		for id, g := range mut.Gates {
			if g.Type == netlist.Nand {
				gates = append(gates, id)
			}
		}
		id := gates[rng.Intn(len(gates))]
		mut.Gates[id].Type = netlist.Nor
		r := Check(c, mut)
		// Ground truth by exhaustive evaluation.
		same := true
		for i := 0; i < 32; i++ {
			in := make([]bool, 5)
			for b := 0; b < 5; b++ {
				in[b] = i>>b&1 == 1
			}
			oa, ob := c.EvalBool(in), mut.EvalBool(in)
			for j := range oa {
				if oa[j] != ob[j] {
					same = false
				}
			}
		}
		if r.Equivalent != same {
			t.Fatalf("checker verdict %v disagrees with exhaustive %v", r.Equivalent, same)
		}
		if same {
			neutral++
		} else {
			caught++
		}
	}
	if caught == 0 {
		t.Fatal("no mutation was caught — test ineffective")
	}
	_ = neutral
}

func TestMustEquivalentPanics(t *testing.T) {
	a := netlist.New("a")
	x := a.AddInput("x")
	a.MarkOutput(a.AddGate("z", netlist.Not, x))
	b := netlist.New("b")
	x2 := b.AddInput("x")
	b.MarkOutput(b.AddGate("z", netlist.Buff, x2))
	defer func() {
		if recover() == nil {
			t.Fatal("MustEquivalent must panic on inequivalence")
		}
	}()
	MustEquivalent(a, b)
}
