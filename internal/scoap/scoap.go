// Package scoap implements the classic SCOAP (Sandia Controllability/
// Observability Analysis Program, Goldstein 1979) topological testability
// measures: combinational 0/1-controllabilities per net and
// observabilities per net and per gate input pin.
//
// SCOAP is the standard *estimate* the industry used where the paper
// computes *exact* detection probabilities; the X8 experiment correlates
// the two, quantifying how much signal the topological proxy carries — a
// direct extension of the paper's detectability-versus-topology study.
package scoap

import (
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/netlist"
)

// Measures holds the SCOAP values of a circuit.
type Measures struct {
	// CC0[n], CC1[n] are the combinational 0-/1-controllabilities of net
	// n (>= 1; primary inputs cost exactly 1).
	CC0, CC1 []int
	// CO[n] is the combinational observability of net n (0 at primary
	// outputs), the minimum over its fan-out branches.
	CO []int
	// PinCO[gate][pin] is the observability of one gate input pin.
	PinCO map[[2]int]int

	circuit *netlist.Circuit
}

// unreachable marks nets with no path to a primary output.
const unreachable = math.MaxInt32

// Compute derives all SCOAP measures for the circuit.
func Compute(c *netlist.Circuit) *Measures {
	n := c.NumNets()
	m := &Measures{
		CC0:     make([]int, n),
		CC1:     make([]int, n),
		CO:      make([]int, n),
		PinCO:   map[[2]int]int{},
		circuit: c,
	}
	// Controllabilities, forward topological order.
	for id, g := range c.Gates {
		switch g.Type {
		case netlist.Input:
			m.CC0[id], m.CC1[id] = 1, 1
		case netlist.Buff:
			m.CC0[id] = m.CC0[g.Fanin[0]] + 1
			m.CC1[id] = m.CC1[g.Fanin[0]] + 1
		case netlist.Not:
			m.CC0[id] = m.CC1[g.Fanin[0]] + 1
			m.CC1[id] = m.CC0[g.Fanin[0]] + 1
		case netlist.And, netlist.Nand:
			sum1, min0 := 0, math.MaxInt32
			for _, f := range g.Fanin {
				sum1 += m.CC1[f]
				if m.CC0[f] < min0 {
					min0 = m.CC0[f]
				}
			}
			if g.Type == netlist.And {
				m.CC1[id], m.CC0[id] = sum1+1, min0+1
			} else {
				m.CC0[id], m.CC1[id] = sum1+1, min0+1
			}
		case netlist.Or, netlist.Nor:
			sum0, min1 := 0, math.MaxInt32
			for _, f := range g.Fanin {
				sum0 += m.CC0[f]
				if m.CC1[f] < min1 {
					min1 = m.CC1[f]
				}
			}
			if g.Type == netlist.Or {
				m.CC0[id], m.CC1[id] = sum0+1, min1+1
			} else {
				m.CC1[id], m.CC0[id] = sum0+1, min1+1
			}
		case netlist.Xor, netlist.Xnor:
			if len(g.Fanin) != 2 {
				panic(fmt.Sprintf("scoap: %d-input %v unsupported; Decompose2 first", len(g.Fanin), g.Type))
			}
			a, b := g.Fanin[0], g.Fanin[1]
			odd := min(m.CC0[a]+m.CC1[b], m.CC1[a]+m.CC0[b]) + 1
			even := min(m.CC0[a]+m.CC0[b], m.CC1[a]+m.CC1[b]) + 1
			if g.Type == netlist.Xor {
				m.CC1[id], m.CC0[id] = odd, even
			} else {
				m.CC0[id], m.CC1[id] = odd, even
			}
		default:
			panic(fmt.Sprintf("scoap: unsupported gate type %v", g.Type))
		}
	}
	// Observabilities, reverse topological order.
	for i := range m.CO {
		m.CO[i] = unreachable
	}
	for _, o := range c.Outputs {
		m.CO[o] = 0
	}
	for id := n - 1; id >= 0; id-- {
		g := c.Gates[id]
		if g.Type == netlist.Input || m.CO[id] == unreachable {
			continue
		}
		for pin, f := range g.Fanin {
			cost := m.CO[id] + 1
			switch g.Type {
			case netlist.And, netlist.Nand:
				for j, other := range g.Fanin {
					if j != pin {
						cost += m.CC1[other]
					}
				}
			case netlist.Or, netlist.Nor:
				for j, other := range g.Fanin {
					if j != pin {
						cost += m.CC0[other]
					}
				}
			case netlist.Xor, netlist.Xnor:
				other := g.Fanin[1-pin]
				cost += min(m.CC0[other], m.CC1[other])
			case netlist.Not, netlist.Buff:
				// just the +1
			}
			key := [2]int{id, pin}
			if prev, ok := m.PinCO[key]; !ok || cost < prev {
				m.PinCO[key] = cost
			}
			if cost < m.CO[f] {
				m.CO[f] = cost
			}
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Reachable reports whether the net has any path to a primary output.
func (m *Measures) Reachable(net int) bool { return m.CO[net] != unreachable }

// StuckAtCost returns the SCOAP detection-difficulty estimate of a
// stuck-at fault: the controllability of the value that excites it plus
// the observability of the faulted line (the branch pin's observability
// for branch faults). Higher means harder. The boolean is false when the
// site cannot reach any output.
func (m *Measures) StuckAtCost(f faults.StuckAt) (int, bool) {
	var cc int
	if f.Stuck {
		cc = m.CC0[f.Net] // exciting a stuck-at-1 requires driving 0
	} else {
		cc = m.CC1[f.Net]
	}
	var co int
	if f.IsBranch() {
		v, ok := m.PinCO[[2]int{f.Gate, f.Pin}]
		if !ok {
			return 0, false
		}
		co = v
	} else {
		if !m.Reachable(f.Net) {
			return 0, false
		}
		co = m.CO[f.Net]
	}
	return cc + co, true
}
