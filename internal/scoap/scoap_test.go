package scoap

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/netlist"
)

func TestHandComputedChain(t *testing.T) {
	// a -> NOT n -> AND(n, b) z
	c := netlist.New("chain")
	a := c.AddInput("a")
	b := c.AddInput("b")
	nn := c.AddGate("n", netlist.Not, a)
	z := c.AddGate("z", netlist.And, nn, b)
	c.MarkOutput(z)
	m := Compute(c)
	// PIs: CC0=CC1=1.
	if m.CC0[a] != 1 || m.CC1[a] != 1 || m.CC0[b] != 1 {
		t.Fatal("PI controllabilities must be 1")
	}
	// NOT: CC0(n)=CC1(a)+1=2, CC1(n)=CC0(a)+1=2.
	if m.CC0[nn] != 2 || m.CC1[nn] != 2 {
		t.Fatalf("NOT controllabilities: %d/%d, want 2/2", m.CC0[nn], m.CC1[nn])
	}
	// AND: CC1(z)=CC1(n)+CC1(b)+1=4; CC0(z)=min(CC0)+1=2.
	if m.CC1[z] != 4 || m.CC0[z] != 2 {
		t.Fatalf("AND controllabilities: CC1=%d CC0=%d, want 4/2", m.CC1[z], m.CC0[z])
	}
	// Observabilities: CO(z)=0; CO(n)=CO(z)+CC1(b)+1=2; CO(b)=CO(z)+CC1(n)+1=3;
	// CO(a)=CO(n)+1=3.
	if m.CO[z] != 0 || m.CO[nn] != 2 || m.CO[b] != 3 || m.CO[a] != 3 {
		t.Fatalf("observabilities z=%d n=%d b=%d a=%d", m.CO[z], m.CO[nn], m.CO[b], m.CO[a])
	}
}

func TestXorMeasures(t *testing.T) {
	c := netlist.New("x")
	a := c.AddInput("a")
	b := c.AddInput("b")
	z := c.AddGate("z", netlist.Xor, a, b)
	c.MarkOutput(z)
	m := Compute(c)
	// CC1(z) = min(1+1, 1+1)+1 = 3; CC0(z) = 3 as well for PIs.
	if m.CC1[z] != 3 || m.CC0[z] != 3 {
		t.Fatalf("XOR controllabilities %d/%d, want 3/3", m.CC0[z], m.CC1[z])
	}
	// CO(a) = CO(z) + min(CC0(b), CC1(b)) + 1 = 2.
	if m.CO[a] != 2 || m.CO[b] != 2 {
		t.Fatalf("XOR observabilities %d/%d, want 2/2", m.CO[a], m.CO[b])
	}
}

func TestFanoutTakesMinimumCO(t *testing.T) {
	// A stem observed through a cheap path and an expensive path takes the
	// cheap one.
	c := netlist.New("stem")
	a := c.AddInput("a")
	b := c.AddInput("b")
	cheap := c.AddGate("cheap", netlist.Buff, a)
	d1 := c.AddGate("d1", netlist.And, a, b)
	c.MarkOutput(cheap)
	c.MarkOutput(d1)
	m := Compute(c)
	// Through the buffer: CO(a) = 0+1 = 1. Through the AND: 0+CC1(b)+1 = 2.
	if m.CO[a] != 1 {
		t.Fatalf("CO(a)=%d, want 1 (min over branches)", m.CO[a])
	}
	if got := m.PinCO[[2]int{d1, 0}]; got != 2 {
		t.Fatalf("pin CO through AND = %d, want 2", got)
	}
}

func TestUnreachableNets(t *testing.T) {
	c := netlist.New("dead")
	a := c.AddInput("a")
	b := c.AddInput("b")
	z := c.AddGate("z", netlist.And, a, b)
	dead := c.AddGate("dead", netlist.Or, a, b)
	c.MarkOutput(z)
	m := Compute(c)
	if m.Reachable(dead) {
		t.Fatal("dangling net must be unreachable")
	}
	if _, ok := m.StuckAtCost(faults.StuckAt{Net: dead, Gate: -1, Pin: -1}); ok {
		t.Fatal("cost of an unobservable fault must report not-ok")
	}
}

func TestAllBenchmarksComputable(t *testing.T) {
	for _, name := range circuits.Names() {
		c := circuits.MustGet(name).Decompose2()
		m := Compute(c)
		for net := range c.Gates {
			if m.CC0[net] < 1 || m.CC1[net] < 1 {
				t.Fatalf("%s: controllability below 1 on %s", name, c.NetName(net))
			}
		}
		for _, o := range c.Outputs {
			if m.CO[o] != 0 {
				t.Fatalf("%s: PO observability must be 0", name)
			}
		}
		// Every observable checkpoint fault must have a finite cost >= 2
		// (one controllability unit plus at least the pin step).
		for _, f := range faults.CheckpointStuckAts(c) {
			cost, ok := m.StuckAtCost(f)
			if !ok {
				continue // site structurally unobservable
			}
			if cost < 2 {
				t.Fatalf("%s: bad cost %d for %v", name, cost, f.Describe(c))
			}
		}
	}
}

func TestDepthIncreasesCost(t *testing.T) {
	// An inverter chain's endpoint gets monotonically harder to control
	// and the head harder to observe.
	c := netlist.New("invchain")
	a := c.AddInput("a")
	prev := a
	var nets []int
	for i := 0; i < 6; i++ {
		prev = c.AddGate("n"+string(rune('0'+i)), netlist.Not, prev)
		nets = append(nets, prev)
	}
	c.MarkOutput(prev)
	m := Compute(c)
	for i := 1; i < len(nets); i++ {
		if m.CC0[nets[i]] <= m.CC0[nets[i-1]]-1 && m.CC1[nets[i]] <= m.CC1[nets[i-1]]-1 {
			t.Fatal("controllability must grow along the chain")
		}
	}
	if m.CO[a] != 6 {
		t.Fatalf("CO at chain head = %d, want 6", m.CO[a])
	}
}

func TestPanicsOnWideXor(t *testing.T) {
	c := netlist.New("wide")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	z := c.AddGate("z", netlist.Xor, a, b, d)
	c.MarkOutput(z)
	defer func() {
		if recover() == nil {
			t.Fatal("3-input XOR must panic (Decompose2 first)")
		}
	}()
	Compute(c)
}
