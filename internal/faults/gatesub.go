package faults

import (
	"fmt"

	"repro/internal/netlist"
)

// GateSub is a gate replacement fault: the gate driving net Gate computes
// WrongType instead of its designed function, over the same fan-ins. Gate
// substitution is the classic non-stuck-at logical fault model used to
// probe how far stuck-at test sets generalize.
type GateSub struct {
	Gate      int
	WrongType netlist.GateType
}

// Describe renders the fault with net names when a circuit is supplied.
func (s GateSub) Describe(c *netlist.Circuit) string {
	name := fmt.Sprintf("gate%d", s.Gate)
	right := "?"
	if c != nil {
		name = c.NetName(s.Gate)
		right = c.Gates[s.Gate].Type.String()
	}
	return fmt.Sprintf("%s:%s->%s", name, right, s.WrongType)
}

// String renders the fault without net names.
func (s GateSub) String() string { return s.Describe(nil) }

// substitutesFor lists the alternative gate types for a designed type of
// the same arity.
func substitutesFor(t netlist.GateType) []netlist.GateType {
	switch t {
	case netlist.Not:
		return []netlist.GateType{netlist.Buff}
	case netlist.Buff:
		return []netlist.GateType{netlist.Not}
	case netlist.Input:
		return nil
	}
	all := []netlist.GateType{netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor}
	out := make([]netlist.GateType, 0, len(all)-1)
	for _, a := range all {
		if a != t {
			out = append(out, a)
		}
	}
	return out
}

// AllGateSubs enumerates every single-gate substitution fault of the
// circuit: each gate replaced by each alternative type of the same arity.
// Gates with more than two inputs are skipped (analyses run on the
// two-input decomposition, where none exist).
func AllGateSubs(c *netlist.Circuit) []GateSub {
	var out []GateSub
	for id, g := range c.Gates {
		if g.Type == netlist.Input || len(g.Fanin) > 2 {
			continue
		}
		for _, t := range substitutesFor(g.Type) {
			out = append(out, GateSub{Gate: id, WrongType: t})
		}
	}
	return out
}
