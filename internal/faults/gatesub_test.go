package faults

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestSubstitutesFor(t *testing.T) {
	cases := []struct {
		t    netlist.GateType
		want int
	}{
		{netlist.Not, 1},
		{netlist.Buff, 1},
		{netlist.And, 5},
		{netlist.Nand, 5},
		{netlist.Or, 5},
		{netlist.Nor, 5},
		{netlist.Xor, 5},
		{netlist.Xnor, 5},
		{netlist.Input, 0},
	}
	for _, tc := range cases {
		subs := substitutesFor(tc.t)
		if len(subs) != tc.want {
			t.Fatalf("%v: %d substitutes, want %d", tc.t, len(subs), tc.want)
		}
		for _, s := range subs {
			if s == tc.t {
				t.Fatalf("%v substitutes for itself", tc.t)
			}
		}
	}
}

func TestAllGateSubsSkipsInputsAndWideGates(t *testing.T) {
	c := netlist.New("g")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	wide := c.AddGate("wide", netlist.And, a, b, d) // 3-input: skipped
	inv := c.AddGate("inv", netlist.Not, wide)
	c.MarkOutput(inv)
	subs := AllGateSubs(c)
	// Only the inverter yields a substitution (NOT -> BUFF).
	if len(subs) != 1 || subs[0].Gate != inv || subs[0].WrongType != netlist.Buff {
		t.Fatalf("subs = %v", subs)
	}
}

func TestGateSubDescribe(t *testing.T) {
	c := netlist.New("g")
	a := c.AddInput("a")
	b := c.AddInput("b")
	z := c.AddGate("z", netlist.And, a, b)
	c.MarkOutput(z)
	s := GateSub{Gate: z, WrongType: netlist.Or}
	if got := s.Describe(c); got != "z:AND->OR" {
		t.Fatalf("describe = %q", got)
	}
	if !strings.Contains(s.String(), "OR") {
		t.Fatal("String must mention the wrong type")
	}
}

func TestBridgingString(t *testing.T) {
	b := Bridging{U: 3, V: 7, Kind: WiredOR}
	if got := b.String(); got != "bridge(net3 | net7)" {
		t.Fatalf("String = %q", got)
	}
}
