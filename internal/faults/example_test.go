package faults_test

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/netlist"
)

// Checkpoint faults — PIs plus fan-out branches — collapsed by
// equivalence at gate inputs, exactly the paper's §2.1 fault set.
func ExampleCheckpointStuckAts() {
	c := netlist.New("demo")
	a := c.AddInput("a")
	b := c.AddInput("b")
	n1 := c.AddGate("n1", netlist.Nand, a, b)
	n2 := c.AddGate("n2", netlist.Nand, a, n1) // `a` fans out: a stem
	c.MarkOutput(n2)

	for _, f := range faults.CheckpointStuckAts(c) {
		fmt.Println(f.Describe(c))
	}
	// The stem `a` keeps both net faults; its branch into n1 keeps only
	// SA1 (the SA0 collapsed into b's, both being controlling faults of
	// the same NAND); n1 itself is fan-out-free, so it contributes no
	// checkpoint of its own.
	// Output:
	// a/SA0
	// a/SA1
	// b/SA0
	// b/SA1
	// a->n1.0/SA1
	// a->n2.0/SA0
	// a->n2.0/SA1
}

// Non-feedback bridging fault screening on the same circuit.
func ExampleAllNFBFs() {
	c := netlist.New("demo")
	a := c.AddInput("a")
	b := c.AddInput("b")
	n1 := c.AddGate("n1", netlist.Nand, a, b)
	n2 := c.AddGate("n2", netlist.Nand, a, n1)
	c.MarkOutput(n2)

	for _, bf := range faults.AllNFBFs(c, faults.WiredAND) {
		fmt.Println(bf.Describe(c))
	}
	// a-n1 and a-b bridges are feedback-free; n1-n2 and a-n2 are feedback.
	// Output:
	// bridge(a & b)
	// bridge(b & n1)
}

func ExampleIsFeedback() {
	c := netlist.New("demo")
	a := c.AddInput("a")
	b := c.AddInput("b")
	n1 := c.AddGate("n1", netlist.Nand, a, b)
	n2 := c.AddGate("n2", netlist.Nand, a, n1)
	c.MarkOutput(n2)
	fmt.Println(faults.IsFeedback(c, a, n2)) // a reaches n2
	fmt.Println(faults.IsFeedback(c, a, b))  // independent inputs
	// Output:
	// true
	// false
}
