// Package faults defines the two fault models the paper studies — the
// classical single stuck-at model restricted to collapsed checkpoint
// faults (§2.1) and the two-wire non-feedback bridging fault model with
// wired-AND and wired-OR behavior (§2.2) — together with the screening
// steps the paper applies: fault equivalence at gate inputs for stuck-at
// faults, and feedback / trivially-undetectable screening for bridging
// faults.
package faults

import (
	"fmt"

	"repro/internal/netlist"
)

// StuckAt is a single stuck-at fault on a line. A fault with Gate < 0 sits
// on the net itself (a primary input or a stem); one with Gate >= 0 sits on
// a fan-out branch: the wire entering input pin Pin of that gate, leaving
// the other branches of the stem healthy.
type StuckAt struct {
	Net   int  // the driving net
	Gate  int  // consumer gate for a branch fault, -1 for a net fault
	Pin   int  // input pin of Gate for a branch fault, -1 otherwise
	Stuck bool // the stuck value: false = stuck-at-0, true = stuck-at-1
}

// IsBranch reports whether the fault sits on a fan-out branch.
func (f StuckAt) IsBranch() bool { return f.Gate >= 0 }

// String renders the fault in conventional notation.
func (f StuckAt) String() string { return f.Describe(nil) }

// Describe renders the fault with net names when a circuit is supplied.
func (f StuckAt) Describe(c *netlist.Circuit) string {
	v := 0
	if f.Stuck {
		v = 1
	}
	name := fmt.Sprintf("net%d", f.Net)
	if c != nil {
		name = c.NetName(f.Net)
	}
	if !f.IsBranch() {
		return fmt.Sprintf("%s/SA%d", name, v)
	}
	gname := fmt.Sprintf("gate%d", f.Gate)
	if c != nil {
		gname = c.NetName(f.Gate)
	}
	return fmt.Sprintf("%s->%s.%d/SA%d", name, gname, f.Pin, v)
}

// Checkpoints returns the circuit's checkpoint lines: all primary inputs
// (as net faults) plus every fan-out branch of every stem (as branch
// faults). Detecting all stuck-at faults on checkpoints detects all
// single stuck-at faults in a fan-out-free region decomposition of the
// circuit (Bossen & Hong).
func Checkpoints(c *netlist.Circuit) []StuckAt {
	var sites []StuckAt
	for _, in := range c.Inputs {
		sites = append(sites, StuckAt{Net: in, Gate: -1, Pin: -1})
	}
	fo := c.Fanout()
	for net := range c.Gates {
		if len(fo[net]) <= 1 {
			continue
		}
		for _, g := range fo[net] {
			for pin, fin := range c.Gates[g].Fanin {
				if fin == net {
					sites = append(sites, StuckAt{Net: net, Gate: g, Pin: pin})
				}
			}
		}
	}
	return sites
}

// CheckpointStuckAts returns both polarities of every checkpoint line,
// collapsed by fault equivalence at gate inputs exactly as §2.1
// prescribes: among the checkpoint branch faults entering the same
// AND/NAND gate, the stuck-at-0 faults are all equivalent (each is
// equivalent to the gate output stuck fault), so one representative is
// kept; dually for stuck-at-1 faults entering the same OR/NOR gate.
func CheckpointStuckAts(c *netlist.Circuit) []StuckAt {
	sites := Checkpoints(c)
	type key struct {
		gate  int
		stuck bool
	}
	seen := map[key]bool{}
	fo := c.Fanout()
	var out []StuckAt
	for _, s := range sites {
		for _, stuck := range []bool{false, true} {
			f := s
			f.Stuck = stuck
			// A net fault on a fan-out-free line is equivalent to the pin
			// fault at its single consumer, so it participates in the same
			// equivalence class.
			gate := f.Gate
			if gate < 0 && len(fo[f.Net]) == 1 {
				gate = fo[f.Net][0]
			}
			if gate >= 0 {
				controlling := false
				switch c.Gates[gate].Type {
				case netlist.And, netlist.Nand:
					controlling = !stuck // SA0 is the controlling-value fault
				case netlist.Or, netlist.Nor:
					controlling = stuck // SA1
				}
				if controlling {
					k := key{gate: gate, stuck: stuck}
					if seen[k] {
						continue
					}
					seen[k] = true
				}
			}
			out = append(out, f)
		}
	}
	return out
}

// AllStuckAts enumerates both polarities on every net of the circuit
// (no collapsing); used by the extension experiments and as a reference
// population in tests.
func AllStuckAts(c *netlist.Circuit) []StuckAt {
	out := make([]StuckAt, 0, 2*c.NumNets())
	for net := range c.Gates {
		out = append(out, StuckAt{Net: net, Gate: -1, Pin: -1, Stuck: false})
		out = append(out, StuckAt{Net: net, Gate: -1, Pin: -1, Stuck: true})
	}
	return out
}
