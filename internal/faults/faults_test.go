package faults

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

const c17Bench = `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func mustC17(t testing.TB) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCheckpointsC17(t *testing.T) {
	c := mustC17(t)
	sites := Checkpoints(c)
	// 5 primary inputs + 3 stems (3, 11, 16) x 2 branches each = 11 sites.
	if len(sites) != 11 {
		t.Fatalf("c17 has %d checkpoint sites, want 11", len(sites))
	}
	nPI, nBranch := 0, 0
	for _, s := range sites {
		if s.IsBranch() {
			nBranch++
			if !c.IsStem(s.Net) {
				t.Fatalf("branch site on non-stem %s", c.NetName(s.Net))
			}
			if c.Gates[s.Gate].Fanin[s.Pin] != s.Net {
				t.Fatalf("branch pin does not connect to net: %v", s)
			}
		} else {
			nPI++
			if !c.IsInput(s.Net) {
				t.Fatalf("net site on non-PI %s", c.NetName(s.Net))
			}
		}
	}
	if nPI != 5 || nBranch != 6 {
		t.Fatalf("site split %d/%d, want 5/6", nPI, nBranch)
	}
}

func TestCheckpointStuckAtsCollapsing(t *testing.T) {
	c := mustC17(t)
	fs := CheckpointStuckAts(c)
	// 22 uncollapsed checkpoint faults; equivalence at the NAND inputs
	// removes one SA0 per NAND gate that receives two checkpoint lines.
	// Gates 10, 11, 16, 19 each receive two checkpoint lines (a PI with
	// single fan-out counts via its consumer), so 4 SA0 faults collapse
	// away: 22 - 4 = 18.
	if len(fs) != 18 {
		t.Fatalf("c17 collapsed checkpoint fault count = %d, want 18", len(fs))
	}
	// No gate may retain two equivalent controlling faults.
	type key struct {
		gate  int
		stuck bool
	}
	seen := map[key]int{}
	fo := c.Fanout()
	for _, f := range fs {
		gate := f.Gate
		if gate < 0 && len(fo[f.Net]) == 1 {
			gate = fo[f.Net][0]
		}
		if gate < 0 {
			continue
		}
		if c.Gates[gate].Type == netlist.Nand && !f.Stuck {
			seen[key{gate, f.Stuck}]++
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("gate %s keeps %d equivalent SA0 faults", c.NetName(k.gate), n)
		}
	}
}

func TestCheckpointStuckAtsBothPolarities(t *testing.T) {
	c := mustC17(t)
	fs := CheckpointStuckAts(c)
	sa0, sa1 := 0, 0
	for _, f := range fs {
		if f.Stuck {
			sa1++
		} else {
			sa0++
		}
	}
	// Collapsing only removes SA0 faults here (all gates are NANDs).
	if sa1 != 11 || sa0 != 7 {
		t.Fatalf("polarity split %d/%d, want 7 SA0 / 11 SA1", sa0, sa1)
	}
}

func TestAllStuckAts(t *testing.T) {
	c := mustC17(t)
	fs := AllStuckAts(c)
	if len(fs) != 2*c.NumNets() {
		t.Fatalf("AllStuckAts = %d, want %d", len(fs), 2*c.NumNets())
	}
}

func TestStuckAtDescribe(t *testing.T) {
	c := mustC17(t)
	f := StuckAt{Net: c.NetByName("11"), Gate: c.NetByName("16"), Pin: 1, Stuck: false}
	if got := f.Describe(c); got != "11->16.1/SA0" {
		t.Fatalf("describe = %q", got)
	}
	n := StuckAt{Net: c.NetByName("3"), Gate: -1, Pin: -1, Stuck: true}
	if got := n.Describe(c); got != "3/SA1" {
		t.Fatalf("describe = %q", got)
	}
	if !strings.Contains(n.String(), "SA1") {
		t.Fatal("String must mention polarity")
	}
}

func TestIsFeedback(t *testing.T) {
	c := mustC17(t)
	n := func(s string) int { return c.NetByName(s) }
	if !IsFeedback(c, n("11"), n("16")) || !IsFeedback(c, n("16"), n("11")) {
		t.Fatal("11-16 must be feedback")
	}
	if !IsFeedback(c, n("3"), n("22")) {
		t.Fatal("3-22 must be feedback")
	}
	if IsFeedback(c, n("10"), n("19")) || IsFeedback(c, n("1"), n("7")) {
		t.Fatal("independent nets flagged as feedback")
	}
}

func TestTriviallyUndetectable(t *testing.T) {
	// a and b feed only the same AND gate: wired-AND bridge is invisible,
	// wired-OR is not.
	c := netlist.New("triv")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x := c.AddGate("x", netlist.And, a, b)
	c.MarkOutput(x)
	band := Bridging{U: a, V: b, Kind: WiredAND}
	bor := Bridging{U: a, V: b, Kind: WiredOR}
	if !TriviallyUndetectable(c, band) {
		t.Fatal("AND bridge between AND-gate inputs must be trivially undetectable")
	}
	if TriviallyUndetectable(c, bor) {
		t.Fatal("OR bridge between AND-gate inputs is detectable")
	}

	// Same structure with NAND: still undetectable for wired-AND.
	c2 := netlist.New("triv2")
	a2 := c2.AddInput("a")
	b2 := c2.AddInput("b")
	x2 := c2.AddGate("x", netlist.Nand, a2, b2)
	c2.MarkOutput(x2)
	if !TriviallyUndetectable(c2, Bridging{U: a2, V: b2, Kind: WiredAND}) {
		t.Fatal("AND bridge between NAND-gate inputs must be trivially undetectable")
	}

	// If one net has another consumer, the bridge is potentially
	// detectable.
	c3 := netlist.New("triv3")
	a3 := c3.AddInput("a")
	b3 := c3.AddInput("b")
	x3 := c3.AddGate("x", netlist.And, a3, b3)
	y3 := c3.AddGate("y", netlist.Not, a3)
	c3.MarkOutput(x3)
	c3.MarkOutput(y3)
	if TriviallyUndetectable(c3, Bridging{U: a3, V: b3, Kind: WiredAND}) {
		t.Fatal("extra consumer makes the bridge potentially detectable")
	}

	// A net observed directly at a PO is never screened.
	c4 := netlist.New("triv4")
	a4 := c4.AddInput("a")
	b4 := c4.AddInput("b")
	x4 := c4.AddGate("x", netlist.And, a4, b4)
	c4.MarkOutput(x4)
	c4.MarkOutput(a4)
	if TriviallyUndetectable(c4, Bridging{U: a4, V: b4, Kind: WiredAND}) {
		t.Fatal("PO nets must never be screened")
	}
}

func TestAllNFBFsScreening(t *testing.T) {
	c := mustC17(t)
	for _, kind := range []BridgeKind{WiredAND, WiredOR} {
		bs := AllNFBFs(c, kind)
		if len(bs) == 0 {
			t.Fatalf("c17 must have %v faults", kind)
		}
		for _, b := range bs {
			if b.U >= b.V {
				t.Fatalf("unordered pair %v", b)
			}
			if IsFeedback(c, b.U, b.V) {
				t.Fatalf("feedback pair %v survived screening", b.Describe(c))
			}
			if TriviallyUndetectable(c, b) {
				t.Fatalf("trivially undetectable pair %v survived", b.Describe(c))
			}
			if b.Kind != kind {
				t.Fatal("kind mislabeled")
			}
		}
	}
}

func TestAllNFBFsCountsConsistent(t *testing.T) {
	c := mustC17(t)
	n := c.NumNets()
	totalPairs := n * (n - 1) / 2
	fb := CountFeedbackPairs(c)
	band := len(AllNFBFs(c, WiredAND))
	bor := len(AllNFBFs(c, WiredOR))
	if band > totalPairs-fb || bor > totalPairs-fb {
		t.Fatalf("screened sets exceed non-feedback population: %d/%d vs %d", band, bor, totalPairs-fb)
	}
	// c17 is all-NAND: some AND bridges are trivially undetectable
	// (two inputs of the same NAND with no other consumers), while no OR
	// bridge is screened that way, so the OR set is at least as large.
	if bor < band {
		t.Fatalf("OR set (%d) should be >= AND set (%d) in an all-NAND circuit", bor, band)
	}
}

func TestBridgingDescribe(t *testing.T) {
	c := mustC17(t)
	b := Bridging{U: c.NetByName("10"), V: c.NetByName("19"), Kind: WiredAND}
	if got := b.Describe(c); got != "bridge(10 & 19)" {
		t.Fatalf("describe = %q", got)
	}
	b.Kind = WiredOR
	if got := b.Describe(c); got != "bridge(10 | 19)" {
		t.Fatalf("describe = %q", got)
	}
	if WiredAND.String() != "AND NFBF" || WiredOR.String() != "OR NFBF" {
		t.Fatal("kind strings wrong")
	}
}
