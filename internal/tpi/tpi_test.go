package tpi

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/equiv"
	"repro/internal/netlist"
)

func TestCenterHeuristicImprovesC1355s(t *testing.T) {
	plan, err := CenterHeuristic(circuits.MustGet("c1355s"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Points) != 4 || len(plan.Names) != 4 {
		t.Fatalf("%d points selected, want 4", len(plan.Points))
	}
	if plan.After <= plan.Before {
		t.Fatalf("observation points did not help: %.4f -> %.4f", plan.Before, plan.After)
	}
	if plan.Gain() < 0.10 {
		t.Fatalf("gain %.3f below the expected >=10%% on the XOR-expanded corrector", plan.Gain())
	}
	// The original outputs are untouched: the modified circuit restricted
	// to them is formally equivalent to the original working circuit.
	orig := circuits.MustGet("c1355s").Decompose2()
	restricted := plan.Circuit.Clone()
	restricted.Outputs = restricted.Outputs[:len(orig.Outputs)]
	if r := equiv.Check(orig, restricted); !r.Equivalent {
		t.Fatalf("observation taps changed the original function: %+v", r)
	}
}

func TestGreedyExactOnMultiplier(t *testing.T) {
	plan, err := GreedyExact(circuits.MustGet("c95s"), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if plan.After < plan.Before {
		t.Fatalf("greedy regressed: %.4f -> %.4f", plan.Before, plan.After)
	}
	if len(plan.Points) > 2 {
		t.Fatal("more points than budget")
	}
	for i, net := range plan.Points {
		if plan.Circuit.NetName(net) != plan.Names[i] {
			t.Fatal("points/names out of sync")
		}
		if !plan.Circuit.IsOutput(net) {
			t.Fatal("chosen point is not observed")
		}
	}
	if err := plan.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyAtLeastMatchesHeuristicOnSmall(t *testing.T) {
	h, err := CenterHeuristic(circuits.MustGet("c95s"), 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GreedyExact(circuits.MustGet("c95s"), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy measures every step; it must not do worse than the one-shot
	// heuristic on the same budget (small tolerance for tie-breaking).
	if g.After < h.After-1e-9 {
		t.Fatalf("greedy (%.4f) worse than heuristic (%.4f)", g.After, h.After)
	}
}

func TestBadBudget(t *testing.T) {
	if _, err := CenterHeuristic(circuits.MustGet("c17"), 0); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := GreedyExact(circuits.MustGet("c17"), -1, 4); err == nil {
		t.Fatal("negative k must error")
	}
}

func TestGainZeroBase(t *testing.T) {
	if (Plan{Before: 0, After: 1}).Gain() != 0 {
		t.Fatal("zero base gain must be 0")
	}
}

func TestHeuristicOnShallowCircuit(t *testing.T) {
	// A circuit with essentially no "center" must still behave sanely.
	c := netlist.New("shallow")
	a := c.AddInput("a")
	b := c.AddInput("b")
	z := c.AddGate("z", netlist.And, a, b)
	c.MarkOutput(z)
	plan, err := CenterHeuristic(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	// No center nets exist (depth 1): the plan may be empty, but must not
	// regress.
	if plan.After < plan.Before {
		t.Fatal("plan regressed")
	}
}
