// Package tpi implements observability-driven test-point insertion, the
// design action the paper's conclusions call for: detectability sags at
// the circuit center and responds best to added observability, so
// observation points belong on the center nets where faults are hardest
// to see. Two selectors are provided:
//
//   - CenterHeuristic ranks center nets by the mean exact detectability of
//     the faults sitting on them (one DP study, cheap);
//   - GreedyExact re-runs the exact analysis after every insertion and
//     always takes the net with the best measured improvement (expensive,
//     optimal-greedy).
//
// Both return modified circuits whose added primary outputs are plain
// observation taps — no logic is altered, so the original outputs compute
// exactly as before (the tests prove it with the equivalence checker).
package tpi

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
)

// Plan is the outcome of a test-point selection.
type Plan struct {
	// Circuit is the modified circuit with observation points appended to
	// its primary outputs.
	Circuit *netlist.Circuit
	// Points lists the chosen nets (indices into the *working*, two-input
	// decomposed circuit used for analysis).
	Points []int
	// Names lists the chosen nets' names.
	Names []string
	// Before and After are the mean detectabilities of detectable
	// checkpoint faults without and with the observation points.
	Before, After float64
}

// Gain returns the relative improvement in mean detectability.
func (p Plan) Gain() float64 {
	if p.Before == 0 {
		return 0
	}
	return (p.After - p.Before) / p.Before
}

// centerScores aggregates, per center net, the mean detectability of the
// faults sitting on it.
func centerScores(study analysis.StuckAtStudy, depth int) map[int]float64 {
	type acc struct {
		sum float64
		n   int
	}
	agg := map[int]*acc{}
	for _, r := range study.Records {
		if r.MaxLevelsToPO < depth/4 || r.LevelFromPI < depth/4 {
			continue // keep only center sites
		}
		a := agg[r.Fault.Net]
		if a == nil {
			a = &acc{}
			agg[r.Fault.Net] = a
		}
		a.sum += r.Detectability
		a.n++
	}
	out := map[int]float64{}
	for net, a := range agg {
		out[net] = a.sum / float64(a.n)
	}
	return out
}

// studyOf runs the collapsed-checkpoint study for a circuit.
func studyOf(c *netlist.Circuit) (analysis.StuckAtStudy, *diffprop.Engine, error) {
	e, err := diffprop.New(c, nil)
	if err != nil {
		return analysis.StuckAtStudy{}, nil, err
	}
	return analysis.RunStuckAt(e, faults.CheckpointStuckAts(e.Circuit)), e, nil
}

// withObservationPoints returns a copy of the working circuit with the
// given nets appended as primary outputs.
func withObservationPoints(w *netlist.Circuit, nets []int, label string) *netlist.Circuit {
	mod := w.Clone()
	mod.Name = w.Name + label
	for _, n := range nets {
		if !mod.IsOutput(n) {
			mod.MarkOutput(n)
		}
	}
	return mod
}

// CenterHeuristic inserts k observation points on the center nets whose
// faults have the lowest mean exact detectability.
func CenterHeuristic(c *netlist.Circuit, k int) (Plan, error) {
	if k <= 0 {
		return Plan{}, fmt.Errorf("tpi: k must be positive")
	}
	study, e, err := studyOf(c)
	if err != nil {
		return Plan{}, err
	}
	w := e.Circuit
	scores := centerScores(study, w.Depth())
	type cand struct {
		net   int
		score float64
	}
	ranked := make([]cand, 0, len(scores))
	for net, s := range scores {
		if w.IsOutput(net) {
			continue
		}
		ranked = append(ranked, cand{net, s})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].score != ranked[b].score {
			return ranked[a].score < ranked[b].score
		}
		return ranked[a].net < ranked[b].net
	})
	// Take the k worst nets, but diversify: a candidate inside the fan-in
	// or fan-out cone of an already chosen point largely shares its
	// observability fix, so it is skipped while alternatives remain.
	plan := Plan{Before: study.MeanDetectable()}
	taken := map[int]bool{}
	overlaps := func(net int) bool {
		for chosen := range taken {
			if net == chosen || w.FanoutCone(chosen)[net] || w.FaninCone(chosen)[net] {
				return true
			}
		}
		return false
	}
	for pass := 0; pass < 2 && len(plan.Points) < k; pass++ {
		for _, r := range ranked {
			if len(plan.Points) == k {
				break
			}
			if taken[r.net] {
				continue
			}
			if pass == 0 && overlaps(r.net) {
				continue // first pass insists on cone-disjoint picks
			}
			taken[r.net] = true
			plan.Points = append(plan.Points, r.net)
			plan.Names = append(plan.Names, w.NetName(r.net))
		}
	}
	plan.Circuit = withObservationPoints(w, plan.Points, "+tpi")
	after, _, err := studyOf(plan.Circuit)
	if err != nil {
		return Plan{}, err
	}
	plan.After = after.MeanDetectable()
	return plan, nil
}

// GreedyExact inserts k observation points one at a time, each time
// measuring (exactly) the mean-detectability improvement of every
// candidate center net and keeping the best. candidates bounds how many
// lowest-scoring center nets are measured per round (0 = a sensible
// default of 8).
func GreedyExact(c *netlist.Circuit, k, candidates int) (Plan, error) {
	if k <= 0 {
		return Plan{}, fmt.Errorf("tpi: k must be positive")
	}
	if candidates <= 0 {
		candidates = 8
	}
	study, e, err := studyOf(c)
	if err != nil {
		return Plan{}, err
	}
	w := e.Circuit
	plan := Plan{Before: study.MeanDetectable()}
	current := w.Clone()
	currentMean := plan.Before
	for round := 0; round < k; round++ {
		roundStudy, re, err := studyOf(current)
		if err != nil {
			return Plan{}, err
		}
		rw := re.Circuit
		scores := centerScores(roundStudy, rw.Depth())
		type cand struct {
			net   int
			score float64
		}
		ranked := make([]cand, 0, len(scores))
		for net, s := range scores {
			if rw.IsOutput(net) {
				continue
			}
			ranked = append(ranked, cand{net, s})
		}
		sort.Slice(ranked, func(a, b int) bool {
			if ranked[a].score != ranked[b].score {
				return ranked[a].score < ranked[b].score
			}
			return ranked[a].net < ranked[b].net
		})
		if len(ranked) > candidates {
			ranked = ranked[:candidates]
		}
		bestNet, bestMean := -1, currentMean
		for _, cd := range ranked {
			trial := withObservationPoints(rw, []int{cd.net}, "+trial")
			ts, _, err := studyOf(trial)
			if err != nil {
				return Plan{}, err
			}
			if m := ts.MeanDetectable(); m > bestMean {
				bestMean, bestNet = m, cd.net
			}
		}
		if bestNet < 0 {
			break // no candidate improves; stop early
		}
		plan.Points = append(plan.Points, bestNet)
		plan.Names = append(plan.Names, rw.NetName(bestNet))
		current = withObservationPoints(rw, []int{bestNet}, "")
		currentMean = bestMean
	}
	current.Name = w.Name + "+tpi"
	plan.Circuit = current
	plan.After = currentMean
	// Net indices drifted across rounds (each round re-decomposes);
	// resolve the chosen points by name against the final circuit.
	plan.Points = plan.Points[:0]
	for _, name := range plan.Names {
		plan.Points = append(plan.Points, current.NetByName(name))
	}
	return plan, nil
}
