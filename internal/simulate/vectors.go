package simulate

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadVectors parses a test-vector file: one vector per line as '0'/'1'
// characters (optionally separated by spaces), '#' comments and blank
// lines ignored. Every vector must have exactly nPI bits. This is the
// format cmd/atpg writes and cmd/simulate consumes.
func ReadVectors(r io.Reader, nPI int) ([][]bool, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out [][]bool
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		vec := make([]bool, 0, nPI)
		for _, ch := range line {
			switch ch {
			case '0':
				vec = append(vec, false)
			case '1':
				vec = append(vec, true)
			case ' ', '\t', '_':
				// separators allowed
			default:
				return nil, fmt.Errorf("vectors:%d: unexpected character %q", lineNo, ch)
			}
		}
		if len(vec) != nPI {
			return nil, fmt.Errorf("vectors:%d: %d bits, want %d", lineNo, len(vec), nPI)
		}
		out = append(out, vec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteVectors emits vectors in the same format, one per line.
func WriteVectors(w io.Writer, vectors [][]bool) error {
	bw := bufio.NewWriter(w)
	for _, v := range vectors {
		line := make([]byte, len(v))
		for i, b := range v {
			line[i] = '0'
			if b {
				line[i] = '1'
			}
		}
		if _, err := fmt.Fprintf(bw, "%s\n", line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
