package simulate

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/netlist"
)

func TestDetectMultipleStuckAtSingleEqualsSingle(t *testing.T) {
	c := circuits.MustGet("c95s")
	p := Exhaustive(len(c.Inputs))
	for _, f := range faults.CheckpointStuckAts(c)[:40] {
		single := DetectStuckAt(c, f, p)
		multi := DetectMultipleStuckAt(c, []faults.StuckAt{f}, p)
		for w := range single {
			if single[w] != multi[w] {
				t.Fatalf("%v: multiple-fault path disagrees with single-fault path", f.Describe(c))
			}
		}
	}
}

func TestDetectMultipleStuckAtDownstreamOverride(t *testing.T) {
	// z = NOT(a); both a/SA1 and z/SA1 behave exactly like z/SA1 alone.
	c := netlist.New("mask")
	a := c.AddInput("a")
	z := c.AddGate("z", netlist.Not, a)
	c.MarkOutput(z)
	p := Exhaustive(1)
	fa := faults.StuckAt{Net: a, Gate: -1, Pin: -1, Stuck: true}
	fz := faults.StuckAt{Net: z, Gate: -1, Pin: -1, Stuck: true}
	both := DetectMultipleStuckAt(c, []faults.StuckAt{fa, fz}, p)
	alone := DetectStuckAt(c, fz, p)
	if both[0] != alone[0] {
		t.Fatalf("downstream force must dominate: %b vs %b", both[0], alone[0])
	}
}

func TestDetectMultipleStuckAtBranchComponents(t *testing.T) {
	// Two branch faults of a c17 stem applied together must equal the
	// stem's net fault (all branches forced to the same value).
	c := circuits.MustGet("c17")
	n := c.NetByName("16")
	fo := c.Fanout()[n]
	if len(fo) != 2 {
		t.Fatal("net 16 must have two branches")
	}
	var branches []faults.StuckAt
	for _, g := range fo {
		for pin, fin := range c.Gates[g].Fanin {
			if fin == n {
				branches = append(branches, faults.StuckAt{Net: n, Gate: g, Pin: pin, Stuck: true})
			}
		}
	}
	p := Exhaustive(5)
	multi := DetectMultipleStuckAt(c, branches, p)
	net := DetectStuckAt(c, faults.StuckAt{Net: n, Gate: -1, Pin: -1, Stuck: true}, p)
	// Net 16 is not a PO, so forcing every branch equals forcing the net.
	for w := range multi {
		if multi[w] != net[w] {
			t.Fatal("all-branches multiple fault must equal the net fault")
		}
	}
}

func TestDetectGateSubKnownTruth(t *testing.T) {
	c := netlist.New("sub")
	a := c.AddInput("a")
	b := c.AddInput("b")
	z := c.AddGate("z", netlist.And, a, b)
	c.MarkOutput(z)
	p := Exhaustive(2)
	// AND -> OR differs at 01 and 10.
	mask := DetectGateSub(c, faults.GateSub{Gate: z, WrongType: netlist.Or}, p)
	if CountBits(mask) != 2 {
		t.Fatalf("AND->OR detects %d patterns, want 2", CountBits(mask))
	}
	// AND -> NAND differs everywhere.
	mask = DetectGateSub(c, faults.GateSub{Gate: z, WrongType: netlist.Nand}, p)
	if CountBits(mask) != 4 {
		t.Fatalf("AND->NAND detects %d patterns, want 4", CountBits(mask))
	}
}

func TestCoverageMultipleAndGateSubs(t *testing.T) {
	c := circuits.MustGet("c17")
	p := Exhaustive(5)
	pool := faults.CheckpointStuckAts(c)
	multis := [][]faults.StuckAt{
		{pool[0], pool[1]},
		{pool[2], pool[3]},
	}
	cm := CoverageMultiple(c, multis, p)
	if cm.Total != 2 || cm.Detected == 0 {
		t.Fatalf("multiple coverage %d/%d", cm.Detected, cm.Total)
	}
	subs := faults.AllGateSubs(c)
	cs := CoverageGateSubs(c, subs, p)
	if cs.Total != len(subs) || cs.Detected == 0 {
		t.Fatalf("gate-sub coverage %d/%d", cs.Detected, cs.Total)
	}
	if cs.Detected > cs.Total {
		t.Fatal("impossible coverage")
	}
}
