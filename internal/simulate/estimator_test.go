package simulate

import (
	"sync"
	"testing"

	"repro/internal/circuits"
	"repro/internal/faults"
)

func TestEstimatorMatchesDirectSimulation(t *testing.T) {
	c := circuits.MustGet("c95s").Decompose2()
	est := NewEstimator(c, 512, 7)
	p := Random(len(c.Inputs), 512, 7)
	for _, f := range faults.CheckpointStuckAts(c)[:20] {
		want := float64(CountBits(DetectStuckAt(c, f, p))) / 512
		if got := est.StuckAt(f); got != want {
			t.Fatalf("%v: estimator %.6f != direct %.6f", f, got, want)
		}
	}
	for _, b := range faults.AllNFBFs(c, faults.WiredAND)[:20] {
		want := float64(CountBits(DetectBridging(c, b, p))) / 512
		if got := est.Bridging(b); got != want {
			t.Fatalf("%v: estimator %.6f != direct %.6f", b, got, want)
		}
	}
}

func TestEstimatorDeterministicAndConcurrent(t *testing.T) {
	c := circuits.MustGet("c95s").Decompose2()
	fs := faults.CheckpointStuckAts(c)
	ref := NewEstimator(c, 256, 1990)
	want := make([]float64, len(fs))
	for i, f := range fs {
		want[i] = ref.StuckAt(f)
	}
	// A second estimator with the same parameters, hammered from several
	// goroutines, must reproduce the reference exactly.
	est := NewEstimator(c, 256, 1990)
	if est.Vectors() != 256 {
		t.Fatalf("Vectors() = %d", est.Vectors())
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, f := range fs {
				if got := est.StuckAt(f); got != want[i] {
					t.Errorf("%v: %.6f != %.6f", f, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestEstimatorFeedbackBridgePanics(t *testing.T) {
	c := circuits.MustGet("c17").Decompose2()
	est := NewEstimator(c, 64, 3)
	reach := faults.NewReachability(c)
	var fb *faults.Bridging
	for u := 0; u < c.NumNets() && fb == nil; u++ {
		for v := u + 1; v < c.NumNets(); v++ {
			if reach.IsFeedback(u, v) {
				fb = &faults.Bridging{U: u, V: v, Kind: faults.WiredAND}
				break
			}
		}
	}
	if fb == nil {
		t.Skip("no feedback pair in c17")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("feedback bridge did not panic")
		}
	}()
	est.Bridging(*fb)
}
