package simulate

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/netlist"
)

func TestExhaustivePatternsCountingOrder(t *testing.T) {
	p := Exhaustive(8)
	if p.Count != 256 || p.NumWords() != 4 {
		t.Fatalf("shape wrong: count=%d words=%d", p.Count, p.NumWords())
	}
	for idx := 0; idx < 256; idx++ {
		for pi := 0; pi < 8; pi++ {
			want := idx>>uint(pi)&1 == 1
			if p.Get(pi, idx) != want {
				t.Fatalf("pattern %d input %d = %v, want %v", idx, pi, p.Get(pi, idx), want)
			}
		}
	}
}

func TestExhaustiveSmall(t *testing.T) {
	p := Exhaustive(3)
	if p.Count != 8 || p.NumWords() != 1 {
		t.Fatal("small exhaustive shape wrong")
	}
	for idx := 0; idx < 8; idx++ {
		v := p.Vector(idx)
		for pi := 0; pi < 3; pi++ {
			if v[pi] != (idx>>uint(pi)&1 == 1) {
				t.Fatal("vector accessor wrong")
			}
		}
	}
}

func TestFromVectorsRoundTrip(t *testing.T) {
	vecs := [][]bool{
		{true, false, true},
		{false, false, false},
		{true, true, true},
	}
	p := FromVectors(3, vecs)
	if p.Count != 3 {
		t.Fatal("count wrong")
	}
	for i, v := range vecs {
		got := p.Vector(i)
		for j := range v {
			if got[j] != v[j] {
				t.Fatalf("vector %d bit %d wrong", i, j)
			}
		}
	}
}

func TestGoodValuesMatchEvalBool(t *testing.T) {
	for _, name := range []string{"c17", "fadd", "c95s", "alu181"} {
		c := circuits.MustGet(name)
		p := Random(len(c.Inputs), 200, 99)
		vals := GoodValues(c, p)
		for idx := 0; idx < p.Count; idx++ {
			want := c.EvalBool(p.Vector(idx))
			for j, o := range c.Outputs {
				got := vals[o][idx/64]>>uint(idx%64)&1 == 1
				if got != want[j] {
					t.Fatalf("%s: pattern %d output %d mismatch", name, idx, j)
				}
			}
		}
	}
}

// refFaultyEval is an independent single-pattern faulty evaluator used to
// cross-check the bit-parallel fault injection.
func refFaultyEval(c *netlist.Circuit, f faults.StuckAt, in []bool) []bool {
	vals := make([]bool, c.NumNets())
	for i, pi := range c.Inputs {
		vals[pi] = in[i]
	}
	if !f.IsBranch() && c.IsInput(f.Net) {
		vals[f.Net] = f.Stuck
	}
	for id, g := range c.Gates {
		if g.Type == netlist.Input {
			continue
		}
		ins := make([]bool, len(g.Fanin))
		for pin, fin := range g.Fanin {
			ins[pin] = vals[fin]
			if f.IsBranch() && id == f.Gate && pin == f.Pin {
				ins[pin] = f.Stuck
			}
		}
		vals[id] = g.Type.Eval(ins)
		if !f.IsBranch() && id == f.Net {
			vals[id] = f.Stuck
		}
	}
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = vals[o]
	}
	return out
}

func TestDetectStuckAtAgainstReference(t *testing.T) {
	for _, name := range []string{"c17", "fadd", "c95s"} {
		c := circuits.MustGet(name)
		p := Exhaustive(len(c.Inputs))
		for _, f := range faults.CheckpointStuckAts(c) {
			mask := DetectStuckAt(c, f, p)
			for idx := 0; idx < p.Count; idx++ {
				in := p.Vector(idx)
				good := c.EvalBool(in)
				faulty := refFaultyEval(c, f, in)
				want := false
				for j := range good {
					if good[j] != faulty[j] {
						want = true
					}
				}
				got := mask[idx/64]>>uint(idx%64)&1 == 1
				if got != want {
					t.Fatalf("%s fault %v pattern %d: detect=%v, want %v",
						name, f.Describe(c), idx, got, want)
				}
			}
		}
	}
}

func TestDetectBridgingAgainstInjectedCircuit(t *testing.T) {
	c := circuits.MustGet("c95s")
	p := Exhaustive(len(c.Inputs))
	rng := rand.New(rand.NewSource(61))
	all := faults.AllNFBFs(c, faults.WiredAND)
	allOr := faults.AllNFBFs(c, faults.WiredOR)
	all = append(all, allOr...)
	for trial := 0; trial < 40; trial++ {
		b := all[rng.Intn(len(all))]
		mask := DetectBridging(c, b, p)
		// Independent mechanism: structural bridge injection + plain eval.
		bc := c.InjectBridge(b.U, b.V, b.Kind == faults.WiredAND)
		for idx := 0; idx < p.Count; idx++ {
			in := p.Vector(idx)
			good := c.EvalBool(in)
			faulty := bc.EvalBool(in)
			want := false
			for j := range good {
				if good[j] != faulty[j] {
					want = true
				}
			}
			got := mask[idx/64]>>uint(idx%64)&1 == 1
			if got != want {
				t.Fatalf("%v pattern %d: detect=%v, want %v", b.Describe(c), idx, got, want)
			}
		}
	}
}

func TestCountBits(t *testing.T) {
	if CountBits(nil) != 0 {
		t.Fatal("empty mask")
	}
	if CountBits([]uint64{0xF, 1 << 63}) != 5 {
		t.Fatal("count wrong")
	}
}

func TestRedundantFaultNeverDetected(t *testing.T) {
	// z = a OR (a AND b) == a: the AND output stuck-at-0 is redundant.
	c := netlist.New("redundant")
	a := c.AddInput("a")
	b := c.AddInput("b")
	ab := c.AddGate("ab", netlist.And, a, b)
	z := c.AddGate("z", netlist.Or, a, ab)
	c.MarkOutput(z)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	f := faults.StuckAt{Net: ab, Gate: -1, Pin: -1, Stuck: false}
	if got := ExhaustiveDetectabilityStuckAt(c, f); got != 0 {
		t.Fatalf("redundant fault detected with probability %v", got)
	}
	// The stuck-at-1 on the same net is detectable (a=0, b arbitrary flips z).
	f.Stuck = true
	if got := ExhaustiveDetectabilityStuckAt(c, f); got != 0.5 {
		t.Fatalf("ab/SA1 detectability = %v, want 0.5", got)
	}
}

func TestKnownC17Detectabilities(t *testing.T) {
	c := circuits.MustGet("c17")
	// PI "1" stuck-at-0: tests must set 1=1, 3=1 and propagate 10 through
	// 22: need 16=1. By enumeration the exact detectability is a crisp
	// reference point; check symmetry SA0 vs SA1 sum to the excitation
	// space coverage.
	n1 := c.NetByName("1")
	d0 := ExhaustiveDetectabilityStuckAt(c, faults.StuckAt{Net: n1, Gate: -1, Pin: -1, Stuck: false})
	d1 := ExhaustiveDetectabilityStuckAt(c, faults.StuckAt{Net: n1, Gate: -1, Pin: -1, Stuck: true})
	if d0 <= 0 || d1 <= 0 {
		t.Fatal("c17 PI faults must be detectable")
	}
	// The union of SA0 and SA1 test sets for the same line is the set of
	// patterns where the line's value is observable, so d0 + d1 <= 1.
	if d0+d1 > 1 {
		t.Fatalf("d0+d1 = %v > 1", d0+d1)
	}
	// Every checkpoint fault of c17 is detectable (c17 is irredundant).
	for _, f := range faults.CheckpointStuckAts(c) {
		if ExhaustiveDetectabilityStuckAt(c, f) == 0 {
			t.Fatalf("c17 fault %v undetectable", f.Describe(c))
		}
	}
}

func TestCoverage(t *testing.T) {
	c := circuits.MustGet("c17")
	fs := faults.CheckpointStuckAts(c)
	full := Exhaustive(5)
	r := CoverageStuckAt(c, fs, full)
	if r.Coverage() != 1 {
		t.Fatalf("exhaustive coverage = %v, want 1", r.Coverage())
	}
	// A single pattern cannot detect everything.
	one := FromVectors(5, [][]bool{{true, true, true, true, true}})
	r = CoverageStuckAt(c, fs, one)
	if r.Coverage() >= 1 || r.Detected == 0 {
		t.Fatalf("single-pattern coverage = %v", r.Coverage())
	}
	bs := faults.AllNFBFs(c, faults.WiredAND)
	rb := CoverageBridging(c, bs, full)
	if rb.Total == 0 || rb.Detected == 0 {
		t.Fatal("c17 must have detectable AND NFBFs")
	}
	if rb.Detected > rb.Total {
		t.Fatal("impossible coverage")
	}
	if got := rb.Coverage(); got <= 0 || got > 1 {
		t.Fatalf("coverage out of range: %v", got)
	}
	if (CoverageResult{}).Coverage() != 0 {
		t.Fatal("empty coverage must be 0")
	}
}

func TestExhaustiveDetectabilityBridging(t *testing.T) {
	c := circuits.MustGet("fadd")
	bs := faults.AllNFBFs(c, faults.WiredOR)
	if len(bs) == 0 {
		t.Fatal("fadd must have OR NFBFs")
	}
	for _, b := range bs {
		d := ExhaustiveDetectabilityBridging(c, b)
		if d < 0 || d > 1 {
			t.Fatalf("detectability %v out of range", d)
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	c := circuits.MustGet("c17")
	mustPanic("exhaustive too big", func() { Exhaustive(31) })
	mustPanic("vector width", func() { FromVectors(3, [][]bool{{true}}) })
	mustPanic("good values width", func() { GoodValues(c, Exhaustive(3)) })
	// Net 11 feeds 16: feedback bridge must be rejected.
	mustPanic("feedback bridge", func() {
		DetectBridging(c, faults.Bridging{U: c.NetByName("11"), V: c.NetByName("16")}, Exhaustive(5))
	})
}

func TestRandomDeterministicBySeed(t *testing.T) {
	a := Random(7, 130, 42)
	b := Random(7, 130, 42)
	c := Random(7, 130, 43)
	if a.Count != 130 || a.NumWords() != 3 {
		t.Fatalf("shape wrong: %d/%d", a.Count, a.NumWords())
	}
	same, diff := true, false
	for i := range a.Words {
		for w := range a.Words[i] {
			if a.Words[i][w] != b.Words[i][w] {
				same = false
			}
			if a.Words[i][w] != c.Words[i][w] {
				diff = true
			}
		}
	}
	if !same {
		t.Fatal("same seed must reproduce patterns")
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestLastMaskFullWord(t *testing.T) {
	p := Random(3, 128, 1)
	if p.lastMask() != ^uint64(0) {
		t.Fatal("exact multiple of 64 must not mask")
	}
	q := Random(3, 65, 1)
	if q.lastMask() != 1 {
		t.Fatalf("65 patterns leave mask %x, want 1", q.lastMask())
	}
}

func TestPatternsSecondWordAccess(t *testing.T) {
	vecs := make([][]bool, 70)
	for i := range vecs {
		vecs[i] = []bool{i%2 == 1, i >= 64}
	}
	p := FromVectors(2, vecs)
	if !p.Get(0, 65) || !p.Get(1, 69) || p.Get(1, 63) {
		t.Fatal("second-word bit access wrong")
	}
	v := p.Vector(66)
	if v[0] != false || v[1] != true {
		t.Fatalf("vector 66 = %v", v)
	}
}

func TestVectorsRoundTrip(t *testing.T) {
	vecs := [][]bool{
		{true, false, true},
		{false, true, false},
	}
	var sb strings.Builder
	if err := WriteVectors(&sb, vecs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVectors(strings.NewReader("# comment\n\n"+sb.String()), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d vectors", len(got))
	}
	for i := range vecs {
		for j := range vecs[i] {
			if got[i][j] != vecs[i][j] {
				t.Fatal("round trip changed vectors")
			}
		}
	}
}

func TestReadVectorsErrorsAndSeparators(t *testing.T) {
	if _, err := ReadVectors(strings.NewReader("10x\n"), 3); err == nil {
		t.Fatal("bad character must error")
	}
	if _, err := ReadVectors(strings.NewReader("10\n"), 3); err == nil {
		t.Fatal("short vector must error")
	}
	got, err := ReadVectors(strings.NewReader("1 0_1\n"), 3)
	if err != nil || len(got) != 1 || !got[0][0] || got[0][1] || !got[0][2] {
		t.Fatalf("separators mishandled: %v %v", got, err)
	}
}
