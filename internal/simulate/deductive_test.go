package simulate

import (
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/netlist"
)

// TestDeductiveMatchesPerFaultSimulation is the exactness check: for each
// vector, the one-pass deductive verdicts must equal per-fault event
// simulation bit for bit — including on heavily reconvergent circuits.
func TestDeductiveMatchesPerFaultSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, name := range []string{"c17", "fadd", "c95s", "alu181", "c432s"} {
		c := circuits.MustGet(name).Decompose2()
		all := faults.CheckpointStuckAts(c)
		for trial := 0; trial < 12; trial++ {
			vec := make([]bool, len(c.Inputs))
			for i := range vec {
				vec[i] = rng.Intn(2) == 1
			}
			got := DeductiveStuckAt(c, all, vec)
			p := FromVectors(len(c.Inputs), [][]bool{vec})
			for i, f := range all {
				want := CountBits(DetectStuckAt(c, f, p)) == 1
				if got[i] != want {
					t.Fatalf("%s vector %v fault %v: deductive=%v per-fault=%v",
						name, vec, f.Describe(c), got[i], want)
				}
			}
		}
	}
}

func TestDeductiveAllNetFaults(t *testing.T) {
	// Every net fault of both polarities on the multiplier (stems,
	// internal nets, POs) for several vectors.
	c := circuits.MustGet("c95s")
	all := faults.AllStuckAts(c)
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 10; trial++ {
		vec := make([]bool, len(c.Inputs))
		for i := range vec {
			vec[i] = rng.Intn(2) == 1
		}
		got := DeductiveStuckAt(c, all, vec)
		p := FromVectors(len(c.Inputs), [][]bool{vec})
		for i, f := range all {
			want := CountBits(DetectStuckAt(c, f, p)) == 1
			if got[i] != want {
				t.Fatalf("fault %v: deductive=%v per-fault=%v", f.Describe(c), got[i], want)
			}
		}
	}
}

func TestDeductiveXorOddFlipRule(t *testing.T) {
	// A fault reaching both XOR inputs through reconvergence must cancel.
	c := netlist.New("recon")
	a := c.AddInput("a")
	b := c.AddInput("b")
	n1 := c.AddGate("n1", netlist.And, a, b)
	x1 := c.AddGate("x1", netlist.Buff, n1)
	x2 := c.AddGate("x2", netlist.Buff, n1)
	z := c.AddGate("z", netlist.Xor, x1, x2) // always 0; n1 faults cancel
	c.MarkOutput(z)
	fs := []faults.StuckAt{
		{Net: n1, Gate: -1, Pin: -1, Stuck: false},
		{Net: n1, Gate: -1, Pin: -1, Stuck: true},
	}
	for v := 0; v < 4; v++ {
		vec := []bool{v&1 == 1, v&2 == 2}
		got := DeductiveStuckAt(c, fs, vec)
		if got[0] || got[1] {
			t.Fatalf("reconvergent cancellation missed at %v: %v", vec, got)
		}
	}
}

func TestDeductiveCoverageMatchesBitParallel(t *testing.T) {
	c := circuits.MustGet("alu181").Decompose2()
	fs := faults.CheckpointStuckAts(c)
	vectors := make([][]bool, 24)
	rng := rand.New(rand.NewSource(107))
	for i := range vectors {
		vectors[i] = make([]bool, len(c.Inputs))
		for j := range vectors[i] {
			vectors[i][j] = rng.Intn(2) == 1
		}
	}
	ded := DeductiveCoverage(c, fs, vectors)
	bit := CoverageStuckAt(c, fs, FromVectors(len(c.Inputs), vectors))
	if ded.Detected != bit.Detected {
		t.Fatalf("coverage disagrees: deductive %d, bit-parallel %d", ded.Detected, bit.Detected)
	}
	for i := range ded.PerFault {
		if ded.PerFault[i] != bit.PerFault[i] {
			t.Fatalf("per-fault verdict differs at %v", fs[i].Describe(c))
		}
	}
}

func TestDeductivePanicsOnBadVector(t *testing.T) {
	c := circuits.MustGet("c17")
	defer func() {
		if recover() == nil {
			t.Fatal("short vector must panic")
		}
	}()
	DeductiveStuckAt(c, nil, []bool{true})
}
