package simulate

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/netlist"
)

// Deductive fault simulation (Armstrong 1972, the family of Menon's
// simulator the paper cites as ref [18]): one true-value pass per input
// vector carries, on every net, the *list* of single stuck-at faults that
// would flip that net — so a single pass determines every detected fault.
// Reconvergent fan-out is handled exactly by the set rules:
//
//   - no input at controlling value:  L(out) = ∪ L(in_i)
//   - S = inputs at controlling value: L(out) = ∩_{i∈S} L(in_i) \ ∪_{i∉S} L(in_i)
//   - XOR-likes: f ∈ L(out) iff f flips an odd number of inputs
//
// plus the net's own active stuck-at fault, with branch faults entering at
// their pin list. Inversions do not change fault lists.

// faultSet is a set of fault indices.
type faultSet map[int]struct{}

func (s faultSet) add(i int)      { s[i] = struct{}{} }
func (s faultSet) has(i int) bool { _, ok := s[i]; return ok }
func (s faultSet) union(o faultSet) {
	for i := range o {
		s.add(i)
	}
}

// DeductiveStuckAt runs one deductive simulation pass for the input
// vector and returns, aligned with fs, whether each fault is detected at
// some primary output by this vector. Results are exact for single
// stuck-at faults (verified against per-fault simulation in the tests).
func DeductiveStuckAt(c *netlist.Circuit, fs []faults.StuckAt, vec []bool) []bool {
	if len(vec) != len(c.Inputs) {
		panic(fmt.Sprintf("simulate: vector has %d bits for %d inputs", len(vec), len(c.Inputs)))
	}
	// Index the fault list by site.
	netFault := map[[2]int]int{} // (net, stuckBit) -> fault index
	pinFault := map[[4]int]int{} // (gate, pin, stuckBit, 0) -> fault index
	for i, f := range fs {
		sb := 0
		if f.Stuck {
			sb = 1
		}
		if f.IsBranch() {
			pinFault[[4]int{f.Gate, f.Pin, sb, 0}] = i
		} else {
			netFault[[2]int{f.Net, sb}] = i
		}
	}

	vals := make([]bool, c.NumNets())
	lists := make([]faultSet, c.NumNets())
	activeNetFault := func(net int, v bool) (int, bool) {
		sb := 0
		if !v {
			sb = 1 // a line at 0 is flipped by its stuck-at-1 fault
		}
		i, ok := netFault[[2]int{net, sb}]
		return i, ok
	}

	for id, g := range c.Gates {
		if g.Type == netlist.Input {
			vals[id] = vec[indexOfInput(c, id)]
			l := faultSet{}
			if fi, ok := activeNetFault(id, vals[id]); ok {
				l.add(fi)
			}
			lists[id] = l
			continue
		}
		// Per-pin values and lists (pin faults join here).
		pinVals := make([]bool, len(g.Fanin))
		pinLists := make([]faultSet, len(g.Fanin))
		for pin, fin := range g.Fanin {
			pinVals[pin] = vals[fin]
			pl := faultSet{}
			pl.union(lists[fin])
			sb := 0
			if !pinVals[pin] {
				sb = 1
			}
			if fi, ok := pinFault[[4]int{id, pin, sb, 0}]; ok {
				pl.add(fi)
			}
			pinLists[pin] = pl
		}
		v := g.Type.Eval(pinVals)
		vals[id] = v

		out := faultSet{}
		switch g.Type {
		case netlist.Not, netlist.Buff:
			out.union(pinLists[0])
		case netlist.Xor, netlist.Xnor:
			// Odd-flip rule.
			counts := map[int]int{}
			for _, pl := range pinLists {
				for fi := range pl {
					counts[fi]++
				}
			}
			for fi, n := range counts {
				if n%2 == 1 {
					out.add(fi)
				}
			}
		default: // AND/NAND/OR/NOR
			cv := g.Type == netlist.Or || g.Type == netlist.Nor // controlling value: 0 for AND-likes, 1 for OR-likes
			var controllingPins []int
			for pin, pv := range pinVals {
				if pv == cv {
					controllingPins = append(controllingPins, pin)
				}
			}
			if len(controllingPins) == 0 {
				for _, pl := range pinLists {
					out.union(pl)
				}
			} else {
				// Intersection over controlling pins...
				for fi := range pinLists[controllingPins[0]] {
					inAll := true
					for _, pin := range controllingPins[1:] {
						if !pinLists[pin].has(fi) {
							inAll = false
							break
						}
					}
					if !inAll {
						continue
					}
					// ...minus any non-controlling pin that would flip too.
					flipsNC := false
					for pin, pv := range pinVals {
						if pv != cv && pinLists[pin].has(fi) {
							flipsNC = true
							break
						}
					}
					if !flipsNC {
						out.add(fi)
					}
				}
			}
		}
		if fi, ok := activeNetFault(id, v); ok {
			out.add(fi)
		}
		lists[id] = out
	}

	detected := make([]bool, len(fs))
	for _, o := range c.Outputs {
		for fi := range lists[o] {
			detected[fi] = true
		}
	}
	return detected
}

// indexOfInput returns the declaration index of a PI gate id.
func indexOfInput(c *netlist.Circuit, id int) int {
	for i, in := range c.Inputs {
		if in == id {
			return i
		}
	}
	panic("simulate: not an input")
}

// DeductiveCoverage runs deductive simulation for every vector and
// accumulates a coverage result over the fault list — one circuit pass
// per vector regardless of the fault count.
func DeductiveCoverage(c *netlist.Circuit, fs []faults.StuckAt, vectors [][]bool) CoverageResult {
	r := CoverageResult{Total: len(fs), PerFault: make([]bool, len(fs))}
	for _, vec := range vectors {
		for i, d := range DeductiveStuckAt(c, fs, vec) {
			if d && !r.PerFault[i] {
				r.PerFault[i] = true
				r.Detected++
			}
		}
	}
	return r
}
