package simulate

import (
	"repro/internal/faults"
	"repro/internal/netlist"
)

// DetectMultipleStuckAt simulates a multiple stuck-at fault (all component
// faults present simultaneously) over the pattern block and returns the
// per-pattern detection mask. Later component faults override upstream
// fault effects at their own sites, matching the semantics of
// diffprop.MultipleStuckAt.
func DetectMultipleStuckAt(c *netlist.Circuit, fs []faults.StuckAt, p *Patterns) []uint64 {
	good := GoodValues(c, p)
	words := p.NumWords()
	netForce := map[int]uint64{}
	pinForce := map[[2]int]uint64{}
	cone := make([]bool, c.NumNets())
	mark := func(from []bool) {
		for n, set := range from {
			cone[n] = cone[n] || set
		}
	}
	for _, f := range fs {
		forced := uint64(0)
		if f.Stuck {
			forced = ^uint64(0)
		}
		if f.IsBranch() {
			pinForce[[2]int{f.Gate, f.Pin}] = forced
			cone[f.Gate] = true
			mark(c.FanoutCone(f.Gate))
		} else {
			netForce[f.Net] = forced
			cone[f.Net] = true
			mark(c.FanoutCone(f.Net))
		}
	}
	vals := make([][]uint64, c.NumNets())
	copy(vals, good)
	// Forced primary inputs (and any forced net) take the constant.
	for net, forced := range netForce {
		fv := make([]uint64, words)
		for w := range fv {
			fv[w] = forced
		}
		vals[net] = fv
	}
	scratch := make([]uint64, 0, 8)
	for id, g := range c.Gates {
		if !cone[id] || g.Type == netlist.Input {
			continue
		}
		if _, forced := netForce[id]; forced {
			continue // already set; overrides upstream effects
		}
		out := make([]uint64, words)
		for w := 0; w < words; w++ {
			scratch = scratch[:0]
			for pin, fin := range g.Fanin {
				v := vals[fin][w]
				if fv, ok := pinForce[[2]int{id, pin}]; ok {
					v = fv
				}
				scratch = append(scratch, v)
			}
			out[w] = g.Type.EvalWord(scratch)
		}
		vals[id] = out
	}
	det := outputDiff(c, good, vals, words)
	if len(det) > 0 {
		det[len(det)-1] &= p.lastMask()
	}
	return det
}

// DetectGateSub simulates a gate substitution fault over the pattern block
// and returns the per-pattern detection mask.
func DetectGateSub(c *netlist.Circuit, s faults.GateSub, p *Patterns) []uint64 {
	good := GoodValues(c, p)
	words := p.NumWords()
	vals := make([][]uint64, c.NumNets())
	copy(vals, good)
	cone := make([]bool, c.NumNets())
	cone[s.Gate] = true
	for n, set := range c.FanoutCone(s.Gate) {
		cone[n] = cone[n] || set
	}
	scratch := make([]uint64, 0, 8)
	for id, g := range c.Gates {
		if !cone[id] || g.Type == netlist.Input {
			continue
		}
		typ := g.Type
		if id == s.Gate {
			typ = s.WrongType
		}
		out := make([]uint64, words)
		for w := 0; w < words; w++ {
			scratch = scratch[:0]
			for _, fin := range g.Fanin {
				scratch = append(scratch, vals[fin][w])
			}
			out[w] = typ.EvalWord(scratch)
		}
		vals[id] = out
	}
	det := outputDiff(c, good, vals, words)
	if len(det) > 0 {
		det[len(det)-1] &= p.lastMask()
	}
	return det
}

// CoverageMultiple fault-simulates the pattern block against a list of
// multiple stuck-at faults (each element is one multiple fault).
func CoverageMultiple(c *netlist.Circuit, multis [][]faults.StuckAt, p *Patterns) CoverageResult {
	r := CoverageResult{Total: len(multis), PerFault: make([]bool, len(multis))}
	for i, fs := range multis {
		if CountBits(DetectMultipleStuckAt(c, fs, p)) > 0 {
			r.PerFault[i] = true
			r.Detected++
		}
	}
	return r
}

// CoverageGateSubs fault-simulates the pattern block against gate
// substitution faults.
func CoverageGateSubs(c *netlist.Circuit, subs []faults.GateSub, p *Patterns) CoverageResult {
	r := CoverageResult{Total: len(subs), PerFault: make([]bool, len(subs))}
	for i, s := range subs {
		if CountBits(DetectGateSub(c, s, p)) > 0 {
			r.PerFault[i] = true
			r.Detected++
		}
	}
	return r
}
