// Package simulate is the baseline the paper argues against (§1, refs
// [2][3]): a 64-way bit-parallel pattern simulator with stuck-at and
// bridging fault injection. It is used here to cross-validate the exact
// OBDD results of Difference Propagation on small circuits (where
// exhaustive simulation is feasible) and to run the Millman–McCluskey
// style "stuck-at test set versus bridging faults" coverage experiment.
package simulate

import (
	"fmt"
	"math/rand"

	"repro/internal/faults"
	"repro/internal/netlist"
)

// Patterns is a bit-parallel pattern block: Words[i][w] holds the values
// of primary input i for patterns 64*w .. 64*w+63 (LSB first). Count is
// the number of valid patterns; trailing bits of the last word are
// ignored by the accessors but are simulated (harmlessly) by the
// evaluators.
type Patterns struct {
	Count int
	Words [][]uint64
}

// NumWords returns the number of 64-pattern words.
func (p *Patterns) NumWords() int {
	if len(p.Words) == 0 {
		return 0
	}
	return len(p.Words[0])
}

// lastMask masks off the unused bits of the final word.
func (p *Patterns) lastMask() uint64 {
	r := p.Count % 64
	if r == 0 {
		return ^uint64(0)
	}
	return (1 << uint(r)) - 1
}

// Get returns the value of input pi in pattern idx.
func (p *Patterns) Get(pi, idx int) bool {
	return p.Words[pi][idx/64]>>uint(idx%64)&1 == 1
}

// Vector returns pattern idx as a bool slice.
func (p *Patterns) Vector(idx int) []bool {
	out := make([]bool, len(p.Words))
	for i := range p.Words {
		out[i] = p.Get(i, idx)
	}
	return out
}

// FromVectors packs explicit test vectors into a pattern block.
func FromVectors(nPI int, vectors [][]bool) *Patterns {
	p := &Patterns{Count: len(vectors)}
	words := (len(vectors) + 63) / 64
	p.Words = make([][]uint64, nPI)
	for i := range p.Words {
		p.Words[i] = make([]uint64, words)
	}
	for idx, v := range vectors {
		if len(v) != nPI {
			panic(fmt.Sprintf("simulate: vector %d has %d bits, want %d", idx, len(v), nPI))
		}
		for i, b := range v {
			if b {
				p.Words[i][idx/64] |= 1 << uint(idx%64)
			}
		}
	}
	return p
}

// Exhaustive returns all 2^nPI patterns in counting order (input i is bit
// i of the pattern index). Panics for nPI > 30.
func Exhaustive(nPI int) *Patterns {
	if nPI > 30 {
		panic(fmt.Sprintf("simulate: exhaustive simulation of %d inputs is not sensible", nPI))
	}
	count := 1 << uint(nPI)
	words := (count + 63) / 64
	p := &Patterns{Count: count, Words: make([][]uint64, nPI)}
	// Bit patterns for the six in-word variables.
	inWord := [6]uint64{
		0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC, 0xF0F0F0F0F0F0F0F0,
		0xFF00FF00FF00FF00, 0xFFFF0000FFFF0000, 0xFFFFFFFF00000000,
	}
	for i := 0; i < nPI; i++ {
		p.Words[i] = make([]uint64, words)
		for w := 0; w < words; w++ {
			if i < 6 {
				p.Words[i][w] = inWord[i]
			} else if w>>(uint(i)-6)&1 == 1 {
				p.Words[i][w] = ^uint64(0)
			}
		}
	}
	return p
}

// Random returns count uniformly random patterns from the given seed.
func Random(nPI, count int, seed int64) *Patterns {
	rng := rand.New(rand.NewSource(seed))
	words := (count + 63) / 64
	p := &Patterns{Count: count, Words: make([][]uint64, nPI)}
	for i := range p.Words {
		p.Words[i] = make([]uint64, words)
		for w := range p.Words[i] {
			p.Words[i][w] = rng.Uint64()
		}
	}
	return p
}

// GoodValues evaluates the fault-free circuit over the pattern block and
// returns one word slice per net.
func GoodValues(c *netlist.Circuit, p *Patterns) [][]uint64 {
	if len(p.Words) != len(c.Inputs) {
		panic(fmt.Sprintf("simulate: %d input columns for %d inputs", len(p.Words), len(c.Inputs)))
	}
	words := p.NumWords()
	vals := make([][]uint64, c.NumNets())
	for i, in := range c.Inputs {
		vals[in] = p.Words[i]
	}
	scratch := make([]uint64, 0, 8)
	for id, g := range c.Gates {
		if g.Type == netlist.Input {
			continue
		}
		out := make([]uint64, words)
		for w := 0; w < words; w++ {
			scratch = scratch[:0]
			for _, f := range g.Fanin {
				scratch = append(scratch, vals[f][w])
			}
			out[w] = g.Type.EvalWord(scratch)
		}
		vals[id] = out
	}
	return vals
}

// outputDiff ORs the XOR of good and faulty PO words into a detect mask.
func outputDiff(c *netlist.Circuit, good, faulty [][]uint64, words int) []uint64 {
	det := make([]uint64, words)
	for _, o := range c.Outputs {
		for w := 0; w < words; w++ {
			det[w] |= good[o][w] ^ faulty[o][w]
		}
	}
	return det
}

// DetectStuckAt simulates the stuck-at fault over the pattern block and
// returns the per-pattern detection mask (bit set = some primary output
// differs from the good circuit). Branch faults force only the faulted
// gate pin; net faults force the net for all its consumers and for PO
// observation.
func DetectStuckAt(c *netlist.Circuit, f faults.StuckAt, p *Patterns) []uint64 {
	return detectStuckAt(c, f, p, GoodValues(c, p))
}

func detectStuckAt(c *netlist.Circuit, f faults.StuckAt, p *Patterns, good [][]uint64) []uint64 {
	words := p.NumWords()
	forced := uint64(0)
	if f.Stuck {
		forced = ^uint64(0)
	}
	vals := make([][]uint64, c.NumNets())
	copy(vals, good)
	if !f.IsBranch() {
		fv := make([]uint64, words)
		for w := range fv {
			fv[w] = forced
		}
		vals[f.Net] = fv
	}
	// Recompute the fan-out cone of the fault site.
	var cone []bool
	if f.IsBranch() {
		cone = make([]bool, c.NumNets())
		cone[f.Gate] = true
		for n, set := range c.FanoutCone(f.Gate) {
			cone[n] = cone[n] || set
		}
	} else {
		cone = c.FanoutCone(f.Net)
	}
	scratch := make([]uint64, 0, 8)
	for id, g := range c.Gates {
		if !cone[id] || g.Type == netlist.Input {
			continue
		}
		out := make([]uint64, words)
		for w := 0; w < words; w++ {
			scratch = scratch[:0]
			for pin, fin := range g.Fanin {
				v := vals[fin][w]
				if f.IsBranch() && id == f.Gate && pin == f.Pin {
					v = forced
				}
				scratch = append(scratch, v)
			}
			out[w] = g.Type.EvalWord(scratch)
		}
		vals[id] = out
	}
	det := outputDiff(c, good, vals, words)
	if len(det) > 0 {
		det[len(det)-1] &= p.lastMask()
	}
	return det
}

// DetectBridging simulates the wired-logic bridging fault over the pattern
// block and returns the per-pattern detection mask. The bridge must be
// non-feedback; the check reuses the fan-out cones the simulation needs
// anyway instead of tracing them twice.
func DetectBridging(c *netlist.Circuit, b faults.Bridging, p *Patterns) []uint64 {
	coneU, coneV := c.FanoutCone(b.U), c.FanoutCone(b.V)
	if coneU[b.V] || coneV[b.U] {
		panic(fmt.Sprintf("simulate: %v is a feedback bridge", b))
	}
	return detectBridging(c, b, p, GoodValues(c, p), coneU, coneV)
}

func detectBridging(c *netlist.Circuit, b faults.Bridging, p *Patterns, good [][]uint64, coneU, coneV []bool) []uint64 {
	words := p.NumWords()
	wired := make([]uint64, words)
	for w := 0; w < words; w++ {
		if b.Kind == faults.WiredAND {
			wired[w] = good[b.U][w] & good[b.V][w]
		} else {
			wired[w] = good[b.U][w] | good[b.V][w]
		}
	}
	vals := make([][]uint64, c.NumNets())
	copy(vals, good)
	vals[b.U] = wired
	vals[b.V] = wired
	scratch := make([]uint64, 0, 8)
	for id, g := range c.Gates {
		if (!coneU[id] && !coneV[id]) || g.Type == netlist.Input {
			continue
		}
		out := make([]uint64, words)
		for w := 0; w < words; w++ {
			scratch = scratch[:0]
			for _, fin := range g.Fanin {
				scratch = append(scratch, vals[fin][w])
			}
			out[w] = g.Type.EvalWord(scratch)
		}
		vals[id] = out
	}
	det := outputDiff(c, good, vals, words)
	if len(det) > 0 {
		det[len(det)-1] &= p.lastMask()
	}
	return det
}

// CountBits sums the set bits of a detection mask.
func CountBits(mask []uint64) int {
	n := 0
	for _, w := range mask {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// ExhaustiveDetectabilityStuckAt returns the exact detection probability
// of the fault by full enumeration — the quantity Difference Propagation
// computes symbolically.
func ExhaustiveDetectabilityStuckAt(c *netlist.Circuit, f faults.StuckAt) float64 {
	p := Exhaustive(len(c.Inputs))
	return float64(CountBits(DetectStuckAt(c, f, p))) / float64(p.Count)
}

// ExhaustiveDetectabilityBridging is the bridging analogue.
func ExhaustiveDetectabilityBridging(c *netlist.Circuit, b faults.Bridging) float64 {
	p := Exhaustive(len(c.Inputs))
	return float64(CountBits(DetectBridging(c, b, p))) / float64(p.Count)
}

// CoverageResult reports a fault-simulation campaign.
type CoverageResult struct {
	Total    int
	Detected int
	// PerFault[i] is true when fault i was detected by some pattern.
	PerFault []bool
}

// Coverage returns the detected fraction.
func (r CoverageResult) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// CoverageStuckAt fault-simulates the pattern block against every fault.
func CoverageStuckAt(c *netlist.Circuit, fs []faults.StuckAt, p *Patterns) CoverageResult {
	r := CoverageResult{Total: len(fs), PerFault: make([]bool, len(fs))}
	good := GoodValues(c, p)
	for i, f := range fs {
		if CountBits(detectStuckAt(c, f, p, good)) > 0 {
			r.PerFault[i] = true
			r.Detected++
		}
	}
	return r
}

// CoverageBridging fault-simulates the pattern block against every
// bridging fault. Feedback screening and cone extraction use one
// precomputed reachability table for the whole campaign instead of
// re-tracing two fan-out cones per fault.
func CoverageBridging(c *netlist.Circuit, bs []faults.Bridging, p *Patterns) CoverageResult {
	r := CoverageResult{Total: len(bs), PerFault: make([]bool, len(bs))}
	good := GoodValues(c, p)
	reach := faults.NewReachability(c)
	for i, b := range bs {
		if reach.IsFeedback(b.U, b.V) {
			panic(fmt.Sprintf("simulate: %v is a feedback bridge", b))
		}
		if CountBits(detectBridging(c, b, p, good, reach.Cone(b.U), reach.Cone(b.V))) > 0 {
			r.PerFault[i] = true
			r.Detected++
		}
	}
	return r
}
