package simulate

import (
	"fmt"
	"log/slog"

	"repro/internal/faults"
	"repro/internal/netlist"
)

// Estimator is a reusable random-vector detectability estimator: it
// precomputes one fixed-seed pattern block, the fault-free values over it,
// and the fan-out reachability table, then estimates any fault's
// detectability as the detected fraction of that block. It is the graceful
// degradation path for faults whose exact OBDD analysis blows its resource
// budget (in the spirit of sampled n-detection analysis): the estimate is
// statistically useful exactly where exact analysis is infeasible.
//
// The estimator is safe for concurrent use by multiple goroutines: all
// shared state is written once in NewEstimator, and per-call scratch is
// local. Building it warms the circuit's lazy fan-out cache so later
// concurrent cone extractions only read.
type Estimator struct {
	c     *netlist.Circuit
	p     *Patterns
	good  [][]uint64
	reach *faults.Reachability

	// log receives one Debug record per estimate when set. It must be set
	// before the estimator is shared across goroutines (SetLogger is a
	// plain write; the slog.Logger itself is concurrency-safe).
	log *slog.Logger
}

// SetLogger attaches a structured logger recording each degraded-fault
// estimate. Call before sharing the estimator across goroutines.
func (e *Estimator) SetLogger(log *slog.Logger) { e.log = log }

// NewEstimator builds an estimator over `vectors` random patterns drawn
// from the seed. The same (circuit, vectors, seed) triple always yields
// the same estimates, which keeps degraded records deterministic across
// runs, workers, and checkpoint resumes.
func NewEstimator(c *netlist.Circuit, vectors int, seed int64) *Estimator {
	if vectors <= 0 {
		panic(fmt.Sprintf("simulate: estimator needs a positive vector count, got %d", vectors))
	}
	p := Random(len(c.Inputs), vectors, seed)
	return &Estimator{
		c:     c,
		p:     p,
		good:  GoodValues(c, p),
		reach: faults.NewReachability(c),
	}
}

// Vectors returns the size of the pattern block behind each estimate.
func (e *Estimator) Vectors() int { return e.p.Count }

// StuckAt estimates the fault's detectability as the fraction of the
// pattern block that detects it.
func (e *Estimator) StuckAt(f faults.StuckAt) float64 {
	det := detectStuckAt(e.c, f, e.p, e.good)
	est := float64(CountBits(det)) / float64(e.p.Count)
	if e.log != nil {
		e.log.Debug("simulation estimate", "fault", f.String(), "detectability", est, "vectors", e.p.Count)
	}
	return est
}

// Bridging estimates the bridging fault's detectability. Like the exact
// engine, it panics on feedback bridges (the wired-logic model does not
// apply); the campaign layer screens these before degrading.
func (e *Estimator) Bridging(b faults.Bridging) float64 {
	if e.reach.IsFeedback(b.U, b.V) {
		panic(fmt.Sprintf("simulate: %v is a feedback bridge", b))
	}
	det := detectBridging(e.c, b, e.p, e.good, e.reach.Cone(b.U), e.reach.Cone(b.V))
	est := float64(CountBits(det)) / float64(e.p.Count)
	if e.log != nil {
		e.log.Debug("simulation estimate", "fault", b.String(), "detectability", est, "vectors", e.p.Count)
	}
	return est
}
