package analysis

import (
	"math"
	"testing"

	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
)

func studyFor(t testing.TB, name string) (StuckAtStudy, *diffprop.Engine) {
	t.Helper()
	e, err := diffprop.New(circuits.MustGet(name), nil)
	if err != nil {
		t.Fatal(err)
	}
	return RunStuckAt(e, faults.CheckpointStuckAts(e.Circuit)), e
}

func TestRunStuckAtC17(t *testing.T) {
	s, _ := studyFor(t, "c17")
	if s.Circuit != "c17" || s.NumPIs != 5 || s.NumPOs != 2 || s.NetlistSize != 6 {
		t.Fatalf("study header wrong: %+v", s)
	}
	if len(s.Records) != 18 {
		t.Fatalf("c17 collapsed checkpoint study has %d records, want 18", len(s.Records))
	}
	for _, r := range s.Records {
		if !r.Detectable() {
			t.Fatalf("c17 is irredundant; %v reported undetectable", r.Fault.Describe(nil))
		}
		if r.Detectability > r.UpperBound+1e-12 {
			t.Fatal("syndrome bound violated")
		}
		if !r.AdherenceOK || r.Adherence <= 0 || r.Adherence > 1 {
			t.Fatalf("adherence %v invalid", r.Adherence)
		}
		if r.ObservedPOs < 1 || r.ObservedPOs > r.POsFed {
			t.Fatalf("observed %d fed %d", r.ObservedPOs, r.POsFed)
		}
		if r.MaxLevelsToPO < 0 || r.LevelFromPI < 0 {
			t.Fatal("distances must be non-negative")
		}
	}
	if s.CoverageRate() != 1 {
		t.Fatal("coverage must be 1 on c17")
	}
	if m := s.MeanDetectable(); m <= 0 || m > 1 {
		t.Fatalf("mean detectability %v", m)
	}
}

func TestBranchSiteDistances(t *testing.T) {
	s, e := studyFor(t, "c17")
	w := e.Circuit
	toPO := w.MaxLevelsToPO()
	for _, r := range s.Records {
		if r.Fault.IsBranch() {
			want := toPO[r.Fault.Gate] + 1
			if r.MaxLevelsToPO != want {
				t.Fatalf("branch %v distance %d, want %d", r.Fault.Describe(w), r.MaxLevelsToPO, want)
			}
		} else if r.MaxLevelsToPO != toPO[r.Fault.Net] {
			t.Fatalf("net fault distance mismatch for %v", r.Fault.Describe(w))
		}
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.0, 0.1, 0.5, 0.99, 1.0}, 10)
	if len(h) != 10 {
		t.Fatal("bin count wrong")
	}
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("histogram mass %v, want 1", sum)
	}
	if h[0] != 0.2 { // 0.0 lands in bin 0
		t.Fatalf("bin 0 = %v", h[0])
	}
	if h[9] != 0.4 { // 0.99 and 1.0 in the last bin
		t.Fatalf("bin 9 = %v", h[9])
	}
	if Histogram(nil, 4)[0] != 0 {
		t.Fatal("empty histogram must be zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bins <= 0 must panic")
		}
	}()
	Histogram([]float64{1}, 0)
}

func TestCurveByMaxLevelsToPO(t *testing.T) {
	s, _ := studyFor(t, "alu181")
	curve := s.CurveByMaxLevelsToPO()
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	total := 0
	last := -1
	for _, p := range curve {
		if p.Distance <= last {
			t.Fatal("curve not sorted by distance")
		}
		last = p.Distance
		if p.Mean <= 0 || p.Mean > 1 || p.Count <= 0 {
			t.Fatalf("bad point %+v", p)
		}
		total += p.Count
	}
	det := 0
	for _, r := range s.Records {
		if r.Detectable() {
			det++
		}
	}
	if total != det {
		t.Fatalf("curve covers %d faults, want %d detectable", total, det)
	}
}

func TestObservedEqualsFedRate(t *testing.T) {
	// The paper: "These numbers are almost always the same." The tiny c17
	// (12 faults on 2 POs) is granted a looser floor; realistic circuits
	// must sit high.
	for _, tc := range []struct {
		name  string
		floor float64
	}{{"c17", 0.6}, {"c95s", 0.7}, {"alu181", 0.7}} {
		s, _ := studyFor(t, tc.name)
		rate := s.ObservedEqualsFedRate()
		if rate < tc.floor || rate > 1 {
			t.Fatalf("%s observed==fed rate %v, expected >= %v", tc.name, rate, tc.floor)
		}
	}
}

func TestBridgingStudy(t *testing.T) {
	e, err := diffprop.New(circuits.MustGet("c95s"), nil)
	if err != nil {
		t.Fatal(err)
	}
	w := e.Circuit
	for _, kind := range []faults.BridgeKind{faults.WiredAND, faults.WiredOR} {
		set, pop, sampled := BridgingSet(w, kind, 200, 0.3, 7)
		if pop < len(set) {
			t.Fatal("population smaller than set")
		}
		if len(set) > 200 {
			t.Fatal("sample larger than requested")
		}
		if !sampled && pop != len(set) {
			t.Fatal("unsampled set must be the population")
		}
		s := RunBridging(e, set, kind, pop, sampled)
		if s.Kind != kind || s.Population != pop || s.Sampled != sampled {
			t.Fatal("study header wrong")
		}
		for _, r := range s.Records {
			if r.Detectability > r.UpperBound+1e-12 {
				t.Fatalf("%v: excitation bound violated", r.Fault.Describe(w))
			}
			if r.ObservedPOs > r.POsFed {
				t.Fatalf("%v: observed %d > fed %d", r.Fault.Describe(w), r.ObservedPOs, r.POsFed)
			}
			if r.ActsStuckAt && r.UpperBound == 0 && r.Detectable() {
				t.Fatal("constant-site fault cannot be detectable with zero bound")
			}
		}
		if p := s.StuckAtProportion(); p < 0 || p > 0.5 {
			t.Fatalf("stuck-at proportion %v suspicious (paper: generally low)", p)
		}
		if s.CoverageRate() <= 0 {
			t.Fatal("some bridging faults must be detectable")
		}
	}
}

func TestBridgingSetSamplingKicksIn(t *testing.T) {
	e, err := diffprop.New(circuits.MustGet("c432s"), nil)
	if err != nil {
		t.Fatal(err)
	}
	set, pop, sampled := BridgingSet(e.Circuit, faults.WiredAND, 100, 0.3, 3)
	if !sampled || len(set) != 100 || pop <= 100 {
		t.Fatalf("expected sampling: set=%d pop=%d sampled=%v", len(set), pop, sampled)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if c := Correlation(xs, []float64{2, 4, 6, 8}); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", c)
	}
	if c := Correlation(xs, []float64{8, 6, 4, 2}); math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", c)
	}
	if c := Correlation(xs, []float64{5, 5, 5, 5}); c != 0 {
		t.Fatalf("constant series correlation = %v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series must panic")
		}
	}()
	Correlation(xs, []float64{1})
}

func TestDetectabilityDistanceCorrelations(t *testing.T) {
	s, _ := studyFor(t, "alu181")
	po, pi := s.DetectabilityVsDistanceCorrelations()
	if math.IsNaN(po) || math.IsNaN(pi) {
		t.Fatal("NaN correlation")
	}
	if po < -1 || po > 1 || pi < -1 || pi > 1 {
		t.Fatal("correlation out of range")
	}
}

func TestAdherencesFilterUnexcitable(t *testing.T) {
	s, _ := studyFor(t, "alu181")
	as := s.Adherences()
	for _, a := range as {
		if a < 0 || a > 1 {
			t.Fatalf("adherence %v out of range", a)
		}
	}
	if len(as) == 0 {
		t.Fatal("alu181 must have excitable faults")
	}
}

func TestSelectiveTraceStat(t *testing.T) {
	s, e := studyFor(t, "c95s")
	mean := s.MeanGatesEvaluated()
	if mean <= 0 {
		t.Fatal("no gates evaluated?")
	}
	// Selective trace must be doing real work: on average far fewer gates
	// than the whole circuit are touched per fault.
	if mean >= float64(e.Circuit.NumGates()) {
		t.Fatalf("selective trace ineffective: %v of %d gates", mean, e.Circuit.NumGates())
	}
	var empty StuckAtStudy
	if empty.MeanGatesEvaluated() != 0 {
		t.Fatal("empty study must report 0")
	}
}

func TestSpearman(t *testing.T) {
	// Monotone transform preserves rank correlation exactly.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25}
	if rho := Spearman(xs, ys); math.Abs(rho-1) > 1e-12 {
		t.Fatalf("monotone series rho = %v, want 1", rho)
	}
	if rho := Spearman(xs, []float64{25, 16, 9, 4, 1}); math.Abs(rho+1) > 1e-12 {
		t.Fatalf("anti-monotone rho = %v, want -1", rho)
	}
	// Ties get average ranks; a constant series has zero variance.
	if rho := Spearman(xs, []float64{7, 7, 7, 7, 7}); rho != 0 {
		t.Fatalf("constant rho = %v", rho)
	}
	// Average-rank ties: [1,1,2] vs [1,2,2] still positively correlated.
	if rho := Spearman([]float64{1, 1, 2}, []float64{1, 2, 2}); rho <= 0 {
		t.Fatalf("tied series rho = %v, want > 0", rho)
	}
}

func TestPredictedRandomCoverage(t *testing.T) {
	if PredictedRandomCoverage(nil, 10) != 0 {
		t.Fatal("empty set")
	}
	ps := []float64{1, 0.5, 0}
	// After one pattern: (1 + 0.5 + 0) / 3.
	if got := PredictedRandomCoverage(ps, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("N=1 coverage %v, want 0.5", got)
	}
	// Asymptotically only the p=0 fault stays undetected.
	if got := PredictedRandomCoverage(ps, 1<<20); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("asymptotic coverage %v, want 2/3", got)
	}
	// Monotone in N.
	prev := 0.0
	for n := 1; n <= 64; n *= 2 {
		cur := PredictedRandomCoverage(ps, n)
		if cur < prev {
			t.Fatal("coverage must be nondecreasing in N")
		}
		prev = cur
	}
}

func TestMeanDetectableEmptyAndZero(t *testing.T) {
	var s StuckAtStudy
	if s.MeanDetectable() != 0 || s.CoverageRate() != 0 || s.ObservedEqualsFedRate() != 0 {
		t.Fatal("empty study aggregates must be zero")
	}
	var b BridgingStudy
	if b.MeanDetectable() != 0 || b.CoverageRate() != 0 || b.StuckAtProportion() != 0 {
		t.Fatal("empty bridging study aggregates must be zero")
	}
}
