package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testHeader(faults int) CheckpointHeader {
	return CheckpointHeader{
		Version:     CheckpointVersion,
		Kind:        "stuckat",
		Circuit:     "test",
		Faults:      faults,
		Fingerprint: "deadbeef",
	}
}

func TestLoadCheckpointRejectsOutOfRangeIndex(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name  string
		index int
	}{
		{"negative", -3},
		{"past-count", 4},
		{"far-past-count", 1 << 30},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".jsonl")
			hdr, _ := json.Marshal(testHeader(4))
			body := fmt.Sprintf("%s\n{\"i\":0,\"r\":{}}\n{\"i\":%d,\"r\":{}}\n", hdr, tc.index)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, _, err := LoadCheckpoint(path)
			var rie *RecordIndexError
			if !errors.As(err, &rie) {
				t.Fatalf("LoadCheckpoint = %v, want *RecordIndexError", err)
			}
			if rie.Index != tc.index || rie.Faults != 4 || rie.Path != path {
				t.Fatalf("RecordIndexError = %+v", rie)
			}
		})
	}

	// A torn final line is still a crash artifact, not corruption: the
	// bounds check must not fire on bytes the parser never admitted.
	path := filepath.Join(dir, "torn.jsonl")
	hdr, _ := json.Marshal(testHeader(4))
	body := string(hdr) + "\n{\"i\":0,\"r\":{}}\n{\"i\":99"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, records, _, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(records) != 1 {
		t.Fatalf("torn-tail load kept %d records, want 1", len(records))
	}
}

func TestWithShardHeaderGatesResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.jsonl")
	shardHdr := testHeader(8).WithShard(16, 24)
	if shardHdr.Shard != "16-24" {
		t.Fatalf("WithShard = %q", shardHdr.Shard)
	}
	cp, err := CreateCheckpoint(path, shardHdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Append(3, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Resuming with the matching shard header restores the record…
	cp, records, err := ResumeCheckpoint(path, shardHdr)
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()
	if len(records) != 1 || records[3] == nil {
		t.Fatalf("shard resume records = %v", records)
	}
	// …and a whole-campaign (or differently ranged) header is refused.
	if _, _, err := ResumeCheckpoint(path, testHeader(8)); err == nil {
		t.Fatal("whole-campaign resume accepted a shard checkpoint")
	}
	if _, _, err := ResumeCheckpoint(path, testHeader(8).WithShard(0, 8)); err == nil {
		t.Fatal("resume accepted a checkpoint from a different shard range")
	}
}

// TearTail must leave exactly the artifact a crash mid-append leaves: the
// valid prefix intact, an unterminated junk tail that LoadCheckpoint
// tolerates and ResumeCheckpoint truncates before appending.
func TestTearTailLeavesResumableTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.jsonl")
	hdr := testHeader(4)
	cp, err := CreateCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Append(1, map[string]int{"x": 7}); err != nil {
		t.Fatal(err)
	}
	cp.TearTail(23)
	cp.f.Close() // simulate the SIGKILL: no Close() flush path runs
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] == '\n' {
		t.Fatal("TearTail terminated its junk with a newline; the tail must look torn")
	}

	_, records, validEnd, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("load after tear: %v", err)
	}
	if len(records) != 1 || records[1] == nil {
		t.Fatalf("records after tear = %v, want index 1 only", records)
	}
	if validEnd != int64(len(data)-23) {
		t.Fatalf("validEnd = %d, want %d (tear excluded)", validEnd, len(data)-23)
	}

	cp2, restored, err := ResumeCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 {
		t.Fatalf("resume restored %d records, want 1", len(restored))
	}
	if err := cp2.Append(2, map[string]int{"x": 9}); err != nil {
		t.Fatal(err)
	}
	if err := cp2.Close(); err != nil {
		t.Fatal(err)
	}
	_, records, _, err = LoadCheckpoint(path)
	if err != nil || len(records) != 2 {
		t.Fatalf("after resume+append: records=%v err=%v", records, err)
	}

	// Nil-safety and closed-checkpointer no-op.
	var nilCP *Checkpointer
	nilCP.TearTail(10)
	cp2.TearTail(10)
}

func TestPartitionFaults(t *testing.T) {
	for _, tc := range []struct {
		total, shards int
		want          [][2]int
	}{
		{0, 4, nil},
		{10, 1, [][2]int{{0, 10}}},
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{3, 8, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{8, 4, [][2]int{{0, 2}, {2, 4}, {4, 6}, {6, 8}}},
		{5, 0, [][2]int{{0, 5}}},
	} {
		got := PartitionFaults(tc.total, tc.shards)
		if len(got) != len(tc.want) {
			t.Fatalf("PartitionFaults(%d,%d) = %v, want %v", tc.total, tc.shards, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("PartitionFaults(%d,%d) = %v, want %v", tc.total, tc.shards, got, tc.want)
			}
		}
	}
}

func TestMergeExtractMissingRoundTrip(t *testing.T) {
	raw := func(s string) json.RawMessage { return json.RawMessage(s) }
	// Two shards over 6 faults: [0,4) complete, [4,6) missing local 1.
	shardA := map[int]json.RawMessage{0: raw(`{"a":0}`), 1: raw(`{"a":1}`), 2: raw(`{"a":2}`), 3: raw(`{"a":3}`)}
	shardB := map[int]json.RawMessage{0: raw(`{"b":4}`)}
	merged, err := MergeShardRecords(nil, shardA, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if merged, err = MergeShardRecords(merged, shardB, 4, 6); err != nil {
		t.Fatal(err)
	}
	if string(merged[4]) != `{"b":4}` || string(merged[2]) != `{"a":2}` {
		t.Fatalf("merged = %v", merged)
	}
	missing := MissingRecords(merged, 6)
	if len(missing) != 1 || missing[0] != 5 {
		t.Fatalf("missing = %v, want [5]", missing)
	}
	// A record outside its declared range is the shard file lying.
	if _, err := MergeShardRecords(nil, map[int]json.RawMessage{2: raw(`{}`)}, 4, 6); err == nil {
		t.Fatal("out-of-range shard record accepted")
	}

	// Bisecting shard A at local 2 seeds each child with its slice,
	// rebased to child-local indices.
	left := ExtractShardRecords(shardA, 0, 2)
	right := ExtractShardRecords(shardA, 2, 4)
	if len(left) != 2 || string(left[1]) != `{"a":1}` {
		t.Fatalf("left child = %v", left)
	}
	if len(right) != 2 || string(right[0]) != `{"a":2}` || string(right[1]) != `{"a":3}` {
		t.Fatalf("right child = %v", right)
	}
}

// A merged checkpoint written from rebased shard records must reload to
// byte-identical records under a header LoadCheckpoint accepts.
func TestWriteMergedCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "merged.jsonl")
	records := map[int]json.RawMessage{
		0: json.RawMessage(`{"Detectability":0.5}`),
		1: json.RawMessage(`{"Err":"quarantined"}`),
		2: json.RawMessage(`{"Approximate":true}`),
	}
	if err := WriteMergedCheckpoint(path, testHeader(3), records); err != nil {
		t.Fatal(err)
	}
	hdr, got, _, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr != testHeader(3) {
		t.Fatalf("header = %+v", hdr)
	}
	if len(got) != len(records) {
		t.Fatalf("reloaded %d records, want %d", len(got), len(records))
	}
	for i, want := range records {
		if string(got[i]) != string(want) {
			t.Fatalf("record %d = %s, want %s", i, got[i], want)
		}
	}
}
