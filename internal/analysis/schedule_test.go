package analysis

import (
	"reflect"
	"testing"

	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
)

func TestParseOrderPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want OrderPolicy
	}{
		{"", OrderIndex}, {"index", OrderIndex}, {"cone", OrderCone}, {"level", OrderLevel},
	} {
		got, err := ParseOrderPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseOrderPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("round trip: %v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseOrderPolicy("random"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestScheduleClusterInvariants checks the structural contract the
// work-stealing dispatcher relies on: perm is a permutation of the fault
// indices, clusterStart marks maximal runs of equal cluster keys, and trim
// always yields a non-empty claim that either lands on a cluster boundary
// or keeps the guided block intact.
func TestScheduleClusterInvariants(t *testing.T) {
	c := circuits.MustGet("c95s").Decompose2()
	fs := faults.CheckpointStuckAts(c)
	reach := faults.NewReachability(c)
	for _, policy := range []OrderPolicy{OrderCone, OrderLevel} {
		sched := newSchedule(policy, len(fs), func(i int) int { return stuckAtSite(fs[i]) }, c, reach)
		if sched == nil {
			t.Fatalf("%v: nil schedule for %d faults", policy, len(fs))
		}
		seen := make([]bool, len(fs))
		for j := range fs {
			i := sched.index(j)
			if i < 0 || i >= len(fs) || seen[i] {
				t.Fatalf("%v: perm[%d] = %d is out of range or repeated", policy, j, i)
			}
			seen[i] = true
		}
		for j := range fs {
			cs := sched.clusterStart[j]
			if cs > j || sched.clusterStart[cs] != cs {
				t.Fatalf("%v: clusterStart[%d] = %d is not a start position", policy, j, cs)
			}
			if j > 0 && sched.clusterStart[j-1] != cs && sched.clusterStart[j] != j {
				t.Fatalf("%v: cluster at %d neither continues nor starts", policy, j)
			}
		}
		for lo := 0; lo < len(fs); lo += 7 {
			for _, span := range []int{1, 3, 10, len(fs)} {
				hi := lo + span
				if hi > len(fs) {
					hi = len(fs)
				}
				got := sched.trim(lo, hi)
				if got <= lo || got > hi {
					t.Fatalf("%v: trim(%d, %d) = %d leaves an empty or oversized claim", policy, lo, hi, got)
				}
				if got != hi && sched.clusterStart[got] != got {
					t.Fatalf("%v: trim(%d, %d) = %d is not a cluster boundary", policy, lo, hi, got)
				}
			}
		}
	}
	if s := newSchedule(OrderIndex, len(fs), func(i int) int { return stuckAtSite(fs[i]) }, c, reach); s != nil {
		t.Fatal("index policy must use the identity schedule")
	}
}

// TestStuckAtOrderPoliciesBitIdentical is the scheduling layer's core
// guarantee: every dispatch order, worker count and propagation path
// produces records bit-identical to the serial index-order run.
func TestStuckAtOrderPoliciesBitIdentical(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	serial := RunStuckAt(e, fs)
	for _, order := range []OrderPolicy{OrderIndex, OrderCone, OrderLevel} {
		for _, workers := range []int{1, 4} {
			for _, fullScan := range []bool{false, true} {
				cfg := CampaignConfig{Workers: workers, Order: order, FullScan: fullScan}
				par, err := RunStuckAtCampaign(c, nil, fs, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if par.Stats.Order != order {
					t.Fatalf("order=%v workers=%d: stats report order %v", order, workers, par.Stats.Order)
				}
				if fullScan && par.Stats.GatesSkipped != 0 {
					t.Fatalf("order=%v workers=%d: full scan skipped %d gates", order, workers, par.Stats.GatesSkipped)
				}
				if !fullScan && par.Stats.GatesSkipped == 0 {
					t.Fatalf("order=%v workers=%d: worklist skipped no gates", order, workers)
				}
				if !reflect.DeepEqual(stripStatsSA(par), stripStatsSA(serial)) {
					t.Fatalf("order=%v workers=%d fullscan=%v: study differs from serial index order",
						order, workers, fullScan)
				}
			}
		}
	}
}

// TestBridgingOrderPoliciesBitIdentical extends the guarantee to the
// bridging campaign, whose clusters anchor on the bridge's lower wire.
func TestBridgingOrderPoliciesBitIdentical(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, pop, sampled := BridgingSet(e.Circuit, faults.WiredOR, 150, 0.3, 7)
	serial := RunBridging(e, set, faults.WiredOR, pop, sampled)
	for _, order := range []OrderPolicy{OrderCone, OrderLevel} {
		for _, workers := range []int{1, 4} {
			par, err := RunBridgingCampaign(c, nil, set, faults.WiredOR, pop, sampled,
				CampaignConfig{Workers: workers, Order: order})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stripStatsBF(par), stripStatsBF(serial)) {
				t.Fatalf("order=%v workers=%d: bridging study differs from serial", order, workers)
			}
		}
	}
}

// TestOrderPoliciesUnderBudgetLadder pins bit-identity when the recovery
// ladder is live: a one-op budget blows almost every fault on first
// attempt and again on the 2x retry, degrading it to the deterministic
// simulation estimate. The resulting mix of exact and approximate records
// must not depend on dispatch order or worker count.
func TestOrderPoliciesUnderBudgetLadder(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	var want StuckAtStudy
	for i, order := range []OrderPolicy{OrderIndex, OrderCone, OrderLevel} {
		for _, workers := range []int{1, 3} {
			cfg := CampaignConfig{
				Workers:  workers,
				Order:    order,
				FaultOps: 1,
				Recovery: diffprop.Recovery{RetryMultiplier: 2},
			}
			study, err := RunStuckAtCampaign(c, nil, fs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if study.Stats.Degraded == 0 {
				t.Fatalf("order=%v workers=%d: no fault degraded under a one-op budget", order, workers)
			}
			if i == 0 && workers == 1 {
				want = study
				continue
			}
			if !reflect.DeepEqual(stripStatsSA(study), stripStatsSA(want)) {
				t.Fatalf("order=%v workers=%d: degraded study differs from index-order baseline", order, workers)
			}
		}
	}
}
