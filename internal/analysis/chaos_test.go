package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
)

// chaosFixture builds the shared stuck-at campaign inputs for the chaos
// tests: the c95s circuit and its collapsed checkpoint fault set.
func chaosFixture(t *testing.T) (*netlist.Circuit, []faults.StuckAt) {
	t.Helper()
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	if len(fs) < 8 {
		t.Fatalf("fixture too small: %d faults", len(fs))
	}
	return c, fs
}

// TestChaosRescuedRecordsBitIdentical injects a storm of forced budget
// aborts into half the faults of a campaign whose recovery ladder has a
// retry rung, and demands the storm run's records be bit-identical to an
// uninjected run: every injected abort is one-shot (first attempt only),
// so the relaxed retry completes exactly and the rescue leaves no trace in
// the results.
func TestChaosRescuedRecordsBitIdentical(t *testing.T) {
	c, fs := chaosFixture(t)
	base := CampaignConfig{
		Workers:  3,
		FaultOps: 50_000_000,
		Recovery: diffprop.Recovery{RetryMultiplier: 8},
	}
	clean, err := RunStuckAtCampaign(c, nil, fs, base)
	if err != nil {
		t.Fatal(err)
	}
	storm := base
	storm.Chaos = &chaos.Config{Seed: 7, Rules: []chaos.Rule{
		{Point: chaos.PointBudget, Prob: 0.5},
		{Point: chaos.PointNodeLimit, Prob: 0.2},
	}}
	stormed, err := RunStuckAtCampaign(c, nil, fs, storm)
	if err != nil {
		t.Fatal(err)
	}
	if stormed.Stats.ChaosInjected == 0 {
		t.Fatal("storm run injected nothing")
	}
	if stormed.Stats.Rescued == 0 {
		t.Fatal("storm run rescued nothing; injected aborts never reached the retry rung")
	}
	if stormed.Stats.Degraded != 0 {
		t.Fatalf("storm run degraded %d faults; every injected abort should be rescued", stormed.Stats.Degraded)
	}
	if !reflect.DeepEqual(stormed.Records, clean.Records) {
		t.Fatal("rescued records are not bit-identical to the clean run")
	}
}

// TestChaosDegradationDeterministic is the estimator-degradation
// determinism check: with AtOp=1 aborts (the only schedule-independent
// choice) and no retry rung, the set of degraded faults and their estimate
// records must be identical across worker counts and across reruns with
// the same chaos seed.
func TestChaosDegradationDeterministic(t *testing.T) {
	c, fs := chaosFixture(t)
	run := func(workers int) StuckAtStudy {
		t.Helper()
		study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
			Workers: workers,
			Chaos: &chaos.Config{Seed: 42, Rules: []chaos.Rule{
				{Point: chaos.PointBudget, Prob: 0.3, AtOp: 1},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return study
	}
	serial := run(1)
	if serial.Stats.Degraded == 0 {
		t.Fatal("no fault degraded; the storm never fired")
	}
	if serial.Stats.Degraded == len(fs) {
		t.Fatal("every fault degraded; storm too dense to test determinism")
	}
	parallel := run(4)
	rerun := run(4)
	if !reflect.DeepEqual(parallel.Records, serial.Records) {
		t.Fatal("records differ between 1 and 4 workers under the same chaos seed")
	}
	if !reflect.DeepEqual(rerun.Records, parallel.Records) {
		t.Fatal("records differ between reruns with the same chaos seed")
	}
	if !reflect.DeepEqual(parallel.DegradedFaults(), serial.DegradedFaults()) {
		t.Fatal("DegradedFaults differ between 1 and 4 workers")
	}
	if !reflect.DeepEqual(rerun.DegradedFaults(), parallel.DegradedFaults()) {
		t.Fatal("DegradedFaults differ between reruns")
	}
}

// TestChaosPanicIsolation injects worker panics at scripted fault indices
// and checks the blast radius: exactly those faults carry error records
// with a stable message, every other record matches a clean run, and the
// campaign itself completes without error. Run with -race this also
// exercises the shared-table view under mid-analysis panics.
func TestChaosPanicIsolation(t *testing.T) {
	c, fs := chaosFixture(t)
	clean, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	victims := []int{2, 5, len(fs) - 1}
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers: 3,
		Chaos: &chaos.Config{Seed: 1, Rules: []chaos.Rule{
			{Point: chaos.PointPanic, Indices: victims},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if study.Stats.Errored != len(victims) {
		t.Fatalf("Errored = %d, want %d", study.Stats.Errored, len(victims))
	}
	isVictim := map[int]bool{}
	for _, i := range victims {
		isVictim[i] = true
		want := fmt.Sprintf("injected worker panic: chaos: injected failure (fault %d)", i)
		if got := study.Records[i].Err; got != want {
			t.Fatalf("record %d Err = %q, want %q", i, got, want)
		}
	}
	for i, r := range study.Records {
		if isVictim[i] {
			continue
		}
		if !reflect.DeepEqual(r, clean.Records[i]) {
			t.Fatalf("record %d differs from the clean run; panic at another fault leaked into it", i)
		}
	}
}

// TestChaosCheckpointENOSPC injects a checkpoint write failure and checks
// the clean-abort contract: the campaign returns the typed
// *CheckpointError (wrapping ENOSPC and the chaos sentinel), the
// checkpointer is poisoned against further appends, and the file keeps a
// valid prefix whose records match the clean run exactly.
func TestChaosCheckpointENOSPC(t *testing.T) {
	c, fs := chaosFixture(t)
	clean, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	work := c.Decompose2()
	hdr := StuckAtCheckpointHeader(work, fs)
	path := filepath.Join(t.TempDir(), "enospc.jsonl")
	cp, err := CreateCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	const failAt = 3 // fail the 4th append (0-based evaluation sequence)
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers:    1,
		Checkpoint: cp,
		Chaos: &chaos.Config{Seed: 9, Rules: []chaos.Rule{
			{Point: chaos.PointCheckpointWrite, Indices: []int{failAt}},
		}},
	})
	if err == nil {
		t.Fatal("campaign did not surface the injected checkpoint failure")
	}
	var cerr *CheckpointError
	if !errors.As(err, &cerr) {
		t.Fatalf("campaign error %v is not a *CheckpointError", err)
	}
	if cerr.Op != "append" {
		t.Fatalf("CheckpointError.Op = %q, want \"append\"", cerr.Op)
	}
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("error %v does not wrap ENOSPC and the chaos sentinel", err)
	}
	if cp.Err() == nil {
		t.Fatal("checkpointer not poisoned after the injected failure")
	}
	if aerr := cp.Append(0, clean.Records[0]); !errors.Is(aerr, syscall.ENOSPC) {
		t.Fatalf("poisoned Append returned %v, want the original failure", aerr)
	}
	if err := cp.Close(); err != nil {
		t.Fatalf("Close of poisoned checkpointer: %v", err)
	}
	// The campaign aborted but still returned a partial index-aligned study.
	skipped := 0
	for _, r := range study.Records {
		if r.Skipped {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("aborted campaign has no skipped records; the abort was not prompt")
	}
	// The file keeps the valid prefix: exactly the appends before the
	// failure, each bit-identical to the clean run's record.
	_, persisted, _, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(persisted) != failAt {
		t.Fatalf("checkpoint holds %d records, want %d (appends before the failure)", len(persisted), failAt)
	}
	restored := make([]StuckAtRecord, len(fs))
	skip, err := resumeDecode(len(fs), persisted, func(i int, raw json.RawMessage) error {
		return json.Unmarshal(raw, &restored[i])
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range skip {
		if ok && !reflect.DeepEqual(restored[i], clean.Records[i]) {
			t.Fatalf("persisted record %d differs from the clean run", i)
		}
	}
}

// TestChaosTornTailResumeBitIdentical injects a torn checkpoint write — a
// partial line reaches the disk before the failure, exactly as a crash
// mid-append would leave it — then resumes from the file and demands the
// completed study be bit-identical to an uninterrupted run, with every
// fault persisted exactly once.
func TestChaosTornTailResumeBitIdentical(t *testing.T) {
	c, fs := chaosFixture(t)
	clean, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	work := c.Decompose2()
	hdr := StuckAtCheckpointHeader(work, fs)
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	cp, err := CreateCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	const failAt = 4
	_, err = RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers:    1,
		Checkpoint: cp,
		Chaos: &chaos.Config{Seed: 11, Rules: []chaos.Rule{
			{Point: chaos.PointCheckpointWrite, Indices: []int{failAt}, Bytes: 10},
		}},
	})
	var cerr *CheckpointError
	if !errors.As(err, &cerr) {
		t.Fatalf("campaign error %v is not a *CheckpointError", err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	// Resume truncates the torn tail and restores the valid prefix.
	cp2, resume, err := ResumeCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(resume) != failAt {
		t.Fatalf("resume restored %d records, want %d", len(resume), failAt)
	}
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers:    2,
		Checkpoint: cp2,
		Resume:     resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp2.Close(); err != nil {
		t.Fatal(err)
	}
	if study.Stats.Resumed != failAt {
		t.Fatalf("Resumed = %d, want %d", study.Stats.Resumed, failAt)
	}
	if !reflect.DeepEqual(study.Records, clean.Records) {
		t.Fatal("resumed study is not bit-identical to the uninterrupted run")
	}
	_, persisted, _, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(persisted) != len(fs) {
		t.Fatalf("final checkpoint holds %d records, want %d (no lost or duplicated faults)", len(persisted), len(fs))
	}
}

// TestChaosMemSampleLies makes the governor's heap sampler lie — reporting
// a heap far over the ceiling on every tick — and checks that workers park
// (the campaign degrades to serial throughput, then drains and releases
// them) while records stay bit-identical to an ungoverned run: parking
// only ever happens between faults.
func TestChaosMemSampleLies(t *testing.T) {
	c, fs := chaosFixture(t)
	clean, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers:  2,
		MemLimit: 1 << 30,
		MemPoll:  time.Millisecond,
		Chaos: &chaos.Config{Seed: 3, Rules: []chaos.Rule{
			{Point: chaos.PointMemSample, MemBytes: 1 << 40},
			{Point: chaos.PointLatency, Prob: 1, Latency: 2 * time.Millisecond},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if study.Stats.MemParkEvents == 0 {
		t.Fatal("governor never parked a worker despite the lying sampler")
	}
	if !reflect.DeepEqual(study.Records, clean.Records) {
		t.Fatal("records differ from the clean run; governor parking is not between-faults only")
	}
}
