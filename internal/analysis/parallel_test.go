package analysis

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count ignored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("auto worker count must be positive")
	}
}

// stripStats zeroes the scheduling-dependent fields so studies can be
// compared with reflect.DeepEqual: Stats describes how the work ran, not
// what was computed.
func stripStatsSA(s StuckAtStudy) StuckAtStudy {
	s.Stats = CampaignStats{}
	return s
}

func stripStatsBF(s BridgingStudy) BridgingStudy {
	s.Stats = CampaignStats{}
	return s
}

func TestParallelStuckAtMatchesSerial(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	serial := RunStuckAt(e, fs)
	for _, workers := range []int{1, 3, 8} {
		par, err := RunStuckAtParallel(c, nil, fs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Stats.Faults != len(fs) {
			t.Fatalf("workers=%d: stats report %d faults, want %d", workers, par.Stats.Faults, len(fs))
		}
		if par.Stats.GateEvaluations <= 0 || par.Stats.PeakNodes <= 0 {
			t.Fatalf("workers=%d: empty stats %+v", workers, par.Stats)
		}
		if !reflect.DeepEqual(stripStatsSA(par), stripStatsSA(serial)) {
			t.Fatalf("workers=%d: parallel study differs from serial", workers)
		}
	}
}

func TestParallelBridgingMatchesSerial(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, pop, sampled := BridgingSet(e.Circuit, faults.WiredOR, 150, 0.3, 7)
	serial := RunBridging(e, set, faults.WiredOR, pop, sampled)
	for _, workers := range []int{1, 4} {
		par, err := RunBridgingParallel(c, nil, set, faults.WiredOR, pop, sampled, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripStatsBF(par), stripStatsBF(serial)) {
			t.Fatalf("workers=%d: parallel study differs from serial", workers)
		}
	}
}

// TestParallelRace4Workers drives the work-stealing scheduler with more
// workers than CPUs would commonly grant, for both fault models, so `go
// test -race ./internal/analysis/...` exercises the engine cloning, the
// shared topology caches, the shared reachability table, and the progress
// path under the race detector.
func TestParallelRace4Workers(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	var mu sync.Mutex
	calls := 0
	last := 0
	cfg := CampaignConfig{Workers: 4, Progress: func(done, total int) {
		mu.Lock()
		calls++
		if done > last {
			last = done
		}
		if total != len(fs) {
			t.Errorf("progress total = %d, want %d", total, len(fs))
		}
		mu.Unlock()
	}}
	sa, err := RunStuckAtCampaign(c, nil, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa.Records) != len(fs) {
		t.Fatalf("%d records, want %d", len(sa.Records), len(fs))
	}
	if calls != len(fs) || last != len(fs) {
		t.Fatalf("progress saw %d calls (max done %d), want %d", calls, last, len(fs))
	}
	if sa.Stats.Workers != 4 {
		t.Fatalf("stats workers = %d, want 4", sa.Stats.Workers)
	}
	set, pop, sampled := BridgingSet(e.Circuit, faults.WiredAND, 80, 0.3, 7)
	bf, err := RunBridgingCampaign(c, nil, set, faults.WiredAND, pop, sampled, CampaignConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Records) != len(set) {
		t.Fatalf("%d bridging records, want %d", len(bf.Records), len(set))
	}
}

// TestParallelRejectsBadCircuit covers the error path where the worker
// prototype's diffprop.New fails: the error must surface instead of
// panicking or returning a half-filled study.
func TestParallelRejectsBadCircuit(t *testing.T) {
	c := circuits.MustGet("c17")
	bad := &diffprop.Options{Order: []string{"nope"}}
	fs := faults.CheckpointStuckAts(c.Decompose2())
	if _, err := RunStuckAtParallel(c, bad, fs, 4); err == nil {
		t.Fatal("bad options must surface an error")
	}
	if _, err := RunBridgingParallel(c, bad, faults.AllNFBFs(c, faults.WiredAND), faults.WiredAND, 1, false, 4); err == nil {
		t.Fatal("bad options must surface an error (bridging)")
	}
}

// TestCampaignEmptyFaultSet pins the degenerate input: no faults, no
// workers to spawn, but a valid header and empty (non-nil) record slice.
func TestCampaignEmptyFaultSet(t *testing.T) {
	c := circuits.MustGet("c17")
	s, err := RunStuckAtParallel(c, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Records) != 0 || s.Circuit == "" {
		t.Fatalf("unexpected study for empty fault set: %+v", s)
	}
}
