package analysis

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count ignored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("auto worker count must be positive")
	}
}

func TestParallelStuckAtMatchesSerial(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	serial := RunStuckAt(e, fs)
	for _, workers := range []int{1, 3, 8} {
		par, err := RunStuckAtParallel(c, nil, fs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Records) != len(serial.Records) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(par.Records), len(serial.Records))
		}
		if par.Circuit != serial.Circuit || par.NetlistSize != serial.NetlistSize ||
			par.NumPIs != serial.NumPIs || par.NumPOs != serial.NumPOs {
			t.Fatalf("workers=%d: header mismatch", workers)
		}
		for i := range par.Records {
			a, b := par.Records[i], serial.Records[i]
			if a.Fault != b.Fault || a.Detectability != b.Detectability ||
				a.UpperBound != b.UpperBound || a.Adherence != b.Adherence ||
				a.ObservedPOs != b.ObservedPOs || a.POsFed != b.POsFed ||
				a.MaxLevelsToPO != b.MaxLevelsToPO {
				t.Fatalf("workers=%d record %d differs: %+v vs %+v", workers, i, a, b)
			}
		}
	}
}

func TestParallelBridgingMatchesSerial(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, pop, sampled := BridgingSet(e.Circuit, faults.WiredOR, 150, 0.3, 7)
	serial := RunBridging(e, set, faults.WiredOR, pop, sampled)
	par, err := RunBridgingParallel(c, nil, set, faults.WiredOR, pop, sampled, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Kind != serial.Kind || par.Population != serial.Population || par.Sampled != serial.Sampled {
		t.Fatal("header mismatch")
	}
	for i := range par.Records {
		if par.Records[i] != serial.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestParallelRejectsBadCircuit(t *testing.T) {
	c := circuits.MustGet("c17")
	bad := &diffprop.Options{Order: []string{"nope"}}
	fs := faults.CheckpointStuckAts(c.Decompose2())
	if _, err := RunStuckAtParallel(c, bad, fs, 4); err == nil {
		t.Fatal("bad options must surface an error")
	}
	if _, err := RunBridgingParallel(c, bad, faults.AllNFBFs(c, faults.WiredAND), faults.WiredAND, 1, false, 4); err == nil {
		t.Fatal("bad options must surface an error (bridging)")
	}
}
