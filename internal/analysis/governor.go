// The campaign memory governor.
//
// A fault campaign's heap is dominated by per-worker BDD node tables, and
// a burst of hard faults can push the sum past the process's memory limit
// faster than Go's GC can push back — the kernel then OOM-kills the whole
// campaign, losing everything since the last checkpoint. The governor
// samples the heap on a short tick and, when it nears the configured
// ceiling (GOMEMLIMIT by default), parks workers between faults: a parked
// worker garbage-collects its engine down to the live good functions and
// blocks until the heap recedes. Worker 0 is never parked, so the campaign
// always makes progress — degraded to serial throughput in the worst case
// instead of dying. Parking only ever happens between faults, so records
// stay bit-identical to an ungoverned run.
package analysis

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/diffprop"
)

// Governor tuning. Parking begins when the sampled heap exceeds
// govHiFrac x limit and ends once it falls back under govLoFrac x limit;
// the gap gives the runtime GC room to actually reclaim the freed node
// tables before workers resume.
const (
	govHiFrac      = 0.85
	govLoFrac      = 0.70
	defaultMemPoll = 150 * time.Millisecond
)

// effectiveMemLimit resolves the governor's heap ceiling: an explicit
// positive CampaignConfig.MemLimit wins; otherwise the process GOMEMLIMIT
// (via debug.SetMemoryLimit's read-without-set idiom) when one is set; a
// negative config — or no limit anywhere — disables the governor.
func effectiveMemLimit(cfgLimit int64) int64 {
	if cfgLimit != 0 {
		if cfgLimit < 0 {
			return 0
		}
		return cfgLimit
	}
	if lim := debug.SetMemoryLimit(-1); lim < math.MaxInt64 {
		return lim
	}
	return 0
}

// heapSample reads the runtime's current heap occupancy. HeapAlloc (live +
// not-yet-swept) is the piece of the GOMEMLIMIT accounting the campaign
// actually drives via BDD node tables.
func heapSample() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// governor parks and unparks campaign workers around a heap ceiling. A nil
// governor (no limit configured, or a single worker) accepts every call as
// a no-op, keeping the ungoverned hot path free of locks.
type governor struct {
	hi, lo int64
	poll   time.Duration
	sample func() int64
	instr  *campaignInstr

	mu         sync.Mutex
	cond       *sync.Cond
	pressured  bool // heap above hi and not yet back under lo
	released   bool // fault set drained or campaign stopping: nobody parks
	parked     int
	parkEvents int
	maxParked  int
	lastHeap   int64

	stopOnce sync.Once
	stopCh   chan struct{}
}

// newGovernor builds the governor for one campaign run, or nil when no
// memory limit applies or there is no second worker to park.
func newGovernor(cfg CampaignConfig, workers int, instr *campaignInstr) *governor {
	limit := effectiveMemLimit(cfg.MemLimit)
	if limit <= 0 || workers < 2 {
		return nil
	}
	g := &governor{
		hi:     int64(float64(limit) * govHiFrac),
		lo:     int64(float64(limit) * govLoFrac),
		poll:   cfg.MemPoll,
		sample: cfg.memSample,
		instr:  instr,
		stopCh: make(chan struct{}),
	}
	if g.poll <= 0 {
		g.poll = defaultMemPoll
	}
	if g.sample == nil {
		g.sample = heapSample
	}
	g.cond = sync.NewCond(&g.mu)
	go g.monitor()
	return g
}

// monitor is the sampling loop: one goroutine per campaign, alive until
// stop.
func (g *governor) monitor() {
	ticker := time.NewTicker(g.poll)
	defer ticker.Stop()
	for {
		select {
		case <-g.stopCh:
			return
		case <-ticker.C:
		}
		heap := g.sample()
		g.mu.Lock()
		g.lastHeap = heap
		switch {
		case !g.pressured && heap >= g.hi:
			g.pressured = true
		case g.pressured && heap <= g.lo:
			g.pressured = false
			g.cond.Broadcast()
		}
		g.mu.Unlock()
		g.instr.governorHeap(heap)
	}
}

// admit gates one worker between faults. Worker 0 passes straight through
// (the progress guarantee); any other worker parks while the governor is
// pressured, first collecting its engine down to the live good functions
// so the wait actually gives memory back. halted lets a parked worker bail
// out promptly on cancellation; release wakes everyone when the fault set
// drains.
func (g *governor) admit(w int, e *diffprop.Engine, halted func() bool) {
	if g == nil || w == 0 {
		return
	}
	g.mu.Lock()
	if !g.pressured || g.released {
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()

	// Shrink this worker's footprint before sleeping: the parked engine
	// holds only its good functions until it resumes.
	e.GCNow()

	g.mu.Lock()
	if g.pressured && !g.released {
		g.parked++
		g.parkEvents++
		if g.parked > g.maxParked {
			g.maxParked = g.parked
		}
		g.instr.governorParked(w, g.parked, g.lastHeap)
		for g.pressured && !g.released && !halted() {
			g.cond.Wait()
		}
		g.parked--
		g.instr.governorUnparked(w, g.parked)
	}
	g.mu.Unlock()
}

// release permanently opens the gate (fault set drained or campaign
// stopping) and wakes every parked worker.
func (g *governor) release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.released = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// stop ends the monitor goroutine and releases any parked workers. Safe to
// call more than once.
func (g *governor) stop() {
	if g == nil {
		return
	}
	g.stopOnce.Do(func() { close(g.stopCh) })
	g.release()
}

// counters reports the park statistics for CampaignStats.
func (g *governor) counters() (parkEvents, maxParked int) {
	if g == nil {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.parkEvents, g.maxParked
}

// ParseMemLimit parses a -memlimit flag value using the GOMEMLIMIT
// syntax: a decimal byte count with an optional B / KiB / MiB / GiB / TiB
// suffix (e.g. "512MiB"). The empty string and "off" mean no limit.
func ParseMemLimit(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "off") {
		return 0, nil
	}
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}, {"TiB", 1 << 40}, {"B", 1},
	} {
		if strings.HasSuffix(s, u.suffix) {
			s, mult = strings.TrimSuffix(s, u.suffix), u.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("analysis: bad memory limit %q (want e.g. 512MiB, 2GiB or a byte count)", s)
	}
	if mult > 1 && n > math.MaxInt64/mult {
		return 0, fmt.Errorf("analysis: memory limit %q overflows", s)
	}
	return n * mult, nil
}
