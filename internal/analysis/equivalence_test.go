package analysis

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

func eqEngine(t testing.TB, name string) *diffprop.Engine {
	t.Helper()
	e, err := diffprop.New(circuits.MustGet(name), &diffprop.Options{RebuildLimit: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExactEquivalenceKnownClasses(t *testing.T) {
	// On a single AND gate, the input SA0 faults and the output SA0 fault
	// are all equivalent; input SA1 faults are not equivalent to each
	// other.
	c := netlist.New("andgate")
	a := c.AddInput("a")
	b := c.AddInput("b")
	z := c.AddGate("z", netlist.And, a, b)
	c.MarkOutput(z)
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := e.Circuit
	fs := faults.AllStuckAts(w)
	classes, err := ExactEquivalenceClasses(e, fs)
	if err != nil {
		t.Fatal(err)
	}
	find := func(f faults.StuckAt) int {
		for ci, cl := range classes {
			for _, g := range cl.Faults {
				if g == f {
					return ci
				}
			}
		}
		t.Fatalf("fault %v not classified", f.Describe(w))
		return -1
	}
	aSA0 := faults.StuckAt{Net: w.NetByName("a"), Gate: -1, Pin: -1, Stuck: false}
	bSA0 := faults.StuckAt{Net: w.NetByName("b"), Gate: -1, Pin: -1, Stuck: false}
	zSA0 := faults.StuckAt{Net: w.NetByName("z"), Gate: -1, Pin: -1, Stuck: false}
	aSA1 := faults.StuckAt{Net: w.NetByName("a"), Gate: -1, Pin: -1, Stuck: true}
	bSA1 := faults.StuckAt{Net: w.NetByName("b"), Gate: -1, Pin: -1, Stuck: true}
	if find(aSA0) != find(bSA0) || find(aSA0) != find(zSA0) {
		t.Fatal("AND-gate SA0 faults must share a class")
	}
	if find(aSA1) == find(bSA1) {
		t.Fatal("a/SA1 and b/SA1 must be distinguishable")
	}
}

func TestExactEquivalenceMatchesSimulation(t *testing.T) {
	// Two faults share a class iff their full exhaustive responses agree
	// at every output and pattern.
	e := eqEngine(t, "c95s")
	w := e.Circuit
	fs := faults.CheckpointStuckAts(w)
	classes, err := ExactEquivalenceClasses(e, fs)
	if err != nil {
		t.Fatal(err)
	}
	// Build full per-output response fingerprints via simulation.
	p := simulate.Exhaustive(len(w.Inputs))
	fingerprint := func(f faults.StuckAt) string {
		var sig []byte
		for _, o := range w.Outputs {
			single := w.Clone()
			single.Outputs = []int{o}
			for _, word := range simulate.DetectStuckAt(single, f, p) {
				for k := 0; k < 8; k++ {
					sig = append(sig, byte(word>>uint(8*k)))
				}
			}
		}
		return string(sig)
	}
	fpClass := map[string]int{}
	for ci, cl := range classes {
		for _, f := range cl.Faults {
			fp := fingerprint(f)
			if prev, ok := fpClass[fp]; ok {
				if prev != ci {
					t.Fatalf("faults with equal responses in different classes")
				}
			} else {
				fpClass[fp] = ci
			}
		}
	}
	if len(fpClass) != len(classes) {
		t.Fatalf("class count %d but %d distinct responses", len(classes), len(fpClass))
	}
}

func TestExactEquivalenceFindsMoreThanStructural(t *testing.T) {
	// The structural checkpoint collapsing keeps one representative per
	// locally provable class; the exact partition over the *collapsed* set
	// may still merge classes reconvergence makes equal. At minimum it
	// never has more classes than faults, and the ratio is meaningful.
	e := eqEngine(t, "alu181")
	fs := faults.CheckpointStuckAts(e.Circuit)
	classes, err := ExactEquivalenceClasses(e, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) > len(fs) {
		t.Fatal("more classes than faults")
	}
	if r := CollapseRatio(classes); r <= 0 || r > 1 {
		t.Fatalf("collapse ratio %v", r)
	}
	if CollapseRatio(nil) != 0 {
		t.Fatal("empty partition ratio must be 0")
	}
}

func TestExactDominance(t *testing.T) {
	// Classic textbook case: on z = AND(a, b), every test for a/SA1
	// (a=0, b=1) is also a test for z/SA1 — z/SA1's test set (ab=01, 10,
	// 00 with propagation... exactly the vectors where z flips to 1) is a
	// superset.
	c := netlist.New("andgate")
	a := c.AddInput("a")
	b := c.AddInput("b")
	z := c.AddGate("z", netlist.And, a, b)
	c.MarkOutput(z)
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := e.Circuit
	aSA1 := faults.StuckAt{Net: w.NetByName("a"), Gate: -1, Pin: -1, Stuck: true}
	zSA1 := faults.StuckAt{Net: w.NetByName("z"), Gate: -1, Pin: -1, Stuck: true}
	edges, err := ExactDominance(e, []faults.StuckAt{aSA1, zSA1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ed := range edges {
		if ed.Dominated == aSA1 && ed.Dominator == zSA1 {
			found = true
		}
		// Verify the inclusion claim by simulation on every pattern.
		p := simulate.Exhaustive(2)
		dm := simulate.DetectStuckAt(w, ed.Dominated, p)
		dr := simulate.DetectStuckAt(w, ed.Dominator, p)
		for i := range dm {
			if dm[i]&^dr[i] != 0 {
				t.Fatalf("dominance edge %v -> %v violated", ed.Dominated, ed.Dominator)
			}
		}
	}
	if !found {
		t.Fatal("z/SA1 must dominate a/SA1 on an AND gate")
	}
}

func TestExactDominanceOnBenchmark(t *testing.T) {
	e := eqEngine(t, "c17")
	fs := faults.CheckpointStuckAts(e.Circuit)
	edges, err := ExactDominance(e, fs)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-verify every edge by exhaustive simulation.
	p := simulate.Exhaustive(5)
	for _, ed := range edges {
		dm := simulate.DetectStuckAt(e.Circuit, ed.Dominated, p)
		dr := simulate.DetectStuckAt(e.Circuit, ed.Dominator, p)
		for i := range dm {
			if dm[i]&^dr[i] != 0 {
				t.Fatalf("edge %v -> %v violated", ed.Dominated.Describe(e.Circuit), ed.Dominator.Describe(e.Circuit))
			}
		}
	}
	if len(edges) == 0 {
		t.Fatal("c17 should exhibit some dominance relations")
	}
}

func TestSyndromeTestableKnownCases(t *testing.T) {
	// On z = XOR(a, b): a/SA0 flips z on the two minterms where a=1 —
	// one flip is 0→1 (a=1,b=1 makes z go 0→1) and one is 1→0
	// (a=1,b=0): the flips cancel, so the fault is detectable but NOT
	// syndrome-testable. On z = AND(a, b): a/SA0 only ever flips z 1→0,
	// so it IS syndrome-testable.
	cx := netlist.New("x")
	ax := cx.AddInput("a")
	bx := cx.AddInput("b")
	zx := cx.AddGate("z", netlist.Xor, ax, bx)
	cx.MarkOutput(zx)
	ex, err := diffprop.New(cx, nil)
	if err != nil {
		t.Fatal(err)
	}
	fx := faults.StuckAt{Net: ex.Circuit.NetByName("a"), Gate: -1, Pin: -1, Stuck: false}
	resx := ex.StuckAt(fx)
	if !resx.Detectable() {
		t.Fatal("a/SA0 on XOR must be detectable")
	}
	if SyndromeTestable(ex, resx) {
		t.Fatal("XOR input fault flips cancel; must not be syndrome-testable")
	}

	ca := netlist.New("and")
	aa := ca.AddInput("a")
	ba := ca.AddInput("b")
	za := ca.AddGate("z", netlist.And, aa, ba)
	ca.MarkOutput(za)
	ea, err := diffprop.New(ca, nil)
	if err != nil {
		t.Fatal(err)
	}
	fa := faults.StuckAt{Net: ea.Circuit.NetByName("a"), Gate: -1, Pin: -1, Stuck: false}
	resa := ea.StuckAt(fa)
	if !SyndromeTestable(ea, resa) {
		t.Fatal("AND input SA0 must be syndrome-testable")
	}
}

func TestSyndromeTestableAgainstBruteForce(t *testing.T) {
	// Exhaustive reference: compare per-output ones-counts of good and
	// faulty circuits.
	e := eqEngine(t, "c95s")
	w := e.Circuit
	p := simulate.Exhaustive(len(w.Inputs))
	good := simulate.GoodValues(w, p)
	for _, f := range faults.CheckpointStuckAts(w)[:60] {
		res := e.StuckAt(f)
		want := false
		for _, o := range w.Outputs {
			single := w.Clone()
			single.Outputs = []int{o}
			mask := simulate.DetectStuckAt(single, f, p)
			up, down := 0, 0
			for wd := range mask {
				flips := mask[wd]
				up += simulate.CountBits([]uint64{flips &^ good[o][wd]})
				down += simulate.CountBits([]uint64{flips & good[o][wd]})
			}
			if up != down {
				want = true
			}
		}
		if got := SyndromeTestable(e, res); got != want {
			t.Fatalf("%v: syndrome-testable=%v, brute force=%v", f.Describe(w), got, want)
		}
	}
}
