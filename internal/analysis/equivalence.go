package analysis

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/diffprop"
	"repro/internal/faults"
)

// Exact functional fault equivalence (McCluskey & Clegg, the paper's ref
// [7], decided exactly): two faults are functionally equivalent iff the
// faulty circuits behave identically at every primary output, i.e. iff
// their per-output difference functions coincide. Because Difference
// Propagation returns those functions as canonical BDDs, equivalence is a
// reference comparison — no test generation, no simulation, no
// approximation. Structural checkpoint collapsing keeps one
// representative per *locally provable* class; this analysis finds the
// true classes, including non-obvious ones created by reconvergence.

// EquivalenceClass is one set of functionally equivalent faults.
type EquivalenceClass struct {
	Faults []faults.StuckAt
	// Detectable is false for the class of redundant faults (all faults
	// with empty test sets are mutually equivalent — they all behave like
	// the fault-free circuit).
	Detectable bool
}

// ExactEquivalenceClasses partitions the fault list into functional
// equivalence classes. The engine must have been created with a rebuild
// limit large enough that no compaction occurs during this call (BDD
// references are only comparable within one manager generation); the
// function enforces that by checking the engine's rebuild counter.
func ExactEquivalenceClasses(e *diffprop.Engine, fs []faults.StuckAt) ([]EquivalenceClass, error) {
	before := e.Rebuilds()
	type key string
	classes := map[key][]int{}
	order := []key{}
	for i, f := range fs {
		res := e.StuckAt(f)
		k := make([]byte, 0, len(res.PerPO)*4)
		for _, d := range res.PerPO {
			k = append(k, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
		}
		kk := key(k)
		if _, seen := classes[kk]; !seen {
			order = append(order, kk)
		}
		classes[kk] = append(classes[kk], i)
	}
	if e.Rebuilds() != before {
		return nil, fmt.Errorf("analysis: BDD manager compacted mid-run; raise Options.RebuildLimit for equivalence analysis")
	}
	out := make([]EquivalenceClass, 0, len(classes))
	for _, kk := range order {
		idxs := classes[kk]
		cl := EquivalenceClass{Faults: make([]faults.StuckAt, len(idxs))}
		for j, i := range idxs {
			cl.Faults[j] = fs[i]
		}
		// A class is undetectable iff its members' differences are all
		// empty; re-deriving one member suffices.
		res := e.StuckAt(cl.Faults[0])
		cl.Detectable = res.Detectable()
		out = append(out, cl)
	}
	return out, nil
}

// DominanceEdge records that detecting Dominated implies detecting
// Dominator is unnecessary... precisely: every test for Dominated also
// detects Dominator (test-set inclusion), so a test set targeting
// Dominated covers Dominator for free.
type DominanceEdge struct {
	Dominator, Dominated faults.StuckAt
}

// ExactDominance returns, over the fault list, all strict test-set
// inclusions: Complete(dominated) ⊆ Complete(dominator) with the sets
// unequal and the dominated fault detectable. (Classic fault dominance,
// decided exactly via BDD implication.) Quadratic in the fault count —
// intended for collapsed fault lists.
func ExactDominance(e *diffprop.Engine, fs []faults.StuckAt) ([]DominanceEdge, error) {
	before := e.Rebuilds()
	sets := make([]bdd.Ref, len(fs))
	for i, f := range fs {
		sets[i] = e.StuckAt(f).Complete
	}
	if e.Rebuilds() != before {
		return nil, fmt.Errorf("analysis: BDD manager compacted mid-run; raise Options.RebuildLimit for dominance analysis")
	}
	m := e.Manager()
	var out []DominanceEdge
	for i := range fs {
		if sets[i] == bdd.False {
			continue
		}
		for j := range fs {
			if i == j || sets[i] == sets[j] {
				continue
			}
			// sets[i] ⊆ sets[j] ?
			if m.Diff(sets[i], sets[j]) == bdd.False {
				out = append(out, DominanceEdge{Dominator: fs[j], Dominated: fs[i]})
			}
		}
	}
	return out, nil
}

// SyndromeTestable decides, exactly, whether a fault is detectable by
// syndrome testing (Savir, the paper's ref [11]): apply all 2^n inputs
// and compare each output's ones-count against the good syndrome. The
// fault is syndrome-testable iff it changes some output's syndrome, i.e.
// iff at some output the minterms it flips 0→1 and 1→0 are unequal in
// number:
//
//	S(F_o) − S(f_o) = |¬f_o ∧ Δ_o| − |f_o ∧ Δ_o| ≠ 0.
//
// A fault can be detectable in the ordinary sense yet syndrome-untestable
// when its flips cancel exactly — the blind spot of ones-counting that
// Savir's "syndrome-testable design" rules out by construction.
func SyndromeTestable(e *diffprop.Engine, res diffprop.Result) bool {
	m := e.Manager()
	for i, delta := range res.PerPO {
		if delta == bdd.False {
			continue
		}
		fo := e.Good(e.Circuit.Outputs[i])
		up := m.SatCount(m.And(m.Not(fo), delta))
		down := m.SatCount(m.And(fo, delta))
		if up.Cmp(down) != 0 {
			return true
		}
	}
	return false
}

// CollapseRatio summarizes an equivalence partition: classes / faults
// (lower means more collapsing was possible).
func CollapseRatio(classes []EquivalenceClass) float64 {
	n := 0
	for _, c := range classes {
		n += len(c.Faults)
	}
	if n == 0 {
		return 0
	}
	return float64(len(classes)) / float64(n)
}
