package analysis

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
)

// TestIsolateMatchesShared pins the A/B contract of the shared BDD
// backend: a campaign over cloned per-worker managers (Isolate) and one
// over shared views of the prototype's table must produce bit-identical
// studies for both fault models. Records depend only on canonical
// function semantics, never on node ids, so the backend choice is pure
// mechanism.
func TestIsolateMatchesShared(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	shared, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	isolated, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 4, Isolate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripStatsSA(shared), stripStatsSA(isolated)) {
		t.Fatal("isolated stuck-at study differs from shared-backend study")
	}

	bs, pop, sampled := BridgingSet(c.Decompose2(), faults.WiredOR, 60, 0.3, 7)
	bShared, err := RunBridgingCampaign(c, nil, bs, faults.WiredOR, pop, sampled, CampaignConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	bIsolated, err := RunBridgingCampaign(c, nil, bs, faults.WiredOR, pop, sampled, CampaignConfig{Workers: 4, Isolate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripStatsBF(bShared), stripStatsBF(bIsolated)) {
		t.Fatal("isolated bridging study differs from shared-backend study")
	}
}

// TestSharedCampaignUnderGovernorPressure forces the memory governor to
// park workers for the whole campaign, so every parked worker runs GCNow
// against the one shared table while siblings are mid-fault under the
// analysis read lock. The write-locked collection must wait for them and
// the results must still be exact and bit-identical to an unpressured
// run.
func TestSharedCampaignUnderGovernorPressure(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	calm, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	pressured, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers:  4,
		MemLimit: 1 << 30,
		MemPoll:  time.Millisecond,
		memSample: func() int64 {
			// Alternate over/under the ceiling so workers park (running
			// GCNow on the shared table), wake, and repeat.
			n++
			if n%2 == 0 {
				return 1 << 40
			}
			return 1
		},
		Recovery: diffprop.Recovery{NodeLimit: 1 << 22, SiftPasses: diffprop.DefaultSiftPasses},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripStatsSA(pressured), stripStatsSA(calm)) {
		t.Fatal("governor pressure changed shared-backend results")
	}
}
