package analysis

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/circuits"
	"repro/internal/faults"
)

func TestDropDegradedRecords(t *testing.T) {
	mustRaw := func(v any) json.RawMessage {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	records := map[int]json.RawMessage{
		0: mustRaw(StuckAtRecord{Detectability: 0.5}),
		1: mustRaw(StuckAtRecord{Detectability: 0.1, Approximate: true}),
		2: mustRaw(StuckAtRecord{Err: "boom"}),
		3: mustRaw(StuckAtRecord{Skipped: true}),
		4: mustRaw(BridgingRecord{Detectability: 0.25}),
	}
	dropped, err := DropDegradedRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Fatalf("dropped %d records, want 3", dropped)
	}
	if _, ok := records[0]; !ok {
		t.Fatal("exact stuck-at record was dropped")
	}
	if _, ok := records[4]; !ok {
		t.Fatal("exact bridging record was dropped")
	}
	for _, i := range []int{1, 2, 3} {
		if _, ok := records[i]; ok {
			t.Fatalf("degraded record %d survived", i)
		}
	}

	if _, err := DropDegradedRecords(map[int]json.RawMessage{7: json.RawMessage(`{"Err":`)}); err == nil {
		t.Fatal("undecodable record accepted")
	}
}

// TestRetryDegradedResume is the end-to-end -retry-degraded flow: a first
// campaign under a hopeless budget checkpoints every fault as Approximate;
// the resume pass drops those records and re-attempts them without the
// budget, and the final study — and the reloaded checkpoint, where the
// later line wins — carry exact results. The header fingerprint never
// changes.
func TestRetryDegradedResume(t *testing.T) {
	c := circuits.MustGet("c95s")
	work := c.Decompose2()
	fs := faults.CheckpointStuckAts(work)
	hdr := StuckAtCheckpointHeader(work, fs)
	path := filepath.Join(t.TempDir(), "sa.jsonl")

	exact, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Pass 1: 1-op budget, everything that isn't free degrades.
	cp, err := CreateCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 3, FaultOps: 1, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if first.Stats.Degraded == 0 {
		t.Fatal("pass 1 degraded nothing; retry-degraded has nothing to do")
	}

	// Pass 2: resume with the degraded records dropped and no budget.
	cp2, resume, err := ResumeCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := DropDegradedRecords(resume)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != first.Stats.Degraded {
		t.Fatalf("dropped %d records, want the %d degraded ones", dropped, first.Stats.Degraded)
	}
	retried, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers:    3,
		Checkpoint: cp2,
		Resume:     resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp2.Close(); err != nil {
		t.Fatal(err)
	}
	if retried.Stats.Resumed != len(fs)-dropped {
		t.Fatalf("Resumed = %d, want %d", retried.Stats.Resumed, len(fs)-dropped)
	}
	if retried.Stats.Degraded != 0 {
		t.Fatalf("unbudgeted retry pass still degraded %d faults", retried.Stats.Degraded)
	}
	if !reflect.DeepEqual(stripStatsSA(retried), stripStatsSA(exact)) {
		t.Fatal("retry-degraded study differs from the all-exact reference")
	}

	// The checkpoint now holds both generations of each retried fault;
	// reload must pick the later (exact) line for every index.
	_, all, _, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(fs) {
		t.Fatalf("checkpoint holds %d records, want %d", len(all), len(fs))
	}
	stillDegraded, err := DropDegradedRecords(all)
	if err != nil {
		t.Fatal(err)
	}
	if stillDegraded != 0 {
		t.Fatalf("%d records still degraded after retry pass", stillDegraded)
	}
}
