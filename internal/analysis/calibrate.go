// Budget self-calibration.
//
// The per-fault op budget and the recovery ladder's retry multiplier have
// so far been hand-tuned per circuit (-budget / -retrybudget): too tight
// and easy faults degrade, too loose and a pathological fault holds a
// worker for minutes. But a campaign measures the thing the knobs encode
// — the circuit's per-fault op-cost distribution — as a side effect of
// running. The calibrator samples the cost of completed exact analyses
// and, once a warmup window fills, arms every worker engine with bounds
// derived from the distribution's quantiles:
//
//	ops budget      = max(q(Quantile) x Headroom, MinOps)
//	retry multiplier = clamp(2 x max/q(Quantile), 8, 128)
//
// The q99-with-headroom budget admits the observed population with a wide
// margin, so only genuine outliers abort; the retry multiplier is sized
// from the observed tail ratio so the ladder's single relaxed retry still
// covers a fault ~2x worse than the worst seen. Re-derivation happens
// every Refresh new samples over a sliding window of recent costs.
//
// Published bounds are monotone non-decreasing for the campaign's
// lifetime: a re-calibration can raise the budget as harder faults
// appear, never lower it. Together with worker-local re-arming — each
// worker adopts a new generation only between its own faults, so an
// armed in-flight budget is never touched, and RelaxBudget's restore
// closure always reinstates exactly what that worker armed — this makes
// the calibrated ladder race-free by construction.
package analysis

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diffprop"
)

// Calibration defaults (see Calibration).
const (
	DefaultCalibrationWarmup   = 32
	DefaultCalibrationQuantile = 0.99
	DefaultCalibrationHeadroom = 16.0
	DefaultCalibrationRefresh  = 256
	DefaultCalibrationMinOps   = 4096

	// calRetryMin/-Max clamp the derived retry multiplier: at least the
	// historical hand-tuned value, at most a bound that keeps the relaxed
	// retry from running effectively unbudgeted.
	calRetryMin = 8.0
	calRetryMax = 128.0
	// calWindow bounds the sliding sample window the quantiles are
	// computed over.
	calWindow = 4096
)

// Calibration configures budget self-calibration on a campaign: learn the
// per-circuit op-cost distribution from completed exact faults, then arm
// per-fault budgets and the retry ladder from its quantiles instead of
// hand-tuned flags. The zero value disables calibration.
type Calibration struct {
	// Enabled turns calibration on.
	Enabled bool
	// Warmup is the number of exact-fault cost samples collected before
	// the first budget is armed; until then faults run under the
	// campaign's base budget (usually unlimited). Default 32 — enough for
	// a stable upper quantile without postponing protection.
	Warmup int
	// Quantile is the op-cost quantile the budget is derived from.
	// Default 0.99: the budget should admit essentially the whole
	// observed population and abort only genuine outliers.
	Quantile float64
	// Headroom multiplies the quantile into the armed budget. Default 16:
	// per-fault costs spread over orders of magnitude, so a wide margin
	// costs little (op budgets bound damage, not throughput) and keeps
	// faults moderately above the observed range exact instead of
	// degraded.
	Headroom float64
	// Refresh re-derives the bounds every Refresh new samples (default
	// 256). Published bounds only ever ratchet upward.
	Refresh int
	// MinOps floors the armed budget (default 4096), so tiny circuits
	// with single-digit per-fault costs don't arm absurdly small budgets.
	MinOps int64
}

// withDefaults fills zero fields.
func (c Calibration) withDefaults() Calibration {
	if c.Warmup <= 0 {
		c.Warmup = DefaultCalibrationWarmup
	}
	if c.Quantile <= 0 || c.Quantile > 1 {
		c.Quantile = DefaultCalibrationQuantile
	}
	if c.Headroom <= 1 {
		c.Headroom = DefaultCalibrationHeadroom
	}
	if c.Refresh <= 0 {
		c.Refresh = DefaultCalibrationRefresh
	}
	if c.MinOps <= 0 {
		c.MinOps = DefaultCalibrationMinOps
	}
	return c
}

// calibrator is the shared calibration state of one campaign run. Workers
// feed it completed-fault costs (observe) and adopt published bounds
// between faults (apply); the generation counter lets the adopt check be
// a single atomic load on the hot path.
type calibrator struct {
	cfg   Calibration
	wall  time.Duration     // base per-fault wall bound, carried unchanged
	base  diffprop.Recovery // campaign recovery config the armed ladder extends
	instr *campaignInstr

	gen atomic.Uint64 // bumped on every publication; 0 = nothing armed yet

	mu      sync.Mutex
	window  []int64 // sliding window of recent exact-fault op costs
	next    int     // ring cursor once the window is full
	total   int     // samples ever observed
	pending int     // samples since the last derivation
	budget  int64   // published ops budget (0 until first arm)
	retry   float64 // published retry multiplier
	updates int     // publications (first arm + every later raise)
}

// newCalibrator builds the calibrator for one campaign, or nil when
// calibration is off.
func newCalibrator(cfg CampaignConfig, instr *campaignInstr) *calibrator {
	if !cfg.Calibrate.Enabled {
		return nil
	}
	return &calibrator{
		cfg:    cfg.Calibrate.withDefaults(),
		wall:   cfg.FaultTimeout,
		base:   cfg.Recovery,
		budget: cfg.FaultOps, // base budget is the floor the ratchet starts from
		instr:  instr,
	}
}

// observe feeds one completed fault's op cost (exact and rescued outcomes
// only: an aborted attempt's count says where the budget fired, not what
// the fault costs). Safe for concurrent use.
func (cal *calibrator) observe(outcome faultOutcome, ops int64) {
	if cal == nil || ops <= 0 || (outcome != outcomeExact && outcome != outcomeRescued) {
		return
	}
	cal.mu.Lock()
	defer cal.mu.Unlock()
	if len(cal.window) < calWindow {
		cal.window = append(cal.window, ops)
	} else {
		cal.window[cal.next] = ops
		cal.next = (cal.next + 1) % calWindow
	}
	cal.total++
	cal.pending++
	armed := cal.gen.Load() > 0
	if (!armed && cal.total >= cal.cfg.Warmup) || (armed && cal.pending >= cal.cfg.Refresh) {
		cal.deriveLocked()
	}
}

// deriveLocked recomputes the bounds from the current window and
// publishes them when they ratchet upward (or on the first arming).
func (cal *calibrator) deriveLocked() {
	cal.pending = 0
	sorted := append([]int64(nil), cal.window...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	qi := int(float64(len(sorted)) * cal.cfg.Quantile)
	if qi >= len(sorted) {
		qi = len(sorted) - 1
	}
	q, tail := sorted[qi], sorted[len(sorted)-1]
	budget := int64(float64(q) * cal.cfg.Headroom)
	if budget < cal.cfg.MinOps {
		budget = cal.cfg.MinOps
	}
	retry := 2 * float64(tail) / float64(q)
	if retry < calRetryMin {
		retry = calRetryMin
	}
	if retry > calRetryMax {
		retry = calRetryMax
	}
	// Monotone ratchet: never publish a bound below one a worker may
	// already have armed.
	raised := cal.gen.Load() == 0
	if budget > cal.budget {
		cal.budget = budget
		raised = true
	}
	if retry > cal.retry {
		cal.retry = retry
		raised = true
	}
	if !raised {
		return
	}
	cal.updates++
	cal.gen.Add(1)
	cal.instr.calibrationUpdate(cal.budget, cal.retry, cal.total)
}

// apply adopts the latest published bounds onto a worker's engine, if a
// new generation appeared since the worker last looked. Called by the
// owning worker strictly between faults, so an in-flight analysis never
// sees its budget change; the single atomic load keeps the
// nothing-changed path free of locks and allocations. Returns the
// generation the worker is now on.
func (cal *calibrator) apply(e *diffprop.Engine, seen uint64) uint64 {
	if cal == nil {
		return seen
	}
	g := cal.gen.Load()
	if g == seen {
		return seen
	}
	cal.mu.Lock()
	budget, retry := cal.budget, cal.retry
	cal.mu.Unlock()
	e.SetFaultBudget(diffprop.FaultBudget{Ops: budget, Wall: cal.wall})
	rec := cal.base
	if rec.RetryMultiplier <= 1 {
		// The ladder's retry rung is what turns a calibrated abort into a
		// rescue instead of a degradation, so calibration arms it whenever
		// the campaign config didn't pin its own multiplier.
		rec.RetryMultiplier = retry
	}
	e.SetRecovery(rec)
	return g
}

// snapshot reports the final calibration state for CampaignStats.
func (cal *calibrator) snapshot() (budget int64, retry float64, updates int) {
	if cal == nil {
		return 0, 0, 0
	}
	cal.mu.Lock()
	defer cal.mu.Unlock()
	if cal.gen.Load() == 0 {
		return 0, 0, 0
	}
	return cal.budget, cal.retry, cal.updates
}
