// Package analysis runs the paper's experiments on top of Difference
// Propagation: exact detectability profiles, syndromes and adherence for
// stuck-at fault sets (§4.1) and bridging fault sets (§4.2), the
// topology studies (detectability versus distance to the primary
// outputs/inputs), the "POs fed versus POs observable" comparison, and the
// Figure 5 classification of bridging faults with stuck-at behavior.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/netlist"
)

// StuckAtRecord is the full analysis of one stuck-at fault.
type StuckAtRecord struct {
	Fault         faults.StuckAt
	Detectability float64
	UpperBound    float64 // syndrome bound (§4.1)
	Adherence     float64
	AdherenceOK   bool // false when the fault cannot be excited
	ObservedPOs   int  // number of POs where the fault is observable
	POsFed        int  // number of POs in the site's fan-out cone
	MaxLevelsToPO int  // paper's Figure 3 X axis
	LevelFromPI   int  // controllability-side distance
	IsPOFault     bool
	// GatesEvaluated counts gates whose difference function was computed;
	// the rest were skipped by selective trace (§3).
	GatesEvaluated int
	// Approximate marks a record whose Detectability is a random-vector
	// estimate over EstimateVectors patterns: the exact analysis blew its
	// per-fault resource budget and degraded to simulation. Adherence and
	// observability fields are not computed for degraded records.
	Approximate     bool `json:",omitempty"`
	EstimateVectors int  `json:",omitempty"`
	// Err carries the message of a panic isolated during this fault's
	// analysis; all analysis fields are zero when it is set.
	Err string `json:",omitempty"`
	// Skipped marks a fault never analyzed because the campaign was
	// cancelled (or aborted on a checkpoint error) before reaching it.
	Skipped bool `json:",omitempty"`
}

// Detectable reports whether the fault has a non-empty test set.
func (r StuckAtRecord) Detectable() bool { return r.Detectability > 0 }

// BridgingRecord is the full analysis of one bridging fault.
type BridgingRecord struct {
	Fault         faults.Bridging
	Detectability float64
	UpperBound    float64 // excitation bound |f_u XOR f_v| / 2^n
	Adherence     float64
	AdherenceOK   bool
	ObservedPOs   int
	POsFed        int // union of both wires' cones
	MaxLevelsToPO int // max over the two wires
	ActsStuckAt   bool
	// Approximate, EstimateVectors, Err and Skipped mirror the stuck-at
	// record's degradation and isolation markers (see StuckAtRecord).
	Approximate     bool   `json:",omitempty"`
	EstimateVectors int    `json:",omitempty"`
	Err             string `json:",omitempty"`
	Skipped         bool   `json:",omitempty"`
}

// Detectable reports whether the fault has a non-empty test set.
func (r BridgingRecord) Detectable() bool { return r.Detectability > 0 }

// StuckAtStudy is a complete stuck-at campaign over one circuit.
type StuckAtStudy struct {
	Circuit     string
	NetlistSize int // gate count of the analyzed netlist
	NumPIs      int
	NumPOs      int
	Records     []StuckAtRecord
	// Stats holds the campaign's runtime counters. Filled by the campaign
	// runners; zero for plain serial RunStuckAt calls. Excluded from
	// serial-vs-parallel equality: it reflects how the work was scheduled,
	// not what was computed.
	Stats CampaignStats
}

// BridgingStudy is a complete bridging campaign over one circuit.
type BridgingStudy struct {
	Circuit     string
	Kind        faults.BridgeKind
	NetlistSize int
	NumPIs      int
	NumPOs      int
	Sampled     bool // true when the fault set was layout-sampled
	Population  int  // size of the potentially detectable NFBF population
	Records     []BridgingRecord
	// Stats holds the campaign's runtime counters (see StuckAtStudy.Stats).
	Stats CampaignStats
}

// siteDistances returns (max levels to PO, level) for a stuck-at site.
// Branch faults sit at the consumer gate's input, one level above the
// gate's own distance.
func siteDistances(c *netlist.Circuit, f faults.StuckAt, toPO, levels []int) (int, int) {
	if f.IsBranch() {
		d := toPO[f.Gate]
		if d >= 0 {
			d++
		}
		return d, levels[f.Net]
	}
	return toPO[f.Net], levels[f.Net]
}

// stuckAtRecord analyzes one stuck-at fault. It is the single source of
// truth for both the serial and the work-stealing runners, which keeps
// parallel results bit-identical to serial ones by construction.
func stuckAtRecord(e *diffprop.Engine, f faults.StuckAt, toPO, levels []int) StuckAtRecord {
	c := e.Circuit
	res := e.StuckAt(f)
	ub := e.StuckAtUpperBound(f)
	a, ok := diffprop.Adherence(res.Detectability, ub)
	dist, lvl := siteDistances(c, f, toPO, levels)
	// A branch fault reaches the outputs only through its consumer
	// gate, so its fed-PO set is the gate's cone, not the stem's.
	fedSite := f.Net
	if f.IsBranch() {
		fedSite = f.Gate
	}
	return StuckAtRecord{
		Fault:          f,
		Detectability:  res.Detectability,
		UpperBound:     ub,
		Adherence:      a,
		AdherenceOK:    ok,
		ObservedPOs:    len(res.ObservedPOs),
		POsFed:         len(c.POsFed(fedSite)),
		MaxLevelsToPO:  dist,
		LevelFromPI:    lvl,
		IsPOFault:      !f.IsBranch() && c.IsOutput(f.Net),
		GatesEvaluated: res.GatesEvaluated,
	}
}

// bridgingRecord analyzes one bridging fault (shared by the serial and
// work-stealing runners, like stuckAtRecord).
func bridgingRecord(e *diffprop.Engine, b faults.Bridging, toPO []int) BridgingRecord {
	c := e.Circuit
	res := e.Bridging(b)
	ub := e.BridgingUpperBound(b)
	a, ok := diffprop.Adherence(res.Detectability, ub)
	fed := map[int]bool{}
	for _, po := range c.POsFed(b.U) {
		fed[po] = true
	}
	for _, po := range c.POsFed(b.V) {
		fed[po] = true
	}
	dist := toPO[b.U]
	if toPO[b.V] > dist {
		dist = toPO[b.V]
	}
	return BridgingRecord{
		Fault:         b,
		Detectability: res.Detectability,
		UpperBound:    ub,
		Adherence:     a,
		AdherenceOK:   ok,
		ObservedPOs:   len(res.ObservedPOs),
		POsFed:        len(fed),
		MaxLevelsToPO: dist,
		ActsStuckAt:   e.BridgeActsStuckAt(b),
	}
}

// stuckAtHeader fills the study fields derived from the working circuit.
func stuckAtHeader(c *netlist.Circuit) StuckAtStudy {
	return StuckAtStudy{
		Circuit:     c.Name,
		NetlistSize: c.NumGates(),
		NumPIs:      len(c.Inputs),
		NumPOs:      len(c.Outputs),
	}
}

// bridgingHeader fills the study fields derived from the working circuit
// and the fault-set policy.
func bridgingHeader(c *netlist.Circuit, kind faults.BridgeKind, population int, sampled bool) BridgingStudy {
	return BridgingStudy{
		Circuit:     c.Name,
		Kind:        kind,
		NetlistSize: c.NumGates(),
		NumPIs:      len(c.Inputs),
		NumPOs:      len(c.Outputs),
		Sampled:     sampled,
		Population:  population,
	}
}

// RunStuckAt analyzes every fault in the set with exact Difference
// Propagation. Faults must refer to e.Circuit's net numbering. A fault
// whose analysis panics (or blows a budget armed via
// Engine.SetFaultBudget) poisons only its own record: the study carries a
// per-fault error (or degraded estimate) at that index and the remaining
// faults complete normally.
func RunStuckAt(e *diffprop.Engine, fs []faults.StuckAt) StuckAtStudy {
	c := e.Circuit
	toPO := c.MaxLevelsToPO()
	levels := c.Levels()
	fb := newFallback(0, 0)
	study := stuckAtHeader(c)
	study.Records = make([]StuckAtRecord, 0, len(fs))
	for _, f := range fs {
		rec, _ := analyzeStuckAt(e, f, toPO, levels, fb, nil, nil)
		study.Records = append(study.Records, rec)
	}
	return study
}

// RunBridging analyzes every bridging fault in the set. Panic isolation
// and budget degradation behave as in RunStuckAt.
func RunBridging(e *diffprop.Engine, bs []faults.Bridging, kind faults.BridgeKind, population int, sampled bool) BridgingStudy {
	c := e.Circuit
	toPO := c.MaxLevelsToPO()
	fb := newFallback(0, 0)
	study := bridgingHeader(c, kind, population, sampled)
	study.Records = make([]BridgingRecord, 0, len(bs))
	for _, b := range bs {
		rec, _ := analyzeBridging(e, b, toPO, fb, nil, nil)
		study.Records = append(study.Records, rec)
	}
	return study
}

// BridgingSet reproduces the paper's fault-set policy (§2.2): the entire
// potentially detectable NFBF population when it does not exceed
// maxFaults (as for the four smallest circuits), otherwise a
// layout-distance-weighted random sample of maxFaults faults with the
// exponential distribution parameter theta.
func BridgingSet(c *netlist.Circuit, kind faults.BridgeKind, maxFaults int, theta float64, seed int64) (set []faults.Bridging, population int, sampled bool) {
	all := faults.AllNFBFs(c, kind)
	population = len(all)
	if len(all) <= maxFaults {
		return all, population, false
	}
	return layout.SampleNFBFs(c, all, maxFaults, theta, seed), population, true
}

// Histogram bins the values of the [0,1] interval into `bins` equal-width
// buckets and returns each bucket's fraction of the total — the paper's
// "fault proportion" normalization. Values at 1.0 land in the last bin.
func Histogram(values []float64, bins int) []float64 {
	if bins <= 0 {
		panic(fmt.Sprintf("analysis: %d bins", bins))
	}
	out := make([]float64, bins)
	if len(values) == 0 {
		return out
	}
	for _, v := range values {
		i := int(v * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		out[i]++
	}
	for i := range out {
		out[i] /= float64(len(values))
	}
	return out
}

// FaultError summarizes one isolated per-fault failure in a study.
type FaultError struct {
	Index int
	Fault string
	Err   string
}

func (e FaultError) String() string {
	return fmt.Sprintf("fault %d (%s): %s", e.Index, e.Fault, e.Err)
}

// Errors lists the faults whose analysis panicked, in index order. A
// non-empty result means the study is complete except at those indices.
func (s StuckAtStudy) Errors() []FaultError {
	var out []FaultError
	for i, r := range s.Records {
		if r.Err != "" {
			out = append(out, FaultError{Index: i, Fault: r.Fault.String(), Err: r.Err})
		}
	}
	return out
}

// Errors lists the faults whose analysis panicked, in index order.
func (s BridgingStudy) Errors() []FaultError {
	var out []FaultError
	for i, r := range s.Records {
		if r.Err != "" {
			out = append(out, FaultError{Index: i, Fault: r.Fault.String(), Err: r.Err})
		}
	}
	return out
}

// DegradedFault summarizes one fault whose exact analysis blew its budget
// and was re-scored by simulation.
type DegradedFault struct {
	Index int
	Fault string
	// Detectability is the simulation estimate over Vectors patterns.
	Detectability float64
	Vectors       int
}

func (d DegradedFault) String() string {
	return fmt.Sprintf("fault %d (%s): estimated detectability %.6f over %d vectors",
		d.Index, d.Fault, d.Detectability, d.Vectors)
}

// DegradedFaults lists the budget-degraded faults sorted by fault index.
// Records are index-aligned by construction, so the order is deterministic
// regardless of how the work-stealing workers interleaved.
func (s StuckAtStudy) DegradedFaults() []DegradedFault {
	var out []DegradedFault
	for i, r := range s.Records {
		if r.Approximate {
			out = append(out, DegradedFault{Index: i, Fault: r.Fault.String(), Detectability: r.Detectability, Vectors: r.EstimateVectors})
		}
	}
	return out
}

// DegradedFaults lists the budget-degraded bridging faults sorted by
// fault index (see StuckAtStudy.DegradedFaults).
func (s BridgingStudy) DegradedFaults() []DegradedFault {
	var out []DegradedFault
	for i, r := range s.Records {
		if r.Approximate {
			out = append(out, DegradedFault{Index: i, Fault: r.Fault.String(), Detectability: r.Detectability, Vectors: r.EstimateVectors})
		}
	}
	return out
}

// Detectabilities extracts the detectability of every fault in the study.
func (s StuckAtStudy) Detectabilities() []float64 {
	out := make([]float64, len(s.Records))
	for i, r := range s.Records {
		out[i] = r.Detectability
	}
	return out
}

// Detectabilities extracts the detectability of every fault in the study.
func (s BridgingStudy) Detectabilities() []float64 {
	out := make([]float64, len(s.Records))
	for i, r := range s.Records {
		out[i] = r.Detectability
	}
	return out
}

// Adherences extracts the adherence of every excitable fault.
func (s StuckAtStudy) Adherences() []float64 {
	var out []float64
	for _, r := range s.Records {
		if r.AdherenceOK {
			out = append(out, r.Adherence)
		}
	}
	return out
}

// Adherences extracts the adherence of every excitable fault.
func (s BridgingStudy) Adherences() []float64 {
	var out []float64
	for _, r := range s.Records {
		if r.AdherenceOK {
			out = append(out, r.Adherence)
		}
	}
	return out
}

// MeanDetectable returns the overall mean detectability of detectable
// faults — the solid line of Figures 2 and 7.
func (s StuckAtStudy) MeanDetectable() float64 {
	return meanDetectable(s.Detectabilities())
}

// MeanDetectable returns the overall mean detectability of detectable
// faults.
func (s BridgingStudy) MeanDetectable() float64 {
	return meanDetectable(s.Detectabilities())
}

func meanDetectable(ds []float64) float64 {
	sum, n := 0.0, 0
	for _, d := range ds {
		if d > 0 {
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CoverageRate returns the fraction of faults with a non-empty test set.
func (s StuckAtStudy) CoverageRate() float64 {
	return coverageRate(s.Detectabilities())
}

// MeanGatesEvaluated reports the average number of gates whose difference
// function was computed per fault — the measured effect of the paper's
// selective trace remark (calculations are only performed as long as
// difference information exists).
func (s StuckAtStudy) MeanGatesEvaluated() float64 {
	if len(s.Records) == 0 {
		return 0
	}
	sum := 0
	for _, r := range s.Records {
		sum += r.GatesEvaluated
	}
	return float64(sum) / float64(len(s.Records))
}

// CoverageRate returns the fraction of faults with a non-empty test set.
func (s BridgingStudy) CoverageRate() float64 {
	return coverageRate(s.Detectabilities())
}

func coverageRate(ds []float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	n := 0
	for _, d := range ds {
		if d > 0 {
			n++
		}
	}
	return float64(n) / float64(len(ds))
}

// DistancePoint is one bucket of a detectability-versus-distance curve.
type DistancePoint struct {
	Distance int
	Mean     float64
	Count    int
}

// CurveByMaxLevelsToPO groups detectable faults by their maximum distance
// to a primary output and returns the per-bucket mean detectability —
// Figures 3 and 8.
func (s StuckAtStudy) CurveByMaxLevelsToPO() []DistancePoint {
	pts := map[int][]float64{}
	for _, r := range s.Records {
		if r.Detectable() && r.MaxLevelsToPO >= 0 {
			pts[r.MaxLevelsToPO] = append(pts[r.MaxLevelsToPO], r.Detectability)
		}
	}
	return curveFromBuckets(pts)
}

// CurveByMaxLevelsToPO groups detectable bridging faults by distance.
func (s BridgingStudy) CurveByMaxLevelsToPO() []DistancePoint {
	pts := map[int][]float64{}
	for _, r := range s.Records {
		if r.Detectable() && r.MaxLevelsToPO >= 0 {
			pts[r.MaxLevelsToPO] = append(pts[r.MaxLevelsToPO], r.Detectability)
		}
	}
	return curveFromBuckets(pts)
}

// CurveByLevelFromPI groups detectable faults by their level (distance
// from the primary inputs) — the controllability-side counterpart used in
// the §4.1 observability-versus-controllability discussion.
func (s StuckAtStudy) CurveByLevelFromPI() []DistancePoint {
	pts := map[int][]float64{}
	for _, r := range s.Records {
		if r.Detectable() {
			pts[r.LevelFromPI] = append(pts[r.LevelFromPI], r.Detectability)
		}
	}
	return curveFromBuckets(pts)
}

func curveFromBuckets(pts map[int][]float64) []DistancePoint {
	max := -1
	for d := range pts {
		if d > max {
			max = d
		}
	}
	var out []DistancePoint
	for d := 0; d <= max; d++ {
		vals := pts[d]
		if len(vals) == 0 {
			continue
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		out = append(out, DistancePoint{Distance: d, Mean: sum / float64(len(vals)), Count: len(vals)})
	}
	return out
}

// ObservedEqualsFedRate returns the fraction of detectable faults whose
// observable-PO count equals the fed-PO count — the paper's "these numbers
// are almost always the same" claim supporting closest-PO justification.
func (s StuckAtStudy) ObservedEqualsFedRate() float64 {
	eq, n := 0, 0
	for _, r := range s.Records {
		if !r.Detectable() {
			continue
		}
		n++
		if r.ObservedPOs == r.POsFed {
			eq++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(eq) / float64(n)
}

// StuckAtProportion returns the fraction of bridging faults classified as
// having stuck-at (constant) behavior — Figure 5's Y axis.
func (s BridgingStudy) StuckAtProportion() float64 {
	if len(s.Records) == 0 {
		return 0
	}
	n := 0
	for _, r := range s.Records {
		if r.ActsStuckAt {
			n++
		}
	}
	return float64(n) / float64(len(s.Records))
}

// Correlation returns the Pearson correlation coefficient of two equal-
// length series (NaN-free inputs assumed); used to quantify the paper's
// "detectability is better correlated with observability than with
// controllability" observation.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("analysis: correlation needs equal non-empty series")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// ranks assigns average ranks (1-based, ties averaged) to the values.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}

// Spearman returns the Spearman rank correlation of two equal-length
// series (ties receive average ranks). Used to compare ordinal testability
// estimates (SCOAP costs) against exact detectabilities.
func Spearman(xs, ys []float64) float64 {
	return Correlation(ranks(xs), ranks(ys))
}

// PredictedRandomCoverage returns the expected fault coverage after n
// independent uniform random patterns, given each fault's exact detection
// probability: mean over faults of 1 - (1-p)^n. Faults with p = 0 are
// never covered and pull the ceiling below 1.
func PredictedRandomCoverage(ps []float64, n int) float64 {
	if len(ps) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range ps {
		sum += 1 - math.Pow(1-p, float64(n))
	}
	return sum / float64(len(ps))
}

// DetectabilityVsDistanceCorrelations returns the correlation of per-fault
// detectability with PO distance and with PI distance, over detectable
// faults.
func (s StuckAtStudy) DetectabilityVsDistanceCorrelations() (po, pi float64) {
	var ds, dpo, dpi []float64
	for _, r := range s.Records {
		if !r.Detectable() || r.MaxLevelsToPO < 0 {
			continue
		}
		ds = append(ds, r.Detectability)
		dpo = append(dpo, float64(r.MaxLevelsToPO))
		dpi = append(dpi, float64(r.LevelFromPI))
	}
	if len(ds) < 2 {
		return 0, 0
	}
	return Correlation(ds, dpo), Correlation(ds, dpi)
}
