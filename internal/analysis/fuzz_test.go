package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadCheckpoint fuzzes the torn-tail/versioned-header checkpoint
// parser. Invariants for arbitrary input: no panic; on success the valid
// end sits inside the file; and reloading exactly the valid prefix is
// idempotent — same header, same records, same end — which is what the
// resume path relies on when it truncates a torn tail and appends after
// it.
func FuzzLoadCheckpoint(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("\n"))
	f.Add([]byte(`{"v":1,"kind":"stuckat","circuit":"c17","faults":2,"fp":"ab"}` + "\n"))
	f.Add([]byte(`{"v":1,"kind":"stuckat","circuit":"c17","faults":2,"fp":"ab"}` + "\n" +
		`{"i":0,"r":{"Detectability":0.5}}` + "\n" +
		`{"i":1,"r":{"Approximate":true}}` + "\n"))
	f.Add([]byte(`{"v":1,"kind":"stuckat","circuit":"c17","faults":2,"fp":"ab"}` + "\n" +
		`{"i":0,"r":{"Detectability":0.5}}` + "\n" +
		`{"i":0,"r":{"Detect`)) // torn rewrite of index 0
	f.Add([]byte(`not json` + "\n" + `{"i":0,"r":{}}` + "\n"))
	f.Add([]byte("{}\n{\"i\":-5,\"r\":null}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "ckpt.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		hdr, records, validEnd, err := LoadCheckpoint(path)
		if err != nil {
			return // malformed header: rejected, nothing more to hold
		}
		if validEnd < 0 || validEnd > int64(len(data)) {
			t.Fatalf("validEnd %d outside file of %d bytes", validEnd, len(data))
		}
		// The valid prefix must end on a line boundary.
		if validEnd > 0 && data[validEnd-1] != '\n' {
			t.Fatalf("validEnd %d does not end a line", validEnd)
		}
		// Reloading the valid prefix alone must reproduce the parse.
		path2 := filepath.Join(dir, "prefix.jsonl")
		if err := os.WriteFile(path2, data[:validEnd], 0o644); err != nil {
			t.Fatal(err)
		}
		hdr2, records2, validEnd2, err := LoadCheckpoint(path2)
		if err != nil {
			t.Fatalf("valid prefix failed to reload: %v", err)
		}
		if hdr2 != hdr {
			t.Fatalf("header changed on reload: %+v vs %+v", hdr2, hdr)
		}
		if validEnd2 != validEnd {
			t.Fatalf("validEnd changed on reload: %d vs %d", validEnd2, validEnd)
		}
		if len(records2) != len(records) {
			t.Fatalf("record count changed on reload: %d vs %d", len(records2), len(records))
		}
		for i, raw := range records {
			if !bytes.Equal(records2[i], raw) {
				t.Fatalf("record %d changed on reload", i)
			}
		}
		// DropDegradedRecords must never panic on loaded records either
		// (each raw line already parsed as JSON).
		before := make(map[int][]byte, len(records))
		for i, raw := range records {
			before[i] = append([]byte(nil), raw...)
		}
		if _, err := DropDegradedRecords(records); err != nil {
			// A record that is valid JSON but not an object (e.g. a bare
			// array) is rejected: fine, as long as the survivors are
			// untouched original lines.
			for i, raw := range records {
				if !bytes.Equal(before[i], raw) {
					t.Fatalf("failed drop mutated record %d", i)
				}
			}
		}
	})
}
