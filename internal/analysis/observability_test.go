package analysis

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/obs"
)

// TestStatsAggregationMerge pins the one merge rule for combining
// per-engine stats: folding N engines' counters into CampaignStats via
// add must equal Merge-summing them into a single diffprop.Stats.
func TestStatsAggregationMerge(t *testing.T) {
	parts := []diffprop.Stats{
		{Analyses: 3, GateEvaluations: 100, Rebuilds: 1, PeakNodes: 500},
		{Analyses: 5, GateEvaluations: 250, Rebuilds: 0, PeakNodes: 900},
		{Analyses: 2, GateEvaluations: 75, Rebuilds: 4, PeakNodes: 120},
	}
	parts[0].Cache.ApplyHits, parts[0].Cache.ApplyMisses = 10, 20
	parts[1].Cache.IteHits, parts[1].Cache.NotMisses = 7, 3
	parts[2].Cache.ApplyHits, parts[2].Cache.NotHits = 1, 9

	var want diffprop.Stats
	for _, p := range parts {
		want.Merge(p)
	}
	var cs CampaignStats
	for _, p := range parts {
		cs.add(p)
	}
	got := cs.EngineStats()
	if got.GateEvaluations != want.GateEvaluations || got.Rebuilds != want.Rebuilds ||
		got.PeakNodes != want.PeakNodes || got.Cache != want.Cache {
		t.Fatalf("CampaignStats.add diverged from diffprop.Stats.Merge:\n got %+v\nwant %+v", got, want)
	}
	if got.PeakNodes != 900 {
		t.Fatalf("PeakNodes = %d, want the max (900), not a sum", got.PeakNodes)
	}
}

// TestParallelStatsEqualSumOfEngines checks the aggregation end to end: a
// parallel campaign's GateEvaluations total must equal the sum of the
// per-fault work recorded in the (engine-produced) records.
func TestParallelStatsEqualSumOfEngines(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, r := range study.Records {
		sum += int64(r.GatesEvaluated)
	}
	if study.Stats.GateEvaluations != sum {
		t.Fatalf("campaign GateEvaluations = %d, want the per-record sum %d",
			study.Stats.GateEvaluations, sum)
	}
	if study.Stats.PeakNodes == 0 || study.Stats.Workers != 4 {
		t.Fatalf("engine counters not aggregated: %+v", study.Stats)
	}
}

// TestErrorsAndDegradedDeterministicOrder injects two panicking faults
// into a 4-worker budgeted campaign and checks that Errors() and
// DegradedFaults() come back sorted by fault index, identically across
// repeated runs, regardless of worker interleaving.
func TestErrorsAndDegradedDeterministicOrder(t *testing.T) {
	c := circuits.MustGet("c95s")
	work := c.Decompose2()
	fs := faults.CheckpointStuckAts(work)
	bad := faults.StuckAt{Net: work.NumNets() + 41, Gate: -1, Pin: -1}
	lo, hi := len(fs)/4, 3*len(fs)/4
	fs = append(fs[:lo:lo], append([]faults.StuckAt{bad}, append(fs[lo:hi:hi], append([]faults.StuckAt{bad}, fs[hi:]...)...)...)...)

	var prevErrs []FaultError
	for run := 0; run < 3; run++ {
		study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 4, FaultOps: 200})
		if err != nil {
			t.Fatal(err)
		}
		errs := study.Errors()
		if len(errs) != 2 || errs[0].Index != lo || errs[1].Index != hi+1 {
			t.Fatalf("run %d: errors %v, want indices %d and %d", run, errs, lo, hi+1)
		}
		// Which faults blow a mid-range op budget depends on cache warmth
		// and hence on scheduling; the guarantee under test is the ORDER —
		// both lists sorted by fault index — not the degraded membership.
		deg := study.DegradedFaults()
		if len(deg) == 0 {
			t.Fatalf("run %d: a 200-op budget degraded nothing", run)
		}
		if !sort.SliceIsSorted(deg, func(a, b int) bool { return deg[a].Index < deg[b].Index }) {
			t.Fatalf("run %d: DegradedFaults not sorted by index", run)
		}
		if run > 0 {
			for i := range errs {
				if errs[i] != prevErrs[i] {
					t.Fatalf("run %d: error %d differs: %v vs %v", run, i, errs[i], prevErrs[i])
				}
			}
		}
		prevErrs = errs
	}
}

// TestCanceledCampaignHeartbeat cancels a 4-worker campaign mid-run and
// checks the /progress heartbeat: canceled=true, finished=true, and every
// partial count reconciling exactly with the returned CampaignStats.
func TestCanceledCampaignHeartbeat(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers: 4,
		Context: ctx,
		Obs:     o,
		Progress: func(done, total int) {
			if done >= total/3 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !study.Stats.Canceled {
		t.Fatal("campaign was not canceled")
	}
	if study.Stats.Faults == 0 || study.Stats.Faults == len(fs) {
		t.Fatalf("want a partial campaign, analyzed %d/%d", study.Stats.Faults, len(fs))
	}

	srv := httptest.NewServer(obs.NewMux(o))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.ProgressSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Campaigns) != 1 {
		t.Fatalf("heartbeats = %d, want 1", len(snap.Campaigns))
	}
	hb := snap.Campaigns[0]
	if !hb.Canceled || !hb.Finished {
		t.Fatalf("heartbeat not sealed as canceled: %+v", hb)
	}
	if hb.Analyzed != int64(study.Stats.Faults) ||
		hb.Degraded != int64(study.Stats.Degraded) ||
		hb.Errored != int64(study.Stats.Errored) ||
		hb.Resumed != int64(study.Stats.Resumed) {
		t.Fatalf("heartbeat %+v does not reconcile with stats %+v", hb, study.Stats)
	}
	if hb.Done+hb.Skipped != int64(len(fs)) {
		t.Fatalf("done %d + skipped %d != total %d", hb.Done, hb.Skipped, len(fs))
	}
	skipped := 0
	for _, r := range study.Records {
		if r.Skipped {
			skipped++
		}
	}
	if hb.Skipped != int64(skipped) {
		t.Fatalf("heartbeat skipped = %d, study has %d Skipped records", hb.Skipped, skipped)
	}
}

// TestHeartbeatReconciliationWithResume runs a full campaign seeded with
// checkpoint-restored records and checks the final heartbeat and metric
// counters against CampaignStats.
func TestHeartbeatReconciliationWithResume(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	first, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	resume := map[int]json.RawMessage{}
	for i := 0; i < 5; i++ {
		raw, err := json.Marshal(first.Records[i])
		if err != nil {
			t.Fatal(err)
		}
		resume[i] = raw
	}

	o := &obs.Observer{Metrics: obs.NewRegistry()}
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 4, Obs: o, Resume: resume})
	if err != nil {
		t.Fatal(err)
	}
	if study.Stats.Resumed != 5 || study.Stats.Faults != len(fs)-5 {
		t.Fatalf("stats %+v", study.Stats)
	}
	hb := o.Campaigns()[0].Snapshot()
	if hb.Done != int64(len(fs)) || hb.Resumed != 5 || hb.Skipped != 0 || hb.Canceled {
		t.Fatalf("heartbeat %+v", hb)
	}
	if hb.Analyzed != int64(study.Stats.Faults) {
		t.Fatalf("heartbeat analyzed %d, stats %d", hb.Analyzed, study.Stats.Faults)
	}
	cm := o.CampaignMetrics()
	if cm.FaultsDone.Value() != int64(len(fs)) {
		t.Fatalf("campaign_faults_done_total = %d, want %d", cm.FaultsDone.Value(), len(fs))
	}
	if cm.FaultsExact.Value() != int64(study.Stats.Faults-study.Stats.Degraded-study.Stats.Errored) {
		t.Fatalf("campaign_faults_exact_total = %d", cm.FaultsExact.Value())
	}
	if cm.GateEvaluations.Value() != study.Stats.GateEvaluations {
		t.Fatalf("campaign_gate_evaluations_total = %d, stats %d",
			cm.GateEvaluations.Value(), study.Stats.GateEvaluations)
	}
	if got := cm.FaultLatency.Count(); got != int64(study.Stats.Faults) {
		t.Fatalf("latency histogram holds %d observations, want %d", got, study.Stats.Faults)
	}
	if cm.CampaignsRunning.Value() != 0 {
		t.Fatalf("campaigns_running = %d after finish", cm.CampaignsRunning.Value())
	}
}

// TestTracedCampaignSpans runs a traced campaign and checks one span per
// analyzed fault with a valid outcome label.
func TestTracedCampaignSpans(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	tr := obs.NewTracer(io.Discard, obs.FormatJSONL)
	o := &obs.Observer{Tracer: tr}
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 3, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != int64(study.Stats.Faults) {
		t.Fatalf("tracer recorded %d spans, campaign analyzed %d faults", tr.Events(), study.Stats.Faults)
	}
}

// TestObsOffHotPathAllocs pins the acceptance criterion directly: with
// observability off (a nil campaignInstr), the per-fault instrumentation
// hooks must not allocate — or read the clock — at all.
func TestObsOffHotPathAllocs(t *testing.T) {
	e, err := diffprop.New(circuits.MustGet("c17"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var in *campaignInstr
	allocs := testing.AllocsPerRun(1000, func() {
		t0 := in.faultStart()
		in.faultDone(e, 0, 0, outcomeExact, t0)
		in.workerClaim(0, 0, 1)
		if in.ladderHook(0, 0) != nil {
			t.Error("disabled ladderHook returned a closure")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %.1f times per fault, want 0", allocs)
	}
	if t0 := in.faultStart(); !t0.IsZero() {
		t.Fatal("disabled faultStart read the clock")
	}
}

// benchCampaign runs one stuck-at campaign for the benchmark pair below.
func benchCampaign(b *testing.B, o *obs.Observer) {
	b.Helper()
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 2, Obs: o}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignObsOff is the baseline the CI benchmark guard compares
// against BenchmarkCampaignTraced (observability fully on).
func BenchmarkCampaignObsOff(b *testing.B) { benchCampaign(b, nil) }

func BenchmarkCampaignTraced(b *testing.B) {
	o := &obs.Observer{
		Metrics: obs.NewRegistry(),
		Tracer:  obs.NewTracer(io.Discard, obs.FormatJSONL),
	}
	benchCampaign(b, o)
}
