// Observability wiring for the campaign runners.
//
// A campaignInstr translates runner events (worker lifecycle, per-fault
// completions, campaign finish) into the obs layer: heartbeat updates,
// metric increments, structured log records, and trace spans. A nil
// *campaignInstr — the default when CampaignConfig.Obs is unset — makes
// every hook return immediately without reading the clock or allocating,
// so the per-fault hot path is untouched when observability is off (a
// test pins it at zero allocations).
package analysis

import (
	"log/slog"
	"time"

	"repro/internal/bdd"
	"repro/internal/diffprop"
	"repro/internal/obs"
)

// campaignInstr carries the observability handles of one campaign run.
type campaignInstr struct {
	o         *obs.Observer
	camp      *obs.Campaign
	cm        *obs.CampaignMetrics
	log       *slog.Logger
	flight    *obs.FlightRecorder
	faultName func(i int) string

	// Per-worker cache-traffic and gate-walk baselines for the live
	// gauges/counters: each worker folds only the delta since its last
	// fault into the registry, and each slot is written only by its
	// owning worker.
	lastHits, lastMisses     []int64
	lastVisited, lastSkipped []int64
}

// newCampaignInstr builds the instrumentation for one campaign, or nil
// when observability is off. name labels the heartbeat and log records
// (cfg.Name overrides); faultName renders fault i for logs and traces.
func newCampaignInstr(cfg CampaignConfig, name string, total int, faultName func(i int) string) *campaignInstr {
	if cfg.Obs == nil {
		return nil
	}
	if cfg.Name != "" {
		name = cfg.Name
	}
	if cfg.Checkpoint != nil {
		cfg.Checkpoint.Instrument(cfg.Obs)
	}
	in := &campaignInstr{
		o:         cfg.Obs,
		camp:      cfg.Obs.StartCampaign(name, total),
		cm:        cfg.Obs.CampaignMetrics(),
		log:       cfg.Obs.Logger().With("campaign", name),
		flight:    cfg.Obs.Flight,
		faultName: faultName,
	}
	in.camp.SetOrder(cfg.Order.String())
	in.flight.Record(obs.FlightCampaignStart, obs.FlightLabelNone, -1, -1, int64(total), 0)
	return in
}

// setup arms per-engine observability before workers start: a structured
// logger per worker engine and phase timing when the tracer wants span
// breakdowns.
func (in *campaignInstr) setup(engines []*diffprop.Engine) {
	if in == nil {
		return
	}
	trace := in.o.Tracer.Enabled()
	in.lastHits = make([]int64, len(engines))
	in.lastMisses = make([]int64, len(engines))
	in.lastVisited = make([]int64, len(engines))
	in.lastSkipped = make([]int64, len(engines))
	for w, e := range engines {
		if in.o.Log != nil {
			e.SetLogger(in.o.Log.With("worker", w))
		}
		if trace {
			e.EnablePhaseTiming(true)
		}
		// Baseline the cache and gate-walk counters at the prototype-build
		// state so the live gauges carry only campaign traffic.
		in.lastHits[w], in.lastMisses[w] = e.CacheTraffic()
		in.lastVisited[w], in.lastSkipped[w] = e.GateWalk()
		if in.flight != nil {
			worker := w
			e.Manager().SetGCHook(func(res bdd.GCResult) {
				kind := obs.FlightGC
				if res.Sifted {
					kind = obs.FlightSift
				}
				in.flight.Record(kind, obs.FlightLabelNone, worker, -1,
					int64(res.Reclaimed()), int64(res.After))
			})
		}
	}
	if len(engines) > 0 {
		in.cm.BDDTableViews.Set(int64(engines[0].Manager().Views()))
		_, buckets := engines[0].Manager().TableLoad()
		in.cm.BDDTableBuckets.Set(buckets)
	}
}

// resumed records n checkpoint-restored faults.
func (in *campaignInstr) resumed(n int) {
	if in == nil || n == 0 {
		return
	}
	in.camp.AddResumed(n)
	in.cm.FaultsDone.Add(int64(n))
	in.cm.FaultsResumed.Add(int64(n))
	in.flight.Record(obs.FlightResume, obs.FlightLabelNone, -1, -1, int64(n), 0)
	in.log.Info("checkpoint resume", "records", n)
}

func (in *campaignInstr) workerStart(w int) {
	if in == nil {
		return
	}
	in.flight.Record(obs.FlightWorkerStart, obs.FlightLabelNone, w, -1, 0, 0)
	in.log.Debug("worker start", "worker", w)
}

// workerClaim records one work-stealing block claim.
func (in *campaignInstr) workerClaim(w, lo, size int) {
	if in == nil {
		return
	}
	in.flight.Record(obs.FlightWorkerClaim, obs.FlightLabelNone, w, lo, int64(lo), int64(size))
	in.log.Debug("worker claim", "worker", w, "lo", lo, "size", size)
}

func (in *campaignInstr) workerDrain(w int) {
	if in == nil {
		return
	}
	in.flight.Record(obs.FlightWorkerDrain, obs.FlightLabelNone, w, -1, 0, 0)
	in.log.Debug("worker drain", "worker", w)
}

// faultStart opens one fault's latency measurement. The zero time (and no
// clock read) when instrumentation is off.
func (in *campaignInstr) faultStart() time.Time {
	if in == nil {
		return time.Time{}
	}
	return time.Now()
}

// faultDone records one finished fault: heartbeat, outcome counters,
// latency histogram, live node gauge, budget-blowout log, trace span.
// Called from the worker that owns e, so reading the engine is safe.
func (in *campaignInstr) faultDone(e *diffprop.Engine, worker, i int, outcome faultOutcome, start time.Time) {
	if in == nil {
		return
	}
	dur := time.Since(start)
	oc := obs.OutcomeExact
	switch outcome {
	case outcomeDegraded, outcomeDegradedAfterRetry:
		oc = obs.OutcomeApproximate
	case outcomeRescued:
		oc = obs.OutcomeRescued
	case outcomeErrored:
		oc = obs.OutcomeError
	}
	in.camp.FaultDone(oc)
	in.cm.FaultsDone.Inc()
	switch oc {
	case obs.OutcomeApproximate:
		in.cm.FaultsDegraded.Inc()
	case obs.OutcomeRescued:
		in.cm.FaultsExact.Inc()
		in.cm.FaultsRescued.Inc()
	case obs.OutcomeError:
		in.cm.FaultsErrored.Inc()
	default:
		in.cm.FaultsExact.Inc()
	}
	in.cm.FaultLatency.Observe(dur.Seconds())
	in.cm.BDDNodes.Set(int64(e.Manager().NodeCount()))
	in.cm.BDDTableEpoch.Set(int64(e.Manager().TableEpoch()))
	in.flight.Record(obs.FlightFaultDone, obs.FlightOutcomeLabel(oc), worker, i,
		dur.Microseconds(), e.AnalysisOps())
	if in.lastHits != nil && worker < len(in.lastHits) {
		h, m := e.CacheTraffic()
		in.cm.CacheHitsLive.Add(h - in.lastHits[worker])
		in.cm.CacheMissesLive.Add(m - in.lastMisses[worker])
		in.lastHits[worker], in.lastMisses[worker] = h, m
	}
	in.cm.ConeGates.Observe(float64(e.LastConeGates()))
	if in.lastVisited != nil && worker < len(in.lastVisited) {
		// Cumulative engine deltas (not LastConeGates) so retried faults
		// count every attempt's walk, keeping the counters reconcilable
		// with CampaignStats.GatesVisited/GatesSkipped at finish.
		v, sk := e.GateWalk()
		dv, ds := v-in.lastVisited[worker], sk-in.lastSkipped[worker]
		in.cm.GatesVisited.Add(dv)
		in.cm.GatesSkipped.Add(ds)
		in.camp.AddGateWalk(dv, ds)
		in.lastVisited[worker], in.lastSkipped[worker] = v, sk
	}
	_, buckets := e.Manager().TableLoad()
	in.cm.BDDTableBuckets.Set(buckets)
	switch outcome {
	case outcomeDegraded:
		in.log.Warn("fault budget blown, degraded to simulation estimate",
			"index", i, "fault", in.faultName(i), "ops_charged", e.LastAbortOps(), "elapsed", dur)
	case outcomeDegradedAfterRetry:
		in.log.Warn("fault blew the relaxed retry budget too, degraded to simulation estimate",
			"index", i, "fault", in.faultName(i), "ops_charged", e.LastAbortOps(), "elapsed", dur)
	case outcomeRescued:
		in.log.Info("fault rescued: relaxed-budget retry completed exactly",
			"index", i, "fault", in.faultName(i), "elapsed", dur)
	case outcomeErrored:
		in.log.Warn("fault analysis panicked, recorded as per-fault error",
			"index", i, "fault", in.faultName(i), "elapsed", dur)
	}
	if t := in.o.Tracer; t.Enabled() {
		ph := e.LastPhases()
		t.Emit(obs.FaultSpan{ //nolint:errcheck // tracing is best-effort
			Index:     i,
			Fault:     in.faultName(i),
			Worker:    worker,
			Outcome:   oc.String(),
			Start:     start,
			Dur:       dur,
			Build:     ph.Build,
			Propagate: ph.Propagate,
			SatCount:  ph.SatCount,
		})
	}
}

// ladderHook builds the budget-blow observer passed to analyzeStuckAt /
// analyzeBridging for fault i on worker w, or nil when nothing records
// flight events — no closure is allocated then, preserving the zero-alloc
// disabled hot path.
func (in *campaignInstr) ladderHook(w, i int) func(attempt int, ops int64) {
	if in == nil || in.flight == nil {
		return nil
	}
	return func(attempt int, ops int64) {
		in.flight.Record(obs.FlightBudgetBlow, obs.FlightLabelNone, w, i, int64(attempt), ops)
	}
}

// calibrationUpdate records one published calibration generation: the
// armed budget gauge, the update counter, and a log line tying the new
// bounds to the sample population they came from.
func (in *campaignInstr) calibrationUpdate(budgetOps int64, retryMult float64, samples int) {
	if in == nil {
		return
	}
	in.cm.CalibrationBudgetOps.Set(budgetOps)
	in.cm.CalibrationUpdates.Inc()
	in.flight.Record(obs.FlightCalibration, obs.FlightLabelNone, -1, -1, budgetOps, int64(samples))
	in.log.Info("budget calibration published",
		"budget_ops", budgetOps, "retry_multiplier", retryMult, "samples", samples)
}

// governorParked records one worker parking under heap pressure (called
// with the governor's lock held; nil-safe).
func (in *campaignInstr) governorParked(w, parked int, heap int64) {
	if in == nil {
		return
	}
	in.cm.GovernorParkEvents.Inc()
	in.cm.GovernorParked.Set(int64(parked))
	in.flight.Record(obs.FlightPark, obs.FlightLabelNone, w, -1, int64(parked), heap)
	in.log.Info("memory governor parked worker",
		"worker", w, "parked", parked, "heap_bytes", heap)
}

// governorUnparked records one worker resuming after pressure receded.
func (in *campaignInstr) governorUnparked(w, parked int) {
	if in == nil {
		return
	}
	in.cm.GovernorParked.Set(int64(parked))
	in.flight.Record(obs.FlightUnpark, obs.FlightLabelNone, w, -1, int64(parked), 0)
	in.log.Info("memory governor resumed worker", "worker", w, "parked", parked)
}

// governorHeap publishes the governor's latest heap sample.
func (in *campaignInstr) governorHeap(heap int64) {
	if in == nil {
		return
	}
	in.cm.GovernorHeapBytes.Set(heap)
}

// finish seals the heartbeat and folds the campaign totals into the
// registry-level metrics.
func (in *campaignInstr) finish(stats CampaignStats) {
	if in == nil {
		return
	}
	in.camp.Finish(stats.Canceled)
	in.cm.CampaignsRunning.Add(-1)
	finishLabel := obs.FlightLabelOK
	if stats.Canceled {
		finishLabel = obs.FlightLabelCanceled
	}
	in.cm.GateEvaluations.Add(stats.GateEvaluations)
	in.cm.BDDRebuilds.Add(int64(stats.Rebuilds))
	in.cm.BDDPeakNodes.SetMax(int64(stats.PeakNodes))
	in.cm.CacheHits.Add(stats.Cache.ApplyHits + stats.Cache.IteHits + stats.Cache.NotHits)
	in.cm.CacheMisses.Add(stats.Cache.ApplyMisses + stats.Cache.IteMisses + stats.Cache.NotMisses)
	in.cm.RecoveryRetries.Add(int64(stats.Retried))
	in.cm.RecoveryNodesReclaimed.Add(stats.NodesReclaimed)
	in.cm.RecoverySiftRuns.Add(int64(stats.Sifts))
	in.cm.ChaosInjected.Add(stats.ChaosInjected)
	snap := in.camp.Snapshot()
	in.cm.FaultsSkipped.Add(snap.Skipped)
	in.flight.Record(obs.FlightCampaignFinish, finishLabel, -1, -1, int64(stats.Faults), snap.Skipped)
	in.log.Info("campaign finished",
		"faults", stats.Faults, "degraded", stats.Degraded, "errored", stats.Errored,
		"retried", stats.Retried, "rescued", stats.Rescued,
		"resumed", stats.Resumed, "skipped", snap.Skipped, "canceled", stats.Canceled,
		"order", stats.Order.String(),
		"gates_visited", stats.GatesVisited, "gates_skipped", stats.GatesSkipped,
		"elapsed", stats.Elapsed, "gate_evals", stats.GateEvaluations,
		"rebuilds", stats.Rebuilds, "nodes_reclaimed", stats.NodesReclaimed,
		"sifts", stats.Sifts, "peak_nodes", stats.PeakNodes,
		"mem_park_events", stats.MemParkEvents,
		"chaos_injected", stats.ChaosInjected,
		"calibration_updates", stats.CalibrationUpdates,
		"cache_hit_rate", stats.Cache.HitRate())
}
