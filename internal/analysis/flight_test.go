package analysis

import (
	"context"
	"io"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/obs"
)

// countFlightKinds tallies a recorder's surviving events by kind name.
func countFlightKinds(r *obs.FlightRecorder) map[string]int {
	n := map[string]int{}
	for _, ev := range r.Snapshot() {
		n[ev.Kind]++
	}
	return n
}

// TestCampaignFlightEvents runs a 4-worker campaign with the flight
// recorder attached and reconciles the event stream against the returned
// stats: one start, one ok finish, exactly one fault event per analyzed
// fault with no duplicates, and a claim/drain trail consistent with the
// worker count.
func TestCampaignFlightEvents(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	o := &obs.Observer{
		Metrics: obs.NewRegistry(),
		Flight:  obs.NewFlightRecorder(len(fs)*4 + 256),
	}
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 4, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if _, dropped := o.Flight.Total(); dropped != 0 {
		t.Fatalf("ring wrapped (%d dropped); size the ring for the fault set", dropped)
	}

	kinds := countFlightKinds(o.Flight)
	if kinds["campaign_start"] != 1 || kinds["campaign_finish"] != 1 {
		t.Fatalf("start/finish = %d/%d, want 1/1", kinds["campaign_start"], kinds["campaign_finish"])
	}
	if kinds["worker_start"] != 4 {
		t.Fatalf("worker_start = %d, want 4", kinds["worker_start"])
	}
	if kinds["fault"] != study.Stats.Faults {
		t.Fatalf("fault events = %d, stats analyzed %d", kinds["fault"], study.Stats.Faults)
	}
	if kinds["claim"] == 0 || kinds["drain"] != 4 {
		t.Fatalf("claim/drain = %d/%d, want claims > 0 and one drain per worker", kinds["claim"], kinds["drain"])
	}

	seen := map[int]bool{}
	var outcomes = map[string]int{}
	for _, ev := range o.Flight.Snapshot() {
		switch ev.Kind {
		case "fault":
			if seen[ev.Index] {
				t.Fatalf("fault #%d recorded twice", ev.Index)
			}
			seen[ev.Index] = true
			outcomes[ev.Label]++
			if ev.Worker < 0 || ev.Worker >= 4 {
				t.Fatalf("fault #%d attributed to worker %d", ev.Index, ev.Worker)
			}
		case "campaign_start":
			if ev.A != int64(len(fs)) {
				t.Fatalf("campaign_start total = %d, want %d", ev.A, len(fs))
			}
		case "campaign_finish":
			if ev.Label != "ok" || ev.A != int64(study.Stats.Faults) {
				t.Fatalf("campaign_finish = %+v, want ok with a=%d", ev, study.Stats.Faults)
			}
		}
	}
	if len(seen) != len(fs) {
		t.Fatalf("distinct fault indices = %d, want full coverage %d", len(seen), len(fs))
	}
	exact := study.Stats.Faults - study.Stats.Degraded - study.Stats.Errored - study.Stats.Rescued
	if outcomes["exact"] != exact || outcomes["approximate"] != study.Stats.Degraded ||
		outcomes["error"] != study.Stats.Errored || outcomes["rescued"] != study.Stats.Rescued {
		t.Fatalf("outcome labels %v do not reconcile with stats %+v", outcomes, study.Stats)
	}
}

// TestDebugServerConcurrentScrapes hammers /metrics and /timeline from
// multiple goroutines while a live 4-worker campaign mutates every gauge
// they read — the -race build is the actual assertion.
func TestDebugServerConcurrentScrapes(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	o := &obs.Observer{
		Metrics: obs.NewRegistry(),
		Flight:  obs.NewFlightRecorder(0),
	}
	tl := o.StartTimeline(0, 0) // default period: samples at least once at Stop
	srv := httptest.NewServer(obs.NewMux(o))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		path := "/metrics"
		if i%2 == 1 {
			path = "/timeline"
		}
		go func(path string) {
			defer wg.Done()
			for ctx.Err() == nil {
				resp, err := srv.Client().Get(srv.URL + path)
				if err != nil {
					return // server closing down
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 4, Obs: o})
	cancel()
	wg.Wait()
	tl.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if study.Stats.Faults != len(fs) {
		t.Fatalf("campaign analyzed %d/%d faults", study.Stats.Faults, len(fs))
	}
	if len(tl.Snapshot()) == 0 {
		t.Fatal("timeline sampler took no samples")
	}
}
