package analysis

import (
	"context"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/circuits"
	"repro/internal/faults"
)

func TestParseMemLimit(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"off", 0, false},
		{"OFF", 0, false},
		{"12345", 12345, false},
		{"64B", 64, false},
		{"4KiB", 4 << 10, false},
		{"512MiB", 512 << 20, false},
		{"2GiB", 2 << 30, false},
		{"1TiB", 1 << 40, false},
		{" 512MiB ", 512 << 20, false},
		{"-1", 0, true},
		{"12MB", 0, true},
		{"abc", 0, true},
		{"9999999999TiB", 0, true},
	}
	for _, c := range cases {
		got, err := ParseMemLimit(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseMemLimit(%q) error = %v, want error=%v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseMemLimit(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEffectiveMemLimit(t *testing.T) {
	if got := effectiveMemLimit(1 << 30); got != 1<<30 {
		t.Fatalf("explicit limit = %d", got)
	}
	if got := effectiveMemLimit(-1); got != 0 {
		t.Fatalf("negative limit must disable, got %d", got)
	}
	// Zero defers to GOMEMLIMIT; the test binary normally runs without one,
	// in which case the governor stays off. Either way the result must be
	// a valid ceiling, never MaxInt64.
	if got := effectiveMemLimit(0); got == math.MaxInt64 {
		t.Fatal("MaxInt64 sentinel leaked through")
	}
}

func TestGovernorDisabledCases(t *testing.T) {
	if g := newGovernor(CampaignConfig{MemLimit: -1}, 8, nil); g != nil {
		t.Fatal("governor built with limit disabled")
	}
	if g := newGovernor(CampaignConfig{MemLimit: 1 << 30}, 1, nil); g != nil {
		t.Fatal("governor built with a single worker (nobody to park)")
	}
	// A nil governor must accept every call.
	var g *governor
	g.admit(3, nil, func() bool { return false })
	g.release()
	g.stop()
	if pe, mp := g.counters(); pe != 0 || mp != 0 {
		t.Fatal("nil governor reported counters")
	}
}

// TestGovernorParksUnderPressure pins the park behavior with an injected
// sampler that always reports a heap over the high watermark: every worker
// except worker 0 parks, the campaign still completes (on worker 0 alone —
// the progress guarantee), the park counters surface in CampaignStats, and
// the records are identical to an ungoverned run.
func TestGovernorParksUnderPressure(t *testing.T) {
	c := circuits.MustGet("c499s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	reference, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	cfg := CampaignConfig{
		Workers:   4,
		MemLimit:  1 << 30,
		MemPoll:   time.Millisecond,
		memSample: func() int64 { return 1 << 40 }, // always far over the ceiling
	}
	governed, err := RunStuckAtCampaign(c, nil, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if governed.Stats.MemParkEvents == 0 {
		t.Fatal("permanent pressure parked nobody")
	}
	if governed.Stats.MaxParked > cfg.Workers-1 {
		t.Fatalf("MaxParked = %d with %d workers; worker 0 must never park",
			governed.Stats.MaxParked, cfg.Workers)
	}
	if governed.Stats.Canceled || governed.Stats.Faults != len(fs) {
		t.Fatalf("governed campaign did not complete: %+v", governed.Stats)
	}
	if !reflect.DeepEqual(stripStatsSA(governed), stripStatsSA(reference)) {
		t.Fatal("parking changed campaign results")
	}
}

// TestGovernorUnparksWhenPressureRecedes flips the injected sampler from
// over-the-ceiling to well-under after a few ticks: parked workers must
// resume and the campaign must finish with all records intact.
func TestGovernorUnparksWhenPressureRecedes(t *testing.T) {
	c := circuits.MustGet("c499s")
	fs := faults.CheckpointStuckAts(c.Decompose2())

	var samples atomic.Int64
	cfg := CampaignConfig{
		Workers:  4,
		MemLimit: 1 << 30,
		MemPoll:  time.Millisecond,
		memSample: func() int64 {
			if samples.Add(1) <= 10 {
				return 1 << 40 // pressure for the first ~10ms
			}
			return 1 // then fully recovered
		},
	}
	governed, err := RunStuckAtCampaign(c, nil, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if governed.Stats.Canceled || governed.Stats.Faults != len(fs) {
		t.Fatalf("campaign did not complete after pressure receded: %+v", governed.Stats)
	}
	for i, r := range governed.Records {
		if r.Skipped || r.Err != "" {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
}

// TestGovernorCancellationWhileParked cancels the campaign while workers
// are held parked under permanent pressure: the campaign must drain out
// promptly instead of deadlocking on the park gate.
func TestGovernorCancellationWhileParked(t *testing.T) {
	c := circuits.MustGet("c499s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	ctx, cancel := context.WithCancel(context.Background())
	var sampled atomic.Bool
	cfg := CampaignConfig{
		Workers:  4,
		Context:  ctx,
		MemLimit: 1 << 30,
		MemPoll:  time.Millisecond,
		memSample: func() int64 {
			sampled.Store(true)
			return 1 << 40
		},
	}
	go func() {
		// Give the monitor time to raise pressure and park workers, then
		// cancel mid-campaign.
		for !sampled.Load() {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var study StuckAtStudy
	var err error
	go func() {
		study, err = RunStuckAtCampaign(c, nil, fs, cfg)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign deadlocked with workers parked after cancellation")
	}
	if err != nil {
		t.Fatal(err)
	}
	if !study.Stats.Canceled {
		t.Fatal("Canceled not set")
	}
}
