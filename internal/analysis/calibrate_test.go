package analysis

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
)

// TestCalibratorMonotoneRatchet drives the calibrator directly through a
// cheap population, an even cheaper one, and an expensive one, and checks
// the published bounds only ever ratchet upward — a re-calibration can
// never shrink the budget below one a worker may already have armed — and
// that apply arms exactly the published bounds on an engine.
func TestCalibratorMonotoneRatchet(t *testing.T) {
	cal := newCalibrator(CampaignConfig{
		Calibrate: Calibration{Enabled: true, Warmup: 4, Refresh: 4},
	}, nil)
	if cal == nil {
		t.Fatal("enabled calibration built no calibrator")
	}
	feed := func(ops int64, n int) {
		for i := 0; i < n; i++ {
			cal.observe(outcomeExact, ops)
		}
	}

	feed(1000, 4) // warmup fills: first publication
	budget, retry, updates := cal.snapshot()
	if updates != 1 {
		t.Fatalf("updates = %d after warmup, want 1", updates)
	}
	wantBudget := int64(1000 * DefaultCalibrationHeadroom)
	if budget != wantBudget {
		t.Fatalf("budget = %d, want q99 x headroom = %d", budget, wantBudget)
	}
	if retry != calRetryMin {
		t.Fatalf("retry = %v, want the %v floor (flat population has no tail)", retry, calRetryMin)
	}

	feed(10, 4) // cheaper population: derivation runs, bounds must hold
	if b, _, u := cal.snapshot(); b != wantBudget || u != 1 {
		t.Fatalf("cheap refresh moved the bounds: budget %d updates %d, want %d/1", b, u, wantBudget)
	}

	feed(100_000, 4) // expensive population: the ratchet raises
	budget2, _, updates2 := cal.snapshot()
	if budget2 <= budget || updates2 != 2 {
		t.Fatalf("expensive refresh: budget %d updates %d, want a raise past %d with 2 updates", budget2, updates2, budget)
	}

	// apply arms the published bounds; a same-generation re-apply is a no-op.
	e, err := diffprop.New(circuits.MustGet("c17"), nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := cal.apply(e, 0)
	if gen != cal.gen.Load() {
		t.Fatalf("apply returned generation %d, want %d", gen, cal.gen.Load())
	}
	if got := e.FaultBudget().Ops; got != budget2 {
		t.Fatalf("armed budget = %d, want %d", got, budget2)
	}
	if got := e.Recovery().RetryMultiplier; got != calRetryMin {
		t.Fatalf("armed retry multiplier = %v, want %v", got, calRetryMin)
	}
	if g := cal.apply(e, gen); g != gen {
		t.Fatalf("same-generation apply returned %d, want %d", g, gen)
	}
}

// TestCalibrationPinnedRetryWins checks that a campaign's own
// RetryMultiplier is never overridden by the calibrated one: calibration
// only arms the retry rung when the config left it unset.
func TestCalibrationPinnedRetryWins(t *testing.T) {
	cal := newCalibrator(CampaignConfig{
		Recovery:  diffprop.Recovery{RetryMultiplier: 3},
		Calibrate: Calibration{Enabled: true, Warmup: 2, Refresh: 2},
	}, nil)
	for i := 0; i < 4; i++ {
		cal.observe(outcomeExact, 500)
	}
	e, err := diffprop.New(circuits.MustGet("c17"), nil)
	if err != nil {
		t.Fatal(err)
	}
	cal.apply(e, 0)
	if got := e.Recovery().RetryMultiplier; got != 3 {
		t.Fatalf("calibration overrode the pinned retry multiplier: %v, want 3", got)
	}
}

// TestCalibrationZeroDegraded runs real campaigns with self-calibration
// and no hand-tuned budget, and demands zero degraded and zero errored
// faults with records bit-identical to an unbudgeted run — the calibrated
// budget must admit the circuit's whole fault population (rescuing any
// outlier via the calibrated retry rung) while still arming real bounds.
func TestCalibrationZeroDegraded(t *testing.T) {
	for _, name := range []string{"c432s", "c499s"} {
		t.Run(name, func(t *testing.T) {
			c := circuits.MustGet(name)
			fs := faults.CheckpointStuckAts(c.Decompose2())
			clean, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
				Workers:   4,
				Calibrate: Calibration{Enabled: true, Warmup: 16, Refresh: 32},
			})
			if err != nil {
				t.Fatal(err)
			}
			if study.Stats.Degraded != 0 || study.Stats.Errored != 0 {
				t.Fatalf("calibrated run: degraded=%d errored=%d, want 0/0",
					study.Stats.Degraded, study.Stats.Errored)
			}
			if study.Stats.CalibrationUpdates < 1 {
				t.Fatal("calibration never published bounds")
			}
			if study.Stats.CalibrationBudgetOps <= 0 || study.Stats.CalibrationRetryMult <= 1 {
				t.Fatalf("calibrated bounds not armed: ops=%d retry=%v",
					study.Stats.CalibrationBudgetOps, study.Stats.CalibrationRetryMult)
			}
			if !reflect.DeepEqual(study.Records, clean.Records) {
				t.Fatal("calibrated records differ from the unbudgeted run")
			}
		})
	}
}

// TestCalibrationUnderChaosStorm runs calibration and a chaos abort storm
// together over shared-table workers — the -race regression for the
// calibrated recovery ladder: re-arming happens worker-locally between
// faults, so RelaxBudget restore closures and concurrent recalibrations
// must never race or lose records.
func TestCalibrationUnderChaosStorm(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers:   4,
		Calibrate: Calibration{Enabled: true, Warmup: 8, Refresh: 8},
		Chaos: &chaos.Config{Seed: 13, Rules: []chaos.Rule{
			{Point: chaos.PointBudget, Prob: 0.25},
			{Point: chaos.PointNodeLimit, Prob: 0.1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if study.Stats.Faults != len(fs) {
		t.Fatalf("analyzed %d faults, want %d (lost records under the storm)", study.Stats.Faults, len(fs))
	}
	for i, r := range study.Records {
		if r.Skipped {
			t.Fatalf("record %d skipped; the storm lost it", i)
		}
	}
	if study.Stats.ChaosInjected == 0 {
		t.Fatal("storm injected nothing")
	}
}
