// Work-stealing parallel campaign runners.
//
// The per-fault cost of Difference Propagation is heavily skewed —
// selective trace makes faults deep in the logic roughly an order of
// magnitude costlier than shallow ones — so contiguous per-worker chunks
// leave workers idle behind the unlucky chunk. The runners here instead
// dispatch fault indices through a single atomic counter: every worker
// claims the next contiguous block of unanalyzed faults the moment it
// drains its previous one (block size shrinking as the set empties), which
// keeps all workers busy until the set is drained while results stay
// index-aligned and bit-identical to the serial runners (each fault is
// analyzed exactly, by the same record builder).
//
// Workers no longer pay full BDD re-synthesis either: one prototype engine
// is built with diffprop.New and every other worker receives a
// diffprop.Engine.Clone — a structural manager-to-manager copy, linear in
// the node count of the good functions.
package analysis

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bdd"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
)

// Workers picks a worker count: n if positive, otherwise one per CPU.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Progress observes a running campaign: done faults out of total. The
// runners invoke it serially (never from two goroutines at once), after
// every completed fault.
type Progress func(done, total int)

// CampaignConfig tunes a campaign run.
type CampaignConfig struct {
	// Workers is the number of analysis engines run in parallel
	// (0 = one per CPU; capped at the fault count).
	Workers int
	// Progress, when non-nil, is called after each analyzed fault.
	Progress Progress
}

// CampaignStats reports what a campaign actually did at runtime: scheduling
// shape, total analysis work, and the behavior of the BDD substrate
// aggregated over all worker engines. It describes how the work was
// executed, not what was computed — serial and parallel runs of the same
// fault set produce identical Records but different Stats.
type CampaignStats struct {
	// Workers is the number of engines the faults were dispatched over.
	Workers int
	// Faults is the number of faults analyzed.
	Faults int
	// GateEvaluations totals the gates whose difference function was
	// computed across all faults; selective trace skipped the rest.
	GateEvaluations int64
	// Rebuilds counts generational BDD-manager GC passes over all engines.
	Rebuilds int
	// PeakNodes is the largest node table any single engine reached.
	PeakNodes int
	// Cache aggregates BDD apply/ite/not cache hits and misses over all
	// engines.
	Cache bdd.CacheStats
	// Elapsed is the campaign wall-clock time.
	Elapsed time.Duration
}

// String renders the stats as a one-line summary for -v style output.
func (s CampaignStats) String() string {
	return fmt.Sprintf(
		"workers=%d faults=%d gate-evals=%d rebuilds=%d peak-nodes=%d cache-hit=%.1f%% elapsed=%s",
		s.Workers, s.Faults, s.GateEvaluations, s.Rebuilds, s.PeakNodes,
		100*s.Cache.HitRate(), s.Elapsed.Round(time.Millisecond))
}

// add folds one worker engine's counters into the campaign totals.
func (s *CampaignStats) add(es diffprop.Stats) {
	s.GateEvaluations += es.GateEvaluations
	s.Rebuilds += es.Rebuilds
	if es.PeakNodes > s.PeakNodes {
		s.PeakNodes = es.PeakNodes
	}
	s.Cache.Add(es.Cache)
}

// prepareEngines builds the prototype engine, runs prep on it (nil for
// none), and clones it into one engine per worker. Clones are taken
// concurrently — Transfer only reads the source — but strictly before any
// worker starts analyzing (analysis mutates the prototype's manager). The
// shared working circuit's lazy topology caches are warmed here so workers
// only ever read them.
func prepareEngines(c *netlist.Circuit, opts *diffprop.Options, workers int, prep func(*diffprop.Engine)) ([]*diffprop.Engine, error) {
	proto, err := diffprop.New(c, opts)
	if err != nil {
		return nil, fmt.Errorf("analysis: parallel run failed: %w", err)
	}
	work := proto.Circuit
	work.Fanout()
	work.Levels()
	work.MaxLevelsToPO()
	if prep != nil {
		prep(proto)
	}
	engines := make([]*diffprop.Engine, workers)
	engines[0] = proto
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			engines[w] = proto.Clone()
		}(w)
	}
	wg.Wait()
	return engines, nil
}

// runCampaign drains indices 0..total-1 through the worker engines via an
// atomic work-stealing counter. analyze(e, i) must write its result to its
// own index; it runs concurrently on distinct engines.
//
// Workers claim guided-size blocks of contiguous indices rather than
// single faults: neighboring faults share fan-out cones, so analyzing them
// on the same engine keeps its operation caches warm (single-index
// dispatch costs ~20% extra apply work on c1355s). Block size shrinks
// with the remaining work, so the tail still balances across workers.
func runCampaign(engines []*diffprop.Engine, total int, progress Progress, analyze func(e *diffprop.Engine, i int)) CampaignStats {
	start := time.Now()
	var (
		next atomic.Int64
		done atomic.Int64
		mu   sync.Mutex // serializes progress callbacks
		wg   sync.WaitGroup
	)
	for _, e := range engines {
		wg.Add(1)
		go func(e *diffprop.Engine) {
			defer wg.Done()
			for {
				lo := int(next.Load())
				if lo >= total {
					return
				}
				size := (total - lo) / (2 * len(engines))
				if size < 1 {
					size = 1
				}
				if !next.CompareAndSwap(int64(lo), int64(lo+size)) {
					continue
				}
				hi := lo + size
				if hi > total {
					hi = total
				}
				for i := lo; i < hi; i++ {
					analyze(e, i)
					if progress != nil {
						d := int(done.Add(1))
						mu.Lock()
						progress(d, total)
						mu.Unlock()
					}
				}
			}
		}(e)
	}
	wg.Wait()
	stats := CampaignStats{Workers: len(engines), Faults: total, Elapsed: time.Since(start)}
	for _, e := range engines {
		stats.add(e.Stats())
	}
	return stats
}

// RunStuckAtCampaign analyzes the fault set with work-stealing dispatch
// over cfg.Workers cloned engines and returns a study whose Records are
// bit-identical and index-aligned to the serial RunStuckAt: every fault is
// analyzed exactly, so the scheduling cannot change any result, only the
// wall clock. Fault sites must refer to the two-input decomposition of c
// (the working circuit of any engine built from c), which is
// deterministic.
func RunStuckAtCampaign(c *netlist.Circuit, opts *diffprop.Options, fs []faults.StuckAt, cfg CampaignConfig) (StuckAtStudy, error) {
	workers := Workers(cfg.Workers)
	if workers > len(fs) {
		workers = len(fs)
	}
	if workers < 1 {
		workers = 1
	}
	engines, err := prepareEngines(c, opts, workers, nil)
	if err != nil {
		return StuckAtStudy{}, err
	}
	work := engines[0].Circuit
	toPO := work.MaxLevelsToPO()
	levels := work.Levels()
	records := make([]StuckAtRecord, len(fs))
	stats := runCampaign(engines, len(fs), cfg.Progress, func(e *diffprop.Engine, i int) {
		records[i] = stuckAtRecord(e, fs[i], toPO, levels)
	})
	study := stuckAtHeader(work)
	study.Records = records
	study.Stats = stats
	return study, nil
}

// RunStuckAtParallel analyzes the fault set with `workers` engines
// (0 = one per CPU). It is RunStuckAtCampaign without progress reporting,
// kept for callers that only want to set the parallelism.
func RunStuckAtParallel(c *netlist.Circuit, opts *diffprop.Options, fs []faults.StuckAt, workers int) (StuckAtStudy, error) {
	return RunStuckAtCampaign(c, opts, fs, CampaignConfig{Workers: workers})
}

// RunBridgingCampaign is the bridging-fault counterpart of
// RunStuckAtCampaign.
func RunBridgingCampaign(c *netlist.Circuit, opts *diffprop.Options, bs []faults.Bridging, kind faults.BridgeKind, population int, sampled bool, cfg CampaignConfig) (BridgingStudy, error) {
	workers := Workers(cfg.Workers)
	if workers > len(bs) {
		workers = len(bs)
	}
	if workers < 1 {
		workers = 1
	}
	// The feedback-reachability table is built on the prototype before
	// cloning so all workers share one immutable copy instead of each
	// building its own.
	engines, err := prepareEngines(c, opts, workers, func(e *diffprop.Engine) {
		e.FeedbackChecker()
	})
	if err != nil {
		return BridgingStudy{}, err
	}
	work := engines[0].Circuit
	toPO := work.MaxLevelsToPO()
	records := make([]BridgingRecord, len(bs))
	stats := runCampaign(engines, len(bs), cfg.Progress, func(e *diffprop.Engine, i int) {
		records[i] = bridgingRecord(e, bs[i], toPO)
	})
	study := bridgingHeader(work, kind, population, sampled)
	study.Records = records
	study.Stats = stats
	return study, nil
}

// RunBridgingParallel is RunBridgingCampaign without progress reporting.
func RunBridgingParallel(c *netlist.Circuit, opts *diffprop.Options, bs []faults.Bridging, kind faults.BridgeKind, population int, sampled bool, workers int) (BridgingStudy, error) {
	return RunBridgingCampaign(c, opts, bs, kind, population, sampled, CampaignConfig{Workers: workers})
}
