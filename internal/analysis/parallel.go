// Work-stealing parallel campaign runners.
//
// The per-fault cost of Difference Propagation is heavily skewed —
// selective trace makes faults deep in the logic roughly an order of
// magnitude costlier than shallow ones — so contiguous per-worker chunks
// leave workers idle behind the unlucky chunk. The runners here instead
// dispatch fault indices through a single atomic counter: every worker
// claims the next contiguous block of unanalyzed faults the moment it
// drains its previous one (block size shrinking as the set empties), which
// keeps all workers busy until the set is drained while results stay
// index-aligned and bit-identical to the serial runners (each fault is
// analyzed exactly, by the same record builder).
//
// Workers no longer pay full BDD re-synthesis or even per-worker node
// stores: one prototype engine is built with diffprop.New and every other
// worker receives a diffprop.Engine.Share — a view onto the same
// complement-edge manager, whose sharded unique table and lossy operation
// caches are safe for concurrent use. Every canonical function is built
// once, campaign-wide. CampaignConfig.Isolate restores the historical
// diffprop.Engine.Clone path (a structural manager-to-manager copy per
// worker) for isolation or A/B measurement.
package analysis

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bdd"
	"repro/internal/chaos"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Workers picks a worker count: n if positive, otherwise one per CPU.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Progress observes a running campaign: done faults out of total. The
// runners invoke it serially (never from two goroutines at once), after
// every completed fault.
type Progress func(done, total int)

// CampaignConfig tunes a campaign run.
type CampaignConfig struct {
	// Workers is the number of analysis engines run in parallel
	// (0 = one per CPU; capped at the fault count).
	Workers int
	// Progress, when non-nil, is called after each analyzed fault.
	Progress Progress
	// Context, when non-nil, cancels the campaign: workers observe
	// cancellation between faults, the partial index-aligned study is
	// returned with unreached faults marked Skipped, and
	// CampaignStats.Canceled is set. Nil means run to completion.
	Context context.Context
	// FaultOps caps the charged BDD operations of a single fault analysis
	// and FaultTimeout its wall-clock time (zero = unlimited). A fault
	// blowing either bound degrades to a random-vector estimate marked
	// Approximate and counted in CampaignStats.Degraded.
	FaultOps     int64
	FaultTimeout time.Duration
	// Recovery configures each engine's graceful-recovery ladder between
	// "budget blown" and "degrade to simulation": a BDD node-count
	// watermark, capped sift passes, and one relaxed-budget retry (see
	// diffprop.Recovery). The zero value keeps the historical
	// degrade-immediately behavior.
	Recovery diffprop.Recovery
	// MemLimit is the campaign memory governor's heap ceiling in bytes.
	// Zero adopts GOMEMLIMIT when one is set (debug.SetMemoryLimit);
	// negative — or zero without GOMEMLIMIT — disables the governor. Near
	// the ceiling the governor parks workers (all but one) until the heap
	// recedes, trading throughput for not OOMing.
	MemLimit int64
	// MemPoll is the governor's heap sampling period (zero selects a
	// default).
	MemPoll time.Duration
	// memSample overrides the governor's heap sampler in tests.
	memSample func() int64
	// Isolate gives every worker its own cloned BDD manager (the historical
	// pre-shared-table behavior) instead of a shared view onto the
	// prototype's node store. Sharing is the default: it builds every
	// canonical function once and keeps peak heap flat as workers are
	// added. Isolation trades that for complete independence between
	// workers — useful as an A/B baseline and when a workload's recovery
	// ladders thrash the shared table.
	Isolate bool
	// FallbackVectors and FallbackSeed parameterize the degradation
	// estimate (zero selects DefaultFallbackVectors / DefaultFallbackSeed).
	// The estimate is a pure function of (circuit, vectors, seed, fault),
	// so degraded records are identical across schedules and resumes.
	FallbackVectors int
	FallbackSeed    int64
	// Checkpoint, when non-nil, persists every finished record (by fault
	// index) as it completes. A persist failure aborts the campaign.
	Checkpoint *Checkpointer
	// Resume maps fault indices to previously persisted record lines
	// (from LoadCheckpoint/ResumeCheckpoint); those indices are decoded
	// instead of re-analyzed and counted in CampaignStats.Resumed.
	Resume map[int]json.RawMessage
	// Obs, when non-nil, attaches the observability layer: a live
	// /progress heartbeat, per-fault latency and outcome metrics,
	// structured worker logs, and (when Obs.Tracer is set) one trace span
	// per fault. Nil — the default — keeps the per-fault hot path free of
	// clock reads and allocations.
	Obs *obs.Observer
	// Chaos, when non-nil, activates the deterministic fault-injection
	// harness: forced budget/node-limit aborts, worker panics, checkpoint
	// write/fsync failures, per-fault latency and governor memory-sampler
	// lies, selected by seeded per-point rules (see chaos.Config). Nil —
	// the default — compiles to literal no-ops on the per-fault hot path.
	Chaos *chaos.Config
	// Calibrate configures budget self-calibration: the per-fault op
	// budget and the ladder's retry multiplier are learned from the
	// op-cost distribution of the first Calibration.Warmup exact faults
	// (and re-derived as the campaign progresses) instead of hand-tuned
	// FaultOps/Recovery values. The zero value disables calibration.
	Calibrate Calibration
	// Order selects the fault dispatch order (see OrderPolicy). The zero
	// value, OrderIndex, keeps the historical raw-index dispatch; OrderCone
	// and OrderLevel reorder the dispatch sequence for cone locality while
	// records stay index-aligned and bit-identical to serial runs.
	Order OrderPolicy
	// FullScan switches every engine to the historical full-gate-scan
	// propagation instead of the cone-restricted worklist (see
	// diffprop.Engine.SetFullScanReference). Results are bit-identical
	// either way; the scan is kept as the differential-testing reference
	// and the seed baseline of the scheduling benchmark.
	FullScan bool
	// Name labels the campaign in heartbeats and logs. Empty selects a
	// default derived from the fault model and circuit name.
	Name string
}

// budget extracts the per-fault resource budget.
func (cfg CampaignConfig) budget() diffprop.FaultBudget {
	return diffprop.FaultBudget{Ops: cfg.FaultOps, Wall: cfg.FaultTimeout}
}

// ctx returns the configured context, defaulting to Background.
func (cfg CampaignConfig) ctx() context.Context {
	if cfg.Context != nil {
		return cfg.Context
	}
	return context.Background()
}

// CampaignStats reports what a campaign actually did at runtime: scheduling
// shape, total analysis work, and the behavior of the BDD substrate
// aggregated over all worker engines. It describes how the work was
// executed, not what was computed — serial and parallel runs of the same
// fault set produce identical Records but different Stats.
type CampaignStats struct {
	// Workers is the number of engines the faults were dispatched over.
	Workers int
	// Faults is the number of faults analyzed.
	Faults int
	// Order is the dispatch policy the faults were scheduled under.
	Order OrderPolicy
	// GateEvaluations totals the gates whose difference function was
	// computed across all faults; selective trace skipped the rest.
	GateEvaluations int64
	// GatesVisited totals the gates every propagation loop examined and
	// GatesSkipped the gates cone-restricted propagation never touched;
	// their sum is analyses × gate count, and the skipped share is the
	// structural saving over the full-scan reference.
	GatesVisited int64
	GatesSkipped int64
	// Rebuilds counts generational BDD-manager GC passes over all engines.
	Rebuilds int
	// NodesReclaimed totals the dead nodes those GC passes dropped.
	NodesReclaimed int64
	// Sifts counts recovery-ladder variable-reordering runs over all
	// engines.
	Sifts int
	// PeakNodes is the largest node table any single engine reached.
	PeakNodes int
	// Cache aggregates BDD apply/ite/not cache hits and misses over all
	// engines.
	Cache bdd.CacheStats
	// Elapsed is the campaign wall-clock time.
	Elapsed time.Duration
	// Canceled reports that the campaign's context was cancelled before
	// the fault set drained; unreached records are marked Skipped.
	Canceled bool
	// Degraded counts faults that blew their resource budget and carry a
	// simulation estimate instead of an exact detectability.
	Degraded int
	// Errored counts faults whose analysis panicked; their records carry
	// the message in Err and nothing else.
	Errored int
	// Resumed counts records restored from a checkpoint instead of being
	// re-analyzed.
	Resumed int
	// Retried counts faults re-attempted under the ladder's relaxed budget;
	// Rescued is the subset whose retry completed exactly (rescued faults
	// are counted in Faults as exact records, not in Degraded).
	Retried int
	Rescued int
	// MemParkEvents counts worker park transitions under heap pressure and
	// MaxParked the most workers simultaneously parked.
	MemParkEvents int
	MaxParked     int
	// ChaosInjected counts chaos-harness injections that fired during the
	// run (0 without a chaos config).
	ChaosInjected int64
	// CalibrationBudgetOps and CalibrationRetryMult are the self-calibrated
	// per-fault bounds at campaign end (zero when calibration is off or
	// its warmup window never filled); CalibrationUpdates counts the
	// published calibration generations.
	CalibrationBudgetOps int64
	CalibrationRetryMult float64
	CalibrationUpdates   int
}

// String renders the stats as a one-line summary for -v style output.
func (s CampaignStats) String() string {
	out := fmt.Sprintf(
		"workers=%d faults=%d gate-evals=%d rebuilds=%d peak-nodes=%d cache-hit=%.1f%% elapsed=%s",
		s.Workers, s.Faults, s.GateEvaluations, s.Rebuilds, s.PeakNodes,
		100*s.Cache.HitRate(), s.Elapsed.Round(time.Millisecond))
	if s.Order != OrderIndex {
		out += fmt.Sprintf(" order=%s", s.Order)
	}
	if total := s.GatesVisited + s.GatesSkipped; total > 0 && s.GatesSkipped > 0 {
		out += fmt.Sprintf(" cone-skip=%.1f%%", 100*float64(s.GatesSkipped)/float64(total))
	}
	if s.Resumed > 0 {
		out += fmt.Sprintf(" resumed=%d", s.Resumed)
	}
	if s.Degraded > 0 {
		out += fmt.Sprintf(" degraded=%d", s.Degraded)
	}
	if s.Retried > 0 {
		out += fmt.Sprintf(" retried=%d rescued=%d", s.Retried, s.Rescued)
	}
	if s.Sifts > 0 {
		out += fmt.Sprintf(" sifts=%d", s.Sifts)
	}
	if s.Errored > 0 {
		out += fmt.Sprintf(" errored=%d", s.Errored)
	}
	if s.MemParkEvents > 0 {
		out += fmt.Sprintf(" mem-parks=%d max-parked=%d", s.MemParkEvents, s.MaxParked)
	}
	if s.ChaosInjected > 0 {
		out += fmt.Sprintf(" chaos-injected=%d", s.ChaosInjected)
	}
	if s.CalibrationUpdates > 0 {
		out += fmt.Sprintf(" calibrated(ops=%d retry=%.0fx updates=%d)",
			s.CalibrationBudgetOps, s.CalibrationRetryMult, s.CalibrationUpdates)
	}
	if s.Canceled {
		out += " canceled"
	}
	return out
}

// EngineStats views the engine-level portion of the campaign totals as a
// diffprop.Stats — the type whose Merge method defines the one aggregation
// rule for combining per-engine counters (sum the additive counters, max
// the PeakNodes high-water mark, accumulate the cache stats). Analyses is
// left zero: CampaignStats.Faults counts faults, not engine propagations
// (one fault may run several).
func (s *CampaignStats) EngineStats() diffprop.Stats {
	return diffprop.Stats{
		GateEvaluations: s.GateEvaluations,
		GatesVisited:    s.GatesVisited,
		GatesSkipped:    s.GatesSkipped,
		Rebuilds:        s.Rebuilds,
		NodesReclaimed:  s.NodesReclaimed,
		Sifts:           s.Sifts,
		PeakNodes:       s.PeakNodes,
		Cache:           s.Cache,
	}
}

// add folds one worker engine's counters into the campaign totals via the
// shared diffprop.Stats.Merge rule.
func (s *CampaignStats) add(es diffprop.Stats) {
	agg := s.EngineStats()
	agg.Merge(es)
	s.GateEvaluations = agg.GateEvaluations
	s.GatesVisited = agg.GatesVisited
	s.GatesSkipped = agg.GatesSkipped
	s.Rebuilds = agg.Rebuilds
	s.NodesReclaimed = agg.NodesReclaimed
	s.Sifts = agg.Sifts
	s.PeakNodes = agg.PeakNodes
	s.Cache = agg.Cache
}

// prepareEngines builds the prototype engine, runs prep on it (nil for
// none), and derives one engine per worker. By default workers get
// diffprop.Engine.Share views onto the prototype's manager — one shared
// node store for the whole campaign. With isolate set, each worker
// instead receives a diffprop.Engine.Clone (a structural
// manager-to-manager copy); clones are taken concurrently — Transfer only
// reads the source — but strictly before any worker starts analyzing. The
// shared working circuit's lazy topology caches are warmed here so workers
// only ever read them.
func prepareEngines(c *netlist.Circuit, opts *diffprop.Options, workers int, isolate bool, prep func(*diffprop.Engine)) ([]*diffprop.Engine, error) {
	proto, err := diffprop.New(c, opts)
	if err != nil {
		return nil, fmt.Errorf("analysis: parallel run failed: %w", err)
	}
	work := proto.Circuit
	work.Fanout()
	work.Levels()
	work.MaxLevelsToPO()
	if prep != nil {
		prep(proto)
	}
	engines := make([]*diffprop.Engine, workers)
	engines[0] = proto
	if !isolate {
		for w := 1; w < workers; w++ {
			engines[w] = proto.Share()
		}
		return engines, nil
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			engines[w] = proto.Clone()
		}(w)
	}
	wg.Wait()
	return engines, nil
}

// runCampaign drains indices 0..total-1 through the worker engines via an
// atomic work-stealing counter. analyze(e, w, i) must write its result to
// its own index; it runs concurrently on distinct engines (w is the
// engine's worker slot, for event attribution) and reports how the
// record was produced plus any fatal persistence error. skip[i] (nil for
// none) marks indices restored from a checkpoint, which are counted as
// done without being re-analyzed.
//
// Workers claim guided-size blocks of contiguous dispatch positions
// rather than single faults: neighboring faults share fan-out cones, so
// analyzing them on the same engine keeps its operation caches warm
// (single-index dispatch costs ~20% extra apply work on c1355s). Block
// size shrinks with the remaining work, so the tail still balances across
// workers. sched (nil = index order) permutes dispatch positions into
// fault indices and aligns claims to its cone clusters; records still
// land at their original indices, so the study layout is
// schedule-independent.
//
// Workers observe cancellation of cfg's context between faults — including
// inside a claimed block — and drain out promptly, leaving the remaining
// indices untouched. A persistence error likewise stops the campaign; the
// first one is returned.
//
// inj (nil = chaos off) feeds the governor's sampler lies and the final
// injection count; the per-fault injections themselves ride in through
// the analyze closure. cal (nil = calibration off) is consulted by each
// worker between faults: one atomic generation load on the hot path, a
// re-arm of the worker's own engine when the calibrator published new
// bounds — never touching an engine whose fault is in flight.
func runCampaign(engines []*diffprop.Engine, total int, cfg CampaignConfig, skip []bool, sched *schedule, instr *campaignInstr, inj *chaos.Injector, cal *calibrator, analyze func(e *diffprop.Engine, w, i int) (faultOutcome, error)) (CampaignStats, error) {
	start := time.Now()
	ctx := cfg.ctx()
	instr.setup(engines)
	if inj.Has(chaos.PointMemSample) {
		cfg.memSample = chaosMemSample(inj, cfg.memSample)
	}
	gov := newGovernor(cfg, len(engines), instr)
	defer gov.stop()
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup

		mu       sync.Mutex // guards the counters below and serializes Progress
		done     int
		analyzed int
		degraded int
		errored  int
		resumed  int
		retried  int
		rescued  int
		firstErr error
	)
	for i := 0; i < total; i++ {
		if skip != nil && skip[i] {
			resumed++
		}
	}
	done = resumed
	instr.resumed(resumed)
	if cfg.Progress != nil && resumed > 0 {
		cfg.Progress(done, total)
	}
	halted := func() bool { return stop.Load() || ctx.Err() != nil }
	for w, e := range engines {
		wg.Add(1)
		go func(w int, e *diffprop.Engine) {
			defer wg.Done()
			defer instr.workerDrain(w)
			// A worker only returns when the fault set is drained or the
			// campaign is halting; either way any workers the governor still
			// holds parked must be woken so the campaign can finish.
			defer gov.release()
			instr.workerStart(w)
			var calGen uint64
			for {
				if halted() {
					return
				}
				gov.admit(w, e, halted)
				lo := int(next.Load())
				if lo >= total {
					return
				}
				size := (total - lo) / (2 * len(engines))
				if size < 1 {
					size = 1
				}
				hi := lo + size
				if hi > total {
					hi = total
				}
				// Cluster-aligned claiming: trim the block to the cone
				// cluster boundary before racing for it, so a cluster is
				// analyzed by one engine unless it outgrows the block.
				hi = sched.trim(lo, hi)
				if !next.CompareAndSwap(int64(lo), int64(hi)) {
					continue
				}
				instr.workerClaim(w, lo, hi-lo)
				for j := lo; j < hi; j++ {
					i := sched.index(j)
					if skip != nil && skip[i] {
						continue
					}
					if halted() {
						return
					}
					if cal != nil {
						calGen = cal.apply(e, calGen)
					}
					t0 := instr.faultStart()
					// Shared engines analyze under the table's read lock so
					// recovery ladders and governor GCs on sibling views
					// cannot re-root the good functions mid-fault. Unshared
					// engines get a no-op unlock.
					unlock := e.AnalysisLock()
					outcome, err := analyze(e, w, i)
					unlock()
					if cal != nil {
						cal.observe(outcome, e.AnalysisOps())
					}
					instr.faultDone(e, w, i, outcome, t0)
					mu.Lock()
					done++
					analyzed++
					switch outcome {
					case outcomeDegraded:
						degraded++
					case outcomeDegradedAfterRetry:
						degraded++
						retried++
					case outcomeRescued:
						retried++
						rescued++
					case outcomeErrored:
						errored++
					}
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
						stop.Store(true)
					}
					if cfg.Progress != nil {
						cfg.Progress(done, total)
					}
					mu.Unlock()
				}
			}
		}(w, e)
	}
	wg.Wait()
	gov.stop()
	stats := CampaignStats{
		Workers:  len(engines),
		Order:    cfg.Order,
		Faults:   analyzed,
		Elapsed:  time.Since(start),
		Canceled: ctx.Err() != nil,
		Degraded: degraded,
		Errored:  errored,
		Resumed:  resumed,
		Retried:  retried,
		Rescued:  rescued,
	}
	stats.MemParkEvents, stats.MaxParked = gov.counters()
	stats.ChaosInjected = inj.Injected()
	stats.CalibrationBudgetOps, stats.CalibrationRetryMult, stats.CalibrationUpdates = cal.snapshot()
	for _, e := range engines {
		stats.add(e.Stats())
	}
	instr.finish(stats)
	return stats, firstErr
}

// newCampaignInjector builds the chaos injector for one campaign run (nil
// when cfg.Chaos is unset or rule-less — every injector method is then a
// nil-receiver no-op) and attaches it to the observability logger, the
// flight recorder's injection audit trail, and the checkpointer's
// write/fsync seams.
func newCampaignInjector(cfg CampaignConfig, instr *campaignInstr) *chaos.Injector {
	inj := chaos.New(cfg.Chaos)
	if inj == nil {
		return nil
	}
	if cfg.Obs != nil {
		inj.SetLogger(cfg.Obs.Logger())
	}
	if instr != nil && instr.flight != nil {
		fl := instr.flight
		inj.SetEventHook(func(p chaos.Point, key int) {
			fl.Record(obs.FlightChaos, obs.FlightLabelByName(p.String()), -1, key, 0, 0)
		})
	}
	if cfg.Checkpoint != nil {
		cfg.Checkpoint.SetChaos(inj)
	}
	return inj
}

// chaosMemSample wraps the governor's heap sampler with the injector's
// memsample rules: a firing sample reports the rule's fake heap value,
// all others delegate to the real sampler.
func chaosMemSample(inj *chaos.Injector, next func() int64) func() int64 {
	if next == nil {
		next = heapSample
	}
	return func() int64 {
		if heap, ok := inj.MemSample(); ok {
			return heap
		}
		return next()
	}
}

// resumeDecode restores checkpointed records into their slots and returns
// the skip mask. decode(i, raw) must unmarshal raw into records[i].
func resumeDecode(total int, resume map[int]json.RawMessage, decode func(i int, raw json.RawMessage) error) ([]bool, error) {
	if len(resume) == 0 {
		return nil, nil
	}
	skip := make([]bool, total)
	for i, raw := range resume {
		if i < 0 || i >= total {
			return nil, fmt.Errorf("analysis: checkpoint record index %d out of range for %d faults", i, total)
		}
		if err := decode(i, raw); err != nil {
			return nil, fmt.Errorf("analysis: checkpoint record %d: %w", i, err)
		}
		skip[i] = true
	}
	return skip, nil
}

// RunStuckAtCampaign analyzes the fault set with work-stealing dispatch
// over cfg.Workers cloned engines and returns a study whose Records are
// bit-identical and index-aligned to the serial RunStuckAt: every fault is
// analyzed exactly, so the scheduling cannot change any result, only the
// wall clock. Fault sites must refer to the two-input decomposition of c
// (the working circuit of any engine built from c), which is
// deterministic.
func RunStuckAtCampaign(c *netlist.Circuit, opts *diffprop.Options, fs []faults.StuckAt, cfg CampaignConfig) (StuckAtStudy, error) {
	workers := Workers(cfg.Workers)
	if workers > len(fs) {
		workers = len(fs)
	}
	if workers < 1 {
		workers = 1
	}
	engines, err := prepareEngines(c, opts, workers, cfg.Isolate, nil)
	if err != nil {
		return StuckAtStudy{}, err
	}
	for _, e := range engines {
		e.SetFaultBudget(cfg.budget())
		e.SetRecovery(cfg.Recovery)
		e.SetFullScanReference(cfg.FullScan)
	}
	work := engines[0].Circuit
	toPO := work.MaxLevelsToPO()
	levels := work.Levels()
	sched := newSchedule(cfg.Order, len(fs), func(i int) int {
		return stuckAtSite(fs[i])
	}, work, engines[0].FeedbackChecker())
	records := make([]StuckAtRecord, len(fs))
	skip, err := resumeDecode(len(fs), cfg.Resume, func(i int, raw json.RawMessage) error {
		return json.Unmarshal(raw, &records[i])
	})
	if err != nil {
		return StuckAtStudy{}, err
	}
	fb := newFallback(cfg.FallbackVectors, cfg.FallbackSeed)
	if cfg.Obs != nil {
		fb.log = cfg.Obs.Log
	}
	instr := newCampaignInstr(cfg, "stuckat "+work.Name, len(fs), func(i int) string {
		return fs[i].Describe(work)
	})
	inj := newCampaignInjector(cfg, instr)
	cal := newCalibrator(cfg, instr)
	analyzed := make([]bool, len(fs))
	stats, runErr := runCampaign(engines, len(fs), cfg, skip, sched, instr, inj, cal, func(e *diffprop.Engine, w, i int) (faultOutcome, error) {
		rec, outcome := analyzeStuckAt(e, fs[i], toPO, levels, fb, chaosHook(inj, e, i), instr.ladderHook(w, i))
		records[i] = rec
		analyzed[i] = true
		if cfg.Checkpoint != nil {
			if err := cfg.Checkpoint.Append(i, rec); err != nil {
				return outcome, err
			}
		}
		return outcome, nil
	})
	for i := range records {
		if !analyzed[i] && (skip == nil || !skip[i]) {
			records[i] = StuckAtRecord{Fault: fs[i], Skipped: true}
		}
	}
	study := stuckAtHeader(work)
	study.Records = records
	study.Stats = stats
	return study, runErr
}

// RunStuckAtParallel analyzes the fault set with `workers` engines
// (0 = one per CPU). It is RunStuckAtCampaign without progress reporting,
// kept for callers that only want to set the parallelism.
func RunStuckAtParallel(c *netlist.Circuit, opts *diffprop.Options, fs []faults.StuckAt, workers int) (StuckAtStudy, error) {
	return RunStuckAtCampaign(c, opts, fs, CampaignConfig{Workers: workers})
}

// RunBridgingCampaign is the bridging-fault counterpart of
// RunStuckAtCampaign.
func RunBridgingCampaign(c *netlist.Circuit, opts *diffprop.Options, bs []faults.Bridging, kind faults.BridgeKind, population int, sampled bool, cfg CampaignConfig) (BridgingStudy, error) {
	workers := Workers(cfg.Workers)
	if workers > len(bs) {
		workers = len(bs)
	}
	if workers < 1 {
		workers = 1
	}
	// The feedback-reachability table is built on the prototype before
	// cloning so all workers share one immutable copy instead of each
	// building its own.
	engines, err := prepareEngines(c, opts, workers, cfg.Isolate, func(e *diffprop.Engine) {
		e.FeedbackChecker()
	})
	if err != nil {
		return BridgingStudy{}, err
	}
	for _, e := range engines {
		e.SetFaultBudget(cfg.budget())
		e.SetRecovery(cfg.Recovery)
		e.SetFullScanReference(cfg.FullScan)
	}
	work := engines[0].Circuit
	toPO := work.MaxLevelsToPO()
	// A bridge seeds differences at both wires; the lower one (U, earlier
	// in topological order) anchors its cluster.
	sched := newSchedule(cfg.Order, len(bs), func(i int) int {
		return bs[i].U
	}, work, engines[0].FeedbackChecker())
	records := make([]BridgingRecord, len(bs))
	skip, err := resumeDecode(len(bs), cfg.Resume, func(i int, raw json.RawMessage) error {
		return json.Unmarshal(raw, &records[i])
	})
	if err != nil {
		return BridgingStudy{}, err
	}
	fb := newFallback(cfg.FallbackVectors, cfg.FallbackSeed)
	if cfg.Obs != nil {
		fb.log = cfg.Obs.Log
	}
	instr := newCampaignInstr(cfg, "bridging "+work.Name, len(bs), func(i int) string {
		return bs[i].Describe(work)
	})
	inj := newCampaignInjector(cfg, instr)
	cal := newCalibrator(cfg, instr)
	analyzed := make([]bool, len(bs))
	stats, runErr := runCampaign(engines, len(bs), cfg, skip, sched, instr, inj, cal, func(e *diffprop.Engine, w, i int) (faultOutcome, error) {
		rec, outcome := analyzeBridging(e, bs[i], toPO, fb, chaosHook(inj, e, i), instr.ladderHook(w, i))
		records[i] = rec
		analyzed[i] = true
		if cfg.Checkpoint != nil {
			if err := cfg.Checkpoint.Append(i, rec); err != nil {
				return outcome, err
			}
		}
		return outcome, nil
	})
	for i := range records {
		if !analyzed[i] && (skip == nil || !skip[i]) {
			records[i] = BridgingRecord{Fault: bs[i], Skipped: true}
		}
	}
	study := bridgingHeader(work, kind, population, sampled)
	study.Records = records
	study.Stats = stats
	return study, runErr
}

// RunBridgingParallel is RunBridgingCampaign without progress reporting.
func RunBridgingParallel(c *netlist.Circuit, opts *diffprop.Options, bs []faults.Bridging, kind faults.BridgeKind, population int, sampled bool, workers int) (BridgingStudy, error) {
	return RunBridgingCampaign(c, opts, bs, kind, population, sampled, CampaignConfig{Workers: workers})
}
