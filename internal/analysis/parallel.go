package analysis

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
)

// Workers picks a worker count: n if positive, otherwise one per CPU.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// RunStuckAtParallel analyzes the fault set with `workers` independent
// engines (diffprop engines are single-threaded) and returns a study
// bit-identical to the serial RunStuckAt: every fault is analyzed exactly,
// so the partitioning cannot change any result, only the wall clock.
// Fault sites must refer to the two-input decomposition of c (the working
// circuit of any engine built from c), which is deterministic.
func RunStuckAtParallel(c *netlist.Circuit, opts *diffprop.Options, fs []faults.StuckAt, workers int) (StuckAtStudy, error) {
	workers = Workers(workers)
	if workers > len(fs) {
		workers = len(fs)
	}
	if workers <= 1 {
		e, err := diffprop.New(c, opts)
		if err != nil {
			return StuckAtStudy{}, err
		}
		return RunStuckAt(e, fs), nil
	}
	records := make([]StuckAtRecord, len(fs))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	var header StuckAtStudy
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e, err := diffprop.New(c, opts)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			// Contiguous chunk per worker.
			lo := w * len(fs) / workers
			hi := (w + 1) * len(fs) / workers
			sub := RunStuckAt(e, fs[lo:hi])
			copy(records[lo:hi], sub.Records)
			if w == 0 {
				mu.Lock()
				header = sub
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return StuckAtStudy{}, fmt.Errorf("analysis: parallel run failed: %w", firstErr)
	}
	header.Records = records
	return header, nil
}

// RunBridgingParallel is the bridging-fault counterpart of
// RunStuckAtParallel.
func RunBridgingParallel(c *netlist.Circuit, opts *diffprop.Options, bs []faults.Bridging, kind faults.BridgeKind, population int, sampled bool, workers int) (BridgingStudy, error) {
	workers = Workers(workers)
	if workers > len(bs) {
		workers = len(bs)
	}
	if workers <= 1 {
		e, err := diffprop.New(c, opts)
		if err != nil {
			return BridgingStudy{}, err
		}
		return RunBridging(e, bs, kind, population, sampled), nil
	}
	records := make([]BridgingRecord, len(bs))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	var header BridgingStudy
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e, err := diffprop.New(c, opts)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			lo := w * len(bs) / workers
			hi := (w + 1) * len(bs) / workers
			sub := RunBridging(e, bs[lo:hi], kind, population, sampled)
			copy(records[lo:hi], sub.Records)
			if w == 0 {
				mu.Lock()
				header = sub
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return BridgingStudy{}, fmt.Errorf("analysis: parallel run failed: %w", firstErr)
	}
	header.Records = records
	return header, nil
}
