package analysis

import (
	"reflect"
	"testing"

	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
)

// ladderOn is a fully enabled recovery ladder with bounds generous enough
// that nothing ever fires on the small circuits.
var ladderOn = diffprop.Recovery{
	NodeLimit:       1 << 22,
	SiftPasses:      diffprop.DefaultSiftPasses,
	RetryMultiplier: 8,
}

// TestLadderInvarianceWhenNoBudgetFires pins the regression contract of
// the satellite task: with no per-fault budget armed and a watermark no
// analysis reaches, campaign results on C432 and C499 are bit-identical
// with the ladder fully enabled vs disabled — the ladder must be pure
// mechanism, invisible until a bound actually fires.
func TestLadderInvarianceWhenNoBudgetFires(t *testing.T) {
	for _, name := range []string{"c432s", "c499s"} {
		c := circuits.MustGet(name)
		fs := faults.CheckpointStuckAts(c.Decompose2())
		off, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		on, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 4, Recovery: ladderOn})
		if err != nil {
			t.Fatal(err)
		}
		if on.Stats.Retried != 0 || on.Stats.Rescued != 0 || on.Stats.Sifts != 0 {
			t.Fatalf("%s: ladder fired with no budget armed: %+v", name, on.Stats)
		}
		if !reflect.DeepEqual(stripStatsSA(on), stripStatsSA(off)) {
			t.Fatalf("%s: enabling the ladder changed budget-free results", name)
		}
	}
}

// TestLadderRescuesTightBudgetC1908 is the acceptance test of the issue:
// on a C1908 stuck-at campaign under a deliberately tight FaultBudget, the
// recovery ladder converts previously Approximate records into exact
// results — CampaignStats.Degraded drops to zero and Rescued counts the
// conversions — and the rescued study is bit-identical to an unbudgeted
// run.
func TestLadderRescuesTightBudgetC1908(t *testing.T) {
	c := circuits.MustGet("c1908s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	if len(fs) > 40 {
		fs = fs[:40]
	}
	// ~100k charged ops sits under the median per-fault cost measured on
	// this circuit, so a healthy fraction of the subset blows it.
	const tightOps = 100_000

	baseline, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 3, FaultOps: tightOps})
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Stats.Degraded == 0 {
		t.Fatalf("tight %d-op budget degraded nothing; the rescue path has nothing to prove", tightOps)
	}
	if baseline.Stats.Retried != 0 {
		t.Fatalf("ladder-off campaign retried %d faults", baseline.Stats.Retried)
	}

	ladder, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers:  3,
		FaultOps: tightOps,
		Recovery: diffprop.Recovery{RetryMultiplier: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ladder.Stats.Degraded != 0 {
		t.Fatalf("ladder left %d faults degraded (baseline %d); 16x retry budget should rescue all of them",
			ladder.Stats.Degraded, baseline.Stats.Degraded)
	}
	if ladder.Stats.Rescued == 0 || ladder.Stats.Retried < ladder.Stats.Rescued {
		t.Fatalf("rescue counters inconsistent: %+v", ladder.Stats)
	}
	for i, r := range ladder.Records {
		if r.Approximate || r.Err != "" || r.Skipped {
			t.Fatalf("record %d not exact after rescue: %+v", i, r)
		}
	}

	// Rescued results are exact results: the study must match an
	// unbudgeted run bit for bit.
	exact, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripStatsSA(ladder), stripStatsSA(exact)) {
		t.Fatal("rescued study differs from the unbudgeted reference")
	}
}

// TestSerialParallelEquivalentWithLadderActive drives GC, sifting and the
// relaxed retry on every fault (a 1-op budget aborts each first attempt;
// the huge multiplier makes every retry succeed) and requires serial and
// parallel campaigns to produce identical, fully exact studies. Runs under
// -race in CI, covering the satellite's "serial==parallel with GC+sift
// active" clause.
func TestSerialParallelEquivalentWithLadderActive(t *testing.T) {
	c := circuits.MustGet("c95s")
	rec := diffprop.Recovery{NodeLimit: 1, SiftPasses: diffprop.DefaultSiftPasses, RetryMultiplier: 1e12}

	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	e.SetFaultBudget(diffprop.FaultBudget{Ops: 1})
	e.SetRecovery(rec)
	serial := RunStuckAt(e, fs)
	if got := e.Stats().Sifts; got != 1 {
		t.Fatalf("serial engine sifted %d times, want exactly 1", got)
	}

	reference, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripStatsSA(serial), stripStatsSA(reference)) {
		t.Fatal("ladder-rescued serial study differs from the unbudgeted reference")
	}

	for _, workers := range []int{2, 4} {
		par, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
			Workers:  workers,
			FaultOps: 1,
			Recovery: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		// A few trivial faults finish without charging a single op and stay
		// exact on the first attempt; everything else must be rescued.
		if par.Stats.Degraded != 0 || par.Stats.Rescued == 0 {
			t.Fatalf("workers=%d: rescue incomplete: %+v", workers, par.Stats)
		}
		if par.Stats.Sifts == 0 {
			t.Fatalf("workers=%d: sift rung never fired", workers)
		}
		if !reflect.DeepEqual(stripStatsSA(par), stripStatsSA(serial)) {
			t.Fatalf("workers=%d: parallel ladder study differs from serial", workers)
		}
	}
}

// TestLadderRescueBridging covers the bridging retry rung: a 1-op budget
// with an effectively unlimited retry must produce the exact study.
func TestLadderRescueBridging(t *testing.T) {
	c := circuits.MustGet("c95s")
	work := c.Decompose2()
	bs, pop, sampled := BridgingSet(work, faults.WiredAND, 60, 0.3, 7)
	exact, err := RunBridgingCampaign(c, nil, bs, faults.WiredAND, pop, sampled, CampaignConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rescued, err := RunBridgingCampaign(c, nil, bs, faults.WiredAND, pop, sampled, CampaignConfig{
		Workers:  2,
		FaultOps: 1,
		Recovery: diffprop.Recovery{RetryMultiplier: 1e12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rescued.Stats.Degraded != 0 || rescued.Stats.Rescued == 0 {
		t.Fatalf("bridging rescue failed: %+v", rescued.Stats)
	}
	if !reflect.DeepEqual(stripStatsBF(rescued), stripStatsBF(exact)) {
		t.Fatal("rescued bridging study differs from the unbudgeted reference")
	}
}
