// Graceful degradation and panic isolation for fault analyses.
//
// Exact Difference Propagation is worst-case exponential; Butler & Mercer
// themselves fell back to functional decomposition once circuits reached
// C499 size. The campaign layer instead bounds each fault with a resource
// budget (diffprop.FaultBudget): a fault that blows its budget is re-scored
// by a bit-parallel random-vector estimate — statistically useful exactly
// where exact analysis is infeasible, in the spirit of sampled n-detection
// analysis — and marked Approximate. Any other panic escaping a fault
// query (a feedback bridge slipping into a fault set, a malformed site) is
// converted into a per-fault error record so one bad fault cannot take
// down a campaign.
package analysis

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/bdd"
	"repro/internal/chaos"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/simulate"
)

// Defaults for the random-vector degradation estimate.
const (
	DefaultFallbackVectors = 4096
	DefaultFallbackSeed    = 1990
)

// faultOutcome classifies how one fault's record was produced.
type faultOutcome int

const (
	outcomeExact faultOutcome = iota
	outcomeDegraded
	outcomeErrored
	// outcomeRescued: the first attempt blew a resource bound but the
	// recovery ladder's relaxed-budget retry completed exactly. The record
	// is exact; the distinct outcome only feeds the rescue counters.
	outcomeRescued
	// outcomeDegradedAfterRetry: the relaxed retry also blew its bound (or
	// panicked) and the fault degraded to a simulation estimate after all.
	outcomeDegradedAfterRetry
)

// fallback lazily builds the shared simulation estimator used to re-score
// budget-blown faults. The estimator is fixed-seed and immutable once
// built, so every worker — and every resumed run — produces the same
// estimate for the same fault.
type fallback struct {
	vectors int
	seed    int64
	// log, when set before first use, is attached to the estimator inside
	// once.Do so the write happens before any concurrent estimate.
	log  *slog.Logger
	once sync.Once
	est  *simulate.Estimator
}

// newFallback applies the package defaults to zero parameters.
func newFallback(vectors int, seed int64) *fallback {
	if vectors <= 0 {
		vectors = DefaultFallbackVectors
	}
	if seed == 0 {
		seed = DefaultFallbackSeed
	}
	return &fallback{vectors: vectors, seed: seed}
}

func (fb *fallback) get(e *diffprop.Engine) *simulate.Estimator {
	fb.once.Do(func() {
		fb.est = simulate.NewEstimator(e.Circuit, fb.vectors, fb.seed)
		if fb.log != nil {
			fb.est.SetLogger(fb.log)
			fb.log.Info("fallback estimator built", "vectors", fb.vectors, "seed", fb.seed)
		}
	})
	return fb.est
}

// panicMessage renders a recovered panic value deterministically (panics
// raised by diffprop/simulate/runtime carry stable strings, which keeps
// serial and parallel error records bit-identical).
func panicMessage(r any) string {
	if err, ok := r.(error); ok {
		return err.Error()
	}
	return fmt.Sprint(r)
}

// budgetAbort reports whether a recovered panic value is one of the
// resource-bound sentinels — an ops/deadline budget blow or a node-count
// watermark trip. Both enter the degradation (or retry) path; anything
// else is a real error.
func budgetAbort(r any) bool {
	err, ok := r.(error)
	return ok && (errors.Is(err, bdd.ErrBudget) || errors.Is(err, bdd.ErrNodeLimit))
}

// tryStuckAtRecord runs the exact analysis, converting an escaping panic
// into an error after restoring the engine (which runs the ladder's GC and
// sift rungs). hook, when non-nil, runs inside the recover scope before
// the analysis — the chaos harness's per-fault seam (injected latency,
// forced aborts, worker panics); nil in normal operation.
func tryStuckAtRecord(e *diffprop.Engine, f faults.StuckAt, toPO, levels []int, hook func()) (rec StuckAtRecord, budget bool, errMsg string) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		e.Recover()
		if budgetAbort(r) {
			budget = true
			return
		}
		errMsg = panicMessage(r)
	}()
	if hook != nil {
		hook()
	}
	return stuckAtRecord(e, f, toPO, levels), false, ""
}

// tryBridgingRecord is the bridging counterpart of tryStuckAtRecord.
func tryBridgingRecord(e *diffprop.Engine, b faults.Bridging, toPO []int, hook func()) (rec BridgingRecord, budget bool, errMsg string) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		e.Recover()
		if budgetAbort(r) {
			budget = true
			return
		}
		errMsg = panicMessage(r)
	}()
	if hook != nil {
		hook()
	}
	return bridgingRecord(e, b, toPO), false, ""
}

// analyzeStuckAt produces the record for one stuck-at fault: exact when
// the analysis completes, a simulation estimate when it blows its budget,
// an error record when it panics. Shared by the serial and work-stealing
// runners. blown, when non-nil, observes each budget/node-limit abort
// with the attempt number (1 = first, 2 = relaxed retry) and the ops
// charged at abort — the flight recorder's ladder seam; nil (no
// allocation) in normal unobserved operation.
func analyzeStuckAt(e *diffprop.Engine, f faults.StuckAt, toPO, levels []int, fb *fallback, hook func(), blown func(attempt int, ops int64)) (StuckAtRecord, faultOutcome) {
	rec, budget, errMsg := tryStuckAtRecord(e, f, toPO, levels, hook)
	if errMsg != "" {
		return StuckAtRecord{Fault: f, Err: errMsg}, outcomeErrored
	}
	if !budget {
		return rec, outcomeExact
	}
	if blown != nil {
		blown(1, e.LastAbortOps())
	}
	outcome := outcomeDegraded
	// Retry rung: the GC and sift rungs already ran inside Recover; when a
	// relaxed budget is configured, re-attempt the fault once before
	// surrendering it to the estimator. The chaos hook applies to the
	// first attempt only — its injected abort is one-shot, so the retry
	// runs clean and a chaos-rescued record is bit-identical to an
	// uninjected run.
	if restore, ok := e.RelaxBudget(); ok {
		rec, budget, errMsg = tryStuckAtRecord(e, f, toPO, levels, nil)
		restore()
		if errMsg != "" {
			return StuckAtRecord{Fault: f, Err: errMsg}, outcomeErrored
		}
		if !budget {
			return rec, outcomeRescued
		}
		if blown != nil {
			blown(2, e.LastAbortOps())
		}
		outcome = outcomeDegradedAfterRetry
	}
	est := fb.get(e)
	c := e.Circuit
	dist, lvl := siteDistances(c, f, toPO, levels)
	fedSite := f.Net
	if f.IsBranch() {
		fedSite = f.Gate
	}
	// The syndrome bound is still exact: SatFrac counts over the (intact)
	// good functions without building nodes. Adherence and observability
	// need the aborted test-set BDD, so they stay unset.
	return StuckAtRecord{
		Fault:           f,
		Detectability:   est.StuckAt(f),
		UpperBound:      e.StuckAtUpperBound(f),
		ObservedPOs:     0,
		POsFed:          len(c.POsFed(fedSite)),
		MaxLevelsToPO:   dist,
		LevelFromPI:     lvl,
		IsPOFault:       !f.IsBranch() && c.IsOutput(f.Net),
		Approximate:     true,
		EstimateVectors: est.Vectors(),
	}, outcome
}

// chaosHook builds the per-fault injection hook for fault i, or nil when
// the harness is off (no closure is allocated then, preserving the
// zero-alloc hot path). The hook runs inside the try* recover scope,
// before the analysis touches the engine:
//
//   - a process-level crash (workerkill/shardtear) fires first — the
//     fault "arrives" and the worker dies before touching it, so its
//     record is exactly what a resuming worker recomputes,
//   - injected latency sleeps next (simulating a slow fault),
//   - a forced budget/node-limit abort is armed on the engine, to fire at
//     the chosen charged operation of THIS analysis only (one-shot, so
//     the ladder's retry completes exactly),
//   - an injected worker panic raises last, with a per-fault-stable error
//     so serial and parallel error records stay bit-identical.
func chaosHook(inj *chaos.Injector, e *diffprop.Engine, i int) func() {
	if inj == nil {
		return nil
	}
	return func() {
		inj.WorkerCrash(i)
		if d := inj.Latency(i); d > 0 {
			time.Sleep(d)
		}
		if at, ok := inj.BudgetAbort(i); ok {
			e.ArmChaosAbort(at, bdd.ErrBudget)
		}
		if at, ok := inj.NodeLimitAbort(i); ok {
			e.ArmChaosAbort(at, bdd.ErrNodeLimit)
		}
		if inj.Panic(i) {
			panic(fmt.Errorf("%w (fault %d)", chaos.ErrInjectedPanic, i))
		}
	}
}

// analyzeBridging is the bridging counterpart of analyzeStuckAt. A budget
// blow implies the bridge already passed the engine's feedback screen, so
// the estimator's own screen cannot fire.
func analyzeBridging(e *diffprop.Engine, b faults.Bridging, toPO []int, fb *fallback, hook func(), blown func(attempt int, ops int64)) (BridgingRecord, faultOutcome) {
	rec, budget, errMsg := tryBridgingRecord(e, b, toPO, hook)
	if errMsg != "" {
		return BridgingRecord{Fault: b, Err: errMsg}, outcomeErrored
	}
	if !budget {
		return rec, outcomeExact
	}
	if blown != nil {
		blown(1, e.LastAbortOps())
	}
	outcome := outcomeDegraded
	if restore, ok := e.RelaxBudget(); ok {
		rec, budget, errMsg = tryBridgingRecord(e, b, toPO, nil)
		restore()
		if errMsg != "" {
			return BridgingRecord{Fault: b, Err: errMsg}, outcomeErrored
		}
		if !budget {
			return rec, outcomeRescued
		}
		if blown != nil {
			blown(2, e.LastAbortOps())
		}
		outcome = outcomeDegradedAfterRetry
	}
	est := fb.get(e)
	c := e.Circuit
	fed := map[int]bool{}
	for _, po := range c.POsFed(b.U) {
		fed[po] = true
	}
	for _, po := range c.POsFed(b.V) {
		fed[po] = true
	}
	dist := toPO[b.U]
	if toPO[b.V] > dist {
		dist = toPO[b.V]
	}
	// The excitation bound |f_u XOR f_v| would need a fresh BDD build, so
	// it stays unset (AdherenceOK false marks it unusable), as do the
	// stuck-at classification and observability fields.
	return BridgingRecord{
		Fault:           b,
		Detectability:   est.Bridging(b),
		POsFed:          len(fed),
		MaxLevelsToPO:   dist,
		Approximate:     true,
		EstimateVectors: est.Vectors(),
	}, outcome
}
