package analysis

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
)

// TestBudgetDegradation forces every fault over a one-operation budget:
// records must carry simulation estimates marked Approximate instead of
// growing without bound, and CampaignStats.Degraded must count them.
func TestBudgetDegradation(t *testing.T) {
	c := circuits.MustGet("c95s")
	work := c.Decompose2()
	fs := faults.CheckpointStuckAts(work)
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 3, FaultOps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if study.Stats.Degraded == 0 {
		t.Fatal("a 1-op budget degraded nothing")
	}
	degraded := 0
	for i, r := range study.Records {
		if r.Skipped || r.Err != "" {
			t.Fatalf("record %d: unexpected skip/error %+v", i, r)
		}
		if !r.Approximate {
			continue
		}
		degraded++
		if r.EstimateVectors != DefaultFallbackVectors {
			t.Fatalf("record %d: estimate over %d vectors, want %d", i, r.EstimateVectors, DefaultFallbackVectors)
		}
		if r.Detectability < 0 || r.Detectability > 1 {
			t.Fatalf("record %d: estimate %f out of range", i, r.Detectability)
		}
		if r.MaxLevelsToPO == 0 && r.LevelFromPI == 0 && r.POsFed == 0 {
			t.Fatalf("record %d: degraded record lost its topology fields", i)
		}
	}
	if degraded != study.Stats.Degraded {
		t.Fatalf("%d Approximate records but Stats.Degraded = %d", degraded, study.Stats.Degraded)
	}

	// Degraded estimates are schedule-invariant: a serial run with the
	// same budget produces the same estimate for every degraded fault.
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaultBudget(diffprop.FaultBudget{Ops: 1})
	serial := RunStuckAt(e, fs)
	for i, r := range study.Records {
		if r.Approximate && serial.Records[i].Approximate {
			if r.Detectability != serial.Records[i].Detectability {
				t.Fatalf("record %d: parallel estimate %f != serial %f", i, r.Detectability, serial.Records[i].Detectability)
			}
		}
	}
}

// TestBudgetDegradationBridging covers the bridging degradation path.
func TestBudgetDegradationBridging(t *testing.T) {
	c := circuits.MustGet("c95s")
	work := c.Decompose2()
	bs, pop, sampled := BridgingSet(work, faults.WiredAND, 80, 0.3, 7)
	study, err := RunBridgingCampaign(c, nil, bs, faults.WiredAND, pop, sampled, CampaignConfig{Workers: 3, FaultOps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if study.Stats.Degraded == 0 {
		t.Fatal("a 1-op budget degraded nothing")
	}
	for i, r := range study.Records {
		if r.Err != "" || r.Skipped {
			t.Fatalf("record %d: unexpected error/skip %+v", i, r)
		}
		if r.Approximate && (r.Detectability < 0 || r.Detectability > 1) {
			t.Fatalf("record %d: estimate %f out of range", i, r.Detectability)
		}
	}
}

// TestFaultTimeoutSurvives runs with a hopeless 1ns wall cap: the campaign
// must finish (degrading whatever trips the deadline check) rather than
// hang or crash.
func TestFaultTimeoutSurvives(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 2, FaultTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range study.Records {
		if r.Err != "" || r.Skipped {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
}

// TestPreCanceledContext pins the cancellation contract: an already-dead
// context returns promptly with every fault marked Skipped and Canceled
// set.
func TestPreCanceledContext(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	study, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 3, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !study.Stats.Canceled {
		t.Fatal("Canceled not set")
	}
	if study.Stats.Faults != 0 {
		t.Fatalf("%d faults analyzed under a dead context", study.Stats.Faults)
	}
	if len(study.Records) != len(fs) {
		t.Fatalf("partial study has %d records, want index-aligned %d", len(study.Records), len(fs))
	}
	for i, r := range study.Records {
		if !r.Skipped {
			t.Fatalf("record %d not marked Skipped: %+v", i, r)
		}
		if r.Fault != fs[i] {
			t.Fatalf("record %d lost its fault identity", i)
		}
	}
}

// feedbackBridge finds one feedback pair in the circuit.
func feedbackBridge(t *testing.T, work *faults.Reachability, nets int, kind faults.BridgeKind) faults.Bridging {
	t.Helper()
	for u := 0; u < nets; u++ {
		for v := u + 1; v < nets; v++ {
			if work.IsFeedback(u, v) {
				return faults.Bridging{U: u, V: v, Kind: kind}
			}
		}
	}
	t.Fatal("no feedback pair found")
	return faults.Bridging{}
}

// TestPanicIsolationBridging injects a feedback bridge — which makes
// diffprop.Engine.Bridging panic — into the middle of a fault set. The
// panic must poison only its own index, serial and parallel runs must
// produce identical studies, and the campaign must report the error.
func TestPanicIsolationBridging(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	work := e.Circuit
	set, pop, sampled := BridgingSet(work, faults.WiredAND, 40, 0.3, 7)
	bad := feedbackBridge(t, faults.NewReachability(work), work.NumNets(), faults.WiredAND)
	mid := len(set) / 2
	set = append(set[:mid:mid], append([]faults.Bridging{bad}, set[mid:]...)...)

	serial := RunBridging(e, set, faults.WiredAND, pop, sampled)
	errs := serial.Errors()
	if len(errs) != 1 || errs[0].Index != mid {
		t.Fatalf("serial errors = %v, want exactly index %d", errs, mid)
	}
	if !strings.Contains(errs[0].Err, "feedback bridge") {
		t.Fatalf("error message %q does not name the cause", errs[0].Err)
	}
	for i, r := range serial.Records {
		if i != mid && (r.Err != "" || r.Skipped) {
			t.Fatalf("panic poisoned record %d too: %+v", i, r)
		}
	}

	par, err := RunBridgingParallel(c, nil, set, faults.WiredAND, pop, sampled, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Stats.Errored != 1 {
		t.Fatalf("Stats.Errored = %d, want 1", par.Stats.Errored)
	}
	if !reflect.DeepEqual(stripStatsBF(par), stripStatsBF(serial)) {
		t.Fatal("parallel study with isolated panic differs from serial")
	}
}

// TestPanicIsolationStuckAt uses an out-of-range fault site to trigger a
// runtime panic inside the analysis, for both runners.
func TestPanicIsolationStuckAt(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	bad := faults.StuckAt{Net: e.Circuit.NumNets() + 41, Gate: -1, Pin: -1}
	mid := len(fs) / 2
	fs = append(fs[:mid:mid], append([]faults.StuckAt{bad}, fs[mid:]...)...)

	serial := RunStuckAt(e, fs)
	errs := serial.Errors()
	if len(errs) != 1 || errs[0].Index != mid {
		t.Fatalf("serial errors = %v, want exactly index %d", errs, mid)
	}

	par, err := RunStuckAtParallel(c, nil, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Stats.Errored != 1 {
		t.Fatalf("Stats.Errored = %d, want 1", par.Stats.Errored)
	}
	if !reflect.DeepEqual(stripStatsSA(par), stripStatsSA(serial)) {
		t.Fatal("parallel study with isolated panic differs from serial")
	}
}

// TestProgressMonotonic is the regression test for the out-of-order
// progress bug: done must advance by exactly one per callback (the
// callback is serialized under the same lock as the increment).
func TestProgressMonotonic(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	prev := 0
	_, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers: 8,
		Progress: func(done, total int) {
			if done != prev+1 {
				t.Errorf("progress jumped from %d to %d", prev, done)
			}
			prev = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if prev != len(fs) {
		t.Fatalf("final done = %d, want %d", prev, len(fs))
	}
}
