// Cone-locality fault scheduling.
//
// The work-stealing dispatcher historically claimed contiguous blocks of
// raw fault indices. Index order follows fault-list generation order,
// which interleaves sites from unrelated regions of the circuit, so
// consecutive analyses on one worker rarely share fan-out cones and the
// shared op-cache stays colder than it needs to be. The scheduler here
// reorders the dispatch sequence by topology — clustering faults whose
// cones overlap — while keeping every record at its original index, so
// studies stay index-aligned and results remain bit-identical to the
// serial runner under any policy (each fault is still analyzed exactly
// once by the same record builder; only the visit order changes).
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/netlist"
)

// OrderPolicy selects the campaign dispatch order.
type OrderPolicy int

const (
	// OrderIndex dispatches faults in raw index order — the historical
	// behavior, and the right choice for tiny circuits (scheduling cannot
	// pay for its sort) or when replaying a chaos schedule that was
	// recorded under index order.
	OrderIndex OrderPolicy = iota
	// OrderCone clusters faults by the dominating output cone of their
	// site (the first primary output the site feeds), reverse-topological
	// within a cluster, so consecutive faults on a worker share fan-out
	// cones and reuse each other's cached difference functions.
	OrderCone
	// OrderLevel sorts faults by the topological level of their site
	// (distance from the primary inputs), clustering faults of equal
	// depth: a cheaper ordering than OrderCone that still groups
	// structurally similar faults.
	OrderLevel
)

// String names the policy as accepted by ParseOrderPolicy.
func (p OrderPolicy) String() string {
	switch p {
	case OrderCone:
		return "cone"
	case OrderLevel:
		return "level"
	default:
		return "index"
	}
}

// ParseOrderPolicy parses the -order flag value.
func ParseOrderPolicy(s string) (OrderPolicy, error) {
	switch s {
	case "", "index":
		return OrderIndex, nil
	case "cone":
		return OrderCone, nil
	case "level":
		return OrderLevel, nil
	}
	return OrderIndex, fmt.Errorf("analysis: unknown order policy %q (want index, cone or level)", s)
}

// schedule maps dispatch positions to original fault indices. perm[j] is
// the fault analyzed at position j; clusterStart[j] is the first position
// of the cluster containing j, letting the dispatcher align claimed
// blocks to cluster boundaries in O(1). A nil *schedule is the identity
// (index order) and adds nothing to the dispatch hot path.
type schedule struct {
	perm         []int
	clusterStart []int
}

// index maps a dispatch position to the original fault index.
func (s *schedule) index(j int) int {
	if s == nil {
		return j
	}
	return s.perm[j]
}

// trim aligns a tentative claim [lo,hi) to a cluster boundary: a block
// ending mid-cluster drops the partial trailing cluster (the next worker
// picks it up whole), unless the whole block lies inside one cluster —
// a cluster larger than the guided block size is split rather than
// serialized onto one worker. Never returns a bound at or below lo.
func (s *schedule) trim(lo, hi int) int {
	if s == nil || hi >= len(s.perm) {
		return hi
	}
	if cs := s.clusterStart[hi]; cs > lo && cs < hi {
		return cs
	}
	return hi
}

// newSchedule builds the dispatch order for a fault set. site(i) returns
// the fault's seed net in the working circuit (a branch fault's consumer
// gate, a bridge's lower wire). reach is only consulted for OrderCone.
// OrderIndex (and an empty set) returns nil: the identity schedule.
func newSchedule(policy OrderPolicy, total int, site func(i int) int, c *netlist.Circuit, reach *faults.Reachability) *schedule {
	if policy == OrderIndex || total == 0 {
		return nil
	}
	// key: the cluster a fault belongs to; ord: its rank within the
	// cluster. Original index breaks all remaining ties, keeping the
	// permutation deterministic for any fault set.
	key := make([]int, total)
	ord := make([]int, total)
	switch policy {
	case OrderLevel:
		levels := c.Levels()
		for i := 0; i < total; i++ {
			s := site(i)
			key[i], ord[i] = levels[s], s
		}
	case OrderCone:
		outs := c.Outputs
		for i := 0; i < total; i++ {
			s := site(i)
			// Dominating output cone: the first PO the site feeds. Sites
			// feeding no PO (structurally dead) share a trailing cluster.
			k := len(outs)
			for oi, po := range outs {
				if po == s || reach.Reaches(s, po) {
					k = oi
					break
				}
			}
			// Net ids are topological, so descending id within a cone
			// group is reverse-topological: deepest sites first, which
			// builds the cone's shared suffix functions while they are
			// hottest in the op cache.
			key[i], ord[i] = k, -s
		}
	}
	perm := make([]int, total)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ia, ib := perm[a], perm[b]
		if key[ia] != key[ib] {
			return key[ia] < key[ib]
		}
		if ord[ia] != ord[ib] {
			return ord[ia] < ord[ib]
		}
		return ia < ib
	})
	clusterStart := make([]int, total)
	start := 0
	for j := 1; j <= total; j++ {
		if j == total || key[perm[j]] != key[perm[j-1]] {
			for p := start; p < j; p++ {
				clusterStart[p] = start
			}
			start = j
		}
	}
	return &schedule{perm: perm, clusterStart: clusterStart}
}

// stuckAtSite returns the seed net of a stuck-at fault in the working
// circuit: the consumer gate for a branch fault (differences enter at its
// input pin), the faulted net itself otherwise.
func stuckAtSite(f faults.StuckAt) int {
	if f.IsBranch() {
		return f.Gate
	}
	return f.Net
}
