package analysis

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/circuits"
	"repro/internal/faults"
)

// TestKillAndResumeStuckAt simulates a crash after k persisted records —
// cancelling the campaign mid-run and appending torn garbage to the
// checkpoint, as an interrupted write would — then resumes and demands a
// study bit-identical to an uninterrupted run.
func TestKillAndResumeStuckAt(t *testing.T) {
	c := circuits.MustGet("c95s")
	work := c.Decompose2()
	fs := faults.CheckpointStuckAts(work)
	hdr := StuckAtCheckpointHeader(work, fs)
	path := filepath.Join(t.TempDir(), "sa.jsonl")

	uninterrupted, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: run with a checkpoint, cancel once k faults finished.
	cp, err := CreateCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	k := len(fs) / 3
	ctx, cancel := context.WithCancel(context.Background())
	partial, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers:    3,
		Context:    ctx,
		Checkpoint: cp,
		Progress: func(done, total int) {
			if done >= k {
				cancel()
			}
		},
	})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if !partial.Stats.Canceled {
		t.Fatal("cancelled campaign did not set Canceled")
	}
	skipped := 0
	for _, r := range partial.Records {
		if r.Skipped {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("cancelled campaign has no skipped records; cancel came too late to test resume")
	}

	// Simulate the crash tearing the final append.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"i":9999,"r":{"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Phase 2: resume and finish.
	cp2, resume, err := ResumeCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(resume) == 0 {
		t.Fatal("resume restored no records")
	}
	if _, torn := resume[9999]; torn {
		t.Fatal("torn tail line was restored")
	}
	resumed, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{
		Workers:    3,
		Checkpoint: cp2,
		Resume:     resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp2.Close(); err != nil {
		t.Fatal(err)
	}
	if resumed.Stats.Resumed != len(resume) {
		t.Fatalf("Stats.Resumed = %d, want %d", resumed.Stats.Resumed, len(resume))
	}
	if !reflect.DeepEqual(stripStatsSA(resumed), stripStatsSA(uninterrupted)) {
		t.Fatal("resumed study differs from uninterrupted run")
	}

	// The finished checkpoint alone must reconstruct every record.
	_, all, _, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(fs) {
		t.Fatalf("finished checkpoint holds %d records, want %d", len(all), len(fs))
	}
}

// TestKillAndResumeBridging is the bridging-model counterpart.
func TestKillAndResumeBridging(t *testing.T) {
	c := circuits.MustGet("c95s")
	work := c.Decompose2()
	bs, pop, sampled := BridgingSet(work, faults.WiredOR, 150, 0.3, 7)
	hdr := BridgingCheckpointHeader(work, bs)
	path := filepath.Join(t.TempDir(), "bf.jsonl")

	uninterrupted, err := RunBridgingCampaign(c, nil, bs, faults.WiredOR, pop, sampled, CampaignConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	cp, err := CreateCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	k := len(bs) / 3
	if _, err := RunBridgingCampaign(c, nil, bs, faults.WiredOR, pop, sampled, CampaignConfig{
		Workers:    3,
		Context:    ctx,
		Checkpoint: cp,
		Progress: func(done, total int) {
			if done >= k {
				cancel()
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	cp2, resume, err := ResumeCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := RunBridgingCampaign(c, nil, bs, faults.WiredOR, pop, sampled, CampaignConfig{
		Workers:    3,
		Checkpoint: cp2,
		Resume:     resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp2.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripStatsBF(resumed), stripStatsBF(uninterrupted)) {
		t.Fatal("resumed bridging study differs from uninterrupted run")
	}
}

// TestResumeRefusesMismatch pins the versioning satellite: resume against
// a different fault set, circuit, model or schema version must fail with a
// clear error instead of mixing incompatible records.
func TestResumeRefusesMismatch(t *testing.T) {
	c := circuits.MustGet("c95s").Decompose2()
	fs := faults.CheckpointStuckAts(c)
	hdr := StuckAtCheckpointHeader(c, fs)
	path := filepath.Join(t.TempDir(), "sa.jsonl")
	cp, err := CreateCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Append(0, StuckAtRecord{Fault: fs[0]}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	cases := map[string]CheckpointHeader{
		"different fault subset": StuckAtCheckpointHeader(c, fs[:len(fs)-1]),
		"different circuit":      StuckAtCheckpointHeader(circuits.MustGet("c17").Decompose2(), fs),
		"different model":        BridgingCheckpointHeader(c, nil),
		"different version": func() CheckpointHeader {
			h := hdr
			h.Version = CheckpointVersion + 1
			return h
		}(),
		"same size, different faults": func() CheckpointHeader {
			mut := append([]faults.StuckAt(nil), fs...)
			mut[0].Stuck = !mut[0].Stuck
			return StuckAtCheckpointHeader(c, mut)
		}(),
	}
	for name, want := range cases {
		if _, _, err := ResumeCheckpoint(path, want); err == nil {
			t.Errorf("%s: resume accepted a mismatched checkpoint", name)
		}
	}

	// The matching header still resumes.
	cp2, resume, err := ResumeCheckpoint(path, hdr)
	if err != nil {
		t.Fatalf("matching header refused: %v", err)
	}
	if len(resume) != 1 {
		t.Fatalf("restored %d records, want 1", len(resume))
	}
	cp2.Close()
}

// TestResumeOutOfRangeIndex ensures a checkpoint record pointing past the
// fault set is rejected before any analysis starts.
func TestResumeOutOfRangeIndex(t *testing.T) {
	c := circuits.MustGet("c17")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	resume := map[int]json.RawMessage{len(fs) + 5: json.RawMessage(`{}`)}
	if _, err := RunStuckAtCampaign(c, nil, fs, CampaignConfig{Resume: resume}); err == nil {
		t.Fatal("out-of-range resume index was accepted")
	}
}
