// Shard partitioning and merging for supervised multi-process campaigns.
//
// A supervised campaign splits the fault set into contiguous global
// ranges [lo, hi); each range becomes one worker subprocess analyzing its
// faults as LOCAL indices 0..hi-lo-1 against a per-shard checkpoint
// (header fingerprinted over exactly that subset, marked with
// CheckpointHeader.WithShard). The helpers here are the pure data side of
// that scheme — partitioning, rebasing local records to global indices,
// slicing a parent shard's progress into a bisected child, and writing a
// merged record map back out as a whole-campaign checkpoint — so the
// supervisor (internal/supervise) and tests share one definition of the
// index arithmetic.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// PartitionFaults splits total faults into at most shards contiguous
// global ranges [lo, hi), each within one fault of total/shards long, in
// ascending order and covering every index exactly once. Fewer ranges
// come back when there are fewer faults than requested shards; zero
// faults yield no ranges.
func PartitionFaults(total, shards int) [][2]int {
	if total <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > total {
		shards = total
	}
	ranges := make([][2]int, 0, shards)
	base, extra := total/shards, total%shards
	lo := 0
	for s := 0; s < shards; s++ {
		size := base
		if s < extra {
			size++
		}
		ranges = append(ranges, [2]int{lo, lo + size})
		lo += size
	}
	return ranges
}

// MergeShardRecords rebases one shard's local-index records onto the
// global index space, folding them into dst (created when nil). A local
// index i becomes global lo+i; a global index outside [lo, hi) means the
// shard file disagrees with its declared range and is rejected.
func MergeShardRecords(dst map[int]json.RawMessage, shard map[int]json.RawMessage, lo, hi int) (map[int]json.RawMessage, error) {
	if dst == nil {
		dst = make(map[int]json.RawMessage, len(shard))
	}
	for i, raw := range shard {
		g := lo + i
		if g < lo || g >= hi {
			return dst, fmt.Errorf("analysis: shard [%d,%d) record at local index %d falls outside the shard", lo, hi, i)
		}
		dst[g] = raw
	}
	return dst, nil
}

// ExtractShardRecords slices a parent shard's local-index records down to
// the child range [lo, hi) — both expressed in the PARENT's local index
// space — rebasing them to the child's own local indices. Bisection uses
// this to seed each child checkpoint with the faults the parent already
// finished, so no completed work is recomputed.
func ExtractShardRecords(parent map[int]json.RawMessage, lo, hi int) map[int]json.RawMessage {
	child := make(map[int]json.RawMessage)
	for i, raw := range parent {
		if i >= lo && i < hi {
			child[i-lo] = raw
		}
	}
	return child
}

// MissingRecords returns the indices in [0, total) absent from records,
// ascending. A supervised merge uses it to refuse to declare a campaign
// complete while any fault lacks a record.
func MissingRecords(records map[int]json.RawMessage, total int) []int {
	var missing []int
	for i := 0; i < total; i++ {
		if _, ok := records[i]; !ok {
			missing = append(missing, i)
		}
	}
	return missing
}

// WriteMergedCheckpoint writes a record map as a complete checkpoint file
// — header line, then one record line per index in ascending order — and
// syncs it durably (file and parent directory). The supervisor writes the
// merged global map this way so a supervised campaign leaves behind the
// same artifact a single-process -checkpoint run would, resumable and
// obsreport-compatible; bisection writes child seeds the same way. Record
// bytes are preserved verbatim, so a record round-trips bit-identically
// from the shard file to the merged file.
func WriteMergedCheckpoint(path string, hdr CheckpointHeader, records map[int]json.RawMessage) error {
	cp, err := CreateCheckpoint(path, hdr)
	if err != nil {
		return err
	}
	idx := make([]int, 0, len(records))
	for i := range records {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		if err := cp.Append(i, records[i]); err != nil {
			cp.Close()
			return err
		}
	}
	return cp.Close()
}
