// Campaign checkpointing: crash-safe JSONL persistence of finished fault
// records, and resume support that refuses mismatched fault sets.
//
// File format: the first line is a CheckpointHeader (schema version plus a
// fingerprint of the circuit and the exact fault set); every following
// line is one {"i":<fault index>,"r":<record>} pair, appended the moment
// the fault finishes. The work-stealing scheduler makes record order
// irrelevant — each line is self-identifying — so a resumed campaign only
// needs the set of persisted indices, not their sequence. Appends are
// single write(2) calls with a periodic fsync, and loading tolerates a
// torn final line (a crash mid-append), which the resuming writer then
// truncates away before continuing.
package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/chaos"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// CheckpointError is the typed error a campaign aborts with when
// persisting a finished record fails: a failed or short write(2), a
// failed fsync, or an injected chaos failure. The campaign still returns
// its partial index-aligned study — every record analyzed before the
// failure is present, unreached ones are marked Skipped — so callers can
// distinguish "disk died" (inspect with errors.As) from a bad result set.
type CheckpointError struct {
	// Op is the failed operation: "append" or "fsync".
	Op string
	// Index is the fault index being persisted (-1 when the failure is
	// not tied to one record).
	Index int
	// Err is the underlying I/O (or injected) error.
	Err error
}

func (e *CheckpointError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("analysis: checkpoint %s of fault %d failed: %v (campaign aborted with partial results)", e.Op, e.Index, e.Err)
	}
	return fmt.Sprintf("analysis: checkpoint %s failed: %v (campaign aborted with partial results)", e.Op, e.Err)
}

func (e *CheckpointError) Unwrap() error { return e.Err }

// RecordIndexError is the typed error LoadCheckpoint returns when a fully
// decoded record line carries a fault index outside the header's declared
// fault count. Unlike a torn tail (a crash artifact, tolerated), an
// out-of-range index on an intact line means the file is corrupt or was
// written for a different fault set: admitting it into the record map
// would either be silently dropped or clobber a legitimate record on
// resume.
type RecordIndexError struct {
	// Path is the checkpoint file.
	Path string
	// Index is the offending record index.
	Index int
	// Faults is the header's fault count (valid indices are [0, Faults)).
	Faults int
}

func (e *RecordIndexError) Error() string {
	return fmt.Sprintf("analysis: checkpoint %s: record index %d outside the header's %d faults (corrupt file or wrong fault set)", e.Path, e.Index, e.Faults)
}

// CheckpointVersion is the schema version written to (and required from)
// checkpoint headers.
const CheckpointVersion = 1

// DefaultFsyncEvery is the default append-to-fsync cadence.
const DefaultFsyncEvery = 32

// CheckpointHeader identifies what a checkpoint file holds: the schema
// version, the fault model, and a fingerprint binding it to one circuit
// and one exact fault set. Resume refuses any mismatch — record indices
// are only meaningful against the fault set they were computed from.
type CheckpointHeader struct {
	Version     int    `json:"version"`
	Kind        string `json:"kind"` // "stuckat" or "bridging"
	Circuit     string `json:"circuit"`
	Faults      int    `json:"faults"`
	Fingerprint string `json:"fingerprint"`
	// Shard marks a per-shard checkpoint written by a supervised worker:
	// "lo-hi" names the global fault range [lo, hi) whose faults this file
	// holds under LOCAL indices 0..hi-lo-1 (Faults and Fingerprint then
	// cover the shard's subset, not the whole campaign). Empty for
	// whole-campaign checkpoints; resume refuses a shard/whole mismatch
	// like any other header disagreement.
	Shard string `json:"shard,omitempty"`
}

// WithShard marks the header as covering the global fault range [lo, hi)
// of a sharded campaign. The header must already have been built over
// exactly that subset of the fault set (its count and fingerprint stay
// untouched).
func (h CheckpointHeader) WithShard(lo, hi int) CheckpointHeader {
	h.Shard = fmt.Sprintf("%d-%d", lo, hi)
	return h
}

// StuckAtCheckpointHeader builds the header for a stuck-at campaign over
// the working circuit c and fault set fs (in campaign index order).
func StuckAtCheckpointHeader(c *netlist.Circuit, fs []faults.StuckAt) CheckpointHeader {
	h := sha256.New()
	fmt.Fprintf(h, "stuckat|%s|%d|%d\n", c.Name, c.NumNets(), len(fs))
	for _, f := range fs {
		fmt.Fprintf(h, "%d,%d,%d,%t\n", f.Net, f.Gate, f.Pin, f.Stuck)
	}
	return CheckpointHeader{
		Version:     CheckpointVersion,
		Kind:        "stuckat",
		Circuit:     c.Name,
		Faults:      len(fs),
		Fingerprint: hex.EncodeToString(h.Sum(nil)[:16]),
	}
}

// BridgingCheckpointHeader builds the header for a bridging campaign.
func BridgingCheckpointHeader(c *netlist.Circuit, bs []faults.Bridging) CheckpointHeader {
	h := sha256.New()
	fmt.Fprintf(h, "bridging|%s|%d|%d\n", c.Name, c.NumNets(), len(bs))
	for _, b := range bs {
		fmt.Fprintf(h, "%d,%d,%d\n", b.U, b.V, b.Kind)
	}
	return CheckpointHeader{
		Version:     CheckpointVersion,
		Kind:        "bridging",
		Circuit:     c.Name,
		Faults:      len(bs),
		Fingerprint: hex.EncodeToString(h.Sum(nil)[:16]),
	}
}

// checkpointLine is one persisted record: the fault's campaign index and
// the marshaled record.
type checkpointLine struct {
	Index  int             `json:"i"`
	Record json.RawMessage `json:"r"`
}

// Checkpointer appends finished fault records to a JSONL checkpoint file.
// Append is safe for concurrent use by the campaign workers; each record
// becomes exactly one write(2) call, so a crash can tear at most the final
// line, which LoadCheckpoint tolerates.
type Checkpointer struct {
	// FsyncEvery is the number of appends between fsync calls (set before
	// the campaign starts; DefaultFsyncEvery when constructed by this
	// package, 0 disables periodic fsync — Close still syncs).
	FsyncEvery int

	// Log, Appends, Fsyncs and Flight are optional observability hooks,
	// wired by Instrument (or by hand) before the campaign starts. All
	// nil-safe.
	Log     *slog.Logger
	Appends *obs.Counter
	Fsyncs  *obs.Counter
	Flight  *obs.FlightRecorder

	mu       sync.Mutex
	f        *os.File
	dir      string // parent directory, fsynced on create and Close
	appended int

	// err poisons the checkpointer after the first write/fsync failure:
	// a failed append may have left a torn line, and only the FINAL line
	// of a checkpoint may be torn (LoadCheckpoint's crash-tolerance
	// contract), so appending anything after a failure would corrupt the
	// file. Every later Append returns the original error.
	err *CheckpointError

	// inj, when non-nil, lets the chaos harness fail or tear individual
	// writes and fsyncs (SetChaos).
	inj *chaos.Injector
}

// SetChaos attaches a chaos injector whose ckptwrite/ckptsync rules fail
// individual appends and fsyncs. Wired by the campaign runners before
// workers start; nil detaches.
func (cp *Checkpointer) SetChaos(inj *chaos.Injector) {
	cp.mu.Lock()
	cp.inj = inj
	cp.mu.Unlock()
}

// Err returns the persistence failure that poisoned the checkpointer, or
// nil while it is healthy.
func (cp *Checkpointer) Err() error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.err == nil {
		return nil
	}
	return cp.err
}

// Instrument wires the checkpointer into an observer: checkpoint I/O
// counters and a structured logger. Safe to call more than once; a nil
// observer is a no-op.
func (cp *Checkpointer) Instrument(o *obs.Observer) {
	if o == nil {
		return
	}
	cm := o.CampaignMetrics()
	cp.Appends = cm.CheckpointAppends
	cp.Fsyncs = cm.CheckpointFsyncs
	cp.Flight = o.Flight
	cp.Log = o.Log
}

// syncDir fsyncs a directory so the directory entries themselves — a
// freshly created checkpoint's name, its final length — survive a crash
// plus power loss, not just the file's own data blocks. Filesystems
// without directory fsync (it is Linux/POSIX behavior) surface EINVAL or
// ENOTSUP here; that is reported, not ignored, since the caller asked for
// the durability guarantee.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// CreateCheckpoint starts a fresh checkpoint file (truncating any existing
// one), persists the header immediately, and fsyncs the parent directory
// so the file's very existence survives a crash — without the directory
// sync, a power cut after f.Sync can still lose the name and with it
// every record the campaign goes on to append.
func CreateCheckpoint(path string, hdr CheckpointHeader) (*Checkpointer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("analysis: create checkpoint: %w", err)
	}
	line, err := json.Marshal(hdr)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("analysis: marshal checkpoint header: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("analysis: write checkpoint header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("analysis: sync checkpoint header: %w", err)
	}
	dir := filepath.Dir(path)
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("analysis: sync checkpoint directory: %w", err)
	}
	return &Checkpointer{f: f, dir: dir, FsyncEvery: DefaultFsyncEvery}, nil
}

// Append persists one finished record under its fault index. The first
// write or fsync failure — including a short write, which leaves a torn
// final line exactly like a crash — poisons the checkpointer: the typed
// *CheckpointError is returned now and from every later Append, so the
// campaign aborts cleanly with partial index-aligned results instead of
// silently dropping records or corrupting the file past the tear.
func (cp *Checkpointer) Append(index int, record any) error {
	raw, err := json.Marshal(record)
	if err != nil {
		return fmt.Errorf("analysis: marshal checkpoint record %d: %w", index, err)
	}
	line, err := json.Marshal(checkpointLine{Index: index, Record: raw})
	if err != nil {
		return fmt.Errorf("analysis: marshal checkpoint line %d: %w", index, err)
	}
	buf := append(line, '\n')
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.err != nil {
		return cp.err
	}
	if cp.inj != nil {
		if keep, cerr := cp.inj.CheckpointWrite(); cerr != nil {
			if keep > len(buf) {
				keep = len(buf)
			}
			if keep > 0 {
				// A torn write: part of the line reaches the disk before the
				// failure, as a real crash or ENOSPC mid-write would leave it.
				cp.f.Write(buf[:keep]) //nolint:errcheck // best-effort tear
			}
			return cp.poison("append", index, cerr)
		}
	}
	n, werr := cp.f.Write(buf)
	if werr == nil && n < len(buf) {
		werr = io.ErrShortWrite
	}
	if werr != nil {
		return cp.poison("append", index, werr)
	}
	cp.appended++
	cp.Appends.Inc()
	cp.Flight.Record(obs.FlightCheckpointAppend, obs.FlightLabelNone, -1, index, int64(len(buf)), 0)
	if cp.FsyncEvery > 0 && cp.appended%cp.FsyncEvery == 0 {
		if err := cp.sync(); err != nil {
			return cp.poison("fsync", index, err)
		}
		if cp.Log != nil {
			cp.Log.Debug("checkpoint fsync", "appended", cp.appended)
		}
	}
	return nil
}

// sync runs one fsync (under mu), consulting the chaos injector first.
func (cp *Checkpointer) sync() error {
	if cp.inj != nil {
		if err := cp.inj.CheckpointSync(); err != nil {
			return err
		}
	}
	if err := cp.f.Sync(); err != nil {
		return err
	}
	cp.Fsyncs.Inc()
	cp.Flight.Record(obs.FlightCheckpointFsync, obs.FlightLabelNone, -1, -1, int64(cp.appended), 0)
	return nil
}

// poison records the first persistence failure (under mu) and returns it.
func (cp *Checkpointer) poison(op string, index int, err error) *CheckpointError {
	cp.err = &CheckpointError{Op: op, Index: index, Err: err}
	label := obs.FlightLabelAppend
	if op == "fsync" {
		label = obs.FlightLabelFsync
	}
	cp.Flight.Record(obs.FlightCheckpointError, label, -1, index, 0, 0)
	if cp.Log != nil {
		cp.Log.Error("checkpoint poisoned", "op", op, "index", index, "err", err)
	}
	return cp.err
}

// TearTail appends n unterminated garbage bytes to the checkpoint file —
// the prefix of a record line that a crash interrupted mid-write — and
// flushes them to disk, bypassing the Append poisoning machinery. This is
// the chaos harness's shardtear seam (Config.Tear): the writer is about
// to be SIGKILLed, so the tear must actually reach the disk for the
// resuming worker's torn-tail truncation to have something to truncate.
// Nil-safe and a no-op on a closed checkpointer or n <= 0.
func (cp *Checkpointer) TearTail(n int) {
	if cp == nil || n <= 0 {
		return
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.f == nil {
		return
	}
	buf := make([]byte, n)
	copy(buf, `{"i":`)
	for i := len(`{"i":`); i < n; i++ {
		buf[i] = '9'
	}
	cp.f.Write(buf) //nolint:errcheck // best-effort: the process dies next
	cp.f.Sync()     //nolint:errcheck
}

// Close syncs and closes the checkpoint file, then fsyncs its parent
// directory so the finished file's directory entry is as durable as its
// contents. A poisoned checkpointer skips the syncs (the failure was
// already surfaced by Append; the file keeps its valid prefix plus at
// most one torn final line, which resume truncates) and closes without
// reporting a second error.
func (cp *Checkpointer) Close() error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.f == nil {
		return nil
	}
	f := cp.f
	if cp.err != nil {
		cp.f = nil
		f.Close()
		return nil
	}
	if err := cp.sync(); err != nil {
		cp.f = nil
		f.Close()
		return cp.poison("fsync", -1, err)
	}
	cp.f = nil
	if err := f.Close(); err != nil {
		return fmt.Errorf("analysis: close checkpoint: %w", err)
	}
	if cp.dir != "" {
		if err := syncDir(cp.dir); err != nil {
			return fmt.Errorf("analysis: sync checkpoint directory: %w", err)
		}
	}
	return nil
}

// LoadCheckpoint reads a checkpoint file: its header, the persisted
// records by fault index (when an index appears twice the later line
// wins), and the byte offset where valid content ends. A torn final line
// — no trailing newline, or undecodable JSON from a crash mid-append — is
// tolerated: loading stops there and validEnd excludes it. An intact line
// whose index falls outside the header's fault count is NOT tolerated:
// that is corruption, not a crash artifact, and loading fails with a
// *RecordIndexError instead of silently admitting the record.
func LoadCheckpoint(path string) (hdr CheckpointHeader, records map[int]json.RawMessage, validEnd int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return CheckpointHeader{}, nil, 0, fmt.Errorf("analysis: read checkpoint: %w", err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return CheckpointHeader{}, nil, 0, fmt.Errorf("analysis: checkpoint %s: missing header line", path)
	}
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return CheckpointHeader{}, nil, 0, fmt.Errorf("analysis: checkpoint %s: bad header: %w", path, err)
	}
	records = make(map[int]json.RawMessage)
	validEnd = int64(nl + 1)
	rest := data[nl+1:]
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail: line never finished
		}
		var line checkpointLine
		if err := json.Unmarshal(rest[:nl], &line); err != nil {
			break // torn tail: overwritten or truncated mid-write
		}
		if line.Index < 0 || line.Index >= hdr.Faults {
			return CheckpointHeader{}, nil, 0, &RecordIndexError{Path: path, Index: line.Index, Faults: hdr.Faults}
		}
		records[line.Index] = line.Record
		validEnd += int64(nl + 1)
		rest = rest[nl+1:]
	}
	return hdr, records, validEnd, nil
}

// ResumeCheckpoint opens a checkpoint for continuation. A missing file
// starts a fresh checkpoint with no restored records. An existing file is
// validated against the expected header — version, fault model, circuit,
// fault count and fault-set fingerprint must all match, otherwise resume
// is refused with an error saying which field disagrees — then truncated
// past any torn tail and reopened for appending. The returned records map
// feeds CampaignConfig.Resume.
func ResumeCheckpoint(path string, want CheckpointHeader) (*Checkpointer, map[int]json.RawMessage, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		cp, err := CreateCheckpoint(path, want)
		return cp, nil, err
	}
	hdr, records, validEnd, err := LoadCheckpoint(path)
	if err != nil {
		return nil, nil, err
	}
	switch {
	case hdr.Version != want.Version:
		err = fmt.Errorf("schema version %d, want %d", hdr.Version, want.Version)
	case hdr.Kind != want.Kind:
		err = fmt.Errorf("fault model %q, want %q", hdr.Kind, want.Kind)
	case hdr.Circuit != want.Circuit:
		err = fmt.Errorf("circuit %q, want %q", hdr.Circuit, want.Circuit)
	case hdr.Faults != want.Faults:
		err = fmt.Errorf("%d faults, want %d", hdr.Faults, want.Faults)
	case hdr.Fingerprint != want.Fingerprint:
		err = fmt.Errorf("fault-set fingerprint %s, want %s (same size but different faults)", hdr.Fingerprint, want.Fingerprint)
	case hdr.Shard != want.Shard:
		err = fmt.Errorf("shard range %q, want %q", hdr.Shard, want.Shard)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: cannot resume %s: checkpoint has %v; it was written for a different fault set", path, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: reopen checkpoint: %w", err)
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("analysis: truncate torn checkpoint tail: %w", err)
	}
	if _, err := f.Seek(validEnd, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("analysis: seek checkpoint: %w", err)
	}
	return &Checkpointer{f: f, dir: filepath.Dir(path), FsyncEvery: DefaultFsyncEvery}, records, nil
}

// DropDegradedRecords removes non-exact records — Approximate (budget
// blown, simulation estimate), Err (panic isolated) and Skipped (campaign
// cancelled) — from a loaded checkpoint's record map, so a resumed run
// re-attempts those faults instead of carrying the degraded results
// forward (the -retry-degraded flag). The map is mutated in place; the
// checkpoint file itself is untouched — re-analyzed faults append fresh
// lines and the later line wins on reload, keeping the fingerprint and
// format fully compatible. Returns how many records were dropped.
func DropDegradedRecords(records map[int]json.RawMessage) (dropped int, err error) {
	for i, raw := range records {
		var marker struct {
			Approximate bool
			Err         string
			Skipped     bool
		}
		if err := json.Unmarshal(raw, &marker); err != nil {
			return dropped, fmt.Errorf("analysis: checkpoint record %d: %w", i, err)
		}
		if marker.Approximate || marker.Err != "" || marker.Skipped {
			delete(records, i)
			dropped++
		}
	}
	return dropped, nil
}
