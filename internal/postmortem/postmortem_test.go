package postmortem_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/chaos"
	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/postmortem"
)

// TestFlightDumpRoundTrip runs a campaign under scripted chaos with the
// flight recorder on, writes the dump, re-reads it through the analyzer,
// and demands the report reconcile exactly: same fault count, every
// chaos injection present and correlated, every report section rendered.
func TestFlightDumpRoundTrip(t *testing.T) {
	c := circuits.MustGet("c95s")
	fs := faults.CheckpointStuckAts(c.Decompose2())
	o := &obs.Observer{Metrics: obs.NewRegistry(), Flight: obs.NewFlightRecorder(0)}
	study, err := analysis.RunStuckAtCampaign(c, nil, fs, analysis.CampaignConfig{
		Workers:  4,
		Obs:      o,
		Order:    analysis.OrderCone,
		FaultOps: 50_000_000,
		Recovery: diffprop.Recovery{RetryMultiplier: 8},
		Chaos: &chaos.Config{Seed: 7, Rules: []chaos.Rule{
			{Point: chaos.PointBudget, Indices: []int{2, 5}, AtOp: 3},
			{Point: chaos.PointLatency, Indices: []int{7}, Latency: 0},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if study.Stats.ChaosInjected != 3 {
		t.Fatalf("ChaosInjected = %d, want the 3 scripted injections", study.Stats.ChaosInjected)
	}

	path := filepath.Join(t.TempDir(), "run.flight.json")
	if ok, err := o.WriteFlightDump(path, "test", "completed"); err != nil || !ok {
		t.Fatalf("WriteFlightDump = (%v, %v)", ok, err)
	}
	dump, err := obs.ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	faultEvents := 0
	for _, ev := range dump.Events {
		if ev.Kind == "fault" {
			faultEvents++
		}
	}
	if faultEvents != study.Stats.Faults {
		t.Fatalf("dump carries %d fault events, campaign analyzed %d", faultEvents, study.Stats.Faults)
	}

	rep, err := postmortem.Analyze([]*obs.FlightDump{dump}, postmortem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsAnalyzed != study.Stats.Faults || rep.DuplicateFaults != 0 {
		t.Fatalf("report counts %d faults (%d dup), campaign analyzed %d",
			rep.FaultsAnalyzed, rep.DuplicateFaults, study.Stats.Faults)
	}
	if rep.ChaosInjected != 3 || rep.ChaosUncorrelated != 0 {
		t.Fatalf("chaos audit = %d injected / %d uncorrelated, want 3/0",
			rep.ChaosInjected, rep.ChaosUncorrelated)
	}
	total := 0
	for _, n := range rep.Outcomes {
		total += n
	}
	if total != study.Stats.Faults {
		t.Fatalf("outcome breakdown sums to %d, want %d", total, study.Stats.Faults)
	}
	for _, section := range []string{
		"## Run overview", "## Outcomes", "## Fault latency", "## Throughput",
		"## Worker utilization", "## Rescue ladder", "most expensive faults",
		"## Checkpoint I/O", "## Scheduling", "## Chaos audit", "## Anomalies",
	} {
		if !strings.Contains(rep.Markdown, section) {
			t.Errorf("report is missing section %q", section)
		}
	}
	if !strings.Contains(rep.Markdown, "| cone |") {
		t.Error("scheduling section does not report the cone dispatch policy")
	}
}

// TestSchedulingSectionAndAnomaly feeds synthetic campaign heartbeats to
// the analyzer: a healthy cone-ordered campaign renders its walk footprint
// in the scheduling table, while a reordered campaign that skipped almost
// nothing must raise the ineffective-scheduling anomaly.
func TestSchedulingSectionAndAnomaly(t *testing.T) {
	d := &obs.FlightDump{
		Program: "test", Reason: "completed",
		Campaigns: []obs.CampaignSnapshot{
			{Name: "healthy", Order: "cone", GatesVisited: 400, GatesSkipped: 600},
			{Name: "wasted", Order: "level", GatesVisited: 1000, GatesSkipped: 3},
		},
	}
	rep, err := postmortem.Analyze([]*obs.FlightDump{d}, postmortem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Markdown, "| healthy | cone | 400 | 600 | 60.0% |") {
		t.Fatalf("scheduling table missing the healthy campaign row:\n%s", rep.Markdown)
	}
	var flagged []string
	for _, a := range rep.Anomalies {
		if strings.Contains(a, "cone scheduling ineffective") {
			flagged = append(flagged, a)
		}
	}
	if len(flagged) != 1 || !strings.Contains(flagged[0], "wasted") {
		t.Fatalf("want exactly the %q campaign flagged, got %v", "wasted", rep.Anomalies)
	}
}

// TestSupervisionSectionAndQuarantineAnomaly replays a supervised
// campaign's event trail — spawns, a stall death, a degraded restart, a
// bisection and a poison-fault quarantine — and demands the Supervision
// section render the lease history and the anomalies flag the poison
// fault and the memory-pressure degradation.
func TestSupervisionSectionAndQuarantineAnomaly(t *testing.T) {
	fl := obs.NewFlightRecorder(0)
	fl.Record(obs.FlightSpawn, obs.FlightLabelNone, 0, 0, 9, 0)
	fl.Record(obs.FlightSpawn, obs.FlightLabelNone, 1, 9, 9, 0)
	fl.Record(obs.FlightWorkerDeath, obs.FlightLabelStall, 0, 0, -1, 3)
	fl.Record(obs.FlightRestart, obs.FlightLabelNone, 0, 0, 1, 50_000)
	fl.Record(obs.FlightWorkerDeath, obs.FlightLabelOOM, 0, 0, -1, 3)
	fl.Record(obs.FlightRestart, obs.FlightLabelDegraded, 0, 0, 2, 100_000)
	fl.Record(obs.FlightWorkerDeath, obs.FlightLabelExit, 0, 0, 2, 3)
	fl.Record(obs.FlightBisect, obs.FlightLabelNone, 0, 0, 9, 4)
	fl.Record(obs.FlightQuarantine, obs.FlightLabelNone, 0, 7, 4, 0)
	d := &obs.FlightDump{Program: "test", Reason: "completed", Events: fl.Snapshot()}

	rep, err := postmortem.Analyze([]*obs.FlightDump{d}, postmortem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorkerDeaths != 3 || rep.Restarts != 2 {
		t.Fatalf("supervision digest = %d deaths / %d restarts, want 3/2", rep.WorkerDeaths, rep.Restarts)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != 7 {
		t.Fatalf("Quarantined = %v, want [7]", rep.Quarantined)
	}
	for _, want := range []string{
		"## Supervision",
		"worker deaths: 3",
		"lease re-dispatches: 2 (1 degraded)",
		"| 0 | 0 | stall | - | 3 |",
		"| 0 | 0 | oom | - | 3 |",
		"| 0 | 0 | exit | 2 | 3 |",
		"bisected at global index 4",
		"**Quarantined:** fault #7",
	} {
		if !strings.Contains(rep.Markdown, want) {
			t.Errorf("supervision section missing %q:\n%s", want, rep.Markdown)
		}
	}
	var poison, degraded bool
	for _, a := range rep.Anomalies {
		if strings.Contains(a, "poison fault: #7") {
			poison = true
		}
		if strings.Contains(a, "memory-pressure degradation") {
			degraded = true
		}
	}
	if !poison || !degraded {
		t.Fatalf("anomalies missing poison/degradation flags: %v", rep.Anomalies)
	}

	// A plain single-process dump renders the section's off state.
	rep2, err := postmortem.Analyze([]*obs.FlightDump{{Program: "t", Reason: "completed"}}, postmortem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep2.Markdown, "No supervision events recorded") {
		t.Fatal("single-process report should render the supervision off state")
	}
}

// TestKillAndResumeReconstruction kills a checkpointed campaign a third
// of the way in, resumes it, and feeds both flight dumps to the analyzer:
// the union of per-run fault events must cover the fault set exactly once
// — no lost and no duplicated events — and every chaos injection from
// both runs must correlate.
func TestKillAndResumeReconstruction(t *testing.T) {
	c := circuits.MustGet("c95s")
	work := c.Decompose2()
	fs := faults.CheckpointStuckAts(work)
	hdr := analysis.StuckAtCheckpointHeader(work, fs)
	path := filepath.Join(t.TempDir(), "run.jsonl")

	// Run 1: canceled at roughly a third of the fault set.
	cp, err := analysis.CreateCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	o1 := &obs.Observer{Metrics: obs.NewRegistry(), Flight: obs.NewFlightRecorder(0)}
	ctx, cancel := context.WithCancel(context.Background())
	study1, err := analysis.RunStuckAtCampaign(c, nil, fs, analysis.CampaignConfig{
		Workers:    2,
		Context:    ctx,
		Checkpoint: cp,
		Obs:        o1,
		Chaos: &chaos.Config{Seed: 3, Rules: []chaos.Rule{
			{Point: chaos.PointLatency, Indices: []int{1}, Latency: 0},
		}},
		Progress: func(done, total int) {
			if done >= total/3 {
				cancel()
			}
		},
	})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if !study1.Stats.Canceled || study1.Stats.Faults == len(fs) {
		t.Fatalf("run 1 should be partial: canceled=%v analyzed=%d/%d",
			study1.Stats.Canceled, study1.Stats.Faults, len(fs))
	}
	dump1path := filepath.Join(t.TempDir(), "run1.flight.json")
	if ok, err := o1.WriteFlightDump(dump1path, "test", "interrupt"); err != nil || !ok {
		t.Fatalf("dump 1: (%v, %v)", ok, err)
	}

	// Run 2: resume from the checkpoint and finish.
	cp2, resume, err := analysis.ResumeCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	o2 := &obs.Observer{Metrics: obs.NewRegistry(), Flight: obs.NewFlightRecorder(0)}
	lastIdx := len(fs) - 1
	study2, err := analysis.RunStuckAtCampaign(c, nil, fs, analysis.CampaignConfig{
		Workers:    2,
		Checkpoint: cp2,
		Resume:     resume,
		Obs:        o2,
		Chaos: &chaos.Config{Seed: 3, Rules: []chaos.Rule{
			{Point: chaos.PointLatency, Indices: []int{lastIdx}, Latency: 0},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp2.Close(); err != nil {
		t.Fatal(err)
	}
	if study2.Stats.Resumed != study1.Stats.Faults {
		t.Fatalf("run 2 resumed %d, run 1 persisted %d", study2.Stats.Resumed, study1.Stats.Faults)
	}
	dump2path := filepath.Join(t.TempDir(), "run2.flight.json")
	if ok, err := o2.WriteFlightDump(dump2path, "test", "completed"); err != nil || !ok {
		t.Fatalf("dump 2: (%v, %v)", ok, err)
	}

	d1, err := obs.ReadFlightDump(dump1path)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := obs.ReadFlightDump(dump2path)
	if err != nil {
		t.Fatal(err)
	}
	_, records, _, err := analysis.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := postmortem.Analyze([]*obs.FlightDump{d1, d2}, postmortem.Options{
		Checkpoint: &postmortem.CheckpointInfo{
			Kind: hdr.Kind, Circuit: hdr.Circuit, Faults: hdr.Faults, Records: len(records),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventsDropped != 0 {
		t.Fatalf("flight rings wrapped: %d events dropped", rep.EventsDropped)
	}
	if rep.DuplicateFaults != 0 {
		t.Fatalf("%d fault indices analyzed by both runs, want disjoint coverage", rep.DuplicateFaults)
	}
	if rep.FaultsAnalyzed != len(fs) {
		t.Fatalf("reconstructed history covers %d faults, want the full set of %d",
			rep.FaultsAnalyzed, len(fs))
	}
	if rep.ChaosInjected != 2 || rep.ChaosUncorrelated != 0 {
		t.Fatalf("chaos audit = %d injected / %d uncorrelated, want one correlated injection per run",
			rep.ChaosInjected, rep.ChaosUncorrelated)
	}
	for _, a := range rep.Anomalies {
		if strings.Contains(a, "resume overlap") || strings.Contains(a, "ring wrapped") {
			t.Fatalf("unexpected anomaly: %s", a)
		}
	}
}
