// Package postmortem turns flight-recorder dumps into campaign
// post-mortem reports: throughput curves, outcome breakdowns, per-worker
// utilization, rescue-ladder effectiveness, the most expensive faults,
// checkpoint I/O health, a chaos audit correlating every injection with
// the records it produced, a supervision digest (worker deaths, lease
// re-dispatches, shard bisections, poison-fault quarantines), and anomaly
// flags. It consumes only the
// obs.FlightDump schema — callers that want fault names or checkpoint
// cross-checks digest those files themselves and pass the results in
// through Options, keeping this package free of analysis dependencies.
package postmortem

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Options tunes a post-mortem analysis.
type Options struct {
	// TopN bounds the most-expensive-faults table (default 10).
	TopN int
	// FaultNames maps campaign fault indices to human names, typically
	// digested from a -trace file. Missing entries render as #index.
	FaultNames map[int]string
	// Checkpoint, when set, is cross-checked against the dumps' fault
	// and checkpoint-append events.
	Checkpoint *CheckpointInfo
}

// CheckpointInfo is the digested view of a checkpoint file the caller
// loaded (postmortem itself never reads checkpoints).
type CheckpointInfo struct {
	Kind    string // "stuckat" or "bridging"
	Circuit string
	Faults  int // campaign fault-set size from the header
	Records int // persisted records after later-line-wins dedup
}

// Report is the outcome of analyzing one or more flight dumps from the
// same campaign (multiple dumps = a kill-and-resume sequence in run
// order).
type Report struct {
	// Markdown is the rendered report.
	Markdown string
	// Outcomes counts fault events by outcome label across all dumps.
	Outcomes map[string]int
	// FaultsAnalyzed counts distinct fault indices seen in fault events.
	FaultsAnalyzed int
	// DuplicateFaults counts fault indices recorded by more than one run
	// — a kill-and-resume sequence should have none.
	DuplicateFaults int
	// ChaosInjected counts chaos events across all dumps.
	ChaosInjected int
	// ChaosUncorrelated counts chaos events that no fault, checkpoint or
	// governor record accounts for.
	ChaosUncorrelated int
	// EventsDropped sums ring overwrites across dumps; a non-zero value
	// means counts reconstructed from events are lower bounds.
	EventsDropped uint64
	// WorkerDeaths counts supervised worker-subprocess deaths across
	// dumps (zero for single-process runs).
	WorkerDeaths int
	// Restarts counts supervisor lease re-dispatches after those deaths.
	Restarts int
	// Quarantined lists the global fault indices the supervisor isolated
	// as poison faults after bisection.
	Quarantined []int
	// Anomalies lists the detected anomaly flags, empty when healthy.
	Anomalies []string
}

// chaosCorrelation classifies how each chaos point should echo in the
// record stream: fault-keyed points resolve through the fault event at
// the injection's index, I/O points through checkpointer poisoning, and
// memory-sampling points through governor parks.
var chaosFaultKeyed = map[string]bool{
	"budget": true, "nodelimit": true, "panic": true, "latency": true,
}

// Analyze builds a post-mortem report from flight dumps in run order.
func Analyze(dumps []*obs.FlightDump, opts Options) (*Report, error) {
	if len(dumps) == 0 {
		return nil, fmt.Errorf("postmortem: no flight dumps given")
	}
	for i, d := range dumps {
		if d == nil {
			return nil, fmt.Errorf("postmortem: dump %d is nil", i)
		}
	}
	if opts.TopN <= 0 {
		opts.TopN = 10
	}

	rep := &Report{Outcomes: map[string]int{}}
	var b strings.Builder

	// Per-run digests feed every section below.
	type faultEvent struct {
		run    int
		index  int
		worker int
		tus    int64 // µs since that run's start
		absUS  int64 // µs on the shared wall clock (StartUnixMS anchored)
		durUS  int64
		ops    int64
		label  string
	}
	var (
		faultEvents []faultEvent
		perRunIdx   = make([]map[int]bool, len(dumps))
		blows1      int
		blows2      int
		parks       int
		unparks     int
		gcPasses    int
		siftPasses  int
		gcReclaimed int64
		calibs      int
		appends     int
		fsyncs      int
		ckptErrs    []obs.FlightEvent
		chaosEvents []struct {
			run int
			ev  obs.FlightEvent
		}
		workerBusyUS = map[int]int64{}
		spawns       int
		deaths       []obs.FlightEvent
		deathsPerRun = make([]int, len(dumps))
		stallsPerRun = make([]int, len(dumps))
		resumePerRun = make([]int, len(dumps))
		degradedRe   int
		bisectEvents []obs.FlightEvent
		quarEvents   []obs.FlightEvent
	)
	for ri, d := range dumps {
		rep.EventsDropped += d.EventsDropped
		perRunIdx[ri] = make(map[int]bool)
		for _, ev := range d.Events {
			switch ev.Kind {
			case "fault":
				fe := faultEvent{
					run: ri, index: ev.Index, worker: ev.Worker,
					tus: ev.TUS, absUS: d.StartUnixMS*1000 + ev.TUS,
					durUS: ev.A, ops: ev.B, label: ev.Label,
				}
				faultEvents = append(faultEvents, fe)
				perRunIdx[ri][ev.Index] = true
				rep.Outcomes[ev.Label]++
				if ev.Worker >= 0 {
					workerBusyUS[ev.Worker] += ev.A
				}
			case "budget_blow":
				if ev.A >= 2 {
					blows2++
				} else {
					blows1++
				}
			case "park":
				parks++
			case "unpark":
				unparks++
			case "gc":
				gcPasses++
				gcReclaimed += ev.A
			case "sift":
				siftPasses++
				gcReclaimed += ev.A
			case "calibration":
				calibs++
			case "ckpt_append":
				appends++
			case "ckpt_fsync":
				fsyncs++
			case "ckpt_error":
				ckptErrs = append(ckptErrs, ev)
			case "chaos":
				chaosEvents = append(chaosEvents, struct {
					run int
					ev  obs.FlightEvent
				}{ri, ev})
			case "resume":
				resumePerRun[ri]++
			case "spawn":
				spawns++
			case "worker_death":
				deaths = append(deaths, ev)
				deathsPerRun[ri]++
				if ev.Label == "stall" {
					stallsPerRun[ri]++
				}
				rep.WorkerDeaths++
			case "restart":
				rep.Restarts++
				if ev.Label == "degraded" {
					degradedRe++
				}
			case "bisect":
				bisectEvents = append(bisectEvents, ev)
			case "quarantine":
				quarEvents = append(quarEvents, ev)
				rep.Quarantined = append(rep.Quarantined, ev.Index)
			}
		}
	}

	// Distinct/duplicate coverage across the kill-and-resume sequence.
	seen := map[int]int{}
	for ri := range dumps {
		for idx := range perRunIdx[ri] {
			seen[idx]++
		}
	}
	rep.FaultsAnalyzed = len(seen)
	for _, n := range seen {
		if n > 1 {
			rep.DuplicateFaults++
		}
	}

	// ---- Run overview ----
	b.WriteString("# Campaign post-mortem\n\n")
	b.WriteString("## Run overview\n\n")
	b.WriteString("| run | program | reason | duration | events | dropped |\n")
	b.WriteString("|----:|---------|--------|---------:|-------:|--------:|\n")
	for ri, d := range dumps {
		dur := float64(d.DumpUnixMS-d.StartUnixMS) / 1000
		fmt.Fprintf(&b, "| %d | %s | %s | %.1fs | %d | %d |\n",
			ri+1, d.Program, d.Reason, dur, d.EventsTotal, d.EventsDropped)
	}
	if rep.EventsDropped > 0 {
		fmt.Fprintf(&b, "\n> **Warning:** %d events were overwritten by ring wrap; "+
			"event-derived counts below are lower bounds.\n", rep.EventsDropped)
	}

	// ---- Outcomes ----
	b.WriteString("\n## Outcomes\n\n")
	if len(faultEvents) == 0 {
		b.WriteString("No fault events recorded.\n")
	} else {
		b.WriteString("| outcome | faults |\n|---------|-------:|\n")
		labels := make([]string, 0, len(rep.Outcomes))
		for l := range rep.Outcomes {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			name := l
			if name == "" {
				name = "(none)"
			}
			fmt.Fprintf(&b, "| %s | %d |\n", name, rep.Outcomes[l])
		}
		fmt.Fprintf(&b, "\nDistinct faults analyzed: **%d**", rep.FaultsAnalyzed)
		if len(dumps) > 1 {
			fmt.Fprintf(&b, " across %d runs; duplicated between runs: **%d**", len(dumps), rep.DuplicateFaults)
		}
		b.WriteString("\n")
	}

	// ---- Latency ----
	b.WriteString("\n## Fault latency\n\n")
	if len(faultEvents) > 0 {
		durs := make([]int64, len(faultEvents))
		for i, fe := range faultEvents {
			durs[i] = fe.durUS
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		pct := func(q float64) int64 {
			i := int(q * float64(len(durs)-1))
			return durs[i]
		}
		fmt.Fprintf(&b, "Event-exact over %d faults: p50 %s, p95 %s, p99 %s, max %s.\n",
			len(durs), fmtUS(pct(0.50)), fmtUS(pct(0.95)), fmtUS(pct(0.99)), fmtUS(durs[len(durs)-1]))
	}
	if h := lastHistogram(dumps); h != nil && h.Count > 0 {
		fmt.Fprintf(&b, "Histogram estimate over %d samples: p50 %.3fs, p95 %.3fs, p99 %.3fs.\n",
			h.Count, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
	if len(faultEvents) == 0 && lastHistogram(dumps) == nil {
		b.WriteString("No latency data recorded.\n")
	}

	// ---- Throughput curve ----
	b.WriteString("\n## Throughput\n\n")
	var quarterRates []float64
	if len(faultEvents) >= 2 {
		minUS, maxUS := faultEvents[0].absUS, faultEvents[0].absUS
		for _, fe := range faultEvents {
			if fe.absUS < minUS {
				minUS = fe.absUS
			}
			if fe.absUS > maxUS {
				maxUS = fe.absUS
			}
		}
		span := maxUS - minUS
		if span <= 0 {
			span = 1
		}
		const nbins = 24
		bins := make([]int, nbins)
		for _, fe := range faultEvents {
			i := int((fe.absUS - minUS) * nbins / (span + 1))
			if i >= nbins {
				i = nbins - 1
			}
			bins[i]++
		}
		peak := 0
		for _, n := range bins {
			if n > peak {
				peak = n
			}
		}
		spark := []rune("▁▂▃▄▅▆▇█")
		var line strings.Builder
		for _, n := range bins {
			idx := 0
			if peak > 0 {
				idx = n * (len(spark) - 1) / peak
			}
			line.WriteRune(spark[idx])
		}
		binSec := float64(span) / nbins / 1e6
		fmt.Fprintf(&b, "```\n%s\n```\n%d faults over %.1fs (%.2fs/bin), peak %d faults/bin.\n",
			line.String(), len(faultEvents), float64(span)/1e6, binSec, peak)

		// Quarter rates feed the collapse anomaly below.
		q := make([]int, 4)
		for _, fe := range faultEvents {
			i := int((fe.absUS - minUS) * 4 / (span + 1))
			if i >= 4 {
				i = 3
			}
			q[i]++
		}
		for _, n := range q {
			quarterRates = append(quarterRates, float64(n)/(float64(span)/4/1e6))
		}
	} else {
		b.WriteString("Too few fault events for a curve.\n")
	}

	// ---- Per-worker utilization ----
	b.WriteString("\n## Worker utilization\n\n")
	if len(workerBusyUS) > 0 {
		var spanUS int64
		for _, d := range dumps {
			spanUS += (d.DumpUnixMS - d.StartUnixMS) * 1000
		}
		if spanUS <= 0 {
			spanUS = 1
		}
		workers := make([]int, 0, len(workerBusyUS))
		for w := range workerBusyUS {
			workers = append(workers, w)
		}
		sort.Ints(workers)
		b.WriteString("| worker | busy | utilization |\n|-------:|-----:|------------:|\n")
		for _, w := range workers {
			busy := workerBusyUS[w]
			fmt.Fprintf(&b, "| %d | %s | %.0f%% |\n", w, fmtUS(busy), 100*float64(busy)/float64(spanUS))
		}
	} else {
		b.WriteString("No per-worker fault events recorded.\n")
	}

	// ---- Rescue ladder ----
	b.WriteString("\n## Rescue ladder\n\n")
	rescued := rep.Outcomes["rescued"]
	if blows1+blows2 == 0 && rescued == 0 {
		b.WriteString("No budget or node-limit blows recorded.\n")
	} else {
		fmt.Fprintf(&b, "- first-attempt blows: %d\n- retry blows: %d\n- rescued (exact after retry): %d\n",
			blows1, blows2, rescued)
		if blows1 > 0 {
			fmt.Fprintf(&b, "- ladder effectiveness: %.0f%% of blown faults recovered exactly\n",
				100*float64(rescued)/float64(blows1))
		}
		if gcPasses+siftPasses > 0 {
			fmt.Fprintf(&b, "- GC passes: %d (plus %d with sifting), %d nodes reclaimed\n",
				gcPasses, siftPasses, gcReclaimed)
		}
		if calibs > 0 {
			fmt.Fprintf(&b, "- calibration generations published: %d\n", calibs)
		}
	}

	// ---- Top-N expensive faults ----
	fmt.Fprintf(&b, "\n## Top %d most expensive faults\n\n", opts.TopN)
	if len(faultEvents) == 0 {
		b.WriteString("No fault events recorded.\n")
	} else {
		byCost := make([]faultEvent, len(faultEvents))
		copy(byCost, faultEvents)
		sort.Slice(byCost, func(i, j int) bool {
			if byCost[i].durUS != byCost[j].durUS {
				return byCost[i].durUS > byCost[j].durUS
			}
			return byCost[i].index < byCost[j].index
		})
		if len(byCost) > opts.TopN {
			byCost = byCost[:opts.TopN]
		}
		b.WriteString("| fault | worker | outcome | duration | BDD ops |\n")
		b.WriteString("|-------|-------:|---------|---------:|--------:|\n")
		for _, fe := range byCost {
			name := opts.FaultNames[fe.index]
			if name == "" {
				name = fmt.Sprintf("#%d", fe.index)
			}
			fmt.Fprintf(&b, "| %s | %d | %s | %s | %d |\n", name, fe.worker, fe.label, fmtUS(fe.durUS), fe.ops)
		}
	}

	// ---- Checkpoint I/O ----
	b.WriteString("\n## Checkpoint I/O\n\n")
	if appends+fsyncs+len(ckptErrs) == 0 {
		b.WriteString("No checkpoint activity recorded.\n")
	} else {
		fmt.Fprintf(&b, "- appends: %d\n- fsyncs: %d\n- errors: %d\n", appends, fsyncs, len(ckptErrs))
		for _, ev := range ckptErrs {
			fmt.Fprintf(&b, "  - poisoned on %s at fault #%d (t=%s)\n", ev.Label, ev.Index, fmtUS(ev.TUS))
		}
	}
	if ck := opts.Checkpoint; ck != nil {
		fmt.Fprintf(&b, "\nCheckpoint file: %s campaign on %s, %d faults in set, %d records persisted.\n",
			ck.Kind, ck.Circuit, ck.Faults, ck.Records)
		switch {
		case rep.EventsDropped > 0:
			b.WriteString("Cross-check skipped: ring wrap dropped events.\n")
		case ck.Records < rep.FaultsAnalyzed:
			fmt.Fprintf(&b, "**Mismatch:** %d faults analyzed but only %d records persisted — "+
				"records may have been lost before an fsync.\n", rep.FaultsAnalyzed, ck.Records)
		default:
			fmt.Fprintf(&b, "Cross-check OK: %d analyzed ≤ %d persisted (resumed records fill the rest).\n",
				rep.FaultsAnalyzed, ck.Records)
		}
	}

	// ---- Scheduling ----
	b.WriteString("\n## Scheduling\n\n")
	type schedRow struct {
		name    string
		order   string
		visited int64
		skipped int64
	}
	var schedRows []schedRow
	for _, d := range dumps {
		for _, c := range d.Campaigns {
			if c.Order == "" && c.GatesVisited == 0 && c.GatesSkipped == 0 {
				continue
			}
			schedRows = append(schedRows, schedRow{c.Name, c.Order, c.GatesVisited, c.GatesSkipped})
		}
	}
	if len(schedRows) == 0 {
		b.WriteString("No scheduling telemetry recorded (runner predates the -order policies).\n")
	} else {
		b.WriteString("| campaign | order | gates visited | gates skipped | skip ratio |\n")
		b.WriteString("|----------|-------|--------------:|--------------:|-----------:|\n")
		for _, r := range schedRows {
			order := r.order
			if order == "" {
				order = "index"
			}
			ratio := 0.0
			if tot := r.visited + r.skipped; tot > 0 {
				ratio = float64(r.skipped) / float64(tot)
			}
			fmt.Fprintf(&b, "| %s | %s | %d | %d | %.1f%% |\n",
				r.name, order, r.visited, r.skipped, 100*ratio)
			// A cone- or level-ordered campaign that skips almost nothing is
			// paying the scheduling overhead without the locality payoff —
			// typically a tiny circuit or a fault set whose merged cones
			// cover the whole netlist.
			if order != "index" && r.visited > 0 && float64(r.skipped) < 0.05*float64(r.visited+r.skipped) {
				rep.Anomalies = append(rep.Anomalies, fmt.Sprintf(
					"cone scheduling ineffective: campaign %q ran order=%s but skipped only %.1f%% of gate visits — index order is likely faster here",
					r.name, order, 100*ratio))
			}
		}
	}
	if h := lastConeGates(dumps); h != nil && h.Count > 0 {
		fmt.Fprintf(&b, "\nMerged fan-out-cone size per fault over %d samples: p50 %.0f, p95 %.0f, p99 %.0f gates.\n",
			h.Count, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
	if mean, n, ok := meanCacheHitRatio(dumps); ok {
		fmt.Fprintf(&b, "\nOp-cache hit ratio under this schedule: %.2f mean over %d timeline samples.\n", mean, n)
	}

	// ---- Chaos audit ----
	b.WriteString("\n## Chaos audit\n\n")
	rep.ChaosInjected = len(chaosEvents)
	if len(chaosEvents) == 0 {
		b.WriteString("No chaos injections recorded.\n")
	} else {
		b.WriteString("| run | point | key | correlated with |\n|----:|-------|----:|------------------|\n")
		for _, ce := range chaosEvents {
			point, key, run := ce.ev.Label, ce.ev.Index, ce.run
			var with string
			switch {
			case chaosFaultKeyed[point]:
				if perRunIdx[run][key] {
					with = fmt.Sprintf("fault #%d record in run %d", key, run+1)
				} else if point == "panic" && dumps[run].Reason == "panic" {
					with = "run ended in panic dump"
				}
			case point == "ckptwrite":
				for _, ev := range ckptErrs {
					if ev.Label == "append" {
						with = fmt.Sprintf("checkpoint append poisoning at fault #%d", ev.Index)
						break
					}
				}
			case point == "ckptsync":
				for _, ev := range ckptErrs {
					if ev.Label == "fsync" {
						with = "checkpoint fsync poisoning"
						break
					}
				}
			case point == "memsample":
				if parks > 0 {
					with = fmt.Sprintf("governor activity (%d parks)", parks)
				} else {
					// An inflated heap sample below the ceiling is correctly
					// ignored by the governor; the injection still landed.
					with = "governor heap sample (no park required)"
				}
			case point == "workerkill":
				if deathsPerRun[run] > 0 {
					with = fmt.Sprintf("worker death(s) in run %d", run+1)
				}
			case point == "hbstall":
				if stallsPerRun[run] > 0 {
					with = fmt.Sprintf("heartbeat-stall death(s) in run %d", run+1)
				} else if deathsPerRun[run] > 0 {
					with = fmt.Sprintf("worker death(s) in run %d", run+1)
				}
			case point == "shardtear":
				if resumePerRun[run] > 0 || appends > 0 {
					with = "torn checkpoint tail repaired on shard resume"
				}
			}
			if with == "" {
				with = "**uncorrelated**"
				rep.ChaosUncorrelated++
			}
			fmt.Fprintf(&b, "| %d | %s | %d | %s |\n", run+1, point, key, with)
		}
		fmt.Fprintf(&b, "\n%d injections, %d uncorrelated.\n", rep.ChaosInjected, rep.ChaosUncorrelated)
		if rep.ChaosUncorrelated > 0 && rep.EventsDropped > 0 {
			b.WriteString("Ring wrap dropped events; uncorrelated injections may be explained by overwritten records.\n")
		}
	}

	// ---- Supervision ----
	b.WriteString("\n## Supervision\n\n")
	if spawns+rep.WorkerDeaths+rep.Restarts+len(bisectEvents)+len(quarEvents) == 0 {
		b.WriteString("No supervision events recorded (single-process run).\n")
	} else {
		fmt.Fprintf(&b, "- worker launches: %d\n- worker deaths: %d\n- lease re-dispatches: %d (%d degraded)\n- shard bisections: %d\n- quarantined faults: %d\n",
			spawns, rep.WorkerDeaths, rep.Restarts, degradedRe, len(bisectEvents), len(quarEvents))
		if len(deaths) > 0 {
			b.WriteString("\n| shard lo | slot | cause | exit code | faults done |\n")
			b.WriteString("|---------:|-----:|-------|----------:|------------:|\n")
			for _, ev := range deaths {
				code := "-"
				if ev.A >= 0 {
					code = fmt.Sprint(ev.A)
				}
				fmt.Fprintf(&b, "| %d | %d | %s | %s | %d |\n", ev.Index, ev.Worker, ev.Label, code, ev.B)
			}
		}
		for _, ev := range bisectEvents {
			fmt.Fprintf(&b, "\nShard at lo=%d (%d faults) bisected at global index %d.", ev.Index, ev.A, ev.B)
		}
		if len(bisectEvents) > 0 {
			b.WriteString("\n")
		}
		for _, ev := range quarEvents {
			name := opts.FaultNames[ev.Index]
			if name == "" {
				name = fmt.Sprintf("#%d", ev.Index)
			}
			fmt.Fprintf(&b, "\n**Quarantined:** fault %s isolated as an Err record after killing %d worker(s); the campaign completed around it.\n", name, ev.A)
		}
	}

	// ---- Anomalies ----
	for _, ev := range quarEvents {
		rep.Anomalies = append(rep.Anomalies, fmt.Sprintf(
			"poison fault: #%d quarantined after %d worker death(s) — reproduce with -worker-shard %d-%d to debug it in isolation",
			ev.Index, ev.A, ev.Index, ev.Index+1))
	}
	if degradedRe > 0 {
		rep.Anomalies = append(rep.Anomalies, fmt.Sprintf(
			"memory-pressure degradation: %d relaunch(es) shed workers and node budget after repeated OOM kills — the shard size or node limit is too aggressive for this host",
			degradedRe))
	}
	if len(quarterRates) == 4 && len(faultEvents) >= 40 {
		maxRate := quarterRates[0]
		for _, r := range quarterRates[1:] {
			if r > maxRate {
				maxRate = r
			}
		}
		if maxRate > 0 && quarterRates[3] < 0.25*maxRate {
			rep.Anomalies = append(rep.Anomalies, fmt.Sprintf(
				"throughput collapse: final quarter ran at %.1f faults/s vs %.1f peak",
				quarterRates[3], maxRate))
		}
	}
	if drop, first, second, ok := cacheDegradation(dumps); ok && drop > 0.2 {
		rep.Anomalies = append(rep.Anomalies, fmt.Sprintf(
			"cache-hit degradation: op-cache hit ratio fell from %.2f to %.2f", first, second))
	}
	if parks >= 8 {
		rep.Anomalies = append(rep.Anomalies, fmt.Sprintf(
			"governor thrash: %d park events (%d unparks) — heap ceiling too tight for the workload",
			parks, unparks))
	}
	if rep.EventsDropped > 0 {
		rep.Anomalies = append(rep.Anomalies, fmt.Sprintf(
			"flight ring wrapped: %d events dropped — raise the ring capacity for full history",
			rep.EventsDropped))
	}
	if rep.DuplicateFaults > 0 {
		rep.Anomalies = append(rep.Anomalies, fmt.Sprintf(
			"resume overlap: %d fault indices analyzed by more than one run", rep.DuplicateFaults))
	}
	b.WriteString("\n## Anomalies\n\n")
	if len(rep.Anomalies) == 0 {
		b.WriteString("None detected.\n")
	} else {
		for _, a := range rep.Anomalies {
			fmt.Fprintf(&b, "- %s\n", a)
		}
	}

	rep.Markdown = b.String()
	return rep, nil
}

// lastHistogram returns the fault-latency histogram of the final dump
// that carries one — across a kill-and-resume sequence only the last
// run's histogram reflects its own faults, so they are reported per-run
// rather than merged.
func lastHistogram(dumps []*obs.FlightDump) *obs.HistogramSnapshot {
	for i := len(dumps) - 1; i >= 0; i-- {
		if dumps[i].FaultLatency != nil {
			return dumps[i].FaultLatency
		}
	}
	return nil
}

// lastConeGates returns the cone-size histogram of the final dump that
// carries one, mirroring lastHistogram's per-run semantics.
func lastConeGates(dumps []*obs.FlightDump) *obs.HistogramSnapshot {
	for i := len(dumps) - 1; i >= 0; i-- {
		if dumps[i].ConeGates != nil {
			return dumps[i].ConeGates
		}
	}
	return nil
}

// meanCacheHitRatio averages the op-cache hit ratio across every timeline
// sample that carries one; ok is false when no sample does.
func meanCacheHitRatio(dumps []*obs.FlightDump) (mean float64, n int, ok bool) {
	var sum float64
	for _, d := range dumps {
		for _, s := range d.Timeline {
			if s.CacheHitRatio > 0 {
				sum += s.CacheHitRatio
				n++
			}
		}
	}
	if n == 0 {
		return 0, 0, false
	}
	return sum / float64(n), n, true
}

// cacheDegradation compares the mean op-cache hit ratio of the first and
// second halves of the concatenated timeline. ok is false when fewer
// than four samples carry a ratio.
func cacheDegradation(dumps []*obs.FlightDump) (drop, first, second float64, ok bool) {
	var samples []float64
	for _, d := range dumps {
		for _, s := range d.Timeline {
			if s.CacheHitRatio > 0 {
				samples = append(samples, s.CacheHitRatio)
			}
		}
	}
	if len(samples) < 4 {
		return 0, 0, 0, false
	}
	half := len(samples) / 2
	mean := func(xs []float64) float64 {
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	first, second = mean(samples[:half]), mean(samples[half:])
	return first - second, first, second, true
}

// fmtUS renders a µs quantity with a human unit.
func fmtUS(us int64) string {
	switch {
	case us >= 10_000_000:
		return fmt.Sprintf("%.1fs", float64(us)/1e6)
	case us >= 10_000:
		return fmt.Sprintf("%.1fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
