// Package layout implements the paper's layout-free wire-distance
// approximation (§2.2) used to weight the random selection of bridging
// faults: every gate receives an X coordinate equal to its level (distance
// in levels from the primary inputs) and a Y coordinate equal to the
// average of its fan-in Y coordinates, with the n primary inputs pinned at
// Y = 0..n-1 in benchmark declaration order. Distances between candidate
// bridge wires are normalized to the largest distance over all potentially
// detectable NFBFs and faults are drawn with probability density
// f(z) = (1/θ)·e^(-z/θ), reflecting that physically close wires short more
// often.
package layout

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/faults"
	"repro/internal/netlist"
)

// Placement holds the estimated coordinates of every net.
type Placement struct {
	X []float64
	Y []float64
}

// Place computes the paper's approximate placement for the circuit.
func Place(c *netlist.Circuit) Placement {
	n := c.NumNets()
	p := Placement{X: make([]float64, n), Y: make([]float64, n)}
	levels := c.Levels()
	for i, in := range c.Inputs {
		p.Y[in] = float64(i)
	}
	for id, g := range c.Gates {
		p.X[id] = float64(levels[id])
		if g.Type == netlist.Input {
			continue
		}
		sum := 0.0
		for _, f := range g.Fanin {
			sum += p.Y[f]
		}
		p.Y[id] = sum / float64(len(g.Fanin))
	}
	return p
}

// Distance returns the Euclidean distance between the two nets' estimated
// positions.
func (p Placement) Distance(u, v int) float64 {
	dx := p.X[u] - p.X[v]
	dy := p.Y[u] - p.Y[v]
	return math.Sqrt(dx*dx + dy*dy)
}

// NormalizedDistances returns each candidate bridge's distance divided by
// the maximum distance over the candidate set, as the paper prescribes.
// All-zero distances (degenerate placements) normalize to zero.
func NormalizedDistances(p Placement, candidates []faults.Bridging) []float64 {
	out := make([]float64, len(candidates))
	max := 0.0
	for i, b := range candidates {
		out[i] = p.Distance(b.U, b.V)
		if out[i] > max {
			max = out[i]
		}
	}
	if max > 0 {
		for i := range out {
			out[i] /= max
		}
	}
	return out
}

// SampleNFBFs draws up to n distinct bridging faults from the candidate
// population without replacement, with weights e^(-z/θ) over the
// normalized distances z — an exponential preference for physically close
// wires. θ plays the paper's role of tuning the fault-set size versus
// locality; the draw is deterministic for a fixed seed. If n >= the
// population, the entire population is returned (as the paper does for its
// four smallest circuits).
func SampleNFBFs(c *netlist.Circuit, candidates []faults.Bridging, n int, theta float64, seed int64) []faults.Bridging {
	if theta <= 0 {
		panic(fmt.Sprintf("layout: theta must be positive, got %v", theta))
	}
	if n >= len(candidates) {
		return append([]faults.Bridging(nil), candidates...)
	}
	p := Place(c)
	z := NormalizedDistances(p, candidates)
	rng := rand.New(rand.NewSource(seed))
	// Weighted sampling without replacement (Efraimidis–Spirakis): draw
	// key u^(1/w) per item and keep the n largest keys.
	type scored struct {
		idx int
		key float64
	}
	items := make([]scored, len(candidates))
	for i := range candidates {
		w := math.Exp(-z[i] / theta)
		u := rng.Float64()
		// u^(1/w) computed in log space for numerical stability.
		items[i] = scored{idx: i, key: math.Log(u) / w}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].key > items[b].key })
	out := make([]faults.Bridging, n)
	for i := 0; i < n; i++ {
		out[i] = candidates[items[i].idx]
	}
	// Keep the sample in a stable, readable order.
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].V < out[b].V
	})
	return out
}

// MeanDistance reports the average normalized distance of a fault set
// under the placement — used to sanity-check that sampling favors close
// wires.
func MeanDistance(p Placement, set []faults.Bridging, norm float64) float64 {
	if len(set) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range set {
		sum += p.Distance(b.U, b.V)
	}
	mean := sum / float64(len(set))
	if norm > 0 {
		mean /= norm
	}
	return mean
}

// MaxDistance returns the maximum pairwise distance over the candidates,
// the normalization constant of the paper's distance model.
func MaxDistance(p Placement, candidates []faults.Bridging) float64 {
	max := 0.0
	for _, b := range candidates {
		if d := p.Distance(b.U, b.V); d > max {
			max = d
		}
	}
	return max
}
