package layout

import (
	"math"
	"testing"

	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/netlist"
)

func TestPlaceC17(t *testing.T) {
	c := circuits.MustGet("c17")
	p := Place(c)
	n := func(s string) int { return c.NetByName(s) }
	// PIs pinned at Y = 0..4 in declaration order (1,2,3,6,7), X = 0.
	for i, name := range []string{"1", "2", "3", "6", "7"} {
		if p.X[n(name)] != 0 || p.Y[n(name)] != float64(i) {
			t.Fatalf("PI %s at (%v, %v), want (0, %d)", name, p.X[n(name)], p.Y[n(name)], i)
		}
	}
	// Gate 10 = NAND(1, 3): X = 1, Y = (0+2)/2 = 1.
	if p.X[n("10")] != 1 || p.Y[n("10")] != 1 {
		t.Fatalf("gate 10 at (%v, %v), want (1, 1)", p.X[n("10")], p.Y[n("10")])
	}
	// Gate 11 = NAND(3, 6): Y = (2+3)/2 = 2.5.
	if p.Y[n("11")] != 2.5 {
		t.Fatalf("gate 11 Y = %v, want 2.5", p.Y[n("11")])
	}
	// Gate 16 = NAND(2, 11): level 2, Y = (1 + 2.5)/2 = 1.75.
	if p.X[n("16")] != 2 || p.Y[n("16")] != 1.75 {
		t.Fatalf("gate 16 at (%v, %v)", p.X[n("16")], p.Y[n("16")])
	}
}

func TestDistance(t *testing.T) {
	p := Placement{X: []float64{0, 3}, Y: []float64{0, 4}}
	if d := p.Distance(0, 1); d != 5 {
		t.Fatalf("distance = %v, want 5", d)
	}
	if d := p.Distance(0, 0); d != 0 {
		t.Fatal("self distance must be 0")
	}
	if p.Distance(0, 1) != p.Distance(1, 0) {
		t.Fatal("distance must be symmetric")
	}
}

func TestNormalizedDistances(t *testing.T) {
	c := circuits.MustGet("c17")
	p := Place(c)
	cands := faults.AllNFBFs(c, faults.WiredAND)
	z := NormalizedDistances(p, cands)
	max := 0.0
	for _, v := range z {
		if v < 0 || v > 1 {
			t.Fatalf("normalized distance %v out of [0,1]", v)
		}
		if v > max {
			max = v
		}
	}
	if math.Abs(max-1) > 1e-12 {
		t.Fatalf("max normalized distance = %v, want 1", max)
	}
}

func TestSampleWholePopulationWhenSmall(t *testing.T) {
	c := circuits.MustGet("c17")
	cands := faults.AllNFBFs(c, faults.WiredAND)
	got := SampleNFBFs(c, cands, len(cands)+10, 0.5, 1)
	if len(got) != len(cands) {
		t.Fatalf("small population must be returned whole: %d vs %d", len(got), len(cands))
	}
}

func TestSampleDeterministicAndDistinct(t *testing.T) {
	c := circuits.MustGet("alu181")
	cands := faults.AllNFBFs(c, faults.WiredOR)
	a := SampleNFBFs(c, cands, 50, 0.3, 7)
	b := SampleNFBFs(c, cands, 50, 0.3, 7)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("sample sizes %d/%d", len(a), len(b))
	}
	seen := map[[2]int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling must be deterministic for a fixed seed")
		}
		k := [2]int{a[i].U, a[i].V}
		if seen[k] {
			t.Fatal("sample contains duplicates")
		}
		seen[k] = true
	}
	c2 := SampleNFBFs(c, cands, 50, 0.3, 8)
	same := true
	for i := range a {
		if a[i] != c2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different samples")
	}
}

func TestSampleFavorsCloseWires(t *testing.T) {
	c := circuits.MustGet("c432s")
	cands := faults.AllNFBFs(c, faults.WiredAND)
	p := Place(c)
	norm := MaxDistance(p, cands)
	popMean := MeanDistance(p, cands, norm)
	// A tight theta must pull the sample mean well below the population
	// mean.
	sample := SampleNFBFs(c, cands, 200, 0.1, 3)
	sampleMean := MeanDistance(p, sample, norm)
	if sampleMean >= popMean {
		t.Fatalf("exponential weighting failed: sample mean %v >= population mean %v", sampleMean, popMean)
	}
	// A huge theta approaches uniform sampling; its mean should sit closer
	// to the population mean than the tight sample's.
	loose := SampleNFBFs(c, cands, 200, 100, 3)
	looseMean := MeanDistance(p, loose, norm)
	if math.Abs(looseMean-popMean) > math.Abs(sampleMean-popMean) {
		t.Fatalf("theta ordering violated: tight %v, loose %v, population %v", sampleMean, looseMean, popMean)
	}
}

func TestSamplePanicsOnBadTheta(t *testing.T) {
	c := circuits.MustGet("c17")
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive theta must panic")
		}
	}()
	SampleNFBFs(c, faults.AllNFBFs(c, faults.WiredAND), 5, 0, 1)
}

func TestMeanDistanceEmpty(t *testing.T) {
	if MeanDistance(Placement{}, nil, 1) != 0 {
		t.Fatal("empty set mean must be 0")
	}
}

func TestPlaceDeeperCircuitMonotoneX(t *testing.T) {
	c := circuits.MustGet("c1355s")
	p := Place(c)
	lv := c.Levels()
	for id := range p.X {
		if p.X[id] != float64(lv[id]) {
			t.Fatal("X must equal the level")
		}
	}
	_ = netlist.Input // keep the import meaningful if shapes change
}
