// Package report renders experiment results as plain-text figures (ASCII
// bar charts and XY tables) and CSV series, so every table and figure of
// the paper can be regenerated on a terminal and diffed across runs.
package report

import (
	"fmt"
	"strings"
)

// Series is one named data series of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a renderable reproduction of one of the paper's exhibits.
type Figure struct {
	ID     string // e.g. "fig3"
	Title  string // the paper's caption, abbreviated
	XLabel string
	YLabel string
	Note   string // reproduction notes (fault counts, sampling, ...)
	Series []Series
}

const barWidth = 50

// Text renders the figure as an ASCII report: a header, one block per
// series with aligned x/y columns and a proportional bar per row.
func (f Figure) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", f.ID, f.Title)
	if f.Note != "" {
		fmt.Fprintf(&sb, "%s\n", f.Note)
	}
	fmt.Fprintf(&sb, "x: %s    y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "\n-- %s --\n", s.Name)
		max := 0.0
		for _, y := range s.Y {
			if y > max {
				max = y
			}
		}
		for i := range s.X {
			bar := ""
			if max > 0 {
				n := int(s.Y[i]/max*barWidth + 0.5)
				bar = strings.Repeat("#", n)
			}
			fmt.Fprintf(&sb, "%10.4f  %8.4f  %s\n", s.X[i], s.Y[i], bar)
		}
	}
	return sb.String()
}

// CSV renders all series as long-format CSV: series,x,y.
func (f Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString("series,x,y\n")
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&sb, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i])
		}
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// HistogramSeries turns equal-width [0,1] bin fractions into a plottable
// series whose X values are the bin centers.
func HistogramSeries(name string, bins []float64) Series {
	s := Series{Name: name, X: make([]float64, len(bins)), Y: append([]float64(nil), bins...)}
	for i := range bins {
		s.X[i] = (float64(i) + 0.5) / float64(len(bins))
	}
	return s
}

// Table is a simple aligned text table for tabular exhibits.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Text renders the table with aligned columns.
func (t Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "=== %s ===\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as CSV.
func (t Table) CSV() string {
	var sb strings.Builder
	esc := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		esc[i] = csvEscape(c)
	}
	sb.WriteString(strings.Join(esc, ","))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = csvEscape(c)
		}
		sb.WriteString(strings.Join(cells, ","))
		sb.WriteString("\n")
	}
	return sb.String()
}
