package report

import (
	"strings"
	"testing"
)

func TestFigureText(t *testing.T) {
	f := Figure{
		ID:     "figX",
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Note:   "a note",
		Series: []Series{
			{Name: "s1", X: []float64{0, 1, 2}, Y: []float64{0.5, 1.0, 0.25}},
		},
	}
	text := f.Text()
	for _, want := range []string{"figX", "demo", "a note", "s1", "x:", "y:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text missing %q:\n%s", want, text)
		}
	}
	// The largest Y gets the full bar; a half value gets roughly half.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	counts := map[float64]int{}
	for _, line := range lines {
		for _, y := range []float64{0.5, 1.0, 0.25} {
			if strings.Contains(line, "  "+formatY(y)+"  ") || strings.Contains(line, formatY(y)) {
				counts[y] = strings.Count(line, "#")
			}
		}
	}
	if counts[1.0] != 50 {
		t.Fatalf("max bar = %d, want 50", counts[1.0])
	}
	if counts[0.5] != 25 {
		t.Fatalf("half bar = %d, want 25", counts[0.5])
	}
}

func formatY(y float64) string {
	switch y {
	case 0.5:
		return "0.5000"
	case 1.0:
		return "1.0000"
	default:
		return "0.2500"
	}
}

func TestFigureTextEmptySeries(t *testing.T) {
	f := Figure{ID: "e", Title: "empty", Series: []Series{{Name: "none"}}}
	if text := f.Text(); !strings.Contains(text, "none") {
		t.Fatal("empty series must still render its header")
	}
	// All-zero series must not divide by zero.
	f.Series = []Series{{Name: "zero", X: []float64{0}, Y: []float64{0}}}
	if text := f.Text(); !strings.Contains(text, "0.0000") {
		t.Fatal("zero series must render")
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{
		ID: "figX",
		Series: []Series{
			{Name: "a,b", X: []float64{1}, Y: []float64{2}},
			{Name: `q"t`, X: []float64{3}, Y: []float64{4}},
		},
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "series,x,y\n") {
		t.Fatal("missing header")
	}
	if !strings.Contains(csv, `"a,b",1,2`) {
		t.Fatalf("comma name not escaped: %s", csv)
	}
	if !strings.Contains(csv, `"q""t",3,4`) {
		t.Fatalf("quote name not escaped: %s", csv)
	}
}

func TestHistogramSeries(t *testing.T) {
	s := HistogramSeries("h", []float64{0.25, 0.75})
	if len(s.X) != 2 || s.X[0] != 0.25 || s.X[1] != 0.75 {
		t.Fatalf("bin centers wrong: %v", s.X)
	}
	if s.Y[0] != 0.25 || s.Y[1] != 0.75 {
		t.Fatal("values must copy through")
	}
}

func TestTableText(t *testing.T) {
	tab := Table{
		Title:   "demo table",
		Columns: []string{"name", "value"},
		Rows: [][]string{
			{"alpha", "1"},
			{"a-much-longer-name", "22"},
		},
	}
	text := tab.Text()
	if !strings.Contains(text, "demo table") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	// Header, separator, two rows, plus the title line.
	if len(lines) != 5 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), text)
	}
	// Columns align: "value" column starts at the same offset in each row.
	head := lines[1]
	offset := strings.Index(head, "value")
	for _, l := range lines[3:] {
		cell := l[offset:]
		if strings.HasPrefix(cell, " ") {
			t.Fatalf("misaligned row: %q", l)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		Columns: []string{"a", "b,c"},
		Rows:    [][]string{{"x", "y"}},
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, `a,"b,c"`) {
		t.Fatalf("header escaping wrong: %s", csv)
	}
	if !strings.Contains(csv, "x,y") {
		t.Fatal("row missing")
	}
}
