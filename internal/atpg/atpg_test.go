package atpg

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

func engineFor(t testing.TB, name string) *diffprop.Engine {
	t.Helper()
	e, err := diffprop.New(circuits.MustGet(name), nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGenerateAchievesFullCoverage(t *testing.T) {
	for _, name := range []string{"c17", "fadd", "c95s", "alu181"} {
		e := engineFor(t, name)
		fs := faults.CheckpointStuckAts(e.Circuit)
		res := GenerateStuckAt(e, fs, 1)
		p := simulate.FromVectors(len(e.Circuit.Inputs), res.Vectors)
		cov := simulate.CoverageStuckAt(e.Circuit, fs, p)
		want := len(fs) - len(res.Redundant)
		if cov.Detected != want {
			t.Fatalf("%s: %d/%d detected, %d redundant", name, cov.Detected, len(fs), len(res.Redundant))
		}
		if len(res.Vectors) == 0 || len(res.Vectors) > len(fs) {
			t.Fatalf("%s: suspicious vector count %d for %d faults", name, len(res.Vectors), len(fs))
		}
	}
}

func TestGenerateFindsRedundancy(t *testing.T) {
	// z = a OR (a AND b): ab/SA0 is redundant and must be reported, not
	// aborted or silently dropped.
	c := netlist.New("red")
	a := c.AddInput("a")
	b := c.AddInput("b")
	ab := c.AddGate("ab", netlist.And, a, b)
	z := c.AddGate("z", netlist.Or, a, ab)
	c.MarkOutput(z)
	e, err := diffprop.New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := e.Circuit
	fs := []faults.StuckAt{
		{Net: w.NetByName("ab"), Gate: -1, Pin: -1, Stuck: false},
		{Net: w.NetByName("ab"), Gate: -1, Pin: -1, Stuck: true},
	}
	res := GenerateStuckAt(e, fs, 1)
	if len(res.Redundant) != 1 || res.Redundant[0].Stuck != false {
		t.Fatalf("expected exactly ab/SA0 redundant, got %v", res.Redundant)
	}
	if len(res.Vectors) != 1 {
		t.Fatalf("one vector should cover ab/SA1, got %d", len(res.Vectors))
	}
}

func TestCompactKeepsCoverageAndShrinks(t *testing.T) {
	e := engineFor(t, "c95s")
	fs := faults.CheckpointStuckAts(e.Circuit)
	res := GenerateStuckAt(e, fs, 2)
	before := simulate.CoverageStuckAt(e.Circuit, fs,
		simulate.FromVectors(len(e.Circuit.Inputs), res.Vectors))
	compacted := Compact(e, fs, res.Vectors)
	after := simulate.CoverageStuckAt(e.Circuit, fs,
		simulate.FromVectors(len(e.Circuit.Inputs), compacted))
	if after.Detected != before.Detected {
		t.Fatalf("compaction lost coverage: %d -> %d", before.Detected, after.Detected)
	}
	if len(compacted) > len(res.Vectors) {
		t.Fatalf("compaction grew the set: %d -> %d", len(res.Vectors), len(compacted))
	}
}

func TestCompactEmpty(t *testing.T) {
	e := engineFor(t, "c17")
	if Compact(e, faults.CheckpointStuckAts(e.Circuit), nil) != nil {
		t.Fatal("compacting nothing must yield nothing")
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	e1 := engineFor(t, "c17")
	e2 := engineFor(t, "c17")
	fs1 := faults.CheckpointStuckAts(e1.Circuit)
	fs2 := faults.CheckpointStuckAts(e2.Circuit)
	r1 := GenerateStuckAt(e1, fs1, 42)
	r2 := GenerateStuckAt(e2, fs2, 42)
	if len(r1.Vectors) != len(r2.Vectors) {
		t.Fatal("nondeterministic vector count")
	}
	for i := range r1.Vectors {
		for j := range r1.Vectors[i] {
			if r1.Vectors[i][j] != r2.Vectors[i][j] {
				t.Fatal("nondeterministic vectors")
			}
		}
	}
}

func TestStuckAtTestSetForBridges(t *testing.T) {
	e := engineFor(t, "c95s")
	fs := faults.CheckpointStuckAts(e.Circuit)
	bs := faults.AllNFBFs(e.Circuit, faults.WiredAND)
	vectors, saCov, bfCov := StuckAtTestSetForBridges(e, fs, bs, 3)
	if len(vectors) == 0 {
		t.Fatal("no vectors generated")
	}
	// c95s has exactly one redundant checkpoint fault (a masked carry pin
	// inside a full-adder cell); everything else must be covered.
	red := len(GenerateStuckAt(e, fs, 3).Redundant)
	if red != 1 {
		t.Fatalf("c95s should prove exactly 1 redundant checkpoint fault, got %d", red)
	}
	want := float64(len(fs)-red) / float64(len(fs))
	if saCov < want-1e-12 {
		t.Fatalf("stuck-at coverage %v, want %v", saCov, want)
	}
	// The paper's premise: stuck-at test sets miss some NFBFs; but they
	// should still catch a substantial share.
	if bfCov <= 0.5 || bfCov > 1 {
		t.Fatalf("bridging coverage %v out of plausible range", bfCov)
	}
}

func TestGenerateHybridFullCoverage(t *testing.T) {
	for _, name := range []string{"c17", "c95s", "alu181"} {
		e := engineFor(t, name)
		fs := faults.CheckpointStuckAts(e.Circuit)
		res := GenerateHybrid(e, fs, 32, 7)
		p := simulate.FromVectors(len(e.Circuit.Inputs), res.Vectors)
		cov := simulate.CoverageStuckAt(e.Circuit, fs, p)
		want := len(fs) - len(res.Redundant)
		if cov.Detected != want {
			t.Fatalf("%s: hybrid covers %d/%d (redundant %d)", name, cov.Detected, len(fs), len(res.Redundant))
		}
	}
}

func TestGenerateHybridZeroRandomBudgetEqualsDeterministic(t *testing.T) {
	e := engineFor(t, "c17")
	fs := faults.CheckpointStuckAts(e.Circuit)
	res := GenerateHybrid(e, fs, 0, 7)
	p := simulate.FromVectors(len(e.Circuit.Inputs), res.Vectors)
	if simulate.CoverageStuckAt(e.Circuit, fs, p).Coverage() != 1 {
		t.Fatal("deterministic-only hybrid must still reach full coverage")
	}
}

func TestGenerateHybridFindsRedundancy(t *testing.T) {
	e := engineFor(t, "c95s")
	fs := faults.CheckpointStuckAts(e.Circuit)
	res := GenerateHybrid(e, fs, 64, 3)
	if len(res.Redundant) != 1 {
		t.Fatalf("c95s must yield exactly 1 redundant fault, got %d", len(res.Redundant))
	}
}
