// Package atpg turns Difference Propagation into a deterministic test
// generator, the role the paper introduces it in (§1, §3): because DP
// yields the complete test set of every fault, test generation is simply
// minterm extraction, redundancy identification is an empty test set, and
// no fault is ever aborted. Fault dropping (simulating each new vector
// against the remaining faults) and a greedy set-cover compaction pass
// keep the generated sets small.
package atpg

import (
	"math/rand"

	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/simulate"
)

// Result is the outcome of a test-generation campaign.
type Result struct {
	// Vectors is the generated test set, one bool per primary input in
	// declaration order.
	Vectors [][]bool
	// Redundant lists the faults proven to have no test at all.
	Redundant []faults.StuckAt
}

// GenerateStuckAt produces a test set detecting every detectable fault in
// fs. For each fault not already covered, the fault's complete test set is
// computed exactly and one test is extracted (don't-cares filled from the
// seeded generator); the new vector is then fault-simulated against the
// remaining faults so they drop out. Faults whose complete test set is
// empty are returned as proven redundant.
func GenerateStuckAt(e *diffprop.Engine, fs []faults.StuckAt, seed int64) Result {
	c := e.Circuit
	rng := rand.New(rand.NewSource(seed))
	res := Result{}
	remaining := make([]bool, len(fs))
	for i := range remaining {
		remaining[i] = true
	}
	for i, f := range fs {
		if !remaining[i] {
			continue
		}
		r := e.StuckAt(f)
		if !r.Detectable() {
			remaining[i] = false
			res.Redundant = append(res.Redundant, f)
			continue
		}
		// AnySat cubes are in BDD variable order; translate to primary-
		// input declaration order.
		cube := e.Manager().AnySat(r.Complete)
		v2i := e.VarToInput()
		vec := make([]bool, len(c.Inputs))
		for v, s := range cube {
			if v2i[v] < 0 {
				continue // cut variable: no corresponding input
			}
			switch s {
			case 1:
				vec[v2i[v]] = true
			case 0:
				vec[v2i[v]] = false
			default:
				vec[v2i[v]] = rng.Intn(2) == 1
			}
		}
		res.Vectors = append(res.Vectors, vec)
		// Fault dropping: one-pattern simulation against survivors.
		p := simulate.FromVectors(len(c.Inputs), [][]bool{vec})
		for j := i; j < len(fs); j++ {
			if remaining[j] && simulate.CountBits(simulate.DetectStuckAt(c, fs[j], p)) > 0 {
				remaining[j] = false
			}
		}
	}
	return res
}

// Compact reduces a test set by greedy set cover: vectors are re-simulated
// against the fault list, then repeatedly the vector covering the most
// still-uncovered faults is kept until coverage matches the input set's.
// The result never detects fewer faults than the input vectors.
func Compact(e *diffprop.Engine, fs []faults.StuckAt, vectors [][]bool) [][]bool {
	if len(vectors) == 0 {
		return nil
	}
	c := e.Circuit
	p := simulate.FromVectors(len(c.Inputs), vectors)
	// detects[v] = fault indices detected by vector v.
	detects := make([][]int, len(vectors))
	covered := make([]bool, len(fs))
	coverable := 0
	for j, f := range fs {
		mask := simulate.DetectStuckAt(c, f, p)
		hit := false
		for v := 0; v < len(vectors); v++ {
			if mask[v/64]>>uint(v%64)&1 == 1 {
				detects[v] = append(detects[v], j)
				hit = true
			}
		}
		if hit {
			coverable++
		}
	}
	var out [][]bool
	for coverable > 0 {
		best, bestGain := -1, 0
		for v := range detects {
			gain := 0
			for _, j := range detects[v] {
				if !covered[j] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best < 0 {
			break
		}
		out = append(out, vectors[best])
		for _, j := range detects[best] {
			if !covered[j] {
				covered[j] = true
				coverable--
			}
		}
	}
	return out
}

// GenerateHybrid is the classic industrial flow: cheap random patterns
// first (fault-graded in one deductive pass per vector), deterministic
// top-off with Difference Propagation for whatever survives. The result
// detects every detectable fault, like GenerateStuckAt, usually with far
// fewer expensive deterministic derivations.
func GenerateHybrid(e *diffprop.Engine, fs []faults.StuckAt, randomBudget int, seed int64) Result {
	c := e.Circuit
	rng := rand.New(rand.NewSource(seed))
	res := Result{}
	remaining := make([]bool, len(fs))
	covered := 0
	for i := range remaining {
		remaining[i] = true
	}
	// Phase 1: random patterns, kept only when they cover something new.
	for i := 0; i < randomBudget && covered < len(fs); i++ {
		vec := make([]bool, len(c.Inputs))
		for j := range vec {
			vec[j] = rng.Intn(2) == 1
		}
		hit := false
		for j, d := range simulate.DeductiveStuckAt(c, fs, vec) {
			if d && remaining[j] {
				remaining[j] = false
				covered++
				hit = true
			}
		}
		if hit {
			res.Vectors = append(res.Vectors, vec)
		}
	}
	// Phase 2: deterministic top-off, with fault dropping.
	for i, f := range fs {
		if !remaining[i] {
			continue
		}
		r := e.StuckAt(f)
		if !r.Detectable() {
			remaining[i] = false
			res.Redundant = append(res.Redundant, f)
			continue
		}
		cube := e.Manager().AnySat(r.Complete)
		v2i := e.VarToInput()
		vec := make([]bool, len(c.Inputs))
		for v, s := range cube {
			if v2i[v] < 0 {
				continue
			}
			switch s {
			case 1:
				vec[v2i[v]] = true
			case 0:
				vec[v2i[v]] = false
			default:
				vec[v2i[v]] = rng.Intn(2) == 1
			}
		}
		res.Vectors = append(res.Vectors, vec)
		for j, d := range simulate.DeductiveStuckAt(c, fs, vec) {
			if d && remaining[j] {
				remaining[j] = false
			}
		}
	}
	return res
}

// StuckAtTestSetForBridges is the Millman–McCluskey style experiment the
// paper motivates its bridging study with: generate (and compact) a
// complete stuck-at test set, then fault-simulate it against a bridging
// fault set and report the bridging coverage achieved.
func StuckAtTestSetForBridges(e *diffprop.Engine, fs []faults.StuckAt, bs []faults.Bridging, seed int64) (vectors [][]bool, saCoverage, bfCoverage float64) {
	gen := GenerateStuckAt(e, fs, seed)
	vectors = Compact(e, fs, gen.Vectors)
	c := e.Circuit
	p := simulate.FromVectors(len(c.Inputs), vectors)
	sa := simulate.CoverageStuckAt(c, fs, p)
	bf := simulate.CoverageBridging(c, bs, p)
	return vectors, sa.Coverage(), bf.Coverage()
}
