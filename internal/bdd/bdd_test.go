package bdd

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// evalAll evaluates f on every assignment over n variables and returns the
// truth table as a bit slice; the assignment index i sets variable v to
// bit v of i.
func evalAll(m *Manager, f Ref, n int) []bool {
	out := make([]bool, 1<<n)
	a := make([]bool, m.NumVars())
	for i := range out {
		for v := 0; v < n; v++ {
			a[v] = i>>(uint(v))&1 == 1
		}
		out[i] = m.Eval(f, a)
	}
	return out
}

func TestTerminals(t *testing.T) {
	m := NewAnon(3)
	if m.Eval(True, []bool{false, false, false}) != true {
		t.Fatal("True must evaluate to true")
	}
	if m.Eval(False, []bool{true, true, true}) != false {
		t.Fatal("False must evaluate to false")
	}
	if !IsConst(True) || !IsConst(False) || IsConst(m.Var(0)) {
		t.Fatal("IsConst misclassifies")
	}
	if Const(true) != True || Const(false) != False {
		t.Fatal("Const wrong")
	}
}

func TestVarAndNVar(t *testing.T) {
	m := New("a", "b")
	a := m.Var(0)
	na := m.NVar(0)
	if m.Not(a) != na {
		t.Fatalf("NVar(0) != Not(Var(0))")
	}
	if m.VarNamed("b") != m.Var(1) {
		t.Fatalf("VarNamed mismatch")
	}
	if m.VarIndex("a") != 0 || m.VarIndex("zz") != -1 {
		t.Fatalf("VarIndex wrong")
	}
}

func TestBasicOps(t *testing.T) {
	m := New("a", "b", "c")
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	cases := []struct {
		name string
		f    Ref
		want func(a, b, c bool) bool
	}{
		{"and", m.And(a, b), func(a, b, c bool) bool { return a && b }},
		{"or", m.Or(a, b), func(a, b, c bool) bool { return a || b }},
		{"xor", m.Xor(a, b), func(a, b, c bool) bool { return a != b }},
		{"nand", m.Nand(a, b), func(a, b, c bool) bool { return !(a && b) }},
		{"nor", m.Nor(a, b), func(a, b, c bool) bool { return !(a || b) }},
		{"xnor", m.Xnor(a, b), func(a, b, c bool) bool { return a == b }},
		{"not", m.Not(a), func(a, b, c bool) bool { return !a }},
		{"implies", m.Implies(a, b), func(a, b, c bool) bool { return !a || b }},
		{"diff", m.Diff(a, b), func(a, b, c bool) bool { return a && !b }},
		{"ite", m.Ite(a, b, c), func(a, b, c bool) bool {
			if a {
				return b
			}
			return c
		}},
		{"maj", m.Or(m.Or(m.And(a, b), m.And(a, c)), m.And(b, c)),
			func(a, b, c bool) bool { return (a && b) || (a && c) || (b && c) }},
	}
	for _, tc := range cases {
		for i := 0; i < 8; i++ {
			av, bv, cv := i&1 == 1, i&2 == 2, i&4 == 4
			got := m.Eval(tc.f, []bool{av, bv, cv})
			if got != tc.want(av, bv, cv) {
				t.Errorf("%s(%v,%v,%v) = %v", tc.name, av, bv, cv, got)
			}
		}
	}
}

func TestCanonicity(t *testing.T) {
	m := New("a", "b", "c")
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// Two syntactically different constructions of the same function must
	// yield the identical Ref (hash consing + reduction = canonical form).
	f1 := m.Or(m.And(a, b), m.And(a, c))
	f2 := m.And(a, m.Or(b, c))
	if f1 != f2 {
		t.Fatalf("canonicity violated: a(b+c) built two ways gives %d and %d", f1, f2)
	}
	// De Morgan.
	if m.Not(m.And(a, b)) != m.Or(m.Not(a), m.Not(b)) {
		t.Fatal("De Morgan violated")
	}
	// Double negation is identity.
	if m.Not(m.Not(f1)) != f1 {
		t.Fatal("double negation not identity")
	}
	// XOR expressed via AND/OR.
	if m.Xor(a, b) != m.Or(m.And(a, m.Not(b)), m.And(m.Not(a), b)) {
		t.Fatal("xor != canonical and/or form")
	}
}

func TestNFoldOps(t *testing.T) {
	m := NewAnon(4)
	vs := []Ref{m.Var(0), m.Var(1), m.Var(2), m.Var(3)}
	if m.AndN() != True || m.OrN() != False || m.XorN() != False {
		t.Fatal("empty folds wrong")
	}
	andAll := m.AndN(vs...)
	orAll := m.OrN(vs...)
	xorAll := m.XorN(vs...)
	for i := 0; i < 16; i++ {
		a := []bool{i&1 == 1, i&2 == 2, i&4 == 4, i&8 == 8}
		ones := 0
		for _, b := range a {
			if b {
				ones++
			}
		}
		if m.Eval(andAll, a) != (ones == 4) {
			t.Errorf("AndN wrong at %04b", i)
		}
		if m.Eval(orAll, a) != (ones > 0) {
			t.Errorf("OrN wrong at %04b", i)
		}
		if m.Eval(xorAll, a) != (ones%2 == 1) {
			t.Errorf("XorN wrong at %04b", i)
		}
	}
}

func TestRestrict(t *testing.T) {
	m := New("a", "b", "c")
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), c)
	if m.Restrict(f, 0, true) != m.Or(b, c) {
		t.Fatal("f|a=1 != b+c")
	}
	if m.Restrict(f, 0, false) != c {
		t.Fatal("f|a=0 != c")
	}
	if m.Restrict(f, 2, true) != True {
		t.Fatal("f|c=1 != true")
	}
	if m.Restrict(f, 2, false) != m.And(a, b) {
		t.Fatal("f|c=0 != ab")
	}
	// Restricting a variable outside the support is identity.
	g := m.And(a, b)
	if m.Restrict(g, 2, true) != g {
		t.Fatal("restrict outside support not identity")
	}
}

func TestQuantifiers(t *testing.T) {
	m := New("a", "b", "c")
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), m.And(m.Not(a), c))
	// ∃a f = b ∨ c ; ∀a f = b ∧ c
	if m.Exists(f, 0) != m.Or(b, c) {
		t.Fatal("exists wrong")
	}
	if m.ForAll(f, 0) != m.And(b, c) {
		t.Fatal("forall wrong")
	}
	// Quantifying all variables yields a constant reflecting SAT/TAUT.
	if m.Exists(f, 0, 1, 2) != True {
		t.Fatal("exists-all of satisfiable f must be True")
	}
	if m.ForAll(f, 0, 1, 2) != False {
		t.Fatal("forall-all of non-tautology must be False")
	}
}

func TestCompose(t *testing.T) {
	m := New("a", "b", "c")
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Xor(a, b)
	// f[b := a∧c] = a ⊕ (a∧c)
	got := m.Compose(f, 1, m.And(a, c))
	want := m.Xor(a, m.And(a, c))
	if got != want {
		t.Fatal("compose wrong")
	}
	// Composing a variable not in support is identity.
	if m.Compose(m.And(a, b), 2, c) != m.And(a, b) {
		t.Fatal("compose outside support not identity")
	}
}

func TestVectorCompose(t *testing.T) {
	m := New("a", "b", "c")
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.And(a, m.Xor(b, c))
	// Simultaneous swap a<->b must not cascade.
	got := m.VectorCompose(f, map[int]Ref{0: b, 1: a})
	want := m.And(b, m.Xor(a, c))
	if got != want {
		t.Fatal("vector compose must substitute simultaneously")
	}
}

func TestSatCount(t *testing.T) {
	m := New("a", "b", "c", "d")
	a, b := m.Var(0), m.Var(1)
	cases := []struct {
		f    Ref
		want int64
	}{
		{False, 0},
		{True, 16},
		{a, 8},
		{m.And(a, b), 4},
		{m.Or(a, b), 12},
		{m.Xor(a, b), 8},
		{m.AndN(m.Var(0), m.Var(1), m.Var(2), m.Var(3)), 1},
	}
	for i, tc := range cases {
		if got := m.SatCount(tc.f); got.Cmp(big.NewInt(tc.want)) != 0 {
			t.Errorf("case %d: SatCount = %v, want %d", i, got, tc.want)
		}
	}
	if f := m.SatFrac(m.Or(a, b)); f != 0.75 {
		t.Errorf("SatFrac = %v, want 0.75", f)
	}
}

func TestSatCountMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewAnon(6)
	for trial := 0; trial < 50; trial++ {
		f := randomFunc(m, rng, 6, 12)
		tt := evalAll(m, f, 6)
		n := int64(0)
		for _, v := range tt {
			if v {
				n++
			}
		}
		if got := m.SatCount(f); got.Cmp(big.NewInt(n)) != 0 {
			t.Fatalf("trial %d: SatCount = %v, exhaustive = %d", trial, got, n)
		}
	}
}

// randomFunc builds a random function over n variables with the given
// number of random binary operations.
func randomFunc(m *Manager, rng *rand.Rand, n, ops int) Ref {
	pool := make([]Ref, 0, n+ops)
	for i := 0; i < n; i++ {
		pool = append(pool, m.Var(i))
	}
	for i := 0; i < ops; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		var f Ref
		switch rng.Intn(4) {
		case 0:
			f = m.And(a, b)
		case 1:
			f = m.Or(a, b)
		case 2:
			f = m.Xor(a, b)
		default:
			f = m.Not(a)
		}
		pool = append(pool, f)
	}
	return pool[len(pool)-1]
}

func TestAnySat(t *testing.T) {
	m := NewAnon(5)
	if m.AnySat(False) != nil {
		t.Fatal("AnySat(False) must be nil")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		f := randomFunc(m, rng, 5, 10)
		if f == False {
			continue
		}
		cube := m.AnySat(f)
		a := make([]bool, 5)
		for v, s := range cube {
			a[v] = s == 1
		}
		if !m.Eval(f, a) {
			t.Fatalf("AnySat returned non-satisfying cube %v", cube)
		}
	}
}

func TestAllSatCoversExactly(t *testing.T) {
	m := NewAnon(5)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		f := randomFunc(m, rng, 5, 10)
		covered := make([]bool, 32)
		m.AllSat(f, func(cube []int8) bool {
			// Expand cube over don't-cares.
			free := []int{}
			base := 0
			for v, s := range cube {
				switch s {
				case 1:
					base |= 1 << v
				case -1:
					free = append(free, v)
				}
			}
			for mask := 0; mask < 1<<len(free); mask++ {
				idx := base
				for j, v := range free {
					if mask>>j&1 == 1 {
						idx |= 1 << v
					}
				}
				if covered[idx] {
					t.Fatalf("AllSat cubes overlap at %05b", idx)
				}
				covered[idx] = true
			}
			return true
		})
		tt := evalAll(m, f, 5)
		for i, want := range tt {
			if covered[i] != want {
				t.Fatalf("trial %d: coverage mismatch at %05b: got %v want %v", trial, i, covered[i], want)
			}
		}
	}
}

func TestAllSatEarlyStop(t *testing.T) {
	m := NewAnon(4)
	f := m.Or(m.Var(0), m.Var(1))
	calls := 0
	m.AllSat(f, func([]int8) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("AllSat did not stop early: %d calls", calls)
	}
}

func TestSupport(t *testing.T) {
	m := NewAnon(5)
	f := m.And(m.Var(1), m.Xor(m.Var(3), m.Var(4)))
	got := m.Support(f)
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support = %v, want %v", got, want)
		}
	}
	if m.SupportSize(True) != 0 || m.SupportSize(False) != 0 {
		t.Fatal("constants must have empty support")
	}
	// A function that cancels a variable must not list it.
	g := m.Xor(m.Var(0), m.Var(0))
	if m.SupportSize(g) != 0 {
		t.Fatal("x xor x must have empty support")
	}
}

func TestSize(t *testing.T) {
	m := NewAnon(3)
	if m.Size(True) != 1 || m.Size(False) != 1 {
		t.Fatal("terminal size must be 1")
	}
	// x0 has one decision node + the shared terminal.
	if m.Size(m.Var(0)) != 2 {
		t.Fatalf("Size(x0) = %d, want 2", m.Size(m.Var(0)))
	}
	// Odd parity over 3 vars: with complement edges both polarities of each
	// level share one node, so parity needs n decision nodes + the terminal.
	f := m.XorN(m.Var(0), m.Var(1), m.Var(2))
	if m.Size(f) != 3+1 {
		t.Fatalf("parity size = %d, want %d", m.Size(f), 3+1)
	}
}

func TestTransferSameOrder(t *testing.T) {
	m := New("a", "b", "c")
	f := m.Or(m.And(m.Var(0), m.Var(1)), m.Var(2))
	g := m.Xor(m.Var(0), m.Var(2))
	dst := New("a", "b", "c")
	out := m.Transfer(dst, f, g)
	for i := 0; i < 8; i++ {
		a := []bool{i&1 == 1, i&2 == 2, i&4 == 4}
		if m.Eval(f, a) != dst.Eval(out[0], a) || m.Eval(g, a) != dst.Eval(out[1], a) {
			t.Fatalf("transfer changed function at %03b", i)
		}
	}
}

func TestTransferDifferentOrder(t *testing.T) {
	m := New("a", "b", "c")
	f := m.Or(m.And(m.Var(0), m.Var(1)), m.Var(2))
	dst := New("c", "a", "b")
	out := m.Transfer(dst, f)
	for i := 0; i < 8; i++ {
		av, bv, cv := i&1 == 1, i&2 == 2, i&4 == 4
		if m.Eval(f, []bool{av, bv, cv}) != dst.Eval(out[0], []bool{cv, av, bv}) {
			t.Fatalf("reordered transfer changed function at %03b", i)
		}
	}
}

func TestRebuildDropsGarbage(t *testing.T) {
	m := NewAnon(8)
	rng := rand.New(rand.NewSource(3))
	var keep Ref
	for i := 0; i < 40; i++ {
		f := randomFunc(m, rng, 8, 30)
		if i == 0 {
			keep = f
		}
	}
	before := m.NodeCount()
	m2, roots := m.Rebuild([]Ref{keep})
	if m2.NodeCount() >= before {
		t.Fatalf("rebuild did not shrink: %d -> %d", before, m2.NodeCount())
	}
	for i := 0; i < 256; i++ {
		a := make([]bool, 8)
		for v := 0; v < 8; v++ {
			a[v] = i>>(uint(v))&1 == 1
		}
		if m.Eval(keep, a) != m2.Eval(roots[0], a) {
			t.Fatal("rebuild changed kept function")
		}
	}
}

func TestReorderTo(t *testing.T) {
	m := New("a", "b", "c", "d")
	// f = (a∧c) ∨ (b∧d): interleaved order is smaller than blocked order.
	f := m.Or(m.And(m.Var(0), m.Var(2)), m.And(m.Var(1), m.Var(3)))
	m2, roots := m.ReorderTo([]string{"a", "c", "b", "d"}, []Ref{f})
	if m2.Size(roots[0]) > m.Size(f) {
		t.Fatalf("interleaved order should not grow: %d -> %d", m.Size(f), m2.Size(roots[0]))
	}
	for i := 0; i < 16; i++ {
		av, bv, cv, dv := i&1 == 1, i&2 == 2, i&4 == 4, i&8 == 8
		if m.Eval(f, []bool{av, bv, cv, dv}) != m2.Eval(roots[0], []bool{av, cv, bv, dv}) {
			t.Fatal("reorder changed function")
		}
	}
}

func TestTotalSize(t *testing.T) {
	m := NewAnon(4)
	f := m.And(m.Var(0), m.Var(1))
	g := m.And(m.Var(0), m.Var(1)) // same ref
	if m.TotalSize(f, g) != m.Size(f) {
		t.Fatal("shared roots must not double count")
	}
	h := m.Xor(m.Var(2), m.Var(3))
	if m.TotalSize(f, h) >= m.Size(f)+m.Size(h) {
		t.Fatal("terminals must be shared in TotalSize")
	}
}

// Property: for random 8-variable functions built two different ways from
// the same truth table, the Refs are identical (canonical form).
func TestQuickCanonicalFromTruthTable(t *testing.T) {
	m := NewAnon(4)
	build := func(tt uint16, reverse bool) Ref {
		f := False
		order := make([]int, 16)
		for i := range order {
			if reverse {
				order[i] = 15 - i
			} else {
				order[i] = i
			}
		}
		for _, i := range order {
			if tt>>uint(i)&1 == 0 {
				continue
			}
			term := True
			for v := 0; v < 4; v++ {
				if i>>uint(v)&1 == 1 {
					term = m.And(term, m.Var(v))
				} else {
					term = m.And(term, m.NVar(v))
				}
			}
			f = m.Or(f, term)
		}
		return f
	}
	err := quick.Check(func(tt uint16) bool {
		return build(tt, false) == build(tt, true)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: SatCount of a function built from a random 16-entry truth table
// equals the table's popcount scaled to the full space.
func TestQuickSatCountFromTruthTable(t *testing.T) {
	m := NewAnon(4)
	err := quick.Check(func(tt uint16) bool {
		f := False
		for i := 0; i < 16; i++ {
			if tt>>uint(i)&1 == 0 {
				continue
			}
			term := True
			for v := 0; v < 4; v++ {
				if i>>uint(v)&1 == 1 {
					term = m.And(term, m.Var(v))
				} else {
					term = m.And(term, m.NVar(v))
				}
			}
			f = m.Or(f, term)
		}
		pop := 0
		for i := 0; i < 16; i++ {
			if tt>>uint(i)&1 == 1 {
				pop++
			}
		}
		return m.SatCount(f).Cmp(big.NewInt(int64(pop))) == 0
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: boolean algebra laws hold on randomly built functions.
func TestQuickAlgebraicLaws(t *testing.T) {
	m := NewAnon(6)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		f := randomFunc(m, rng, 6, 8)
		g := randomFunc(m, rng, 6, 8)
		h := randomFunc(m, rng, 6, 8)
		if m.And(f, g) != m.And(g, f) {
			t.Fatal("AND not commutative")
		}
		if m.Or(f, m.Or(g, h)) != m.Or(m.Or(f, g), h) {
			t.Fatal("OR not associative")
		}
		if m.And(f, m.Or(g, h)) != m.Or(m.And(f, g), m.And(f, h)) {
			t.Fatal("distribution fails")
		}
		if m.Xor(f, g) != m.Xor(g, f) {
			t.Fatal("XOR not commutative")
		}
		if m.Xor(f, f) != False {
			t.Fatal("f xor f != 0")
		}
		if m.Ite(f, g, h) != m.Or(m.And(f, g), m.And(m.Not(f), h)) {
			t.Fatal("ITE inconsistent with AND/OR form")
		}
		if m.Not(m.Xor(f, g)) != m.Xnor(f, g) {
			t.Fatal("XNOR inconsistent")
		}
		// Shannon expansion around variable 0.
		x := m.Var(0)
		if m.Ite(x, m.Restrict(f, 0, true), m.Restrict(f, 0, false)) != f {
			t.Fatal("Shannon expansion fails")
		}
	}
}

func TestTinyCachesPreserveCorrectness(t *testing.T) {
	// Direct-mapped caches may thrash at tiny sizes; results must stay
	// canonical regardless.
	m := NewAnon(8)
	m.setCacheBits(2)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		f := randomFunc(m, rng, 8, 40)
		g := m.Not(m.Not(f))
		if f != g {
			t.Fatal("tiny caches broke canonicity")
		}
		h := m.Xor(f, g)
		if h != False {
			t.Fatal("f xor f must be False under cache thrash")
		}
	}
}

func TestCacheGrowthDuringApply(t *testing.T) {
	// Build something large enough to force several unique-table growths
	// (which resize the operation caches mid-apply) and verify canonicity.
	m := NewAnon(16)
	var odd Ref = False
	for i := 0; i < 16; i++ {
		odd = m.Xor(odd, m.Var(i))
	}
	var odd2 Ref = False
	for i := 15; i >= 0; i-- {
		odd2 = m.Xor(m.Var(i), odd2)
	}
	if odd != odd2 {
		t.Fatal("parity built in two directions must be identical")
	}
	if m.Size(odd) != 16+1 {
		t.Fatalf("parity BDD size %d", m.Size(odd))
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	m := New("a", "b")
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Var out of range", func() { m.Var(5) })
	mustPanic("NVar out of range", func() { m.NVar(-1) })
	mustPanic("VarNamed unknown", func() { m.VarNamed("zzz") })
	mustPanic("duplicate names", func() { New("a", "a") })
	mustPanic("empty name", func() { New("") })
	mustPanic("Eval bad width", func() { m.Eval(True, []bool{true}) })
	mustPanic("Restrict range", func() { m.Restrict(True, 9, true) })
	mustPanic("Compose range", func() { m.Compose(True, 9, True) })
	mustPanic("Transfer missing var", func() { m.Transfer(New("a"), m.Var(1)) })
	mustPanic("Reorder wrong len", func() { m.ReorderTo([]string{"a"}, nil) })
	mustPanic("Reorder unknown", func() { m.ReorderTo([]string{"a", "z"}, nil) })
	mustPanic("Reorder dup", func() { m.ReorderTo([]string{"a", "a"}, nil) })
}

func TestStringer(t *testing.T) {
	m := New("a")
	if m.String(True) != "true" || m.String(False) != "false" {
		t.Fatal("terminal strings wrong")
	}
	if s := m.String(m.Var(0)); s == "" {
		t.Fatal("empty node string")
	}
}

func TestAccessors(t *testing.T) {
	m := New("p", "q")
	f := m.And(m.Var(0), m.Var(1))
	if m.Level(f) != 0 || m.Level(True) != -1 {
		t.Fatal("Level wrong")
	}
	if m.Low(f) != False {
		t.Fatal("Low of p∧q at p=0 must be False")
	}
	if m.High(f) != m.Var(1) {
		t.Fatal("High of p∧q at p=1 must be q")
	}
	if m.VarName(1) != "q" || m.NumVars() != 2 {
		t.Fatal("names wrong")
	}
	names := m.Names()
	names[0] = "mutated"
	if m.VarName(0) != "p" {
		t.Fatal("Names must return a copy")
	}
}

func TestNewAnonNames(t *testing.T) {
	m := NewAnon(3)
	if m.VarName(0) != "x0" || m.VarName(2) != "x2" {
		t.Fatal("anonymous names wrong")
	}
}

func TestCountMinterms64(t *testing.T) {
	m := NewAnon(10)
	f := m.Var(0)
	if m.CountMinterms64(f) != 512 {
		t.Fatalf("CountMinterms64 = %v, want 512", m.CountMinterms64(f))
	}
	if m.CountMinterms64(True) != 1024 || m.CountMinterms64(False) != 0 {
		t.Fatal("terminal counts wrong")
	}
}

func TestDOT(t *testing.T) {
	m := New("a", "b")
	f := m.And(m.Var(0), m.Var(1))
	g := m.Xor(m.Var(0), m.Var(1))
	dot := m.DOT("pair", f, g)
	for _, want := range []string{"digraph", "rank=same", "style=dashed", `label="a"`, `label="b"`, "root0", "root1", "f0 [", "f1 ["} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Terminals only:
	dot = m.DOT("consts", True, False)
	if !strings.Contains(dot, "root1 -> f0") || !strings.Contains(dot, "root0 -> f1") {
		t.Fatalf("terminal roots wrong:\n%s", dot)
	}
}

// Property: Shannon decomposition of the satisfying-set count.
func TestQuickSatCountShannon(t *testing.T) {
	m := NewAnon(7)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		f := randomFunc(m, rng, 7, 14)
		v := rng.Intn(7)
		lo := m.SatCount(m.Restrict(f, v, false))
		hi := m.SatCount(m.Restrict(f, v, true))
		// Each cofactor count is over all 7 vars; halve to remove the
		// restricted variable's freedom.
		sum := new(big.Int).Add(lo, hi)
		sum.Rsh(sum, 1)
		if m.SatCount(f).Cmp(sum) != 0 {
			t.Fatalf("Shannon count fails: |f|=%v, (|f0|+|f1|)/2=%v", m.SatCount(f), sum)
		}
	}
}

// Property: quantifier counts bracket the function count.
func TestQuickQuantifierBracket(t *testing.T) {
	m := NewAnon(6)
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		f := randomFunc(m, rng, 6, 12)
		v := rng.Intn(6)
		all := m.SatCount(m.ForAll(f, v))
		ex := m.SatCount(m.Exists(f, v))
		cnt := m.SatCount(f)
		if all.Cmp(cnt) > 0 || cnt.Cmp(ex) > 0 {
			t.Fatalf("|∀f| <= |f| <= |∃f| violated: %v %v %v", all, cnt, ex)
		}
	}
}

// Property: support of a composition is contained in the union of
// supports (minus the substituted variable, plus g's support).
func TestQuickComposeSupport(t *testing.T) {
	m := NewAnon(6)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		f := randomFunc(m, rng, 6, 10)
		g := randomFunc(m, rng, 6, 6)
		v := rng.Intn(6)
		h := m.Compose(f, v, g)
		allowed := map[int]bool{}
		for _, s := range m.Support(f) {
			if s != v {
				allowed[s] = true
			}
		}
		for _, s := range m.Support(g) {
			allowed[s] = true
		}
		for _, s := range m.Support(h) {
			if !allowed[s] {
				t.Fatalf("compose introduced variable %d", s)
			}
		}
	}
}
