package bdd

import "fmt"

// Restrict returns f with the variable at order position v fixed to val
// (the cofactor f|v=val).
func (m *Manager) Restrict(f Ref, v int, val bool) Ref {
	if v < 0 || v >= len(m.t.names) {
		panic(fmt.Sprintf("bdd: restrict variable %d out of range", v))
	}
	memo := map[int32]Ref{}
	return m.restrict(f, int32(v), val, memo)
}

// restrict memoizes per node id: restriction commutes with complement, so
// one entry serves both polarities (the caller's complement bit is
// re-applied on the way out).
func (m *Manager) restrict(f Ref, v int32, val bool, memo map[int32]Ref) Ref {
	id := int32(f) >> 1
	n := m.t.node(id)
	if n.level > v {
		// Terminals have terminalLevel, so this also covers constants.
		return f
	}
	c := f & 1
	if r, ok := memo[id]; ok {
		return r ^ c
	}
	var r Ref
	if n.level == v {
		if val {
			r = n.high
		} else {
			r = n.low
		}
	} else {
		r = m.mk(n.level, m.restrict(n.low, v, val, memo), m.restrict(n.high, v, val, memo))
	}
	memo[id] = r
	return r ^ c
}

// Exists existentially quantifies the listed variables out of f.
func (m *Manager) Exists(f Ref, vars ...int) Ref {
	for _, v := range vars {
		f = m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
	}
	return f
}

// ForAll universally quantifies the listed variables out of f.
func (m *Manager) ForAll(f Ref, vars ...int) Ref {
	for _, v := range vars {
		f = m.And(m.Restrict(f, v, false), m.Restrict(f, v, true))
	}
	return f
}

// Compose substitutes the function g for the variable at order position v
// inside f: f[v := g].
func (m *Manager) Compose(f Ref, v int, g Ref) Ref {
	if v < 0 || v >= len(m.t.names) {
		panic(fmt.Sprintf("bdd: compose variable %d out of range", v))
	}
	memo := map[int32]Ref{}
	return m.compose(f, int32(v), g, memo)
}

func (m *Manager) compose(f Ref, v int32, g Ref, memo map[int32]Ref) Ref {
	id := int32(f) >> 1
	n := m.t.node(id)
	if n.level > v {
		return f
	}
	c := f & 1
	if r, ok := memo[id]; ok {
		return r ^ c
	}
	var r Ref
	if n.level == v {
		r = m.Ite(g, n.high, n.low)
	} else {
		lo := m.compose(n.low, v, g, memo)
		hi := m.compose(n.high, v, g, memo)
		r = m.Ite(m.Var(int(n.level)), hi, lo)
	}
	memo[id] = r
	return r ^ c
}

// VectorCompose simultaneously substitutes subst[v] (when present) for each
// variable v in f. Substitutions see the original variables, not each other.
func (m *Manager) VectorCompose(f Ref, subst map[int]Ref) Ref {
	memo := map[int32]Ref{}
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		if IsConst(r) {
			return r
		}
		id := int32(r) >> 1
		c := r & 1
		if out, ok := memo[id]; ok {
			return out ^ c
		}
		n := m.t.node(id)
		lo := rec(n.low)
		hi := rec(n.high)
		top, ok := subst[int(n.level)]
		if !ok {
			top = m.Var(int(n.level))
		}
		out := m.Ite(top, hi, lo)
		memo[id] = out
		return out ^ c
	}
	return rec(f)
}
