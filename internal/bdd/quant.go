package bdd

import "fmt"

// Restrict returns f with the variable at order position v fixed to val
// (the cofactor f|v=val).
func (m *Manager) Restrict(f Ref, v int, val bool) Ref {
	if v < 0 || v >= len(m.names) {
		panic(fmt.Sprintf("bdd: restrict variable %d out of range", v))
	}
	memo := map[Ref]Ref{}
	return m.restrict(f, int32(v), val, memo)
}

func (m *Manager) restrict(f Ref, v int32, val bool, memo map[Ref]Ref) Ref {
	lv := m.level[f]
	if lv > v {
		// Terminals have terminalLevel, so this also covers constants.
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	var r Ref
	if lv == v {
		if val {
			r = m.high[f]
		} else {
			r = m.low[f]
		}
	} else {
		r = m.mk(lv, m.restrict(m.low[f], v, val, memo), m.restrict(m.high[f], v, val, memo))
	}
	memo[f] = r
	return r
}

// Exists existentially quantifies the listed variables out of f.
func (m *Manager) Exists(f Ref, vars ...int) Ref {
	for _, v := range vars {
		f = m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
	}
	return f
}

// ForAll universally quantifies the listed variables out of f.
func (m *Manager) ForAll(f Ref, vars ...int) Ref {
	for _, v := range vars {
		f = m.And(m.Restrict(f, v, false), m.Restrict(f, v, true))
	}
	return f
}

// Compose substitutes the function g for the variable at order position v
// inside f: f[v := g].
func (m *Manager) Compose(f Ref, v int, g Ref) Ref {
	if v < 0 || v >= len(m.names) {
		panic(fmt.Sprintf("bdd: compose variable %d out of range", v))
	}
	memo := map[Ref]Ref{}
	return m.compose(f, int32(v), g, memo)
}

func (m *Manager) compose(f Ref, v int32, g Ref, memo map[Ref]Ref) Ref {
	lv := m.level[f]
	if lv > v {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	var r Ref
	if lv == v {
		r = m.Ite(g, m.high[f], m.low[f])
	} else {
		lo := m.compose(m.low[f], v, g, memo)
		hi := m.compose(m.high[f], v, g, memo)
		top := m.mk(lv, False, True) // the variable itself
		r = m.Ite(top, hi, lo)
	}
	memo[f] = r
	return r
}

// VectorCompose simultaneously substitutes subst[v] (when present) for each
// variable v in f. Substitutions see the original variables, not each other.
func (m *Manager) VectorCompose(f Ref, subst map[int]Ref) Ref {
	memo := map[Ref]Ref{}
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		if IsConst(r) {
			return r
		}
		if out, ok := memo[r]; ok {
			return out
		}
		lv := m.level[r]
		lo := rec(m.low[r])
		hi := rec(m.high[r])
		v := int(lv)
		var top Ref
		if g, ok := subst[v]; ok {
			top = g
		} else {
			top = m.mk(lv, False, True)
		}
		out := m.Ite(top, hi, lo)
		memo[r] = out
		return out
	}
	return rec(f)
}
