package bdd

import "testing"

// TestCacheStatsCount verifies the operation-cache counters move and that
// repeated identical operations register as hits.
func TestCacheStatsCount(t *testing.T) {
	m := NewAnon(8)
	if s := m.CacheStats(); s != (CacheStats{}) {
		t.Fatalf("fresh manager has non-zero stats: %+v", s)
	}
	a := m.Xor(m.Var(0), m.Var(1))
	b := m.Xor(m.Var(2), m.Var(3))
	m.And(a, b)
	after := m.CacheStats()
	if after.ApplyMisses == 0 {
		t.Fatal("apply misses never counted")
	}
	// The same top-level operation again must be a cache hit.
	m.And(a, b)
	again := m.CacheStats()
	if again.ApplyHits <= after.ApplyHits {
		t.Fatalf("repeated And not counted as hit: %+v -> %+v", after, again)
	}
	m.Not(m.And(a, b))
	m.Ite(a, b, m.Var(4))
	s := m.CacheStats()
	// Not is a complement-edge bit flip: free, uncached, uncounted.
	if s.NotHits+s.NotMisses != 0 {
		t.Fatalf("not counters moved (%d/%d); complement-edge Not must be free", s.NotHits, s.NotMisses)
	}
	if s.IteHits+s.IteMisses == 0 {
		t.Fatal("ite cache counters never moved")
	}
	if r := s.HitRate(); r < 0 || r > 1 {
		t.Fatalf("hit rate %v out of range", r)
	}
	var sum CacheStats
	sum.Add(s)
	sum.Add(s)
	if sum.ApplyMisses != 2*s.ApplyMisses {
		t.Fatal("Add must accumulate")
	}
}

// TestTransferCarriesSatCounts checks that same-order Transfer moves the
// cached satisfying-set counts with the nodes, and that counting in the
// destination still produces correct values.
func TestTransferCarriesSatCounts(t *testing.T) {
	m := NewAnon(6)
	f := m.Or(m.And(m.Var(0), m.Var(1)), m.Xor(m.Var(2), m.Var(3)))
	want := m.SatCount(f)
	if len(m.satC) == 0 {
		t.Fatal("SatCount cached nothing")
	}
	dst := NewAnon(6)
	out := m.Transfer(dst, f)
	if len(dst.satC) == 0 {
		t.Fatal("transfer did not carry sat counts")
	}
	if got := dst.SatCount(out[0]); got.Cmp(want) != 0 {
		t.Fatalf("transferred count %v, want %v", got, want)
	}
	if dst.SatFrac(out[0]) != m.SatFrac(f) {
		t.Fatal("sat fractions disagree after transfer")
	}
}

// TestTransferReorderSkipsSatCounts ensures the ITE (order-changing) path
// does not carry counts — levels change, so cached values would be wrong.
func TestTransferReorderSkipsSatCounts(t *testing.T) {
	m := New("a", "b", "c")
	f := m.And(m.Var(0), m.Or(m.Var(1), m.Var(2)))
	want := m.SatCount(f)
	dst := New("c", "b", "a")
	out := m.Transfer(dst, f)
	if got := dst.SatCount(out[0]); got.Cmp(want) != 0 {
		t.Fatalf("reordered count %v, want %v", got, want)
	}
}
