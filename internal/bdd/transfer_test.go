package bdd

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"time"
)

// buildHeavyRng is buildHeavy with a caller-owned rng, so one manager can
// host many distinct random functions.
func buildHeavyRng(m *Manager, rng *rand.Rand, minterms int) Ref {
	acc := False
	for i := 0; i < minterms; i++ {
		cube := True
		for v := 0; v < m.NumVars(); v++ {
			if rng.Intn(2) == 1 {
				cube = m.And(cube, m.Var(v))
			} else {
				cube = m.And(cube, m.NVar(v))
			}
		}
		acc = m.Or(acc, cube)
	}
	return acc
}

// TestTransferIntoBudgetArmedManager is the regression test for the
// mid-transfer abort bug: a different-order Transfer runs through dst.Ite,
// which charges dst's operation budget and checks its node limit, so a
// tightly armed destination used to panic ErrBudget/ErrNodeLimit halfway
// through the copy. Transfer must disarm both meters for the duration and
// restore them exactly afterwards.
func TestTransferIntoBudgetArmedManager(t *testing.T) {
	m := New("a", "b", "c", "d", "e", "f")
	f := buildHeavy(m, 24)
	want := m.SatCount(f)

	// Reversed order forces the Ite path; budget of 1 op and a 2-node limit
	// would both trip immediately if transfer charged them.
	dst := New("f", "e", "d", "c", "b", "a")
	dst.SetBudget(1, time.Time{})
	dst.SetNodeLimit(2)
	out := func() []Ref {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("transfer panicked through the armed budget: %v", r)
			}
		}()
		return m.Transfer(dst, f)
	}()
	if got := dst.SatCount(out[0]); got.Cmp(want) != 0 {
		t.Fatalf("transferred function counts %v, want %v", got, want)
	}

	// The meters must be rearmed after the copy: ordinary work on dst still
	// aborts, with the ops charged during transfer not counted against it.
	if dst.NodeLimit() != 2 {
		t.Fatalf("node limit not restored: %d", dst.NodeLimit())
	}
	func() {
		defer func() {
			if r := recover(); r != ErrBudget && r != ErrNodeLimit {
				t.Fatalf("restored meters did not fire, got %v", r)
			}
		}()
		g := False
		for i := 0; i < dst.NumVars(); i++ {
			g = dst.Xor(g, dst.Var(i))
		}
		t.Fatalf("armed destination allowed unbounded work")
	}()

	// Same-order path must be shielded too (it allocates via dst.mk).
	dst2 := New("a", "b", "c", "d", "e", "f")
	dst2.SetNodeLimit(2)
	out2 := m.Transfer(dst2, f)
	if got := dst2.SatCount(out2[0]); got.Cmp(want) != 0 {
		t.Fatalf("same-order transfer counts %v, want %v", got, want)
	}
}

// TestCountMinterms64WideRounds pins the documented contract of
// CountMinterms64 beyond 53 inputs: the count of OR over n variables is
// 2^n − 1, which for n > 53 is not representable in a float64, so the
// result must be the correctly rounded neighbor (here 2^n), not the exact
// value and not garbage. SatCount stays exact.
func TestCountMinterms64WideRounds(t *testing.T) {
	const n = 60
	m := NewAnon(n)
	f := False
	for i := 0; i < n; i++ {
		f = m.Or(f, m.Var(i))
	}
	exact := m.SatCount(f)
	// Exact check: 2^60 - 1.
	if exact.BitLen() != n || exact.Bit(0) != 1 {
		t.Fatalf("SatCount(or-60) = %v, want 2^60-1", exact)
	}
	got := m.CountMinterms64(f)
	want := math.Ldexp(1, n) // nearest float64 to 2^60-1 is 2^60 itself
	if got != want {
		t.Fatalf("CountMinterms64 = %v, want rounded %v", got, want)
	}
	fexact, _ := new(big.Float).SetInt(exact).Float64()
	if got != fexact {
		t.Fatalf("CountMinterms64 %v disagrees with correctly rounded %v", got, fexact)
	}
	// Sanity on the fraction path the doc points callers to.
	if frac := m.SatFrac(f); math.Abs(frac-1) > 1e-15 {
		t.Fatalf("SatFrac(or-60) = %v, want ~1", frac)
	}
}

// BenchmarkTransferSatCarry measures the same-order Transfer fast path
// against a source manager whose sat-count cache is much larger than the
// transferred cone. The carry loop iterates the transfer memo (the nodes
// actually copied) and probes the cache, so per-clone cost must track the
// transferred node count, not the resident cache size — compare the
// small/large pairs: per-op time should be close for equal cones no
// matter how big the cache behind them is.
func BenchmarkTransferSatCarry(b *testing.B) {
	build := func(nCached int) (*Manager, Ref) {
		m := NewAnon(16)
		// One small cone to transfer...
		f := m.Or(m.And(m.Var(0), m.Var(1)), m.Xor(m.Var(2), m.Var(3)))
		m.SatCount(f)
		// ...and a large resident population with cached counts.
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < nCached; i++ {
			g := buildHeavyRng(m, rng, 6)
			m.SatCount(g)
		}
		return m, f
	}
	for _, tc := range []struct {
		name   string
		cached int
	}{
		{"cache-small", 8},
		{"cache-large", 512},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m, f := build(tc.cached)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst := NewAnon(16)
				m.Transfer(dst, f)
			}
		})
	}
}

// BenchmarkTransferCone scales the transferred cone itself (the large-
// cache counterpart above holds it fixed): per-op time here should grow
// with the cone, confirming the clone cost is linear in transferred
// nodes.
func BenchmarkTransferCone(b *testing.B) {
	for _, minterms := range []int{16, 128} {
		b.Run(map[int]string{16: "cone-small", 128: "cone-large"}[minterms], func(b *testing.B) {
			m := NewAnon(16)
			rng := rand.New(rand.NewSource(5))
			f := buildHeavyRng(m, rng, minterms)
			m.SatCount(f)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst := NewAnon(16)
				m.Transfer(dst, f)
			}
		})
	}
}
