package bdd

import (
	"errors"
	"testing"
	"time"
)

// recoverNodeLimit runs fn and reports whether it aborted with ErrNodeLimit.
func recoverNodeLimit(t *testing.T, fn func()) (aborted bool) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrNodeLimit) {
			t.Fatalf("panic value %v, want ErrNodeLimit", r)
		}
		aborted = true
	}()
	fn()
	return false
}

func TestNodeLimitAborts(t *testing.T) {
	m := NewAnon(32)
	m.SetNodeLimit(200)
	if !recoverNodeLimit(t, func() { buildHeavy(m, 64) }) {
		t.Fatal("a 200-node watermark survived a build of thousands of nodes")
	}
	if got := m.NodeCount(); got != 200 {
		t.Fatalf("node count at abort = %d, want exactly the watermark 200", got)
	}
	// The manager must stay usable after the abort, like ErrBudget.
	m.SetNodeLimit(0)
	f := m.And(m.Var(0), m.Var(1))
	if !m.Eval(f, evalAssign(m, 0, 1)) {
		t.Fatal("manager broken after node-limit abort")
	}
	if recoverNodeLimit(t, func() { buildHeavy(m, 64) }) {
		t.Fatal("disarmed watermark still aborts")
	}
}

func TestNodeLimitDistinguishableFromBudget(t *testing.T) {
	if errors.Is(ErrNodeLimit, ErrBudget) || errors.Is(ErrBudget, ErrNodeLimit) {
		t.Fatal("ErrNodeLimit and ErrBudget must be distinguishable sentinels")
	}
}

func TestGCReclaimsGarbageInPlace(t *testing.T) {
	m := NewAnon(16)
	live := buildHeavy(m, 8)
	// Garbage: a heavy intermediate that no root keeps alive.
	buildHeavy(m, 64)
	before := m.NodeCount()
	liveSize := m.TotalSize(live)
	roots, res := m.GC([]Ref{live})
	if res.Before != before {
		t.Fatalf("GCResult.Before = %d, want %d", res.Before, before)
	}
	if res.Reclaimed() <= 0 {
		t.Fatalf("GC reclaimed %d nodes, want > 0 (table had %d, live set %d)",
			res.Reclaimed(), before, liveSize)
	}
	if res.Sifted {
		t.Fatal("plain GC reported a sift")
	}
	if got := m.NodeCount(); got != res.After || got >= before {
		t.Fatalf("node count after GC = %d (result says %d, before %d)", got, res.After, before)
	}
	// The surviving root must be the same function.
	m2 := NewAnon(16)
	want := buildHeavy(m2, 8)
	if !equalFunctions(m, roots[0], m2, want) {
		t.Fatal("GC changed the live function")
	}
}

func TestGCKeepsBudgetAndCumulativeStats(t *testing.T) {
	m := NewAnon(16)
	live := buildHeavy(m, 16)
	preStats := m.CacheStats()
	if preStats.ApplyMisses == 0 {
		t.Fatal("heavy build charged no apply misses")
	}
	m.SetBudget(1<<40, time.Time{})
	m.SetNodeLimit(1 << 20)
	_, _ = m.GC([]Ref{live})
	post := m.CacheStats()
	if post.ApplyMisses < preStats.ApplyMisses {
		t.Fatalf("GC lost cumulative cache stats: %d apply misses, had %d",
			post.ApplyMisses, preStats.ApplyMisses)
	}
	if m.NodeLimit() != 1<<20 {
		t.Fatalf("GC dropped the armed node watermark: %d", m.NodeLimit())
	}
	// The budget must still be armed: a tiny re-arm must abort a new build.
	m.SetBudget(10, time.Time{})
	if !recoverBudget(t, func() { buildHeavy(m, 32) }) {
		t.Fatal("budget no longer fires after GC")
	}
}

func TestGCCarriesSatCounts(t *testing.T) {
	m := NewAnon(12)
	live := buildHeavy(m, 8)
	want := m.SatFrac(live)
	roots, _ := m.GC([]Ref{live})
	if got := m.SatFrac(roots[0]); got != want {
		t.Fatalf("SatFrac after GC = %v, want %v", got, want)
	}
}

func TestReduceUnderSiftsWhenLiveSetExceedsWatermark(t *testing.T) {
	// The classic order-sensitive function x0·x1 + x2·x3 + ... built under
	// the worst interleaved order: sifting must shrink it.
	const pairs = 6
	names := make([]string, 2*pairs)
	for i := range names {
		names[i] = "v" + string(rune('a'+i))
	}
	m := New(names...)
	f := False
	for i := 0; i < pairs; i++ {
		f = m.Or(f, m.And(m.Var(i), m.Var(pairs+i)))
	}
	liveBefore := m.TotalSize(f)
	roots, res := m.ReduceUnder([]Ref{f}, 32, 4)
	if !res.Sifted {
		t.Fatalf("live set of %d over watermark 32 did not trigger the sift rung", liveBefore)
	}
	if res.After >= liveBefore {
		t.Fatalf("sift did not shrink the interleaved function: %d -> %d", liveBefore, res.After)
	}
	// Same function under the new order.
	m2 := New(names...)
	f2 := False
	for i := 0; i < pairs; i++ {
		f2 = m2.Or(f2, m2.And(m2.Var(i), m2.Var(pairs+i)))
	}
	if !equalFunctions(m, roots[0], m2, f2) {
		t.Fatal("ReduceUnder changed the function")
	}
}

func TestReduceUnderSkipsSiftBelowWatermark(t *testing.T) {
	m := NewAnon(8)
	f := m.And(m.Var(0), m.Var(1))
	buildHeavy(m, 32) // garbage
	namesBefore := m.Names()
	_, res := m.ReduceUnder([]Ref{f}, 1<<20, 4)
	if res.Sifted {
		t.Fatal("sift rung fired although the live set fits the watermark")
	}
	for i, n := range m.Names() {
		if namesBefore[i] != n {
			t.Fatal("GC-only ReduceUnder changed the variable order")
		}
	}
}

func TestDeadlineMaskTightensNearDeadline(t *testing.T) {
	m := NewAnon(4)
	// A distant deadline keeps the full throttle.
	m.SetBudget(0, time.Now().Add(time.Hour))
	if m.deadlineMask != deadlineCheckMask {
		t.Fatalf("armed mask = %#x, want %#x", m.deadlineMask, deadlineCheckMask)
	}
	m.ops = deadlineCheckMask // the next charge performs the clock check
	m.chargeOp()
	if m.deadlineMask != deadlineCheckMask {
		t.Fatalf("mask tightened %v before the deadline", time.Hour)
	}
	// A deadline inside the near window tightens the throttle on the next
	// check. A pathological scheduler pause between arming and checking can
	// expire the deadline instead (a legal abort), so retry a few times and
	// require the tightening path to be observed at least once.
	tightened := false
	for attempt := 0; attempt < 10 && !tightened; attempt++ {
		m.SetBudget(0, time.Now().Add(deadlineNear-100*time.Microsecond))
		m.ops = deadlineCheckMask
		expired := recoverBudget(t, func() { m.chargeOp() })
		tightened = !expired && m.deadlineMask == deadlineNearMask
	}
	if !tightened {
		t.Fatalf("mask never tightened inside the near window (mask %#x)", m.deadlineMask)
	}
	// Once tightened, checks run every deadlineNearMask+1 charges (push the
	// deadline out directly so the still-armed near deadline cannot expire
	// under us; SetBudget would reset the mask).
	m.deadline = time.Now().Add(time.Hour)
	m.ops = deadlineNearMask
	if recoverBudget(t, func() { m.chargeOp() }) {
		t.Fatal("tightened check aborted before the deadline")
	}
	if m.deadlineMask != deadlineNearMask {
		t.Fatalf("tightened mask changed to %#x without re-arming", m.deadlineMask)
	}
	// Re-arming restores the full-throttle mask.
	m.SetBudget(0, time.Now().Add(time.Hour))
	if m.deadlineMask != deadlineCheckMask {
		t.Fatalf("re-armed mask = %#x, want %#x", m.deadlineMask, deadlineCheckMask)
	}
	m.ClearBudget()
}

// equalFunctions compares two functions living in different managers (and
// possibly under different variable orders) by transfer into a common
// fresh manager with a canonical order.
func equalFunctions(ma *Manager, fa Ref, mb *Manager, fb Ref) bool {
	ref := New(ma.Names()...)
	ra := ma.Transfer(ref, fa)[0]
	rb := mb.Transfer(ref, fb)[0]
	return ra == rb
}
