package bdd

import (
	"math/rand"
	"sync"
	"testing"
)

// TestShareViewsOneTable checks the basic sharing contract: views created
// with Share operate on the same node store, so canonical functions built
// on different views are the very same Ref.
func TestShareViewsOneTable(t *testing.T) {
	m := NewAnon(8)
	if m.Views() != 1 {
		t.Fatalf("fresh manager has %d views, want 1", m.Views())
	}
	v := m.Share()
	if m.Views() != 2 || v.Views() != 2 {
		t.Fatalf("after Share views = %d/%d, want 2/2", m.Views(), v.Views())
	}
	f := m.Or(m.And(m.Var(0), m.Var(1)), m.Xor(m.Var(2), m.Var(3)))
	g := v.Or(v.And(v.Var(0), v.Var(1)), v.Xor(v.Var(2), v.Var(3)))
	if f != g {
		t.Fatalf("same function on two views got distinct refs %v vs %v", f, g)
	}
	if m.NodeCount() != v.NodeCount() {
		t.Fatal("views disagree on the shared node count")
	}
	// Budgets are per-view: arming one view must not meter the other.
	v.SetNodeLimit(1)
	if got := m.NodeLimit(); got != 0 {
		t.Fatalf("node limit leaked across views: %d", got)
	}
	// Stats are per-view too: work on m must not move v's counters.
	vs := v.CacheStats()
	m.And(f, m.Var(4))
	if v.CacheStats() != vs {
		t.Fatal("cache stats aliased across views")
	}
}

// TestConcurrentUniqueTableStress hammers one shared table from many
// goroutines at once — concurrent mk/ite on overlapping subfunctions —
// and then checks canonicity survived: every worker must end up with the
// identical Ref for the common function, and the function must still
// evaluate correctly. Run under -race this doubles as the memory-model
// check for the lock-striped unique table and the seqlock op caches.
func TestConcurrentUniqueTableStress(t *testing.T) {
	const (
		workers = 8
		vars    = 14
		rounds  = 60
	)
	m := NewAnon(vars)
	// Pin a small cache so growth, eviction, and collision paths all run.
	m.setCacheBits(minCacheBits)
	views := make([]*Manager, workers)
	for w := range views {
		views[w] = m.Share()
	}
	final := make([]Ref, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := views[w]
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			// Private per-worker churn: random minterm ORs, different per
			// worker, so the table sees disjoint and overlapping inserts.
			acc := False
			for r := 0; r < rounds; r++ {
				cube := True
				for i := 0; i < vars; i++ {
					if rng.Intn(2) == 1 {
						cube = v.And(cube, v.Var(i))
					} else {
						cube = v.And(cube, v.NVar(i))
					}
				}
				acc = v.Or(acc, cube)
			}
			// The common function every worker must agree on.
			parity := False
			for i := 0; i < vars; i++ {
				parity = v.Xor(parity, v.Var(i))
			}
			final[w] = v.And(parity, v.Or(acc, v.Not(acc)))
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if final[w] != final[0] {
			t.Fatalf("worker %d got ref %v for the common function, worker 0 got %v",
				w, final[w], final[0])
		}
	}
	// acc ∨ ¬acc is True, so the common function is plain parity.
	want := False
	for i := 0; i < vars; i++ {
		want = m.Xor(want, m.Var(i))
	}
	if final[0] != want {
		t.Fatal("stressed table lost canonicity for parity")
	}
	for trial := 0; trial < 64; trial++ {
		a := make([]bool, vars)
		odd := false
		for i := range a {
			a[i] = trial>>uint(i%6)&1 == 1
			if a[i] {
				odd = !odd
			}
		}
		if m.Eval(final[0], a) != odd {
			t.Fatal("parity evaluates wrong after concurrent stress")
		}
	}
}

// TestGCWithMultipleViewsHoldingRoots runs an in-place GC while several
// views hold live roots, as campaign workers do between faults. The
// collection happens at a quiescent point (no concurrent builders — the
// engine enforces that with its analysis lock); afterwards every view
// must see the remapped roots as the same canonical functions, and stale
// per-view sat caches must be dropped, not misread.
func TestGCWithMultipleViewsHoldingRoots(t *testing.T) {
	m := NewAnon(10)
	v1, v2 := m.Share(), m.Share()
	f := m.Or(m.And(m.Var(0), m.Var(1)), m.And(m.Var(2), m.Var(3)))
	g := v1.Xor(v1.Var(4), v1.Var(5))
	h := v2.And(v2.Or(v2.Var(6), v2.Var(7)), v2.Var(8))
	wantG := v1.SatCount(g) // prime v1's sat cache so adoption must invalidate it
	// Garbage: a pile of functions nobody keeps.
	for i := 0; i < 9; i++ {
		m.And(m.Xor(m.Var(i), m.Var(i+1)), m.Var(0))
	}
	before := m.NodeCount()
	epoch := v1.TableEpoch()
	roots, res := m.GC([]Ref{f, g, h})
	if m.NodeCount() >= before || res.Reclaimed() <= 0 {
		t.Fatalf("GC reclaimed nothing: %d -> %d", before, m.NodeCount())
	}
	if v1.TableEpoch() == epoch {
		t.Fatal("in-place adoption must bump the table epoch")
	}
	// All views see the remapped roots as the same functions.
	if rg := v1.Xor(v1.Var(4), v1.Var(5)); rg != roots[1] {
		t.Fatalf("view 1 rebuilt g as %v, GC root is %v", rg, roots[1])
	}
	if rh := v2.And(v2.Or(v2.Var(6), v2.Var(7)), v2.Var(8)); rh != roots[2] {
		t.Fatalf("view 2 rebuilt h as %v, GC root is %v", rh, roots[2])
	}
	// v1's sat cache predates the adoption; counting again must detect the
	// epoch change and recompute, not serve a stale id.
	if got := v1.SatCount(roots[1]); got.Cmp(wantG) != 0 {
		t.Fatalf("sat count after GC %v, want %v", got, wantG)
	}
	if got := v2.SatCount(roots[2]); got.Sign() == 0 {
		t.Fatal("sat count of live root is zero after GC")
	}
}

// TestReduceUnderSiftWithViews checks that a recovery-ladder sift (which
// rebuilds the shared table under a new variable order and adopts it in
// place) leaves sibling views consistent: they observe the epoch bump and
// agree on the remapped roots.
func TestReduceUnderSiftWithViews(t *testing.T) {
	const k = 5
	names := make([]string, 0, 2*k)
	for i := 0; i < k; i++ {
		names = append(names, "a"+string(rune('0'+i)))
	}
	for i := 0; i < k; i++ {
		names = append(names, "b"+string(rune('0'+i)))
	}
	m := New(names...)
	v := m.Share()
	f := False
	for i := 0; i < k; i++ {
		f = m.Or(f, m.And(m.Var(i), m.Var(k+i)))
	}
	epoch := v.TableEpoch()
	roots, res := m.ReduceUnder([]Ref{f}, 1, 4)
	if !res.Sifted {
		t.Fatal("watermark 1 must force a sift")
	}
	if v.TableEpoch() == epoch {
		t.Fatal("sift adoption must bump the epoch for sibling views")
	}
	// The sibling view rebuilds the function under the new order and must
	// land on the same ref.
	g := False
	for i := 0; i < k; i++ {
		g = v.Or(g, v.And(v.VarNamed("a"+string(rune('0'+i))), v.VarNamed("b"+string(rune('0'+i)))))
	}
	if g != roots[0] {
		t.Fatalf("sibling view rebuilt %v, sift returned %v", g, roots[0])
	}
	if got := m.Size(roots[0]); got != 2*k+1 {
		t.Fatalf("sifted size %d, want optimum %d", got, 2*k+1)
	}
}
