// In-place generational garbage collection and the memory-pressure ladder
// primitive built on it.
//
// Rebuild already implements generational GC by copying live roots into a
// fresh manager, but it hands back a *new* Manager — callers must rebind
// every reference they hold. GC performs the same live-root copy and then
// adopts the fresh tables into the receiver, so the Manager identity (and
// its armed budget, logger and cumulative statistics) survives collection.
// ReduceUnder stacks the auto-sift hook on top: when the live set alone
// still exceeds the watermark, the blowup is order-induced rather than
// garbage-induced, and a capped number of reordering passes is spent
// trying to shrink it.
package bdd

// GCResult reports what one collection accomplished.
type GCResult struct {
	// Before is the node count (live + garbage) when collection started.
	Before int
	// AfterGC is the live node count right after the generational copy.
	AfterGC int
	// After is the final node count: equal to AfterGC unless the auto-sift
	// rung fired and found a smaller variable order.
	After int
	// Sifted reports that reordering ran (ReduceUnder only). When true the
	// manager's variable order may have changed: callers holding
	// order-dependent state (variable→meaning maps) must recompute it.
	Sifted bool
}

// Reclaimed is the number of dead nodes the generational copy dropped.
func (r GCResult) Reclaimed() int { return r.Before - r.AfterGC }

// adopt replaces the receiver's node store, unique table, operation caches
// and sat-count cache with dst's, merging dst's cache statistics into the
// receiver's cumulative counters. The armed budget, node watermark and
// logger are the receiver's own and survive unchanged. dst must not be
// used afterwards.
func (m *Manager) adopt(dst *Manager) {
	stats := m.stats
	stats.Add(dst.stats)
	m.names, m.nameIdx = dst.names, dst.nameIdx
	m.level, m.low, m.high = dst.level, dst.low, dst.high
	m.buckets, m.next, m.mask = dst.buckets, dst.next, dst.mask
	m.applyC, m.iteC, m.notC, m.cacheBits = dst.applyC, dst.iteC, dst.notC, dst.cacheBits
	m.stats = stats
	m.satC = dst.satC
}

// GC collects the manager in place: the functions rooted at roots are
// copied into fresh tables (dropping every node not reachable from them —
// dead apply/ite garbage from completed or aborted computations) and the
// manager adopts the result. The returned refs replace roots; all other
// refs into the manager are invalidated. Unlike Rebuild, the manager
// identity, cumulative cache statistics, armed budget and node watermark
// survive, so a caller can collect mid-computation without rebinding its
// manager handle. The copy runs on the destination, which has no watermark
// armed, so GC itself can never raise ErrNodeLimit.
func (m *Manager) GC(roots []Ref) ([]Ref, GCResult) {
	res := GCResult{Before: m.NodeCount()}
	dst := New(m.names...)
	out := m.Transfer(dst, roots...)
	m.adopt(dst)
	res.AfterGC = m.NodeCount()
	res.After = res.AfterGC
	return out, res
}

// ReduceUnder is the manager-level memory-pressure ladder: a generational
// GC of the live roots, then — only when the live set alone still exceeds
// the watermark, i.e. the blowup is order- rather than garbage-induced —
// up to siftPasses reordering passes (full Rudell sifting for small
// variable counts, window-2 permutation above that) trying to pull the
// live set back under. watermark <= 0 or siftPasses <= 0 disables the
// sift rung. When the result reports Sifted, the variable order may have
// changed and order-dependent caller state must be recomputed; the
// sat-count cache is dropped in that case (counts are order-normalized
// per node and rebuilt lazily).
func (m *Manager) ReduceUnder(roots []Ref, watermark, siftPasses int) ([]Ref, GCResult) {
	out, res := m.GC(roots)
	if watermark <= 0 || siftPasses <= 0 || res.AfterGC <= watermark {
		return out, res
	}
	// Full sifting tries every variable at every position — affordable for
	// the variable counts where it shines; window permutation scales to
	// wide circuits at the cost of a weaker search.
	const fullSiftVars = 16
	var (
		next     *Manager
		newRoots []Ref
	)
	if m.NumVars() <= fullSiftVars {
		next, newRoots, _ = m.Sift(out, siftPasses)
	} else {
		next, newRoots, _ = m.WindowReorder(out, 2, siftPasses)
	}
	m.adopt(next)
	res.Sifted = true
	res.After = m.NodeCount()
	return newRoots, res
}
