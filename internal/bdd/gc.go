// In-place generational garbage collection and the memory-pressure ladder
// primitive built on it.
//
// Rebuild already implements generational GC by copying live roots into a
// fresh manager, but it hands back a *new* Manager — callers must rebind
// every reference they hold. GC performs the same live-root copy and then
// adopts the fresh tables into the receiver's shared table in place, so
// the Manager identity (and its armed budget, logger and cumulative
// statistics) survives collection — and, when the table is shared, every
// other view sees the collected store as soon as the adoption completes.
// Callers sharing the table must hold it quiescent around GC (the
// campaign layer's analysis lock); refs held by any view are invalidated
// and per-view sat caches are dropped lazily via the table epoch.
// ReduceUnder stacks the auto-sift hook on top: when the live set alone
// still exceeds the watermark, the blowup is order-induced rather than
// garbage-induced, and a capped number of reordering passes is spent
// trying to shrink it.
package bdd

// GCResult reports what one collection accomplished.
type GCResult struct {
	// Before is the node count (live + garbage) when collection started.
	Before int
	// AfterGC is the live node count right after the generational copy.
	AfterGC int
	// After is the final node count: equal to AfterGC unless the auto-sift
	// rung fired and found a smaller variable order.
	After int
	// Sifted reports that reordering ran (ReduceUnder only). When true the
	// manager's variable order may have changed: callers holding
	// order-dependent state (variable→meaning maps) must recompute it.
	Sifted bool
}

// Reclaimed is the number of dead nodes the generational copy dropped.
func (r GCResult) Reclaimed() int { return r.Before - r.AfterGC }

// adopt replaces the shared table's contents with dst's, merging dst's
// cache statistics into the receiver view's cumulative counters and
// taking over dst's sat-count cache (its refs are the adopted table's
// refs). The armed budget, node watermark and logger are the receiver's
// own and survive unchanged. Other views sharing the table keep their
// budgets too; their sat caches are invalidated by the epoch bump inside
// adoptFrom. dst must not be used afterwards.
func (m *Manager) adopt(dst *Manager) {
	m.stats.Add(dst.stats)
	m.t.adoptFrom(dst.t)
	m.satC = dst.satC
	m.satEpoch = m.t.epoch.Load()
}

// GC collects the manager in place: the functions rooted at roots are
// copied into fresh tables (dropping every node not reachable from them —
// dead apply/ite garbage from completed or aborted computations) and the
// manager adopts the result. The returned refs replace roots; all other
// refs into the table are invalidated — including refs held by other
// views, so a shared table must be quiescent. Unlike Rebuild, the manager
// identity, cumulative cache statistics, armed budget and node watermark
// survive, so a caller can collect mid-computation without rebinding its
// manager handle. The copy runs on the destination, which has no
// watermark armed, so GC itself can never raise ErrNodeLimit.
func (m *Manager) GC(roots []Ref) ([]Ref, GCResult) {
	out, res := m.gc(roots)
	if m.gcHook != nil {
		m.gcHook(res)
	}
	return out, res
}

// gc is the collection body shared by GC and ReduceUnder; it does not
// fire the GC hook, so each public entry point reports exactly one
// (final) result per call.
func (m *Manager) gc(roots []Ref) ([]Ref, GCResult) {
	res := GCResult{Before: m.NodeCount()}
	dst := New(m.t.names...)
	out := m.Transfer(dst, roots...)
	m.adopt(dst)
	res.AfterGC = m.NodeCount()
	res.After = res.AfterGC
	return out, res
}

// ReduceUnder is the manager-level memory-pressure ladder: a generational
// GC of the live roots, then — only when the live set alone still exceeds
// the watermark, i.e. the blowup is order- rather than garbage-induced —
// up to siftPasses reordering passes (full Rudell sifting for small
// variable counts, window-2 permutation above that) trying to pull the
// live set back under. watermark <= 0 or siftPasses <= 0 disables the
// sift rung. When the result reports Sifted, the variable order may have
// changed and order-dependent caller state must be recomputed; the
// sat-count cache is dropped in that case (counts are order-normalized
// per node and rebuilt lazily).
func (m *Manager) ReduceUnder(roots []Ref, watermark, siftPasses int) ([]Ref, GCResult) {
	out, res := m.gc(roots)
	if watermark <= 0 || siftPasses <= 0 || res.AfterGC <= watermark {
		if m.gcHook != nil {
			m.gcHook(res)
		}
		return out, res
	}
	// Full sifting tries every variable at every position — affordable for
	// the variable counts where it shines; window permutation scales to
	// wide circuits at the cost of a weaker search.
	const fullSiftVars = 16
	var (
		next     *Manager
		newRoots []Ref
	)
	if m.NumVars() <= fullSiftVars {
		next, newRoots, _ = m.Sift(out, siftPasses)
	} else {
		next, newRoots, _ = m.WindowReorder(out, 2, siftPasses)
	}
	m.adopt(next)
	res.Sifted = true
	res.After = m.NodeCount()
	if m.gcHook != nil {
		m.gcHook(res)
	}
	return newRoots, res
}
