package bdd

import "testing"

func TestGCHookFiresOncePerGC(t *testing.T) {
	m := NewAnon(16)
	live := buildHeavy(m, 8)
	buildHeavy(m, 64) // garbage
	var fired []GCResult
	m.SetGCHook(func(res GCResult) { fired = append(fired, res) })
	_, res := m.GC([]Ref{live})
	if len(fired) != 1 {
		t.Fatalf("hook fired %d times for one GC, want 1", len(fired))
	}
	if fired[0] != res {
		t.Fatalf("hook saw %+v, GC returned %+v", fired[0], res)
	}
	if fired[0].Reclaimed() <= 0 {
		t.Fatalf("hook result reclaimed %d, want > 0", fired[0].Reclaimed())
	}

	// Disarming stops the callbacks.
	m.SetGCHook(nil)
	m.GC([]Ref{live})
	if len(fired) != 1 {
		t.Fatalf("disarmed hook still fired (%d calls)", len(fired))
	}
}

func TestGCHookFiresOncePerReduceUnder(t *testing.T) {
	// Early-return path: live set under the watermark, no sift needed.
	m := NewAnon(16)
	live := buildHeavy(m, 8)
	var fired []GCResult
	m.SetGCHook(func(res GCResult) { fired = append(fired, res) })
	_, res := m.ReduceUnder([]Ref{live}, 1<<20, 4)
	if len(fired) != 1 || fired[0].Sifted {
		t.Fatalf("no-sift ReduceUnder: %d fires (sifted=%v), want exactly 1 plain fire",
			len(fired), len(fired) > 0 && fired[0].Sifted)
	}
	if fired[0] != res {
		t.Fatalf("hook saw %+v, ReduceUnder returned %+v", fired[0], res)
	}

	// Sift path: interleaved pair function over a tiny watermark.
	const pairs = 6
	names := make([]string, 2*pairs)
	for i := range names {
		names[i] = "v" + string(rune('a'+i))
	}
	m2 := New(names...)
	f := False
	for i := 0; i < pairs; i++ {
		f = m2.Or(f, m2.And(m2.Var(i), m2.Var(pairs+i)))
	}
	fired = nil
	m2.SetGCHook(func(res GCResult) { fired = append(fired, res) })
	_, res2 := m2.ReduceUnder([]Ref{f}, 32, 4)
	if !res2.Sifted {
		t.Fatal("sift rung did not engage") // precondition, not the hook
	}
	if len(fired) != 1 || !fired[0].Sifted {
		t.Fatalf("sifting ReduceUnder: %d fires, want exactly 1 carrying Sifted", len(fired))
	}
	if fired[0] != res2 {
		t.Fatalf("hook saw %+v, ReduceUnder returned %+v", fired[0], res2)
	}
}

func TestTableLoad(t *testing.T) {
	m := NewAnon(16)
	buildHeavy(m, 32)
	nodes, buckets := m.TableLoad()
	if nodes <= 0 || buckets <= 0 {
		t.Fatalf("TableLoad() = (%d, %d), want positive counts", nodes, buckets)
	}
	if got := int64(m.NodeCount()); nodes != got {
		t.Fatalf("TableLoad nodes = %d, NodeCount = %d", nodes, got)
	}
}
