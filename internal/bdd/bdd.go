// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// in the style of Bryant (IEEE Trans. Computers, 1986): hash-consed nodes,
// memoized apply/ITE, quantification, composition, exact satisfying-set
// counting, and manager-to-manager transfer used for generational garbage
// collection and static variable reordering.
//
// The node store is a struct-of-arrays with a chained hash unique table and
// direct-mapped operation caches (in the manner of CUDD's computed table),
// which keeps the engine fast enough for the exhaustive per-fault analyses
// this repository runs on thousand-gate circuits.
//
// A Manager owns a set of ordered variables and a node table. Functions are
// referred to by Ref values that are only meaningful within their manager.
// The two terminals are the package-level constants False and True and are
// shared by every manager.
package bdd

import (
	"errors"
	"fmt"
	"log/slog"
	"math/big"
	"sort"
	"time"
)

// ErrBudget is the sentinel raised — as a panic value, from arbitrarily
// deep inside the apply/ite/not recursions — when the manager's armed
// operation budget (SetBudget) is exhausted. Callers that arm a budget
// must recover it at their analysis boundary (see diffprop.Engine) and
// may keep using the manager afterwards: the panic is only raised between
// node-table mutations, so the unique table stays consistent.
var ErrBudget = errors.New("bdd: per-analysis operation budget exhausted")

// ErrNodeLimit is the sentinel raised — as a panic value, from mk, at the
// same consistent points as ErrBudget — when the manager's node table
// crosses the armed soft watermark (SetNodeLimit). It is distinguishable
// from ErrBudget so recovery code can tell "too much work" from "too much
// memory": a node-limit abort is usually garbage- or order-induced and a
// generational GC plus reordering (Manager.ReduceUnder) often rescues the
// computation, where an ops-budget abort rarely benefits.
var ErrNodeLimit = errors.New("bdd: node-count watermark exceeded")

// Ref identifies a BDD node within a Manager. Refs are stable for the
// lifetime of the manager (there is no in-place mutation; reclamation is
// done by rebuilding into a fresh manager, see Rebuild).
type Ref int32

// Terminal nodes, shared across managers.
const (
	False Ref = 0
	True  Ref = 1
)

const terminalLevel = int32(1) << 30

// opcode identifies a binary apply operation in the cache.
type opcode uint32

const (
	opAnd opcode = iota
	opOr
	opXor
)

type applyEntry struct {
	op   opcode
	f, g Ref
	res  Ref
}

type iteEntry struct {
	f, g, h Ref
	res     Ref
}

type notEntry struct {
	f   Ref
	res Ref
}

const (
	minCacheBits = 12
	maxCacheBits = 21
)

// CacheStats counts hits and misses of the three operation caches. The
// counters are plain (non-atomic) because managers are single-threaded;
// reading them costs nothing on the hot path beyond one increment per
// cache probe.
type CacheStats struct {
	ApplyHits, ApplyMisses int64
	IteHits, IteMisses     int64
	NotHits, NotMisses     int64
}

// Add accumulates other into s (used to aggregate across managers, e.g.
// over generational rebuilds or parallel workers).
func (s *CacheStats) Add(other CacheStats) {
	s.ApplyHits += other.ApplyHits
	s.ApplyMisses += other.ApplyMisses
	s.IteHits += other.IteHits
	s.IteMisses += other.IteMisses
	s.NotHits += other.NotHits
	s.NotMisses += other.NotMisses
}

// HitRate returns the overall cache hit fraction (0 when no probes ran).
func (s CacheStats) HitRate() float64 {
	hits := s.ApplyHits + s.IteHits + s.NotHits
	total := hits + s.ApplyMisses + s.IteMisses + s.NotMisses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Manager owns a BDD node table over a fixed, ordered variable set.
// Managers are not safe for concurrent use.
type Manager struct {
	names   []string
	nameIdx map[string]int

	// Node store (struct of arrays); slots 0 and 1 are the terminals.
	level []int32
	low   []Ref
	high  []Ref

	// Unique table: chained hashing over the node store.
	buckets []int32
	next    []int32
	mask    uint32

	// Direct-mapped operation caches; an entry with f < 2 is empty since
	// terminal operands never reach the caches.
	applyC    []applyEntry
	iteC      []iteEntry
	notC      []notEntry
	cacheBits uint
	stats     CacheStats

	// Armed resource budget (SetBudget): ops counts charged cache-miss
	// operations since arming; budgetOps > 0 caps them, and a non-zero
	// deadline is checked every deadlineMask+1 charges (the mask shrinks as
	// the deadline approaches, bounding the wall-clock overshoot).
	ops          int64
	budgetOps    int64
	deadline     time.Time
	deadlineMask int64

	// nodeLimit, when positive, is the soft node-count watermark: mk panics
	// with ErrNodeLimit once the table would grow past it (SetNodeLimit).
	nodeLimit int

	// log receives structured manager events (table growth); nil = silent.
	log *slog.Logger

	satC map[Ref]*big.Int
}

// SetLogger attaches a structured logger for manager events (unique-table
// growth). A nil logger silences them (the default).
func (m *Manager) SetLogger(log *slog.Logger) { m.log = log }

// deadlineCheckMask throttles the wall-clock check of an armed budget to
// one time.Now() call per 1024 charged operations. Once the deadline is
// within deadlineNear, the throttle tightens to deadlineNearMask (one
// check per 64 charges): at full throttle a burst of cheap charges can
// overshoot Wall by the whole inter-check gap, which matters exactly when
// little time remains.
const (
	deadlineCheckMask = 0x3FF
	deadlineNearMask  = 0x3F
	deadlineNear      = time.Millisecond
)

// SetBudget arms a resource budget for the analyses that follow: the
// manager aborts with a panic(ErrBudget) once it performs more than ops
// cache-miss operations (ops <= 0 leaves the count unlimited) or passes
// the deadline (zero time disables the clock). Arming resets the charged
// operation counter, so callers arm once per unit of work (per fault).
// Cache-miss operations are a machine-independent proxy for the nodes an
// analysis builds and visits.
func (m *Manager) SetBudget(ops int64, deadline time.Time) {
	m.budgetOps = ops
	m.deadline = deadline
	m.deadlineMask = deadlineCheckMask
	m.ops = 0
}

// SetNodeLimit arms (n > 0) or disarms (n <= 0) the node-count soft
// watermark: once the node table would grow past n nodes, mk panics with
// ErrNodeLimit. Like ErrBudget, the panic fires only between node-table
// mutations, so callers that recover it at their analysis boundary may
// keep using the manager; Manager.GC or ReduceUnder then reclaims the
// garbage the aborted computation left behind.
func (m *Manager) SetNodeLimit(n int) {
	if n < 0 {
		n = 0
	}
	m.nodeLimit = n
}

// NodeLimit reports the armed node-count watermark (0 = disarmed).
func (m *Manager) NodeLimit() int { return m.nodeLimit }

// ClearBudget disarms any armed budget.
func (m *Manager) ClearBudget() { m.SetBudget(0, time.Time{}) }

// OpsCharged reports the cache-miss operations charged since the last
// SetBudget (or manager creation).
func (m *Manager) OpsCharged() int64 { return m.ops }

// chargeOp records one cache-miss operation against the armed budget,
// aborting with panic(ErrBudget) when the budget is blown. It is called
// only at points where the node store is consistent.
func (m *Manager) chargeOp() {
	m.ops++
	if m.budgetOps > 0 && m.ops > m.budgetOps {
		panic(ErrBudget)
	}
	if m.ops&m.deadlineMask == 0 && !m.deadline.IsZero() {
		now := time.Now()
		if now.After(m.deadline) {
			panic(ErrBudget)
		}
		if m.deadlineMask != deadlineNearMask && m.deadline.Sub(now) < deadlineNear {
			m.deadlineMask = deadlineNearMask
		}
	}
}

// CacheStats reports the operation-cache hit/miss counters accumulated
// since the manager was created.
func (m *Manager) CacheStats() CacheStats { return m.stats }

// New creates a manager over the named variables, ordered as given.
// Variable names must be unique and non-empty.
func New(names ...string) *Manager {
	m := &Manager{
		names:        append([]string(nil), names...),
		nameIdx:      make(map[string]int, len(names)),
		satC:         make(map[Ref]*big.Int),
		deadlineMask: deadlineCheckMask,
	}
	for i, n := range names {
		if n == "" {
			panic("bdd: empty variable name")
		}
		if _, dup := m.nameIdx[n]; dup {
			panic(fmt.Sprintf("bdd: duplicate variable name %q", n))
		}
		m.nameIdx[n] = i
	}
	m.level = append(m.level, terminalLevel, terminalLevel)
	m.low = append(m.low, False, True)
	m.high = append(m.high, False, True)
	m.next = append(m.next, -1, -1)
	m.buckets = make([]int32, 1<<minCacheBits)
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	m.mask = uint32(len(m.buckets) - 1)
	m.setCacheBits(minCacheBits)
	return m
}

// NewAnon creates a manager with n anonymous variables named x0..x(n-1).
func NewAnon(n int) *Manager {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	return New(names...)
}

func (m *Manager) setCacheBits(bits uint) {
	m.cacheBits = bits
	m.applyC = make([]applyEntry, 1<<bits)
	m.iteC = make([]iteEntry, 1<<bits)
	m.notC = make([]notEntry, 1<<bits)
}

// NumVars reports the number of variables in the manager.
func (m *Manager) NumVars() int { return len(m.names) }

// VarName returns the name of the variable at order position i.
func (m *Manager) VarName(i int) string { return m.names[i] }

// VarIndex returns the order position of the named variable, or -1.
func (m *Manager) VarIndex(name string) int {
	if i, ok := m.nameIdx[name]; ok {
		return i
	}
	return -1
}

// Names returns a copy of the variable order.
func (m *Manager) Names() []string { return append([]string(nil), m.names...) }

// NodeCount reports the total number of live nodes in the manager's table,
// including the two terminals.
func (m *Manager) NodeCount() int { return len(m.level) }

// Var returns the function of the single variable at order position i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= len(m.names) {
		panic(fmt.Sprintf("bdd: variable index %d out of range [0,%d)", i, len(m.names)))
	}
	return m.mk(int32(i), False, True)
}

// NVar returns the complemented single-variable function ¬x_i.
func (m *Manager) NVar(i int) Ref {
	if i < 0 || i >= len(m.names) {
		panic(fmt.Sprintf("bdd: variable index %d out of range [0,%d)", i, len(m.names)))
	}
	return m.mk(int32(i), True, False)
}

// VarNamed returns the function of the named variable.
func (m *Manager) VarNamed(name string) Ref {
	i := m.VarIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("bdd: unknown variable %q", name))
	}
	return m.Var(i)
}

// Const returns the terminal for the given boolean.
func Const(b bool) Ref {
	if b {
		return True
	}
	return False
}

// IsConst reports whether f is a terminal.
func IsConst(f Ref) bool { return f == False || f == True }

// levelOf returns the decision level of f (terminalLevel for terminals).
func (m *Manager) levelOf(f Ref) int32 { return m.level[f] }

// Level exposes the variable order position tested at the root of f,
// or -1 for terminals.
func (m *Manager) Level(f Ref) int {
	l := m.level[f]
	if l == terminalLevel {
		return -1
	}
	return int(l)
}

// Low returns the else-cofactor edge of a non-terminal node.
func (m *Manager) Low(f Ref) Ref { return m.low[f] }

// High returns the then-cofactor edge of a non-terminal node.
func (m *Manager) High(f Ref) Ref { return m.high[f] }

func nodeHash(level int32, low, high Ref) uint32 {
	h := uint32(level)*0x9e3779b1 ^ uint32(low)*0x85ebca6b ^ uint32(high)*0xc2b2ae35
	h ^= h >> 15
	return h
}

// mk returns the canonical node (level, low, high), applying the reduction
// rules: redundant tests collapse, identical nodes are shared.
func (m *Manager) mk(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	slot := nodeHash(level, low, high) & m.mask
	for id := m.buckets[slot]; id >= 0; id = m.next[id] {
		if m.level[id] == level && m.low[id] == low && m.high[id] == high {
			return Ref(id)
		}
	}
	// The watermark is checked here — before the append that would cross it
	// — rather than in grow: every table and cache growth is driven by this
	// append, so this single check bounds them all, and the store is still
	// consistent when the panic unwinds.
	if m.nodeLimit > 0 && len(m.level) >= m.nodeLimit {
		panic(ErrNodeLimit)
	}
	r := Ref(len(m.level))
	m.level = append(m.level, level)
	m.low = append(m.low, low)
	m.high = append(m.high, high)
	m.next = append(m.next, m.buckets[slot])
	m.buckets[slot] = int32(r)
	if len(m.level) > len(m.buckets) {
		m.grow()
	}
	return r
}

// grow doubles the unique table and (up to a limit) the operation caches.
func (m *Manager) grow() {
	nb := make([]int32, len(m.buckets)*2)
	for i := range nb {
		nb[i] = -1
	}
	m.mask = uint32(len(nb) - 1)
	for id := range m.level {
		if id < 2 {
			continue
		}
		slot := nodeHash(m.level[id], m.low[id], m.high[id]) & m.mask
		m.next[id] = nb[slot]
		nb[slot] = int32(id)
	}
	m.buckets = nb
	if m.cacheBits < maxCacheBits {
		// Growing the caches drops their contents, which is harmless.
		m.setCacheBits(m.cacheBits + 1)
	}
	if m.log != nil {
		m.log.Debug("bdd table grow", "nodes", len(m.level), "buckets", len(m.buckets))
	}
}

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.apply(opAnd, f, g) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.apply(opOr, f, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.apply(opXor, f, g) }

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.not(f) }

// Nand returns ¬(f ∧ g).
func (m *Manager) Nand(f, g Ref) Ref { return m.Not(m.And(f, g)) }

// Nor returns ¬(f ∨ g).
func (m *Manager) Nor(f, g Ref) Ref { return m.Not(m.Or(f, g)) }

// Xnor returns ¬(f ⊕ g).
func (m *Manager) Xnor(f, g Ref) Ref { return m.Not(m.Xor(f, g)) }

// Implies returns ¬f ∨ g.
func (m *Manager) Implies(f, g Ref) Ref { return m.Or(m.Not(f), g) }

// Diff returns f ∧ ¬g (set difference).
func (m *Manager) Diff(f, g Ref) Ref { return m.And(f, m.Not(g)) }

// AndN folds And over its arguments (True for no arguments).
func (m *Manager) AndN(fs ...Ref) Ref {
	acc := True
	for _, f := range fs {
		acc = m.And(acc, f)
	}
	return acc
}

// OrN folds Or over its arguments (False for no arguments).
func (m *Manager) OrN(fs ...Ref) Ref {
	acc := False
	for _, f := range fs {
		acc = m.Or(acc, f)
	}
	return acc
}

// XorN folds Xor over its arguments (False for no arguments).
func (m *Manager) XorN(fs ...Ref) Ref {
	acc := False
	for _, f := range fs {
		acc = m.Xor(acc, f)
	}
	return acc
}

func (m *Manager) not(f Ref) Ref {
	switch f {
	case False:
		return True
	case True:
		return False
	}
	slot := (uint32(f) * 0x9e3779b1 >> 10) & (uint32(len(m.notC)) - 1)
	if e := &m.notC[slot]; e.f == f {
		m.stats.NotHits++
		return e.res
	}
	m.stats.NotMisses++
	m.chargeOp()
	r := m.mk(m.level[f], m.not(m.low[f]), m.not(m.high[f]))
	slot = (uint32(f) * 0x9e3779b1 >> 10) & (uint32(len(m.notC)) - 1)
	m.notC[slot] = notEntry{f: f, res: r}
	slot = (uint32(r) * 0x9e3779b1 >> 10) & (uint32(len(m.notC)) - 1)
	m.notC[slot] = notEntry{f: r, res: f}
	return r
}

func applyHash(op opcode, f, g Ref, size uint32) uint32 {
	h := uint32(f)*0x85ebca6b ^ uint32(g)*0xc2b2ae35 ^ uint32(op)*0x27d4eb2f
	h ^= h >> 13
	return h & (size - 1)
}

// apply implements the memoized Shannon-expansion product construction.
func (m *Manager) apply(op opcode, f, g Ref) Ref {
	// Terminal rules.
	switch op {
	case opAnd:
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
		if f == g {
			return f
		}
	case opOr:
		if f == True || g == True {
			return True
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == g {
			return f
		}
	case opXor:
		if f == g {
			return False
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == True {
			return m.not(g)
		}
		if g == True {
			return m.not(f)
		}
	}
	// Commutative: normalize operand order for cache hits.
	if f > g {
		f, g = g, f
	}
	slot := applyHash(op, f, g, uint32(len(m.applyC)))
	if e := &m.applyC[slot]; e.f == f && e.g == g && e.op == op {
		m.stats.ApplyHits++
		return e.res
	}
	m.stats.ApplyMisses++
	m.chargeOp()
	fl, gl := m.level[f], m.level[g]
	var level int32
	var f0, f1, g0, g1 Ref
	switch {
	case fl == gl:
		level = fl
		f0, f1 = m.low[f], m.high[f]
		g0, g1 = m.low[g], m.high[g]
	case fl < gl:
		level = fl
		f0, f1 = m.low[f], m.high[f]
		g0, g1 = g, g
	default:
		level = gl
		f0, f1 = f, f
		g0, g1 = m.low[g], m.high[g]
	}
	r := m.mk(level, m.apply(op, f0, g0), m.apply(op, f1, g1))
	// The caches may have been resized by mk; recompute the slot.
	slot = applyHash(op, f, g, uint32(len(m.applyC)))
	m.applyC[slot] = applyEntry{op: op, f: f, g: g, res: r}
	return r
}

// Ite returns if-then-else: (f ∧ g) ∨ (¬f ∧ h).
func (m *Manager) Ite(f, g, h Ref) Ref { return m.ite(f, g, h) }

func iteHash(f, g, h Ref, size uint32) uint32 {
	x := uint32(f)*0x9e3779b1 ^ uint32(g)*0x85ebca6b ^ uint32(h)*0xc2b2ae35
	x ^= x >> 14
	return x & (size - 1)
}

func (m *Manager) ite(f, g, h Ref) Ref {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return m.not(f)
	}
	slot := iteHash(f, g, h, uint32(len(m.iteC)))
	if e := &m.iteC[slot]; e.f == f && e.g == g && e.h == h {
		m.stats.IteHits++
		return e.res
	}
	m.stats.IteMisses++
	m.chargeOp()
	level := m.level[f]
	if l := m.level[g]; l < level {
		level = l
	}
	if l := m.level[h]; l < level {
		level = l
	}
	f0, f1 := m.cofactors(f, level)
	g0, g1 := m.cofactors(g, level)
	h0, h1 := m.cofactors(h, level)
	r := m.mk(level, m.ite(f0, g0, h0), m.ite(f1, g1, h1))
	slot = iteHash(f, g, h, uint32(len(m.iteC)))
	m.iteC[slot] = iteEntry{f: f, g: g, h: h, res: r}
	return r
}

// cofactors returns the (low, high) cofactors of f with respect to the
// variable at 'level'; if f does not test that variable both are f.
func (m *Manager) cofactors(f Ref, level int32) (Ref, Ref) {
	if m.level[f] == level {
		return m.low[f], m.high[f]
	}
	return f, f
}

// Eval evaluates f under the assignment (one bool per variable, in order).
func (m *Manager) Eval(f Ref, assignment []bool) bool {
	if len(assignment) != len(m.names) {
		panic(fmt.Sprintf("bdd: assignment has %d values, want %d", len(assignment), len(m.names)))
	}
	for !IsConst(f) {
		if assignment[m.level[f]] {
			f = m.high[f]
		} else {
			f = m.low[f]
		}
	}
	return f == True
}

// Size reports the number of distinct nodes reachable from f, including
// terminals.
func (m *Manager) Size(f Ref) int { return m.TotalSize(f) }

// Support returns the sorted order positions of the variables f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := map[Ref]struct{}{}
	vars := map[int32]struct{}{}
	var walk func(Ref)
	walk = func(r Ref) {
		if IsConst(r) {
			return
		}
		if _, ok := seen[r]; ok {
			return
		}
		seen[r] = struct{}{}
		vars[m.level[r]] = struct{}{}
		walk(m.low[r])
		walk(m.high[r])
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}

// SupportSize returns the number of variables f depends on. The paper's
// Figure 5 classification uses SupportSize == 0 at a bridging-fault site to
// identify bridging faults with stuck-at (constant) behavior.
func (m *Manager) SupportSize(f Ref) int { return len(m.Support(f)) }

// String renders a short human-readable description of f.
func (m *Manager) String(f Ref) string {
	switch f {
	case False:
		return "false"
	case True:
		return "true"
	}
	return fmt.Sprintf("bdd(%s; %d nodes)", m.names[m.level[f]], m.Size(f))
}
