// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// in the style of Bryant (IEEE Trans. Computers, 1986) with the
// complement-edge representation of Brace, Rudell and Bryant (DAC 1990):
// negation is a tagged bit on the Ref, so Not is free, a function and its
// complement share one node set, and the unique table stores roughly half
// the nodes of the plain representation. All binary operations are
// normalized ITE standard triples served by one computed cache.
//
// The node store is shared: a Manager is a lightweight view (budget,
// statistics, sat-count cache, logger) over a lock-striped concurrent
// table, and Share hands out additional views so many workers can build
// on one node set at once — see table.go for the concurrency protocol.
// Quantification, composition, exact satisfying-set counting and
// manager-to-manager transfer (used for generational garbage collection
// and static variable reordering) ride on the same core.
//
// A Manager owns a set of ordered variables and (a view of) a node table.
// Functions are referred to by Ref values that are only meaningful within
// their table. The two terminals are the package-level constants False
// and True and are shared by every manager.
package bdd

import (
	"errors"
	"fmt"
	"log/slog"
	"math/big"
	"sort"
	"time"
)

// ErrBudget is the sentinel raised — as a panic value, from arbitrarily
// deep inside the apply/ite recursions — when the manager's armed
// operation budget (SetBudget) is exhausted. Callers that arm a budget
// must recover it at their analysis boundary (see diffprop.Engine) and
// may keep using the manager afterwards: the panic is only raised between
// node-table mutations, so the unique table stays consistent.
var ErrBudget = errors.New("bdd: per-analysis operation budget exhausted")

// ErrNodeLimit is the sentinel raised — as a panic value, from mk, at the
// same consistent points as ErrBudget — when the manager's node table
// crosses the armed soft watermark (SetNodeLimit). It is distinguishable
// from ErrBudget so recovery code can tell "too much work" from "too much
// memory": a node-limit abort is usually garbage- or order-induced and a
// generational GC plus reordering (Manager.ReduceUnder) often rescues the
// computation, where an ops-budget abort rarely benefits.
var ErrNodeLimit = errors.New("bdd: node-count watermark exceeded")

// Ref identifies a BDD function within a Manager's table: a node id in
// the upper bits and the complement tag in bit 0. Refs are stable for the
// lifetime of the table (there is no in-place mutation; reclamation is
// done by rebuilding into a fresh manager, see Rebuild, or in place, see
// GC). Complementing a function is Ref^1 and allocates nothing.
type Ref int32

// Terminal functions, shared across managers: one terminal node (id 0)
// represents False, and True is its complement edge.
const (
	False Ref = 0
	True  Ref = 1
)

const terminalLevel = int32(1) << 30

const (
	minCacheBits = 12
	maxCacheBits = 21
)

// CacheStats counts hits and misses of the computed cache, attributed to
// the operation family that issued them: And/Or/Xor feed the Apply
// counters, Ite/Compose/VectorCompose the Ite counters. Not is free under
// complement edges and never probes a cache, so its counters stay zero
// (kept for layout compatibility with aggregated historical stats). The
// counters are per-view and unsynchronized; each worker reads only its
// own.
type CacheStats struct {
	ApplyHits, ApplyMisses int64
	IteHits, IteMisses     int64
	NotHits, NotMisses     int64
}

// Add accumulates other into s (used to aggregate across managers, e.g.
// over generational rebuilds or parallel workers).
func (s *CacheStats) Add(other CacheStats) {
	s.ApplyHits += other.ApplyHits
	s.ApplyMisses += other.ApplyMisses
	s.IteHits += other.IteHits
	s.IteMisses += other.IteMisses
	s.NotHits += other.NotHits
	s.NotMisses += other.NotMisses
}

// HitRate returns the overall cache hit fraction (0 when no probes ran).
func (s CacheStats) HitRate() float64 {
	hits := s.ApplyHits + s.IteHits + s.NotHits
	total := hits + s.ApplyMisses + s.IteMisses + s.NotMisses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Manager is a view over a (possibly shared) BDD node table: the armed
// resource budget, node watermark, cache statistics, sat-count cache and
// logger are per-view, while nodes, the unique table and the computed
// cache live in the shared table. A single view is not safe for
// concurrent use; distinct views over one table are (Share).
type Manager struct {
	t *table

	stats CacheStats

	// Armed resource budget (SetBudget): ops counts charged operations
	// since arming; budgetOps > 0 caps them, and a non-zero deadline is
	// checked every deadlineMask+1 charges (the mask shrinks as the
	// deadline approaches, bounding the wall-clock overshoot).
	ops          int64
	budgetOps    int64
	deadline     time.Time
	deadlineMask int64

	// nodeLimit, when positive, is the soft node-count watermark: mk panics
	// with ErrNodeLimit once the shared table would grow past it
	// (SetNodeLimit).
	nodeLimit int

	// chaosAt/chaosErr are the chaos-injection seam (SetChaosAbort): when
	// chaosAt > 0, chargeOp panics with chaosErr once ops reaches chaosAt,
	// then disarms itself. Zero when the harness is off, leaving one
	// predictable branch on the charge path.
	chaosAt  int64
	chaosErr error

	// log receives structured manager events; nil = silent.
	log *slog.Logger

	// gcHook, when non-nil, observes each completed GC/ReduceUnder pass
	// (SetGCHook) — the flight-recorder seam. Per-view, like the logger.
	gcHook func(GCResult)

	// satC caches satisfying-set counts keyed by regular (uncomplemented)
	// ref, normalized to each node's own level. satEpoch tracks the table
	// epoch the cache was filled under; an in-place adoption (GC/sift)
	// bumps the table epoch and invalidates the cache lazily.
	satC     map[Ref]*big.Int
	satEpoch uint64
}

// SetLogger attaches a structured logger for manager events. A nil logger
// silences them (the default).
func (m *Manager) SetLogger(log *slog.Logger) { m.log = log }

// SetGCHook registers an observer for completed GC and ReduceUnder
// passes: the hook receives each pass's final GCResult, exactly once per
// public collection call. The hook runs on the collecting goroutine with
// the table quiescent, so it must be cheap and must not touch the
// manager. A nil hook disables it (the default). Per-view, like the
// logger: each worker engine installs its own.
func (m *Manager) SetGCHook(hook func(GCResult)) { m.gcHook = hook }

// deadlineCheckMask throttles the wall-clock check of an armed budget to
// one time.Now() call per 1024 charged operations. Once the deadline is
// within deadlineNear, the throttle tightens to deadlineNearMask (one
// check per 64 charges): at full throttle a burst of cheap charges can
// overshoot Wall by the whole inter-check gap, which matters exactly when
// little time remains.
const (
	deadlineCheckMask = 0x3FF
	deadlineNearMask  = 0x3F
	deadlineNear      = time.Millisecond
)

// SetBudget arms a resource budget for the analyses that follow: the
// manager aborts with a panic(ErrBudget) once it charges more than ops
// operations (ops <= 0 leaves the count unlimited) or passes the deadline
// (zero time disables the clock). Arming resets the charged operation
// counter, so callers arm once per unit of work (per fault). One
// operation is charged per ITE step — a machine-independent proxy for the
// nodes an analysis builds and visits that stays meaningful when the
// computed cache is shared and warm.
func (m *Manager) SetBudget(ops int64, deadline time.Time) {
	m.budgetOps = ops
	m.deadline = deadline
	m.deadlineMask = deadlineCheckMask
	m.ops = 0
	// A chaos abort is armed relative to the charge meter this reset just
	// zeroed; a stale threshold would fire against the wrong analysis.
	m.chaosAt, m.chaosErr = 0, nil
}

// SetChaosAbort arms a one-shot forced abort for the chaos-injection
// harness: once the charge meter reaches at (counting from the last
// SetBudget), chargeOp panics with err — ErrBudget or ErrNodeLimit, so
// the abort is indistinguishable from a genuine resource blow — and the
// trigger disarms itself. at <= 0 disarms. SetBudget also disarms, since
// it resets the meter the threshold is relative to.
func (m *Manager) SetChaosAbort(at int64, err error) {
	if at <= 0 {
		m.chaosAt, m.chaosErr = 0, nil
		return
	}
	if err == nil {
		err = ErrBudget
	}
	m.chaosAt, m.chaosErr = at, err
}

// SetNodeLimit arms (n > 0) or disarms (n <= 0) the node-count soft
// watermark: once the node table would grow past n nodes, mk panics with
// ErrNodeLimit. Like ErrBudget, the panic fires only between node-table
// mutations, so callers that recover it at their analysis boundary may
// keep using the manager; Manager.GC or ReduceUnder then reclaims the
// garbage the aborted computation left behind. The watermark is per-view:
// other views sharing the table keep their own.
func (m *Manager) SetNodeLimit(n int) {
	if n < 0 {
		n = 0
	}
	m.nodeLimit = n
}

// NodeLimit reports the armed node-count watermark (0 = disarmed).
func (m *Manager) NodeLimit() int { return m.nodeLimit }

// ClearBudget disarms any armed budget.
func (m *Manager) ClearBudget() { m.SetBudget(0, time.Time{}) }

// OpsCharged reports the operations charged since the last SetBudget (or
// manager creation).
func (m *Manager) OpsCharged() int64 { return m.ops }

// TableLoad reports the unique table's occupancy: resident nodes and
// hash-bucket capacity summed over all shards. nodes/buckets is the load
// factor the timeline sampler plots. Safe for concurrent use (briefly
// locks each shard in turn); the two sums are each internally consistent
// per shard but not across a concurrent resize — fine for telemetry.
func (m *Manager) TableLoad() (nodes, buckets int64) {
	for i := range m.t.shards {
		s := &m.t.shards[i]
		s.mu.Lock()
		nodes += int64(s.count)
		buckets += int64(len(s.buckets))
		s.mu.Unlock()
	}
	return nodes, buckets
}

// chargeOp records one operation against the armed budget, aborting with
// panic(ErrBudget) when the budget is blown. It is called only at points
// where the node store is consistent.
func (m *Manager) chargeOp() {
	m.ops++
	if m.budgetOps > 0 && m.ops > m.budgetOps {
		panic(ErrBudget)
	}
	if m.chaosAt > 0 && m.ops >= m.chaosAt {
		err := m.chaosErr
		m.chaosAt, m.chaosErr = 0, nil
		panic(err)
	}
	if m.ops&m.deadlineMask == 0 && !m.deadline.IsZero() {
		now := time.Now()
		if now.After(m.deadline) {
			panic(ErrBudget)
		}
		if m.deadlineMask != deadlineNearMask && m.deadline.Sub(now) < deadlineNear {
			m.deadlineMask = deadlineNearMask
		}
	}
}

// CacheStats reports this view's computed-cache hit/miss counters
// accumulated since the view was created.
func (m *Manager) CacheStats() CacheStats { return m.stats }

// New creates a manager over the named variables, ordered as given.
// Variable names must be unique and non-empty.
func New(names ...string) *Manager {
	nameIdx := make(map[string]int, len(names))
	for i, n := range names {
		if n == "" {
			panic("bdd: empty variable name")
		}
		if _, dup := nameIdx[n]; dup {
			panic(fmt.Sprintf("bdd: duplicate variable name %q", n))
		}
		nameIdx[n] = i
	}
	t := newTable(append([]string(nil), names...), nameIdx)
	return &Manager{
		t:            t,
		deadlineMask: deadlineCheckMask,
		satC:         make(map[Ref]*big.Int),
	}
}

// NewAnon creates a manager with n anonymous variables named x0..x(n-1).
func NewAnon(n int) *Manager {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	return New(names...)
}

// Share returns a fresh view over the manager's table: same nodes, same
// variable order, same computed cache, but independent budget, node
// watermark, statistics and sat-count cache. Views may be used from
// different goroutines concurrently; handing the new view to another
// goroutine is itself the synchronizing edge for every Ref created so
// far.
func (m *Manager) Share() *Manager {
	m.t.views.Add(1)
	return &Manager{
		t:            m.t,
		deadlineMask: deadlineCheckMask,
		satC:         make(map[Ref]*big.Int),
		satEpoch:     m.t.epoch.Load(),
	}
}

// Views reports how many Manager views were handed out over this
// manager's table (including the original).
func (m *Manager) Views() int { return int(m.t.views.Load()) }

// TableEpoch reports the table's adoption epoch: the number of in-place
// GC/sift generations the shared store has gone through.
func (m *Manager) TableEpoch() uint64 { return m.t.epoch.Load() }

// setCacheBits pins the computed cache to 1<<bits entries and disables
// automatic growth (test hook: tiny caches force collision evictions).
func (m *Manager) setCacheBits(bits uint) {
	m.t.growMu.Lock()
	m.t.noGrow = true
	m.t.cache.Store(newOpCache(bits))
	m.t.growMu.Unlock()
}

// NumVars reports the number of variables in the manager.
func (m *Manager) NumVars() int { return len(m.t.names) }

// VarName returns the name of the variable at order position i.
func (m *Manager) VarName(i int) string { return m.t.names[i] }

// VarIndex returns the order position of the named variable, or -1.
func (m *Manager) VarIndex(name string) int {
	if i, ok := m.t.nameIdx[name]; ok {
		return i
	}
	return -1
}

// Names returns a copy of the variable order.
func (m *Manager) Names() []string { return append([]string(nil), m.t.names...) }

// NodeCount reports the total number of live nodes in the shared table,
// including the terminal.
func (m *Manager) NodeCount() int { return int(m.t.count.Load()) }

// Var returns the function of the single variable at order position i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= len(m.t.names) {
		panic(fmt.Sprintf("bdd: variable index %d out of range [0,%d)", i, len(m.t.names)))
	}
	return m.t.vars[i] ^ 1
}

// NVar returns the complemented single-variable function ¬x_i.
func (m *Manager) NVar(i int) Ref {
	if i < 0 || i >= len(m.t.names) {
		panic(fmt.Sprintf("bdd: variable index %d out of range [0,%d)", i, len(m.t.names)))
	}
	return m.t.vars[i]
}

// VarNamed returns the function of the named variable.
func (m *Manager) VarNamed(name string) Ref {
	i := m.VarIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("bdd: unknown variable %q", name))
	}
	return m.Var(i)
}

// Const returns the terminal for the given boolean.
func Const(b bool) Ref {
	if b {
		return True
	}
	return False
}

// IsConst reports whether f is a terminal.
func IsConst(f Ref) bool { return f&^1 == 0 }

// nodeOf returns the payload of f's node (complement bit ignored).
func (m *Manager) nodeOf(f Ref) *node { return m.t.node(int32(f) >> 1) }

// levelOf returns the decision level of f (terminalLevel for terminals).
func (m *Manager) levelOf(f Ref) int32 { return m.nodeOf(f).level }

// Level exposes the variable order position tested at the root of f,
// or -1 for terminals.
func (m *Manager) Level(f Ref) int {
	l := m.levelOf(f)
	if l == terminalLevel {
		return -1
	}
	return int(l)
}

// Low returns the else-cofactor of f as a function (complement edges
// resolved). For a terminal it returns f itself.
func (m *Manager) Low(f Ref) Ref { return m.nodeOf(f).low ^ (f & 1) }

// High returns the then-cofactor of f as a function (complement edges
// resolved). For a terminal it returns f itself.
func (m *Manager) High(f Ref) Ref { return m.nodeOf(f).high ^ (f & 1) }

// mk returns the canonical ref for the node (level, low, high), applying
// the reduction rules (redundant tests collapse, identical nodes are
// shared) and the complement-edge normalization: the then edge must be
// regular, so a complemented high is pushed through the node and onto the
// returned ref.
func (m *Manager) mk(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	if high&1 != 0 {
		return m.t.mkRaw(m.nodeLimit, level, low^1, high^1) ^ 1
	}
	return m.t.mkRaw(m.nodeLimit, level, low, high)
}

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref {
	return m.ite(f, g, False, &m.stats.ApplyHits, &m.stats.ApplyMisses)
}

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref {
	return m.ite(f, True, g, &m.stats.ApplyHits, &m.stats.ApplyMisses)
}

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref {
	return m.ite(f, g^1, g, &m.stats.ApplyHits, &m.stats.ApplyMisses)
}

// Not returns ¬f. Under complement edges this is a bit flip: no node is
// built, no cache is probed, and no budget is charged.
func (m *Manager) Not(f Ref) Ref { return f ^ 1 }

// Nand returns ¬(f ∧ g).
func (m *Manager) Nand(f, g Ref) Ref { return m.Not(m.And(f, g)) }

// Nor returns ¬(f ∨ g).
func (m *Manager) Nor(f, g Ref) Ref { return m.Not(m.Or(f, g)) }

// Xnor returns ¬(f ⊕ g).
func (m *Manager) Xnor(f, g Ref) Ref { return m.Not(m.Xor(f, g)) }

// Implies returns ¬f ∨ g.
func (m *Manager) Implies(f, g Ref) Ref { return m.Or(m.Not(f), g) }

// Diff returns f ∧ ¬g (set difference).
func (m *Manager) Diff(f, g Ref) Ref { return m.And(f, m.Not(g)) }

// AndN folds And over its arguments (True for no arguments).
func (m *Manager) AndN(fs ...Ref) Ref {
	acc := True
	for _, f := range fs {
		acc = m.And(acc, f)
	}
	return acc
}

// OrN folds Or over its arguments (False for no arguments).
func (m *Manager) OrN(fs ...Ref) Ref {
	acc := False
	for _, f := range fs {
		acc = m.Or(acc, f)
	}
	return acc
}

// XorN folds Xor over its arguments (False for no arguments).
func (m *Manager) XorN(fs ...Ref) Ref {
	acc := False
	for _, f := range fs {
		acc = m.Xor(acc, f)
	}
	return acc
}

// Ite returns if-then-else: (f ∧ g) ∨ (¬f ∧ h).
func (m *Manager) Ite(f, g, h Ref) Ref {
	return m.ite(f, g, h, &m.stats.IteHits, &m.stats.IteMisses)
}

// iteLess orders two refs for the commutativity normalizations: first by
// level, then by node id (ignoring complement bits, which the rewrite
// rules account for separately).
func (m *Manager) iteLess(a, b Ref) bool {
	la, lb := m.levelOf(a), m.levelOf(b)
	if la != lb {
		return la < lb
	}
	return a&^1 < b&^1
}

// ite computes ITE(f, g, h) with standard-triple normalization: terminal
// rules first, then equivalent-triple rewrites that canonicalize argument
// order (so e.g. f∧g and g∧f share one cache line), then the
// complement-edge normalization that makes the first argument and the
// then argument regular. One operation is charged per entry — including
// cache hits — so an armed budget bounds work deterministically even when
// the shared cache is warm. hits/misses point at the issuing operation
// family's counters.
func (m *Manager) ite(f, g, h Ref, hits, misses *int64) Ref {
	m.chargeOp()
	// Terminal rules.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	}
	// Arguments that repeat f collapse to constants along f's branch.
	if g == f {
		g = True
	} else if g == f^1 {
		g = False
	}
	if h == f {
		h = False
	} else if h == f^1 {
		h = True
	}
	switch {
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return f ^ 1
	}
	// Equivalent-triple rewrites: pull the smallest operand into the first
	// position wherever the operation commutes.
	switch {
	case h == False: // f ∧ g
		if m.iteLess(g, f) {
			f, g = g, f
		}
	case g == True: // f ∨ h
		if m.iteLess(h, f) {
			f, h = h, f
		}
	case h == True: // ¬f ∨ g == ¬g ∨ ¬(¬f)... ITE(f,g,1) == ITE(¬g,¬f,1)
		if m.iteLess(g, f) {
			f, g = g^1, f^1
		}
	case g == False: // ¬f ∧ h; ITE(f,0,h) == ITE(¬h,0,¬f)
		if m.iteLess(h, f) {
			f, h = h^1, f^1
		}
	case h == g^1: // f XNOR g; ITE(f,g,¬g) == ITE(g,f,¬f)
		if m.iteLess(g, f) {
			f, g, h = g, f, f^1
		}
	}
	// Complement normalization: a complemented first argument swaps the
	// branches; a complemented then argument complements the result.
	if f&1 != 0 {
		f ^= 1
		g, h = h, g
	}
	var neg Ref
	if g&1 != 0 {
		neg = 1
		g ^= 1
		h ^= 1
	}
	cache := m.t.cache.Load()
	if r, ok := cache.get(f, g, h); ok {
		*hits++
		return r ^ neg
	}
	*misses++
	level := m.levelOf(f)
	if l := m.levelOf(g); l < level {
		level = l
	}
	if l := m.levelOf(h); l < level {
		level = l
	}
	f0, f1 := m.cofactors(f, level)
	g0, g1 := m.cofactors(g, level)
	h0, h1 := m.cofactors(h, level)
	r := m.mk(level, m.ite(f0, g0, h0, hits, misses), m.ite(f1, g1, h1, hits, misses))
	cache.put(f, g, h, r)
	return r ^ neg
}

// cofactors returns the (low, high) cofactors of f with respect to the
// variable at 'level'; if f does not test that variable both are f.
func (m *Manager) cofactors(f Ref, level int32) (Ref, Ref) {
	n := m.nodeOf(f)
	if n.level == level {
		c := f & 1
		return n.low ^ c, n.high ^ c
	}
	return f, f
}

// Eval evaluates f under the assignment (one bool per variable, in order).
func (m *Manager) Eval(f Ref, assignment []bool) bool {
	if len(assignment) != len(m.t.names) {
		panic(fmt.Sprintf("bdd: assignment has %d values, want %d", len(assignment), len(m.t.names)))
	}
	for !IsConst(f) {
		n := m.nodeOf(f)
		c := f & 1
		if assignment[n.level] {
			f = n.high ^ c
		} else {
			f = n.low ^ c
		}
	}
	return f == True
}

// Size reports the number of distinct nodes reachable from f, including
// the terminal. A function and its complement share every node, so
// Size(f) == Size(Not(f)).
func (m *Manager) Size(f Ref) int { return m.TotalSize(f) }

// Support returns the sorted order positions of the variables f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := map[int32]struct{}{}
	vars := map[int32]struct{}{}
	var walk func(Ref)
	walk = func(r Ref) {
		id := int32(r) >> 1
		if id == 0 {
			return
		}
		if _, ok := seen[id]; ok {
			return
		}
		seen[id] = struct{}{}
		n := m.t.node(id)
		vars[n.level] = struct{}{}
		walk(n.low)
		walk(n.high)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}

// SupportSize returns the number of variables f depends on. The paper's
// Figure 5 classification uses SupportSize == 0 at a bridging-fault site to
// identify bridging faults with stuck-at (constant) behavior.
func (m *Manager) SupportSize(f Ref) int { return len(m.Support(f)) }

// String renders a short human-readable description of f.
func (m *Manager) String(f Ref) string {
	switch f {
	case False:
		return "false"
	case True:
		return "true"
	}
	return fmt.Sprintf("bdd(%s; %d nodes)", m.t.names[m.levelOf(f)], m.Size(f))
}
