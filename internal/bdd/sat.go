package bdd

import (
	"math"
	"math/big"
)

// syncSatEpoch drops the view's sat-count cache when the shared table has
// been adopted in place (GC/sift) since the cache was filled: node ids
// were reassigned, so the cached counts name the wrong functions.
func (m *Manager) syncSatEpoch() {
	if e := m.t.epoch.Load(); e != m.satEpoch {
		m.satEpoch = e
		if len(m.satC) > 0 {
			m.satC = make(map[Ref]*big.Int)
		}
	}
}

// SatCount returns the exact number of satisfying assignments of f over all
// variables declared in the manager.
//
// Counts are cached per regular (uncomplemented) ref, normalized to the
// node's own level; a complement edge is resolved arithmetically as
// 2^(n-level) − count, so both polarities of a function are served by one
// cached value. Cached *big.Int values are immutable and may be aliased
// across views and managers (Transfer carries them).
func (m *Manager) SatCount(f Ref) *big.Int {
	m.syncSatEpoch()
	n := int32(len(m.t.names))
	counts := m.satC
	// cntAt(r) counts assignments over the variables at levels >= level(r)
	// (capped at n); cnt(r, from) widens that to levels >= from.
	var cntAt func(Ref) *big.Int
	cnt := func(r Ref, from int32) *big.Int {
		lv := m.levelOf(r)
		if lv > n {
			lv = n
		}
		return new(big.Int).Lsh(cntAt(r), uint(lv-from))
	}
	cntAt = func(r Ref) *big.Int {
		if r == False {
			return big.NewInt(0)
		}
		if r == True {
			return big.NewInt(1)
		}
		if r&1 != 0 {
			// ¬x over the vars from level(r): full space minus x's count.
			reg := r ^ 1
			full := new(big.Int).Lsh(big.NewInt(1), uint(n-m.levelOf(r)))
			return full.Sub(full, cntAt(reg))
		}
		if c, ok := counts[r]; ok {
			return c
		}
		nd := m.nodeOf(r)
		c := cnt(nd.low, nd.level+1)
		c.Add(c, cnt(nd.high, nd.level+1))
		counts[r] = c
		return c
	}
	top := m.levelOf(f)
	if top > n {
		top = n
	}
	return new(big.Int).Lsh(cntAt(f), uint(top))
}

// SatFrac returns the fraction of the 2^n input space satisfying f:
// exactly the paper's "syndrome" when f is the good function of a line, and
// the exact detection probability when f is a complete test set.
func (m *Manager) SatFrac(f Ref) float64 {
	c := m.SatCount(f)
	num := new(big.Float).SetInt(c)
	den := new(big.Float).SetMantExp(big.NewFloat(1), len(m.t.names))
	frac, _ := new(big.Float).Quo(num, den).Float64()
	if math.IsNaN(frac) {
		return 0
	}
	return frac
}

// AnySat returns one satisfying assignment of f as a slice with one entry
// per variable: 0, 1, or -1 for don't-care. Returns nil when f is False.
// The walk prefers the then branch, so the result depends only on the
// function, not on node ids — shared and serial runs pick the same
// witness.
func (m *Manager) AnySat(f Ref) []int8 {
	if f == False {
		return nil
	}
	a := make([]int8, len(m.t.names))
	for i := range a {
		a[i] = -1
	}
	for !IsConst(f) {
		n := m.nodeOf(f)
		c := f & 1
		if hi := n.high ^ c; hi != False {
			a[n.level] = 1
			f = hi
		} else {
			a[n.level] = 0
			f = n.low ^ c
		}
	}
	return a
}

// AllSat invokes fn for each cube (partial assignment; -1 entries are
// don't-care) in a disjoint cube cover of f, stopping early if fn returns
// false. The enumeration is depth-first over the BDD, so the number of
// cubes equals the number of root-to-True paths.
func (m *Manager) AllSat(f Ref, fn func(cube []int8) bool) {
	cube := make([]int8, len(m.t.names))
	for i := range cube {
		cube[i] = -1
	}
	var rec func(Ref) bool
	rec = func(r Ref) bool {
		if r == False {
			return true
		}
		if r == True {
			return fn(cube)
		}
		n := m.nodeOf(r)
		c := r & 1
		lv := n.level
		cube[lv] = 0
		if !rec(n.low ^ c) {
			return false
		}
		cube[lv] = 1
		if !rec(n.high ^ c) {
			return false
		}
		cube[lv] = -1
		return true
	}
	rec(f)
}

// CountMinterms64 returns SatCount rounded to the nearest float64. The
// value is exact only while the count fits in 53 bits of mantissa —
// circuits with more than 53 inputs (several ISCAS-85 members) routinely
// exceed that, and their counts round to the nearest representable
// float64 (relative error ≤ 2⁻⁵³). Callers needing exact wide counts must
// use SatCount; callers deriving fractions should prefer SatFrac, which
// divides in extended precision before rounding once.
func (m *Manager) CountMinterms64(f Ref) float64 {
	fl, _ := new(big.Float).SetInt(m.SatCount(f)).Float64()
	return fl
}
