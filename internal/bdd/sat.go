package bdd

import (
	"math"
	"math/big"
)

// SatCount returns the exact number of satisfying assignments of f over all
// variables declared in the manager.
func (m *Manager) SatCount(f Ref) *big.Int {
	n := int32(len(m.names))
	// count(f) counts assignments over variables at levels >= level(f)
	// capped at n; cache stores counts normalized to the node's own level.
	counts := m.satC
	var rec func(Ref) *big.Int
	rec = func(r Ref) *big.Int {
		if r == False {
			return big.NewInt(0)
		}
		if r == True {
			return big.NewInt(1)
		}
		if c, ok := counts[r]; ok {
			return c
		}
		lo := rec(m.low[r])
		hi := rec(m.high[r])
		lol := m.level[m.low[r]]
		hil := m.level[m.high[r]]
		if lol > n {
			lol = n
		}
		if hil > n {
			hil = n
		}
		c := new(big.Int).Lsh(lo, uint(lol-m.level[r]-1))
		c.Add(c, new(big.Int).Lsh(hi, uint(hil-m.level[r]-1)))
		counts[r] = c
		return c
	}
	c := rec(f)
	top := m.level[f]
	if top > n {
		top = n
	}
	return new(big.Int).Lsh(c, uint(top))
}

// SatFrac returns the fraction of the 2^n input space satisfying f:
// exactly the paper's "syndrome" when f is the good function of a line, and
// the exact detection probability when f is a complete test set.
func (m *Manager) SatFrac(f Ref) float64 {
	c := m.SatCount(f)
	num := new(big.Float).SetInt(c)
	den := new(big.Float).SetMantExp(big.NewFloat(1), len(m.names))
	frac, _ := new(big.Float).Quo(num, den).Float64()
	if math.IsNaN(frac) {
		return 0
	}
	return frac
}

// AnySat returns one satisfying assignment of f as a slice with one entry
// per variable: 0, 1, or -1 for don't-care. Returns nil when f is False.
func (m *Manager) AnySat(f Ref) []int8 {
	if f == False {
		return nil
	}
	a := make([]int8, len(m.names))
	for i := range a {
		a[i] = -1
	}
	for !IsConst(f) {
		if m.high[f] != False {
			a[m.level[f]] = 1
			f = m.high[f]
		} else {
			a[m.level[f]] = 0
			f = m.low[f]
		}
	}
	return a
}

// AllSat invokes fn for each cube (partial assignment; -1 entries are
// don't-care) in a disjoint cube cover of f, stopping early if fn returns
// false. The enumeration is depth-first over the BDD, so the number of
// cubes equals the number of root-to-True paths.
func (m *Manager) AllSat(f Ref, fn func(cube []int8) bool) {
	cube := make([]int8, len(m.names))
	for i := range cube {
		cube[i] = -1
	}
	var rec func(Ref) bool
	rec = func(r Ref) bool {
		if r == False {
			return true
		}
		if r == True {
			return fn(cube)
		}
		lv := m.level[r]
		cube[lv] = 0
		if !rec(m.low[r]) {
			return false
		}
		cube[lv] = 1
		if !rec(m.high[r]) {
			return false
		}
		cube[lv] = -1
		return true
	}
	rec(f)
}

// CountMinterms64 returns SatCount as a float64 (exact for up to 53 bits of
// count, which covers every circuit in this repository).
func (m *Manager) CountMinterms64(f Ref) float64 {
	fl, _ := new(big.Float).SetInt(m.SatCount(f)).Float64()
	return fl
}
