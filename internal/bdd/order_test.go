package bdd

import (
	"math/rand"
	"testing"
)

func TestPermutations(t *testing.T) {
	if got := len(permutations(2)); got != 2 {
		t.Fatalf("2! = %d", got)
	}
	if got := len(permutations(3)); got != 6 {
		t.Fatalf("3! = %d", got)
	}
	if got := len(permutations(4)); got != 24 {
		t.Fatalf("4! = %d", got)
	}
	seen := map[string]bool{}
	for _, p := range permutations(3) {
		key := ""
		for _, v := range p {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate permutation %s", key)
		}
		seen[key] = true
	}
}

// blockedComparator builds the classic order-sensitive function
// (a0∧b0) ∨ (a1∧b1) ∨ ... under the bad blocked order a0..ak b0..bk.
func blockedComparator(k int) (*Manager, Ref) {
	names := make([]string, 0, 2*k)
	for i := 0; i < k; i++ {
		names = append(names, "a"+string(rune('0'+i)))
	}
	for i := 0; i < k; i++ {
		names = append(names, "b"+string(rune('0'+i)))
	}
	m := New(names...)
	f := False
	for i := 0; i < k; i++ {
		f = m.Or(f, m.And(m.Var(i), m.Var(k+i)))
	}
	return m, f
}

func TestWindowReorderShrinksBlockedOrder(t *testing.T) {
	const k = 6
	m, f := blockedComparator(k)
	before := m.Size(f)
	m2, roots, size := m.WindowReorder([]Ref{f}, 3, 20)
	if size >= before {
		t.Fatalf("window reorder failed to shrink: %d -> %d", before, size)
	}
	// The interleaved optimum for this function has 2k+2 nodes; window
	// permutation should get close (it is a local search).
	if size > before/2 {
		t.Fatalf("reorder too weak: %d -> %d (optimum ~%d)", before, size, 3*k+2)
	}
	// Function must be preserved: compare under the variable name mapping.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		a1 := make([]bool, m.NumVars())
		for i := range a1 {
			a1[i] = rng.Intn(2) == 1
		}
		a2 := make([]bool, m2.NumVars())
		for i := 0; i < m2.NumVars(); i++ {
			a2[i] = a1[m.VarIndex(m2.VarName(i))]
		}
		if m.Eval(f, a1) != m2.Eval(roots[0], a2) {
			t.Fatal("window reorder changed the function")
		}
	}
}

func TestWindowReorderNoImprovementStillValid(t *testing.T) {
	// Parity is order-invariant: reorder must hand back an equivalent
	// manager without shrinking.
	m := NewAnon(6)
	f := m.XorN(m.Var(0), m.Var(1), m.Var(2), m.Var(3), m.Var(4), m.Var(5))
	before := m.Size(f)
	m2, roots, size := m.WindowReorder([]Ref{f}, 2, 3)
	if size != before {
		t.Fatalf("parity size changed: %d -> %d", before, size)
	}
	if m2 == m {
		t.Fatal("result must be a fresh manager")
	}
	for i := 0; i < 64; i++ {
		a := make([]bool, 6)
		for v := 0; v < 6; v++ {
			a[v] = i>>v&1 == 1
		}
		a2 := make([]bool, 6)
		for v := 0; v < 6; v++ {
			a2[v] = a[m.VarIndex(m2.VarName(v))]
		}
		if m.Eval(f, a) != m2.Eval(roots[0], a2) {
			t.Fatal("function changed")
		}
	}
}

func TestWindowReorderMultipleRoots(t *testing.T) {
	m, f := blockedComparator(4)
	g := m.Not(f)
	m2, roots, _ := m.WindowReorder([]Ref{f, g}, 2, 10)
	if m2.Not(roots[0]) != roots[1] {
		t.Fatal("root relationship broken by reorder")
	}
}

func TestSiftReachesInterleavedOptimum(t *testing.T) {
	const k = 6
	m, f := blockedComparator(k)
	before := m.Size(f)
	m2, roots, size := m.Sift([]Ref{f}, 10)
	// The optimum for the comparator is the interleaved order: one a-node
	// and one b-node per pair plus the shared terminal, 2k+1 in all.
	// Exhaustive-position sifting must find it from the worst-case
	// blocked order.
	if size != 2*k+1 {
		t.Fatalf("sift reached %d nodes from %d, want optimum %d", size, before, 2*k+1)
	}
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		a1 := make([]bool, m.NumVars())
		for i := range a1 {
			a1[i] = rng.Intn(2) == 1
		}
		a2 := make([]bool, m2.NumVars())
		for i := 0; i < m2.NumVars(); i++ {
			a2[i] = a1[m.VarIndex(m2.VarName(i))]
		}
		if m.Eval(f, a1) != m2.Eval(roots[0], a2) {
			t.Fatal("sifting changed the function")
		}
	}
}

func TestSiftBeatsOrTiesWindow(t *testing.T) {
	m, f := blockedComparator(5)
	_, _, winSize := m.WindowReorder([]Ref{f}, 3, 10)
	_, _, siftSize := m.Sift([]Ref{f}, 10)
	if siftSize > winSize {
		t.Fatalf("sift (%d) worse than window (%d)", siftSize, winSize)
	}
}

func TestSiftPreservesMultipleRoots(t *testing.T) {
	m, f := blockedComparator(4)
	g := m.Xor(f, m.Var(0))
	m2, roots, _ := m.Sift([]Ref{f, g}, 5)
	// Structural relationship must survive: g = f xor (variable "a0").
	va := m2.VarNamed("a0")
	if m2.Xor(roots[0], va) != roots[1] {
		t.Fatal("root relationship broken by sifting")
	}
}

func TestWindowReorderPanics(t *testing.T) {
	m := NewAnon(3)
	for _, w := range []int{1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("window %d must panic", w)
				}
			}()
			m.WindowReorder([]Ref{True}, w, 1)
		}()
	}
}
