package bdd

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the BDDs rooted at the given functions as a Graphviz
// digraph: solid edges for the then-cofactor, dashed for else, boxed
// terminals, one rank per variable level. Complement edges are resolved
// before rendering — each polarity of a node draws as its own vertex — so
// the picture shows plain cofactors. Useful for debugging and for
// documentation figures.
func (m *Manager) DOT(name string, roots ...Ref) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=TB;\n")
	sb.WriteString("  node [shape=circle];\n")
	sb.WriteString("  f0 [label=\"0\", shape=box];\n")
	sb.WriteString("  f1 [label=\"1\", shape=box];\n")

	seen := map[Ref]bool{}
	byLevel := map[int32][]Ref{}
	var walk func(Ref)
	walk = func(r Ref) {
		if IsConst(r) || seen[r] {
			return
		}
		seen[r] = true
		lv := m.levelOf(r)
		byLevel[lv] = append(byLevel[lv], r)
		walk(m.Low(r))
		walk(m.High(r))
	}
	for _, r := range roots {
		walk(r)
	}

	nodeName := func(r Ref) string {
		if r == False {
			return "f0"
		}
		if r == True {
			return "f1"
		}
		return fmt.Sprintf("n%d", r)
	}
	levels := make([]int32, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Slice(levels, func(a, b int) bool { return levels[a] < levels[b] })
	for _, l := range levels {
		nodes := byLevel[l]
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		sb.WriteString("  { rank=same;")
		for _, r := range nodes {
			fmt.Fprintf(&sb, " %s;", nodeName(r))
		}
		sb.WriteString(" }\n")
		for _, r := range nodes {
			fmt.Fprintf(&sb, "  %s [label=%q];\n", nodeName(r), m.t.names[l])
			fmt.Fprintf(&sb, "  %s -> %s [style=dashed];\n", nodeName(r), nodeName(m.Low(r)))
			fmt.Fprintf(&sb, "  %s -> %s;\n", nodeName(r), nodeName(m.High(r)))
		}
	}
	for i, r := range roots {
		fmt.Fprintf(&sb, "  root%d [label=\"f%d\", shape=plaintext];\n", i, i)
		fmt.Fprintf(&sb, "  root%d -> %s;\n", i, nodeName(r))
	}
	sb.WriteString("}\n")
	return sb.String()
}
