package bdd

import (
	"fmt"
	"time"
)

// Transfer copies the functions rooted at refs from m into dst, returning
// the corresponding refs in dst. Variables are matched by name, so dst may
// use a different order (the copy is rebuilt through ITE in that case) or a
// superset of m's variables. Every variable of m must exist in dst. When
// dst is a view over the same table as m (Share), the refs are already
// valid there and are returned as-is.
//
// When source and destination share the variable order (the structural-copy
// fast path), cached satisfying-set counts of the transferred nodes are
// carried over too: node levels are preserved, so the counts — which are
// normalized to each node's own level — stay valid. The carry walks the
// transfer memo table, so its cost scales with the number of transferred
// nodes, not with the size of the source's sat cache. This keeps syndrome
// and detectability counting warm across engine clones and generational
// rebuilds. Transfer reads but never mutates the source manager, so many
// destinations may be filled from one source concurrently.
//
// Any operation budget or node watermark armed on dst is suspended for
// the duration of the copy and restored afterwards: a transfer is
// bookkeeping, not analysis work, and must not abort half-way with
// ErrBudget/ErrNodeLimit leaving the caller with a partial copy.
func (m *Manager) Transfer(dst *Manager, refs ...Ref) []Ref {
	if dst.t == m.t {
		return append([]Ref(nil), refs...)
	}
	savedOps, savedBudget := dst.ops, dst.budgetOps
	savedDeadline, savedMask := dst.deadline, dst.deadlineMask
	savedLimit := dst.nodeLimit
	savedChaosAt, savedChaosErr := dst.chaosAt, dst.chaosErr
	dst.budgetOps, dst.deadline, dst.nodeLimit = 0, time.Time{}, 0
	dst.chaosAt, dst.chaosErr = 0, nil
	defer func() {
		dst.ops, dst.budgetOps = savedOps, savedBudget
		dst.deadline, dst.deadlineMask = savedDeadline, savedMask
		dst.nodeLimit = savedLimit
		dst.chaosAt, dst.chaosErr = savedChaosAt, savedChaosErr
	}()

	varMap := make([]Ref, len(m.t.names))
	sameOrder := len(m.t.names) == len(dst.t.names)
	for i, name := range m.t.names {
		j := dst.VarIndex(name)
		if j < 0 {
			panic(fmt.Sprintf("bdd: transfer target lacks variable %q", name))
		}
		varMap[i] = dst.Var(j)
		if j != i {
			sameOrder = false
		}
	}
	// memo maps source node ids to the dst ref of the node's regular
	// function; complement bits are re-applied per edge.
	memo := map[int32]Ref{0: False}
	var recID func(int32) Ref
	rec := func(r Ref) Ref { return recID(int32(r)>>1) ^ (r & 1) }
	if sameOrder {
		// Fast path: identical order, structural copy. The stored high edge
		// is regular, so the copied node is already in canonical
		// complement-edge form and recID stays closed over regular refs.
		recID = func(id int32) Ref {
			if out, ok := memo[id]; ok {
				return out
			}
			n := m.t.node(id)
			out := dst.mk(n.level, rec(n.low), rec(n.high))
			memo[id] = out
			return out
		}
	} else {
		recID = func(id int32) Ref {
			if out, ok := memo[id]; ok {
				return out
			}
			n := m.t.node(id)
			out := dst.Ite(varMap[n.level], rec(n.high), rec(n.low))
			memo[id] = out
			return out
		}
	}
	out := make([]Ref, len(refs))
	for i, r := range refs {
		out[i] = rec(r)
	}
	if sameOrder {
		// Carry cached sat counts for every node that made the trip. The
		// *big.Int values are shared: SatCount treats stored counts as
		// immutable, so aliasing across managers is safe.
		m.syncSatEpoch()
		dst.syncSatEpoch()
		for id, dstRef := range memo {
			if id == 0 {
				continue
			}
			if count, ok := m.satC[Ref(id)<<1]; ok {
				if _, have := dst.satC[dstRef]; !have {
					dst.satC[dstRef] = count
				}
			}
		}
	}
	return out
}

// Rebuild copies the given root functions into a fresh manager with the
// same variable order and returns it together with the remapped roots.
// This is the package's generational garbage collection: everything not
// reachable from roots is dropped.
func (m *Manager) Rebuild(roots []Ref) (*Manager, []Ref) {
	dst := New(m.t.names...)
	out := m.Transfer(dst, roots...)
	return dst, out
}

// ReorderTo rebuilds the root functions under a new variable order (a
// permutation of the manager's names) and returns the new manager and the
// remapped roots.
func (m *Manager) ReorderTo(order []string, roots []Ref) (*Manager, []Ref) {
	if len(order) != len(m.t.names) {
		panic("bdd: reorder must permute all variables")
	}
	seen := map[string]bool{}
	for _, n := range order {
		if m.VarIndex(n) < 0 {
			panic(fmt.Sprintf("bdd: reorder names unknown variable %q", n))
		}
		if seen[n] {
			panic(fmt.Sprintf("bdd: reorder repeats variable %q", n))
		}
		seen[n] = true
	}
	dst := New(order...)
	out := m.Transfer(dst, roots...)
	return dst, out
}

// TotalSize reports the number of distinct nodes reachable from the union
// of the given roots (shared nodes counted once, the terminal included).
// Under complement edges a function and its complement share every node,
// so both polarities of a root contribute the same set.
func (m *Manager) TotalSize(roots ...Ref) int {
	seen := map[int32]struct{}{}
	var walk func(Ref)
	walk = func(r Ref) {
		id := int32(r) >> 1
		if _, ok := seen[id]; ok {
			return
		}
		seen[id] = struct{}{}
		if id == 0 {
			return
		}
		n := m.t.node(id)
		walk(n.low)
		walk(n.high)
	}
	for _, r := range roots {
		walk(r)
	}
	return len(seen)
}
