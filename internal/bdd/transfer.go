package bdd

import "fmt"

// Transfer copies the functions rooted at refs from m into dst, returning
// the corresponding refs in dst. Variables are matched by name, so dst may
// use a different order (the copy is rebuilt through ITE in that case) or a
// superset of m's variables. Every variable of m must exist in dst.
//
// When source and destination share the variable order (the structural-copy
// fast path), cached satisfying-set counts of the transferred nodes are
// carried over too: node levels are preserved, so the counts — which are
// normalized to each node's own level — stay valid. This keeps syndrome
// and detectability counting warm across engine clones and generational
// rebuilds. Transfer reads but never mutates the source manager, so many
// destinations may be filled from one source concurrently.
func (m *Manager) Transfer(dst *Manager, refs ...Ref) []Ref {
	varMap := make([]Ref, len(m.names))
	sameOrder := len(m.names) == len(dst.names)
	for i, name := range m.names {
		j := dst.VarIndex(name)
		if j < 0 {
			panic(fmt.Sprintf("bdd: transfer target lacks variable %q", name))
		}
		varMap[i] = dst.Var(j)
		if j != i {
			sameOrder = false
		}
	}
	memo := map[Ref]Ref{False: False, True: True}
	var rec func(Ref) Ref
	if sameOrder {
		// Fast path: identical order, structural copy.
		rec = func(r Ref) Ref {
			if out, ok := memo[r]; ok {
				return out
			}
			out := dst.mk(m.level[r], rec(m.low[r]), rec(m.high[r]))
			memo[r] = out
			return out
		}
	} else {
		rec = func(r Ref) Ref {
			if out, ok := memo[r]; ok {
				return out
			}
			out := dst.Ite(varMap[m.level[r]], rec(m.high[r]), rec(m.low[r]))
			memo[r] = out
			return out
		}
	}
	out := make([]Ref, len(refs))
	for i, r := range refs {
		out[i] = rec(r)
	}
	if sameOrder {
		// Carry cached sat counts for every node that made the trip. The
		// *big.Int values are shared: SatCount treats stored counts as
		// immutable, so aliasing across managers is safe.
		for src, count := range m.satC {
			if dstRef, ok := memo[src]; ok {
				if _, have := dst.satC[dstRef]; !have {
					dst.satC[dstRef] = count
				}
			}
		}
	}
	return out
}

// Rebuild copies the given root functions into a fresh manager with the
// same variable order and returns it together with the remapped roots.
// This is the package's generational garbage collection: everything not
// reachable from roots is dropped.
func (m *Manager) Rebuild(roots []Ref) (*Manager, []Ref) {
	dst := New(m.names...)
	out := m.Transfer(dst, roots...)
	return dst, out
}

// ReorderTo rebuilds the root functions under a new variable order (a
// permutation of the manager's names) and returns the new manager and the
// remapped roots.
func (m *Manager) ReorderTo(order []string, roots []Ref) (*Manager, []Ref) {
	if len(order) != len(m.names) {
		panic("bdd: reorder must permute all variables")
	}
	seen := map[string]bool{}
	for _, n := range order {
		if m.VarIndex(n) < 0 {
			panic(fmt.Sprintf("bdd: reorder names unknown variable %q", n))
		}
		if seen[n] {
			panic(fmt.Sprintf("bdd: reorder repeats variable %q", n))
		}
		seen[n] = true
	}
	dst := New(order...)
	out := m.Transfer(dst, roots...)
	return dst, out
}

// TotalSize reports the number of distinct nodes reachable from the union
// of the given roots (shared nodes counted once, terminals included).
func (m *Manager) TotalSize(roots ...Ref) int {
	seen := map[Ref]struct{}{}
	var walk func(Ref)
	walk = func(r Ref) {
		if _, ok := seen[r]; ok {
			return
		}
		seen[r] = struct{}{}
		if IsConst(r) {
			return
		}
		walk(m.low[r])
		walk(m.high[r])
	}
	for _, r := range roots {
		walk(r)
	}
	return len(seen)
}
