package bdd

// Window-permutation variable reordering: a classic, robust alternative to
// full sifting. The manager slides a window of w adjacent variables across
// the order; at each position it tries every permutation of the window and
// keeps the best. Candidates are evaluated by rebuilding the root
// functions under the candidate order (Transfer), which keeps the
// implementation canonical-by-construction at the cost of speed — fine for
// the static, build-once engines this repository uses.

import "fmt"

// permutations returns all permutations of 0..n-1 (n small: 2..4).
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for pos := 0; pos <= len(sub); pos++ {
			p := make([]int, 0, n)
			p = append(p, sub[:pos]...)
			p = append(p, n-1)
			p = append(p, sub[pos:]...)
			out = append(out, p)
		}
	}
	return out
}

// Sift performs Rudell-style variable sifting with a transfer-based move
// primitive: each variable in turn is tried at every position of the
// order (the candidate order is evaluated by rebuilding the roots) and
// settles where the total node count is smallest. Passes repeat until no
// variable moves or maxPasses is reached. Compared to classic in-place
// sifting this trades speed for simplicity — every candidate is built by
// the same canonical Transfer used everywhere else, so there is no
// special-cased swap code to get wrong. Intended as an offline optimizer
// for build-once engines; returns a fresh manager, the remapped roots and
// the achieved size.
func (m *Manager) Sift(roots []Ref, maxPasses int) (*Manager, []Ref, int) {
	if maxPasses < 1 {
		maxPasses = 1
	}
	cur, curRoots := m.Rebuild(roots)
	best := cur.TotalSize(curRoots...)
	n := len(m.t.names)
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		vars := cur.Names()
		for _, v := range vars {
			base := cur.Names()
			// Remove v from the order once; reinsert at each position.
			without := make([]string, 0, n-1)
			curPos := -1
			for i, name := range base {
				if name == v {
					curPos = i
					continue
				}
				without = append(without, name)
			}
			bestPos, bestSize := curPos, cur.TotalSize(curRoots...)
			for pos := 0; pos < n; pos++ {
				if pos == curPos {
					continue
				}
				order := make([]string, 0, n)
				order = append(order, without[:pos]...)
				order = append(order, v)
				order = append(order, without[pos:]...)
				cand := New(order...)
				candRoots := cur.Transfer(cand, curRoots...)
				if size := cand.TotalSize(candRoots...); size < bestSize {
					bestSize, bestPos = size, pos
				}
			}
			if bestPos != curPos {
				order := make([]string, 0, n)
				order = append(order, without[:bestPos]...)
				order = append(order, v)
				order = append(order, without[bestPos:]...)
				next := New(order...)
				curRoots = cur.Transfer(next, curRoots...)
				cur = next
				best = bestSize
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur, curRoots, best
}

// WindowReorder searches for a better variable order for the given root
// functions using window permutation with the given window size (2..4)
// and repeated passes until no pass improves the total node count. It
// returns a new manager, the remapped roots, and the achieved size. The
// original manager is left untouched.
func (m *Manager) WindowReorder(roots []Ref, window, maxPasses int) (*Manager, []Ref, int) {
	if window < 2 || window > 4 {
		panic(fmt.Sprintf("bdd: window size %d out of range [2,4]", window))
	}
	if maxPasses < 1 {
		maxPasses = 1
	}
	cur := m
	curRoots := append([]Ref(nil), roots...)
	best := cur.TotalSize(curRoots...)
	perms := permutations(window)
	n := len(m.t.names)
	for pass := 0; pass < maxPasses; pass++ {
		improvedPass := false
		for start := 0; start+window <= n; start++ {
			order := cur.Names()
			base := append([]string(nil), order...)
			var bestPerm []int
			for _, p := range perms {
				identity := true
				for i, v := range p {
					if v != i {
						identity = false
					}
					order[start+i] = base[start+p[i]]
				}
				if identity {
					continue // current arrangement is already scored
				}
				cand := New(order...)
				candRoots := cur.Transfer(cand, curRoots...)
				if size := cand.TotalSize(candRoots...); size < best {
					best = size
					bestPerm = append([]int(nil), p...)
				}
			}
			if bestPerm != nil {
				for i := range bestPerm {
					order[start+i] = base[start+bestPerm[i]]
				}
				next := New(order...)
				curRoots = cur.Transfer(next, curRoots...)
				cur = next
				improvedPass = true
			}
		}
		if !improvedPass {
			break
		}
	}
	if cur == m {
		// No improvement anywhere: still hand back a fresh manager so the
		// contract (result independent of the receiver) holds.
		nm, nr := m.Rebuild(curRoots)
		return nm, nr, nm.TotalSize(nr...)
	}
	return cur, curRoots, best
}
