// The shared node store behind every Manager view.
//
// A table owns the unique table, the node storage and the operation cache
// for one BDD universe. Many Manager views (created with Share) can use a
// single table concurrently: find-or-insert is lock-striped across
// nShards shards, node payloads live in immutable-once-published chunks
// reachable through an atomically swapped chunk directory, and the
// computed (ITE) cache is a seqlock-validated direct-mapped array that
// readers probe without locks and writers update with a CAS-guarded
// sequence protocol. Lookups of published nodes therefore never contend;
// only simultaneous inserts that land in the same shard serialize.
//
// Every cross-goroutine handoff of a Ref passes through a synchronizing
// edge — the shard mutex that published its node, an atomic computed-cache
// entry, or the caller's own pre-start synchronization — so the plain
// reads of node payloads are race-free: a node is fully written before the
// edge that makes its Ref visible.
package bdd

import (
	"fmt"
	"sync"
	"sync/atomic"
)

const (
	shardBits = 4
	nShards   = 1 << shardBits
	shardMask = nShards - 1

	chunkBits = 9
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1

	// maxShardNodes bounds the per-shard local index so a node id (local
	// index plus shard tag) and its complement bit always fit in an int32 Ref.
	maxShardNodes = 1 << 26
)

// node is one BDD node. The then (high) edge is always a regular
// (non-complemented) ref — the canonical complement-edge restriction —
// while the else (low) edge may carry the complement bit. Nodes are
// immutable once published.
type node struct {
	level int32
	low   Ref
	high  Ref
}

type nodeChunk [chunkSize]node

// shard is one lock stripe of the unique table. The buckets/next chains
// are touched only under mu; node payloads are written under mu before
// their local index is published and are read lock-free afterwards.
type shard struct {
	mu      sync.Mutex
	buckets []int32 // heads of hash chains, local indices, -1 empty
	mask    uint32
	next    []int32 // chain links, indexed by local node index
	count   int32   // nodes stored in this shard
	dir     atomic.Pointer[[]*nodeChunk]
}

// node returns the payload of the local index (lock-free; the caller must
// hold a happens-before edge to the node's publication, which every
// legitimately obtained Ref provides).
func (s *shard) node(local int32) *node {
	d := *s.dir.Load()
	return &d[local>>chunkBits][local&chunkMask]
}

// table is the shared state of one BDD universe.
type table struct {
	names   []string
	nameIdx map[string]int
	vars    []Ref // vars[i]: regular ref of the (x_i ? false : true) node, i.e. ¬x_i

	shards [nShards]shard
	count  atomic.Int64 // total nodes, terminals included

	cache  atomic.Pointer[opCache]
	growMu sync.Mutex // serializes computed-cache growth
	noGrow bool       // test hook: pin the cache size

	// epoch counts in-place adoptions (GC/sift). Views compare it against
	// their own satEpoch to invalidate per-view sat-count caches lazily.
	epoch atomic.Uint64
	views atomic.Int64
}

func newTable(names []string, nameIdx map[string]int) *table {
	t := &table{names: names, nameIdx: nameIdx}
	for i := range t.shards {
		s := &t.shards[i]
		s.buckets = make([]int32, 64)
		for j := range s.buckets {
			s.buckets[j] = -1
		}
		s.mask = uint32(len(s.buckets) - 1)
		empty := []*nodeChunk{}
		s.dir.Store(&empty)
	}
	// The single terminal node: id 0, shard 0, local 0. It represents the
	// constant false function (True is its complement edge) and is not
	// hashed into any bucket.
	s0 := &t.shards[0]
	ch := new(nodeChunk)
	ch[0] = node{level: terminalLevel}
	d := []*nodeChunk{ch}
	s0.dir.Store(&d)
	s0.count = 1
	s0.next = []int32{-1}
	t.count.Store(1)
	t.cache.Store(newOpCache(minCacheBits))
	t.views.Store(1)
	t.vars = make([]Ref, len(names))
	for i := range names {
		t.vars[i] = t.mkRaw(0, int32(i), True, False)
	}
	return t
}

// node returns the payload of a node id (Ref without its complement bit).
func (t *table) node(id int32) *node {
	return t.shards[id&shardMask].node(id >> shardBits)
}

func nodeHash(level int32, low, high Ref) uint32 {
	h := uint32(level)*0x9e3779b1 ^ uint32(low)*0x85ebca6b ^ uint32(high)*0xc2b2ae35
	h ^= h >> 15
	return h
}

// mkRaw finds or inserts the node (level, low, high) — already normalized
// to a regular high edge — and returns its regular Ref. limit > 0 arms the
// calling view's node watermark: the insert panics with ErrNodeLimit when
// the table has already reached it (checked after the lookup, so shared
// nodes keep resolving under a blown watermark and the panic fires only
// with the store consistent).
func (t *table) mkRaw(limit int, level int32, low, high Ref) Ref {
	h := nodeHash(level, low, high)
	s := &t.shards[h&shardMask]
	s.mu.Lock()
	slot := (h >> shardBits) & s.mask
	for li := s.buckets[slot]; li >= 0; li = s.next[li] {
		n := s.node(li)
		if n.level == level && n.low == low && n.high == high {
			s.mu.Unlock()
			id := li<<shardBits | int32(h&shardMask)
			return Ref(id << 1)
		}
	}
	if limit > 0 && int(t.count.Load()) >= limit {
		s.mu.Unlock()
		panic(ErrNodeLimit)
	}
	local := s.count
	if local >= maxShardNodes {
		s.mu.Unlock()
		panic(fmt.Sprintf("bdd: unique-table shard overflow (%d nodes)", local))
	}
	d := *s.dir.Load()
	if int(local>>chunkBits) >= len(d) {
		nd := make([]*nodeChunk, len(d)+1)
		copy(nd, d)
		nd[len(d)] = new(nodeChunk)
		s.dir.Store(&nd)
		d = nd
	}
	d[local>>chunkBits][local&chunkMask] = node{level: level, low: low, high: high}
	s.next = append(s.next, s.buckets[slot])
	s.buckets[slot] = local
	s.count = local + 1
	if int(s.count) > len(s.buckets) {
		s.growLocked()
	}
	s.mu.Unlock()
	total := t.count.Add(1)
	t.maybeGrowCache(total)
	id := local<<shardBits | int32(h&shardMask)
	return Ref(id << 1)
}

// growLocked doubles the shard's bucket array and rehashes its chains.
// Caller holds s.mu.
func (s *shard) growLocked() {
	nb := make([]int32, len(s.buckets)*2)
	for i := range nb {
		nb[i] = -1
	}
	s.mask = uint32(len(nb) - 1)
	for li := int32(0); li < s.count; li++ {
		n := s.node(li)
		if n.level == terminalLevel {
			continue // the terminal is not bucketed
		}
		slot := (nodeHash(n.level, n.low, n.high) >> shardBits) & s.mask
		s.next[li] = nb[slot]
		nb[slot] = li
	}
	s.buckets = nb
}

// maybeGrowCache doubles the computed cache once the node count outgrows
// it (up to maxCacheBits). Entries in the replaced cache are lost, which
// is harmless — the cache is only an accelerator.
func (t *table) maybeGrowCache(total int64) {
	c := t.cache.Load()
	if t.noGrow || c.bits >= maxCacheBits || total <= int64(len(c.entries)) {
		return
	}
	t.growMu.Lock()
	c = t.cache.Load()
	if !t.noGrow && c.bits < maxCacheBits && total > int64(len(c.entries)) {
		t.cache.Store(newOpCache(c.bits + 1))
	}
	t.growMu.Unlock()
}

// adoptFrom replaces the table's contents in place with src's: shard guts,
// node count, variable order and variable nodes. The computed cache is
// reset (its entries name ids of the replaced store) and the epoch is
// bumped so every view sharing the table lazily drops its sat-count
// cache. Callers must hold the table quiescent — no concurrent readers or
// writers — which the campaign layer guarantees with its analysis lock.
// src must not be used afterwards.
func (t *table) adoptFrom(src *table) {
	t.names, t.nameIdx, t.vars = src.names, src.nameIdx, src.vars
	for i := range t.shards {
		d, s := &t.shards[i], &src.shards[i]
		d.mu.Lock()
		d.buckets, d.mask, d.next, d.count = s.buckets, s.mask, s.next, s.count
		d.dir.Store(s.dir.Load())
		d.mu.Unlock()
	}
	t.count.Store(src.count.Load())
	t.cache.Store(newOpCache(t.cache.Load().bits))
	t.epoch.Add(1)
}

// opCache is the computed table: a direct-mapped cache of ITE results
// (And/Or/Xor are normalized ITE triples, so one cache serves every
// operation). Entries are seqlock-validated: the sequence word is 0 when
// empty, odd while a writer is mid-update, and advances by two per
// publish, so a reader that sees the same even sequence before and after
// loading the payload words has a consistent entry. Writers skip the slot
// (the cache is lossy) rather than wait.
type opCache struct {
	bits    uint
	mask    uint32
	entries []cacheEnt
}

type cacheEnt struct {
	seq atomic.Uint32
	a   atomic.Uint64 // f<<32 | g
	b   atomic.Uint64 // h<<32 | res
}

func newOpCache(bits uint) *opCache {
	return &opCache{bits: bits, mask: uint32(1)<<bits - 1, entries: make([]cacheEnt, 1<<bits)}
}

func iteHash(f, g, h Ref) uint32 {
	x := uint32(f)*0x9e3779b1 ^ uint32(g)*0x85ebca6b ^ uint32(h)*0xc2b2ae35
	x ^= x >> 14
	return x
}

func (c *opCache) get(f, g, h Ref) (Ref, bool) {
	e := &c.entries[iteHash(f, g, h)&c.mask]
	s1 := e.seq.Load()
	if s1 == 0 || s1&1 != 0 {
		return 0, false
	}
	a := e.a.Load()
	b := e.b.Load()
	if e.seq.Load() != s1 {
		return 0, false
	}
	if uint32(a>>32) != uint32(f) || uint32(a) != uint32(g) || uint32(b>>32) != uint32(h) {
		return 0, false
	}
	return Ref(int32(uint32(b))), true
}

func (c *opCache) put(f, g, h, res Ref) {
	e := &c.entries[iteHash(f, g, h)&c.mask]
	s := e.seq.Load()
	if s&1 != 0 {
		return // a writer owns the slot; drop the insert
	}
	if !e.seq.CompareAndSwap(s, s+1) {
		return
	}
	e.a.Store(uint64(uint32(f))<<32 | uint64(uint32(g)))
	e.b.Store(uint64(uint32(h))<<32 | uint64(uint32(res)))
	e.seq.Store(s + 2)
}
