package bdd_test

import (
	"fmt"

	"repro/internal/bdd"
)

// Building functions and counting satisfying assignments exactly — the
// primitive behind the paper's syndromes and detectabilities.
func ExampleManager_SatCount() {
	m := bdd.New("a", "b", "c")
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), c) // ab + c
	fmt.Println("minterms:", m.SatCount(f))
	fmt.Println("syndrome:", m.SatFrac(f))
	// Output:
	// minterms: 5
	// syndrome: 0.625
}

// Canonicity: equal functions are the identical node, so equivalence
// checking is pointer comparison.
func ExampleManager_Xor() {
	m := bdd.New("x", "y")
	x, y := m.Var(0), m.Var(1)
	viaXor := m.Xor(x, y)
	viaAndOr := m.Or(m.And(x, m.Not(y)), m.And(m.Not(x), y))
	fmt.Println("same node:", viaXor == viaAndOr)
	// Output:
	// same node: true
}

func ExampleManager_AllSat() {
	m := bdd.New("a", "b")
	f := m.Or(m.Var(0), m.Var(1))
	m.AllSat(f, func(cube []int8) bool {
		fmt.Println(cube)
		return true
	})
	// Output:
	// [0 1]
	// [1 -1]
}
