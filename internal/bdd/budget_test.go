package bdd

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

// buildHeavy performs a few thousand cache-miss operations: the OR of many
// random minterms over a wide variable set shares almost nothing, so every
// And/Or step misses.
func buildHeavy(m *Manager, minterms int) Ref {
	rng := rand.New(rand.NewSource(42))
	acc := False
	for i := 0; i < minterms; i++ {
		cube := True
		for v := 0; v < m.NumVars(); v++ {
			if rng.Intn(2) == 1 {
				cube = m.And(cube, m.Var(v))
			} else {
				cube = m.And(cube, m.NVar(v))
			}
		}
		acc = m.Or(acc, cube)
	}
	return acc
}

// recoverBudget runs fn and reports whether it aborted with ErrBudget.
func recoverBudget(t *testing.T, fn func()) (aborted bool) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrBudget) {
			t.Fatalf("panic value %v, want ErrBudget", r)
		}
		aborted = true
	}()
	fn()
	return false
}

func TestBudgetOpsAbort(t *testing.T) {
	m := NewAnon(32)
	m.SetBudget(100, time.Time{})
	if !recoverBudget(t, func() { buildHeavy(m, 64) }) {
		t.Fatal("a 100-op budget survived thousands of cache misses")
	}
	if m.OpsCharged() <= 100 {
		t.Fatalf("ops charged = %d, want > 100 at abort", m.OpsCharged())
	}
	// The manager must stay usable: the abort fires between node-table
	// mutations, so the unique table is still consistent.
	m.ClearBudget()
	f := m.And(m.Var(0), m.Var(1))
	if m.Eval(f, evalAssign(m, 0, 1)) != true {
		t.Fatal("manager broken after budget abort")
	}
	if recoverBudget(t, func() { buildHeavy(m, 64) }) {
		t.Fatal("cleared budget still aborts")
	}
}

func TestBudgetDeadlineAbort(t *testing.T) {
	m := NewAnon(40)
	// An already-expired deadline with no op ceiling: the clock is checked
	// every 1024 charges, so a build with a few thousand misses must abort.
	m.SetBudget(0, time.Now().Add(-time.Second))
	if !recoverBudget(t, func() { buildHeavy(m, 128) }) {
		t.Fatal("expired deadline never aborted the build")
	}
}

func TestBudgetRearmResetsCounter(t *testing.T) {
	m := NewAnon(8)
	m.SetBudget(1<<40, time.Time{})
	buildHeavy(m, 4)
	if m.OpsCharged() == 0 {
		t.Fatal("no ops charged by a heavy build")
	}
	m.SetBudget(1<<40, time.Time{})
	if m.OpsCharged() != 0 {
		t.Fatalf("re-arming left %d ops on the counter", m.OpsCharged())
	}
}

// evalAssign builds an assignment with the listed variables set to true.
func evalAssign(m *Manager, trueVars ...int) []bool {
	a := make([]bool, m.NumVars())
	for _, v := range trueVars {
		a[v] = true
	}
	return a
}
