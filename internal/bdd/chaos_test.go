package bdd

import (
	"errors"
	"testing"
	"time"
)

// recoverSentinel runs fn and returns which resource sentinel (if any)
// its panic carried.
func recoverSentinel(t *testing.T, fn func()) (err error) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		e, ok := r.(error)
		if !ok || (!errors.Is(e, ErrBudget) && !errors.Is(e, ErrNodeLimit)) {
			t.Fatalf("panic value %v, want ErrBudget or ErrNodeLimit", r)
		}
		err = e
	}()
	fn()
	return nil
}

func TestChaosAbortFiresAtThreshold(t *testing.T) {
	m := NewAnon(32)
	m.SetBudget(0, time.Time{})
	m.SetChaosAbort(1, ErrNodeLimit)
	if err := recoverSentinel(t, func() { buildHeavy(m, 8) }); !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("chaos abort raised %v, want ErrNodeLimit", err)
	}
	if m.OpsCharged() != 1 {
		t.Fatalf("aborted at op %d, want 1", m.OpsCharged())
	}
	// One-shot: the trigger disarmed itself on firing.
	if err := recoverSentinel(t, func() { buildHeavy(m, 8) }); err != nil {
		t.Fatalf("disarmed chaos abort fired again: %v", err)
	}
}

func TestChaosAbortDefaultsToErrBudget(t *testing.T) {
	m := NewAnon(16)
	m.SetBudget(0, time.Time{})
	m.SetChaosAbort(3, nil)
	if err := recoverSentinel(t, func() { buildHeavy(m, 8) }); !errors.Is(err, ErrBudget) {
		t.Fatalf("chaos abort raised %v, want ErrBudget", err)
	}
	if m.OpsCharged() != 3 {
		t.Fatalf("aborted at op %d, want 3", m.OpsCharged())
	}
}

func TestChaosAbortClearedBySetBudget(t *testing.T) {
	m := NewAnon(16)
	m.SetChaosAbort(1, ErrBudget)
	// Re-arming the budget resets the meter the threshold was relative
	// to, so it must disarm the pending abort too.
	m.SetBudget(0, time.Time{})
	if err := recoverSentinel(t, func() { buildHeavy(m, 8) }); err != nil {
		t.Fatalf("SetBudget left the chaos abort armed: %v", err)
	}
	m.SetChaosAbort(1, ErrBudget)
	m.SetChaosAbort(0, nil)
	if err := recoverSentinel(t, func() { buildHeavy(m, 8) }); err != nil {
		t.Fatalf("SetChaosAbort(0, nil) did not disarm: %v", err)
	}
}

func TestChaosAbortShieldedFromTransfer(t *testing.T) {
	src := NewAnon(12)
	f := buildHeavy(src, 8)
	dst := NewAnon(12)
	dst.SetChaosAbort(1, ErrBudget)
	var got []Ref
	if err := recoverSentinel(t, func() { got = src.Transfer(dst, f) }); err != nil {
		t.Fatalf("Transfer tripped the destination's chaos abort: %v", err)
	}
	if len(got) != 1 {
		t.Fatal("transfer incomplete")
	}
	// The pending abort survives the shield and fires on real work.
	if err := recoverSentinel(t, func() { buildHeavy(dst, 8) }); !errors.Is(err, ErrBudget) {
		t.Fatalf("chaos abort lost across Transfer: %v", err)
	}
}
