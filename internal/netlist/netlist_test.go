package netlist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// c17 is the classic 6-NAND ISCAS-85 circuit, used widely in these tests.
const c17Bench = `
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func mustC17(t testing.TB) *Circuit {
	t.Helper()
	c, err := ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGateTypeEval(t *testing.T) {
	cases := []struct {
		t    GateType
		in   []bool
		want bool
	}{
		{And, []bool{true, true, true}, true},
		{And, []bool{true, false, true}, false},
		{Nand, []bool{true, true}, false},
		{Nand, []bool{true, false}, true},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Nor, []bool{true, false}, false},
		{Xor, []bool{true, true, true}, true},
		{Xor, []bool{true, true}, false},
		{Xnor, []bool{true, false}, false},
		{Xnor, []bool{true, true}, true},
		{Not, []bool{true}, false},
		{Buff, []bool{true}, true},
	}
	for _, tc := range cases {
		if got := tc.t.Eval(tc.in); got != tc.want {
			t.Errorf("%s(%v) = %v, want %v", tc.t, tc.in, got, tc.want)
		}
	}
}

// Property: EvalWord agrees with Eval bit-by-bit for every gate type and
// random input words.
func TestQuickEvalWordAgreesWithEval(t *testing.T) {
	types := []GateType{And, Nand, Or, Nor, Xor, Xnor}
	err := quick.Check(func(a, b, c uint64) bool {
		for _, gt := range types {
			w := gt.EvalWord([]uint64{a, b, c})
			for bit := 0; bit < 64; bit++ {
				in := []bool{a>>bit&1 == 1, b>>bit&1 == 1, c>>bit&1 == 1}
				if (w>>bit&1 == 1) != gt.Eval(in) {
					return false
				}
			}
		}
		// Unary gates.
		if Not.EvalWord([]uint64{a}) != ^a || Buff.EvalWord([]uint64{a}) != a {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInverting(t *testing.T) {
	inv := map[GateType]bool{
		And: false, Nand: true, Or: false, Nor: true,
		Xor: false, Xnor: true, Not: true, Buff: false,
	}
	for gt, want := range inv {
		if gt.Inverting() != want {
			t.Errorf("%s.Inverting() = %v", gt, !want)
		}
	}
}

func TestParseC17(t *testing.T) {
	c := mustC17(t)
	if len(c.Inputs) != 5 || len(c.Outputs) != 2 || c.NumGates() != 6 {
		t.Fatalf("c17 shape wrong: %s", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// c17 truth spot-checks: with all inputs 0, every NAND of zeros is 1...
	// compute a few points against hand evaluation.
	out := c.EvalBool([]bool{false, false, false, false, false})
	// 10=NAND(0,0)=1, 11=NAND(0,0)=1, 16=NAND(0,1)=1, 19=NAND(1,0)=1,
	// 22=NAND(1,1)=0, 23=NAND(1,1)=0.
	if out[0] != false || out[1] != false {
		t.Fatalf("c17(00000) = %v, want [false false]", out)
	}
	out = c.EvalBool([]bool{true, true, true, true, true})
	// 10=NAND(1,1)=0, 11=0, 16=NAND(1,0)=1, 19=NAND(0,1)=1, 22=NAND(0,1)=1, 23=NAND(1,1)=0
	if out[0] != true || out[1] != false {
		t.Fatalf("c17(11111) = %v, want [true false]", out)
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c := mustC17(t)
	text := c.BenchString()
	c2, err := ParseBenchString("c17", text)
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	for i := 0; i < 32; i++ {
		in := make([]bool, 5)
		for b := 0; b < 5; b++ {
			in[b] = i>>b&1 == 1
		}
		a, b := c.EvalBool(in), c2.EvalBool(in)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("round trip changed function at input %05b", i)
			}
		}
	}
}

func TestParseOutOfOrder(t *testing.T) {
	// Gates defined before their fan-ins must still parse (topological sort
	// inside the parser).
	text := `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(m, b)
m = NOT(a)
`
	c, err := ParseBenchString("ooo", text)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.EvalBool([]bool{false, true}); !got[0] {
		t.Fatal("z = !a & b wrong")
	}
	if got := c.EvalBool([]bool{true, true}); got[0] {
		t.Fatal("z = !a & b wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"cycle", "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = NOT(x)\n"},
		{"undefined", "INPUT(a)\nOUTPUT(x)\nx = AND(a, ghost)\n"},
		{"dup gate", "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nx = AND(a, b)\nx = OR(a, b)\n"},
		{"dup input", "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n"},
		{"input redefined", "INPUT(a)\nINPUT(b)\nOUTPUT(a)\na = AND(b, b)\n"},
		{"bad keyword", "INPUT(a)\nOUTPUT(x)\nx = FROB(a, a)\n"},
		{"bad line", "INPUT(a)\nOUTPUT(a)\nwhat is this\n"},
		{"missing paren", "INPUT a\nOUTPUT(a)\n"},
		{"empty fanin", "INPUT(a)\nOUTPUT(x)\nx = AND(a, )\n"},
		{"no outputs", "INPUT(a)\nx = NOT(a)\n"},
		{"undefined output", "INPUT(a)\nOUTPUT(zz)\nx = NOT(a)\n"},
		{"unary and", "INPUT(a)\nOUTPUT(x)\nx = AND(a)\n"},
		{"binary not", "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nx = NOT(a, b)\n"},
	}
	for _, tc := range cases {
		if _, err := ParseBenchString(tc.name, tc.text); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestLevelsAndDepth(t *testing.T) {
	c := mustC17(t)
	lv := c.Levels()
	byName := func(n string) int { return lv[c.NetByName(n)] }
	if byName("1") != 0 || byName("7") != 0 {
		t.Fatal("PI level must be 0")
	}
	if byName("10") != 1 || byName("11") != 1 {
		t.Fatal("first rank NANDs must be level 1")
	}
	if byName("16") != 2 || byName("22") != 3 || byName("23") != 3 {
		t.Fatalf("levels wrong: 16=%d 22=%d 23=%d", byName("16"), byName("22"), byName("23"))
	}
	if c.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", c.Depth())
	}
}

func TestMaxLevelsToPO(t *testing.T) {
	c := mustC17(t)
	d := c.MaxLevelsToPO()
	byName := func(n string) int { return d[c.NetByName(n)] }
	if byName("22") != 0 || byName("23") != 0 {
		t.Fatal("PO distance to itself must be 0")
	}
	if byName("16") != 1 || byName("10") != 1 || byName("19") != 1 {
		t.Fatal("penultimate rank must be 1")
	}
	if byName("11") != 2 || byName("3") != 3 || byName("2") != 2 {
		t.Fatalf("toPO wrong: 11=%d 3=%d 2=%d", byName("11"), byName("3"), byName("2"))
	}
}

func TestMinLevelsToPO(t *testing.T) {
	text := `
INPUT(a)
INPUT(b)
OUTPUT(s)
OUTPUT(d)
s = AND(a, b)
m = NOT(a)
n = NOT(m)
d = OR(n, b)
`
	c, err := ParseBenchString("t", text)
	if err != nil {
		t.Fatal(err)
	}
	d := c.MinLevelsToPO()
	// `a` reaches s in 1 level and d in 3; min must be 1.
	if d[c.NetByName("a")] != 1 {
		t.Fatalf("min to PO for a = %d, want 1", d[c.NetByName("a")])
	}
	if d[c.NetByName("m")] != 2 {
		t.Fatalf("min to PO for m = %d, want 2", d[c.NetByName("m")])
	}
}

func TestCones(t *testing.T) {
	c := mustC17(t)
	n := func(s string) int { return c.NetByName(s) }
	fo := c.FanoutCone(n("11"))
	for _, want := range []string{"16", "19", "22", "23"} {
		if !fo[n(want)] {
			t.Errorf("fan-out cone of 11 must contain %s", want)
		}
	}
	if fo[n("10")] || fo[n("11")] {
		t.Error("fan-out cone must not contain siblings or self")
	}
	fi := c.FaninCone(n("22"))
	for _, want := range []string{"10", "16", "1", "2", "3", "6", "11"} {
		if !fi[n(want)] {
			t.Errorf("fan-in cone of 22 must contain %s", want)
		}
	}
	if fi[n("19")] || fi[n("7")] || fi[n("23")] {
		t.Error("fan-in cone of 22 must exclude 19/7/23")
	}
}

func TestPOsFed(t *testing.T) {
	c := mustC17(t)
	n := func(s string) int { return c.NetByName(s) }
	if got := c.POsFed(n("11")); len(got) != 2 {
		t.Fatalf("11 feeds both POs, got %v", got)
	}
	if got := c.POsFed(n("10")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("10 feeds only PO 22, got %v", got)
	}
	if got := c.POsFed(n("22")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("a PO feeds itself, got %v", got)
	}
}

func TestStemsAndFanout(t *testing.T) {
	c := mustC17(t)
	n := func(s string) int { return c.NetByName(s) }
	stems := c.Stems()
	want := map[int]bool{n("11"): true, n("16"): true, n("3"): true}
	if len(stems) != len(want) {
		t.Fatalf("stems = %v", stems)
	}
	for _, s := range stems {
		if !want[s] {
			t.Fatalf("unexpected stem %s", c.NetName(s))
		}
	}
	if c.FanoutCount(n("11")) != 2 || c.FanoutCount(n("22")) != 0 {
		t.Fatal("fan-out counts wrong")
	}
	if !c.IsStem(n("3")) || c.IsStem(n("1")) {
		t.Fatal("IsStem wrong")
	}
}

func TestValidateRejects(t *testing.T) {
	c := New("bad")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x := c.AddGate("x", And, a, b)
	c.MarkOutput(x)
	c.MarkOutput(x)
	if err := c.Validate(); err == nil {
		t.Fatal("duplicate output must fail validation")
	}
	c2 := New("noin")
	if err := c2.Validate(); err == nil {
		t.Fatal("empty circuit must fail validation")
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	c := New("p")
	a := c.AddInput("a")
	mustPanic("dup name", func() { c.AddInput("a") })
	mustPanic("empty name", func() { c.AddInput("") })
	mustPanic("bad fanin", func() { c.AddGate("x", Not, 99) })
	mustPanic("input via AddGate", func() { c.AddGate("x", Input) })
	mustPanic("bad output", func() { c.MarkOutput(42) })
	mustPanic("eval width", func() { c.EvalBool([]bool{}) })
	_ = a
}

func TestCloneIndependence(t *testing.T) {
	c := mustC17(t)
	cl := c.Clone()
	cl.AddInput("extra")
	if c.NumNets() == cl.NumNets() {
		t.Fatal("clone shares storage")
	}
	if c.NetByName("extra") != -1 {
		t.Fatal("clone mutated original name map")
	}
}

func TestTypeCounts(t *testing.T) {
	c := mustC17(t)
	tc := c.TypeCounts()
	if tc[Nand] != 6 || len(tc) != 1 {
		t.Fatalf("type counts = %v", tc)
	}
}

// randomCircuit builds a random valid circuit for property tests.
func randomCircuit(rng *rand.Rand, nIn, nGates int) *Circuit {
	c := New("rand")
	for i := 0; i < nIn; i++ {
		c.AddInput(strings.Repeat("i", 1) + string(rune('a'+i)))
	}
	types := []GateType{And, Nand, Or, Nor, Xor, Xnor, Not, Buff}
	for i := 0; i < nGates; i++ {
		gt := types[rng.Intn(len(types))]
		nf := 1
		if gt != Not && gt != Buff {
			nf = 2 + rng.Intn(3)
		}
		fanin := make([]int, nf)
		for j := range fanin {
			fanin[j] = rng.Intn(c.NumNets())
		}
		c.AddGate("g"+itoa(i), gt, fanin...)
	}
	// Mark a few sinks as outputs.
	for i := 0; i < 3; i++ {
		c.Outputs = append(c.Outputs, c.NumNets()-1-i)
	}
	return c
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func sameFunction(t *testing.T, a, b *Circuit, trials int, rng *rand.Rand) {
	t.Helper()
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("interface mismatch: %s vs %s", a, b)
	}
	for i := 0; i < trials; i++ {
		in := make([]bool, len(a.Inputs))
		for j := range in {
			in[j] = rng.Intn(2) == 1
		}
		ra, rb := a.EvalBool(in), b.EvalBool(in)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("functions differ at output %d for input %v", j, in)
			}
		}
	}
}

func TestDecompose2PreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		c := randomCircuit(rng, 5, 20)
		d := c.Decompose2()
		for _, g := range d.Gates {
			if len(g.Fanin) > 2 {
				t.Fatalf("gate %s still has %d inputs", g.Name, len(g.Fanin))
			}
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		sameFunction(t, c, d, 64, rng)
	}
}

func TestDecompose2KeepsNames(t *testing.T) {
	c := New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	x := c.AddGate("x", Nand, a, b, d)
	c.MarkOutput(x)
	dc := c.Decompose2()
	if dc.NetByName("x") < 0 {
		t.Fatal("decomposed gate lost its original name")
	}
	if !dc.IsOutput(dc.NetByName("x")) {
		t.Fatal("output moved off the named net")
	}
}

func TestExpandXORPreservesFunctionAndRemovesXORs(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		c := randomCircuit(rng, 5, 20)
		e := c.ExpandXOR()
		for _, g := range e.Gates {
			if g.Type == Xor || g.Type == Xnor {
				t.Fatalf("gate %s is still %s", g.Name, g.Type)
			}
		}
		if err := e.Validate(); err != nil {
			t.Fatal(err)
		}
		sameFunction(t, c, e, 64, rng)
	}
}

func TestExpandXORGrowsXorRichCircuits(t *testing.T) {
	// A parity tree must grow by 3 gates per XOR (the paper's C499→C1355
	// growth mechanism).
	c := New("parity")
	var nets []int
	for i := 0; i < 8; i++ {
		nets = append(nets, c.AddInput("i"+itoa(i)))
	}
	acc := nets[0]
	for i := 1; i < 8; i++ {
		acc = c.AddGate("x"+itoa(i), Xor, acc, nets[i])
	}
	c.MarkOutput(acc)
	e := c.ExpandXOR()
	if e.NumGates() != 4*c.NumGates() {
		t.Fatalf("expanded gate count = %d, want %d", e.NumGates(), 4*c.NumGates())
	}
}

func TestInjectBridgeSemantics(t *testing.T) {
	c := mustC17(t)
	n := func(s string) int { return c.NetByName(s) }
	for _, wiredAnd := range []bool{true, false} {
		// Bridge nets 10 and 19: neither reaches the other.
		bc := c.InjectBridge(n("10"), n("19"), wiredAnd)
		if err := bc.Validate(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			in := make([]bool, 5)
			for b := 0; b < 5; b++ {
				in[b] = i>>b&1 == 1
			}
			// Reference: evaluate original nets, apply the wired function,
			// recompute downstream consumers by hand.
			v1, v3, v2, v6, v7 := in[0], in[2], in[1], in[3], in[4]
			g10 := !(v1 && v3)
			g11 := !(v3 && v6)
			g19 := !(g11 && v7)
			var b10, b19 bool
			if wiredAnd {
				b10, b19 = g10 && g19, g10 && g19
			} else {
				b10, b19 = g10 || g19, g10 || g19
			}
			g16 := !(v2 && g11)
			g22 := !(b10 && g16)
			g23 := !(g16 && b19)
			got := bc.EvalBool(in)
			if got[0] != g22 || got[1] != g23 {
				t.Fatalf("wiredAnd=%v input %05b: got %v, want [%v %v]", wiredAnd, i, got, g22, g23)
			}
		}
	}
}

func TestInjectBridgeOnPO(t *testing.T) {
	c := mustC17(t)
	n := func(s string) int { return c.NetByName(s) }
	// Bridge the two POs; both observations must see the wired value.
	bc := c.InjectBridge(n("22"), n("23"), true)
	for i := 0; i < 32; i++ {
		in := make([]bool, 5)
		for b := 0; b < 5; b++ {
			in[b] = i>>b&1 == 1
		}
		ref := c.EvalBool(in)
		wired := ref[0] && ref[1]
		got := bc.EvalBool(in)
		if got[0] != wired || got[1] != wired {
			t.Fatalf("PO bridge wrong at %05b", i)
		}
	}
}

func TestInjectBridgePanics(t *testing.T) {
	c := mustC17(t)
	n := func(s string) int { return c.NetByName(s) }
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("self bridge", func() { c.InjectBridge(n("10"), n("10"), true) })
	// 11 feeds 16: feedback bridge.
	mustPanic("feedback", func() { c.InjectBridge(n("11"), n("16"), true) })
	mustPanic("feedback reversed", func() { c.InjectBridge(n("16"), n("11"), true) })
}

func TestSortedNetNames(t *testing.T) {
	c := mustC17(t)
	names := c.SortedNetNames()
	if len(names) != c.NumNets() {
		t.Fatal("wrong name count")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("names not sorted")
		}
	}
}
