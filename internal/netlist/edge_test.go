package netlist

import (
	"errors"
	"strings"
	"testing"
)

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 16 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestWriteBenchPropagatesErrors(t *testing.T) {
	c := mustC17(t)
	if err := c.WriteBench(&failingWriter{}); err == nil {
		t.Fatal("write errors must propagate")
	}
}

func TestGateTypeStringUnknown(t *testing.T) {
	if s := GateType(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown type string %q", s)
	}
}

func TestEvalPanicsOnInputGate(t *testing.T) {
	for _, fn := range []func(){
		func() { Input.Eval([]bool{true}) },
		func() { Input.EvalWord([]uint64{1}) },
		func() { GateType(99).Eval([]bool{true}) },
		func() { GateType(99).EvalWord([]uint64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMaxLevelsFromPIEqualsLevels(t *testing.T) {
	c := mustC17(t)
	a, b := c.MaxLevelsFromPI(), c.Levels()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MaxLevelsFromPI must alias Levels")
		}
	}
}

func TestBenchStringStableAcrossCalls(t *testing.T) {
	c := mustC17(t)
	if c.BenchString() != c.BenchString() {
		t.Fatal("serialization must be deterministic")
	}
}

func TestStringSummary(t *testing.T) {
	c := mustC17(t)
	s := c.String()
	for _, want := range []string{"c17", "5 PIs", "2 POs", "6 gates", "depth 3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}

func TestOutputNames(t *testing.T) {
	c := mustC17(t)
	names := c.OutputNames()
	if len(names) != 2 || names[0] != "22" || names[1] != "23" {
		t.Fatalf("output names %v", names)
	}
}

func TestInvalidationOnMutation(t *testing.T) {
	c := mustC17(t)
	lv := c.Levels()
	if lv == nil {
		t.Fatal("levels nil")
	}
	// Adding a gate invalidates caches; a fresh query must include it.
	n := c.AddGate("extra", Not, c.NetByName("22"))
	lv2 := c.Levels()
	if len(lv2) != c.NumNets() || lv2[n] != 4 {
		t.Fatalf("cache not invalidated: %d entries, level %d", len(lv2), lv2[n])
	}
}

func TestDOTNetlist(t *testing.T) {
	c := mustC17(t)
	dot := c.DOT()
	for _, want := range []string{"digraph", "doublecircle", "plaintext", "NAND", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q", want)
		}
	}
}
