package netlist

import (
	"math/rand"
	"testing"
)

func TestSweepDropsDeadLogic(t *testing.T) {
	c := New("dead")
	a := c.AddInput("a")
	b := c.AddInput("b")
	live := c.AddGate("live", And, a, b)
	c.AddGate("dead1", Or, a, b)
	d2 := c.AddGate("dead2", Not, a)
	c.AddGate("dead3", And, d2, b)
	c.MarkOutput(live)
	s := c.Sweep()
	if s.NumGates() != 1 {
		t.Fatalf("sweep kept %d gates, want 1", s.NumGates())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sameFunction(t, c, s, 16, rng)
}

func TestSimplifyRules(t *testing.T) {
	c := New("simp")
	a := c.AddInput("a")
	b := c.AddInput("b")
	bu := c.AddGate("bu", Buff, a)      // -> a
	n1 := c.AddGate("n1", Not, bu)      // NOT(a)
	n2 := c.AddGate("n2", Not, n1)      // -> a
	x1 := c.AddGate("x1", And, n2, b)   // a AND b
	x2 := c.AddGate("x2", And, b, a)    // dup of x1 (commutative)
	s1 := c.AddGate("s1", And, x1, x1)  // -> x1
	s2 := c.AddGate("s2", Nand, x2, x2) // -> NOT(x1)
	z := c.AddGate("z", Or, s1, s2)     // x1 OR NOT(x1) == 1 (left alone)
	c.MarkOutput(z)
	c.MarkOutput(x2)
	s := c.Simplify()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected survivors: x1, x2 (a PO, protected from merging into x1),
	// NOT from s2, z. The buffer, double inverter and idempotent AND all
	// fold away.
	if s.NumGates() > 4 {
		t.Fatalf("simplify kept %d gates, want <= 4:\n%s", s.NumGates(), s.BenchString())
	}
	if !s.IsOutput(s.NetByName("x2")) {
		t.Fatal("PO net x2 must survive under its own name")
	}
	rng := rand.New(rand.NewSource(2))
	sameFunction(t, c, s, 16, rng)
}

func TestSimplifyPreservesRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		c := randomCircuit(rng, 6, 25)
		s := c.Simplify()
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.NumGates() > c.NumGates() {
			t.Fatal("simplify must never grow the circuit")
		}
		sameFunction(t, c, s, 64, rng)
	}
}

func TestCollapseXORInvertsExpandXOR(t *testing.T) {
	// Build a parity tree, expand it to NANDs, and collapse it back.
	c := New("parity")
	nets := make([]int, 6)
	for i := range nets {
		nets[i] = c.AddInput("i" + itoa(i))
	}
	acc := nets[0]
	for i := 1; i < 6; i++ {
		acc = c.AddGate("x"+itoa(i), Xor, acc, nets[i])
	}
	c.MarkOutput(acc)
	expanded := c.ExpandXOR()
	collapsed := expanded.CollapseXOR()
	if err := collapsed.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := collapsed.NumGates(); got != c.NumGates() {
		t.Fatalf("collapse recovered %d gates, want %d", got, c.NumGates())
	}
	if collapsed.TypeCounts()[Xor] != 5 {
		t.Fatalf("expected 5 XORs back, got %v", collapsed.TypeCounts())
	}
	rng := rand.New(rand.NewSource(3))
	sameFunction(t, c, collapsed, 64, rng)
}

func TestCollapseXORLeavesSharedInternals(t *testing.T) {
	// If an internal NAND of the pattern is observed (PO) or shared, the
	// pattern must NOT collapse.
	c := New("shared")
	a := c.AddInput("a")
	b := c.AddInput("b")
	t1 := c.AddGate("t1", Nand, a, b)
	t2 := c.AddGate("t2", Nand, a, t1)
	t3 := c.AddGate("t3", Nand, b, t1)
	z := c.AddGate("z", Nand, t2, t3)
	c.MarkOutput(z)
	c.MarkOutput(t1) // t1 is observed: collapsing would change the interface
	out := c.CollapseXOR()
	if out.TypeCounts()[Xor] != 0 {
		t.Fatal("pattern with observed internal net must not collapse")
	}
	rng := rand.New(rand.NewSource(4))
	sameFunction(t, c, out, 8, rng)
}

func TestCollapseXORPreservesRandomExpandedCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		c := randomCircuit(rng, 5, 20)
		e := c.ExpandXOR()
		col := e.CollapseXOR()
		if err := col.Validate(); err != nil {
			t.Fatal(err)
		}
		if col.NumGates() > e.NumGates() {
			t.Fatal("collapse must never grow the circuit")
		}
		sameFunction(t, e, col, 64, rng)
	}
}

func TestOptimizeRecoversC499FromC1355Style(t *testing.T) {
	// The minimal-design experiment's mechanism: XOR expansion followed by
	// Optimize lands back near the original size.
	c := New("tree")
	nets := make([]int, 8)
	for i := range nets {
		nets[i] = c.AddInput("i" + itoa(i))
	}
	l1 := make([]int, 4)
	for i := range l1 {
		l1[i] = c.AddGate("a"+itoa(i), Xor, nets[2*i], nets[2*i+1])
	}
	l2a := c.AddGate("b0", Xor, l1[0], l1[1])
	l2b := c.AddGate("b1", Xor, l1[2], l1[3])
	root := c.AddGate("r", And, l2a, l2b)
	c.MarkOutput(root)
	blown := c.ExpandXOR()
	opt := blown.Optimize()
	if opt.NumGates() != c.NumGates() {
		t.Fatalf("optimize recovered %d gates from %d, want %d",
			opt.NumGates(), blown.NumGates(), c.NumGates())
	}
	rng := rand.New(rand.NewSource(5))
	sameFunction(t, c, opt, 128, rng)
}

func TestOptimizeIdempotentOnOptimal(t *testing.T) {
	c := New("opt")
	a := c.AddInput("a")
	b := c.AddInput("b")
	z := c.AddGate("z", Xor, a, b)
	c.MarkOutput(z)
	o := c.Optimize()
	if o.NumGates() != 1 {
		t.Fatalf("already optimal circuit changed: %d gates", o.NumGates())
	}
}
