package netlist

import (
	"strings"
	"testing"
)

// FuzzParseBench hardens the netlist parser: arbitrary text must either
// parse into a circuit that validates and round-trips, or produce an
// error — never a panic or an invalid circuit.
func FuzzParseBench(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n")
	f.Add("# comment\nINPUT(a)\nOUTPUT(a)\n")
	f.Add("INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = NOT(x)\n")
	f.Add("z = XOR(p, q)\nINPUT(p)\nINPUT(q)\nOUTPUT(z)\n")
	f.Add("INPUT(a)\nOUTPUT(x)\nx = BUF(a)\n")
	f.Add(strings.Repeat("INPUT(v)\n", 3))
	f.Fuzz(func(t *testing.T, text string) {
		c, err := ParseBenchString("fuzz", text)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid circuit: %v\ninput:\n%s", verr, text)
		}
		// Round trip must re-parse to an equivalent-shape circuit.
		c2, err := ParseBenchString("fuzz2", c.BenchString())
		if err != nil {
			t.Fatalf("round trip failed to parse: %v\noriginal:\n%s", err, text)
		}
		if c2.NumNets() != c.NumNets() || len(c2.Inputs) != len(c.Inputs) || len(c2.Outputs) != len(c.Outputs) {
			t.Fatalf("round trip changed shape: %v vs %v", c, c2)
		}
	})
}

// FuzzTransformsPreserveFunction pushes random byte-derived circuits
// through the structural transforms and demands functional equivalence.
func FuzzTransformsPreserveFunction(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0x10, 0x20, 0x30})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		// Deterministically derive a circuit from the bytes.
		c := New("fz")
		nIn := 2 + int(data[0])%4
		for i := 0; i < nIn; i++ {
			c.AddInput("i" + string(rune('a'+i)))
		}
		types := []GateType{And, Nand, Or, Nor, Xor, Xnor, Not, Buff}
		for i, b := range data[1:] {
			if c.NumNets() > 40 {
				break
			}
			gt := types[int(b)%len(types)]
			nf := 1
			if gt != Not && gt != Buff {
				nf = 2
			}
			fanin := make([]int, nf)
			for j := range fanin {
				fanin[j] = (int(b)*7 + i*13 + j*29) % c.NumNets()
			}
			c.AddGate("g"+itoa(i), gt, fanin...)
		}
		c.MarkOutput(c.NumNets() - 1)
		if err := c.Validate(); err != nil {
			t.Fatalf("generated circuit invalid: %v", err)
		}
		for _, tr := range []*Circuit{c.Decompose2(), c.ExpandXOR(), c.Simplify(), c.Optimize()} {
			if err := tr.Validate(); err != nil {
				t.Fatalf("transform produced invalid circuit: %v", err)
			}
			// Spot-check equivalence on a few assignments derived from data.
			for trial := 0; trial < 8; trial++ {
				in := make([]bool, nIn)
				for j := range in {
					in[j] = data[(trial+j)%len(data)]>>(uint(j)%8)&1 == 1
				}
				a, b := c.EvalBool(in), tr.EvalBool(in)
				for k := range a {
					if a[k] != b[k] {
						t.Fatalf("transform changed function at %v", in)
					}
				}
			}
		}
	})
}
