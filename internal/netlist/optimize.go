package netlist

import (
	"fmt"
	"sort"
)

// Sweep returns a copy of the circuit without gates that feed no primary
// output (dead logic). Primary inputs are always kept so the interface is
// preserved.
func (c *Circuit) Sweep() *Circuit {
	live := make([]bool, len(c.Gates))
	var mark func(int)
	mark = func(net int) {
		if live[net] {
			return
		}
		live[net] = true
		for _, f := range c.Gates[net].Fanin {
			mark(f)
		}
	}
	for _, o := range c.Outputs {
		mark(o)
	}
	nc := New(c.Name)
	remap := make([]int, len(c.Gates))
	for i := range remap {
		remap[i] = -1
	}
	for id, g := range c.Gates {
		switch {
		case g.Type == Input:
			remap[id] = nc.AddInput(g.Name)
		case live[id]:
			remap[id] = nc.AddGate(g.Name, g.Type, remapAll(remap, g.Fanin)...)
		}
	}
	nc.Outputs = remapAll(remap, c.Outputs)
	return nc
}

// simplifyKey identifies structurally equal gates; fan-ins of commutative
// gates are sorted.
func simplifyKey(t GateType, fanin []int) string {
	f := append([]int(nil), fanin...)
	switch t {
	case And, Nand, Or, Nor, Xor, Xnor:
		sort.Ints(f)
	}
	return fmt.Sprintf("%d|%v", int(t), f)
}

// Simplify returns a functionally identical circuit after structural
// hashing (identical gates merged) and safe local rewrites applied to a
// fixpoint:
//
//	BUFF(x)        -> x
//	NOT(NOT(x))    -> x
//	AND/OR(x, x)   -> x
//	NAND/NOR(x, x) -> NOT(x)
//
// Rewrites never introduce constants (the netlist format has no constant
// sources), so XOR(x, x) and friends are left in place. Original net
// names are preserved where the driving gate survives; a net whose gate
// was folded away aliases its replacement.
func (c *Circuit) Simplify() *Circuit {
	nc := New(c.Name)
	remap := make([]int, len(c.Gates))
	byKey := map[string]int{}
	// driverNot[n] is the net x when nc's net n computes NOT(x).
	driverNot := map[int]int{}
	isPO := make([]bool, len(c.Gates))
	for _, o := range c.Outputs {
		isPO[o] = true
	}
	for id, g := range c.Gates {
		if g.Type == Input {
			remap[id] = nc.AddInput(g.Name)
			continue
		}
		fanin := remapAll(remap, g.Fanin)
		// A gate observed at a primary output is never folded into another
		// net: merging two POs (or aliasing a PO to an internal net) would
		// change the circuit interface. It may still serve as the
		// representative other gates merge into.
		if isPO[id] {
			n := nc.AddGate(g.Name, g.Type, fanin...)
			key := simplifyKey(g.Type, fanin)
			if _, ok := byKey[key]; !ok {
				byKey[key] = n
			}
			if g.Type == Not {
				driverNot[n] = fanin[0]
			}
			remap[id] = n
			continue
		}
		// Local rewrites.
		switch {
		case g.Type == Buff:
			remap[id] = fanin[0]
			continue
		case g.Type == Not:
			if x, ok := driverNot[fanin[0]]; ok {
				remap[id] = x // double inversion
				continue
			}
		case len(fanin) == 2 && fanin[0] == fanin[1]:
			switch g.Type {
			case And, Or:
				remap[id] = fanin[0]
				continue
			case Nand, Nor:
				// NOT(x), hash-consed like any other gate.
				key := simplifyKey(Not, fanin[:1])
				if prev, ok := byKey[key]; ok {
					remap[id] = prev
					continue
				}
				n := nc.AddGate(g.Name, Not, fanin[0])
				byKey[key] = n
				driverNot[n] = fanin[0]
				remap[id] = n
				continue
			}
		}
		key := simplifyKey(g.Type, fanin)
		if prev, ok := byKey[key]; ok {
			remap[id] = prev
			continue
		}
		n := nc.AddGate(g.Name, g.Type, fanin...)
		byKey[key] = n
		if g.Type == Not {
			driverNot[n] = fanin[0]
		}
		remap[id] = n
	}
	nc.Outputs = remapAll(remap, c.Outputs)
	return nc.Sweep()
}

// CollapseXOR returns a copy of the circuit in which every four-NAND XOR
// pattern
//
//	t1 = NAND(a, b); t2 = NAND(a, t1); t3 = NAND(b, t1); z = NAND(t2, t3)
//
// is replaced by z = XOR(a, b), provided t1, t2 and t3 drive nothing else
// and are not primary outputs. This is the inverse of ExpandXOR and the
// redesign step of the minimal-design experiment: re-minimizing c1355s
// recovers c499s's structure.
func (c *Circuit) CollapseXOR() *Circuit {
	fo := c.Fanout()
	isOut := make([]bool, len(c.Gates))
	for _, o := range c.Outputs {
		isOut[o] = true
	}
	nand2 := func(id int) bool {
		g := c.Gates[id]
		return g.Type == Nand && len(g.Fanin) == 2
	}
	// For each candidate root z, record the matched (a, b) and the
	// internal nets to drop.
	type match struct{ a, b, t1, t2, t3 int }
	matches := map[int]match{}
	claimed := map[int]bool{} // internal nets already used by a match
	for z := range c.Gates {
		if !nand2(z) {
			continue
		}
		t2, t3 := c.Gates[z].Fanin[0], c.Gates[z].Fanin[1]
		if t2 == t3 || !nand2(t2) || !nand2(t3) {
			continue
		}
		if len(fo[t2]) != 1 || len(fo[t3]) != 1 || isOut[t2] || isOut[t3] {
			continue
		}
		// t2 = NAND(x, t1), t3 = NAND(y, t1) sharing t1 = NAND(x, y).
		find := func(p, q int) (other, shared int, ok bool) {
			for _, cand := range []struct{ o, s int }{
				{c.Gates[p].Fanin[0], c.Gates[p].Fanin[1]},
				{c.Gates[p].Fanin[1], c.Gates[p].Fanin[0]},
			} {
				for _, f := range c.Gates[q].Fanin {
					if f == cand.s {
						return cand.o, cand.s, true
					}
				}
			}
			return 0, 0, false
		}
		a, t1, ok := find(t2, t3)
		if !ok || !nand2(t1) {
			continue
		}
		var b int
		if c.Gates[t3].Fanin[0] == t1 {
			b = c.Gates[t3].Fanin[1]
		} else if c.Gates[t3].Fanin[1] == t1 {
			b = c.Gates[t3].Fanin[0]
		} else {
			continue
		}
		// t1 must be NAND(a, b) and feed exactly t2 and t3.
		f1, f2 := c.Gates[t1].Fanin[0], c.Gates[t1].Fanin[1]
		if !(f1 == a && f2 == b || f1 == b && f2 == a) {
			continue
		}
		if len(fo[t1]) != 2 || isOut[t1] {
			continue
		}
		if claimed[t1] || claimed[t2] || claimed[t3] {
			continue
		}
		claimed[t1], claimed[t2], claimed[t3] = true, true, true
		matches[z] = match{a: a, b: b, t1: t1, t2: t2, t3: t3}
	}
	nc := New(c.Name)
	remap := make([]int, len(c.Gates))
	for i := range remap {
		remap[i] = -1
	}
	drop := map[int]bool{}
	for _, m := range matches {
		drop[m.t1], drop[m.t2], drop[m.t3] = true, true, true
	}
	for id, g := range c.Gates {
		switch {
		case g.Type == Input:
			remap[id] = nc.AddInput(g.Name)
		case drop[id]:
			// skipped; only reachable from matched roots
		default:
			if m, ok := matches[id]; ok {
				remap[id] = nc.AddGate(g.Name, Xor, remap[m.a], remap[m.b])
			} else {
				remap[id] = nc.AddGate(g.Name, g.Type, remapAll(remap, g.Fanin)...)
			}
		}
	}
	nc.Outputs = remapAll(remap, c.Outputs)
	return nc
}

// Optimize applies Simplify and CollapseXOR repeatedly until the gate
// count stops improving — the "redesign for testability" pass of the
// minimal-design experiment.
func (c *Circuit) Optimize() *Circuit {
	cur := c
	for {
		next := cur.Simplify().CollapseXOR().Simplify()
		if next.NumGates() >= cur.NumGates() {
			return cur
		}
		cur = next
	}
}
