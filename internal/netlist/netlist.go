// Package netlist provides a gate-level combinational circuit
// representation in the style of the ISCAS-85 benchmark suite
// (Brglez & Fujiwara, 1985): primary inputs, primitive gates
// (AND/NAND/OR/NOR/XOR/XNOR/NOT/BUFF), named nets, `.bench` file I/O,
// levelization, fan-out analysis and the structural transforms the paper
// relies on (n-input to 2-input decomposition, XOR to 4-NAND expansion).
//
// Every gate drives exactly one net and the gate index doubles as the net
// index. Primary inputs are gates of type Input with no fan-in.
package netlist

import (
	"fmt"
	"sort"
)

// GateType enumerates the primitive gate kinds of the benchmark format.
type GateType int

// Gate kinds. Input is a primary-input pseudo gate.
const (
	Input GateType = iota
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	Not
	Buff
)

var gateNames = map[GateType]string{
	Input: "INPUT", And: "AND", Nand: "NAND", Or: "OR", Nor: "NOR",
	Xor: "XOR", Xnor: "XNOR", Not: "NOT", Buff: "BUFF",
}

// String returns the benchmark-format keyword for the gate type.
func (t GateType) String() string {
	if s, ok := gateNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// Inverting reports whether the gate complements its underlying
// AND/OR/XOR/identity body. Difference functions are invariant under output
// inversion, which is why Table 1 lists AND/NAND, OR/NOR and XOR/XNOR
// together.
func (t GateType) Inverting() bool {
	switch t {
	case Nand, Nor, Xnor, Not:
		return true
	}
	return false
}

// Eval computes the gate function over the fan-in values.
func (t GateType) Eval(in []bool) bool {
	switch t {
	case Input:
		panic("netlist: cannot evaluate an INPUT gate")
	case And, Nand:
		v := true
		for _, b := range in {
			v = v && b
		}
		return v != (t == Nand)
	case Or, Nor:
		v := false
		for _, b := range in {
			v = v || b
		}
		return v != (t == Nor)
	case Xor, Xnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		return v != (t == Xnor)
	case Not:
		return !in[0]
	case Buff:
		return in[0]
	}
	panic(fmt.Sprintf("netlist: unknown gate type %d", int(t)))
}

// EvalWord computes the gate function over 64 patterns at once
// (bit-parallel), the core primitive of the parallel-pattern simulator.
func (t GateType) EvalWord(in []uint64) uint64 {
	switch t {
	case Input:
		panic("netlist: cannot evaluate an INPUT gate")
	case And, Nand:
		v := ^uint64(0)
		for _, w := range in {
			v &= w
		}
		if t == Nand {
			v = ^v
		}
		return v
	case Or, Nor:
		v := uint64(0)
		for _, w := range in {
			v |= w
		}
		if t == Nor {
			v = ^v
		}
		return v
	case Xor, Xnor:
		v := uint64(0)
		for _, w := range in {
			v ^= w
		}
		if t == Xnor {
			v = ^v
		}
		return v
	case Not:
		return ^in[0]
	case Buff:
		return in[0]
	}
	panic(fmt.Sprintf("netlist: unknown gate type %d", int(t)))
}

// Gate is one primitive gate; its output net shares its index.
type Gate struct {
	Name  string
	Type  GateType
	Fanin []int // net indices feeding the gate, pin order significant
}

// Circuit is a combinational gate-level network. Build one with New and the
// Add* methods, or parse a `.bench` file with ParseBench. After
// construction call Validate once; analysis accessors assume a valid,
// topologically ordered circuit (AddGate enforces topological order).
type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []int // gate indices of primary inputs, in declaration order
	Outputs []int // net indices of primary outputs, in declaration order

	byName map[string]int

	// Lazily computed caches, invalidated on mutation.
	fanout [][]int
	levels []int
	toPO   []int
	fromPI []int
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: map[string]int{}}
}

func (c *Circuit) invalidate() {
	c.fanout, c.levels, c.toPO, c.fromPI = nil, nil, nil, nil
}

// AddInput declares a primary input and returns its net index.
func (c *Circuit) AddInput(name string) int {
	id := c.addGate(Gate{Name: name, Type: Input})
	c.Inputs = append(c.Inputs, id)
	return id
}

// AddGate adds a gate driving a new net and returns the net index. Fan-in
// nets must already exist (construction is topological).
func (c *Circuit) AddGate(name string, t GateType, fanin ...int) int {
	if t == Input {
		panic("netlist: use AddInput for primary inputs")
	}
	for _, f := range fanin {
		if f < 0 || f >= len(c.Gates) {
			panic(fmt.Sprintf("netlist: gate %q fan-in net %d does not exist", name, f))
		}
	}
	return c.addGate(Gate{Name: name, Type: t, Fanin: append([]int(nil), fanin...)})
}

func (c *Circuit) addGate(g Gate) int {
	if g.Name == "" {
		panic("netlist: empty gate name")
	}
	if _, dup := c.byName[g.Name]; dup {
		panic(fmt.Sprintf("netlist: duplicate net name %q", g.Name))
	}
	id := len(c.Gates)
	c.Gates = append(c.Gates, g)
	c.byName[g.Name] = id
	c.invalidate()
	return id
}

// MarkOutput declares the given net a primary output.
func (c *Circuit) MarkOutput(net int) {
	if net < 0 || net >= len(c.Gates) {
		panic(fmt.Sprintf("netlist: output net %d does not exist", net))
	}
	c.Outputs = append(c.Outputs, net)
}

// NetByName returns the net index for a name, or -1.
func (c *Circuit) NetByName(name string) int {
	if id, ok := c.byName[name]; ok {
		return id
	}
	return -1
}

// NetName returns the name of a net.
func (c *Circuit) NetName(net int) string { return c.Gates[net].Name }

// NumNets returns the total number of nets (gates + inputs).
func (c *Circuit) NumNets() int { return len(c.Gates) }

// NumGates returns the number of logic gates (excluding primary inputs).
func (c *Circuit) NumGates() int { return len(c.Gates) - len(c.Inputs) }

// IsInput reports whether the net is a primary input.
func (c *Circuit) IsInput(net int) bool { return c.Gates[net].Type == Input }

// IsOutput reports whether the net is a primary output.
func (c *Circuit) IsOutput(net int) bool {
	for _, o := range c.Outputs {
		if o == net {
			return true
		}
	}
	return false
}

// InputNames returns the primary input names in declaration order.
func (c *Circuit) InputNames() []string {
	out := make([]string, len(c.Inputs))
	for i, id := range c.Inputs {
		out[i] = c.Gates[id].Name
	}
	return out
}

// OutputNames returns the primary output names in declaration order.
func (c *Circuit) OutputNames() []string {
	out := make([]string, len(c.Outputs))
	for i, id := range c.Outputs {
		out[i] = c.Gates[id].Name
	}
	return out
}

// TopologyError reports a violation of the topological-order invariant:
// every gate's fan-ins must have strictly smaller net indices than the
// gate itself, so that iterating c.Gates in index order visits producers
// before consumers. Difference propagation, levelization and the
// cone-restricted worklist all rely on this invariant; Validate returns a
// *TopologyError (match with errors.As) when it is broken.
type TopologyError struct {
	Circuit string // circuit name
	Gate    string // consumer gate name
	Fanin   string // offending fan-in net name
	Net     int    // consumer net index
	FaninID int    // offending fan-in net index (>= Net)
}

func (e *TopologyError) Error() string {
	return fmt.Sprintf("circuit %s: net %s: fan-in %s (net %d) not topologically earlier than net %d",
		e.Circuit, e.Gate, e.Fanin, e.FaninID, e.Net)
}

// Validate checks structural well-formedness: fan-in arities, topological
// construction order (a violation yields a *TopologyError), at least one
// input and output, no dangling outputs. ParseBench validates parsed
// circuits before returning them, and the structural transforms
// (Decompose2, ExpandXOR, InjectBridge) build through AddGate, which
// enforces the same producer-before-consumer order at construction time —
// so a circuit obtained from any of those paths satisfies the invariant.
func (c *Circuit) Validate() error {
	if len(c.Inputs) == 0 {
		return fmt.Errorf("circuit %s: no primary inputs", c.Name)
	}
	if len(c.Outputs) == 0 {
		return fmt.Errorf("circuit %s: no primary outputs", c.Name)
	}
	for id, g := range c.Gates {
		switch g.Type {
		case Input:
			if len(g.Fanin) != 0 {
				return fmt.Errorf("net %s: INPUT with fan-in", g.Name)
			}
		case Not, Buff:
			if len(g.Fanin) != 1 {
				return fmt.Errorf("net %s: %s needs exactly 1 input, has %d", g.Name, g.Type, len(g.Fanin))
			}
		default:
			if len(g.Fanin) < 2 {
				return fmt.Errorf("net %s: %s needs >= 2 inputs, has %d", g.Name, g.Type, len(g.Fanin))
			}
		}
		for _, f := range g.Fanin {
			if f >= id {
				return &TopologyError{
					Circuit: c.Name, Gate: g.Name, Fanin: c.Gates[f].Name,
					Net: id, FaninID: f,
				}
			}
		}
	}
	seen := map[int]bool{}
	for _, o := range c.Outputs {
		if seen[o] {
			return fmt.Errorf("net %s: declared output twice", c.Gates[o].Name)
		}
		seen[o] = true
	}
	return nil
}

// Fanout returns, for each net, the list of gate indices it feeds. A gate
// consuming the same net on several pins appears once per pin.
func (c *Circuit) Fanout() [][]int {
	if c.fanout != nil {
		return c.fanout
	}
	fo := make([][]int, len(c.Gates))
	for id, g := range c.Gates {
		for _, f := range g.Fanin {
			fo[f] = append(fo[f], id)
		}
	}
	c.fanout = fo
	return fo
}

// FanoutCount returns the number of gate pins a net feeds.
func (c *Circuit) FanoutCount(net int) int { return len(c.Fanout()[net]) }

// IsStem reports whether the net feeds more than one gate pin (a fan-out
// stem in the checkpoint-fault sense).
func (c *Circuit) IsStem(net int) bool { return c.FanoutCount(net) > 1 }

// Levels returns each net's level: 0 for primary inputs, otherwise
// 1 + max(level of fan-in). This is the paper's X coordinate.
func (c *Circuit) Levels() []int {
	if c.levels != nil {
		return c.levels
	}
	lv := make([]int, len(c.Gates))
	for id, g := range c.Gates {
		max := -1
		for _, f := range g.Fanin {
			if lv[f] > max {
				max = lv[f]
			}
		}
		lv[id] = max + 1
	}
	c.levels = lv
	return lv
}

// Depth returns the maximum level over all nets.
func (c *Circuit) Depth() int {
	d := 0
	for _, l := range c.Levels() {
		if l > d {
			d = l
		}
	}
	return d
}

// MaxLevelsToPO returns, for each net, the maximum number of gate levels on
// any path from the net to a primary output; a net that is itself a PO and
// feeds nothing deeper scores 0. Nets that reach no PO score -1. This is
// the X axis of the paper's Figures 3 and 8.
func (c *Circuit) MaxLevelsToPO() []int {
	if c.toPO != nil {
		return c.toPO
	}
	d := make([]int, len(c.Gates))
	for i := range d {
		d[i] = -1
	}
	for _, o := range c.Outputs {
		d[o] = 0
	}
	// Reverse topological order: highest index first (construction order is
	// topological).
	for id := len(c.Gates) - 1; id >= 0; id-- {
		if d[id] < 0 {
			continue
		}
		for _, f := range c.Gates[id].Fanin {
			if d[id]+1 > d[f] {
				d[f] = d[id] + 1
			}
		}
	}
	c.toPO = d
	return d
}

// MinLevelsToPO returns, for each net, the minimum number of gate levels to
// any primary output (-1 if none is reachable). Used by the "justification
// to the closest PO" observation in §4.1.
func (c *Circuit) MinLevelsToPO() []int {
	d := make([]int, len(c.Gates))
	for i := range d {
		d[i] = -1
	}
	for _, o := range c.Outputs {
		d[o] = 0
	}
	for id := len(c.Gates) - 1; id >= 0; id-- {
		if d[id] < 0 {
			continue
		}
		for _, f := range c.Gates[id].Fanin {
			if d[f] < 0 || d[id]+1 < d[f] {
				d[f] = d[id] + 1
			}
		}
	}
	return d
}

// MaxLevelsFromPI returns each net's level (maximum distance from the
// primary inputs), i.e. Levels. Present for symmetry with MaxLevelsToPO in
// the controllability-vs-observability study.
func (c *Circuit) MaxLevelsFromPI() []int { return c.Levels() }

// FanoutCone returns a bitmap over nets reachable from `net` by following
// fan-out edges (excluding the net itself unless it appears on a cycle,
// which Validate forbids).
func (c *Circuit) FanoutCone(net int) []bool {
	reach := make([]bool, len(c.Gates))
	fo := c.Fanout()
	stack := []int{net}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, g := range fo[n] {
			if !reach[g] {
				reach[g] = true
				stack = append(stack, g)
			}
		}
	}
	return reach
}

// FaninCone returns a bitmap over nets in the transitive fan-in of `net`
// (excluding the net itself).
func (c *Circuit) FaninCone(net int) []bool {
	reach := make([]bool, len(c.Gates))
	stack := append([]int(nil), c.Gates[net].Fanin...)
	for _, f := range c.Gates[net].Fanin {
		reach[f] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Gates[n].Fanin {
			if !reach[f] {
				reach[f] = true
				stack = append(stack, f)
			}
		}
	}
	return reach
}

// POsFed returns the list of primary-output positions (indices into
// c.Outputs) whose cones contain the net. A net that is itself a PO feeds
// that PO. This supports the paper's "POs fed vs POs observable" study.
func (c *Circuit) POsFed(net int) []int {
	cone := c.FanoutCone(net)
	var out []int
	for i, o := range c.Outputs {
		if o == net || cone[o] {
			out = append(out, i)
		}
	}
	return out
}

// EvalBool evaluates the circuit on one input assignment (in primary-input
// declaration order) and returns the primary-output values (in output
// declaration order). This is the reference semantics; the bit-parallel
// simulator in internal/simulate must agree with it.
func (c *Circuit) EvalBool(inputs []bool) []bool {
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("netlist: %d input values for %d inputs", len(inputs), len(c.Inputs)))
	}
	vals := make([]bool, len(c.Gates))
	for i, in := range c.Inputs {
		vals[in] = inputs[i]
	}
	scratch := make([]bool, 0, 8)
	for id, g := range c.Gates {
		if g.Type == Input {
			continue
		}
		scratch = scratch[:0]
		for _, f := range g.Fanin {
			scratch = append(scratch, vals[f])
		}
		vals[id] = g.Type.Eval(scratch)
	}
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = vals[o]
	}
	return out
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	nc := New(c.Name)
	nc.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		nc.Gates[i] = Gate{Name: g.Name, Type: g.Type, Fanin: append([]int(nil), g.Fanin...)}
		nc.byName[g.Name] = i
	}
	nc.Inputs = append([]int(nil), c.Inputs...)
	nc.Outputs = append([]int(nil), c.Outputs...)
	return nc
}

// TypeCounts returns the number of gates of each type (excluding inputs).
func (c *Circuit) TypeCounts() map[GateType]int {
	out := map[GateType]int{}
	for _, g := range c.Gates {
		if g.Type != Input {
			out[g.Type]++
		}
	}
	return out
}

// Stems returns all fan-out stem nets (fan-out > 1), sorted.
func (c *Circuit) Stems() []int {
	var out []int
	for net := range c.Gates {
		if c.IsStem(net) {
			out = append(out, net)
		}
	}
	sort.Ints(out)
	return out
}

// String summarizes the circuit.
func (c *Circuit) String() string {
	return fmt.Sprintf("%s: %d PIs, %d POs, %d gates, depth %d",
		c.Name, len(c.Inputs), len(c.Outputs), c.NumGates(), c.Depth())
}
