package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a circuit in the ISCAS-85 `.bench` netlist format:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G22)
//	G10 = NAND(G1, G3)
//
// Gate lines may appear in any order; the circuit is topologically sorted
// during construction. The supported gate keywords are AND, NAND, OR, NOR,
// XOR, XNOR, NOT and BUFF (BUF accepted as an alias).
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	type rawGate struct {
		name  string
		typ   GateType
		fanin []string
		line  int
	}
	var (
		inputs  []string
		outputs []string
		gates   []rawGate
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
			}
			inputs = append(inputs, arg)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("%s:%d: unrecognized line %q", name, lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close := strings.LastIndex(rhs, ")")
			if lhs == "" || open < 0 || close < open {
				return nil, fmt.Errorf("%s:%d: malformed gate line %q", name, lineNo, line)
			}
			kw := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			typ, ok := map[string]GateType{
				"AND": And, "NAND": Nand, "OR": Or, "NOR": Nor,
				"XOR": Xor, "XNOR": Xnor, "NOT": Not, "BUFF": Buff, "BUF": Buff,
			}[kw]
			if !ok {
				return nil, fmt.Errorf("%s:%d: unknown gate type %q", name, lineNo, kw)
			}
			var fanin []string
			for _, tok := range strings.Split(rhs[open+1:close], ",") {
				tok = strings.TrimSpace(tok)
				if tok == "" {
					return nil, fmt.Errorf("%s:%d: empty fan-in name", name, lineNo)
				}
				fanin = append(fanin, tok)
			}
			gates = append(gates, rawGate{name: lhs, typ: typ, fanin: fanin, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}

	c := New(name)
	defined := map[string]bool{}
	for _, in := range inputs {
		if defined[in] {
			return nil, fmt.Errorf("%s: input %q defined twice", name, in)
		}
		defined[in] = true
		c.AddInput(in)
	}
	byName := map[string]*rawGate{}
	for i := range gates {
		g := &gates[i]
		if defined[g.name] || byName[g.name] != nil {
			return nil, fmt.Errorf("%s:%d: net %q defined twice", name, g.line, g.name)
		}
		byName[g.name] = g
	}
	// Topological emission with cycle detection.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var emit func(string) error
	emit = func(n string) error {
		if defined[n] {
			return nil
		}
		switch color[n] {
		case gray:
			return fmt.Errorf("%s: combinational cycle through net %q", name, n)
		case black:
			return nil
		}
		g := byName[n]
		if g == nil {
			return fmt.Errorf("%s: net %q used but never defined", name, n)
		}
		color[n] = gray
		for _, f := range g.fanin {
			if err := emit(f); err != nil {
				return err
			}
		}
		color[n] = black
		fanin := make([]int, len(g.fanin))
		for i, f := range g.fanin {
			fanin[i] = c.NetByName(f)
		}
		c.AddGate(g.name, g.typ, fanin...)
		defined[n] = true
		return nil
	}
	for i := range gates {
		if err := emit(gates[i].name); err != nil {
			return nil, err
		}
	}
	for _, o := range outputs {
		net := c.NetByName(o)
		if net < 0 {
			return nil, fmt.Errorf("%s: output %q never defined", name, o)
		}
		c.MarkOutput(net)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseBenchString parses a `.bench` netlist held in a string.
func ParseBenchString(name, text string) (*Circuit, error) {
	return ParseBench(name, strings.NewReader(text))
}

func parenArg(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	return arg, nil
}

// WriteBench serializes the circuit in `.bench` format. The output is
// deterministic and round-trips through ParseBench.
func (c *Circuit) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.String())
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[in].Name)
	}
	for _, o := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[o].Name)
	}
	for _, g := range c.Gates {
		if g.Type == Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// BenchString returns the `.bench` serialization as a string.
func (c *Circuit) BenchString() string {
	var sb strings.Builder
	if err := c.WriteBench(&sb); err != nil {
		panic(err) // strings.Builder never errors
	}
	return sb.String()
}

// SortedNetNames returns all net names, sorted, mainly for deterministic
// diagnostics.
func (c *Circuit) SortedNetNames() []string {
	out := make([]string, len(c.Gates))
	for i, g := range c.Gates {
		out[i] = g.Name
	}
	sort.Strings(out)
	return out
}
