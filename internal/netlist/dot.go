package netlist

import (
	"fmt"
	"strings"
)

// DOT renders the circuit as a Graphviz digraph: inputs as plaintext,
// gates labeled with their type, outputs double-circled. Useful for
// inspecting the generated benchmark circuits and transform results.
func (c *Circuit) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", c.Name)
	sb.WriteString("  rankdir=LR;\n")
	isOut := make([]bool, len(c.Gates))
	for _, o := range c.Outputs {
		isOut[o] = true
	}
	for id, g := range c.Gates {
		switch {
		case g.Type == Input:
			fmt.Fprintf(&sb, "  n%d [label=%q, shape=plaintext];\n", id, g.Name)
		case isOut[id]:
			fmt.Fprintf(&sb, "  n%d [label=\"%s\\n%s\", shape=doublecircle];\n", id, g.Name, g.Type)
		default:
			fmt.Fprintf(&sb, "  n%d [label=\"%s\\n%s\", shape=circle];\n", id, g.Name, g.Type)
		}
		for _, f := range g.Fanin {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", f, id)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
