package netlist

import (
	"errors"
	"strings"
	"testing"
)

// TestValidateTopologyError pins the typed topological-order violation:
// a gate whose fan-in does not precede it must surface a *TopologyError
// carrying the offending nets, because difference propagation, Levels and
// the cone-restricted worklist all iterate gates in index order assuming
// producers come first.
func TestValidateTopologyError(t *testing.T) {
	build := func() *Circuit {
		c := New("topo")
		a := c.AddInput("a")
		b := c.AddInput("b")
		g := c.AddGate("g", And, a, b)
		h := c.AddGate("h", Not, g)
		c.MarkOutput(h)
		return c
	}

	if err := build().Validate(); err != nil {
		t.Fatalf("well-formed circuit failed validation: %v", err)
	}

	// A forward reference (fan-in id >= gate id) breaks the invariant.
	for _, tc := range []struct {
		name  string
		fanin int // what gate g's first fan-in is rewired to
	}{
		{"self-loop", 2},
		{"forward-edge", 3},
	} {
		c := build()
		c.Gates[2].Fanin[0] = tc.fanin
		err := c.Validate()
		if err == nil {
			t.Fatalf("%s: validation passed on a broken topology", tc.name)
		}
		var topo *TopologyError
		if !errors.As(err, &topo) {
			t.Fatalf("%s: error %v (type %T) is not a *TopologyError", tc.name, err, err)
		}
		if topo.Circuit != "topo" || topo.Gate != "g" || topo.Net != 2 || topo.FaninID != tc.fanin {
			t.Fatalf("%s: wrong error detail: %+v", tc.name, topo)
		}
		if topo.Fanin != c.Gates[tc.fanin].Name {
			t.Fatalf("%s: fan-in name %q, want %q", tc.name, topo.Fanin, c.Gates[tc.fanin].Name)
		}
		for _, name := range []string{"topo", "g", c.Gates[tc.fanin].Name} {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("%s: message %q does not name %q", tc.name, err.Error(), name)
			}
		}
	}

	// Other structural violations stay plain errors: the typed match must
	// not catch them.
	c := build()
	c.Gates[2].Fanin = c.Gates[2].Fanin[:1] // AND with one input
	err := c.Validate()
	if err == nil {
		t.Fatal("arity violation passed validation")
	}
	var topo *TopologyError
	if errors.As(err, &topo) {
		t.Fatalf("arity violation matched *TopologyError: %v", err)
	}
}
