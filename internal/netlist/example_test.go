package netlist_test

import (
	"fmt"

	"repro/internal/netlist"
)

func ExampleParseBenchString() {
	c, err := netlist.ParseBenchString("half-adder", `
INPUT(a)
INPUT(b)
OUTPUT(sum)
OUTPUT(carry)
sum = XOR(a, b)
carry = AND(a, b)
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(c)
	out := c.EvalBool([]bool{true, true})
	fmt.Println("1+1: sum =", out[0], "carry =", out[1])
	// Output:
	// half-adder: 2 PIs, 2 POs, 2 gates, depth 1
	// 1+1: sum = false carry = true
}

func ExampleCircuit_ExpandXOR() {
	c := netlist.New("parity")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x := c.AddGate("x", netlist.Xor, a, b)
	c.MarkOutput(x)
	e := c.ExpandXOR()
	fmt.Println("gates before:", c.NumGates(), "after:", e.NumGates())
	fmt.Println("NANDs:", e.TypeCounts()[netlist.Nand])
	// Output:
	// gates before: 1 after: 4
	// NANDs: 4
}

func ExampleCircuit_Optimize() {
	// Expansion followed by optimization round-trips: the paper's
	// C499/C1355 relationship in miniature.
	c := netlist.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	x1 := c.AddGate("x1", netlist.Xor, a, b)
	x2 := c.AddGate("x2", netlist.Xor, x1, d)
	c.MarkOutput(x2)
	blown := c.ExpandXOR()
	fmt.Println("expanded:", blown.NumGates(), "gates")
	fmt.Println("optimized:", blown.Optimize().NumGates(), "gates")
	// Output:
	// expanded: 8 gates
	// optimized: 2 gates
}
