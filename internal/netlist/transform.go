package netlist

import "fmt"

// Decompose2 returns a new circuit in which every gate has at most two
// inputs. An n-input gate becomes a balanced tree of n-1 two-input gates,
// with the inversion (if any) applied only at the tree root so the original
// net keeps its name and function. This is exactly the paper's §3 device
// for keeping the number of difference-function operations linear in the
// fan-in count.
func (c *Circuit) Decompose2() *Circuit {
	nc := New(c.Name)
	remap := make([]int, len(c.Gates))
	for id, g := range c.Gates {
		switch {
		case g.Type == Input:
			remap[id] = nc.AddInput(g.Name)
		case len(g.Fanin) <= 2:
			fanin := remapAll(remap, g.Fanin)
			remap[id] = nc.AddGate(g.Name, g.Type, fanin...)
		default:
			fanin := remapAll(remap, g.Fanin)
			body, root := bodyType(g.Type)
			// Build a balanced tree bottom-up; the final combine carries the
			// original name and the (possibly inverting) root type.
			level := fanin
			aux := 0
			for len(level) > 2 {
				var next []int
				for i := 0; i+1 < len(level); i += 2 {
					n := nc.AddGate(fmt.Sprintf("%s$d%d", g.Name, aux), body, level[i], level[i+1])
					aux++
					next = append(next, n)
				}
				if len(level)%2 == 1 {
					next = append(next, level[len(level)-1])
				}
				level = next
			}
			remap[id] = nc.AddGate(g.Name, root, level[0], level[1])
		}
	}
	nc.Outputs = remapAll(remap, c.Outputs)
	return nc
}

// bodyType splits a gate type into the non-inverting body used for tree
// internals and the type used at the tree root.
func bodyType(t GateType) (body, root GateType) {
	switch t {
	case And, Nand:
		return And, t
	case Or, Nor:
		return Or, t
	case Xor, Xnor:
		return Xor, t
	}
	return t, t
}

// ExpandXOR returns a new circuit in which every XOR/XNOR gate is replaced
// by its four-NAND equivalent (XNOR adds a fifth inverting NAND). Gates
// with more than two inputs are first decomposed via Decompose2. This is
// the construction by which ISCAS-85 C1355 was obtained from C499, and it
// preserves the circuit function exactly while changing its topology —
// the paper's key minimal-design experiment.
func (c *Circuit) ExpandXOR() *Circuit {
	src := c
	for _, g := range c.Gates {
		if (g.Type == Xor || g.Type == Xnor) && len(g.Fanin) > 2 {
			src = c.Decompose2()
			break
		}
	}
	nc := New(src.Name + "_xnand")
	remap := make([]int, len(src.Gates))
	for id, g := range src.Gates {
		switch g.Type {
		case Input:
			remap[id] = nc.AddInput(g.Name)
		case Xor, Xnor:
			a, b := remap[g.Fanin[0]], remap[g.Fanin[1]]
			t1 := nc.AddGate(g.Name+"$x1", Nand, a, b)
			t2 := nc.AddGate(g.Name+"$x2", Nand, a, t1)
			t3 := nc.AddGate(g.Name+"$x3", Nand, b, t1)
			if g.Type == Xor {
				remap[id] = nc.AddGate(g.Name, Nand, t2, t3)
			} else {
				x := nc.AddGate(g.Name+"$x4", Nand, t2, t3)
				remap[id] = nc.AddGate(g.Name, Not, x)
			}
		default:
			remap[id] = nc.AddGate(g.Name, g.Type, remapAll(remap, g.Fanin)...)
		}
	}
	nc.Outputs = remapAll(remap, src.Outputs)
	return nc
}

// InjectBridge returns a new circuit modeling a wired-logic bridge between
// nets u and v: both nets' consumers (and PO observations) see
// bridge(u, v), where bridge is AND or OR according to wiredAnd. The bridge
// must be non-feedback (neither net in the other's fan-out cone) so the
// result remains acyclic; InjectBridge panics otherwise. This powers the
// baseline simulator's bridging-fault evaluation.
func (c *Circuit) InjectBridge(u, v int, wiredAnd bool) *Circuit {
	if u == v {
		panic("netlist: bridge endpoints must differ")
	}
	if c.FanoutCone(u)[v] || c.FanoutCone(v)[u] {
		panic(fmt.Sprintf("netlist: bridge %s-%s is a feedback bridge", c.NetName(u), c.NetName(v)))
	}
	bt := And
	suffix := "$bridgeAND"
	if !wiredAnd {
		bt = Or
		suffix = "$bridgeOR"
	}
	nc := New(c.Name)
	remap := make([]int, len(c.Gates))
	done := make([]bool, len(c.Gates))
	bridged := -1
	// Gates are emitted demand-first so that both bridge endpoints exist
	// before any of their consumers; non-feedback guarantees acyclicity.
	var emit func(int)
	ensureBridge := func() int {
		if bridged < 0 {
			emit(u)
			emit(v)
			bridged = nc.AddGate(c.NetName(u)+suffix, bt, remap[u], remap[v])
		}
		return bridged
	}
	see := func(net int) int {
		if net == u || net == v {
			return ensureBridge()
		}
		emit(net)
		return remap[net]
	}
	emit = func(net int) {
		if done[net] {
			return
		}
		done[net] = true
		g := c.Gates[net]
		if g.Type == Input {
			remap[net] = nc.AddInput(g.Name)
			return
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = see(f)
		}
		remap[net] = nc.AddGate(g.Name, g.Type, fanin...)
	}
	// Keep every gate (and PI declaration order) of the original circuit.
	for _, in := range c.Inputs {
		emit(in)
	}
	for id := range c.Gates {
		emit(id)
	}
	nc.Outputs = make([]int, len(c.Outputs))
	for i, o := range c.Outputs {
		nc.Outputs[i] = see(o)
	}
	return nc
}

func remapAll(remap, nets []int) []int {
	out := make([]int, len(nets))
	for i, n := range nets {
		out[i] = remap[n]
	}
	return out
}
