package diffprop

import (
	"reflect"
	"testing"

	"repro/internal/bdd"
	"repro/internal/circuits"
	"repro/internal/faults"
)

// TestCloneMatchesNew verifies that a cloned engine produces results
// bit-identical to both its source and a freshly synthesized engine, for
// stuck-at and bridging faults.
func TestCloneMatchesNew(t *testing.T) {
	for _, name := range []string{"c17", "c95s", "alu181"} {
		c := circuits.MustGet(name)
		src, err := New(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		clone := src.Clone()
		fs := faults.CheckpointStuckAts(src.Circuit)
		for _, f := range fs {
			want := fresh.StuckAt(f)
			got := clone.StuckAt(f)
			if got.Detectability != want.Detectability ||
				len(got.ObservedPOs) != len(want.ObservedPOs) ||
				got.GatesEvaluated != want.GatesEvaluated {
				t.Fatalf("%s %v: clone result differs from fresh engine", name, f)
			}
			if ub1, ub2 := clone.StuckAtUpperBound(f), fresh.StuckAtUpperBound(f); ub1 != ub2 {
				t.Fatalf("%s %v: clone syndrome bound %v != %v", name, f, ub1, ub2)
			}
		}
		bs := faults.AllNFBFs(src.Circuit, faults.WiredAND)
		if len(bs) > 40 {
			bs = bs[:40]
		}
		for _, b := range bs {
			if clone.Bridging(b).Detectability != fresh.Bridging(b).Detectability {
				t.Fatalf("%s %v: clone bridging detectability differs", name, b)
			}
		}
	}
}

// TestCloneCarriesSyndromeCache checks that syndromes computed on the
// source are visible in the clone without recomputation (same values), and
// that the sat-count cache survives the BDD transfer.
func TestCloneCarriesSyndromeCache(t *testing.T) {
	c := circuits.MustGet("c95s")
	src, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, src.Circuit.NumNets())
	for net := range want {
		want[net] = src.Syndrome(net)
	}
	clone := src.Clone()
	for net := range want {
		if got := clone.Syndrome(net); got != want[net] {
			t.Fatalf("net %d: clone syndrome %v, source %v", net, got, want[net])
		}
	}
}

// TestCloneIsIndependent ensures analyses on a clone do not disturb the
// source: both engines analyze interleaved faults and must agree with a
// reference engine that saw each fault once.
func TestCloneIsIndependent(t *testing.T) {
	c := circuits.MustGet("c95s")
	src, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	clone := src.Clone()
	ref, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(src.Circuit)
	for i, f := range fs {
		want := ref.StuckAt(f).Detectability
		e := src
		if i%2 == 1 {
			e = clone
		}
		if got := e.StuckAt(f).Detectability; got != want {
			t.Fatalf("fault %d: interleaved engines diverged", i)
		}
	}
}

// TestVarToInputCached verifies the mapping is computed once, is correct,
// and is shared with clones.
func TestVarToInputCached(t *testing.T) {
	c := circuits.MustGet("alu181")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2i := e.VarToInput()
	if &v2i[0] != &e.VarToInput()[0] {
		t.Fatal("VarToInput must return the cached mapping, not a rebuild")
	}
	names := e.Circuit.InputNames()
	m := e.Manager()
	for v, i := range v2i {
		if i < 0 {
			continue
		}
		if names[i] != m.VarName(v) {
			t.Fatalf("variable %d (%s) mapped to input %d (%s)", v, m.VarName(v), i, names[i])
		}
	}
	if !reflect.DeepEqual(e.Clone().VarToInput(), v2i) {
		t.Fatal("clone must share the input mapping")
	}
}

// referenceMinimalTestCube is the pre-optimization O(vars²) implementation,
// kept verbatim as the oracle for the linear rewrite.
func referenceMinimalTestCube(e *Engine, res Result) []int8 {
	m := e.Manager()
	cube := m.AnySat(res.Complete)
	if cube == nil {
		return nil
	}
	build := func(c []int8) bdd.Ref {
		f := bdd.True
		for v, s := range c {
			switch s {
			case 0:
				f = m.And(f, m.NVar(v))
			case 1:
				f = m.And(f, m.Var(v))
			}
		}
		return f
	}
	for v := range cube {
		if cube[v] < 0 {
			continue
		}
		saved := cube[v]
		cube[v] = -1
		if m.And(build(cube), m.Not(res.Complete)) != bdd.False {
			cube[v] = saved
		}
	}
	return cube
}

// TestMinimalTestCubeMatchesReference asserts the linear prefix/suffix
// implementation yields exactly the cube of the quadratic original on the
// seed circuits.
func TestMinimalTestCubeMatchesReference(t *testing.T) {
	for _, name := range []string{"c17", "fadd", "c95s", "alu181"} {
		c := circuits.MustGet(name)
		e, err := New(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range faults.CheckpointStuckAts(e.Circuit) {
			res := e.StuckAt(f)
			want := referenceMinimalTestCube(e, res)
			got := e.MinimalTestCube(res)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s %v: cube %v, reference %v", name, f, got, want)
			}
			if got == nil {
				continue
			}
			// The widened cube must still imply the complete test set.
			m := e.Manager()
			cubeF := bdd.True
			for v, s := range got {
				switch s {
				case 0:
					cubeF = m.And(cubeF, m.NVar(v))
				case 1:
					cubeF = m.And(cubeF, m.Var(v))
				}
			}
			if m.And(cubeF, m.Not(res.Complete)) != bdd.False {
				t.Fatalf("%s %v: widened cube leaves the test set", name, f)
			}
		}
	}
}

// TestEngineStats sanity-checks the runtime counters.
func TestEngineStats(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Analyses != 0 || s.GateEvaluations != 0 {
		t.Fatalf("fresh engine has non-zero analysis counters: %+v", s)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	var evals int64
	for _, f := range fs {
		evals += int64(e.StuckAt(f).GatesEvaluated)
	}
	s := e.Stats()
	if s.Analyses != len(fs) {
		t.Fatalf("stats count %d analyses, want %d", s.Analyses, len(fs))
	}
	if s.GateEvaluations != evals {
		t.Fatalf("stats total %d gate evaluations, want %d", s.GateEvaluations, evals)
	}
	if s.PeakNodes < e.Manager().NodeCount() {
		t.Fatalf("peak nodes %d below live node count %d", s.PeakNodes, e.Manager().NodeCount())
	}
	if s.Cache.ApplyHits+s.Cache.ApplyMisses == 0 {
		t.Fatal("apply cache counters never moved")
	}
	if clone := e.Clone(); clone.Stats().Analyses != 0 {
		t.Fatal("clone must start with zero analysis counters")
	}
}
