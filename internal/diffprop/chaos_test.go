package diffprop

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/bdd"
	"repro/internal/circuits"
	"repro/internal/faults"
)

// analyzeAborting runs one StuckAt query and reports which resource
// sentinel (if any) aborted it, recovering the engine on abort.
func analyzeAborting(t *testing.T, e *Engine, f faults.StuckAt) (res Result, abort error) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		err, ok := r.(error)
		if !ok || (!errors.Is(err, bdd.ErrBudget) && !errors.Is(err, bdd.ErrNodeLimit)) {
			t.Fatalf("panic value %v, want a resource sentinel", r)
		}
		e.Recover()
		abort = err
	}()
	return e.StuckAt(f), nil
}

func TestArmChaosAbortIsOneShot(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	want := scalars(e.StuckAt(fs[0]))

	e.ArmChaosAbort(1, bdd.ErrBudget)
	if _, abort := analyzeAborting(t, e, fs[0]); !errors.Is(abort, bdd.ErrBudget) {
		t.Fatalf("armed chaos abort did not fire: %v", abort)
	}
	if got := e.LastAbortOps(); got != 1 {
		t.Fatalf("abort charged %d ops, want 1", got)
	}
	// The trigger was consumed by the aborted attempt: the retry — and
	// every later fault — completes exactly and matches the clean result.
	got, abort := analyzeAborting(t, e, fs[0])
	if abort != nil {
		t.Fatalf("retry after chaos abort aborted again: %v", abort)
	}
	if !reflect.DeepEqual(scalars(got), want) {
		t.Fatalf("post-chaos retry diverged: %+v != %+v", scalars(got), want)
	}
}

func TestArmChaosAbortNodeLimitSentinel(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	e.ArmChaosAbort(2, bdd.ErrNodeLimit)
	if _, abort := analyzeAborting(t, e, fs[0]); !errors.Is(abort, bdd.ErrNodeLimit) {
		t.Fatalf("chaos abort carried %v, want bdd.ErrNodeLimit", abort)
	}
}

func TestArmChaosAbortClearedByRecover(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	// A trigger armed but never consumed (the analysis died before its
	// first query, e.g. an injected panic) must not leak past Recover.
	e.ArmChaosAbort(1, bdd.ErrBudget)
	e.Recover()
	if _, abort := analyzeAborting(t, e, fs[0]); abort != nil {
		t.Fatalf("stale chaos trigger leaked into the next fault: %v", abort)
	}
}

// AnalysisOps must meter each analysis independently — the property the
// campaign layer's budget self-calibration samples rely on.
func TestAnalysisOpsIsPerAnalysis(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	if len(fs) < 2 {
		t.Fatal("need two faults")
	}
	e.StuckAt(fs[0])
	first := e.AnalysisOps()
	e.StuckAt(fs[1])
	second := e.AnalysisOps()
	e.StuckAt(fs[1])
	warm := e.AnalysisOps()
	if first <= 0 || second <= 0 {
		t.Fatalf("per-analysis ops = %d, %d; want positive counts", first, second)
	}
	// A cumulative meter would only ever grow; the warm re-run of fault 1
	// must not include fault 0's cost.
	if warm >= first+second {
		t.Fatalf("ops meter looks cumulative: first=%d second=%d warm=%d", first, second, warm)
	}
}
