package diffprop_test

import (
	"fmt"

	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
)

// End-to-end Difference Propagation on a two-gate circuit: seed the
// difference at the fault site, read off the complete test set.
func ExampleEngine_StuckAt() {
	c := netlist.New("demo")
	a := c.AddInput("a")
	b := c.AddInput("b")
	n := c.AddGate("n", netlist.And, a, b)
	z := c.AddGate("z", netlist.Not, n)
	c.MarkOutput(z)

	e, err := diffprop.New(c, nil)
	if err != nil {
		panic(err)
	}
	w := e.Circuit
	// The AND output stuck at 1: excited wherever ab = 0, and the inverter
	// propagates every excitation, so detectability is 3/4.
	res := e.StuckAt(faults.StuckAt{Net: w.NetByName("n"), Gate: -1, Pin: -1, Stuck: true})
	fmt.Println("detectable:", res.Detectable())
	fmt.Println("detectability:", res.Detectability)
	fmt.Println("adheres to bound:", res.Detectability == e.StuckAtUpperBound(
		faults.StuckAt{Net: w.NetByName("n"), Gate: -1, Pin: -1, Stuck: true}))
	// Output:
	// detectable: true
	// detectability: 0.75
	// adheres to bound: true
}

// A wired-AND bridge between two wires that can disagree.
func ExampleEngine_Bridging() {
	c := netlist.New("demo")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x := c.AddGate("x", netlist.Buff, a)
	y := c.AddGate("y", netlist.Buff, b)
	z := c.AddGate("z", netlist.Xor, x, y)
	c.MarkOutput(z)

	e, err := diffprop.New(c, nil)
	if err != nil {
		panic(err)
	}
	w := e.Circuit
	bf := faults.Bridging{U: w.NetByName("x"), V: w.NetByName("y"), Kind: faults.WiredAND}
	res := e.Bridging(bf)
	// The bridge forces x = y, so the XOR always reads 0; any input with
	// a != b detects it: detectability 1/2.
	fmt.Println("detectability:", res.Detectability)
	// Output:
	// detectability: 0.5
}
