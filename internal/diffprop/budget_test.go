package diffprop

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/bdd"
	"repro/internal/circuits"
	"repro/internal/faults"
)

// analyzeBudgeted runs one StuckAt query and reports whether it aborted
// with bdd.ErrBudget (recovering the engine if so).
func analyzeBudgeted(t *testing.T, e *Engine, f faults.StuckAt) (res Result, aborted bool) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, bdd.ErrBudget) {
			t.Fatalf("panic value %v, want bdd.ErrBudget", r)
		}
		e.Recover()
		aborted = true
	}()
	return e.StuckAt(f), false
}

func TestFaultBudgetAbortAndRecover(t *testing.T) {
	c := circuits.MustGet("alu181")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	if len(fs) < 4 {
		t.Fatal("fault set too small")
	}

	// Reference run: unbudgeted results for the first few faults.
	want := make([]Result, 4)
	for i := range want {
		want[i] = e.StuckAt(fs[i])
		want[i].PerPO = nil // refs die across recoveries; compare scalars
		want[i].Complete = bdd.False
	}

	// A one-op budget cannot finish any real propagation.
	e.SetFaultBudget(FaultBudget{Ops: 1})
	if _, aborted := analyzeBudgeted(t, e, fs[0]); !aborted {
		t.Fatal("Ops=1 budget did not abort the analysis")
	}

	// After Recover + a generous budget, queries must match the
	// unbudgeted reference exactly.
	e.SetFaultBudget(FaultBudget{Ops: 1 << 40, Wall: time.Minute})
	for i := range want {
		got := e.StuckAt(fs[i])
		got.PerPO = nil
		got.Complete = bdd.False
		got.ObservedPOs = append([]int(nil), got.ObservedPOs...)
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("fault %d: budgeted result %+v != unbudgeted %+v", i, got, want[i])
		}
	}

	// Disarming restores unbounded analysis.
	e.SetFaultBudget(FaultBudget{})
	if e.FaultBudget().active() {
		t.Fatal("zero budget reports active")
	}
	if _, aborted := analyzeBudgeted(t, e, fs[0]); aborted {
		t.Fatal("disarmed budget still aborts")
	}
}

func TestCloneCopiesFaultBudget(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaultBudget(FaultBudget{Ops: 123, Wall: time.Second})
	if got := e.Clone().FaultBudget(); got != (FaultBudget{Ops: 123, Wall: time.Second}) {
		t.Fatalf("clone budget = %+v", got)
	}
}
