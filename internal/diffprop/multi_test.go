package diffprop

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

func TestMultipleStuckAtSingleEqualsStuckAt(t *testing.T) {
	e := newEngine(t, "c95s")
	w := e.Circuit
	for _, f := range faults.CheckpointStuckAts(w)[:60] {
		single := e.StuckAt(f)
		multi := e.MultipleStuckAt([]faults.StuckAt{f})
		if single.Complete != multi.Complete {
			t.Fatalf("%v: multiple-fault machinery disagrees with single-fault path", f.Describe(w))
		}
	}
}

func TestMultipleStuckAtExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, name := range []string{"c17", "fadd", "c95s"} {
		e := newEngine(t, name)
		w := e.Circuit
		pool := faults.CheckpointStuckAts(w)
		p := simulate.Exhaustive(len(w.Inputs))
		for trial := 0; trial < 60; trial++ {
			k := 2 + rng.Intn(2) // double and triple faults
			multi := make([]faults.StuckAt, k)
			for i := range multi {
				multi[i] = pool[rng.Intn(len(pool))]
			}
			got := e.MultipleStuckAt(multi).Detectability
			want := float64(simulate.CountBits(simulate.DetectMultipleStuckAt(w, multi, p))) / float64(p.Count)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("%s multi %v: DP=%v exhaustive=%v", name, multi, got, want)
			}
		}
	}
}

func TestMultipleStuckAtMasking(t *testing.T) {
	// A downstream forced site must override an upstream fault: with
	// z = NOT(a) and both a/SA1 and z/SA1 present, the composite behaves
	// exactly like z/SA1 alone.
	c := netlist.New("mask")
	a := c.AddInput("a")
	z := c.AddGate("z", netlist.Not, a)
	c.MarkOutput(z)
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := e.Circuit
	fa := faults.StuckAt{Net: w.NetByName("a"), Gate: -1, Pin: -1, Stuck: true}
	fz := faults.StuckAt{Net: w.NetByName("z"), Gate: -1, Pin: -1, Stuck: true}
	composite := e.MultipleStuckAt([]faults.StuckAt{fa, fz})
	alone := e.StuckAt(fz)
	if composite.Complete != alone.Complete {
		t.Fatal("downstream force must dominate the composite fault")
	}
}

func TestMultipleStuckAtCancellation(t *testing.T) {
	// Two faults can hide each other where a single one is visible:
	// compare the double fault's test set against the union and check it
	// is not simply the union (on a circuit where cancellation exists).
	e := newEngine(t, "c17")
	w := e.Circuit
	m := e.Manager()
	n := func(s string) int { return w.NetByName(s) }
	// Force both NAND outputs feeding PO 22 in ways that can compensate.
	f1 := faults.StuckAt{Net: n("10"), Gate: -1, Pin: -1, Stuck: true}
	f2 := faults.StuckAt{Net: n("16"), Gate: -1, Pin: -1, Stuck: true}
	double := e.MultipleStuckAt([]faults.StuckAt{f1, f2}).Complete
	union := m.Or(e.StuckAt(f1).Complete, e.StuckAt(f2).Complete)
	if double == union {
		t.Skip("no cancellation on this pair; pick another")
	}
	// Exhaustive check that the double-fault set is the truth.
	p := simulate.Exhaustive(5)
	mask := simulate.DetectMultipleStuckAt(w, []faults.StuckAt{f1, f2}, p)
	if int(m.CountMinterms64(double)) != simulate.CountBits(mask) {
		t.Fatal("double-fault test set wrong")
	}
}

func TestGateSubstitutionExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for _, name := range []string{"c17", "fadd", "c95s"} {
		e := newEngine(t, name)
		w := e.Circuit
		subs := faults.AllGateSubs(w)
		p := simulate.Exhaustive(len(w.Inputs))
		for trial := 0; trial < 50 && trial < len(subs); trial++ {
			s := subs[rng.Intn(len(subs))]
			got := e.GateSubstitution(s.Gate, s.WrongType).Detectability
			want := float64(simulate.CountBits(simulate.DetectGateSub(w, s, p))) / float64(p.Count)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("%s %v: DP=%v exhaustive=%v", name, s.Describe(w), got, want)
			}
		}
	}
}

func TestGateSubstitutionKnownCases(t *testing.T) {
	// z = AND(a, b) replaced by OR: differs exactly where a != b, so the
	// detectability is 1/2. Replaced by NAND: differs everywhere... on the
	// output gate every difference is observable.
	c := netlist.New("sub")
	a := c.AddInput("a")
	b := c.AddInput("b")
	z := c.AddGate("z", netlist.And, a, b)
	c.MarkOutput(z)
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	zn := e.Circuit.NetByName("z")
	if d := e.GateSubstitution(zn, netlist.Or).Detectability; d != 0.5 {
		t.Fatalf("AND->OR detectability %v, want 0.5", d)
	}
	if d := e.GateSubstitution(zn, netlist.Nand).Detectability; d != 1 {
		t.Fatalf("AND->NAND detectability %v, want 1", d)
	}
	// AND and XNOR agree except on the all-zero input.
	if d := e.GateSubstitution(zn, netlist.Xnor).Detectability; d != 0.25 {
		t.Fatalf("AND->XNOR detectability %v, want 0.25", d)
	}
}

func TestGateSubstitutionPanics(t *testing.T) {
	e := newEngine(t, "c17")
	w := e.Circuit
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("substitute input", func() { e.GateSubstitution(w.Inputs[0], netlist.And) })
	mustPanic("arity mismatch", func() { e.GateSubstitution(w.NetByName("10"), netlist.Not) })
	mustPanic("input type", func() { e.GateSubstitution(w.NetByName("10"), netlist.Input) })
}

func TestAllGateSubsShape(t *testing.T) {
	c := circuits.MustGet("c17")
	subs := faults.AllGateSubs(c)
	// 6 NAND gates x 5 alternative binary types.
	if len(subs) != 30 {
		t.Fatalf("c17 has %d substitutions, want 30", len(subs))
	}
	for _, s := range subs {
		if s.WrongType == c.Gates[s.Gate].Type {
			t.Fatal("substitution with the designed type is not a fault")
		}
	}
}
