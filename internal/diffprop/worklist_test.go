package diffprop

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bdd"
	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/netlist"
)

// pair builds two independent engines over the same circuit: one running
// the cone-restricted worklist, one the full-gate-scan reference. Both
// start from identical cold managers, so as long as the two paths issue
// the same BDD operation sequence (the property under test) their caches
// evolve in lockstep and refs and per-analysis op counts stay directly
// comparable query after query.
func pair(t *testing.T, c *netlist.Circuit) (wl, fs *Engine) {
	t.Helper()
	var err error
	if wl, err = New(c, nil); err != nil {
		t.Fatal(err)
	}
	if fs, err = New(c, nil); err != nil {
		t.Fatal(err)
	}
	fs.SetFullScanReference(true)
	return wl, fs
}

// check runs the same query on the worklist engine and the full-scan
// reference and asserts bit-identity: same PerPO refs (both managers have
// seen the same allocation history), same complete set, same
// selective-trace gate count, and the same number of charged BDD
// operations — a divergence anywhere in the operation sequence shows up
// in the charge meter.
func check(t *testing.T, label string, wl, fs *Engine, query func(e *Engine) Result) {
	t.Helper()
	got := query(wl)
	gotOps := wl.AnalysisOps()
	want := query(fs)
	wantOps := fs.AnalysisOps()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: worklist result %+v != full-scan %+v", label, got, want)
	}
	if gotOps != wantOps {
		t.Fatalf("%s: worklist charged %d ops, full scan %d", label, gotOps, wantOps)
	}
	if cone := wl.LastConeGates(); cone > wl.Circuit.NumNets() {
		t.Fatalf("%s: merged cone %d exceeds circuit size %d", label, cone, wl.Circuit.NumNets())
	}
}

// TestWorklistMatchesFullScanRandomCircuits is the PR's bit-identity
// property: on hundreds of random circuits the cone-restricted worklist
// must reproduce the full-gate-scan reference exactly — same difference
// functions, same selective-trace gate counts, same BDD operation charge —
// for every fault model the engine supports.
func TestWorklistMatchesFullScanRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(1990))
	trials := 120
	if testing.Short() {
		trials = 20
	}
	var visited, skipped int64
	for trial := 0; trial < trials; trial++ {
		c := randomCircuit(rng, 4+rng.Intn(5), 8+rng.Intn(20))
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		wl, fsv := pair(t, c)
		w := wl.Circuit

		// Single stuck-at faults, net and branch flavors.
		for i := 0; i < 5; i++ {
			f := faults.StuckAt{Net: rng.Intn(w.NumNets()), Gate: -1, Pin: -1, Stuck: rng.Intn(2) == 1}
			check(t, fmt.Sprintf("trial %d %v", trial, f.Describe(w)), wl, fsv,
				func(e *Engine) Result { return e.StuckAt(f) })
		}
		if stems := w.Stems(); len(stems) > 0 {
			net := stems[rng.Intn(len(stems))]
			g := w.Fanout()[net][0]
			for pin, fin := range w.Gates[g].Fanin {
				if fin == net {
					f := faults.StuckAt{Net: net, Gate: g, Pin: pin, Stuck: true}
					check(t, fmt.Sprintf("trial %d branch %v", trial, f.Describe(w)), wl, fsv,
						func(e *Engine) Result { return e.StuckAt(f) })
					break
				}
			}
		}
		// Multiple stuck-at: seeds at several sites force a merged cone.
		multi := []faults.StuckAt{
			{Net: rng.Intn(w.NumNets()), Gate: -1, Pin: -1, Stuck: true},
			{Net: rng.Intn(w.NumNets()), Gate: -1, Pin: -1, Stuck: false},
		}
		check(t, fmt.Sprintf("trial %d multi", trial), wl, fsv,
			func(e *Engine) Result { return e.MultipleStuckAt(multi) })
		// Gate substitution.
		if subs := faults.AllGateSubs(w); len(subs) > 0 {
			s := subs[rng.Intn(len(subs))]
			check(t, fmt.Sprintf("trial %d %v", trial, s.Describe(w)), wl, fsv,
				func(e *Engine) Result { return e.GateSubstitution(s.Gate, s.WrongType) })
		}
		// Bridging (both wired types when the circuit admits any).
		for _, kind := range []faults.BridgeKind{faults.WiredAND, faults.WiredOR} {
			if all := faults.AllNFBFs(w, kind); len(all) > 0 {
				b := all[rng.Intn(len(all))]
				check(t, fmt.Sprintf("trial %d %v", trial, b.Describe(w)), wl, fsv,
					func(e *Engine) Result { return e.Bridging(b) })
			}
		}
		v, s := wl.GateWalk()
		visited += v
		skipped += s
		if fv, fsk := fsv.GateWalk(); fsk != 0 {
			t.Fatalf("trial %d: full-scan reference skipped %d gates (visited %d)", trial, fsk, fv)
		}
	}
	// The strict-subset witness: across the whole run the worklist must
	// have skipped real work somewhere, or it is not restricting anything.
	if skipped == 0 {
		t.Fatalf("worklist skipped no gates over %d trials (visited %d)", trials, visited)
	}
}

// TestWorklistBudgetAbortMatchesFullScan pins the abort behavior: under
// the same per-fault op budget the worklist and the full scan blow at the
// same charged-op count, and after recovery — including the ladder's
// relaxed-budget retry — they still produce identical results.
func TestWorklistBudgetAbortMatchesFullScan(t *testing.T) {
	c := circuits.MustGet("c95s")
	probe, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(probe.Circuit)

	tested := 0
	for _, f := range fs {
		if tested == 4 {
			break
		}
		// Cost the fault on a cold engine; fresh engines below replay the
		// same cold-cache operation sequence, so cost/2 must abort both.
		ec, err := New(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := ec.StuckAt(f)
		cost := ec.AnalysisOps()
		if cost < 4 {
			continue
		}
		tested++
		want.PerPO, want.Complete = nil, bdd.False // refs are engine-local

		wl, fsv := pair(t, c)
		budget := FaultBudget{Ops: cost / 2}
		wl.SetFaultBudget(budget)
		fsv.SetFaultBudget(budget)
		if _, abort := analyzeAborting(t, wl, f); !errors.Is(abort, bdd.ErrBudget) {
			t.Fatalf("%v: worklist did not abort at ops=%d (abort=%v)", f.Describe(c), budget.Ops, abort)
		}
		if _, abort := analyzeAborting(t, fsv, f); !errors.Is(abort, bdd.ErrBudget) {
			t.Fatalf("%v: full scan did not abort at ops=%d (abort=%v)", f.Describe(c), budget.Ops, abort)
		}
		if a, b := wl.LastAbortOps(), fsv.LastAbortOps(); a != b {
			t.Fatalf("%v: worklist aborted at %d ops, full scan at %d", f.Describe(c), a, b)
		}

		// Recovery-ladder retry rung: a 4x relaxed budget covers the real
		// cost, so both paths must now finish with the reference result.
		ladder := Recovery{RetryMultiplier: 4}
		wl.SetRecovery(ladder)
		fsv.SetRecovery(ladder)
		for _, eng := range []*Engine{wl, fsv} {
			restore, ok := eng.RelaxBudget()
			if !ok {
				t.Fatalf("%v: retry rung did not arm", f.Describe(c))
			}
			got, abort := analyzeAborting(t, eng, f)
			restore()
			if abort != nil {
				t.Fatalf("%v: relaxed retry aborted with %v (fullscan=%v)", f.Describe(c), abort, eng.FullScanReference())
			}
			got.PerPO, got.Complete = nil, bdd.False
			got.ObservedPOs = append([]int(nil), got.ObservedPOs...)
			want.ObservedPOs = append([]int(nil), want.ObservedPOs...)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: retry result %+v != reference %+v (fullscan=%v)",
					f.Describe(c), got, want, eng.FullScanReference())
			}
		}
	}
	if tested == 0 {
		t.Fatal("no fault was expensive enough to exercise the abort path")
	}
}
