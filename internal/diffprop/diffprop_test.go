package diffprop

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

// --- Table 1 identities -------------------------------------------------

// TestTable1TruthTables checks the ring-sum identities over random truth
// tables: with F = f ⊕ Δ at each input, the output difference computed by
// the Table 1 formula must equal good-output XOR faulty-output.
func TestTable1TruthTables(t *testing.T) {
	err := quick.Check(func(fa, fb, da, db uint16) bool {
		FA := fa ^ da
		FB := fb ^ db
		// AND / NAND share a difference; same for OR/NOR and XOR/XNOR.
		andOK := (fa&fb)^(FA&FB) == (fa&db)^(fb&da)^(da&db)
		orOK := (fa|fb)^(FA|FB) == (^fa&db)^(^fb&da)^(da&db)
		xorOK := (fa^fb)^(FA^FB) == da^db
		notOK := ^fa^^FA == da
		return andOK && orOK && xorOK && notOK
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTable1Symbolic checks the same identities symbolically on BDDs.
func TestTable1Symbolic(t *testing.T) {
	m := bdd.NewAnon(8)
	rng := rand.New(rand.NewSource(71))
	randf := func() bdd.Ref {
		f := m.Var(rng.Intn(8))
		for i := 0; i < 6; i++ {
			g := m.Var(rng.Intn(8))
			switch rng.Intn(3) {
			case 0:
				f = m.And(f, g)
			case 1:
				f = m.Or(f, g)
			default:
				f = m.Xor(f, g)
			}
		}
		return f
	}
	for trial := 0; trial < 100; trial++ {
		fa, fb, da, db := randf(), randf(), randf(), randf()
		FA, FB := m.Xor(fa, da), m.Xor(fb, db)
		// AND.
		lhs := m.Xor(m.And(fa, fb), m.And(FA, FB))
		rhs := m.Xor(m.Xor(m.And(fa, db), m.And(fb, da)), m.And(da, db))
		if lhs != rhs {
			t.Fatal("AND identity fails symbolically")
		}
		// NAND difference equals AND difference.
		if m.Xor(m.Nand(fa, fb), m.Nand(FA, FB)) != rhs {
			t.Fatal("NAND difference must equal AND difference")
		}
		// OR.
		lhs = m.Xor(m.Or(fa, fb), m.Or(FA, FB))
		rhs = m.Xor(m.Xor(m.And(m.Not(fa), db), m.And(m.Not(fb), da)), m.And(da, db))
		if lhs != rhs {
			t.Fatal("OR identity fails symbolically")
		}
		if m.Xor(m.Nor(fa, fb), m.Nor(FA, FB)) != rhs {
			t.Fatal("NOR difference must equal OR difference")
		}
		// XOR.
		if m.Xor(m.Xor(fa, fb), m.Xor(FA, FB)) != m.Xor(da, db) {
			t.Fatal("XOR identity fails symbolically")
		}
	}
}

// --- Exactness against exhaustive simulation ----------------------------

func newEngine(t testing.TB, name string) *Engine {
	t.Helper()
	e, err := New(circuits.MustGet(name), nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestStuckAtExactness(t *testing.T) {
	for _, name := range []string{"c17", "fadd", "c95s", "alu181"} {
		e := newEngine(t, name)
		w := e.Circuit
		for _, f := range faults.CheckpointStuckAts(w) {
			got := e.StuckAt(f).Detectability
			want := simulate.ExhaustiveDetectabilityStuckAt(w, f)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("%s %v: DP=%v exhaustive=%v", name, f.Describe(w), got, want)
			}
		}
	}
}

func TestStuckAtExactnessAllNets(t *testing.T) {
	// Every net fault, not just checkpoints, on the two tiniest circuits.
	for _, name := range []string{"c17", "fadd"} {
		e := newEngine(t, name)
		w := e.Circuit
		for _, f := range faults.AllStuckAts(w) {
			got := e.StuckAt(f).Detectability
			want := simulate.ExhaustiveDetectabilityStuckAt(w, f)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("%s %v: DP=%v exhaustive=%v", name, f.Describe(w), got, want)
			}
		}
	}
}

func TestBridgingExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, name := range []string{"c17", "fadd", "c95s", "alu181"} {
		e := newEngine(t, name)
		w := e.Circuit
		for _, kind := range []faults.BridgeKind{faults.WiredAND, faults.WiredOR} {
			all := faults.AllNFBFs(w, kind)
			// Sample up to 40 per kind for runtime.
			for trial := 0; trial < 40 && trial < len(all); trial++ {
				b := all[rng.Intn(len(all))]
				got := e.Bridging(b).Detectability
				want := simulate.ExhaustiveDetectabilityBridging(w, b)
				if math.Abs(got-want) > 1e-12 {
					t.Errorf("%s %v: DP=%v exhaustive=%v", name, b.Describe(w), got, want)
				}
			}
		}
	}
}

func TestPerPOAgainstExhaustive(t *testing.T) {
	e := newEngine(t, "c17")
	w := e.Circuit
	p := simulate.Exhaustive(len(w.Inputs))
	for _, f := range faults.CheckpointStuckAts(w) {
		res := e.StuckAt(f)
		// Per-PO reference: compare good vs faulty at each output alone by
		// restricting the circuit to one output at a time.
		for i, o := range w.Outputs {
			single := w.Clone()
			single.Outputs = []int{o}
			mask := simulate.DetectStuckAt(single, f, p)
			wantCount := simulate.CountBits(mask)
			gotCount := int(e.Manager().CountMinterms64(res.PerPO[i]))
			if gotCount != wantCount {
				t.Fatalf("%v PO %d: DP %d tests, exhaustive %d", f.Describe(w), i, gotCount, wantCount)
			}
		}
	}
}

func TestObservedPOsSubsetOfPOsFed(t *testing.T) {
	for _, name := range []string{"c95s", "alu181"} {
		e := newEngine(t, name)
		w := e.Circuit
		for _, f := range faults.CheckpointStuckAts(w) {
			res := e.StuckAt(f)
			fed := w.POsFed(f.Net)
			fedSet := map[int]bool{}
			for _, po := range fed {
				fedSet[po] = true
			}
			for _, po := range res.ObservedPOs {
				if !fedSet[po] {
					t.Fatalf("%s %v observable at PO %d outside its fan-out cone", name, f.Describe(w), po)
				}
			}
			if res.Detectable() != (len(res.ObservedPOs) > 0) {
				t.Fatal("Detectable inconsistent with ObservedPOs")
			}
		}
	}
}

// --- Syndromes, bounds, adherence ---------------------------------------

func TestSyndromeMatchesSimulation(t *testing.T) {
	e := newEngine(t, "c95s")
	w := e.Circuit
	p := simulate.Exhaustive(len(w.Inputs))
	vals := simulate.GoodValues(w, p)
	for net := 0; net < w.NumNets(); net++ {
		want := float64(simulate.CountBits(vals[net])) / float64(p.Count)
		got := e.Syndrome(net)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("net %s syndrome DP=%v sim=%v", w.NetName(net), got, want)
		}
		// Cached second read must agree.
		if e.Syndrome(net) != got {
			t.Fatal("syndrome cache broken")
		}
	}
}

func TestUpperBoundsHold(t *testing.T) {
	for _, name := range []string{"c17", "c95s", "alu181"} {
		e := newEngine(t, name)
		w := e.Circuit
		for _, f := range faults.CheckpointStuckAts(w) {
			res := e.StuckAt(f)
			ub := e.StuckAtUpperBound(f)
			if res.Detectability > ub+1e-12 {
				t.Fatalf("%s %v: detectability %v exceeds syndrome bound %v",
					name, f.Describe(w), res.Detectability, ub)
			}
			if a, ok := Adherence(res.Detectability, ub); ok && (a < 0 || a > 1) {
				t.Fatalf("adherence %v out of range", a)
			}
		}
		for _, b := range faults.AllNFBFs(w, faults.WiredAND)[:10] {
			res := e.Bridging(b)
			ub := e.BridgingUpperBound(b)
			if res.Detectability > ub+1e-12 {
				t.Fatalf("%s %v: detectability %v exceeds excitation bound %v",
					name, b.Describe(w), res.Detectability, ub)
			}
		}
	}
}

func TestPOFaultAdherenceIsOne(t *testing.T) {
	// §4.1: "PO faults always have adherence values of one" — every
	// excitation of a fault on a primary output is immediately a test.
	e := newEngine(t, "alu181")
	w := e.Circuit
	for _, o := range w.Outputs {
		for _, stuck := range []bool{false, true} {
			f := faults.StuckAt{Net: o, Gate: -1, Pin: -1, Stuck: stuck}
			res := e.StuckAt(f)
			ub := e.StuckAtUpperBound(f)
			a, ok := Adherence(res.Detectability, ub)
			if !ok {
				continue // constant output line cannot be excited
			}
			if math.Abs(a-1) > 1e-12 {
				t.Fatalf("PO fault %v adherence = %v, want 1", f.Describe(w), a)
			}
		}
	}
}

func TestAdherenceEdgeCases(t *testing.T) {
	if _, ok := Adherence(0, 0); ok {
		t.Fatal("zero bound must report not-ok")
	}
	if a, ok := Adherence(0.25, 0.5); !ok || a != 0.5 {
		t.Fatal("adherence arithmetic wrong")
	}
	if a, _ := Adherence(0.5000000001, 0.5); a != 1 {
		t.Fatal("rounding guard failed")
	}
}

// --- Figure 5 classification --------------------------------------------

func TestBridgeActsStuckAt(t *testing.T) {
	// Build a circuit where two nets are disjoint (AND bridge is a double
	// SA0) and two nets cover the space (OR bridge is a double SA1).
	c := netlist.New("sa-bridges")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x := c.AddGate("x", netlist.And, a, b)   // ab
	y := c.AddGate("y", netlist.Nor, a, b)   // ¬a¬b : disjoint from ab
	u := c.AddGate("u", netlist.Or, a, b)    // a+b
	v := c.AddGate("v", netlist.Nand, a, b)  // ¬(ab) : u|v tautology
	z1 := c.AddGate("z1", netlist.Xor, x, y) // consume everything
	z2 := c.AddGate("z2", netlist.Xor, u, v)
	z3 := c.AddGate("z3", netlist.And, z1, z2)
	c.MarkOutput(z3)
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := e.Circuit
	n := func(s string) int { return w.NetByName(s) }
	// x∧y ≡ 0: wired-AND bridge behaves as both wires stuck-at-0.
	if !e.BridgeActsStuckAt(faults.Bridging{U: n("x"), V: n("y"), Kind: faults.WiredAND}) {
		t.Fatal("disjoint wires: AND bridge must classify as stuck-at")
	}
	// u∨v ≡ 1: wired-OR bridge behaves as both wires stuck-at-1.
	if !e.BridgeActsStuckAt(faults.Bridging{U: n("u"), V: n("v"), Kind: faults.WiredOR}) {
		t.Fatal("covering wires: OR bridge must classify as stuck-at")
	}
	// Generic pairs are not stuck-at-like.
	if e.BridgeActsStuckAt(faults.Bridging{U: n("a"), V: n("b"), Kind: faults.WiredAND}) {
		t.Fatal("a∧b is not constant")
	}
	if e.BridgeActsStuckAt(faults.Bridging{U: n("a"), V: n("b"), Kind: faults.WiredOR}) {
		t.Fatal("a∨b is not constant")
	}
}

func TestBridgeActsStuckAtMatchesBruteForce(t *testing.T) {
	e := newEngine(t, "c95s")
	w := e.Circuit
	p := simulate.Exhaustive(len(w.Inputs))
	vals := simulate.GoodValues(w, p)
	rng := rand.New(rand.NewSource(79))
	for _, kind := range []faults.BridgeKind{faults.WiredAND, faults.WiredOR} {
		all := faults.AllNFBFs(w, kind)
		for trial := 0; trial < 60; trial++ {
			b := all[rng.Intn(len(all))]
			// Brute force: is the wired function constant?
			count := 0
			for wd := range vals[b.U] {
				var x uint64
				if kind == faults.WiredAND {
					x = vals[b.U][wd] & vals[b.V][wd]
				} else {
					x = vals[b.U][wd] | vals[b.V][wd]
				}
				count += simulate.CountBits([]uint64{x})
			}
			want := count == 0 || count == p.Count
			if got := e.BridgeActsStuckAt(b); got != want {
				t.Fatalf("%v: classify=%v, brute force=%v", b.Describe(w), got, want)
			}
		}
	}
}

// --- Engine mechanics ----------------------------------------------------

func TestCompactionPreservesExactness(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := New(c, &Options{RebuildLimit: 2000}) // force frequent rebuilds
	if err != nil {
		t.Fatal(err)
	}
	w := e.Circuit
	for _, f := range faults.CheckpointStuckAts(w) {
		got := e.StuckAt(f).Detectability
		want := simulate.ExhaustiveDetectabilityStuckAt(w, f)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("%v after compaction: DP=%v exhaustive=%v", f.Describe(w), got, want)
		}
	}
	if e.Rebuilds() == 0 {
		t.Fatal("rebuild limit of 2000 nodes must trigger compaction on c95s")
	}
}

func TestCustomOrderGivesSameResults(t *testing.T) {
	c := circuits.MustGet("alu181")
	e1 := newEngine(t, "alu181")
	rev := e1.Circuit.InputNames()
	sort.Sort(sort.Reverse(sort.StringSlice(rev)))
	e2, err := New(c, &Options{Order: rev})
	if err != nil {
		t.Fatal(err)
	}
	w := e1.Circuit
	for _, f := range faults.CheckpointStuckAts(w)[:20] {
		d1 := e1.StuckAt(f).Detectability
		d2 := e2.StuckAt(f).Detectability
		if math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("%v: order changed detectability %v vs %v", f.Describe(w), d1, d2)
		}
	}
}

func TestDFSOrderIsPermutation(t *testing.T) {
	for _, name := range []string{"c17", "alu181", "c432s", "c499s"} {
		c := circuits.MustGet(name)
		order := DFSOrder(c)
		if len(order) != len(c.Inputs) {
			t.Fatalf("%s: DFS order has %d names, want %d", name, len(order), len(c.Inputs))
		}
		seen := map[string]bool{}
		for _, n := range order {
			if seen[n] {
				t.Fatalf("%s: duplicate %q in DFS order", name, n)
			}
			seen[n] = true
			if c.NetByName(n) < 0 || !c.IsInput(c.NetByName(n)) {
				t.Fatalf("%s: %q is not an input", name, n)
			}
		}
	}
}

func TestDFSOrderUsableByEngine(t *testing.T) {
	c := circuits.MustGet("c499s")
	e, err := New(c, &Options{Order: DFSOrder(c.Decompose2())})
	if err != nil {
		t.Fatal(err)
	}
	// Spot check one fault end to end.
	f := faults.CheckpointStuckAts(e.Circuit)[0]
	res := e.StuckAt(f)
	if !res.Detectable() {
		t.Fatal("first checkpoint fault of c499s must be detectable")
	}
}

func TestMinimalTestCube(t *testing.T) {
	e := newEngine(t, "c95s")
	w := e.Circuit
	m := e.Manager()
	for _, f := range faults.CheckpointStuckAts(w)[:40] {
		res := e.StuckAt(f)
		cube := e.MinimalTestCube(res)
		if !res.Detectable() {
			if cube != nil {
				t.Fatal("undetectable fault must yield nil cube")
			}
			continue
		}
		// Every completion of the cube is a test: cube → Complete.
		cubeF := bdd.True
		spec := 0
		for v, s := range cube {
			switch s {
			case 0:
				cubeF = m.And(cubeF, m.NVar(v))
				spec++
			case 1:
				cubeF = m.And(cubeF, m.Var(v))
				spec++
			}
		}
		if m.And(cubeF, m.Not(res.Complete)) != bdd.False {
			t.Fatalf("%v: minimal cube is not contained in the test set", f.Describe(w))
		}
		// Local minimality: no remaining literal can be dropped.
		for v, s := range cube {
			if s < 0 {
				continue
			}
			wide := append([]int8(nil), cube...)
			wide[v] = -1
			wf := bdd.True
			for vv, ss := range wide {
				switch ss {
				case 0:
					wf = m.And(wf, m.NVar(vv))
				case 1:
					wf = m.And(wf, m.Var(vv))
				}
			}
			if m.And(wf, m.Not(res.Complete)) == bdd.False {
				t.Fatalf("%v: literal on %s still droppable", f.Describe(w), m.VarName(v))
			}
		}
		// Sanity: a cube from a path can only get wider.
		if spec > len(w.Inputs) {
			t.Fatal("cube wider than the input space")
		}
	}
	// Redundant fault path.
	c := netlist.New("red")
	a := c.AddInput("a")
	b := c.AddInput("b")
	ab := c.AddGate("ab", netlist.And, a, b)
	z := c.AddGate("z", netlist.Or, a, ab)
	c.MarkOutput(z)
	er, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := er.StuckAt(faults.StuckAt{Net: er.Circuit.NetByName("ab"), Gate: -1, Pin: -1, Stuck: false})
	if er.MinimalTestCube(res) != nil {
		t.Fatal("redundant fault must yield nil cube")
	}
}

func TestFactoredStuckAtMatchesDifferencePropagation(t *testing.T) {
	// The CATAPULT-style factored form (excitation ∧ observability) must
	// produce the identical complete test set BDD as direct difference
	// propagation — the two methods the paper contrasts in §3.
	for _, name := range []string{"c17", "fadd", "c95s", "alu181"} {
		e := newEngine(t, name)
		w := e.Circuit
		for _, f := range faults.CheckpointStuckAts(w) {
			direct := e.StuckAt(f).Complete
			factored := e.FactoredStuckAt(f).Complete
			if direct != factored {
				t.Fatalf("%s %v: factored and direct test sets differ", name, f.Describe(w))
			}
		}
	}
}

func TestObservabilityProperties(t *testing.T) {
	e := newEngine(t, "c17")
	w := e.Circuit
	m := e.Manager()
	// A PO net is always observable.
	for _, o := range w.Outputs {
		if e.Observability(o) != bdd.True {
			t.Fatalf("PO %s must be observable everywhere", w.NetName(o))
		}
	}
	// The SA0 and SA1 test sets of a net partition its observability:
	// T(SA0) ∪ T(SA1) = Obs and T(SA0) ∩ T(SA1) = ∅.
	for net := 0; net < w.NumNets(); net++ {
		t0 := e.StuckAt(faults.StuckAt{Net: net, Gate: -1, Pin: -1, Stuck: false}).Complete
		t1 := e.StuckAt(faults.StuckAt{Net: net, Gate: -1, Pin: -1, Stuck: true}).Complete
		obs := e.Observability(net)
		if m.Or(t0, t1) != obs {
			t.Fatalf("net %s: SA0 ∪ SA1 tests != observability", w.NetName(net))
		}
		if m.And(t0, t1) != bdd.False {
			t.Fatalf("net %s: SA0 and SA1 tests overlap", w.NetName(net))
		}
	}
}

func TestCutDecompositionTriggersAndStaysSane(t *testing.T) {
	c := circuits.MustGet("c95s")
	exact := newEngine(t, "c95s")
	cut, err := New(c, &Options{CutThreshold: 24, MaxCuts: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.CutNets()) == 0 {
		t.Fatal("threshold 24 on a multiplier must introduce cuts")
	}
	if len(cut.CutNets()) > 16 {
		t.Fatal("cut budget exceeded")
	}
	fs := faults.CheckpointStuckAts(exact.Circuit)
	var exactMean, cutMean float64
	n := 0
	for _, f := range fs {
		de := exact.StuckAt(f).Detectability
		dc := cut.StuckAt(f).Detectability
		if dc < 0 || dc > 1 {
			t.Fatalf("cut detectability %v out of range for %v", dc, f.Describe(exact.Circuit))
		}
		exactMean += de
		cutMean += dc
		n++
	}
	exactMean /= float64(n)
	cutMean /= float64(n)
	// Decomposition is an approximation (the paper's §4.2 caveat), but on
	// this circuit it must stay in the same regime as the exact figures.
	if math.Abs(exactMean-cutMean) > 0.15 {
		t.Fatalf("cut approximation too far off: exact mean %v vs cut mean %v", exactMean, cutMean)
	}
}

func TestCutDecompositionMasksBridgingClassification(t *testing.T) {
	// The paper's §4.2 caveat, reproduced deliberately: "functional
	// decomposition was used to speed up Difference Propagation, so the
	// fractions of NFBFs which are also double stuck-at faults ... may not
	// be completely accurate due to the decomposition masking some
	// functional interactions."
	//
	// u = a∧b and v = ¬a∧¬b are disjoint, so the wired-AND bridge between
	// them is exactly a double stuck-at-0. Cutting u hides that
	// interaction: the site function becomes cutvar∧f_v, which is not
	// constant, and the classification flips.
	c := netlist.New("caveat")
	a := c.AddInput("a")
	b := c.AddInput("b")
	u := c.AddGate("u", netlist.And, a, b)
	v := c.AddGate("v", netlist.Nor, a, b)
	// Consume both so the bridge is meaningful; u's complement-edge BDD
	// (two decision nodes + the terminal) exceeds a tiny cut threshold.
	z1 := c.AddGate("z1", netlist.Xor, u, v)
	c.MarkOutput(z1)

	exact, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	we := exact.Circuit
	bf := faults.Bridging{U: we.NetByName("u"), V: we.NetByName("v"), Kind: faults.WiredAND}
	if !exact.BridgeActsStuckAt(bf) {
		t.Fatal("disjoint pair must classify as stuck-at under exact analysis")
	}

	cut, err := New(c, &Options{CutThreshold: 2, MaxCuts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.CutNets()) == 0 {
		t.Fatal("cut threshold 2 must cut something")
	}
	wc := cut.Circuit
	bfc := faults.Bridging{U: wc.NetByName("u"), V: wc.NetByName("v"), Kind: faults.WiredAND}
	if cut.BridgeActsStuckAt(bfc) {
		t.Fatal("decomposition should mask the interaction — the paper's inaccuracy caveat")
	}
}

func TestHugeCutThresholdMatchesExact(t *testing.T) {
	c := circuits.MustGet("c17")
	exact := newEngine(t, "c17")
	cut, err := New(c, &Options{CutThreshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.CutNets()) != 0 {
		t.Fatal("huge threshold must introduce no cuts")
	}
	for _, f := range faults.CheckpointStuckAts(exact.Circuit) {
		if exact.StuckAt(f).Detectability != cut.StuckAt(f).Detectability {
			t.Fatal("uncut engine must be exact")
		}
	}
}

func TestVarToInputMarksCutVars(t *testing.T) {
	c := circuits.MustGet("c95s")
	cut, err := New(c, &Options{CutThreshold: 24, MaxCuts: 8})
	if err != nil {
		t.Fatal(err)
	}
	v2i := cut.VarToInput()
	neg := 0
	for _, i := range v2i {
		if i < 0 {
			neg++
		}
	}
	if neg != 8 {
		t.Fatalf("%d cut variables flagged, want 8", neg)
	}
	// Assignment must not panic with cut variables present.
	vec := make([]bool, len(cut.Circuit.Inputs))
	if got := cut.Assignment(vec); len(got) != cut.NumVars() {
		t.Fatal("assignment width wrong")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	bad := netlist.New("bad")
	if _, err := New(bad, nil); err == nil {
		t.Fatal("invalid circuit must be rejected")
	}
	c := circuits.MustGet("c17")
	if _, err := New(c, &Options{Order: []string{"1", "2"}}); err == nil {
		t.Fatal("short order must be rejected")
	}
	if _, err := New(c, &Options{Order: []string{"1", "2", "3", "6", "zz"}}); err == nil {
		t.Fatal("unknown input name must be rejected")
	}
}

func TestBridgingRejectsFeedback(t *testing.T) {
	e := newEngine(t, "c17")
	w := e.Circuit
	defer func() {
		if recover() == nil {
			t.Fatal("feedback bridge must panic")
		}
	}()
	e.Bridging(faults.Bridging{U: w.NetByName("11"), V: w.NetByName("16"), Kind: faults.WiredAND})
}

func TestRedundantFaultHasEmptyTestSet(t *testing.T) {
	// z = a OR (a AND b) == a: the AND output SA0 is redundant; DP must
	// prove it with an identically-false complete test set.
	c := netlist.New("red")
	a := c.AddInput("a")
	b := c.AddInput("b")
	ab := c.AddGate("ab", netlist.And, a, b)
	z := c.AddGate("z", netlist.Or, a, ab)
	c.MarkOutput(z)
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := e.Circuit
	res := e.StuckAt(faults.StuckAt{Net: w.NetByName("ab"), Gate: -1, Pin: -1, Stuck: false})
	if res.Detectable() || res.Detectability != 0 || len(res.ObservedPOs) != 0 {
		t.Fatal("redundant fault must have an empty complete test set")
	}
}

func TestCompleteTestSetIsExactlyTheTests(t *testing.T) {
	// Every minterm of Complete must detect the fault; every pattern
	// outside must not. Verified exhaustively on the full adder.
	e := newEngine(t, "fadd")
	w := e.Circuit
	for _, f := range faults.AllStuckAts(w) {
		res := e.StuckAt(f)
		mask := simulate.DetectStuckAt(w, f, simulate.Exhaustive(len(w.Inputs)))
		for idx := 0; idx < 1<<len(w.Inputs); idx++ {
			in := make([]bool, len(w.Inputs))
			for j := range in {
				in[j] = idx>>j&1 == 1
			}
			inDP := e.Manager().Eval(res.Complete, e.Assignment(in))
			inSim := mask[idx/64]>>uint(idx%64)&1 == 1
			if inDP != inSim {
				t.Fatalf("%v pattern %03b: DP says %v, simulation says %v", f.Describe(w), idx, inDP, inSim)
			}
		}
	}
}
