package diffprop

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

// randomCircuit generates a random valid circuit: nIn inputs, nGates
// gates of random types and fan-ins, with the last few sinks marked as
// outputs. It is the fuzz driver for the DP-versus-simulation
// equivalence property.
func randomCircuit(rng *rand.Rand, nIn, nGates int) *netlist.Circuit {
	c := netlist.New("rand")
	for i := 0; i < nIn; i++ {
		c.AddInput(fmt.Sprintf("in%d", i))
	}
	types := []netlist.GateType{
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buff,
	}
	for i := 0; i < nGates; i++ {
		gt := types[rng.Intn(len(types))]
		nf := 1
		if gt != netlist.Not && gt != netlist.Buff {
			nf = 2 + rng.Intn(3)
		}
		fanin := make([]int, nf)
		for j := range fanin {
			fanin[j] = rng.Intn(c.NumNets())
		}
		c.AddGate(fmt.Sprintf("g%d", i), gt, fanin...)
	}
	for i := 0; i < 3; i++ {
		c.MarkOutput(c.NumNets() - 1 - i)
	}
	return c
}

// TestRandomCircuitsDPMatchesSimulation is the repository's broadest
// equivalence property: on hundreds of random circuits, every stuck-at,
// bridging, multiple and gate-substitution analysis must agree exactly
// with exhaustive bit-parallel simulation.
func TestRandomCircuitsDPMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		c := randomCircuit(rng, 4+rng.Intn(5), 8+rng.Intn(18))
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		e, err := New(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		w := e.Circuit
		p := simulate.Exhaustive(len(w.Inputs))

		// Stuck-at faults on random nets (both polarities).
		for i := 0; i < 6; i++ {
			f := faults.StuckAt{Net: rng.Intn(w.NumNets()), Gate: -1, Pin: -1, Stuck: rng.Intn(2) == 1}
			got := e.StuckAt(f).Detectability
			want := float64(simulate.CountBits(simulate.DetectStuckAt(w, f, p))) / float64(p.Count)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d %v: DP=%v sim=%v\n%s", trial, f.Describe(w), got, want, w.BenchString())
			}
		}
		// Branch faults on random stems.
		stems := w.Stems()
		if len(stems) > 0 {
			net := stems[rng.Intn(len(stems))]
			for _, g := range w.Fanout()[net] {
				for pin, fin := range w.Gates[g].Fanin {
					if fin != net {
						continue
					}
					f := faults.StuckAt{Net: net, Gate: g, Pin: pin, Stuck: rng.Intn(2) == 1}
					got := e.StuckAt(f).Detectability
					want := float64(simulate.CountBits(simulate.DetectStuckAt(w, f, p))) / float64(p.Count)
					if math.Abs(got-want) > 1e-12 {
						t.Fatalf("trial %d branch %v: DP=%v sim=%v", trial, f.Describe(w), got, want)
					}
				}
			}
		}
		// Bridging faults.
		for _, kind := range []faults.BridgeKind{faults.WiredAND, faults.WiredOR} {
			all := faults.AllNFBFs(w, kind)
			if len(all) == 0 {
				continue
			}
			b := all[rng.Intn(len(all))]
			got := e.Bridging(b).Detectability
			want := float64(simulate.CountBits(simulate.DetectBridging(w, b, p))) / float64(p.Count)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d %v: DP=%v sim=%v", trial, b.Describe(w), got, want)
			}
		}
		// Double faults.
		f1 := faults.StuckAt{Net: rng.Intn(w.NumNets()), Gate: -1, Pin: -1, Stuck: rng.Intn(2) == 1}
		f2 := faults.StuckAt{Net: rng.Intn(w.NumNets()), Gate: -1, Pin: -1, Stuck: rng.Intn(2) == 1}
		multi := []faults.StuckAt{f1, f2}
		got := e.MultipleStuckAt(multi).Detectability
		want := float64(simulate.CountBits(simulate.DetectMultipleStuckAt(w, multi, p))) / float64(p.Count)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d double {%v, %v}: DP=%v sim=%v", trial, f1.Describe(w), f2.Describe(w), got, want)
		}
		// Gate substitutions.
		subs := faults.AllGateSubs(w)
		if len(subs) > 0 {
			s := subs[rng.Intn(len(subs))]
			got := e.GateSubstitution(s.Gate, s.WrongType).Detectability
			want := float64(simulate.CountBits(simulate.DetectGateSub(w, s, p))) / float64(p.Count)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d %v: DP=%v sim=%v", trial, s.Describe(w), got, want)
			}
		}
		// Witness vectors actually detect their faults.
		f := faults.StuckAt{Net: rng.Intn(w.NumNets()), Gate: -1, Pin: -1, Stuck: rng.Intn(2) == 1}
		res := e.StuckAt(f)
		if vec := e.WitnessVector(res); vec != nil {
			pv := simulate.FromVectors(len(w.Inputs), [][]bool{vec})
			if simulate.CountBits(simulate.DetectStuckAt(w, f, pv)) != 1 {
				t.Fatalf("trial %d: witness for %v does not detect it", trial, f.Describe(w))
			}
		} else if res.Detectable() {
			t.Fatal("detectable fault without witness")
		}
	}
}
