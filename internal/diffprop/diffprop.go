// Package diffprop implements Difference Propagation, the paper's core
// contribution (§3): an OBDD-based functional analysis that computes, for
// any logical fault, the complete test set as a Boolean function of the
// primary inputs and therefore the exact detection probability.
//
// For every net i the engine holds the good function f_i. A fault defines
// a difference function Δf_i = f_i ⊕ F_i (good XOR faulty) at its site;
// the engine propagates differences toward the primary outputs using the
// ring-sum identities of Table 1, which need only the good functions and
// the input differences:
//
//	AND/NAND: ΔC = f_A·Δ_B ⊕ f_B·Δ_A ⊕ Δ_A·Δ_B
//	OR/NOR:   ΔC = ¬f_A·Δ_B ⊕ ¬f_B·Δ_A ⊕ Δ_A·Δ_B
//	XOR/XNOR: ΔC = Δ_A ⊕ Δ_B
//	NOT/BUFF: ΔC = Δ_A
//
// (output inversion leaves a difference unchanged). Gates with more than
// two inputs are decomposed into two-input trees first, exactly as §3
// prescribes, and — in the manner of selective trace — a gate is only
// evaluated while some input difference is non-zero.
package diffprop

import (
	"fmt"
	"log/slog"
	"math/bits"
	"sync"
	"time"

	"repro/internal/bdd"
	"repro/internal/faults"
	"repro/internal/netlist"
)

// FaultBudget bounds the resources a single fault analysis may consume.
// Ops caps the number of charged BDD operations (cache-miss recursions);
// Wall caps the wall-clock time. A zero field means unlimited. When a
// budget is exceeded the analysis panics with bdd.ErrBudget; callers
// recover at the analysis boundary and must call Engine.Recover before
// issuing further queries.
type FaultBudget struct {
	Ops  int64
	Wall time.Duration
}

func (b FaultBudget) active() bool { return b.Ops > 0 || b.Wall > 0 }

// DefaultSiftPasses is the sift-pass cap used when recovery sifting is
// enabled without an explicit budget.
const DefaultSiftPasses = 2

// Recovery configures the engine's graceful-recovery ladder — what happens
// between "a fault analysis blew a resource bound" and "degrade it to a
// simulation estimate":
//
//  1. the manager is garbage-collected in place around the good functions
//     (always, it is what Recover has always done);
//  2. when NodeLimit is set and the live good functions alone still exceed
//     it, up to SiftPasses variable-reordering passes try to shrink them
//     (the blowup was order-induced);
//  3. when RetryMultiplier > 1, the caller may re-attempt the fault once
//     under budgets scaled by the multiplier (see RelaxBudget).
//
// The zero value disables the watermark, the sift rung and the retry rung,
// leaving the engine's historical behavior unchanged.
type Recovery struct {
	// NodeLimit arms a per-analysis BDD node-count soft watermark: an
	// analysis that would grow the table past it aborts with
	// bdd.ErrNodeLimit and enters the ladder. The armed limit is raised to
	// 1.5x the live node count when the configured value leaves no
	// headroom, so the good functions alone can never trip it. 0 disarms.
	NodeLimit int
	// SiftPasses caps the reordering passes of the sift rung (0 disables
	// sifting).
	SiftPasses int
	// RetryMultiplier scales FaultBudget.Ops, FaultBudget.Wall and
	// NodeLimit for a single relaxed re-attempt of a blown fault
	// (values <= 1 disable the retry rung).
	RetryMultiplier float64
}

// Options configures an Engine.
type Options struct {
	// Order lists the primary input names in BDD variable order. Empty
	// selects the DFS-from-outputs heuristic (DFSOrder), which interleaves
	// related inputs; pass Circuit.InputNames() to force the benchmark
	// declaration order the paper used.
	Order []string
	// RebuildLimit triggers generational garbage collection of the BDD
	// manager when the node table exceeds this size. Zero selects a
	// default.
	RebuildLimit int
	// CutThreshold enables the paper's functional decomposition speedup
	// (§4.2, ref [21]): a net whose good-function BDD exceeds this many
	// nodes is cut — replaced downstream by a fresh cut variable. Results
	// then become approximations (the decomposition can mask functional
	// interactions, exactly as the paper warns for its C499-and-larger
	// Figure 5 data); detectabilities and syndromes are computed over the
	// extended variable space. Zero disables cutting (exact analysis).
	CutThreshold int
	// MaxCuts bounds the number of cut variables (default 64). When the
	// budget is exhausted, later oversized nets are kept exact.
	MaxCuts int
}

// Engine analyzes one circuit. A single Engine is not safe for concurrent
// use, but Share hands out additional engines over the same shared BDD
// table that may run on other goroutines (each bracketing its fault
// queries with AnalysisLock). Results returned by Engine methods hold BDD
// references that stay valid only until the next Engine call (the engine
// may compact its manager between faults).
type Engine struct {
	// Circuit is the two-input working copy of the analyzed circuit; all
	// fault sites passed to the engine must refer to ITS net numbering.
	Circuit *netlist.Circuit

	m            *bdd.Manager
	good         []bdd.Ref
	rebuildLimit int
	rebuilds     int

	// cutNets lists the nets replaced by cut variables under functional
	// decomposition (empty for exact analysis).
	cutNets []int

	syndromes []float64
	synValid  []bool

	// varToInput maps each BDD variable position to its primary-input
	// declaration index (-1 for cut variables). The mapping is invariant
	// for the engine's lifetime, so it is computed once in New.
	varToInput []int

	// reach is the fan-out reachability table: one packed bitset row per
	// net, built once in New and aliased by every Share view and Clone. It
	// doubles as the levelized cone index behind the worklist propagation
	// (rows are in topological order by construction) and as the O(1)
	// feedback screen for bridging faults.
	reach *faults.Reachability

	// fullScan forces the reference full-gate-scan propagation instead of
	// the cone-restricted worklist (see SetFullScanReference). The two are
	// bit-identical; the scan is kept for differential testing and as the
	// seed-baseline arm of the scheduling benchmark.
	fullScan bool

	// coneBuf and deltaBuf are per-view scratch for the worklist
	// propagation: the merged fan-out-cone bitset of the current fault's
	// seed sites, and the per-net difference functions (bdd.False = none).
	// Both are cleaned between analyses by walking the cone bits only, so
	// per-fault cost stays O(|cone|), not O(|circuit|).
	coneBuf  []uint64
	deltaBuf []bdd.Ref

	// notMemo caches complements of good functions for forced sites within
	// one analysis (cleared by begin). Complement edges make Not itself
	// free, but multi-fault seeds re-derive the same forced difference once
	// per consuming pin; the memo bounds that to once per site per fault.
	notMemo map[int]bdd.Ref

	// faultBudget bounds each analysis when active (see SetFaultBudget);
	// recovery configures the ladder run when a bound fires (SetRecovery).
	faultBudget FaultBudget
	recovery    Recovery

	// lastSiftSize is the live node count the most recent recovery sift
	// settled at (0 = never sifted). The good functions are fixed for the
	// engine's lifetime, so a sift that could not pull them under the
	// watermark will not do better on the next recovery; this gates the
	// sift rung to run once per engine. Engines sharing one table keep the
	// gate in sharedState instead — one sift serves every view.
	lastSiftSize int

	// shared is non-nil for engines created by (or used as the source of)
	// Share: views over one BDD table coordinating through a read/write
	// lock. Fault analyses run under the read side (concurrent), in-place
	// GC and sifting under the write side (exclusive). The good and
	// varToInput slices are aliased across all views and rebound in place,
	// so a GC by one view re-roots every other view at once.
	shared *sharedState

	// log receives structured engine events (rebuilds, budget aborts);
	// nil is silent. Not shared with clones.
	log *slog.Logger

	// phaseClock, when set, timestamps the three phases of each analysis
	// (difference build, propagation, satisfying-set count) into
	// lastPhases. Off by default: it adds time.Now calls to the hot path.
	phaseClock bool
	phaseStart time.Time
	lastPhases PhaseTimes

	// lastAbortOps records the BDD operations the most recent aborted
	// analysis had charged when its budget fired (captured by Recover).
	lastAbortOps int64

	// chaosAt/chaosErr hold a pending one-shot chaos abort armed by
	// ArmChaosAbort for the NEXT analysis; begin transfers it to the
	// manager and clears it, so a recovery-ladder retry of the same fault
	// runs clean.
	chaosAt  int64
	chaosErr error

	// Runtime counters (see Stats). Cache statistics live on the manager:
	// the in-place GC merges retired tables' counters into it, so
	// m.CacheStats() is cumulative across compactions.
	gateEvals      int64
	analyses       int
	peakNodes      int
	nodesReclaimed int64
	sifts          int

	// gatesVisited/gatesSkipped split each analysis's gate walk: visited
	// gates entered the propagation loop (the fault's merged cone under the
	// worklist, every gate under the full scan); skipped gates were proven
	// unreachable from the seed sites and never touched. lastConeGates is
	// the visited count of the most recent analysis (the cone-size sample
	// behind the obs histogram).
	gatesVisited  int64
	gatesSkipped  int64
	lastConeGates int
}

// PhaseTimes breaks one fault analysis into the engine's phases:
// difference-function construction, selective-trace propagation, and the
// satisfying-set count that yields the detectability.
type PhaseTimes struct {
	Build, Propagate, SatCount time.Duration
}

// SetLogger attaches a structured logger for engine events (generational
// rebuilds, budget aborts). A nil logger silences them (the default).
func (e *Engine) SetLogger(log *slog.Logger) { e.log = log }

// EnablePhaseTiming toggles per-analysis phase timestamps (see
// LastPhases). Off by default because it adds clock reads to every fault.
func (e *Engine) EnablePhaseTiming(on bool) { e.phaseClock = on }

// LastPhases returns the phase breakdown of the most recent analysis.
// Zero unless EnablePhaseTiming(true) was called; partially filled when
// the analysis aborted mid-phase.
func (e *Engine) LastPhases() PhaseTimes { return e.lastPhases }

// LastAbortOps reports how many BDD operations the most recently aborted
// analysis had charged when its budget fired (captured by Recover).
func (e *Engine) LastAbortOps() int64 { return e.lastAbortOps }

// AnalysisOps reports the BDD operations charged by the most recent
// analysis: every query re-arms the charge meter at its start, so after a
// completed query this is that query's own cost — the sample budget
// self-calibration learns from. After an aborted query (post-Recover) the
// meter is reset; use LastAbortOps for the aborted attempt's count.
func (e *Engine) AnalysisOps() int64 { return e.m.OpsCharged() }

// ArmChaosAbort schedules a one-shot forced abort for the next analysis
// on this engine: its manager will panic with err (bdd.ErrBudget or
// bdd.ErrNodeLimit; nil selects bdd.ErrBudget) once the analysis charges
// atOps operations. The trigger is consumed when the next analysis
// begins, so a recovery-ladder retry of the aborted fault runs clean —
// which is exactly what makes chaos-rescued records bit-identical to an
// uninjected run. atOps <= 0 clears a pending trigger. Chaos-injection
// seam; no-op in normal operation.
func (e *Engine) ArmChaosAbort(atOps int64, err error) {
	if atOps <= 0 {
		e.chaosAt, e.chaosErr = 0, nil
		return
	}
	e.chaosAt, e.chaosErr = atOps, err
}

// Stats is a snapshot of an engine's runtime counters: how much work the
// per-fault analyses actually did, how the BDD substrate behaved, and how
// often the generational GC ran. Aggregated across workers into
// analysis.CampaignStats.
type Stats struct {
	// Analyses counts difference propagations run (one per fault query).
	Analyses int
	// GateEvaluations totals the gates whose difference function was
	// computed; selective trace skipped the rest.
	GateEvaluations int64
	// GatesVisited totals the gates the propagation loop examined and
	// GatesSkipped the gates it never touched: under the cone-restricted
	// worklist only the seed sites' merged fan-out cone is visited, so
	// Visited+Skipped = analyses x gate count and Skipped measures the walk
	// work the cone index saved over the full scan (which visits every
	// gate, skipping none).
	GatesVisited int64
	GatesSkipped int64
	// Rebuilds counts generational GC passes of the BDD manager.
	Rebuilds int
	// NodesReclaimed totals the dead nodes those GC passes dropped.
	NodesReclaimed int64
	// Sifts counts recovery-ladder variable-reordering runs.
	Sifts int
	// PeakNodes is the largest node count the manager reached.
	PeakNodes int
	// Cache aggregates apply/ite/not cache hits and misses, including
	// managers retired by compaction.
	Cache bdd.CacheStats
}

// Merge folds another engine's counters into s: additive counters sum,
// PeakNodes takes the maximum (it is a high-water mark, not a total), and
// the cache stats accumulate. This is THE aggregation rule for combining
// per-engine stats — campaign-level aggregation must use it so parallel
// totals equal the sum of their parts.
func (s *Stats) Merge(other Stats) {
	s.Analyses += other.Analyses
	s.GateEvaluations += other.GateEvaluations
	s.GatesVisited += other.GatesVisited
	s.GatesSkipped += other.GatesSkipped
	s.Rebuilds += other.Rebuilds
	s.NodesReclaimed += other.NodesReclaimed
	s.Sifts += other.Sifts
	if other.PeakNodes > s.PeakNodes {
		s.PeakNodes = other.PeakNodes
	}
	s.Cache.Add(other.Cache)
}

// Stats returns the engine's runtime counters accumulated so far.
func (e *Engine) Stats() Stats {
	peak := e.peakNodes
	if nc := e.m.NodeCount(); nc > peak {
		peak = nc
	}
	return Stats{
		Analyses:        e.analyses,
		GateEvaluations: e.gateEvals,
		GatesVisited:    e.gatesVisited,
		GatesSkipped:    e.gatesSkipped,
		Rebuilds:        e.rebuilds,
		NodesReclaimed:  e.nodesReclaimed,
		Sifts:           e.sifts,
		PeakNodes:       peak,
		Cache:           e.m.CacheStats(),
	}
}

// CacheTraffic sums the engine's op-cache hits and misses across the
// apply, ite and not caches — the live feed behind the timeline
// sampler's hit-ratio curve. Cheaper than Stats() when only the cache
// counters are wanted: it skips the node-count walk.
func (e *Engine) CacheTraffic() (hits, misses int64) {
	cs := e.m.CacheStats()
	return cs.ApplyHits + cs.IteHits + cs.NotHits,
		cs.ApplyMisses + cs.IteMisses + cs.NotMisses
}

// SetFullScanReference toggles the propagation strategy: off (the
// default) runs the cone-restricted worklist, which walks only the seed
// sites' merged fan-out cone; on forces the historical full-gate scan.
// Both produce bit-identical Results — same BDD operations in the same
// order — because every gate outside the merged cone provably sees only
// zero input differences and contributes nothing. The scan is retained as
// the differential-testing reference and the seed-baseline arm of the
// scheduling benchmark.
func (e *Engine) SetFullScanReference(on bool) { e.fullScan = on }

// FullScanReference reports whether the reference full-gate scan is
// forced.
func (e *Engine) FullScanReference() bool { return e.fullScan }

// LastConeGates returns the number of gates the most recent analysis's
// propagation loop visited: the fault's merged fan-out-cone size under
// the worklist, the full gate count under the scan reference. This is the
// per-fault sample behind the campaign cone-size histogram.
func (e *Engine) LastConeGates() int { return e.lastConeGates }

// GateWalk returns the engine's cumulative propagation-walk footprint:
// gates the loops examined and gates cone restriction never touched.
// Cheaper than Stats for per-fault delta accounting.
func (e *Engine) GateWalk() (visited, skipped int64) {
	return e.gatesVisited, e.gatesSkipped
}

// New builds an engine for the circuit. The circuit is decomposed to
// two-input gates internally (original net names are preserved, so
// NetByName lookups carry over); use Engine.Circuit for fault generation.
func New(c *netlist.Circuit, opts *Options) (*Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("diffprop: %v", err)
	}
	work := c.Decompose2()
	var order []string
	if opts != nil && len(opts.Order) > 0 {
		order = opts.Order
		if len(order) != len(work.Inputs) {
			return nil, fmt.Errorf("diffprop: order has %d names for %d inputs", len(order), len(work.Inputs))
		}
	} else {
		order = DFSOrder(work)
	}
	cutThreshold := 0
	maxCuts := 0
	if opts != nil && opts.CutThreshold > 0 {
		cutThreshold = opts.CutThreshold
		maxCuts = opts.MaxCuts
		if maxCuts <= 0 {
			maxCuts = 64
		}
		// Cut variables sit after the primary inputs in the order.
		for i := 0; i < maxCuts; i++ {
			order = append(order, fmt.Sprintf("$cut%d", i))
		}
	}
	m := bdd.New(order...)
	limit := 4 << 20
	if opts != nil && opts.RebuildLimit > 0 {
		limit = opts.RebuildLimit
	}
	e := &Engine{
		Circuit:      work,
		m:            m,
		rebuildLimit: limit,
		syndromes:    make([]float64, work.NumNets()),
		synValid:     make([]bool, work.NumNets()),
	}
	e.good = make([]bdd.Ref, work.NumNets())
	for id, g := range work.Gates {
		switch g.Type {
		case netlist.Input:
			v := m.VarIndex(g.Name)
			if v < 0 {
				return nil, fmt.Errorf("diffprop: order is missing input %q", g.Name)
			}
			e.good[id] = m.Var(v)
		case netlist.Not:
			e.good[id] = m.Not(e.good[g.Fanin[0]])
		case netlist.Buff:
			e.good[id] = e.good[g.Fanin[0]]
		default:
			a, b := e.good[g.Fanin[0]], e.good[g.Fanin[1]]
			switch g.Type {
			case netlist.And:
				e.good[id] = m.And(a, b)
			case netlist.Nand:
				e.good[id] = m.Nand(a, b)
			case netlist.Or:
				e.good[id] = m.Or(a, b)
			case netlist.Nor:
				e.good[id] = m.Nor(a, b)
			case netlist.Xor:
				e.good[id] = m.Xor(a, b)
			case netlist.Xnor:
				e.good[id] = m.Xnor(a, b)
			default:
				return nil, fmt.Errorf("diffprop: unsupported gate type %v", g.Type)
			}
		}
		// Functional decomposition: an oversized good function is replaced
		// downstream by a fresh cut variable.
		if cutThreshold > 0 && len(e.cutNets) < maxCuts &&
			!bdd.IsConst(e.good[id]) && m.Size(e.good[id]) > cutThreshold {
			e.good[id] = m.VarNamed(fmt.Sprintf("$cut%d", len(e.cutNets)))
			e.cutNets = append(e.cutNets, id)
		}
	}
	e.varToInput = buildVarToInput(work, m)
	// The reachability table serves double duty as the cone index of the
	// worklist propagation, so it is built eagerly: one reverse-topological
	// sweep here, aliased by every Share view and Clone thereafter.
	e.reach = faults.NewReachability(work)
	e.peakNodes = m.NodeCount()
	return e, nil
}

// buildVarToInput computes the BDD-variable-position → primary-input-index
// mapping (-1 for cut variables).
func buildVarToInput(c *netlist.Circuit, m *bdd.Manager) []int {
	names := c.InputNames()
	pos := make(map[string]int, len(names))
	for i, n := range names {
		pos[n] = i
	}
	out := make([]int, m.NumVars())
	for v := range out {
		if i, ok := pos[m.VarName(v)]; ok {
			out[v] = i
		} else {
			out[v] = -1
		}
	}
	return out
}

// Clone builds an independent engine over the same circuit by structurally
// copying the good functions into a fresh manager (bdd.Manager.Transfer,
// linear in the node count) instead of re-running Apply-synthesis. The
// clone shares the immutable working circuit, the precomputed input
// mapping and the feedback-reachability table with its source, and starts
// with the source's syndrome cache and a compact, garbage-free manager.
// Cloning reads but never mutates the source, so several clones may be
// taken concurrently — but not while another goroutine is analyzing faults
// on the source. Runtime counters start at zero.
func (e *Engine) Clone() *Engine {
	m2 := bdd.New(e.m.Names()...)
	good2 := e.m.Transfer(m2, e.good...)
	return &Engine{
		Circuit:      e.Circuit,
		m:            m2,
		good:         good2,
		rebuildLimit: e.rebuildLimit,
		cutNets:      append([]int(nil), e.cutNets...),
		syndromes:    append([]float64(nil), e.syndromes...),
		synValid:     append([]bool(nil), e.synValid...),
		varToInput:   e.varToInput,
		reach:        e.reach,
		fullScan:     e.fullScan,
		faultBudget:  e.faultBudget,
		recovery:     e.recovery,
		lastSiftSize: e.lastSiftSize,
		peakNodes:    m2.NodeCount(),
	}
}

// sharedState coordinates the engines sharing one BDD table. The lock
// has reader/writer semantics matching the table's concurrency contract:
// fault analyses (which only add nodes) run under RLock concurrently,
// while in-place GC and sifting (which re-root the table) require the
// exclusive Lock. lastSiftSize moves here from the per-engine field so
// the one-sift-per-good-set gate spans every view.
type sharedState struct {
	mu           sync.RWMutex
	lastSiftSize int
}

// Share returns an engine over the same circuit and the same BDD node
// table: good functions, computed cache and unique table are shared, so
// the new engine costs a few slice headers instead of a full node-store
// copy, and warm cache entries built by any view serve all of them. The
// shared views — including the receiver — must bracket every fault query
// with AnalysisLock, which coordinates concurrent analyses with in-place
// compaction. Budgets, recovery settings, statistics and the syndrome
// cache are per-view; the good and varToInput slices are aliased so
// recovery by one view re-roots all of them.
func (e *Engine) Share() *Engine {
	if e.shared == nil {
		e.shared = &sharedState{lastSiftSize: e.lastSiftSize}
	}
	return &Engine{
		Circuit:      e.Circuit,
		m:            e.m.Share(),
		good:         e.good,
		rebuildLimit: e.rebuildLimit,
		cutNets:      e.cutNets,
		syndromes:    append([]float64(nil), e.syndromes...),
		synValid:     append([]bool(nil), e.synValid...),
		varToInput:   e.varToInput,
		reach:        e.reach,
		fullScan:     e.fullScan,
		faultBudget:  e.faultBudget,
		recovery:     e.recovery,
		shared:       e.shared,
		peakNodes:    e.m.NodeCount(),
	}
}

// AnalysisLock enters one fault analysis on a shared engine and returns
// the function that leaves it. The returned unlock must be held across
// the whole analysis — query plus any witness/cube extraction — because
// the refs a query returns die at the next in-place compaction, which
// only runs while no analysis holds the lock. When the shared table has
// outgrown the rebuild limit the entering worker compacts it first (under
// the exclusive lock) so garbage cannot accumulate unboundedly: begin()
// skips its own compaction check in shared mode precisely because it runs
// under the read lock. On an unshared engine both enter and leave are
// no-ops.
func (e *Engine) AnalysisLock() func() {
	sh := e.shared
	if sh == nil {
		return func() {}
	}
	if e.m.NodeCount() > e.rebuildLimit {
		sh.mu.Lock()
		if e.m.NodeCount() > e.rebuildLimit {
			e.compact("limit")
		}
		sh.mu.Unlock()
	}
	sh.mu.RLock()
	return sh.mu.RUnlock
}

// CutNets returns the nets replaced by cut variables under functional
// decomposition; an empty slice means the analysis is exact.
func (e *Engine) CutNets() []int { return append([]int(nil), e.cutNets...) }

// Manager exposes the engine's BDD manager (for witness extraction,
// counting, etc.). References into it are invalidated by the next
// Engine analysis call.
func (e *Engine) Manager() *bdd.Manager { return e.m }

// Good returns the good function of a net in the working circuit.
func (e *Engine) Good(net int) bdd.Ref { return e.good[net] }

// NumVars returns the number of primary inputs / BDD variables.
func (e *Engine) NumVars() int { return e.m.NumVars() }

// Rebuilds reports how many generational GC passes have run.
func (e *Engine) Rebuilds() int { return e.rebuilds }

// VarToInput returns, for each BDD variable position, the index of the
// corresponding primary input in circuit declaration order, or -1 for a
// cut variable introduced by functional decomposition. Needed to
// translate AnySat cubes (variable order) into test vectors (input order).
// The mapping is invariant for the engine's lifetime and computed once in
// New; the returned slice is the engine's cached copy and must not be
// modified.
func (e *Engine) VarToInput() []int { return e.varToInput }

// Assignment converts a test vector in primary-input declaration order
// into a BDD evaluation assignment in variable order. Cut variables (if
// any) evaluate as false; exact evaluation is only meaningful without
// functional decomposition.
func (e *Engine) Assignment(vec []bool) []bool {
	out := make([]bool, len(e.varToInput))
	for v, i := range e.varToInput {
		if i >= 0 {
			out[v] = vec[i]
		}
	}
	return out
}

// Syndrome returns the exact syndrome of a net: the fraction of input
// assignments driving it to one (Savir). Values are cached per net.
func (e *Engine) Syndrome(net int) float64 {
	if !e.synValid[net] {
		e.syndromes[net] = e.m.SatFrac(e.good[net])
		e.synValid[net] = true
	}
	return e.syndromes[net]
}

// SetFaultBudget arms a per-analysis resource budget: every subsequent
// fault query charges BDD operations against budget.Ops and the clock
// against budget.Wall, and panics with bdd.ErrBudget when either is
// exhausted. The zero budget disarms. After recovering from bdd.ErrBudget
// the caller must invoke Recover before the next query.
func (e *Engine) SetFaultBudget(budget FaultBudget) { e.faultBudget = budget }

// FaultBudget returns the currently armed per-analysis budget.
func (e *Engine) FaultBudget() FaultBudget { return e.faultBudget }

// SetRecovery configures the graceful-recovery ladder (see Recovery). The
// zero value restores the historical GC-only behavior.
func (e *Engine) SetRecovery(r Recovery) { e.recovery = r }

// Recovery returns the configured recovery ladder.
func (e *Engine) Recovery() Recovery { return e.recovery }

// RelaxBudget arms the ladder's retry rung: the per-fault budget (ops and
// wall) and the node watermark are scaled by Recovery.RetryMultiplier so
// the caller can re-attempt a blown fault once with more headroom. It
// returns a restore function that reinstates the original bounds, and
// ok=false — arming nothing — when the retry rung is disabled
// (RetryMultiplier <= 1) or there is no bound to relax.
func (e *Engine) RelaxBudget() (restore func(), ok bool) {
	mult := e.recovery.RetryMultiplier
	if mult <= 1 || (!e.faultBudget.active() && e.recovery.NodeLimit <= 0) {
		return nil, false
	}
	savedBudget, savedRecovery := e.faultBudget, e.recovery
	e.faultBudget.Ops = scaleBound(savedBudget.Ops, mult)
	e.faultBudget.Wall = time.Duration(scaleBound(int64(savedBudget.Wall), mult))
	e.recovery.NodeLimit = int(scaleBound(int64(savedRecovery.NodeLimit), mult))
	return func() {
		e.faultBudget, e.recovery = savedBudget, savedRecovery
	}, true
}

// scaleBound multiplies a resource bound, keeping zero (= unlimited) at
// zero and saturating instead of overflowing.
func scaleBound(v int64, mult float64) int64 {
	if v <= 0 {
		return v
	}
	f := float64(v) * mult
	if f >= float64(1<<62) {
		return 1 << 62
	}
	return int64(f)
}

// begin opens a fault analysis: compacts the manager if it outgrew the
// limit, then arms the per-analysis budget and node watermark (if any) so
// the whole query — seed construction, propagation, counting — is metered
// as one unit.
func (e *Engine) begin() {
	if e.shared == nil {
		// Shared engines compact under the exclusive lock in AnalysisLock;
		// begin runs under the read side where adoption is off-limits.
		e.maybeCompact()
	}
	if e.phaseClock {
		e.phaseStart = time.Now()
		e.lastPhases = PhaseTimes{}
	}
	// The complement memo caches refs, which die at the next compaction or
	// recovery; its lifetime is exactly one analysis.
	clear(e.notMemo)
	lim := e.recovery.NodeLimit
	if lim > 0 {
		// Headroom guarantee: the live good functions plus half again can
		// never trip the watermark, however small it was configured.
		if floor := e.m.NodeCount() + e.m.NodeCount()/2; lim < floor {
			lim = floor
		}
	}
	e.m.SetNodeLimit(lim)
	var deadline time.Time
	if e.faultBudget.Wall > 0 {
		deadline = time.Now().Add(e.faultBudget.Wall)
	}
	// Always arm, even with a zero (unlimited) budget: SetBudget resets
	// the manager's charge meter, making AnalysisOps a per-analysis count
	// — the sample the campaign layer's budget self-calibration learns
	// from.
	e.m.SetBudget(e.faultBudget.Ops, deadline)
	if e.chaosAt > 0 {
		e.m.SetChaosAbort(e.chaosAt, e.chaosErr)
		e.chaosAt, e.chaosErr = 0, nil
	}
}

// Recover restores the engine after an aborted analysis (a bdd.ErrBudget
// or bdd.ErrNodeLimit panic, or any panic that escaped a fault query) by
// running the recovery ladder's engine-side rungs: the manager is
// garbage-collected in place around the good functions, dropping every
// node the aborted query left behind, and — when a node watermark is
// configured, the live set still exceeds it, and the sift rung is enabled
// — a capped number of variable-reordering passes tries to shrink the
// good functions themselves. The budget and watermark are disarmed until
// the next query re-arms them. The abort fires only between node-table
// mutations and the node store is append-only, so recovery always starts
// from a consistent table.
func (e *Engine) Recover() {
	// OpsCharged must be read before ClearBudget resets the meter.
	e.lastAbortOps = e.m.OpsCharged()
	e.m.ClearBudget()
	e.m.SetNodeLimit(0)
	// Drop any chaos trigger still pending on the engine: if the aborted
	// analysis never reached begin (an injected panic between arming and
	// the first query), the trigger must not leak into the next fault.
	e.chaosAt, e.chaosErr = 0, nil
	if sh := e.shared; sh != nil {
		// Recover is reached inside an analysis, i.e. under the read lock.
		// The ladder re-roots the shared table, which needs the exclusive
		// lock, so escalate: drop the read side, collect, re-enter. This
		// cannot deadlock — every other holder of the read side that needs
		// the write lock drops its read lock first, exactly like here.
		sh.mu.RUnlock()
		sh.mu.Lock()
		e.recoverLadder()
		sh.mu.Unlock()
		sh.mu.RLock()
		return
	}
	e.recoverLadder()
}

// recoverLadder runs the engine-side recovery rungs. Shared engines call
// it under the exclusive lock; unshared ones directly.
func (e *Engine) recoverLadder() {
	before := e.m.NodeCount()
	if before > e.peakNodes {
		e.peakNodes = before
	}
	passes := e.recovery.SiftPasses
	if e.siftSize() > 0 {
		// The good functions cannot change, so one sift per good set is all
		// that can ever help (clones and shared views inherit the order).
		passes = 0
	}
	roots, res := e.m.ReduceUnder(e.good, e.recovery.NodeLimit, passes)
	// Rebind in place: shared views alias this slice, so the copy re-roots
	// every one of them at once.
	copy(e.good, roots)
	e.rebuilds++
	e.nodesReclaimed += int64(res.Reclaimed())
	if res.Sifted {
		e.sifts++
		e.setSiftSize(res.After)
		// Reordering moved the variables: the position→input map must be
		// recomputed (in place, for the same aliasing reason). Syndromes are
		// per-net fractions and stay valid.
		copy(e.varToInput, buildVarToInput(e.Circuit, e.m))
	}
	if e.log != nil {
		e.log.Debug("engine recover", "ops_charged", e.lastAbortOps,
			"nodes_before", before, "nodes_after", e.m.NodeCount(),
			"reclaimed", res.Reclaimed(), "sifted", res.Sifted, "rebuilds", e.rebuilds)
	}
}

// siftSize reads the one-sift gate from wherever it lives for this engine.
func (e *Engine) siftSize() int {
	if e.shared != nil {
		return e.shared.lastSiftSize
	}
	return e.lastSiftSize
}

func (e *Engine) setSiftSize(n int) {
	if e.shared != nil {
		e.shared.lastSiftSize = n
		return
	}
	e.lastSiftSize = n
}

// maybeCompact garbage-collects the manager around the good functions when
// the node table has grown past the limit, dropping all per-fault garbage.
func (e *Engine) maybeCompact() {
	if e.m.NodeCount() <= e.rebuildLimit {
		return
	}
	e.compact("limit")
}

// compact garbage-collects the manager in place around the good functions.
// The manager keeps its identity, so cumulative cache statistics and the
// node high-water mark survive without engine-side accumulators. Shared by
// maybeCompact (node-table growth) and GCNow (the campaign memory
// governor).
func (e *Engine) compact(cause string) {
	before := e.m.NodeCount()
	if before > e.peakNodes {
		e.peakNodes = before
	}
	roots, res := e.m.GC(e.good)
	copy(e.good, roots)
	e.rebuilds++
	e.nodesReclaimed += int64(res.Reclaimed())
	if e.log != nil {
		e.log.Debug("bdd rebuild", "cause", cause, "nodes_before", before,
			"nodes_after", e.m.NodeCount(), "rebuilds", e.rebuilds)
	}
}

// GCNow immediately garbage-collects the manager around the good
// functions, dropping per-fault garbage between analyses. The campaign
// memory governor calls it when parking a worker under heap pressure; any
// caller may use it to return an idle engine to its minimal footprint.
// Results of previous queries are invalidated. On a shared engine the
// collection takes the exclusive lock, waiting for in-flight analyses on
// other views; callers must not hold AnalysisLock when invoking it.
func (e *Engine) GCNow() {
	if sh := e.shared; sh != nil {
		sh.mu.Lock()
		e.compact("governor")
		sh.mu.Unlock()
		return
	}
	e.compact("governor")
}

// Result is the outcome of one fault analysis: the complete test set and
// the figures derived from it. The BDD references are valid until the
// next Engine call.
type Result struct {
	// PerPO holds the difference function observed at each primary output
	// (index-aligned with Circuit.Outputs).
	PerPO []bdd.Ref
	// Complete is the complete test set: the union of the PO differences.
	Complete bdd.Ref
	// Detectability is the exact detection probability
	// |Complete| / 2^n — the paper's central quantity.
	Detectability float64
	// ObservedPOs lists the output positions with a non-zero difference.
	ObservedPOs []int
	// GatesEvaluated counts the gates whose difference function was
	// actually computed; the rest were skipped by selective trace (§3).
	GatesEvaluated int
}

// Detectable reports whether the fault has any test at all; a false value
// proves redundancy (for stuck-at faults) or untestability.
func (r Result) Detectable() bool { return r.Complete != bdd.False }

// pinKey identifies a gate input pin.
type pinKey struct {
	gate, pin int
}

// seeds carries everything a propagation can start from: explicit initial
// difference functions (single stuck-at and bridging faults) and forced
// constants (multiple stuck-at faults, where a downstream forced site must
// override whatever difference arrives from upstream faults).
type seeds struct {
	net      map[int]bdd.Ref
	pin      map[pinKey]bdd.Ref
	forceNet map[int]bool
	forcePin map[pinKey]bool
}

// propagate seeds the given differences and runs selective-trace
// difference propagation to all primary outputs.
func (e *Engine) propagate(netSeeds map[int]bdd.Ref, pinSeeds map[pinKey]bdd.Ref) Result {
	return e.propagateSeeds(seeds{net: netSeeds, pin: pinSeeds})
}

// propagateSeeds dispatches between the cone-restricted worklist (the
// default) and the retained full-gate-scan reference. The two are
// bit-identical: a gate outside the seed sites' merged fan-out cone can
// receive only zero input differences (differences originate at seed
// sites and flow along fan-out edges, and cones are transitively closed),
// so the full scan does no BDD work there and the worklist may skip it
// entirely. Within the cone both walk gates in ascending net id — the
// topological order Validate guarantees — so they issue the same BDD
// operations in the same order.
func (e *Engine) propagateSeeds(sd seeds) Result {
	if e.fullScan {
		return e.propagateSeedsFullScan(sd)
	}
	return e.propagateSeedsWorklist(sd)
}

// pinDelta resolves the difference arriving at one gate input pin:
// forced-pin constants override pin seeds, which override whatever
// difference the fan-in net carries (bdd.False for none).
func (e *Engine) pinDelta(sd seeds, delta []bdd.Ref, id, pin, fanin int) bdd.Ref {
	if sd.forcePin != nil {
		if v, ok := sd.forcePin[pinKey{id, pin}]; ok {
			return e.forcedDelta(fanin, v)
		}
	}
	if sd.pin != nil {
		if d, ok := sd.pin[pinKey{id, pin}]; ok {
			return d
		}
	}
	return delta[fanin]
}

// propagateSeedsWorklist is the cone-restricted propagation: it ORs the
// packed reachability rows of every seed site into a merged-cone bitset
// and walks only those nets, in ascending id (= topological) order. Gate
// bodies are identical to the full scan's; per-fault walk cost drops from
// O(|circuit|) to O(|cone|).
func (e *Engine) propagateSeedsWorklist(sd seeds) Result {
	var clk time.Time
	if e.phaseClock {
		clk = time.Now()
		// Everything between begin() and here built the difference seeds.
		e.lastPhases.Build = clk.Sub(e.phaseStart)
	}
	m := e.m
	c := e.Circuit
	n := c.NumNets()
	words := (n + 63) / 64
	if len(e.coneBuf) < words {
		e.coneBuf = make([]uint64, words)
	}
	if len(e.deltaBuf) < n {
		e.deltaBuf = make([]bdd.Ref, n)
	}
	cone, delta := e.coneBuf, e.deltaBuf
	// Every delta write below lands on a net whose cone bit is already
	// set, so walking the set bits scrubs both buffers back to zero — even
	// when a budget abort panics out mid-propagation (the abort would
	// otherwise leave stale refs for the next fault to misread).
	defer func() {
		for w, wbits := range cone {
			for wbits != 0 {
				delta[w*64+bits.TrailingZeros64(wbits)] = bdd.False
				wbits &= wbits - 1
			}
			cone[w] = 0
		}
	}()
	// mark adds a seed site to the worklist: the site itself (a seeded
	// site inside another seed's cone must still be recomputed, and a
	// site's own difference is read when it is a primary output) plus its
	// whole fan-out cone.
	mark := func(net int) {
		cone[net>>6] |= 1 << uint(net&63)
		for w, row := range e.reach.Row(net) {
			cone[w] |= row
		}
	}
	for net, d := range sd.net {
		mark(net)
		if d != bdd.False {
			delta[net] = d
		}
	}
	// A forced primary input differs wherever its good value disagrees
	// with the forced constant; forced gate outputs are handled at their
	// gate, inside the walk.
	for net, v := range sd.forceNet {
		mark(net)
		if c.Gates[net].Type == netlist.Input {
			if d := e.forcedDelta(net, v); d != bdd.False {
				delta[net] = d
			}
		}
	}
	for k := range sd.pin {
		mark(k.gate)
	}
	for k := range sd.forcePin {
		mark(k.gate)
	}
	evaluated, visited := 0, 0
	for w, wbits := range cone {
		for wbits != 0 {
			id := w*64 + bits.TrailingZeros64(wbits)
			wbits &= wbits - 1
			g := &c.Gates[id]
			if g.Type == netlist.Input {
				continue
			}
			visited++
			// A forced gate output overrides any arriving difference: the
			// faulty value is the constant no matter what happens upstream.
			if sd.forceNet != nil {
				if v, ok := sd.forceNet[id]; ok {
					delta[id] = e.forcedDelta(id, v)
					continue
				}
			}
			var out bdd.Ref
			switch g.Type {
			case netlist.Not, netlist.Buff:
				out = e.pinDelta(sd, delta, id, 0, g.Fanin[0])
				if out == bdd.False {
					continue
				}
			case netlist.Xor, netlist.Xnor:
				da := e.pinDelta(sd, delta, id, 0, g.Fanin[0])
				db := e.pinDelta(sd, delta, id, 1, g.Fanin[1])
				if da == bdd.False && db == bdd.False {
					continue // selective trace: no difference reaches this gate
				}
				evaluated++
				out = m.Xor(da, db)
			case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
				da := e.pinDelta(sd, delta, id, 0, g.Fanin[0])
				db := e.pinDelta(sd, delta, id, 1, g.Fanin[1])
				if da == bdd.False && db == bdd.False {
					continue // selective trace: no difference reaches this gate
				}
				evaluated++
				fa, fb := e.good[g.Fanin[0]], e.good[g.Fanin[1]]
				if g.Type == netlist.Or || g.Type == netlist.Nor {
					fa, fb = m.Not(fa), m.Not(fb)
				}
				// ΔC = fA·ΔB ⊕ fB·ΔA ⊕ ΔA·ΔB, with the usual short cuts when
				// one input carries no difference.
				switch {
				case da == bdd.False:
					out = m.And(fa, db)
				case db == bdd.False:
					out = m.And(fb, da)
				default:
					t := m.Xor(m.And(fa, db), m.And(fb, da))
					out = m.Xor(t, m.And(da, db))
				}
			default:
				panic(fmt.Sprintf("diffprop: unexpected gate type %v", g.Type))
			}
			if out != bdd.False {
				delta[id] = out
			}
		}
	}
	res := Result{PerPO: make([]bdd.Ref, len(c.Outputs)), Complete: bdd.False, GatesEvaluated: evaluated}
	for i, o := range c.Outputs {
		// An unvisited, unseeded net holds the zero Ref, which is
		// bdd.False: a difference that never reached this output.
		d := delta[o]
		res.PerPO[i] = d
		if d != bdd.False {
			res.ObservedPOs = append(res.ObservedPOs, i)
			res.Complete = m.Or(res.Complete, d)
		}
	}
	if e.phaseClock {
		now := time.Now()
		e.lastPhases.Propagate = now.Sub(clk)
		clk = now
	}
	res.Detectability = m.SatFrac(res.Complete)
	if e.phaseClock {
		e.lastPhases.SatCount = time.Since(clk)
	}
	e.analyses++
	e.gateEvals += int64(evaluated)
	e.gatesVisited += int64(visited)
	e.gatesSkipped += int64(c.NumGates() - visited)
	e.lastConeGates = visited
	if nc := m.NodeCount(); nc > e.peakNodes {
		e.peakNodes = nc
	}
	return res
}

// propagateSeedsFullScan is the historical O(|circuit|) propagation: every
// gate is examined in index order and selective trace skips those with
// all-False input differences. Kept verbatim as the differential-testing
// reference for the worklist (see SetFullScanReference).
func (e *Engine) propagateSeedsFullScan(sd seeds) Result {
	var clk time.Time
	if e.phaseClock {
		clk = time.Now()
		// Everything between begin() and here built the difference seeds.
		e.lastPhases.Build = clk.Sub(e.phaseStart)
	}
	m := e.m
	c := e.Circuit
	delta := make(map[int]bdd.Ref, 64)
	for net, d := range sd.net {
		if d != bdd.False {
			delta[net] = d
		}
	}
	// A forced primary input differs wherever its good value disagrees
	// with the forced constant.
	for net, v := range sd.forceNet {
		if c.Gates[net].Type == netlist.Input {
			if d := e.forcedDelta(net, v); d != bdd.False {
				delta[net] = d
			}
		}
	}
	evaluated := 0
	for id, g := range c.Gates {
		if g.Type == netlist.Input {
			continue
		}
		// A forced gate output overrides any arriving difference: the
		// faulty value is the constant no matter what happens upstream.
		if v, ok := sd.forceNet[id]; ok {
			if d := e.forcedDelta(id, v); d != bdd.False {
				delta[id] = d
			} else {
				delete(delta, id)
			}
			continue
		}
		din := func(pin int) bdd.Ref {
			if v, ok := sd.forcePin[pinKey{id, pin}]; ok {
				return e.forcedDelta(g.Fanin[pin], v)
			}
			if d, ok := sd.pin[pinKey{id, pin}]; ok {
				return d
			}
			if d, ok := delta[g.Fanin[pin]]; ok {
				return d
			}
			return bdd.False
		}
		var out bdd.Ref
		switch g.Type {
		case netlist.Not, netlist.Buff:
			out = din(0)
			if out == bdd.False {
				continue
			}
		case netlist.Xor, netlist.Xnor:
			da, db := din(0), din(1)
			if da == bdd.False && db == bdd.False {
				continue // selective trace: no difference reaches this gate
			}
			evaluated++
			out = m.Xor(da, db)
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
			da, db := din(0), din(1)
			if da == bdd.False && db == bdd.False {
				continue // selective trace: no difference reaches this gate
			}
			evaluated++
			fa, fb := e.good[g.Fanin[0]], e.good[g.Fanin[1]]
			if g.Type == netlist.Or || g.Type == netlist.Nor {
				fa, fb = m.Not(fa), m.Not(fb)
			}
			// ΔC = fA·ΔB ⊕ fB·ΔA ⊕ ΔA·ΔB, with the usual short cuts when
			// one input carries no difference.
			switch {
			case da == bdd.False:
				out = m.And(fa, db)
			case db == bdd.False:
				out = m.And(fb, da)
			default:
				t := m.Xor(m.And(fa, db), m.And(fb, da))
				out = m.Xor(t, m.And(da, db))
			}
		default:
			panic(fmt.Sprintf("diffprop: unexpected gate type %v", g.Type))
		}
		if out != bdd.False {
			delta[id] = out
		}
	}
	res := Result{PerPO: make([]bdd.Ref, len(c.Outputs)), Complete: bdd.False, GatesEvaluated: evaluated}
	for i, o := range c.Outputs {
		// A missing map entry yields the zero Ref, which is bdd.False: a
		// difference that never reached (or was seeded at) this output.
		d := delta[o]
		res.PerPO[i] = d
		if d != bdd.False {
			res.ObservedPOs = append(res.ObservedPOs, i)
			res.Complete = m.Or(res.Complete, d)
		}
	}
	if e.phaseClock {
		now := time.Now()
		e.lastPhases.Propagate = now.Sub(clk)
		clk = now
	}
	res.Detectability = m.SatFrac(res.Complete)
	if e.phaseClock {
		e.lastPhases.SatCount = time.Since(clk)
	}
	e.analyses++
	e.gateEvals += int64(evaluated)
	// The scan examines every gate; it restricts nothing and skips none.
	e.gatesVisited += int64(c.NumGates())
	e.lastConeGates = c.NumGates()
	if nc := m.NodeCount(); nc > e.peakNodes {
		e.peakNodes = nc
	}
	return res
}

// StuckAt computes the complete test set for a single stuck-at fault
// (net or fan-out-branch site) in the working circuit.
func (e *Engine) StuckAt(f faults.StuckAt) Result {
	e.begin()
	fl := e.good[f.Net]
	var d bdd.Ref
	if f.Stuck {
		d = e.m.Not(fl) // stuck-at-1 differs wherever the line is 0
	} else {
		d = fl // stuck-at-0 differs wherever the line is 1
	}
	if !f.IsBranch() {
		return e.propagate(map[int]bdd.Ref{f.Net: d}, nil)
	}
	return e.propagate(nil, map[pinKey]bdd.Ref{{f.Gate, f.Pin}: d})
}

// forcedDelta returns the difference of a line forced to the constant v:
// where the good value disagrees with v. Complements are memoized per
// analysis (begin clears the memo): with complement edges Not itself is a
// free ref flip, but a multi-fault seed re-derives the same forced
// difference once per consuming pin, and the memo keeps that to one
// derivation per site however many pins read it.
func (e *Engine) forcedDelta(net int, v bool) bdd.Ref {
	if !v {
		return e.good[net]
	}
	if d, ok := e.notMemo[net]; ok {
		return d
	}
	d := e.m.Not(e.good[net])
	if e.notMemo == nil {
		e.notMemo = make(map[int]bdd.Ref, 8)
	}
	e.notMemo[net] = d
	return d
}

// MultipleStuckAt computes the complete test set of a multiple stuck-at
// fault: all component faults present simultaneously. The Table 1
// identities are valid for arbitrary input differences, so the same
// propagation applies; the only addition is that a forced site overrides
// any difference arriving from upstream component faults (its faulty
// value is the constant regardless). This is the machinery behind the
// paper's remark that any fault restricted to the logical domain can be
// addressed, and it powers the X5 double-fault experiment in the style of
// Hughes & McCluskey (the paper's ref [2]).
func (e *Engine) MultipleStuckAt(fs []faults.StuckAt) Result {
	e.begin()
	sd := seeds{forceNet: map[int]bool{}, forcePin: map[pinKey]bool{}}
	for _, f := range fs {
		if f.IsBranch() {
			sd.forcePin[pinKey{f.Gate, f.Pin}] = f.Stuck
		} else {
			sd.forceNet[f.Net] = f.Stuck
		}
	}
	return e.propagateSeeds(sd)
}

// GateSubstitution computes the complete test set of a gate replacement
// fault: the gate driving the net computes wrongType instead of its own
// function, over the same fan-ins. The difference seed is simply
// f_gate ⊕ wrongType(f_fanins), demonstrating the paper's conclusion that
// Difference Propagation addresses "more logical fault models than just
// the single stuck-at fault".
func (e *Engine) GateSubstitution(gate int, wrongType netlist.GateType) Result {
	e.begin()
	g := e.Circuit.Gates[gate]
	if g.Type == netlist.Input {
		panic("diffprop: cannot substitute a primary input")
	}
	unary := wrongType == netlist.Not || wrongType == netlist.Buff
	if unary != (len(g.Fanin) == 1) {
		panic(fmt.Sprintf("diffprop: arity mismatch substituting %v for %v", wrongType, g.Type))
	}
	m := e.m
	var wrong bdd.Ref
	switch wrongType {
	case netlist.Not:
		wrong = m.Not(e.good[g.Fanin[0]])
	case netlist.Buff:
		wrong = e.good[g.Fanin[0]]
	case netlist.And:
		wrong = m.And(e.good[g.Fanin[0]], e.good[g.Fanin[1]])
	case netlist.Nand:
		wrong = m.Nand(e.good[g.Fanin[0]], e.good[g.Fanin[1]])
	case netlist.Or:
		wrong = m.Or(e.good[g.Fanin[0]], e.good[g.Fanin[1]])
	case netlist.Nor:
		wrong = m.Nor(e.good[g.Fanin[0]], e.good[g.Fanin[1]])
	case netlist.Xor:
		wrong = m.Xor(e.good[g.Fanin[0]], e.good[g.Fanin[1]])
	case netlist.Xnor:
		wrong = m.Xnor(e.good[g.Fanin[0]], e.good[g.Fanin[1]])
	default:
		panic(fmt.Sprintf("diffprop: cannot substitute gate type %v", wrongType))
	}
	d := m.Xor(e.good[gate], wrong)
	return e.propagate(map[int]bdd.Ref{gate: d}, nil)
}

// FeedbackChecker returns the engine's fan-out reachability table (built
// in New, immutable, aliased by every Share view and Clone). It screens
// feedback bridges in O(1) per pair and provides the packed cone rows the
// worklist propagation merges per fault.
func (e *Engine) FeedbackChecker() *faults.Reachability {
	if e.reach == nil {
		// Zero-value safety only; New always populates the table.
		e.reach = faults.NewReachability(e.Circuit)
	}
	return e.reach
}

// Bridging computes the complete test set for a two-wire non-feedback
// bridging fault. The difference seeds follow directly from the wired
// functions: for a wired-AND bridge F_u = F_v = f_u∧f_v, so
// Δ_u = f_u·¬f_v and Δ_v = f_v·¬f_u; dually for wired-OR.
func (e *Engine) Bridging(b faults.Bridging) Result {
	if e.FeedbackChecker().IsFeedback(b.U, b.V) {
		panic(fmt.Sprintf("diffprop: %v is a feedback bridge", b))
	}
	e.begin()
	m := e.m
	fu, fv := e.good[b.U], e.good[b.V]
	var du, dv bdd.Ref
	if b.Kind == faults.WiredAND {
		du = m.And(fu, m.Not(fv))
		dv = m.And(fv, m.Not(fu))
	} else {
		du = m.And(m.Not(fu), fv)
		dv = m.And(m.Not(fv), fu)
	}
	return e.propagate(map[int]bdd.Ref{b.U: du, b.V: dv}, nil)
}

// Observability computes the exact observability function of a net: the
// set of input vectors under which inverting the net changes at least one
// primary output — the OR over outputs of the Boolean difference. It is
// obtained by seeding a constant-true difference at the net, which is how
// the CATAPULT-style factored approach (the paper's §3 contrast) derives
// test sets as excitation ∧ observability. For a net fault,
//
//	T(SA0) = f_net ∧ Obs(net),   T(SA1) = ¬f_net ∧ Obs(net),
//
// which FactoredStuckAt exploits and the tests verify against the direct
// difference propagation.
func (e *Engine) Observability(net int) bdd.Ref {
	e.begin()
	return e.propagate(map[int]bdd.Ref{net: bdd.True}, nil).Complete
}

// PinObservability is Observability for a single fan-out branch: the set
// of vectors under which inverting only that gate input pin is visible at
// some primary output.
func (e *Engine) PinObservability(gate, pin int) bdd.Ref {
	e.begin()
	return e.propagate(nil, map[pinKey]bdd.Ref{{gate, pin}: bdd.True}).Complete
}

// FactoredStuckAt computes a stuck-at fault's complete test set the
// CATAPULT way — observability function ANDed with the excitation
// condition — rather than by propagating the fault's own difference. The
// result is identical to StuckAt (verified in tests); the method exists
// as the baseline DP is contrasted with, and because a net's
// observability can be shared across both polarities.
func (e *Engine) FactoredStuckAt(f faults.StuckAt) Result {
	var obs bdd.Ref
	if f.IsBranch() {
		obs = e.PinObservability(f.Gate, f.Pin)
	} else {
		obs = e.Observability(f.Net)
	}
	m := e.m
	exc := e.good[f.Net]
	if f.Stuck {
		exc = m.Not(exc)
	}
	complete := m.And(exc, obs)
	res := Result{Complete: complete, Detectability: m.SatFrac(complete)}
	return res
}

// WitnessVector extracts one test vector (primary-input declaration
// order) from a result's complete test set, filling don't-cares with
// zero. It returns nil for undetectable faults. Only meaningful without
// functional decomposition (cut variables are ignored).
func (e *Engine) WitnessVector(res Result) []bool {
	cube := e.m.AnySat(res.Complete)
	if cube == nil {
		return nil
	}
	v2i := e.VarToInput()
	vec := make([]bool, len(e.Circuit.Inputs))
	for v, s := range cube {
		if v2i[v] >= 0 && s == 1 {
			vec[v2i[v]] = true
		}
	}
	return vec
}

// MinimalTestCube widens a witness of the complete test set into a
// locally minimal test cube: starting from an AnySat path cube, every
// specified literal that can become a don't-care without leaving the test
// set is dropped. The result (one entry per BDD variable: 0, 1, or -1)
// is a cube all of whose completions are tests — handy for test-set
// compaction and for human-readable fault reports. Returns nil for
// undetectable faults.
func (e *Engine) MinimalTestCube(res Result) []int8 {
	m := e.m
	cube := m.AnySat(res.Complete)
	if cube == nil {
		return nil
	}
	lit := func(v int, s int8) bdd.Ref {
		if s == 1 {
			return m.Var(v)
		}
		return m.NVar(v)
	}
	// Widening literal v tests the cube prefix[v] ∧ suffix[v+1], where the
	// prefix holds the literals kept so far and the suffix the not-yet-
	// visited ones. Maintaining both as running conjunctions needs O(vars)
	// BDD operations total instead of rebuilding the cube from scratch
	// (O(vars²)) after every candidate drop; the drop decisions — and hence
	// the resulting cube — are identical.
	notT := m.Not(res.Complete)
	suffix := make([]bdd.Ref, len(cube)+1)
	suffix[len(cube)] = bdd.True
	for v := len(cube) - 1; v >= 0; v-- {
		suffix[v] = suffix[v+1]
		if cube[v] >= 0 {
			suffix[v] = m.And(suffix[v], lit(v, cube[v]))
		}
	}
	prefix := bdd.True
	for v := range cube {
		if cube[v] < 0 {
			continue
		}
		// The widened cube must still imply the complete test set:
		// cube ∧ ¬T ≡ 0.
		if m.And(m.And(prefix, suffix[v+1]), notT) == bdd.False {
			cube[v] = -1
			continue
		}
		prefix = m.And(prefix, lit(v, cube[v]))
	}
	return cube
}

// StuckAtUpperBound returns the syndrome bound on the fault's
// detectability (§4.1): the syndrome of the line for stuck-at-0, its
// complement for stuck-at-1 — excitation alone caps the test-set size.
func (e *Engine) StuckAtUpperBound(f faults.StuckAt) float64 {
	s := e.Syndrome(f.Net)
	if f.Stuck {
		return 1 - s
	}
	return s
}

// BridgingUpperBound returns the excitation bound for a bridging fault:
// the fault is excited exactly where the two wires disagree, so
// |f_u ⊕ f_v| / 2^n bounds the detectability for both wired-AND and
// wired-OR behavior.
func (e *Engine) BridgingUpperBound(b faults.Bridging) float64 {
	return e.m.SatFrac(e.m.Xor(e.good[b.U], e.good[b.V]))
}

// Adherence is the paper's §4.1 metric: detectability divided by its
// excitation upper bound — the share of exciting minterms that are
// actually tests. It returns (value, ok); ok is false when the bound is
// zero (the fault cannot even be excited).
func Adherence(detectability, upperBound float64) (float64, bool) {
	if upperBound <= 0 {
		return 0, false
	}
	a := detectability / upperBound
	if a > 1 {
		// Guard against float rounding; exact arithmetic guarantees <= 1.
		a = 1
	}
	return a, true
}

// BridgeActsStuckAt implements the Figure 5 classification: the number of
// variables in the faulty function at the bridge site is counted, and a
// count of zero means the bridged wires are stuck at a constant — the
// bridging fault is equivalent to a (double) stuck-at fault. For a
// wired-AND bridge the site function is f_u∧f_v; for wired-OR, f_u∨f_v.
func (e *Engine) BridgeActsStuckAt(b faults.Bridging) bool {
	m := e.m
	var site bdd.Ref
	if b.Kind == faults.WiredAND {
		site = m.And(e.good[b.U], e.good[b.V])
	} else {
		site = m.Or(e.good[b.U], e.good[b.V])
	}
	return m.SupportSize(site) == 0
}

// DFSOrder returns a variable order produced by depth-first traversal of
// the circuit from the primary outputs, visiting fan-ins in pin order —
// the classic topology-driven ordering heuristic offered as an
// alternative to benchmark declaration order.
func DFSOrder(c *netlist.Circuit) []string {
	seen := make([]bool, c.NumNets())
	var order []string
	var walk func(int)
	walk = func(net int) {
		if seen[net] {
			return
		}
		seen[net] = true
		g := c.Gates[net]
		if g.Type == netlist.Input {
			order = append(order, g.Name)
			return
		}
		for _, f := range g.Fanin {
			walk(f)
		}
	}
	for _, o := range c.Outputs {
		walk(o)
	}
	// Unreachable inputs still need a variable.
	for _, in := range c.Inputs {
		if !seen[in] {
			order = append(order, c.Gates[in].Name)
		}
	}
	return order
}
