package diffprop

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/bdd"
	"repro/internal/circuits"
	"repro/internal/faults"
)

// analyzeLimited runs one StuckAt query and reports whether it aborted
// with bdd.ErrNodeLimit (recovering the engine if so).
func analyzeLimited(t *testing.T, e *Engine, f faults.StuckAt) (res Result, aborted bool) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, bdd.ErrNodeLimit) {
			t.Fatalf("panic value %v, want bdd.ErrNodeLimit", r)
		}
		e.Recover()
		aborted = true
	}()
	return e.StuckAt(f), false
}

// scalars strips the manager-bound refs so results survive recoveries.
func scalars(r Result) Result {
	r.PerPO = nil
	r.Complete = bdd.False
	r.ObservedPOs = append([]int(nil), r.ObservedPOs...)
	return r
}

func TestNodeLimitAbortEntersLadder(t *testing.T) {
	c := circuits.MustGet("alu181")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)

	// References come from a second engine so the abort engine's node table
	// holds only the good functions when the watermark is armed (queries
	// leave garbage that inflates the 1.5x headroom floor).
	ref, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Result, 4)
	for i := range want {
		want[i] = scalars(ref.StuckAt(fs[i]))
	}

	// NodeLimit=1 arms the minimum possible watermark (1.5x live), which a
	// real propagation on the ALU must blow.
	e.SetRecovery(Recovery{NodeLimit: 1})
	if _, aborted := analyzeLimited(t, e, fs[0]); !aborted {
		t.Fatal("NodeLimit=1 did not abort the analysis")
	}
	if got := e.Stats().NodesReclaimed; got <= 0 {
		t.Fatalf("ladder GC reclaimed %d nodes after an abort, want > 0", got)
	}

	// After the ladder, an unconstrained engine must reproduce the
	// reference results exactly.
	e.SetRecovery(Recovery{})
	for i := range want {
		if got := scalars(e.StuckAt(fs[i])); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("fault %d after ladder: %+v != reference %+v", i, got, want[i])
		}
	}
}

func TestBeginRaisesWatermarkToHeadroom(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.SetRecovery(Recovery{NodeLimit: 1})
	e.begin()
	live := e.m.NodeCount()
	if got := e.m.NodeLimit(); got < live+live/2 {
		t.Fatalf("armed watermark %d leaves no headroom over %d live nodes", got, live)
	}
	// Disarming the ladder disarms the watermark on the next begin.
	e.SetRecovery(Recovery{})
	e.begin()
	if got := e.m.NodeLimit(); got != 0 {
		t.Fatalf("cleared recovery left watermark %d armed", got)
	}
}

func TestRecoverSiftRungFiresOnce(t *testing.T) {
	c := circuits.MustGet("alu181")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	ref, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := scalars(ref.StuckAt(fs[0]))

	// Watermark 1 guarantees the post-GC live set still exceeds it, so the
	// sift rung must fire on the first recovery and be skipped afterwards.
	e.SetRecovery(Recovery{NodeLimit: 1, SiftPasses: DefaultSiftPasses})
	if _, aborted := analyzeLimited(t, e, fs[0]); !aborted {
		t.Fatal("NodeLimit=1 did not abort the analysis")
	}
	if got := e.Stats().Sifts; got != 1 {
		t.Fatalf("sift rung ran %d times after first recovery, want 1", got)
	}
	// Run the remaining faults; however many more abort, the sift rung must
	// never fire again on this engine's fixed good set.
	more := 0
	for _, f := range fs[1:] {
		if _, aborted := analyzeLimited(t, e, f); aborted {
			more++
		}
	}
	if more == 0 {
		t.Fatal("no further fault aborted; the once-only guard went untested")
	}
	if got := e.Stats().Sifts; got != 1 {
		t.Fatalf("sift rung re-ran on a fixed good set: %d runs, want 1", got)
	}

	// The reordered engine must still compute exact results.
	e.SetRecovery(Recovery{})
	if got := scalars(e.StuckAt(fs[0])); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-sift result %+v != reference %+v", got, want)
	}
	// Clones inherit the sifted order and its once-only guard.
	if cl := e.Clone(); cl.lastSiftSize == 0 {
		t.Fatal("clone dropped the sift-once guard")
	}
}

func TestRelaxBudgetScalesAndRestores(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Disabled rung: multiplier <= 1.
	e.SetFaultBudget(FaultBudget{Ops: 100})
	if _, ok := e.RelaxBudget(); ok {
		t.Fatal("RelaxBudget armed with RetryMultiplier unset")
	}
	// Nothing to relax: no bound armed.
	e.SetFaultBudget(FaultBudget{})
	e.SetRecovery(Recovery{RetryMultiplier: 8})
	if _, ok := e.RelaxBudget(); ok {
		t.Fatal("RelaxBudget armed with no bound to relax")
	}

	e.SetFaultBudget(FaultBudget{Ops: 100, Wall: time.Second})
	e.SetRecovery(Recovery{NodeLimit: 1000, RetryMultiplier: 8})
	restore, ok := e.RelaxBudget()
	if !ok {
		t.Fatal("RelaxBudget refused to arm")
	}
	if got := e.FaultBudget(); got.Ops != 800 || got.Wall != 8*time.Second {
		t.Fatalf("relaxed budget = %+v, want 8x", got)
	}
	if got := e.Recovery().NodeLimit; got != 8000 {
		t.Fatalf("relaxed node limit = %d, want 8000", got)
	}
	restore()
	if got := e.FaultBudget(); got != (FaultBudget{Ops: 100, Wall: time.Second}) {
		t.Fatalf("restore left budget %+v", got)
	}
	if got := e.Recovery().NodeLimit; got != 1000 {
		t.Fatalf("restore left node limit %d", got)
	}

	// Saturation: a huge bound times a huge multiplier must not overflow.
	e.SetFaultBudget(FaultBudget{Ops: 1 << 61})
	e.SetRecovery(Recovery{RetryMultiplier: 1e9})
	if _, ok := e.RelaxBudget(); !ok {
		t.Fatal("RelaxBudget refused a saturating arm")
	}
	if got := e.FaultBudget().Ops; got != 1<<62 {
		t.Fatalf("saturated ops = %d, want 1<<62", got)
	}
}

func TestRetryRungRescuesBlownFault(t *testing.T) {
	c := circuits.MustGet("alu181")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	want := scalars(e.StuckAt(fs[0]))

	// An ops budget too small for any real propagation, and a retry
	// multiplier large enough that the relaxed attempt is effectively
	// unbounded: the ladder must convert the abort into the exact result.
	e.SetFaultBudget(FaultBudget{Ops: 10})
	e.SetRecovery(Recovery{RetryMultiplier: 1e12})
	if _, aborted := analyzeBudgeted(t, e, fs[0]); !aborted {
		t.Fatal("Ops=10 budget did not abort the analysis")
	}
	restore, ok := e.RelaxBudget()
	if !ok {
		t.Fatal("retry rung refused to arm")
	}
	got, aborted := analyzeBudgeted(t, e, fs[0])
	restore()
	if aborted {
		t.Fatal("relaxed retry still aborted")
	}
	if s := scalars(got); !reflect.DeepEqual(s, want) {
		t.Fatalf("rescued result %+v != reference %+v", s, want)
	}
	// The original tight budget is back in force.
	if _, aborted := analyzeBudgeted(t, e, fs[1]); !aborted {
		t.Fatal("restore did not reinstate the tight budget")
	}
}

func TestCloneCopiesRecovery(t *testing.T) {
	c := circuits.MustGet("c95s")
	e, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := Recovery{NodeLimit: 1 << 20, SiftPasses: 3, RetryMultiplier: 4}
	e.SetRecovery(r)
	if got := e.Clone().Recovery(); got != r {
		t.Fatalf("clone recovery = %+v, want %+v", got, r)
	}
}
