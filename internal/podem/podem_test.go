package podem

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

func TestValueAlgebra(t *testing.T) {
	if D.good() != One || D.faulty() != Zero || DBar.good() != Zero || DBar.faulty() != One {
		t.Fatal("D calculus components wrong")
	}
	if combine(One, Zero) != D || combine(Zero, One) != DBar ||
		combine(One, One) != One || combine(X, One) != X {
		t.Fatal("combine wrong")
	}
	if not3(Zero) != One || not3(One) != Zero || not3(X) != X {
		t.Fatal("not3 wrong")
	}
	for _, v := range []Value{X, Zero, One, D, DBar} {
		if v.String() == "" {
			t.Fatal("empty value name")
		}
	}
}

func TestEval3Tables(t *testing.T) {
	cases := []struct {
		t    netlist.GateType
		in   []Value
		want Value
	}{
		{netlist.And, []Value{One, X}, X},
		{netlist.And, []Value{Zero, X}, Zero}, // controlling value dominates X
		{netlist.Nand, []Value{Zero, X}, One},
		{netlist.Or, []Value{One, X}, One},
		{netlist.Or, []Value{Zero, X}, X},
		{netlist.Nor, []Value{One, X}, Zero},
		{netlist.Xor, []Value{One, X}, X}, // XOR has no controlling value
		{netlist.Xor, []Value{One, One}, Zero},
		{netlist.Xnor, []Value{One, Zero}, Zero},
		{netlist.Not, []Value{X}, X},
		{netlist.Buff, []Value{One}, One},
	}
	for _, tc := range cases {
		if got := eval3(tc.t, tc.in); got != tc.want {
			t.Fatalf("%v%v = %v, want %v", tc.t, tc.in, got, tc.want)
		}
	}
}

// crossValidate checks PODEM against Difference Propagation and the fault
// simulator for every fault in the set.
func crossValidate(t *testing.T, name string, fs []faults.StuckAt) {
	t.Helper()
	e, err := diffprop.New(circuits.MustGet(name), nil)
	if err != nil {
		t.Fatal(err)
	}
	w := e.Circuit
	gen := New(w)
	for _, f := range fs {
		res := gen.Generate(f)
		if res.Aborted {
			t.Fatalf("%s %v: aborted without a limit", name, f.Describe(w))
		}
		dp := e.StuckAt(f)
		if res.Found != dp.Detectable() {
			t.Fatalf("%s %v: PODEM found=%v but DP detectability=%v",
				name, f.Describe(w), res.Found, dp.Detectability)
		}
		if res.Found == res.Redundant {
			t.Fatalf("%s %v: inconsistent result flags %+v", name, f.Describe(w), res)
		}
		if !res.Found {
			continue
		}
		// The PODEM vector must detect the fault per the simulator...
		p := simulate.FromVectors(len(w.Inputs), [][]bool{res.Vector})
		if simulate.CountBits(simulate.DetectStuckAt(w, f, p)) != 1 {
			t.Fatalf("%s %v: PODEM vector %v does not detect the fault",
				name, f.Describe(w), res.Vector)
		}
		// ...and must be a member of DP's complete test set.
		if !e.Manager().Eval(dp.Complete, e.Assignment(res.Vector)) {
			t.Fatalf("%s %v: PODEM vector outside DP's complete test set", name, f.Describe(w))
		}
	}
}

func TestPodemAgainstDPCheckpoints(t *testing.T) {
	for _, name := range []string{"c17", "fadd", "c95s", "alu181", "c432s"} {
		e, err := diffprop.New(circuits.MustGet(name), nil)
		if err != nil {
			t.Fatal(err)
		}
		crossValidate(t, name, faults.CheckpointStuckAts(e.Circuit))
	}
}

func TestPodemAllNetFaultsSmall(t *testing.T) {
	for _, name := range []string{"c17", "fadd"} {
		e, err := diffprop.New(circuits.MustGet(name), nil)
		if err != nil {
			t.Fatal(err)
		}
		crossValidate(t, name, faults.AllStuckAts(e.Circuit))
	}
}

func TestPodemProvesRedundancy(t *testing.T) {
	// z = a OR (a AND b): ab/SA0 is redundant; the decision tree must
	// exhaust and report it.
	c := netlist.New("red")
	a := c.AddInput("a")
	b := c.AddInput("b")
	ab := c.AddGate("ab", netlist.And, a, b)
	z := c.AddGate("z", netlist.Or, a, ab)
	c.MarkOutput(z)
	gen := New(c)
	res := gen.Generate(faults.StuckAt{Net: ab, Gate: -1, Pin: -1, Stuck: false})
	if !res.Redundant || res.Found {
		t.Fatalf("redundant fault not proven: %+v", res)
	}
	// The SA1 counterpart is testable.
	res = gen.Generate(faults.StuckAt{Net: ab, Gate: -1, Pin: -1, Stuck: true})
	if !res.Found {
		t.Fatalf("ab/SA1 must be testable: %+v", res)
	}
}

func TestPodemBacktrackLimit(t *testing.T) {
	// A redundant fault with a tight backtrack limit reports Aborted, not
	// Redundant — the abort is not a proof.
	c := netlist.New("red")
	a := c.AddInput("a")
	b := c.AddInput("b")
	ab := c.AddGate("ab", netlist.And, a, b)
	z := c.AddGate("z", netlist.Or, a, ab)
	c.MarkOutput(z)
	gen := New(c)
	gen.BacktrackLimit = 1
	res := gen.Generate(faults.StuckAt{Net: ab, Gate: -1, Pin: -1, Stuck: false})
	if !res.Aborted || res.Redundant || res.Found {
		t.Fatalf("limit must abort: %+v", res)
	}
}

func TestPodemReusableAcrossFaults(t *testing.T) {
	// A single generator must be reusable without state bleed: run the
	// same fault list twice and demand identical outcomes.
	c := circuits.MustGet("c95s").Decompose2()
	gen := New(c)
	fs := faults.CheckpointStuckAts(c)
	first := make([]Result, len(fs))
	for i, f := range fs {
		first[i] = gen.Generate(f)
	}
	for i, f := range fs {
		again := gen.Generate(f)
		if again.Found != first[i].Found || again.Redundant != first[i].Redundant {
			t.Fatalf("state bleed on %v", f.Describe(c))
		}
	}
}
