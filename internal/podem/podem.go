// Package podem implements the classic PODEM algorithm (Goel 1981):
// path-oriented decision making over primary-input assignments with
// five-valued D-calculus forward implication. It is the "conventional
// ATPG system" the paper contrasts Difference Propagation with in §3 —
// PODEM derives *one* test per fault by search, where DP derives the
// complete test set by function manipulation.
//
// The implementation is complete: it either returns a test vector or
// proves the fault untestable by exhausting the decision tree (unless a
// backtrack limit aborts first). The tests cross-validate it against DP:
// PODEM finds a test exactly when DP's complete test set is non-empty,
// and every PODEM test is a member of that set.
package podem

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/netlist"
)

// Value is the five-valued D-calculus: the pair (good, faulty) with
// unknowns.
type Value uint8

// The five values. D means good=1/faulty=0; DBar the reverse.
const (
	X Value = iota
	Zero
	One
	D
	DBar
)

// String renders the value in conventional notation.
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case D:
		return "D"
	case DBar:
		return "D'"
	}
	return "X"
}

// good returns the fault-free component: 0, 1 or X (as Zero/One/X).
func (v Value) good() Value {
	switch v {
	case Zero, DBar:
		return Zero
	case One, D:
		return One
	}
	return X
}

// faulty returns the faulty-circuit component.
func (v Value) faulty() Value {
	switch v {
	case Zero, D:
		return Zero
	case One, DBar:
		return One
	}
	return X
}

// combine builds a five-valued Value from good/faulty three-valued parts.
func combine(g, f Value) Value {
	switch {
	case g == X || f == X:
		return X
	case g == f:
		return g
	case g == One:
		return D
	default:
		return DBar
	}
}

// not3 negates a three-valued value.
func not3(v Value) Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

// eval3 evaluates a gate in three-valued logic.
func eval3(t netlist.GateType, in []Value) Value {
	switch t {
	case netlist.And, netlist.Nand:
		v := One
		for _, a := range in {
			if a == Zero {
				v = Zero
				break
			}
			if a == X {
				v = X
			}
		}
		if t == netlist.Nand {
			v = not3(v)
		}
		return v
	case netlist.Or, netlist.Nor:
		v := Zero
		for _, a := range in {
			if a == One {
				v = One
				break
			}
			if a == X {
				v = X
			}
		}
		if t == netlist.Nor {
			v = not3(v)
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := Zero
		for _, a := range in {
			if a == X {
				return X
			}
			if a == One {
				v = not3(v)
			}
		}
		if t == netlist.Xnor {
			v = not3(v)
		}
		return v
	case netlist.Not:
		return not3(in[0])
	case netlist.Buff:
		return in[0]
	}
	panic(fmt.Sprintf("podem: cannot evaluate %v", t))
}

// Generator runs PODEM for one circuit.
type Generator struct {
	c *netlist.Circuit
	// BacktrackLimit aborts the search after this many backtracks
	// (0 = unlimited, keeping the algorithm complete).
	BacktrackLimit int

	vals    []Value // per net, five-valued
	inOrder []int   // PI gate ids
	inIndex map[int]int
}

// New builds a generator for the circuit.
func New(c *netlist.Circuit) *Generator {
	g := &Generator{
		c:       c,
		vals:    make([]Value, c.NumNets()),
		inOrder: append([]int(nil), c.Inputs...),
		inIndex: map[int]int{},
	}
	for i, in := range c.Inputs {
		g.inIndex[in] = i
	}
	return g
}

// Result is the outcome for one fault.
type Result struct {
	// Found reports that a test exists; Vector is then the test in PI
	// declaration order (don't-cares filled with false).
	Found  bool
	Vector []bool
	// Redundant reports a completed search with no test (proven
	// untestable). Aborted reports the backtrack limit fired first.
	Redundant  bool
	Aborted    bool
	Backtracks int
}

// imply performs full five-valued forward simulation from the current PI
// assignment with the fault injected.
func (g *Generator) imply(f faults.StuckAt) {
	stuckVal := Zero
	if f.Stuck {
		stuckVal = One
	}
	for id, gate := range g.c.Gates {
		var v Value
		if gate.Type == netlist.Input {
			v = g.vals[id] // set by decisions; X otherwise
			// (decisions write PI slots directly)
		} else {
			goodIn := make([]Value, len(gate.Fanin))
			faultIn := make([]Value, len(gate.Fanin))
			for pin, fin := range gate.Fanin {
				fv := g.vals[fin]
				goodIn[pin] = fv.good()
				fp := fv.faulty()
				if f.IsBranch() && id == f.Gate && pin == f.Pin {
					fp = stuckVal
				}
				faultIn[pin] = fp
			}
			v = combine(eval3(gate.Type, goodIn), eval3(gate.Type, faultIn))
		}
		if !f.IsBranch() && id == f.Net {
			v = combine(v.good(), stuckVal)
		}
		g.vals[id] = v
	}
}

// faultExcited reports whether the fault site currently carries D or D'.
func (g *Generator) faultExcited(f faults.StuckAt) bool {
	var v Value
	if f.IsBranch() {
		// The effective pin value: good from the net, faulty forced.
		net := g.vals[f.Net].good()
		if net == X {
			return false
		}
		stuckVal := Zero
		if f.Stuck {
			stuckVal = One
		}
		return net != stuckVal
	}
	v = g.vals[f.Net]
	return v == D || v == DBar
}

// errorAtPO reports whether any primary output carries D or D'.
func (g *Generator) errorAtPO() bool {
	for _, o := range g.c.Outputs {
		if v := g.vals[o]; v == D || v == DBar {
			return true
		}
	}
	return false
}

// dFrontier returns gates with an X output and at least one D/D' input
// (for branch faults, the faulted gate itself when excited and X).
func (g *Generator) dFrontier(f faults.StuckAt) []int {
	var out []int
	for id, gate := range g.c.Gates {
		if gate.Type == netlist.Input || g.vals[id] != X {
			continue
		}
		for pin, fin := range gate.Fanin {
			v := g.vals[fin]
			isErr := v == D || v == DBar
			if f.IsBranch() && id == f.Gate && pin == f.Pin {
				// The faulted pin carries an error iff the net's good
				// value opposes the stuck value.
				isErr = g.faultExcited(f) && g.vals[f.Net] != X
			}
			if isErr {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// xPathExists reports whether some PO is reachable from the net through
// X-valued nets (the classic X-path check pruning).
func (g *Generator) xPathExists(net int) bool {
	if g.c.IsOutput(net) {
		return true
	}
	seen := make([]bool, g.c.NumNets())
	stack := []int{net}
	seen[net] = true
	fo := g.c.Fanout()
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, consumer := range fo[n] {
			if seen[consumer] || g.vals[consumer] != X {
				continue
			}
			if g.c.IsOutput(consumer) {
				return true
			}
			seen[consumer] = true
			stack = append(stack, consumer)
		}
	}
	return false
}

// controlling returns the controlling input value of a gate type and
// whether one exists.
func controlling(t netlist.GateType) (Value, bool) {
	switch t {
	case netlist.And, netlist.Nand:
		return Zero, true
	case netlist.Or, netlist.Nor:
		return One, true
	}
	return X, false
}

// inversionParity reports whether the gate inverts.
func inversionParity(t netlist.GateType) bool { return t.Inverting() }

// backtrace maps an objective (net, value) to a PI assignment by walking
// backwards through X-valued nets.
func (g *Generator) backtrace(net int, val Value) (pi int, v Value) {
	for {
		gate := g.c.Gates[net]
		if gate.Type == netlist.Input {
			return net, val
		}
		if inversionParity(gate.Type) {
			val = not3(val)
		}
		// Choose an X input: for XOR-likes any; otherwise prefer one that
		// can produce the needed value.
		next := -1
		for _, fin := range gate.Fanin {
			if g.vals[fin] == X {
				next = fin
				break
			}
		}
		if next < 0 {
			// No X input (can happen transiently); fall back to first.
			next = gate.Fanin[0]
		}
		net = next
	}
}

// objective picks the next goal per classic PODEM: excite the fault,
// then advance the D-frontier.
func (g *Generator) objective(f faults.StuckAt) (net int, val Value, ok bool) {
	if !g.faultExcited(f) {
		if g.vals[f.Net].good() != X {
			return 0, X, false // site fixed at the stuck value: conflict
		}
		want := One
		if f.Stuck {
			want = Zero
		}
		return f.Net, want, true
	}
	frontier := g.dFrontier(f)
	for _, gid := range frontier {
		if !g.xPathExists(gid) {
			continue
		}
		gate := g.c.Gates[gid]
		cv, has := controlling(gate.Type)
		for pin, fin := range gate.Fanin {
			if f.IsBranch() && gid == f.Gate && pin == f.Pin {
				continue
			}
			if g.vals[fin] == X {
				if has {
					return fin, not3(cv), true
				}
				return fin, Zero, true // XOR-likes: any binding advances
			}
		}
	}
	return 0, X, false
}

// Generate runs PODEM for one stuck-at fault.
func (g *Generator) Generate(f faults.StuckAt) Result {
	for i := range g.vals {
		g.vals[i] = X
	}
	type decision struct {
		pi      int
		val     Value
		flipped bool
	}
	var stack []decision
	res := Result{}
	g.imply(f)
	for {
		if g.errorAtPO() {
			vec := make([]bool, len(g.inOrder))
			for i, in := range g.inOrder {
				if g.vals[in].good() == One {
					vec[i] = true
				}
			}
			res.Found = true
			res.Vector = vec
			return res
		}
		net, val, ok := g.objective(f)
		if ok {
			pi, v := g.backtrace(net, val)
			if g.vals[pi] == X {
				stack = append(stack, decision{pi: pi, val: v})
				g.vals[pi] = v
				g.imply(f)
				continue
			}
			// Backtrace landed on an assigned PI: dead end; fall through
			// to backtracking.
		}
		// Backtrack.
		for {
			if len(stack) == 0 {
				res.Redundant = true
				return res
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				top.val = not3(top.val)
				g.vals[top.pi] = top.val
				res.Backtracks++
				if g.BacktrackLimit > 0 && res.Backtracks > g.BacktrackLimit {
					res.Aborted = true
					return res
				}
				g.imply(f)
				break
			}
			g.vals[top.pi] = X
			stack = stack[:len(stack)-1]
		}
	}
}
