package diagnose

import (
	"math/rand"
	"testing"

	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
)

func buildDict(t testing.TB, name string) (*Dictionary, *diffprop.Engine) {
	t.Helper()
	e, err := diffprop.New(circuits.MustGet(name), nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	gen := atpg.GenerateStuckAt(e, fs, 11)
	vectors := gen.Vectors
	return Build(e, fs, vectors), e
}

func TestSignatureOps(t *testing.T) {
	s := newSignature(130)
	if !s.Empty() {
		t.Fatal("fresh signature must be empty")
	}
	s.set(0)
	s.set(129)
	if !s.get(0) || !s.get(129) || s.get(64) {
		t.Fatal("bit ops wrong")
	}
	o := newSignature(130)
	o.set(129)
	if s.Distance(o) != 1 || o.Distance(s) != 1 {
		t.Fatal("distance wrong")
	}
	if s.Equal(o) {
		t.Fatal("unequal signatures reported equal")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch must panic")
		}
	}()
	s.Distance(newSignature(10))
}

func TestDictionaryMatchesSimulator(t *testing.T) {
	// Every DP-derived signature must equal the simulator-derived
	// response of a device carrying that fault.
	d, e := buildDict(t, "c95s")
	w := e.Circuit
	for i, f := range d.Faults {
		obs := ObserveStuckAt(w, f, d.Vectors)
		if !d.SignatureOf(i).Equal(obs) {
			t.Fatalf("signature mismatch for %v", f.Describe(w))
		}
	}
}

func TestDiagnoseRecoversInjectedFault(t *testing.T) {
	d, e := buildDict(t, "c95s")
	w := e.Circuit
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		fi := rng.Intn(len(d.Faults))
		obs := ObserveStuckAt(w, d.Faults[fi], d.Vectors)
		cands := d.Diagnose(obs)
		if len(cands) == 0 {
			t.Fatalf("no candidates for injected %v", d.Faults[fi].Describe(w))
		}
		found := false
		for _, c := range cands {
			if c.FaultIndex == fi {
				found = true
			}
			if c.Distance != 0 {
				t.Fatal("Diagnose must return exact matches only")
			}
		}
		if !found {
			t.Fatalf("injected fault %v missing from its own equivalence class", d.Faults[fi].Describe(w))
		}
		// Rank must agree: the nearest candidate has distance 0.
		top := d.Rank(obs, 3)
		if len(top) == 0 || top[0].Distance != 0 {
			t.Fatal("Rank disagrees with Diagnose")
		}
	}
}

func TestDiagnosticResolution(t *testing.T) {
	d, _ := buildDict(t, "c95s")
	if d.NumClasses() < len(d.Faults)/2 {
		t.Fatalf("resolution suspiciously poor: %s", d.Resolution())
	}
	if d.NumClasses() > len(d.Faults) {
		t.Fatal("more classes than faults")
	}
	if d.Resolution() == "" {
		t.Fatal("empty resolution summary")
	}
}

func TestBridgingDefectsOftenEscapeTheDictionary(t *testing.T) {
	// The paper's model-mismatch observation as a diagnosis statement:
	// a substantial share of bridging responses match no stuck-at entry.
	d, e := buildDict(t, "c95s")
	w := e.Circuit
	bs := faults.AllNFBFs(w, faults.WiredAND)
	rng := rand.New(rand.NewSource(17))
	misses, trials := 0, 60
	for i := 0; i < trials; i++ {
		b := bs[rng.Intn(len(bs))]
		obs := ObserveBridging(w, b, d.Vectors)
		if obs.Empty() {
			continue // unexcited by this set; not informative
		}
		if len(d.Diagnose(obs)) == 0 {
			misses++
		}
		// Rank must still produce nearest hypotheses.
		if top := d.Rank(obs, 2); len(top) != 2 {
			t.Fatal("Rank must return k candidates")
		}
	}
	if misses == 0 {
		t.Fatal("every bridging response matched a stuck-at signature — mismatch claim not exercised")
	}
}

func TestRankEdgeCases(t *testing.T) {
	d, _ := buildDict(t, "fadd")
	obs := newSignature(len(d.Vectors) * 2)
	if d.Rank(obs, 0) != nil {
		t.Fatal("k=0 must return nil")
	}
	all := d.Rank(obs, len(d.Faults)+10)
	if len(all) != len(d.Faults) {
		t.Fatalf("oversized k returns %d, want %d", len(all), len(d.Faults))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Distance < all[i-1].Distance {
			t.Fatal("rank not sorted by distance")
		}
	}
}
