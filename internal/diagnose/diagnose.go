// Package diagnose builds full-response fault dictionaries from
// Difference Propagation's per-output complete test sets and locates
// faults from observed tester responses.
//
// Because DP yields, for every fault, the exact difference function at
// every primary output, the dictionary entry for (fault, vector, output)
// is just an evaluation of that function — no fault simulation pass is
// required, though the tests cross-check every signature against the
// independent simulator. The paper's §4.2 observation that stuck-at
// models fit bridging defects poorly shows up here as bridging responses
// that match no stuck-at dictionary entry exactly.
package diagnose

import (
	"fmt"
	"math/bits"

	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

// Signature is a bitset over (vector, output) pairs: bit v*numPOs+o is
// set when the fault makes output o differ from the good value under
// vector v.
type Signature []uint64

func newSignature(nBits int) Signature { return make(Signature, (nBits+63)/64) }

func (s Signature) set(i int)      { s[i/64] |= 1 << uint(i%64) }
func (s Signature) get(i int) bool { return s[i/64]>>uint(i%64)&1 == 1 }

// Empty reports whether no bit is set (the fault never fails a test).
func (s Signature) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Distance returns the Hamming distance between two signatures.
func (s Signature) Distance(o Signature) int {
	if len(s) != len(o) {
		panic("diagnose: signature width mismatch")
	}
	d := 0
	for i := range s {
		d += bits.OnesCount64(s[i] ^ o[i])
	}
	return d
}

// Equal reports whether two signatures are identical.
func (s Signature) Equal(o Signature) bool { return s.Distance(o) == 0 }

// Dictionary is a full-response stuck-at fault dictionary over a fixed
// test set.
type Dictionary struct {
	Circuit *netlist.Circuit
	Faults  []faults.StuckAt
	Vectors [][]bool

	numPOs int
	sigs   []Signature
	// classes groups fault indices with identical signatures — the
	// diagnostic equivalence classes.
	classes map[string][]int
}

// Build constructs the dictionary by evaluating each fault's per-output
// difference functions on every vector.
func Build(e *diffprop.Engine, fs []faults.StuckAt, vectors [][]bool) *Dictionary {
	c := e.Circuit
	d := &Dictionary{
		Circuit: c,
		Faults:  append([]faults.StuckAt(nil), fs...),
		Vectors: vectors,
		numPOs:  len(c.Outputs),
		classes: map[string][]int{},
	}
	assignments := make([][]bool, len(vectors))
	for i, v := range vectors {
		assignments[i] = e.Assignment(v)
	}
	m := e.Manager()
	for fi, f := range fs {
		res := e.StuckAt(f)
		sig := newSignature(len(vectors) * d.numPOs)
		for o, delta := range res.PerPO {
			if delta == 0 { // bdd.False
				continue
			}
			for vi, a := range assignments {
				if m.Eval(delta, a) {
					sig.set(vi*d.numPOs + o)
				}
			}
		}
		d.sigs = append(d.sigs, sig)
		d.classes[sigKey(sig)] = append(d.classes[sigKey(sig)], fi)
	}
	return d
}

func sigKey(s Signature) string {
	b := make([]byte, 0, len(s)*8)
	for _, w := range s {
		for i := 0; i < 8; i++ {
			b = append(b, byte(w>>uint(8*i)))
		}
	}
	return string(b)
}

// SignatureOf returns fault i's expected response signature.
func (d *Dictionary) SignatureOf(i int) Signature { return d.sigs[i] }

// NumClasses returns the number of distinct signatures — the diagnostic
// resolution of the test set (higher is better; equal to len(Faults) when
// every fault is distinguishable).
func (d *Dictionary) NumClasses() int { return len(d.classes) }

// Candidate is one diagnosis hypothesis.
type Candidate struct {
	FaultIndex int
	Fault      faults.StuckAt
	Distance   int
}

// Diagnose returns the faults whose dictionary signature matches the
// observed response exactly (distance 0); an empty result means the
// observed behavior is inconsistent with every modeled stuck-at fault —
// e.g. a bridging defect, per the paper's model-mismatch observation.
func (d *Dictionary) Diagnose(observed Signature) []Candidate {
	var out []Candidate
	for _, fi := range d.classes[sigKey(observed)] {
		out = append(out, Candidate{FaultIndex: fi, Fault: d.Faults[fi], Distance: 0})
	}
	return out
}

// Rank returns the k nearest dictionary entries by Hamming distance to
// the observed response, ties broken by fault index.
func (d *Dictionary) Rank(observed Signature, k int) []Candidate {
	if k <= 0 {
		return nil
	}
	out := make([]Candidate, 0, k)
	worst := -1
	for fi := range d.sigs {
		dist := d.sigs[fi].Distance(observed)
		if len(out) < k {
			out = append(out, Candidate{FaultIndex: fi, Fault: d.Faults[fi], Distance: dist})
			if dist > worst {
				worst = dist
			}
			continue
		}
		if dist >= worst {
			continue
		}
		// Replace the current worst entry.
		wi, wd := 0, -1
		for i, c := range out {
			if c.Distance > wd {
				wi, wd = i, c.Distance
			}
		}
		out[wi] = Candidate{FaultIndex: fi, Fault: d.Faults[fi], Distance: dist}
		worst = 0
		for _, c := range out {
			if c.Distance > worst {
				worst = c.Distance
			}
		}
	}
	// Sort by (distance, index).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Distance < a.Distance || (b.Distance == a.Distance && b.FaultIndex < a.FaultIndex) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}

// ObserveStuckAt produces the response signature a device with the given
// stuck-at fault shows on the dictionary's test set, via the independent
// fault simulator (per-output comparison).
func ObserveStuckAt(c *netlist.Circuit, f faults.StuckAt, vectors [][]bool) Signature {
	return observe(c, vectors, func(single *netlist.Circuit, p *simulate.Patterns) []uint64 {
		return simulate.DetectStuckAt(single, f, p)
	})
}

// ObserveBridging produces the response signature of a bridging defect on
// the same test set.
func ObserveBridging(c *netlist.Circuit, b faults.Bridging, vectors [][]bool) Signature {
	return observe(c, vectors, func(single *netlist.Circuit, p *simulate.Patterns) []uint64 {
		return simulate.DetectBridging(single, b, p)
	})
}

func observe(c *netlist.Circuit, vectors [][]bool, detect func(*netlist.Circuit, *simulate.Patterns) []uint64) Signature {
	p := simulate.FromVectors(len(c.Inputs), vectors)
	sig := newSignature(len(vectors) * len(c.Outputs))
	for o, net := range c.Outputs {
		single := c.Clone()
		single.Outputs = []int{net}
		mask := detect(single, p)
		for vi := 0; vi < len(vectors); vi++ {
			if mask[vi/64]>>uint(vi%64)&1 == 1 {
				sig.set(vi*len(c.Outputs) + o)
			}
		}
	}
	return sig
}

// Resolution summarizes a dictionary's diagnostic power.
func (d *Dictionary) Resolution() string {
	return fmt.Sprintf("%d faults in %d distinguishable classes over %d vectors x %d POs",
		len(d.Faults), d.NumClasses(), len(d.Vectors), d.numPOs)
}
