package circuits

import (
	"fmt"

	"repro/internal/netlist"
)

// adderCell sums up to three operand nets (any of which may be -1 for
// "absent") and returns (sum, carry). carry is -1 when it cannot be raised
// (fewer than two present operands) and is suppressed entirely when
// wantCarry is false, so no dangling unobservable gates are created.
func adderCell(c *netlist.Circuit, prefix string, x, y, z int, wantCarry bool) (sum, carry int) {
	ops := make([]int, 0, 3)
	for _, n := range []int{x, y, z} {
		if n >= 0 {
			ops = append(ops, n)
		}
	}
	switch len(ops) {
	case 0:
		return -1, -1
	case 1:
		return ops[0], -1
	case 2:
		sum = c.AddGate(prefix+"_s", netlist.Xor, ops[0], ops[1])
		if !wantCarry {
			return sum, -1
		}
		carry = c.AddGate(prefix+"_c", netlist.And, ops[0], ops[1])
		return sum, carry
	default:
		t := c.AddGate(prefix+"_t", netlist.Xor, ops[0], ops[1])
		sum = c.AddGate(prefix+"_s", netlist.Xor, t, ops[2])
		if !wantCarry {
			return sum, -1
		}
		g1 := c.AddGate(prefix+"_g1", netlist.And, ops[0], ops[1])
		g2 := c.AddGate(prefix+"_g2", netlist.And, t, ops[2])
		carry = c.AddGate(prefix+"_c", netlist.Or, g1, g2)
		return sum, carry
	}
}

// buildC95s constructs a 4x4 unsigned array multiplier: 8 primary inputs
// (a0..a3, b0..b3), 8 primary outputs (p0..p7 with p0 the LSB), built from
// an AND partial-product array reduced by ripple rows of half/full adders.
// It stands in for the paper's small private benchmark "C95" (see
// DESIGN.md §3); the circuit is in the same size class (~90 gates).
func buildC95s() *netlist.Circuit {
	const w = 4
	c := netlist.New("c95s")
	a := make([]int, w)
	b := make([]int, w)
	for i := 0; i < w; i++ {
		a[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < w; i++ {
		b[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	// Partial products pp[j][i] = a_i AND b_j, weight i+j.
	pp := make([][]int, w)
	for j := 0; j < w; j++ {
		pp[j] = make([]int, w)
		for i := 0; i < w; i++ {
			pp[j][i] = c.AddGate(fmt.Sprintf("pp%d_%d", j, i), netlist.And, a[i], b[j])
		}
	}
	// Accumulate row by row: sum starts as row 0, each later row j is added
	// shifted left by j.
	sum := make([]int, 2*w)
	for i := range sum {
		sum[i] = -1
	}
	for i := 0; i < w; i++ {
		sum[i] = pp[0][i]
	}
	for j := 1; j < w; j++ {
		carry := -1
		for k := j; k < 2*w; k++ {
			addend := -1
			if k-j < w {
				addend = pp[j][k-j]
			}
			if addend < 0 && carry < 0 {
				break
			}
			// The multiplier product fits in 2w bits, so the carry out of
			// the top column is structurally suppressed on the last row.
			wantCarry := !(j == w-1 && k == 2*w-1)
			s, co := adderCell(c, fmt.Sprintf("r%dk%d", j, k), sum[k], addend, carry, wantCarry)
			sum[k] = s
			carry = co
		}
	}
	for k := 0; k < 2*w; k++ {
		if sum[k] < 0 {
			panic(fmt.Sprintf("c95s: product bit %d missing", k))
		}
		// Outputs keep canonical names p0..p7 via buffers only when the net
		// is shared; product nets are unique per column, so rename by
		// marking the net directly.
		c.MarkOutput(sum[k])
	}
	return c
}
