// Package circuits provides the benchmark circuit set used throughout the
// reproduction. It mirrors the paper's evaluation set — C17, a full adder,
// C95, the 74LS181 ALU, C432, C499, C1355 and C1908 — with the caveat
// documented in DESIGN.md §3: the ISCAS-85 netlists themselves are not
// redistributable here, so the larger members are synthesized circuits of
// the same class, size and (for c499s/c1355s) the exact same
// "identical function, XORs expanded into NANDs" relationship the paper's
// minimal-design argument hinges on.
package circuits

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/netlist"
)

// Entry describes one benchmark circuit.
type Entry struct {
	// Name is the catalog key (e.g. "c499s").
	Name string
	// PaperName is the circuit in the paper this one stands in for.
	PaperName string
	// Description summarizes function and provenance.
	Description string
	// Build constructs a fresh copy of the circuit.
	Build func() *netlist.Circuit
}

var (
	registry  = map[string]Entry{}
	nameOrder []string

	cacheMu sync.Mutex
	cache   = map[string]*netlist.Circuit{}
)

func register(e Entry) {
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("circuits: duplicate registration %q", e.Name))
	}
	registry[e.Name] = e
	nameOrder = append(nameOrder, e.Name)
}

// Names returns the catalog names in registration (≈ size) order.
func Names() []string { return append([]string(nil), nameOrder...) }

// Catalog returns all entries in registration order.
func Catalog() []Entry {
	out := make([]Entry, 0, len(nameOrder))
	for _, n := range nameOrder {
		out = append(out, registry[n])
	}
	return out
}

// Lookup returns the entry for name.
func Lookup(name string) (Entry, bool) {
	e, ok := registry[name]
	return e, ok
}

// Get builds (or returns a cached, shared, read-only copy of) the named
// circuit. Callers that mutate the circuit must Clone it first.
func Get(name string) (*netlist.Circuit, error) {
	e, ok := registry[name]
	if !ok {
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("circuits: unknown circuit %q (known: %v)", name, known)
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if c, ok := cache[name]; ok {
		return c, nil
	}
	c := e.Build()
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("circuits: %s fails validation: %v", name, err)
	}
	cache[name] = c
	return c, nil
}

// MustGet is Get for tests and examples; it panics on error.
func MustGet(name string) *netlist.Circuit {
	c, err := Get(name)
	if err != nil {
		panic(err)
	}
	return c
}

// c17Bench is the genuine ISCAS-85 C17 netlist: six NAND gates, five
// inputs, two outputs. Its structure is published in virtually every
// testing textbook.
const c17Bench = `
# c17 iscas example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func buildC17() *netlist.Circuit {
	c, err := netlist.ParseBenchString("c17", c17Bench)
	if err != nil {
		panic(err)
	}
	return c
}

// buildFadd constructs a one-bit full adder from two XORs, two ANDs and an
// OR — the "fulladder circuit" of the paper's benchmark list.
func buildFadd() *netlist.Circuit {
	c := netlist.New("fadd")
	a := c.AddInput("a")
	b := c.AddInput("b")
	cin := c.AddInput("cin")
	axb := c.AddGate("axb", netlist.Xor, a, b)
	sum := c.AddGate("sum", netlist.Xor, axb, cin)
	g1 := c.AddGate("g1", netlist.And, a, b)
	g2 := c.AddGate("g2", netlist.And, axb, cin)
	cout := c.AddGate("cout", netlist.Or, g1, g2)
	c.MarkOutput(sum)
	c.MarkOutput(cout)
	return c
}

func init() {
	register(Entry{
		Name:        "c17",
		PaperName:   "C17",
		Description: "genuine ISCAS-85 C17: 5 PI, 2 PO, 6 NAND gates",
		Build:       buildC17,
	})
	register(Entry{
		Name:        "fadd",
		PaperName:   "full adder",
		Description: "one-bit full adder: 3 PI, 2 PO, 5 gates",
		Build:       buildFadd,
	})
	register(Entry{
		Name:        "c95s",
		PaperName:   "C95",
		Description: "4x4 array multiplier standing in for the authors' small private benchmark C95",
		Build:       buildC95s,
	})
	register(Entry{
		Name:        "alu181",
		PaperName:   "74LS181",
		Description: "gate-level 74181 4-bit ALU (X/Y + expanded carry lookahead): 14 PI, 8 PO",
		Build:       buildALU181,
	})
	register(Entry{
		Name:        "c432s",
		PaperName:   "C432",
		Description: "27-request, 9-group priority interrupt controller standing in for C432 (36 PI, 7 PO)",
		Build:       buildC432s,
	})
	register(Entry{
		Name:        "c499s",
		PaperName:   "C499",
		Description: "32-bit Hamming single-error corrector standing in for C499 (41 PI, 32 PO)",
		Build:       buildC499s,
	})
	register(Entry{
		Name:        "c1355s",
		PaperName:   "C1355",
		Description: "c499s with every XOR expanded into its four-NAND equivalent — functionally identical to c499s by construction, exactly the C499/C1355 relationship",
		Build:       buildC1355s,
	})
	register(Entry{
		Name:        "c1908s",
		PaperName:   "C1908",
		Description: "16-bit SEC/DED corrector with tag parity chain, NAND-expanded, standing in for C1908 (33 PI, 25 PO)",
		Build:       buildC1908s,
	})
}
