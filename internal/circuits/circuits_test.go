package circuits

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestCatalogShapes(t *testing.T) {
	want := []struct {
		name   string
		nPI    int
		nPO    int
		minGat int
		maxGat int
	}{
		{"c17", 5, 2, 6, 6},
		{"fadd", 3, 2, 5, 5},
		{"c95s", 8, 8, 60, 140},
		{"alu181", 14, 8, 50, 110},
		{"c432s", 36, 7, 90, 260},
		{"c499s", 41, 32, 150, 320},
		{"c1355s", 41, 32, 450, 1100},
		{"c1908s", 33, 25, 500, 1400},
	}
	if len(Names()) != len(want) {
		t.Fatalf("catalog has %d entries, want %d", len(Names()), len(want))
	}
	for i, w := range want {
		if Names()[i] != w.name {
			t.Fatalf("catalog order: got %s at %d, want %s", Names()[i], i, w.name)
		}
		c := MustGet(w.name)
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		if len(c.Inputs) != w.nPI || len(c.Outputs) != w.nPO {
			t.Errorf("%s: %d PI / %d PO, want %d / %d", w.name, len(c.Inputs), len(c.Outputs), w.nPI, w.nPO)
		}
		if g := c.NumGates(); g < w.minGat || g > w.maxGat {
			t.Errorf("%s: %d gates, want within [%d, %d]", w.name, g, w.minGat, w.maxGat)
		}
	}
}

func TestGetCachesAndRejectsUnknown(t *testing.T) {
	a := MustGet("c17")
	b := MustGet("c17")
	if a != b {
		t.Fatal("Get must return the shared cached instance")
	}
	if _, err := Get("nonexistent"); err == nil {
		t.Fatal("unknown circuit must error")
	}
	if e, ok := Lookup("c499s"); !ok || e.PaperName != "C499" {
		t.Fatal("Lookup broken")
	}
	if _, ok := Lookup("zzz"); ok {
		t.Fatal("Lookup must miss unknown names")
	}
}

func TestFaddTruth(t *testing.T) {
	c := MustGet("fadd")
	for i := 0; i < 8; i++ {
		a, b, cin := i&1, i>>1&1, i>>2&1
		out := c.EvalBool([]bool{a == 1, b == 1, cin == 1})
		total := a + b + cin
		if out[0] != (total%2 == 1) || out[1] != (total >= 2) {
			t.Fatalf("fadd(%d,%d,%d) = %v", a, b, cin, out)
		}
	}
}

func TestC95sIsA4x4Multiplier(t *testing.T) {
	c := MustGet("c95s")
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			in := make([]bool, 8)
			for i := 0; i < 4; i++ {
				in[i] = a>>i&1 == 1
				in[4+i] = b>>i&1 == 1
			}
			out := c.EvalBool(in)
			got := 0
			for i, v := range out {
				if v {
					got |= 1 << i
				}
			}
			if got != a*b {
				t.Fatalf("c95s(%d, %d) = %d, want %d", a, b, got, a*b)
			}
		}
	}
}

// alu181Behavioral computes the reference outputs from the X/Y carry
// equations, independently of the gate netlist.
func alu181Behavioral(a, b, s int, m, cn bool) (f int, cn4, p, g, aeqb bool) {
	bit := func(v, i int) bool { return v>>uint(i)&1 == 1 }
	var x, y [4]bool
	for i := 0; i < 4; i++ {
		ai, bi := bit(a, i), bit(b, i)
		x[i] = !(ai || (bi && bit(s, 0)) || (!bi && bit(s, 1)))
		y[i] = !((ai && !bi && bit(s, 2)) || (ai && bi && bit(s, 3)))
	}
	carry := [5]bool{!cn}
	for k := 0; k < 4; k++ {
		carry[k+1] = !y[k] || (!x[k] && carry[k])
	}
	for i := 0; i < 4; i++ {
		z := m || carry[i]
		if (x[i] != y[i]) != z {
			f |= 1 << i
		}
	}
	cn4 = !carry[4]
	p = !(!x[0] && !x[1] && !x[2] && !x[3])
	gg := !y[3] || (!x[3] && !y[2]) || (!x[3] && !x[2] && !y[1]) || (!x[3] && !x[2] && !x[1] && !y[0])
	g = !gg
	aeqb = f == 15
	return
}

func alu181Inputs(a, b, s int, m, cn bool) []bool {
	in := make([]bool, 14)
	for i := 0; i < 4; i++ {
		in[i] = a>>i&1 == 1
		in[4+i] = b>>i&1 == 1
		in[8+i] = s>>i&1 == 1
	}
	in[12] = m
	in[13] = cn
	return in
}

func TestALU181AgainstBehavioralExhaustive(t *testing.T) {
	c := MustGet("alu181")
	for v := 0; v < 1<<14; v++ {
		a := v & 15
		b := v >> 4 & 15
		s := v >> 8 & 15
		m := v>>12&1 == 1
		cn := v>>13&1 == 1
		out := c.EvalBool(alu181Inputs(a, b, s, m, cn))
		f := 0
		for i := 0; i < 4; i++ {
			if out[i] {
				f |= 1 << i
			}
		}
		wf, wcn4, wp, wg, waeqb := alu181Behavioral(a, b, s, m, cn)
		if f != wf || out[4] != wcn4 || out[5] != wp || out[6] != wg || out[7] != waeqb {
			t.Fatalf("alu181(a=%d b=%d s=%04b m=%v cn=%v): F=%d cn4=%v p=%v g=%v aeqb=%v, want F=%d cn4=%v p=%v g=%v aeqb=%v",
				a, b, s, m, cn, f, out[4], out[5], out[6], out[7], wf, wcn4, wp, wg, waeqb)
		}
	}
}

// TestALU181DatasheetModes pins the netlist to the well-known 74181
// function table entries rather than to our own equations.
func TestALU181DatasheetModes(t *testing.T) {
	c := MustGet("alu181")
	fOf := func(a, b, s int, m, cn bool) int {
		out := c.EvalBool(alu181Inputs(a, b, s, m, cn))
		f := 0
		for i := 0; i < 4; i++ {
			if out[i] {
				f |= 1 << i
			}
		}
		return f
	}
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			// Logic modes (M=1).
			if got := fOf(a, b, 0b0000, true, true); got != ^a&15 {
				t.Fatalf("S=0000 M=1: F(%d)=%d, want NOT A", a, got)
			}
			if got := fOf(a, b, 0b1111, true, true); got != a {
				t.Fatalf("S=1111 M=1: F=%d, want A=%d", got, a)
			}
			if got := fOf(a, b, 0b1010, true, true); got != b {
				t.Fatalf("S=1010 M=1: F=%d, want B=%d", got, b)
			}
			if got := fOf(a, b, 0b0110, true, true); got != a^b {
				t.Fatalf("S=0110 M=1: F=%d, want A xor B=%d", got, a^b)
			}
			if got := fOf(a, b, 0b1011, true, true); got != a&b {
				t.Fatalf("S=1011 M=1: F=%d, want AB=%d", got, a&b)
			}
			if got := fOf(a, b, 0b1110, true, true); got != a|b {
				t.Fatalf("S=1110 M=1: F=%d, want A+B=%d", got, a|b)
			}
			// Arithmetic modes (M=0); cn high means "no carry" for
			// active-high data.
			if got := fOf(a, b, 0b1001, false, true); got != (a+b)&15 {
				t.Fatalf("S=1001 M=0 Cn=1: F=%d, want A plus B=%d", got, (a+b)&15)
			}
			if got := fOf(a, b, 0b1001, false, false); got != (a+b+1)&15 {
				t.Fatalf("S=1001 M=0 Cn=0: F=%d, want A plus B plus 1=%d", got, (a+b+1)&15)
			}
			if got := fOf(a, b, 0b0110, false, true); got != (a-b-1)&15 {
				t.Fatalf("S=0110 M=0 Cn=1: F=%d, want A minus B minus 1=%d", got, (a-b-1)&15)
			}
			if got := fOf(a, b, 0b0000, false, true); got != a {
				t.Fatalf("S=0000 M=0 Cn=1: F=%d, want A=%d", got, a)
			}
			if got := fOf(a, b, 0b1100, false, true); got != (a+a)&15 {
				t.Fatalf("S=1100 M=0 Cn=1: F=%d, want A plus A=%d", got, (a+a)&15)
			}
		}
	}
	// Carry-out spot checks: adding with a resulting carry drives cn4 low
	// (active-low, matching cn's polarity).
	out := c.EvalBool(alu181Inputs(15, 1, 0b1001, false, true))
	if out[4] != false {
		t.Fatal("15 plus 1 must produce a carry (cn4 low)")
	}
	out = c.EvalBool(alu181Inputs(1, 1, 0b1001, false, true))
	if out[4] != true {
		t.Fatal("1 plus 1 must not produce a carry (cn4 high)")
	}
}

// c432sBehavioral is the reference model of the priority controller.
func c432sBehavioral(r [27]bool, e [9]bool) (any bool, v int, q int) {
	act := [9]bool{}
	var gated [9][3]bool
	for g := 0; g < 9; g++ {
		for j := 0; j < 3; j++ {
			gated[g][j] = r[3*g+j] && e[g]
			act[g] = act[g] || gated[g][j]
		}
	}
	winner := -1
	for g := 0; g < 9; g++ {
		if act[g] {
			winner = g
			any = true
			break
		}
	}
	if winner < 0 {
		return false, 0, 0
	}
	v = winner
	for j := 0; j < 3; j++ {
		if gated[winner][j] {
			q = j
			break
		}
	}
	return
}

func TestC432sAgainstBehavioral(t *testing.T) {
	c := MustGet("c432s")
	rng := rand.New(rand.NewSource(41))
	check := func(r [27]bool, e [9]bool) {
		t.Helper()
		in := make([]bool, 36)
		for i := 0; i < 27; i++ {
			in[i] = r[i]
		}
		for i := 0; i < 9; i++ {
			in[27+i] = e[i]
		}
		out := c.EvalBool(in)
		wantAny, wantV, wantQ := c432sBehavioral(r, e)
		gotV := 0
		for i := 0; i < 4; i++ {
			if out[1+i] {
				gotV |= 1 << (3 - i)
			}
		}
		gotQ := 0
		if out[5] {
			gotQ |= 2
		}
		if out[6] {
			gotQ |= 1
		}
		if out[0] != wantAny {
			t.Fatalf("any = %v, want %v (r=%v e=%v)", out[0], wantAny, r, e)
		}
		if wantAny && (gotV != wantV || gotQ != wantQ) {
			t.Fatalf("v=%d q=%d, want v=%d q=%d (r=%v e=%v)", gotV, gotQ, wantV, wantQ, r, e)
		}
	}
	// Directed cases: single request at every position, all enables on.
	for i := 0; i < 27; i++ {
		var r [27]bool
		var e [9]bool
		for g := range e {
			e[g] = true
		}
		r[i] = true
		check(r, e)
	}
	// Disabled groups must be invisible to priority.
	{
		var r [27]bool
		var e [9]bool
		r[0], r[26] = true, true
		e[8] = true // only group 8 enabled; winner must be group 8
		check(r, e)
	}
	// Random cases.
	for trial := 0; trial < 4000; trial++ {
		var r [27]bool
		var e [9]bool
		for i := range r {
			r[i] = rng.Intn(2) == 1
		}
		for i := range e {
			e[i] = rng.Intn(3) > 0
		}
		check(r, e)
	}
}

// hammingEncode32 computes the 8 check bits for 32 data bits using the same
// column codes as the circuit generator.
func hammingEncode32(data uint32) uint8 {
	codes := hammingCodes(32, 8)
	var k uint8
	for i := 0; i < 32; i++ {
		if data>>uint(i)&1 == 1 {
			k ^= uint8(codes[i])
		}
	}
	return k
}

func c499sEval(t *testing.T, c *netlist.Circuit, data uint32, check uint8, en bool) uint32 {
	t.Helper()
	in := make([]bool, 41)
	for i := 0; i < 32; i++ {
		in[i] = data>>uint(i)&1 == 1
	}
	for i := 0; i < 8; i++ {
		in[32+i] = check>>uint(i)&1 == 1
	}
	in[40] = en
	out := c.EvalBool(in)
	var got uint32
	for i, v := range out {
		if v {
			got |= 1 << uint(i)
		}
	}
	return got
}

func testSECCircuit(t *testing.T, name string) {
	c := MustGet(name)
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		data := rng.Uint32()
		check := hammingEncode32(data)
		// Clean word passes through.
		if got := c499sEval(t, c, data, check, true); got != data {
			t.Fatalf("%s: clean word %08x corrupted to %08x", name, data, got)
		}
		// Any single data-bit error is corrected when enabled.
		bit := uint(rng.Intn(32))
		if got := c499sEval(t, c, data^(1<<bit), check, true); got != data {
			t.Fatalf("%s: data error at %d not corrected: %08x -> %08x", name, bit, data, got)
		}
		// ...and passed through unmodified when disabled.
		if got := c499sEval(t, c, data^(1<<bit), check, false); got != data^(1<<bit) {
			t.Fatalf("%s: en=0 must not correct", name)
		}
		// A single check-bit error must not corrupt the data.
		cbit := uint(rng.Intn(8))
		if got := c499sEval(t, c, data, check^(1<<cbit), true); got != data {
			t.Fatalf("%s: check error at %d corrupted data", name, cbit)
		}
	}
}

func TestC499sCorrectsSingleErrors(t *testing.T) { testSECCircuit(t, "c499s") }

func TestC1355sIsC499sExpanded(t *testing.T) {
	testSECCircuit(t, "c1355s")
	a := MustGet("c499s")
	b := MustGet("c1355s")
	// Identical function on random vectors — the paper's central pair.
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 300; trial++ {
		in := make([]bool, 41)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		oa, ob := a.EvalBool(in), b.EvalBool(in)
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("c499s and c1355s differ at output %d", j)
			}
		}
	}
	// No XORs remain and the circuit grew substantially.
	for _, g := range b.Gates {
		if g.Type == netlist.Xor || g.Type == netlist.Xnor {
			t.Fatal("c1355s still contains XOR gates")
		}
	}
	if b.NumGates() < 2*a.NumGates() {
		t.Fatalf("expansion too small: %d -> %d gates", a.NumGates(), b.NumGates())
	}
}

// c1908s reference model.
func hammingEncode16(data uint16) (k uint8, overall bool) {
	codes := hammingCodes(16, 5)
	for i := 0; i < 16; i++ {
		if data>>uint(i)&1 == 1 {
			k ^= uint8(codes[i])
			overall = !overall
		}
	}
	for j := 0; j < 5; j++ {
		if k>>uint(j)&1 == 1 {
			overall = !overall
		}
	}
	return
}

func c1908sEval(t *testing.T, data uint16, k uint8, kp bool, enc, end bool, tags uint16) (f uint16, s uint8, errF, derr, tpar bool) {
	t.Helper()
	c := MustGet("c1908s")
	in := make([]bool, 33)
	for i := 0; i < 16; i++ {
		in[i] = data>>uint(i)&1 == 1
	}
	for j := 0; j < 5; j++ {
		in[16+j] = k>>uint(j)&1 == 1
	}
	in[21] = kp
	in[22] = enc
	in[23] = end
	for i := 0; i < 9; i++ {
		in[24+i] = tags>>uint(i)&1 == 1
	}
	out := c.EvalBool(in)
	for i := 0; i < 16; i++ {
		if out[i] {
			f |= 1 << uint(i)
		}
	}
	for j := 0; j < 6; j++ {
		if out[16+j] {
			s |= 1 << uint(j)
		}
	}
	return f, s, out[22], out[23], out[24]
}

func TestC1908sSECDED(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 120; trial++ {
		data := uint16(rng.Uint32())
		k, kp := hammingEncode16(data)
		tags := uint16(rng.Uint32() & 0x1ff)
		tagPar := false
		for i := 0; i < 9; i++ {
			if tags>>uint(i)&1 == 1 {
				tagPar = !tagPar
			}
		}
		// Clean word: no error flags, syndrome zero, data unchanged; the
		// tag chain sees derr=0 and ok=1, so tpar = !tagPar.
		f, s, e, de, tp := c1908sEval(t, data, k, kp, true, true, tags)
		if f != data || s != 0 || e || de || tp == tagPar {
			t.Fatalf("clean word misbehaves: f=%04x s=%02x err=%v derr=%v tpar=%v", f, s, e, de, tp)
		}
		// Single data error: corrected, err flagged.
		bit := uint(rng.Intn(16))
		f, _, e, de, _ = c1908sEval(t, data^(1<<bit), k, kp, true, true, tags)
		if f != data || !e || de {
			t.Fatalf("single error at %d: f=%04x err=%v derr=%v", bit, f, e, de)
		}
		// Double data error: detected, not "corrected" into the decoder
		// (derr set, err clear).
		b2 := (bit + 1 + uint(rng.Intn(15))) % 16
		_, _, e, de, tp = c1908sEval(t, data^(1<<bit)^(1<<b2), k, kp, true, true, tags)
		if e || !de {
			t.Fatalf("double error %d,%d: err=%v derr=%v", bit, b2, e, de)
		}
		if tp == tagPar {
			t.Fatal("derr must fold into tag parity")
		}
		// Detection disabled: flags quiet.
		_, _, e, de, _ = c1908sEval(t, data^(1<<bit), k, kp, true, false, tags)
		if e || de {
			t.Fatal("end=0 must silence flags")
		}
		// Correction disabled: faulty bit survives.
		f, _, _, _, _ = c1908sEval(t, data^(1<<bit), k, kp, false, true, tags)
		if f != data^(1<<bit) {
			t.Fatal("enc=0 must not correct")
		}
	}
}

func TestC1908sIsTwoInputNandStyle(t *testing.T) {
	c := MustGet("c1908s")
	counts := c.TypeCounts()
	if counts[netlist.Xor] != 0 || counts[netlist.Xnor] != 0 {
		t.Fatal("c1908s must be XOR-free")
	}
	for _, g := range c.Gates {
		if len(g.Fanin) > 2 {
			t.Fatalf("gate %s has %d inputs", g.Name, len(g.Fanin))
		}
	}
	if counts[netlist.Nand] < c.NumGates()/2 {
		t.Fatalf("c1908s should be NAND-dominated: %v", counts)
	}
}
