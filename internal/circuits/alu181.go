package circuits

import (
	"fmt"

	"repro/internal/netlist"
)

// buildALU181 constructs a gate-level 74181 4-bit ALU with active-high
// operands, following the classic datasheet decomposition: per-bit X/Y
// first-level functions selected by S0..S3, a fully expanded carry
// lookahead, and the M (mode) gate that forces the carry contribution high
// in logic mode.
//
// Inputs (14): a0..a3, b0..b3, s0..s3, m, cn.
// Outputs (8): f0..f3, cn4 (ripple carry out, active low like cn), p
// (group propagate, active low), g (group generate, active low), aeqb.
//
// Semantics implemented (verified exhaustively in tests):
//
//	X_i = NOR(A_i, B_i·S0, ¬B_i·S1)
//	Y_i = NOR(A_i·¬B_i·S2, A_i·B_i·S3)
//	c_0 = ¬Cn,  c_{k+1} = ¬Y_k ∨ ¬X_k·c_k   (expanded lookahead)
//	F_i = X_i ⊕ Y_i ⊕ (M ∨ c_i)
//
// so that e.g. S=1001, M=0, Cn=1 yields F = A plus B, and M=1 selects the
// sixteen logic functions of the datasheet table.
func buildALU181() *netlist.Circuit {
	c := netlist.New("alu181")
	a := make([]int, 4)
	b := make([]int, 4)
	for i := 0; i < 4; i++ {
		a[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < 4; i++ {
		b[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	s := make([]int, 4)
	for i := 0; i < 4; i++ {
		s[i] = c.AddInput(fmt.Sprintf("s%d", i))
	}
	m := c.AddInput("m")
	cn := c.AddInput("cn")

	x := make([]int, 4)
	y := make([]int, 4)
	p := make([]int, 4) // propagate = ¬X
	g := make([]int, 4) // generate = ¬Y
	for i := 0; i < 4; i++ {
		nb := c.AddGate(fmt.Sprintf("nb%d", i), netlist.Not, b[i])
		t1 := c.AddGate(fmt.Sprintf("xs0_%d", i), netlist.And, b[i], s[0])
		t2 := c.AddGate(fmt.Sprintf("xs1_%d", i), netlist.And, nb, s[1])
		x[i] = c.AddGate(fmt.Sprintf("x%d", i), netlist.Nor, a[i], t1, t2)
		t3 := c.AddGate(fmt.Sprintf("ys2_%d", i), netlist.And, a[i], nb, s[2])
		t4 := c.AddGate(fmt.Sprintf("ys3_%d", i), netlist.And, a[i], b[i], s[3])
		y[i] = c.AddGate(fmt.Sprintf("y%d", i), netlist.Nor, t3, t4)
		p[i] = c.AddGate(fmt.Sprintf("p%d", i), netlist.Not, x[i])
		g[i] = c.AddGate(fmt.Sprintf("g%d", i), netlist.Not, y[i])
	}

	// Expanded carry lookahead over c_0 = ¬cn.
	c0 := c.AddGate("c0", netlist.Not, cn)
	carry := make([]int, 5)
	carry[0] = c0
	for k := 1; k <= 4; k++ {
		// c_k = g_{k-1} ∨ p_{k-1}g_{k-2} ∨ ... ∨ p_{k-1}..p_0 c_0
		terms := make([]int, 0, k+1)
		for j := k - 1; j >= 0; j-- {
			// term: p_{k-1}..p_{j+1} · g_j
			fan := []int{g[j]}
			for q := j + 1; q <= k-1; q++ {
				fan = append(fan, p[q])
			}
			var t int
			if len(fan) == 1 {
				t = fan[0]
			} else {
				t = c.AddGate(fmt.Sprintf("cg%d_%d", k, j), netlist.And, fan...)
			}
			terms = append(terms, t)
		}
		// trailing term: p_{k-1}..p_0 · c_0
		fan := append([]int{c0}, p[:k]...)
		terms = append(terms, c.AddGate(fmt.Sprintf("cp%d", k), netlist.And, fan...))
		carry[k] = c.AddGate(fmt.Sprintf("c%d", k), netlist.Or, terms...)
	}

	f := make([]int, 4)
	for i := 0; i < 4; i++ {
		w := c.AddGate(fmt.Sprintf("w%d", i), netlist.Xor, x[i], y[i])
		z := c.AddGate(fmt.Sprintf("z%d", i), netlist.Or, m, carry[i])
		f[i] = c.AddGate(fmt.Sprintf("f%d", i), netlist.Xor, w, z)
		c.MarkOutput(f[i])
	}
	cn4 := c.AddGate("cn4", netlist.Not, carry[4])
	c.MarkOutput(cn4)
	pg := c.AddGate("pout", netlist.Nand, p[0], p[1], p[2], p[3])
	c.MarkOutput(pg)
	// Group generate (active low): ¬(g3 ∨ p3g2 ∨ p3p2g1 ∨ p3p2p1g0).
	gg1 := c.AddGate("gg1", netlist.And, p[3], g[2])
	gg2 := c.AddGate("gg2", netlist.And, p[3], p[2], g[1])
	gg3 := c.AddGate("gg3", netlist.And, p[3], p[2], p[1], g[0])
	gout := c.AddGate("gout", netlist.Nor, g[3], gg1, gg2, gg3)
	c.MarkOutput(gout)
	aeqb := c.AddGate("aeqb", netlist.And, f[0], f[1], f[2], f[3])
	c.MarkOutput(aeqb)
	return c
}
