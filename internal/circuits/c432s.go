package circuits

import (
	"fmt"

	"repro/internal/netlist"
)

// buildC432s constructs a 27-request priority interrupt controller in the
// same interface class as ISCAS-85 C432 (36 PI, 7 PO): 27 request lines in
// nine groups of three, nine per-group enable lines, a fixed-priority
// resolver (group 0 highest), a 4-bit group encoder, a valid flag and a
// 2-bit within-group position encoder.
//
// Inputs (36): r0..r26 request lines, e0..e8 group enables.
// Outputs (7): any (some enabled request active), v3..v0 (binary index of
// the highest-priority active group), q1..q0 (binary index of the
// highest-priority active request within the winning group).
func buildC432s() *netlist.Circuit {
	c := netlist.New("c432s")
	r := make([]int, 27)
	for i := range r {
		r[i] = c.AddInput(fmt.Sprintf("r%d", i))
	}
	e := make([]int, 9)
	for gidx := range e {
		e[gidx] = c.AddInput(fmt.Sprintf("e%d", gidx))
	}

	// Gated requests and per-group activity.
	gated := make([][]int, 9)
	act := make([]int, 9)
	for gidx := 0; gidx < 9; gidx++ {
		gated[gidx] = make([]int, 3)
		for j := 0; j < 3; j++ {
			gated[gidx][j] = c.AddGate(fmt.Sprintf("t%d_%d", gidx, j), netlist.And, r[3*gidx+j], e[gidx])
		}
		act[gidx] = c.AddGate(fmt.Sprintf("act%d", gidx), netlist.Or, gated[gidx][0], gated[gidx][1], gated[gidx][2])
	}

	// Priority resolution: win_g = act_g AND no higher-priority activity.
	// Only groups 0..7 need their complement (group 8 is lowest priority).
	nact := make([]int, 8)
	for gidx := 0; gidx < 8; gidx++ {
		nact[gidx] = c.AddGate(fmt.Sprintf("nact%d", gidx), netlist.Not, act[gidx])
	}
	win := make([]int, 9)
	win[0] = c.AddGate("win0", netlist.Buff, act[0])
	for gidx := 1; gidx < 9; gidx++ {
		fan := make([]int, 0, gidx+1)
		fan = append(fan, act[gidx])
		for h := 0; h < gidx; h++ {
			fan = append(fan, nact[h])
		}
		win[gidx] = c.AddGate(fmt.Sprintf("win%d", gidx), netlist.And, fan...)
	}

	// Group index encoder (win is one-hot or all-zero).
	encBit := func(name string, bit int) int {
		fan := []int{}
		for gidx := 0; gidx < 9; gidx++ {
			if gidx>>uint(bit)&1 == 1 {
				fan = append(fan, win[gidx])
			}
		}
		switch len(fan) {
		case 0:
			panic("c432s: empty encoder column")
		case 1:
			return c.AddGate(name, netlist.Buff, fan[0])
		default:
			return c.AddGate(name, netlist.Or, fan...)
		}
	}
	v0 := encBit("v0", 0)
	v1 := encBit("v1", 1)
	v2 := encBit("v2", 2)
	v3 := encBit("v3", 3)

	anyAct := c.AddGate("any", netlist.Or,
		act[0], act[1], act[2], act[3], act[4], act[5], act[6], act[7], act[8])

	// Winning group's request lines, ORed across groups.
	rsel := make([]int, 3)
	for j := 0; j < 3; j++ {
		fan := make([]int, 9)
		for gidx := 0; gidx < 9; gidx++ {
			fan[gidx] = c.AddGate(fmt.Sprintf("sel%d_%d", gidx, j), netlist.And, win[gidx], gated[gidx][j])
		}
		rsel[j] = c.AddGate(fmt.Sprintf("rsel%d", j), netlist.Or, fan...)
	}
	// Position encoder within the winning group (request 0 highest):
	// q = 00 for j0, 01 for j1, 10 for j2, 00 when idle.
	nr0 := c.AddGate("nr0", netlist.Not, rsel[0])
	nr1 := c.AddGate("nr1", netlist.Not, rsel[1])
	q0 := c.AddGate("q0", netlist.And, nr0, rsel[1])
	q1 := c.AddGate("q1", netlist.And, nr0, nr1, rsel[2])

	c.MarkOutput(anyAct)
	c.MarkOutput(v3)
	c.MarkOutput(v2)
	c.MarkOutput(v1)
	c.MarkOutput(v0)
	c.MarkOutput(q1)
	c.MarkOutput(q0)
	return c
}
