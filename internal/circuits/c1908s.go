package circuits

import (
	"fmt"

	"repro/internal/netlist"
)

// buildC1908s constructs a 16-bit SEC/DED (single-error-correct,
// double-error-detect) extended-Hamming corrector with a tag-parity chain,
// standing in for ISCAS-85 C1908 (33 PI, 25 PO, NAND-dominated). The whole
// network is XOR-expanded and decomposed to two-input gates to land in
// C1908's implementation style and size class.
//
// Inputs (33): d0..d15 received data, k0..k4 Hamming checks, k5 overall
// parity, enc (correction enable), end (detection enable), t0..t8 tag bits.
//
// Outputs (25): f0..f15 corrected data, s0..s5 syndrome, err (single error
// detected), derr (double error detected), tpar (tag parity folded with
// derr).
func buildC1908s() *netlist.Circuit {
	const (
		nData  = 16
		nCheck = 5
	)
	codes := hammingCodes(nData, nCheck)
	c := netlist.New("c1908s")
	d := make([]int, nData)
	for i := range d {
		d[i] = c.AddInput(fmt.Sprintf("d%d", i))
	}
	k := make([]int, nCheck+1)
	for i := range k {
		k[i] = c.AddInput(fmt.Sprintf("k%d", i))
	}
	enc := c.AddInput("enc")
	end := c.AddInput("end")
	t := make([]int, 9)
	for i := range t {
		t[i] = c.AddInput(fmt.Sprintf("t%d", i))
	}

	// Hamming syndrome bits.
	s := make([]int, nCheck)
	ns := make([]int, nCheck)
	for j := 0; j < nCheck; j++ {
		fan := []int{k[j]}
		for i := 0; i < nData; i++ {
			if codes[i]>>uint(j)&1 == 1 {
				fan = append(fan, d[i])
			}
		}
		s[j] = xorTree(c, fmt.Sprintf("s%d", j), fan)
		ns[j] = c.AddGate(fmt.Sprintf("ns%d", j), netlist.Not, s[j])
	}
	// Overall parity syndrome: covers every received bit.
	ofan := make([]int, 0, nData+nCheck+1)
	ofan = append(ofan, k[nCheck])
	ofan = append(ofan, d...)
	ofan = append(ofan, k[:nCheck]...)
	s5 := xorTree(c, "s5", ofan)
	ns5 := c.AddGate("ns5", netlist.Not, s5)

	// Error classification.
	nz := c.AddGate("nz", netlist.Or, s[0], s[1], s[2], s[3], s[4])
	errNet := c.AddGate("err", netlist.And, end, s5)
	derr := c.AddGate("derr", netlist.And, end, nz, ns5)

	// Correction: only on single errors (s5 = 1) matching a data column.
	f := make([]int, nData)
	for i := 0; i < nData; i++ {
		fan := make([]int, 0, nCheck+2)
		fan = append(fan, enc, s5)
		for j := 0; j < nCheck; j++ {
			if codes[i]>>uint(j)&1 == 1 {
				fan = append(fan, s[j])
			} else {
				fan = append(fan, ns[j])
			}
		}
		corr := c.AddGate(fmt.Sprintf("corr%d", i), netlist.And, fan...)
		f[i] = c.AddGate(fmt.Sprintf("f%d", i), netlist.Xor, d[i], corr)
	}

	// Re-encode verification: recompute the Hamming syndrome over the
	// corrected data and require it to cancel against the (possibly
	// faulty) received checks. On a corrected single data error the
	// recheck is zero; the resulting ok flag feeds the tag chain, giving
	// the deep back-end structure C1908 is known for.
	recheck := make([]int, nCheck)
	for j := 0; j < nCheck; j++ {
		fan := []int{k[j]}
		for i := 0; i < nData; i++ {
			if codes[i]>>uint(j)&1 == 1 {
				fan = append(fan, f[i])
			}
		}
		recheck[j] = xorTree(c, fmt.Sprintf("rc%d", j), fan)
	}
	ok := c.AddGate("ok", netlist.Nor, recheck[0], recheck[1], recheck[2], recheck[3], recheck[4])

	// Tag parity chain folded with the double-error and validity flags.
	tfan := append(append([]int{}, t...), derr, ok)
	tpar := xorTree(c, "tpar", tfan)

	for i := 0; i < nData; i++ {
		c.MarkOutput(f[i])
	}
	for j := 0; j < nCheck; j++ {
		c.MarkOutput(s[j])
	}
	c.MarkOutput(s5)
	c.MarkOutput(errNet)
	c.MarkOutput(derr)
	c.MarkOutput(tpar)

	// Match C1908's NAND-dominated, two-input implementation style.
	e := c.ExpandXOR().Decompose2()
	e.Name = "c1908s"
	return e
}
