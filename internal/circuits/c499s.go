package circuits

import (
	"fmt"

	"repro/internal/netlist"
)

// hammingCodes returns n distinct column codes of the given bit width with
// popcount >= 2 (so data-bit syndromes never collide with check-bit
// syndromes, which are unit vectors).
func hammingCodes(n, width int) []uint32 {
	out := make([]uint32, 0, n)
	for v := uint32(3); len(out) < n; v++ {
		if v >= 1<<uint(width) {
			panic(fmt.Sprintf("circuits: cannot build %d codes of width %d", n, width))
		}
		pc := 0
		for b := 0; b < width; b++ {
			if v>>uint(b)&1 == 1 {
				pc++
			}
		}
		if pc >= 2 {
			out = append(out, v)
		}
	}
	return out
}

// xorTree folds the nets with a left-leaning XOR chain (matching the
// natural structure of a serial parity network).
func xorTree(c *netlist.Circuit, prefix string, nets []int) int {
	if len(nets) == 0 {
		panic("circuits: empty xor tree")
	}
	acc := nets[0]
	for i := 1; i < len(nets); i++ {
		acc = c.AddGate(fmt.Sprintf("%s_%d", prefix, i), netlist.Xor, acc, nets[i])
	}
	return acc
}

// buildC499s constructs a 32-bit Hamming single-error corrector standing in
// for ISCAS-85 C499 (41 PI, 32 PO, XOR-dominated, ~200 gates).
//
// Inputs (41): d0..d31 received data, k0..k7 received check bits, en
// (correction enable). Outputs (32): f0..f31, the corrected data.
//
// The syndrome s = k XOR H·d is decoded: when s equals the column code of
// data bit i and en is high, bit i is flipped on the way out.
func buildC499s() *netlist.Circuit {
	const (
		nData  = 32
		nCheck = 8
	)
	codes := hammingCodes(nData, nCheck)
	c := netlist.New("c499s")
	d := make([]int, nData)
	for i := range d {
		d[i] = c.AddInput(fmt.Sprintf("d%d", i))
	}
	k := make([]int, nCheck)
	for i := range k {
		k[i] = c.AddInput(fmt.Sprintf("k%d", i))
	}
	en := c.AddInput("en")

	// Syndrome bits: s_j = k_j XOR parity of the data bits whose code has
	// bit j set.
	s := make([]int, nCheck)
	ns := make([]int, nCheck)
	for j := 0; j < nCheck; j++ {
		fan := []int{k[j]}
		for i := 0; i < nData; i++ {
			if codes[i]>>uint(j)&1 == 1 {
				fan = append(fan, d[i])
			}
		}
		s[j] = xorTree(c, fmt.Sprintf("s%d", j), fan)
		ns[j] = c.AddGate(fmt.Sprintf("ns%d", j), netlist.Not, s[j])
	}

	// Decode and correct.
	for i := 0; i < nData; i++ {
		fan := make([]int, 0, nCheck+1)
		fan = append(fan, en)
		for j := 0; j < nCheck; j++ {
			if codes[i]>>uint(j)&1 == 1 {
				fan = append(fan, s[j])
			} else {
				fan = append(fan, ns[j])
			}
		}
		corr := c.AddGate(fmt.Sprintf("corr%d", i), netlist.And, fan...)
		f := c.AddGate(fmt.Sprintf("f%d", i), netlist.Xor, d[i], corr)
		c.MarkOutput(f)
	}
	return c
}

// buildC1355s is buildC499s with every XOR expanded into its four-NAND
// equivalent — by construction functionally identical to c499s, exactly
// the relationship between ISCAS-85 C499 and C1355 that drives the paper's
// "minimal designs are more testable" observation.
func buildC1355s() *netlist.Circuit {
	e := buildC499s().ExpandXOR()
	e.Name = "c1355s"
	return e
}
