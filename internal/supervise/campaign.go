// Campaign orchestration: partition the fault set into shard leases,
// supervise them to completion, and merge the per-shard checkpoints into
// one campaign checkpoint bit-identical to an unsupervised run's records.
package supervise

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

// Store abstracts the campaign-specific checkpoint knowledge the
// supervisor needs: how to stamp a shard checkpoint header (fingerprinted
// over that shard's fault subset) and what an Err record for a
// quarantined fault looks like. cmd/diffprop implements it per fault
// model.
type Store interface {
	// Header returns the fingerprinted checkpoint header for the shard
	// covering global faults [lo, hi). Implementations must derive it
	// from the same circuit and fault subset the worker will, and stamp
	// the shard range (see analysis.CheckpointHeader.WithShard).
	Header(lo, hi int) analysis.CheckpointHeader
	// QuarantineRecord renders the Err record persisted for a poison
	// fault (by global index). The record must decode as the campaign's
	// result type with a non-empty Err field and deterministic content,
	// so reruns quarantine reproducibly and bit-identically.
	QuarantineRecord(global int) (json.RawMessage, error)
}

// CampaignConfig configures RunSharded.
type CampaignConfig struct {
	// Supervisor carries the supervision tuning (Launcher, timeouts,
	// restart budget, hooks). Total is overwritten with Faults.
	Supervisor Config
	// Store supplies shard headers and quarantine records.
	Store Store
	// Faults is the campaign's global fault count.
	Faults int
	// Shards is how many leases to partition the fault set into.
	Shards int
	// Procs caps concurrently running workers (0 = Shards).
	Procs int
	// Dir is the directory holding the per-shard checkpoints. Shard
	// checkpoints are named shard-<lo>-<hi>.jsonl; pre-existing ones are
	// resumed, so a killed supervisor can itself be rerun.
	Dir string
}

// ShardPath returns the checkpoint path for the lease covering global
// faults [lo, hi) inside dir.
func ShardPath(dir string, lo, hi int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-%d.jsonl", lo, hi))
}

// CampaignResult is RunSharded's outcome.
type CampaignResult struct {
	// Records maps every global fault index in [0, Faults) to its JSON
	// record, exactly as some worker's checkpoint persisted it (or the
	// store's quarantine record for quarantined faults).
	Records map[int]json.RawMessage
	// Supervision is the underlying supervisor result.
	Supervision Result
}

// RunSharded partitions the fault set, supervises the shard workers to
// completion, and merges their checkpoints. On success every fault has a
// record: analyzed ones carry the worker's output verbatim, quarantined
// ones the store's Err record — a poison fault degrades one record, never
// the campaign.
func RunSharded(ctx context.Context, cfg CampaignConfig) (CampaignResult, error) {
	if cfg.Faults <= 0 {
		return CampaignResult{}, fmt.Errorf("supervise: campaign has no faults")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return CampaignResult{}, fmt.Errorf("supervise: shard dir: %w", err)
	}
	var shards []Shard
	for _, r := range analysis.PartitionFaults(cfg.Faults, cfg.Shards) {
		shards = append(shards, Shard{Lo: r[0], Hi: r[1], Path: ShardPath(cfg.Dir, r[0], r[1])})
	}

	scfg := cfg.Supervisor
	scfg.Total = cfg.Faults
	if scfg.ChildShard == nil {
		scfg.ChildShard = func(parent Shard, lo, hi int) (Shard, error) {
			return seedChild(cfg.Store, parent, lo, hi, cfg.Dir)
		}
	}
	if scfg.Quarantine == nil {
		scfg.Quarantine = func(sh Shard) error {
			return quarantine(cfg.Store, sh)
		}
	}
	sup := New(scfg)
	res, err := sup.Run(ctx, shards, cfg.Procs)
	if err != nil {
		return CampaignResult{Supervision: res}, err
	}

	merged := make(map[int]json.RawMessage, cfg.Faults)
	for _, sh := range res.Completed {
		want := cfg.Store.Header(sh.Lo, sh.Hi)
		hdr, recs, _, lerr := analysis.LoadCheckpoint(sh.Path)
		if lerr != nil {
			return CampaignResult{Supervision: res}, fmt.Errorf("supervise: loading completed shard %s: %w", sh.Range(), lerr)
		}
		if hdr.Fingerprint != want.Fingerprint || hdr.Shard != want.Shard {
			return CampaignResult{Supervision: res}, fmt.Errorf(
				"supervise: shard %s checkpoint %s does not match the campaign's fault set (fingerprint %s, want %s)",
				sh.Range(), sh.Path, hdr.Fingerprint, want.Fingerprint)
		}
		if merged, err = analysis.MergeShardRecords(merged, recs, sh.Lo, sh.Hi); err != nil {
			return CampaignResult{Supervision: res}, err
		}
	}
	if missing := analysis.MissingRecords(merged, cfg.Faults); len(missing) > 0 {
		return CampaignResult{Supervision: res}, fmt.Errorf(
			"supervise: merge hole: %d faults unrecorded after supervision (first %d) — a completed shard lost records", len(missing), missing[0])
	}
	return CampaignResult{Records: merged, Supervision: res}, nil
}

// seedChild materializes a bisected child lease: a fresh checkpoint at
// the child's path seeded with the parent's completed records for the
// child's range, so no fault is ever recomputed across a bisection.
func seedChild(store Store, parent Shard, lo, hi int, dir string) (Shard, error) {
	hdr, recs, _, err := analysis.LoadCheckpoint(parent.Path)
	if err != nil || hdr.Fingerprint != store.Header(parent.Lo, parent.Hi).Fingerprint {
		// A missing or corrupt parent checkpoint forfeits its resume
		// value but not the campaign: the child starts empty and
		// recomputes.
		recs = nil
	}
	child := Shard{Lo: lo, Hi: hi, Path: ShardPath(dir, lo, hi)}
	sub := analysis.ExtractShardRecords(recs, lo-parent.Lo, hi-parent.Lo)
	if err := analysis.WriteMergedCheckpoint(child.Path, store.Header(lo, hi), sub); err != nil {
		return Shard{}, fmt.Errorf("seeding child shard %s: %w", child.Range(), err)
	}
	return child, nil
}

// quarantine appends the store's Err record for the lease's single fault
// to the shard checkpoint, leaving the shard complete without ever
// running its poison fault again.
func quarantine(store Store, sh Shard) error {
	rec, err := store.QuarantineRecord(sh.Lo)
	if err != nil {
		return err
	}
	hdr := store.Header(sh.Lo, sh.Hi)
	got, recs, _, lerr := analysis.LoadCheckpoint(sh.Path)
	if lerr != nil || got.Fingerprint != hdr.Fingerprint {
		recs = nil
	}
	if recs == nil {
		recs = make(map[int]json.RawMessage, 1)
	}
	recs[0] = rec // local index: the lease holds exactly one fault
	return analysis.WriteMergedCheckpoint(sh.Path, hdr, recs)
}
