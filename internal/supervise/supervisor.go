// The supervisor: lease-tracked shard dispatch over worker subprocesses.
//
// Each shard of the fault set is a lease (see Shard). The supervisor
// launches up to procs workers at once, watches each through its JSONL
// protocol stream and its exit status, and reacts to the three ways a
// worker stops being useful:
//
//   - death (non-zero exit, SIGKILL, or exit 0 without a done message):
//     the lease is re-dispatched after capped exponential backoff with
//     jitter; the restarted worker resumes from the shard checkpoint, so
//     completed faults are never recomputed;
//   - heartbeat stall (a wedged runtime): the supervisor SIGKILLs the
//     worker itself after HeartbeatTimeout of protocol silence, then
//     treats it as a death;
//   - repeated death (a poison fault): after MaxRestarts failed
//     re-dispatches the shard is bisected — both halves seeded with the
//     parent's completed records — until the poison fault is alone in a
//     single-fault shard, which is then quarantined as an Err record
//     instead of failing the campaign.
//
// Repeated SIGKILL deaths (the OOM killer's signature) additionally raise
// the lease's degrade level, so the launcher's next attempt runs with
// fewer analysis threads and a tighter node budget.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"os/exec"
	"sync"
	"time"

	"repro/internal/obs"
)

// Defaults for the zero Config fields.
const (
	DefaultHeartbeatTimeout = 10 * time.Second
	DefaultMaxRestarts      = 2
	DefaultBackoffBase      = 50 * time.Millisecond
	DefaultBackoffMax       = 2 * time.Second
	DefaultOOMDeaths        = 2
	DefaultMaxDegrade       = 2
)

// Config tunes a Supervisor.
type Config struct {
	// Launcher starts worker subprocesses.
	Launcher Launcher
	// Total is the campaign's global fault count (progress denominator).
	Total int
	// HeartbeatTimeout is how long a worker may stay protocol-silent
	// before the supervisor kills it as stalled (0 = default).
	HeartbeatTimeout time.Duration
	// HeartbeatPoll is the stall watchdog's check period (0 = timeout/4).
	HeartbeatPoll time.Duration
	// MaxRestarts is how many re-dispatches one lease gets before the
	// supervisor escalates to bisection/quarantine (0 = default; negative
	// = none, first death escalates).
	MaxRestarts int
	// BackoffBase and BackoffMax bound the restart backoff (0 = defaults).
	BackoffBase, BackoffMax time.Duration
	// OOMDeaths is how many consecutive SIGKILL deaths raise the lease's
	// degrade level (0 = default), capped at MaxDegrade (0 = default).
	OOMDeaths  int
	MaxDegrade int

	// ChildShard prepares a bisected child lease covering global faults
	// [lo, hi) of parent's range: it must create the child's checkpoint
	// file seeded with the parent's completed records for that range, and
	// return the lease pointing at it.
	ChildShard func(parent Shard, lo, hi int) (Shard, error)
	// Quarantine records the poison fault of a single-fault lease
	// (sh.Size() == 1, global index sh.Lo) as an Err record in the
	// shard's checkpoint, so the merged campaign completes with the fault
	// isolated instead of failing.
	Quarantine func(sh Shard) error

	// Log, Obs and Progress are optional observability hooks. Progress is
	// called (serialized) with the campaign-wide completed-fault count as
	// heartbeats and completions arrive.
	Log      *slog.Logger
	Obs      *obs.Observer
	Progress func(done, total int)
}

// Result summarizes a supervised run.
type Result struct {
	// Completed holds every lease that finished (post-bisection shape,
	// disjoint, covering the full range), including quarantined ones.
	Completed []Shard
	// Quarantined lists poison faults isolated as Err records, by global
	// index, in quarantine order.
	Quarantined []int
	// Deaths, Restarts, Bisects and DegradedLaunches count supervision
	// events: worker deaths of any cause, lease re-dispatches, shard
	// splits, and restarts that shed capacity after memory-pressure
	// deaths.
	Deaths, Restarts, Bisects, DegradedLaunches int
}

// death causes, mapped onto flight labels.
const (
	causeExit  = obs.FlightLabelExit
	causeStall = obs.FlightLabelStall
	causeOOM   = obs.FlightLabelOOM
)

// Supervisor runs shard leases to completion over worker subprocesses.
type Supervisor struct {
	cfg Config

	mu    sync.Mutex
	done  map[int]int // lease lo -> completed faults (live + finished)
	total int
}

// New builds a Supervisor, applying defaults to zero Config fields.
func New(cfg Config) *Supervisor {
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if cfg.HeartbeatPoll <= 0 {
		cfg.HeartbeatPoll = cfg.HeartbeatTimeout / 4
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = DefaultMaxRestarts
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.OOMDeaths <= 0 {
		cfg.OOMDeaths = DefaultOOMDeaths
	}
	if cfg.MaxDegrade <= 0 {
		cfg.MaxDegrade = DefaultMaxDegrade
	}
	return &Supervisor{cfg: cfg, done: make(map[int]int), total: cfg.Total}
}

// workerExit is what one worker's monitor reports back to the run loop.
type workerExit struct {
	sh        Shard
	slot      int
	completed bool  // done message seen AND exit status 0
	cause     uint8 // death cause when !completed
	exitCode  int   // -1 when killed by signal
	doneCount int   // last completed-fault count the worker reported
}

// Run drives the leases to completion with at most procs concurrent
// workers. It returns when every lease has completed (or been bisected
// into leases that did), when the context is cancelled (all workers are
// killed first), or when a launch/bisect/quarantine infrastructure
// failure makes progress impossible.
func (s *Supervisor) Run(ctx context.Context, shards []Shard, procs int) (Result, error) {
	if procs <= 0 {
		procs = len(shards)
	}
	// An internal context lets an infrastructure failure kill the
	// remaining workers without waiting for the parent context.
	ctx, abort := context.WithCancel(ctx)
	defer abort()

	var (
		res      Result
		firstErr error
		pending  = append([]Shard(nil), shards...)
		events   = make(chan workerExit)
		requeue  = make(chan Shard)
		active   = 0
		waiters  = 0
		slots    = 0
	)
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
		abort()
	}
	for len(pending)+active+waiters > 0 {
		for firstErr == nil && ctx.Err() == nil && active < procs && len(pending) > 0 {
			sh := pending[0]
			pending = pending[1:]
			slot := slots
			slots++
			w, err := s.cfg.Launcher.Launch(ctx, sh)
			if err != nil {
				fail(err)
				break
			}
			s.event(obs.FlightSpawn, obs.FlightLabelNone, slot, sh.Lo, int64(sh.Size()), int64(sh.Attempt))
			s.gauge(+1)
			if s.cfg.Log != nil {
				s.cfg.Log.Info("worker launched", "shard", sh.Range(), "slot", slot, "attempt", sh.Attempt, "degrade", sh.Degrade)
			}
			active++
			go func() { events <- s.monitor(sh, slot, w) }()
		}
		if len(pending) > 0 && active == 0 && waiters == 0 {
			// Nothing running, nothing coming back, work left: the launch
			// path failed (firstErr is set) or the context is gone.
			break
		}
		if active+waiters == 0 {
			break
		}
		select {
		case sh := <-requeue:
			waiters--
			pending = append(pending, sh)
		case ev := <-events:
			active--
			s.gauge(-1)
			if ev.completed {
				s.leaseDone(ev.sh, &res)
				continue
			}
			res.Deaths++
			s.count(func(cm *obs.CampaignMetrics) *obs.Counter { return cm.SupervisorWorkerDeaths })
			s.event(obs.FlightWorkerDeath, ev.cause, ev.slot, ev.sh.Lo, int64(ev.exitCode), int64(ev.doneCount))
			if s.cfg.Log != nil {
				s.cfg.Log.Warn("worker died", "shard", ev.sh.Range(), "slot", ev.slot,
					"cause", obs.FlightLabelName(ev.cause), "exit", ev.exitCode, "attempt", ev.sh.Attempt)
			}
			if ctx.Err() != nil || firstErr != nil {
				continue // shutting down: do not re-dispatch
			}
			sh := ev.sh
			sh.Attempt++
			if ev.cause == causeOOM {
				sh.oomStreak++
				if sh.oomStreak >= s.cfg.OOMDeaths && sh.Degrade < s.cfg.MaxDegrade {
					sh.Degrade++
					sh.oomStreak = 0
					res.DegradedLaunches++
				}
			} else {
				sh.oomStreak = 0
			}
			if sh.Attempt > s.cfg.MaxRestarts {
				if err := s.escalate(sh, &pending, &res); err != nil {
					fail(err)
				}
				continue
			}
			res.Restarts++
			s.count(func(cm *obs.CampaignMetrics) *obs.Counter { return cm.SupervisorRestarts })
			delay := s.backoff(sh.Attempt)
			label := obs.FlightLabelNone
			if sh.Degrade > ev.sh.Degrade {
				label = obs.FlightLabelDegraded
			}
			s.event(obs.FlightRestart, label, ev.slot, sh.Lo, int64(sh.Attempt), delay.Microseconds())
			waiters++
			go func(sh Shard) {
				t := time.NewTimer(delay)
				defer t.Stop()
				select {
				case <-t.C:
				case <-ctx.Done():
				}
				requeue <- sh
			}(sh)
		}
	}
	if firstErr != nil {
		return res, firstErr
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// escalate handles a lease whose restart budget is spent: quarantine the
// fault when it is alone, bisect otherwise.
func (s *Supervisor) escalate(sh Shard, pending *[]Shard, res *Result) error {
	if sh.Size() == 1 {
		if s.cfg.Quarantine == nil {
			return fmt.Errorf("supervise: fault %d repeatedly kills its worker and no quarantine handler is configured", sh.Lo)
		}
		if err := s.cfg.Quarantine(sh); err != nil {
			return fmt.Errorf("supervise: quarantining fault %d: %w", sh.Lo, err)
		}
		res.Quarantined = append(res.Quarantined, sh.Lo)
		s.count(func(cm *obs.CampaignMetrics) *obs.Counter { return cm.SupervisorQuarantined })
		s.event(obs.FlightQuarantine, obs.FlightLabelNone, -1, sh.Lo, int64(sh.Attempt), 0)
		if s.cfg.Log != nil {
			s.cfg.Log.Warn("poison fault quarantined", "fault", sh.Lo, "deaths", sh.Attempt)
		}
		s.leaseDone(sh, res)
		return nil
	}
	mid := sh.Lo + sh.Size()/2
	left, err := s.cfg.ChildShard(sh, sh.Lo, mid)
	if err != nil {
		return fmt.Errorf("supervise: bisecting shard %s: %w", sh.Range(), err)
	}
	right, err := s.cfg.ChildShard(sh, mid, sh.Hi)
	if err != nil {
		return fmt.Errorf("supervise: bisecting shard %s: %w", sh.Range(), err)
	}
	for _, child := range []*Shard{&left, &right} {
		child.Attempt = 0
		child.Degrade = sh.Degrade
		child.oomStreak = 0
	}
	res.Bisects++
	s.count(func(cm *obs.CampaignMetrics) *obs.Counter { return cm.SupervisorBisects })
	s.event(obs.FlightBisect, obs.FlightLabelNone, -1, sh.Lo, int64(sh.Size()), int64(mid))
	if s.cfg.Log != nil {
		s.cfg.Log.Warn("shard bisected", "shard", sh.Range(), "split", mid, "deaths", sh.Attempt)
	}
	s.mu.Lock()
	delete(s.done, sh.Lo) // children report under their own lo keys
	s.mu.Unlock()
	*pending = append(*pending, left, right)
	return nil
}

// leaseDone records a finished lease and publishes progress.
func (s *Supervisor) leaseDone(sh Shard, res *Result) {
	res.Completed = append(res.Completed, sh)
	s.progress(sh, sh.Size())
	if s.cfg.Log != nil {
		s.cfg.Log.Info("shard completed", "shard", sh.Range(), "attempts", sh.Attempt+1)
	}
}

// monitor owns one worker's lifetime: it tracks protocol liveness, kills
// the worker on heartbeat timeout, and classifies the exit.
func (s *Supervisor) monitor(sh Shard, slot int, w Worker) workerExit {
	var (
		mu        sync.Mutex
		last      = time.Now()
		doneSeen  = false
		doneCount = 0
		stalled   = false
	)
	stopWatch := make(chan struct{})
	go func() {
		t := time.NewTicker(s.cfg.HeartbeatPoll)
		defer t.Stop()
		for {
			select {
			case <-stopWatch:
				return
			case <-t.C:
				mu.Lock()
				quiet := time.Since(last)
				mu.Unlock()
				if quiet > s.cfg.HeartbeatTimeout {
					mu.Lock()
					stalled = true
					mu.Unlock()
					w.Kill()
					return
				}
			}
		}
	}()
	for m := range w.Events() {
		mu.Lock()
		last = time.Now()
		switch m.Type {
		case MsgHeartbeat, MsgDone:
			if m.Done > doneCount {
				doneCount = m.Done
			}
			if m.Type == MsgDone {
				doneSeen = true
			}
		case MsgError:
			if s.cfg.Log != nil {
				s.cfg.Log.Error("worker reported fatal error", "shard", sh.Range(), "err", m.Err)
			}
		}
		mu.Unlock()
		if m.Type == MsgHeartbeat || m.Type == MsgDone {
			s.progress(sh, doneCount)
		}
	}
	err := w.Wait()
	close(stopWatch)
	mu.Lock()
	defer mu.Unlock()
	ev := workerExit{sh: sh, slot: slot, doneCount: doneCount, exitCode: exitCode(err)}
	switch {
	case err == nil && doneSeen:
		ev.completed = true
	case stalled:
		ev.cause = causeStall
	case w.SigKilled():
		// SIGKILL we did not send: the OOM killer's signature (or an
		// operator's kill -9 — indistinguishable, treated the same).
		ev.cause = causeOOM
	default:
		ev.cause = causeExit
	}
	return ev
}

// backoff computes the capped exponential restart delay with jitter for
// a lease's n-th attempt (n >= 1).
func (s *Supervisor) backoff(n int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 1; i < n && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	// Up to +50% jitter so restarted workers do not stampede the disk or
	// the memory ceiling in lockstep.
	return d + rand.N(d/2+1)
}

// progress folds one lease's completed count into the campaign total and
// publishes it.
func (s *Supervisor) progress(sh Shard, done int) {
	s.mu.Lock()
	s.done[sh.Lo] = done
	sum := 0
	for _, d := range s.done {
		sum += d
	}
	cb := s.cfg.Progress
	total := s.total
	s.mu.Unlock()
	if cb != nil {
		cb(sum, total)
	}
}

// event records a flight event (nil-safe).
func (s *Supervisor) event(kind obs.FlightKind, label uint8, worker, index int, a, b int64) {
	if s.cfg.Obs != nil {
		s.cfg.Obs.Flight.Record(kind, label, worker, index, a, b)
	}
}

// count bumps a supervisor counter (nil-safe).
func (s *Supervisor) count(pick func(*obs.CampaignMetrics) *obs.Counter) {
	if s.cfg.Obs != nil {
		pick(s.cfg.Obs.CampaignMetrics()).Inc()
	}
}

// gauge adjusts the live-workers gauge (nil-safe).
func (s *Supervisor) gauge(delta int64) {
	if s.cfg.Obs != nil {
		s.cfg.Obs.CampaignMetrics().SupervisorWorkersLive.Add(delta)
	}
}

// exitCode extracts a process exit code (-1 for signal deaths and
// non-exec errors, 0 for nil).
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}
