// Worker⇄supervisor wire protocol: versioned JSONL over the worker's
// stdout pipe, one Msg per line. The worker says hello once, heartbeats
// with its completed-fault count while analyzing, and reports done (or a
// fatal error) before exiting; everything else the supervisor learns from
// the process itself — exit status, a silent pipe, a closed pipe. The
// supervisor holds the worker's STDIN open for the worker's whole life:
// a worker that sees stdin EOF knows its supervisor is gone and must exit
// rather than run orphaned (the other half of the zero-orphans
// guarantee; the supervisor's half is killing workers on shutdown).
package supervise

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/chaos"
)

// ProtoVersion is the protocol schema version carried in every message.
// A supervisor refuses messages from a different version: a version skew
// means the worker binary is not the one the supervisor launched.
const ProtoVersion = 1

// Message types.
const (
	// MsgHello is the worker's first message (PID, shard echo, total).
	MsgHello = "hello"
	// MsgHeartbeat is the periodic liveness beacon (Done = completed
	// faults, including checkpoint-restored ones).
	MsgHeartbeat = "hb"
	// MsgDone announces the shard completed; the worker exits 0 next.
	// Completion requires BOTH this message and exit status 0 — an exit 0
	// without it (a wedged run whose heartbeats stalled, a stdout tear) is
	// treated as a death and the lease is re-dispatched.
	MsgDone = "done"
	// MsgError reports a fatal worker error before a non-zero exit.
	MsgError = "error"
)

// Msg is one protocol line.
type Msg struct {
	V     int    `json:"v"`
	Type  string `json:"type"`
	Shard string `json:"shard,omitempty"` // "lo-hi", echoing the lease
	PID   int    `json:"pid,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	Err   string `json:"err,omitempty"`
}

// ParseMsg decodes one protocol line, refusing unknown versions.
func ParseMsg(line []byte) (Msg, error) {
	var m Msg
	if err := json.Unmarshal(line, &m); err != nil {
		return Msg{}, fmt.Errorf("supervise: bad protocol line %q: %w", line, err)
	}
	if m.V != ProtoVersion {
		return Msg{}, fmt.Errorf("supervise: protocol version %d, want %d (worker binary mismatch)", m.V, ProtoVersion)
	}
	return m, nil
}

// Reporter is the worker-side sender. All methods are safe for concurrent
// use (the heartbeat goroutine races the analysis goroutine's done/error)
// and nil-safe, so an unsupervised run can pass a nil Reporter around.
//
// A chaos hbstall injection latches the reporter silent: every later
// message — heartbeats AND the final done — is swallowed while the
// analysis keeps running, which is exactly the wedged-runtime shape the
// supervisor must catch by heartbeat timeout.
type Reporter struct {
	mu      sync.Mutex
	w       io.Writer
	shard   string
	stalled bool
	inj     *chaos.Injector
}

// NewReporter builds a reporter writing to w (the worker's stdout) for
// the lease covering global faults [lo, hi).
func NewReporter(w io.Writer, lo, hi int) *Reporter {
	return &Reporter{w: w, shard: fmt.Sprintf("%d-%d", lo, hi)}
}

// SetChaos arms the heartbeat-stall injection point (nil disarms).
func (r *Reporter) SetChaos(inj *chaos.Injector) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.inj = inj
	r.mu.Unlock()
}

// send marshals and writes one line under the lock. The reporter is not
// poisoned by a write error — stdout dying means the supervisor is gone,
// and the stdin watchdog is about to exit the process anyway.
func (r *Reporter) send(m Msg) {
	if r == nil {
		return
	}
	m.V = ProtoVersion
	m.Shard = r.shard
	buf, err := json.Marshal(m)
	if err != nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stalled {
		return
	}
	r.w.Write(append(buf, '\n')) //nolint:errcheck // see above
}

// Hello announces the worker (pid, shard, fault total).
func (r *Reporter) Hello(pid, total int) {
	r.send(Msg{Type: MsgHello, PID: pid, Total: total})
}

// Heartbeat sends one liveness beacon carrying the completed-fault count.
// Each call consults the chaos hbstall point first; a firing latches the
// reporter silent from this beacon on.
func (r *Reporter) Heartbeat(done int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.stalled && r.inj.HeartbeatStall() {
		r.stalled = true
	}
	r.mu.Unlock()
	r.send(Msg{Type: MsgHeartbeat, Done: done})
}

// Done announces shard completion (the worker must exit 0 after).
func (r *Reporter) Done(done int) {
	r.send(Msg{Type: MsgDone, Done: done})
}

// Error reports a fatal worker failure (the worker exits non-zero after).
func (r *Reporter) Error(err error) {
	r.send(Msg{Type: MsgError, Err: err.Error()})
}

// WatchStdin starts the worker-side orphan watchdog: a goroutine draining
// r (the worker's stdin, a pipe the supervisor holds open and never
// writes to) that calls onOrphan when the pipe reaches EOF — i.e. when
// the supervisor died, even by SIGKILL, which runs no cleanup of its own.
// onOrphan must not return (os.Exit).
func WatchStdin(r io.Reader, onOrphan func()) {
	go func() {
		io.Copy(io.Discard, r) //nolint:errcheck // EOF and errors both mean: supervisor gone
		onOrphan()
	}()
}

// readMessages parses the worker's stdout into a message channel, closed
// when the pipe closes. Unparseable lines are delivered as an error via
// bad (worker prints, debug junk — the supervisor logs and ignores them;
// a version mismatch surfaces the same way).
func readMessages(r io.Reader, bad func(error)) <-chan Msg {
	ch := make(chan Msg, 16)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			m, err := ParseMsg(sc.Bytes())
			if err != nil {
				if bad != nil {
					bad(err)
				}
				continue
			}
			ch <- m
		}
	}()
	return ch
}
