// Launching real worker subprocesses: os/exec plumbing, pipe lifecycle,
// and SIGKILL-aware exit classification.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"syscall"
)

// Worker is one running shard worker as the supervisor sees it.
type Worker interface {
	// Events streams the worker's parsed protocol messages; the channel
	// closes when the worker's stdout does.
	Events() <-chan Msg
	// Wait blocks until the process exits and reports its status (nil =
	// exit 0). Safe to call from multiple goroutines.
	Wait() error
	// Kill terminates the worker immediately (SIGKILL — a stalled worker
	// by definition ignores polite signals).
	Kill()
	// SigKilled reports, after Wait has returned, whether the worker died
	// of SIGKILL — the OOM killer's signature (also the supervisor's own
	// stall kill, which the supervisor distinguishes by having sent it).
	SigKilled() bool
}

// Launcher starts a worker subprocess for a shard lease. The supervisor
// calls it for every launch — first attempts, restarts, bisected
// children — with the lease's Attempt and Degrade already advanced.
type Launcher interface {
	Launch(ctx context.Context, sh Shard) (Worker, error)
}

// ExecLauncher launches real subprocesses: Binary with Args(sh), stdout
// as the protocol pipe, stderr passed through, and stdin held open by the
// supervisor so workers can detect supervisor death as EOF (see
// WatchStdin).
type ExecLauncher struct {
	// Binary is the worker executable (normally os.Executable() — the
	// supervisor re-executing itself in worker mode).
	Binary string
	// Args builds the worker's argument list for a lease; it must encode
	// the shard range, checkpoint path, attempt and degrade level.
	Args func(sh Shard) []string
	// Stderr receives the worker's stderr (nil = the supervisor's own).
	Stderr io.Writer
	// BadLine, when non-nil, observes undecodable stdout lines (worker
	// debug prints, protocol version skew). They are skipped either way.
	BadLine func(error)
}

// Launch starts one worker process for the lease.
func (l *ExecLauncher) Launch(ctx context.Context, sh Shard) (Worker, error) {
	cmd := exec.Command(l.Binary, l.Args(sh)...)
	cmd.Stderr = l.Stderr
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("supervise: worker stdin pipe: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		stdin.Close()
		return nil, fmt.Errorf("supervise: worker stdout pipe: %w", err)
	}
	if err := cmd.Start(); err != nil {
		stdin.Close()
		return nil, fmt.Errorf("supervise: launch worker for shard %s: %w", sh.Range(), err)
	}
	w := &execWorker{cmd: cmd, stdin: stdin, events: readMessages(stdout, l.BadLine)}
	// The context doubles as the supervisor's shutdown switch: cancel and
	// every live worker is killed, so no worker outlives its supervisor's
	// orderly exit (disorderly exits are covered by the stdin watchdog).
	go func() {
		select {
		case <-ctx.Done():
			w.Kill()
		case <-w.exited():
		}
	}()
	return w, nil
}

type execWorker struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	events <-chan Msg

	waitOnce sync.Once
	waitErr  error
	waitDone chan struct{} // lazily created by exited()

	mu   sync.Mutex
	done bool
}

func (w *execWorker) Events() <-chan Msg { return w.events }

func (w *execWorker) Wait() error {
	w.waitOnce.Do(func() {
		w.waitErr = w.cmd.Wait()
		// Only now is it safe to drop our end of the worker's stdin: the
		// pipe is the orphan watchdog's supervisor-liveness probe, so it
		// must stay open for the worker's entire life.
		w.stdin.Close()
		w.mu.Lock()
		w.done = true
		w.mu.Unlock()
	})
	return w.waitErr
}

// exited returns a channel closed once Wait has been observed. Used by
// the context-kill goroutine so it does not hold a kill handle forever.
func (w *execWorker) exited() <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		w.Wait() //nolint:errcheck // only the exit event matters here
		close(ch)
	}()
	return ch
}

func (w *execWorker) Kill() {
	w.mu.Lock()
	done := w.done
	w.mu.Unlock()
	if !done && w.cmd.Process != nil {
		w.cmd.Process.Kill() //nolint:errcheck // already-dead is fine
	}
}

func (w *execWorker) SigKilled() bool {
	var ee *exec.ExitError
	if !errors.As(w.waitErr, &ee) {
		return false
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	return ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL
}
