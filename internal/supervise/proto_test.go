package supervise

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

func TestMsgRoundTripAndVersionSkew(t *testing.T) {
	var buf bytes.Buffer
	r := NewReporter(&buf, 10, 25)
	r.Hello(1234, 15)
	r.Heartbeat(3)
	r.Done(15)
	r.Error(errors.New("boom"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("reporter wrote %d lines, want 4:\n%s", len(lines), buf.String())
	}
	wantTypes := []string{MsgHello, MsgHeartbeat, MsgDone, MsgError}
	for i, ln := range lines {
		m, err := ParseMsg([]byte(ln))
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if m.Type != wantTypes[i] {
			t.Fatalf("line %d type = %q, want %q", i, m.Type, wantTypes[i])
		}
		if m.Shard != "10-25" {
			t.Fatalf("line %d shard = %q, want 10-25", i, m.Shard)
		}
	}
	if m, _ := ParseMsg([]byte(lines[0])); m.PID != 1234 || m.Total != 15 {
		t.Fatalf("hello = %+v", m)
	}
	if m, _ := ParseMsg([]byte(lines[3])); m.Err != "boom" {
		t.Fatalf("error msg = %+v", m)
	}

	if _, err := ParseMsg([]byte(`{"v":99,"type":"hb"}`)); err == nil {
		t.Fatal("version-skewed message accepted")
	}
	if _, err := ParseMsg([]byte(`not json`)); err == nil {
		t.Fatal("garbage line accepted")
	}
}

func TestNilReporterIsSafe(t *testing.T) {
	var r *Reporter
	r.Hello(1, 1)
	r.Heartbeat(0)
	r.Done(1)
	r.Error(errors.New("x"))
	r.SetChaos(nil)
}

func TestChaosStallLatchesReporterSilent(t *testing.T) {
	var buf bytes.Buffer
	r := NewReporter(&buf, 0, 4)
	// Stall the third heartbeat tick (sequence key 2).
	r.SetChaos(chaos.New(&chaos.Config{
		Rules: []chaos.Rule{{Point: chaos.PointHeartbeatStall, Indices: []int{2}}},
	}))
	r.Hello(1, 4)
	for i := 0; i < 5; i++ {
		r.Heartbeat(i)
	}
	r.Done(4) // must be swallowed too: a stalled worker never reports done
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// hello + heartbeats 0 and 1; the stall fires on tick 2 and latches.
	if len(lines) != 3 {
		t.Fatalf("stalled reporter wrote %d lines, want 3:\n%s", len(lines), buf.String())
	}
	last, err := ParseMsg([]byte(lines[2]))
	if err != nil || last.Type != MsgHeartbeat || last.Done != 1 {
		t.Fatalf("last visible message = %+v (err %v), want hb done=1", last, err)
	}
}

func TestReadMessagesSkipsJunkAndCloses(t *testing.T) {
	var buf bytes.Buffer
	r := NewReporter(&buf, 0, 2)
	input := "garbage\n" + buf.String()
	r.Hello(7, 2)
	r.Done(2)
	input += buf.String() + "\n{\"v\":99,\"type\":\"hb\"}\n"

	var bad []error
	ch := readMessages(strings.NewReader(input), func(err error) { bad = append(bad, err) })
	var got []Msg
	for m := range ch {
		got = append(got, m)
	}
	if len(got) != 2 || got[0].Type != MsgHello || got[1].Type != MsgDone {
		t.Fatalf("messages = %+v, want hello+done", got)
	}
	if len(bad) != 2 {
		t.Fatalf("bad-line callback fired %d times, want 2 (garbage + version skew): %v", len(bad), bad)
	}
}

func TestWatchStdinFiresOnEOF(t *testing.T) {
	pr, pw := io.Pipe()
	orphaned := make(chan struct{})
	WatchStdin(pr, func() { close(orphaned) })
	select {
	case <-orphaned:
		t.Fatal("orphan watchdog fired while the pipe was open")
	case <-time.After(20 * time.Millisecond):
	}
	pw.Close() // the supervisor dying closes its end
	select {
	case <-orphaned:
	case <-time.After(2 * time.Second):
		t.Fatal("orphan watchdog never fired after EOF")
	}
}

func TestParseRange(t *testing.T) {
	lo, hi, err := ParseRange("3-17")
	if err != nil || lo != 3 || hi != 17 {
		t.Fatalf("ParseRange(3-17) = %d, %d, %v", lo, hi, err)
	}
	for _, bad := range []string{"", "5", "5-5", "7-3", "-1-4", "a-b", "1-2-3x"} {
		if _, _, err := ParseRange(bad); err == nil {
			t.Errorf("ParseRange(%q) accepted", bad)
		}
	}
	for i := 0; i < 5; i++ {
		sh := Shard{Lo: i, Hi: i + 3}
		lo, hi, err := ParseRange(sh.Range())
		if err != nil || lo != sh.Lo || hi != sh.Hi {
			t.Fatalf("Range/ParseRange round trip broke for %s", sh.Range())
		}
	}
	if s := (Shard{Lo: 2, Hi: 9}).Size(); s != 7 {
		t.Fatalf("Size = %d, want 7", s)
	}
	_ = fmt.Sprintf("%v", Shard{})
}
