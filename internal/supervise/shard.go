// Shard leases: the unit of work the supervisor dispatches, tracks, and
// re-dispatches across worker subprocess lifetimes.
package supervise

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard is one lease over the global fault range [Lo, Hi): a contiguous
// slice of the campaign's fault set, analyzed by one worker subprocess at
// a time against its own fingerprinted checkpoint at Path. The supervisor
// owns the lease for the shard's whole life — across worker deaths,
// restarts and bisections — and a shard only leaves the lease table by
// completing or by splitting into two child leases.
type Shard struct {
	// Lo and Hi bound the global fault range [Lo, Hi).
	Lo, Hi int
	// Path is the shard's checkpoint file. Workers resume from it on
	// restart, so faults completed before a death are never recomputed.
	Path string
	// Attempt counts worker launches for this lease (0 = first). It is
	// also the restarted worker's chaos attempt (process-level injection
	// points without rep= fire only at attempt 0).
	Attempt int
	// Degrade is the lease's degradation level: raised after consecutive
	// memory-pressure deaths, it tells the launcher to shed analysis
	// threads and tighten the node budget on the next launch.
	Degrade int

	// oomStreak counts consecutive SIGKILL deaths; the supervisor raises
	// Degrade when it reaches the configured threshold.
	oomStreak int
}

// Size is the shard's fault count.
func (s Shard) Size() int { return s.Hi - s.Lo }

// Range renders the shard's global range as the protocol/flag form
// "lo-hi".
func (s Shard) Range() string { return fmt.Sprintf("%d-%d", s.Lo, s.Hi) }

// ParseRange parses the "lo-hi" form back into a [lo, hi) range,
// rejecting empty and inverted ranges.
func ParseRange(s string) (lo, hi int, err error) {
	a, b, ok := strings.Cut(s, "-")
	if ok {
		var e1, e2 error
		lo, e1 = strconv.Atoi(a)
		hi, e2 = strconv.Atoi(b)
		if e1 == nil && e2 == nil && lo >= 0 && hi > lo {
			return lo, hi, nil
		}
	}
	return 0, 0, fmt.Errorf("supervise: bad shard range %q (want \"lo-hi\" with 0 <= lo < hi)", s)
}
