package supervise

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/obs"
)

// fakeWorker is a scriptable in-process Worker.
type fakeWorker struct {
	events  chan Msg
	waitCh  chan struct{}
	mu      sync.Mutex
	err     error
	sigkill bool
	killed  bool
}

func newFakeWorker() *fakeWorker {
	return &fakeWorker{events: make(chan Msg, 64), waitCh: make(chan struct{})}
}

func (w *fakeWorker) Events() <-chan Msg { return w.events }
func (w *fakeWorker) Wait() error        { <-w.waitCh; return w.err }

// finish ends the worker: events close, then Wait unblocks with err.
func (w *fakeWorker) finish(err error, sigkill bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		return
	}
	w.killed = true
	w.err = err
	w.sigkill = sigkill
	close(w.events)
	close(w.waitCh)
}

// Kill models SIGKILL: instant death, no more events, signal exit.
func (w *fakeWorker) Kill() { w.finish(errors.New("killed"), true) }

// send delivers one protocol message unless the worker is already dead
// (a real dead process cannot write to its pipe either). Reports whether
// the worker is still alive.
func (w *fakeWorker) send(m Msg) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		return false
	}
	w.events <- m
	return true
}

func (w *fakeWorker) SigKilled() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sigkill
}

// scriptLauncher runs each launched worker's behavior in a goroutine,
// mimicking ExecLauncher's kill-on-context-cancel contract.
type scriptLauncher struct {
	run      func(sh Shard, w *fakeWorker)
	launches atomic.Int64
}

func (l *scriptLauncher) Launch(ctx context.Context, sh Shard) (Worker, error) {
	l.launches.Add(1)
	w := newFakeWorker()
	go func() {
		select {
		case <-ctx.Done():
			w.Kill()
		case <-w.waitCh:
		}
	}()
	go l.run(sh, w)
	return w, nil
}

// testStore implements Store over synthetic fault records. The
// fingerprint is derived from the shard range so bisected children get
// their own, like the real circuit-hash headers do.
type testStore struct{}

func (testStore) Header(lo, hi int) analysis.CheckpointHeader {
	h := sha256.Sum256([]byte(fmt.Sprintf("test-faults-%d-%d", lo, hi)))
	return analysis.CheckpointHeader{
		Kind:        "test",
		Circuit:     "fake",
		Faults:      hi - lo,
		Fingerprint: hex.EncodeToString(h[:16]),
	}.WithShard(lo, hi)
}

func (testStore) QuarantineRecord(global int) (json.RawMessage, error) {
	return json.RawMessage(fmt.Sprintf(`{"fault":%d,"err":"quarantined"}`, global)), nil
}

// faultRecord is what scripted workers persist for an analyzed fault.
type faultRecord struct {
	Fault int    `json:"fault"`
	Err   string `json:"err,omitempty"`
}

// analyzeShard is the scripted workers' shared analysis loop: resume the
// shard checkpoint, append records for unfinished faults, and die when
// the (global) poison fault is reached at the given attempt predicate.
// Returns true when the shard completed.
func analyzeShard(t *testing.T, sh Shard, w *fakeWorker, appended *atomic.Int64, dieAt func(global int) bool) bool {
	t.Helper()
	cp, resume, err := analysis.ResumeCheckpoint(sh.Path, testStore{}.Header(sh.Lo, sh.Hi))
	if err != nil {
		t.Errorf("worker resume %s: %v", sh.Range(), err)
		w.finish(errors.New("resume failed"), false)
		return false
	}
	defer cp.Close()
	if !w.send(Msg{V: ProtoVersion, Type: MsgHello, Shard: sh.Range(), PID: 1, Total: sh.Size()}) {
		return false
	}
	done := len(resume)
	for local := 0; local < sh.Size(); local++ {
		if _, ok := resume[local]; ok {
			continue
		}
		global := sh.Lo + local
		if dieAt != nil && dieAt(global) {
			w.finish(errors.New("worker crashed"), false)
			return false
		}
		if err := cp.Append(local, faultRecord{Fault: global}); err != nil {
			t.Errorf("worker append %d: %v", global, err)
		}
		appended.Add(1)
		done++
		if !w.send(Msg{V: ProtoVersion, Type: MsgHeartbeat, Shard: sh.Range(), Done: done}) {
			return false // killed mid-shard (context cancel, stall kill)
		}
	}
	cp.Close()
	if !w.send(Msg{V: ProtoVersion, Type: MsgDone, Shard: sh.Range(), Done: done}) {
		return false
	}
	w.finish(nil, false)
	return true
}

func checkMergedRecords(t *testing.T, recs map[int]json.RawMessage, total int, quarantined map[int]bool) {
	t.Helper()
	if len(recs) != total {
		t.Fatalf("merged %d records, want %d", len(recs), total)
	}
	for i := 0; i < total; i++ {
		var r faultRecord
		if err := json.Unmarshal(recs[i], &r); err != nil {
			t.Fatalf("record %d: %v (%s)", i, err, recs[i])
		}
		if r.Fault != i {
			t.Fatalf("record %d carries fault %d (cross-shard rebase broke)", i, r.Fault)
		}
		if quarantined[i] != (r.Err != "") {
			t.Fatalf("record %d err=%q, quarantined=%v", i, r.Err, quarantined[i])
		}
	}
}

func TestRunShardedAllComplete(t *testing.T) {
	var appended atomic.Int64
	l := &scriptLauncher{run: func(sh Shard, w *fakeWorker) { analyzeShard(t, sh, w, &appended, nil) }}
	res, err := RunSharded(context.Background(), CampaignConfig{
		Supervisor: Config{Launcher: l},
		Store:      testStore{},
		Faults:     10,
		Shards:     3,
		Dir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkMergedRecords(t, res.Records, 10, nil)
	s := res.Supervision
	if s.Deaths != 0 || s.Restarts != 0 || s.Bisects != 0 || len(s.Quarantined) != 0 {
		t.Fatalf("clean run reported supervision events: %+v", s)
	}
	if len(s.Completed) != 3 || appended.Load() != 10 {
		t.Fatalf("completed=%d appended=%d, want 3 shards / 10 appends", len(s.Completed), appended.Load())
	}
}

func TestWorkerDeathRestartsFromCheckpoint(t *testing.T) {
	var appended atomic.Int64
	var attempts atomic.Int64
	l := &scriptLauncher{}
	l.run = func(sh Shard, w *fakeWorker) {
		first := attempts.Add(1) == 1
		analyzeShard(t, sh, w, &appended, func(global int) bool {
			return first && global == 4 // die mid-shard on the first attempt only
		})
	}
	res, err := RunSharded(context.Background(), CampaignConfig{
		Supervisor: Config{Launcher: l, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond},
		Store:      testStore{},
		Faults:     8,
		Shards:     1,
		Dir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkMergedRecords(t, res.Records, 8, nil)
	s := res.Supervision
	if s.Deaths != 1 || s.Restarts != 1 || s.Bisects != 0 {
		t.Fatalf("supervision = %+v, want 1 death / 1 restart / 0 bisects", s)
	}
	// Faults 0..3 were persisted before the death and must NOT have been
	// recomputed by the restarted worker: 8 total appends, not 12.
	if appended.Load() != 8 {
		t.Fatalf("workers appended %d records, want 8 (restart recomputed finished faults)", appended.Load())
	}
}

func TestPoisonFaultBisectedToQuarantine(t *testing.T) {
	const poison = 5
	var appended atomic.Int64
	l := &scriptLauncher{run: func(sh Shard, w *fakeWorker) {
		analyzeShard(t, sh, w, &appended, func(global int) bool { return global == poison })
	}}
	res, err := RunSharded(context.Background(), CampaignConfig{
		Supervisor: Config{
			Launcher:    l,
			MaxRestarts: -1, // escalate on first death: exercises the bisection ladder fast
			BackoffBase: time.Millisecond,
		},
		Store:  testStore{},
		Faults: 8,
		Shards: 1,
		Procs:  2,
		Dir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkMergedRecords(t, res.Records, 8, map[int]bool{poison: true})
	s := res.Supervision
	if len(s.Quarantined) != 1 || s.Quarantined[0] != poison {
		t.Fatalf("quarantined %v, want [%d]", s.Quarantined, poison)
	}
	// 8 faults in one shard: bisections 0-8 → 4-8 → 4-6 → 5-6(quarantine).
	if s.Bisects != 3 || s.Deaths != 4 {
		t.Fatalf("supervision = %+v, want 3 bisects / 4 deaths", s)
	}
	if appended.Load() != 7 {
		t.Fatalf("appended %d records, want 7 (the 7 healthy faults exactly once)", appended.Load())
	}
	var rec faultRecord
	if err := json.Unmarshal(res.Records[poison], &rec); err != nil || rec.Err != "quarantined" {
		t.Fatalf("poison record = %s (%v)", res.Records[poison], err)
	}
}

func TestPoisonFlightTrailAndMetrics(t *testing.T) {
	const poison = 2
	var appended atomic.Int64
	l := &scriptLauncher{run: func(sh Shard, w *fakeWorker) {
		analyzeShard(t, sh, w, &appended, func(global int) bool { return global == poison })
	}}
	o := &obs.Observer{Flight: obs.NewFlightRecorder(256), Metrics: obs.NewRegistry()}
	res, err := RunSharded(context.Background(), CampaignConfig{
		Supervisor: Config{Launcher: l, MaxRestarts: -1, BackoffBase: time.Millisecond, Obs: o},
		Store:      testStore{},
		Faults:     4,
		Shards:     1,
		Dir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkMergedRecords(t, res.Records, 4, map[int]bool{poison: true})
	kinds := map[string]int{}
	for _, ev := range o.Flight.Snapshot() {
		kinds[ev.Kind]++
	}
	for _, want := range []obs.FlightKind{obs.FlightSpawn, obs.FlightWorkerDeath, obs.FlightBisect, obs.FlightQuarantine} {
		if kinds[want.String()] == 0 {
			t.Fatalf("no %s flight events recorded (got %v)", want, kinds)
		}
	}
	cm := o.CampaignMetrics()
	if cm.SupervisorWorkerDeaths.Value() == 0 || cm.SupervisorBisects.Value() == 0 || cm.SupervisorQuarantined.Value() != 1 {
		t.Fatalf("supervisor metrics deaths=%d bisects=%d quarantined=%d",
			cm.SupervisorWorkerDeaths.Value(), cm.SupervisorBisects.Value(), cm.SupervisorQuarantined.Value())
	}
	if cm.SupervisorWorkersLive.Value() != 0 {
		t.Fatalf("workers-live gauge = %d after completion, want 0", cm.SupervisorWorkersLive.Value())
	}
}

func TestHeartbeatStallKilledAndRestarted(t *testing.T) {
	var appended atomic.Int64
	var attempts atomic.Int64
	l := &scriptLauncher{}
	l.run = func(sh Shard, w *fakeWorker) {
		if attempts.Add(1) == 1 {
			// A wedged worker: says hello, then goes protocol-silent
			// forever. Only the supervisor's stall kill ends it.
			w.events <- Msg{V: ProtoVersion, Type: MsgHello, Shard: sh.Range(), PID: 1}
			return
		}
		analyzeShard(t, sh, w, &appended, nil)
	}
	o := &obs.Observer{Flight: obs.NewFlightRecorder(64)}
	res, err := RunSharded(context.Background(), CampaignConfig{
		Supervisor: Config{
			Launcher:         l,
			HeartbeatTimeout: 30 * time.Millisecond,
			HeartbeatPoll:    5 * time.Millisecond,
			BackoffBase:      time.Millisecond,
			Obs:              o,
		},
		Store:  testStore{},
		Faults: 3,
		Shards: 1,
		Dir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkMergedRecords(t, res.Records, 3, nil)
	if res.Supervision.Deaths != 1 || res.Supervision.Restarts != 1 {
		t.Fatalf("supervision = %+v, want 1 stall death + 1 restart", res.Supervision)
	}
	// The death must be classified as a stall, not an OOM kill, even
	// though the worker died of (the supervisor's own) SIGKILL.
	for _, ev := range o.Flight.Snapshot() {
		if ev.Kind == obs.FlightWorkerDeath.String() && ev.Label != obs.FlightLabelName(obs.FlightLabelStall) {
			t.Fatalf("worker death labelled %q, want stall", ev.Label)
		}
	}
}

func TestConsecutiveOOMDeathsDegradeTheLease(t *testing.T) {
	var appended atomic.Int64
	var attempts atomic.Int64
	var degradeSeen atomic.Int64
	l := &scriptLauncher{}
	l.run = func(sh Shard, w *fakeWorker) {
		if attempts.Add(1) <= 2 {
			// The OOM killer's signature: SIGKILL, no protocol goodbye.
			w.finish(errors.New("oom killed"), true)
			return
		}
		degradeSeen.Store(int64(sh.Degrade))
		analyzeShard(t, sh, w, &appended, nil)
	}
	res, err := RunSharded(context.Background(), CampaignConfig{
		Supervisor: Config{
			Launcher:    l,
			MaxRestarts: 5,
			OOMDeaths:   2,
			BackoffBase: time.Millisecond,
		},
		Store:  testStore{},
		Faults: 4,
		Shards: 1,
		Dir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkMergedRecords(t, res.Records, 4, nil)
	s := res.Supervision
	if s.Deaths != 2 || s.Restarts != 2 || s.DegradedLaunches != 1 {
		t.Fatalf("supervision = %+v, want 2 oom deaths / 2 restarts / 1 degraded launch", s)
	}
	if degradeSeen.Load() != 1 {
		t.Fatalf("third launch saw degrade level %d, want 1", degradeSeen.Load())
	}
}

func TestContextCancelStopsWithoutRestarts(t *testing.T) {
	started := make(chan struct{}, 8)
	l := &scriptLauncher{run: func(sh Shard, w *fakeWorker) {
		started <- struct{}{}
		// Run forever (heartbeating, so no stall kill): only the
		// launcher's context kill ends this worker.
		for w.send(Msg{V: ProtoVersion, Type: MsgHeartbeat, Shard: sh.Range(), Done: 0}) {
			time.Sleep(time.Millisecond)
		}
	}}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var res CampaignResult
	go func() {
		var err error
		res, err = RunSharded(ctx, CampaignConfig{
			Supervisor: Config{Launcher: l},
			Store:      testStore{},
			Faults:     6,
			Shards:     2,
			Dir:        t.TempDir(),
		})
		done <- err
	}()
	<-started
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunSharded returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor did not unwind after cancel")
	}
	if res.Supervision.Restarts != 0 {
		t.Fatalf("supervisor restarted workers during shutdown: %+v", res.Supervision)
	}
	if l.launches.Load() != 2 {
		t.Fatalf("launches = %d, want 2 (no re-dispatch after cancel)", l.launches.Load())
	}
}

func TestSupervisorRerunResumesShardCheckpoints(t *testing.T) {
	// A supervisor that was itself killed leaves shard checkpoints behind;
	// rerunning the campaign over the same dir must resume them.
	dir := t.TempDir()
	var appended atomic.Int64
	run := func(dieAt func(int) bool) (CampaignResult, error) {
		l := &scriptLauncher{run: func(sh Shard, w *fakeWorker) {
			analyzeShard(t, sh, w, &appended, dieAt)
		}}
		return RunSharded(context.Background(), CampaignConfig{
			Supervisor: Config{Launcher: l, MaxRestarts: -1},
			Store:      testStore{},
			Faults:     6,
			Shards:     2,
			Dir:        dir,
		})
	}
	// First run: each worker dies partway and the campaign is cancelled
	// (the operator killing the supervisor), leaving partial checkpoints.
	ctx, cancel := context.WithCancel(context.Background())
	l := &scriptLauncher{run: func(sh Shard, w *fakeWorker) {
		analyzeShard(t, sh, w, &appended, func(global int) bool {
			if global == 2 || global == 5 {
				cancel() // simulate the operator killing the supervisor mid-flight
				return true
			}
			return false
		})
	}}
	_, err := RunSharded(ctx, CampaignConfig{
		Supervisor: Config{Launcher: l},
		Store:      testStore{},
		Faults:     6,
		Shards:     2,
		Dir:        dir,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("first run = %v, want context.Canceled", err)
	}
	firstAppends := appended.Load()
	if firstAppends == 0 {
		t.Fatal("first run persisted nothing; test premise broken")
	}
	// Second run over the same dir: must finish, recomputing nothing.
	res, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	checkMergedRecords(t, res.Records, 6, nil)
	if appended.Load() != 6 {
		t.Fatalf("total appends across both runs = %d, want 6 (rerun recomputed persisted faults)", appended.Load())
	}
}

func TestLaunchFailureAborts(t *testing.T) {
	boom := errors.New("no such binary")
	l := launcherFunc(func(ctx context.Context, sh Shard) (Worker, error) { return nil, boom })
	_, err := RunSharded(context.Background(), CampaignConfig{
		Supervisor: Config{Launcher: l},
		Store:      testStore{},
		Faults:     4,
		Shards:     2,
		Dir:        t.TempDir(),
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want launch failure", err)
	}
}

type launcherFunc func(ctx context.Context, sh Shard) (Worker, error)

func (f launcherFunc) Launch(ctx context.Context, sh Shard) (Worker, error) { return f(ctx, sh) }

func TestBackoffCappedAndJittered(t *testing.T) {
	s := New(Config{Launcher: launcherFunc(nil), BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second})
	for n := 1; n <= 10; n++ {
		d := s.backoff(n)
		if d < 100*time.Millisecond {
			t.Fatalf("backoff(%d) = %v below base", n, d)
		}
		if d > time.Second+time.Second/2 {
			t.Fatalf("backoff(%d) = %v above cap+jitter", n, d)
		}
	}
	if d := s.backoff(1); d >= s.backoff(8)*2 {
		t.Logf("jitter made attempt 1 (%v) out-dwarf attempt 8 — acceptable but unusual", d)
	}
}
