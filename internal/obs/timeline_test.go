package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestTimelineSamplesCampaignGauges(t *testing.T) {
	o := &Observer{Metrics: NewRegistry()}
	cm := o.CampaignMetrics()
	cm.BDDNodes.Set(5000)
	cm.BDDTableBuckets.Set(10000)
	cm.GovernorParked.Set(2)
	cm.CalibrationBudgetOps.Set(123456)
	cm.FaultsDone.Add(42)
	cm.CacheHitsLive.Set(900)
	cm.CacheMissesLive.Set(100)

	tl := o.StartTimeline(time.Millisecond, 16)
	if tl == nil {
		t.Fatal("StartTimeline returned nil")
	}
	if o.StartTimeline(time.Millisecond, 16) != tl {
		t.Fatal("StartTimeline is not idempotent")
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(tl.Snapshot()) < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	tl.Stop()
	tl.Stop() // idempotent

	samples := tl.Snapshot()
	if len(samples) < 3 {
		t.Fatalf("sampler produced %d samples, want >= 3", len(samples))
	}
	last := samples[len(samples)-1]
	if last.BDDNodes != 5000 || last.ParkedWorkers != 2 || last.CalibrationBudgetOps != 123456 || last.FaultsDone != 42 {
		t.Fatalf("last sample = %+v, gauges not reflected", last)
	}
	if last.TableLoad < 0.49 || last.TableLoad > 0.51 {
		t.Fatalf("TableLoad = %v, want 5000/10000 = 0.5", last.TableLoad)
	}
	if last.HeapBytes == 0 {
		t.Fatal("HeapBytes not sampled")
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].TUS < samples[i-1].TUS {
			t.Fatalf("samples not time-ordered at %d", i)
		}
	}
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.Stop()
	if s := tl.Snapshot(); s != nil {
		t.Fatalf("nil Snapshot() = %v", s)
	}
	var o *Observer
	if o.StartTimeline(0, 0) != nil {
		t.Fatal("nil observer StartTimeline should return nil")
	}
	if o.Timeline() != nil {
		t.Fatal("nil observer Timeline should return nil")
	}
}

func TestTimelineEndpoint(t *testing.T) {
	o := &Observer{Metrics: NewRegistry()}
	o.CampaignMetrics().BDDNodes.Set(77)
	tl := o.StartTimeline(time.Millisecond, 8)
	deadline := time.Now().Add(2 * time.Second)
	for len(tl.Snapshot()) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	tl.Stop()

	srv := httptest.NewServer(NewMux(o))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /timeline: %s", resp.Status)
	}
	var body struct {
		Samples []TimelineSample `json:"samples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /timeline: %v", err)
	}
	if len(body.Samples) == 0 {
		t.Fatal("/timeline returned no samples")
	}
	if body.Samples[len(body.Samples)-1].BDDNodes != 77 {
		t.Fatalf("last sample = %+v, want BDDNodes 77", body.Samples[len(body.Samples)-1])
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	s := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []int64{2, 2, 4, 0},
		Count:  8,
	}
	cases := []struct{ q, want float64 }{
		{0.125, 0.5}, // rank 1 of 2 in [0,1)
		{0.25, 1.0},  // exactly the first bucket's upper bound
		{0.5, 2.0},   // exactly the second bucket's upper bound
		{0.75, 3.0},  // rank 6: halfway through [2,4)
		{1.0, 4.0},
		{0, 0},
		{-1, 0},  // clamped
		{2, 4.0}, // clamped
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}

	inf := HistogramSnapshot{Bounds: []float64{1, 2, 4}, Counts: []int64{0, 0, 0, 5}, Count: 5}
	if got := inf.Quantile(0.5); got != 4 {
		t.Errorf("+Inf-bucket Quantile(0.5) = %v, want last finite bound 4", got)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", got)
	}
}

// TestSnapshotETAUsesRecentRate pins the ETA-skew fix: a campaign whose
// first half crawled must project from the sliding window of recent
// completions, not the whole-run average.
func TestSnapshotETAUsesRecentRate(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	clock := base
	c := &Campaign{name: "eta", total: 200, start: base, now: func() time.Time { return clock }}

	// 100 faults over 10000s: whole-run average of 0.01 faults/s.
	for i := 0; i < 100; i++ {
		clock = base.Add(time.Duration(i+1) * 100 * time.Second)
		c.FaultDone(OutcomeExact)
	}
	// Then 64 faults at 1/s: the window now only sees the fast regime.
	for i := 0; i < 64; i++ {
		clock = clock.Add(time.Second)
		c.FaultDone(OutcomeExact)
	}

	s := c.Snapshot()
	if s.Done != 164 {
		t.Fatalf("Done = %d, want 164", s.Done)
	}
	// 36 faults remain. Whole-run average (~0.0163/s) would project
	// ~2208s; the 64-wide window spans 63s → ~1.016/s → ~35.4s.
	if s.ETASec > 120 {
		t.Fatalf("ETASec = %.0f, still skewed by the slow start (want < 120s)", s.ETASec)
	}
	if s.ETASec < 20 {
		t.Fatalf("ETASec = %.0f, implausibly low", s.ETASec)
	}

	// Until the window has two entries the projection falls back to the
	// whole-run average instead of dividing by a zero span.
	c2 := &Campaign{name: "eta2", total: 10, start: base, now: func() time.Time { return clock }}
	clock = base.Add(2 * time.Second)
	c2.FaultDone(OutcomeExact)
	if s2 := c2.Snapshot(); s2.ETASec <= 0 {
		t.Fatalf("single-completion ETASec = %v, want whole-run fallback > 0", s2.ETASec)
	}
}
