// The opt-in debug HTTP server behind the -http flag: Prometheus /metrics,
// a /progress JSON heartbeat, expvar at /debug/vars, and the full
// net/http/pprof suite at /debug/pprof/ for live CPU/heap profiling of a
// running campaign.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the debug server's routing table over an observer. The
// observer may be nil: every endpoint still answers (with empty bodies),
// so the server's shape does not depend on which subsystems are enabled.
func NewMux(o *Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metricsHandler(o))
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(o.Progress()) //nolint:errcheck // best-effort over HTTP
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		samples := o.Timeline().Snapshot()
		if samples == nil {
			samples = []TimelineSample{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Samples []TimelineSample `json:"samples"`
		}{samples}) //nolint:errcheck // best-effort over HTTP
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "diffprop debug server\n\n/metrics\n/progress\n/timeline\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

func metricsHandler(o *Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if o != nil {
			o.Metrics.WritePrometheus(w) //nolint:errcheck // best-effort over HTTP
		}
	})
}

// Server is a running debug HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug server on addr (e.g. ":6060" or "127.0.0.1:0")
// and serves it on a background goroutine until Close.
func Serve(addr string, o *Observer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: NewMux(o), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the server's bound address (resolves ":0" to the actual
// port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
