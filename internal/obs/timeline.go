// Timeline: a periodic bounded-ring snapshotter of the system's vital
// signs — heap size, live BDD nodes, unique-table occupancy, op-cache hit
// ratio, fault throughput, parked workers, calibration budget — served at
// /timeline and embedded in flight dumps. One background goroutine
// samples the campaign gauges on a fixed period; the ring keeps the most
// recent window. All methods are nil-safe.
package obs

import (
	"runtime"
	"sync"
	"time"
)

// TimelineSample is one periodic reading of the system's vital signs.
// Ratio and rate fields are computed over the interval since the previous
// sample, not cumulatively, so a mid-run cache-behavior change is visible
// in the curve.
type TimelineSample struct {
	TUS                  int64   `json:"t_us"`
	HeapBytes            int64   `json:"heap_bytes"`
	BDDNodes             int64   `json:"bdd_nodes"`
	TableLoad            float64 `json:"table_load"`
	CacheHitRatio        float64 `json:"cache_hit_ratio"`
	FaultsDone           int64   `json:"faults_done"`
	FaultsPerSec         float64 `json:"faults_per_s"`
	ParkedWorkers        int64   `json:"parked_workers"`
	CalibrationBudgetOps int64   `json:"calibration_budget_ops"`
	// GatesVisited is the cumulative propagation-walk footprint;
	// ConeSkipRatio the interval-local fraction of gates cone-restricted
	// propagation skipped (0 while the full-scan reference runs).
	GatesVisited  int64   `json:"gates_visited"`
	ConeSkipRatio float64 `json:"cone_skip_ratio"`
}

// Default timeline cadence: one sample every 500ms, last ~17 minutes
// retained. Longer campaigns wrap; the flight dump still shows the most
// recent window, which is the one post-mortems care about.
const (
	DefaultTimelinePeriod  = 500 * time.Millisecond
	DefaultTimelineSamples = 2048
)

// Timeline is a bounded ring of periodic samples filled by a background
// goroutine started with Observer.StartTimeline.
type Timeline struct {
	mu   sync.Mutex
	ring []TimelineSample
	next uint64

	cm    *CampaignMetrics
	start time.Time
	stop  chan struct{}
	done  chan struct{}

	// previous-sample state for interval deltas
	lastHits, lastMisses, lastDone int64
	lastVisited, lastSkipped       int64
	lastT                          time.Time
}

// StartTimeline launches the periodic sampler (idempotent: a second call
// returns the already-running timeline). A nil observer returns nil; the
// sampler reads the observer's campaign metrics, so an observer without a
// registry records heap-only samples.
func (o *Observer) StartTimeline(period time.Duration, capacity int) *Timeline {
	if o == nil {
		return nil
	}
	if period <= 0 {
		period = DefaultTimelinePeriod
	}
	if capacity <= 0 {
		capacity = DefaultTimelineSamples
	}
	o.mu.Lock()
	if o.timeline != nil {
		t := o.timeline
		o.mu.Unlock()
		return t
	}
	t := &Timeline{
		ring:  make([]TimelineSample, capacity),
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	t.lastT = t.start
	o.timeline = t
	o.mu.Unlock()
	t.cm = o.CampaignMetrics()
	go t.run(period)
	return t
}

// Timeline returns the running timeline, or nil when none was started.
func (o *Observer) Timeline() *Timeline {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.timeline
}

// Stop halts the sampler goroutine and waits for it to exit (nil-safe,
// idempotent).
func (t *Timeline) Stop() {
	if t == nil {
		return
	}
	t.mu.Lock()
	select {
	case <-t.stop:
		t.mu.Unlock()
		<-t.done
		return
	default:
	}
	close(t.stop)
	t.mu.Unlock()
	<-t.done
}

func (t *Timeline) run(period time.Duration) {
	defer close(t.done)
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			t.sample() // one final reading so short runs are never empty
			return
		case <-tick.C:
			t.sample()
		}
	}
}

// sample takes one reading and appends it to the ring.
func (t *Timeline) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	now := time.Now()

	s := TimelineSample{
		TUS:                  now.Sub(t.start).Microseconds(),
		HeapBytes:            int64(ms.HeapAlloc),
		BDDNodes:             t.cm.BDDNodes.Value(),
		ParkedWorkers:        t.cm.GovernorParked.Value(),
		CalibrationBudgetOps: t.cm.CalibrationBudgetOps.Value(),
		FaultsDone:           t.cm.FaultsDone.Value(),
	}
	if buckets := t.cm.BDDTableBuckets.Value(); buckets > 0 {
		s.TableLoad = float64(s.BDDNodes) / float64(buckets)
	}
	hits, misses := t.cm.CacheHitsLive.Value(), t.cm.CacheMissesLive.Value()
	visited, skipped := t.cm.GatesVisited.Value(), t.cm.GatesSkipped.Value()
	s.GatesVisited = visited

	t.mu.Lock()
	if dh, dm := hits-t.lastHits, misses-t.lastMisses; dh+dm > 0 {
		s.CacheHitRatio = float64(dh) / float64(dh+dm)
	}
	if dv, ds := visited-t.lastVisited, skipped-t.lastSkipped; dv+ds > 0 {
		s.ConeSkipRatio = float64(ds) / float64(dv+ds)
	}
	if dt := now.Sub(t.lastT).Seconds(); dt > 0 {
		s.FaultsPerSec = float64(s.FaultsDone-t.lastDone) / dt
	}
	t.lastVisited, t.lastSkipped = visited, skipped
	t.lastHits, t.lastMisses, t.lastDone, t.lastT = hits, misses, s.FaultsDone, now
	t.ring[t.next%uint64(len(t.ring))] = s
	t.next++
	t.mu.Unlock()
}

// Snapshot returns the retained samples oldest-first (nil-safe).
func (t *Timeline) Snapshot() []TimelineSample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	lo := uint64(0)
	if t.next > n {
		lo = t.next - n
	}
	out := make([]TimelineSample, 0, t.next-lo)
	for seq := lo; seq < t.next; seq++ {
		out = append(out, t.ring[seq%n])
	}
	return out
}
