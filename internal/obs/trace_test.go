package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func span(i, worker int, outcome string) FaultSpan {
	return FaultSpan{
		Index:     i,
		Fault:     "n23/SA1",
		Worker:    worker,
		Outcome:   outcome,
		Start:     time.Now(),
		Dur:       3 * time.Millisecond,
		Build:     time.Millisecond,
		Propagate: time.Millisecond,
		SatCount:  time.Millisecond,
	}
}

func TestTracerJSONL(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b, FormatJSONL)
	for i := 0; i < 3; i++ {
		if err := tr.Emit(span(i, i%2, "exact")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 3 {
		t.Fatalf("events = %d, want 3", tr.Events())
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	lines := 0
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		for _, key := range []string{"ts_us", "dur_us", "i", "fault", "worker", "outcome", "build_us", "propagate_us", "satcount_us"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		if ev["outcome"] != "exact" {
			t.Fatalf("outcome = %v", ev["outcome"])
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("%d JSONL lines, want 3", lines)
	}
}

// TestTracerChrome verifies the Chrome trace_event output is one valid
// JSON array of complete ("X") events, as chrome://tracing expects.
func TestTracerChrome(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b, FormatChrome)
	for i := 0; i < 2; i++ {
		if err := tr.Emit(span(i, i, "approximate")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v\n%s", err, b.String())
	}
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev.Ph != "X" || ev.Cat != "fault" || ev.Name != "n23/SA1" {
			t.Fatalf("unexpected event %+v", ev)
		}
		if ev.Args["outcome"] != "approximate" {
			t.Fatalf("args = %v", ev.Args)
		}
	}
}

// TestTracerChromeEmpty pins that a trace with no events still closes to
// valid JSON.
func TestTracerChromeEmpty(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b, FormatChrome)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty chrome trace invalid: %v %q", err, b.String())
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b, FormatJSONL)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Emit(span(i, w, "exact")) //nolint:errcheck
			}
		}(w)
	}
	wg.Wait()
	if tr.Close(); tr.Events() != 200 {
		t.Fatalf("events = %d, want 200", tr.Events())
	}
	if strings.Count(b.String(), "\n") != 200 {
		t.Fatal("interleaved writes corrupted the JSONL stream")
	}
}

func TestTracerNilAndClosed(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if err := tr.Emit(FaultSpan{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	real := NewTracer(&strings.Builder{}, FormatJSONL)
	real.Close() //nolint:errcheck
	if err := real.Emit(FaultSpan{}); err == nil {
		t.Fatal("emit after close must error")
	}
}
