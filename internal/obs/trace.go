// Per-fault event tracing: one span per analyzed fault, streamed as JSONL
// or as Chrome trace_event JSON loadable in chrome://tracing (or
// https://ui.perfetto.dev). Spans carry the fault id, the worker that
// analyzed it, the outcome, and the phase breakdown (difference-function
// build, propagation, satisfying-set count) measured by the engine.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceFormat selects the tracer's wire format.
type TraceFormat int

const (
	// FormatJSONL emits one self-contained JSON object per line.
	FormatJSONL TraceFormat = iota
	// FormatChrome emits a Chrome trace_event JSON array for
	// chrome://tracing; workers map to thread lanes.
	FormatChrome
)

// ParseTraceFormat maps a -traceformat flag value to a TraceFormat.
func ParseTraceFormat(s string) (TraceFormat, error) {
	switch s {
	case "jsonl", "":
		return FormatJSONL, nil
	case "chrome":
		return FormatChrome, nil
	}
	return 0, fmt.Errorf("obs: unknown trace format %q (jsonl, chrome)", s)
}

// FaultSpan is one per-fault trace event.
type FaultSpan struct {
	// Index is the fault's campaign index; Fault its human-readable site
	// description; Worker the engine that analyzed it.
	Index  int
	Fault  string
	Worker int
	// Outcome is "exact", "approximate" or "error" (Outcome.String).
	Outcome string
	// Start and Dur delimit the whole analysis; Build, Propagate and
	// SatCount break it into the engine's phases (zero when the engine
	// had phase timing off or the fault was degraded mid-phase).
	Start                      time.Time
	Dur                        time.Duration
	Build, Propagate, SatCount time.Duration
}

// jsonlEvent is the JSONL wire form of a FaultSpan.
type jsonlEvent struct {
	TSUS        int64  `json:"ts_us"` // µs since trace start
	DurUS       int64  `json:"dur_us"`
	Index       int    `json:"i"`
	Fault       string `json:"fault"`
	Worker      int    `json:"worker"`
	Outcome     string `json:"outcome"`
	BuildUS     int64  `json:"build_us"`
	PropagateUS int64  `json:"propagate_us"`
	SatCountUS  int64  `json:"satcount_us"`
}

// chromeEvent is the Chrome trace_event wire form ("X" = complete event).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TSUS int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Args map[string]any `json:"args"`
}

// Tracer streams FaultSpan events to a writer. Emit is safe for
// concurrent use by campaign workers; a nil *Tracer discards everything.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	format TraceFormat
	start  time.Time
	events int64
	opened bool // chrome array bracket written
	closed bool
}

// NewTracer builds a tracer over w. The caller owns w's lifetime but must
// call Close (before closing w) to finalize the stream — the Chrome
// format needs its closing bracket.
func NewTracer(w io.Writer, format TraceFormat) *Tracer {
	return &Tracer{w: w, format: format, start: time.Now()}
}

// Enabled reports whether events will be recorded (false on nil), letting
// callers skip span construction entirely when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// Events reports how many spans have been emitted (zero on nil).
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Emit writes one span event. Safe on a nil receiver (no-op).
func (t *Tracer) Emit(s FaultSpan) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("obs: emit on closed tracer")
	}
	ts := s.Start.Sub(t.start).Microseconds()
	var payload []byte
	var err error
	switch t.format {
	case FormatChrome:
		payload, err = json.Marshal(chromeEvent{
			Name: s.Fault,
			Cat:  "fault",
			Ph:   "X",
			PID:  1,
			TID:  s.Worker,
			TSUS: ts,
			Dur:  s.Dur.Microseconds(),
			Args: map[string]any{
				"index":        s.Index,
				"outcome":      s.Outcome,
				"build_us":     s.Build.Microseconds(),
				"propagate_us": s.Propagate.Microseconds(),
				"satcount_us":  s.SatCount.Microseconds(),
			},
		})
	default:
		payload, err = json.Marshal(jsonlEvent{
			TSUS:        ts,
			DurUS:       s.Dur.Microseconds(),
			Index:       s.Index,
			Fault:       s.Fault,
			Worker:      s.Worker,
			Outcome:     s.Outcome,
			BuildUS:     s.Build.Microseconds(),
			PropagateUS: s.Propagate.Microseconds(),
			SatCountUS:  s.SatCount.Microseconds(),
		})
	}
	if err != nil {
		return err
	}
	if t.format == FormatChrome {
		sep := ",\n"
		if !t.opened {
			sep = "[\n"
			t.opened = true
		}
		if _, err := io.WriteString(t.w, sep); err != nil {
			return err
		}
		if _, err := t.w.Write(payload); err != nil {
			return err
		}
	} else {
		if _, err := t.w.Write(append(payload, '\n')); err != nil {
			return err
		}
	}
	t.events++
	return nil
}

// Close finalizes the stream (writes the Chrome array's closing bracket).
// Safe on a nil receiver; idempotent.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	if t.format == FormatChrome {
		if !t.opened {
			_, err := io.WriteString(t.w, "[]\n")
			return err
		}
		_, err := io.WriteString(t.w, "\n]\n")
		return err
	}
	return nil
}
