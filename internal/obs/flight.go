// Flight recorder: a fixed-size ring buffer of structured campaign
// events — worker claims and drains, fault outcomes with op counts,
// GC/sift passes, governor park/unpark transitions, calibration bumps,
// chaos injections, checkpoint I/O and budget blows — retained in memory
// for the whole run and dumped as JSON on panic, checkpoint poisoning,
// second SIGINT, or normal completion. The ring stores compact value
// structs (enum kinds, enum labels, two generic int64 payloads); JSON
// rendering happens only at dump time, so recording stays allocation-free
// and a nil *FlightRecorder is a no-op like every other obs handle.
package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// FlightKind enumerates the event types a flight recorder retains.
type FlightKind uint8

const (
	// FlightCampaignStart opens a campaign (a = total faults).
	FlightCampaignStart FlightKind = iota
	// FlightResume records checkpoint-restored faults (a = count).
	FlightResume
	// FlightWorkerStart marks one worker goroutine starting.
	FlightWorkerStart
	// FlightWorkerClaim records a work-stealing block claim (a = first
	// fault index of the block, b = block size).
	FlightWorkerClaim
	// FlightWorkerDrain marks a worker running out of work.
	FlightWorkerDrain
	// FlightFaultDone records one analyzed fault (label = outcome,
	// a = duration µs, b = charged BDD ops).
	FlightFaultDone
	// FlightBudgetBlow records a budget/node-limit abort inside the
	// recovery ladder (a = attempt 1 or 2, b = ops charged at abort).
	FlightBudgetBlow
	// FlightGC records a generational GC pass (a = nodes reclaimed,
	// b = live nodes after).
	FlightGC
	// FlightSift records a GC pass that also sifted (same payload).
	FlightSift
	// FlightPark records the governor parking a worker (a = parked
	// count after, b = heap bytes at the decision).
	FlightPark
	// FlightUnpark records a governor unpark (a = parked count after).
	FlightUnpark
	// FlightCalibration records a calibration publish (a = budget ops,
	// b = samples in the window).
	FlightCalibration
	// FlightChaos records a chaos injection (label = chaos point,
	// index = the fault index or sequence number that keyed it).
	FlightChaos
	// FlightCheckpointAppend records one persisted record (index = fault
	// index, a = bytes written).
	FlightCheckpointAppend
	// FlightCheckpointFsync records a checkpoint fsync (a = records
	// appended so far).
	FlightCheckpointFsync
	// FlightCheckpointError records checkpointer poisoning (label =
	// append or fsync, index = the fault index being persisted).
	FlightCheckpointError
	// FlightCampaignFinish seals a campaign (label = ok or canceled,
	// a = faults analyzed, b = faults skipped).
	FlightCampaignFinish
	// FlightSpawn records the supervisor launching a worker subprocess
	// (worker = shard slot, index = shard lo, a = shard size, b = restart
	// attempt).
	FlightSpawn
	// FlightWorkerDeath records a worker subprocess dying (label = exit,
	// stall or oom; worker = shard slot, index = shard lo, a = exit code
	// or -1, b = faults the shard had completed).
	FlightWorkerDeath
	// FlightRestart records the supervisor re-dispatching a dead worker's
	// lease (label = degraded when the relaunch sheds threads/node budget;
	// worker = shard slot, index = shard lo, a = restart attempt,
	// b = backoff µs).
	FlightRestart
	// FlightBisect records a repeatedly-fatal shard being split (index =
	// shard lo, a = shard size, b = split point as global index).
	FlightBisect
	// FlightQuarantine records a poison fault isolated as an Err record
	// (index = global fault index, a = deaths the fault caused).
	FlightQuarantine

	flightKindCount
)

var flightKindNames = [flightKindCount]string{
	FlightCampaignStart:    "campaign_start",
	FlightResume:           "resume",
	FlightWorkerStart:      "worker_start",
	FlightWorkerClaim:      "claim",
	FlightWorkerDrain:      "drain",
	FlightFaultDone:        "fault",
	FlightBudgetBlow:       "budget_blow",
	FlightGC:               "gc",
	FlightSift:             "sift",
	FlightPark:             "park",
	FlightUnpark:           "unpark",
	FlightCalibration:      "calibration",
	FlightChaos:            "chaos",
	FlightCheckpointAppend: "ckpt_append",
	FlightCheckpointFsync:  "ckpt_fsync",
	FlightCheckpointError:  "ckpt_error",
	FlightCampaignFinish:   "campaign_finish",
	FlightSpawn:            "spawn",
	FlightWorkerDeath:      "worker_death",
	FlightRestart:          "restart",
	FlightBisect:           "bisect",
	FlightQuarantine:       "quarantine",
}

// String returns the kind's wire name as used in flight dumps.
func (k FlightKind) String() string {
	if k < flightKindCount {
		return flightKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FlightKindByName resolves a wire name back to its kind (ok=false for
// unknown names) — the post-mortem analyzer's parse direction.
func FlightKindByName(name string) (FlightKind, bool) {
	for k, n := range flightKindNames {
		if n == name {
			return FlightKind(k), true
		}
	}
	return 0, false
}

// Flight labels qualify an event without allocating: outcome labels for
// fault events, chaos-point labels for injections, I/O-op labels for
// checkpoint errors. Label 0 renders as no label at all.
const (
	FlightLabelNone uint8 = iota
	FlightLabelExact
	FlightLabelApproximate
	FlightLabelRescued
	FlightLabelError
	FlightLabelBudget
	FlightLabelNodeLimit
	FlightLabelPanic
	FlightLabelLatency
	FlightLabelCkptWrite
	FlightLabelCkptSync
	FlightLabelMemSample
	FlightLabelAppend
	FlightLabelFsync
	FlightLabelOK
	FlightLabelCanceled
	FlightLabelExit
	FlightLabelStall
	FlightLabelOOM
	FlightLabelDegraded
	FlightLabelWorkerKill
	FlightLabelHeartbeatStall
	FlightLabelShardTear

	flightLabelCount
)

// The chaos-point labels intentionally spell exactly like
// chaos.Point.String() names, so FlightLabelByName(p.String()) maps an
// injector's point straight to its flight label.
var flightLabelNames = [flightLabelCount]string{
	FlightLabelNone:           "",
	FlightLabelExact:          "exact",
	FlightLabelApproximate:    "approximate",
	FlightLabelRescued:        "rescued",
	FlightLabelError:          "error",
	FlightLabelBudget:         "budget",
	FlightLabelNodeLimit:      "nodelimit",
	FlightLabelPanic:          "panic",
	FlightLabelLatency:        "latency",
	FlightLabelCkptWrite:      "ckptwrite",
	FlightLabelCkptSync:       "ckptsync",
	FlightLabelMemSample:      "memsample",
	FlightLabelAppend:         "append",
	FlightLabelFsync:          "fsync",
	FlightLabelOK:             "ok",
	FlightLabelCanceled:       "canceled",
	FlightLabelExit:           "exit",
	FlightLabelStall:          "stall",
	FlightLabelOOM:            "oom",
	FlightLabelDegraded:       "degraded",
	FlightLabelWorkerKill:     "workerkill",
	FlightLabelHeartbeatStall: "hbstall",
	FlightLabelShardTear:      "shardtear",
}

// FlightLabelName returns a label's wire name ("" for none/unknown).
func FlightLabelName(l uint8) string {
	if l < flightLabelCount {
		return flightLabelNames[l]
	}
	return ""
}

// FlightLabelByName resolves a wire name to its label (FlightLabelNone
// for "" or unknown names).
func FlightLabelByName(name string) uint8 {
	if name == "" {
		return FlightLabelNone
	}
	for l := uint8(1); l < flightLabelCount; l++ {
		if flightLabelNames[l] == name {
			return l
		}
	}
	return FlightLabelNone
}

// FlightOutcomeLabel maps an analysis outcome to its flight label.
func FlightOutcomeLabel(o Outcome) uint8 {
	switch o {
	case OutcomeExact:
		return FlightLabelExact
	case OutcomeApproximate:
		return FlightLabelApproximate
	case OutcomeRescued:
		return FlightLabelRescued
	default:
		return FlightLabelError
	}
}

// flightSlot is one ring entry — a value struct so the ring is a single
// allocation at construction and recording never allocates.
type flightSlot struct {
	seq    uint64
	tns    int64 // nanoseconds since recorder start
	kind   FlightKind
	label  uint8
	worker int32
	index  int32
	a, b   int64
}

// FlightRecorder is a mutex-guarded fixed ring of flight events. When the
// ring wraps, the oldest events are overwritten and counted as dropped —
// the dump reports both totals so consumers can tell a complete history
// from a truncated one. All methods are nil-safe.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []flightSlot
	next  uint64 // total events ever recorded; next slot = next % len(ring)
	start time.Time
}

// DefaultFlightEvents is the ring capacity used when NewFlightRecorder is
// given a non-positive one: at ~56 bytes a slot, under 1 MiB of history.
const DefaultFlightEvents = 16384

// NewFlightRecorder builds a recorder retaining the last capacity events
// (DefaultFlightEvents when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &FlightRecorder{ring: make([]flightSlot, capacity), start: time.Now()}
}

// Record appends one event to the ring. Safe on a nil receiver (no-op)
// and for concurrent use; never allocates.
func (r *FlightRecorder) Record(kind FlightKind, label uint8, worker, index int, a, b int64) {
	if r == nil {
		return
	}
	t := time.Since(r.start)
	r.mu.Lock()
	s := &r.ring[r.next%uint64(len(r.ring))]
	s.seq = r.next
	s.tns = int64(t)
	s.kind = kind
	s.label = label
	s.worker = int32(worker)
	s.index = int32(index)
	s.a = a
	s.b = b
	r.next++
	r.mu.Unlock()
}

// Total reports how many events were ever recorded and how many of them
// the ring has already overwritten (zero on a nil receiver).
func (r *FlightRecorder) Total() (total, dropped uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	total = r.next
	if n := uint64(len(r.ring)); total > n {
		dropped = total - n
	}
	return total, dropped
}

// FlightEvent is the JSON wire form of one recorded event.
type FlightEvent struct {
	Seq    uint64 `json:"seq"`
	TUS    int64  `json:"t_us"`
	Kind   string `json:"kind"`
	Worker int    `json:"worker"`
	Index  int    `json:"i"`
	Label  string `json:"label,omitempty"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

// Snapshot renders the retained events oldest-first (nil on a nil
// receiver). This is the only place flight data allocates.
func (r *FlightRecorder) Snapshot() []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.ring))
	lo := uint64(0)
	if r.next > n {
		lo = r.next - n
	}
	out := make([]FlightEvent, 0, r.next-lo)
	for seq := lo; seq < r.next; seq++ {
		s := &r.ring[seq%n]
		out = append(out, FlightEvent{
			Seq:    s.seq,
			TUS:    s.tns / 1e3,
			Kind:   s.kind.String(),
			Worker: int(s.worker),
			Index:  int(s.index),
			Label:  FlightLabelName(s.label),
			A:      s.a,
			B:      s.b,
		})
	}
	return out
}

// FlightDumpVersion is the schema version written into flight dumps.
const FlightDumpVersion = 1

// FlightDump is the JSON document written to the flight file: the event
// history plus the timeline samples, the fault-latency histogram, and the
// final campaign heartbeats taken at dump time.
type FlightDump struct {
	Version       int    `json:"version"`
	Program       string `json:"program"`
	Reason        string `json:"reason"`
	StartUnixMS   int64  `json:"start_unix_ms"`
	DumpUnixMS    int64  `json:"dump_unix_ms"`
	EventsTotal   uint64 `json:"events_total"`
	EventsDropped uint64 `json:"events_dropped"`

	Events       []FlightEvent      `json:"events"`
	Timeline     []TimelineSample   `json:"timeline,omitempty"`
	FaultLatency *HistogramSnapshot `json:"fault_latency,omitempty"`
	// ConeGates is the per-fault merged fan-out-cone-size distribution
	// (the post-mortem scheduling section's raw material).
	ConeGates *HistogramSnapshot `json:"cone_gates,omitempty"`
	Campaigns []CampaignSnapshot `json:"campaigns,omitempty"`
}

// BuildFlightDump assembles a dump document from the observer's flight
// recorder, timeline and heartbeats. Returns nil when the observer or its
// flight recorder is nil.
func (o *Observer) BuildFlightDump(program, reason string) *FlightDump {
	if o == nil || o.Flight == nil {
		return nil
	}
	total, dropped := o.Flight.Total()
	d := &FlightDump{
		Version:       FlightDumpVersion,
		Program:       program,
		Reason:        reason,
		StartUnixMS:   o.Flight.start.UnixMilli(),
		DumpUnixMS:    time.Now().UnixMilli(),
		EventsTotal:   total,
		EventsDropped: dropped,
		Events:        o.Flight.Snapshot(),
	}
	if tl := o.Timeline(); tl != nil {
		d.Timeline = tl.Snapshot()
	}
	if o.Metrics != nil {
		if h := o.CampaignMetrics().FaultLatency; h.Count() > 0 {
			s := h.Snapshot()
			d.FaultLatency = &s
		}
		if h := o.CampaignMetrics().ConeGates; h.Count() > 0 {
			s := h.Snapshot()
			d.ConeGates = &s
		}
	}
	if cs := o.Progress().Campaigns; len(cs) > 0 {
		d.Campaigns = cs
	}
	return d
}

// WriteFlightDump writes the dump JSON to path. Returns (false, nil) when
// there is nothing to dump (nil observer or no flight recorder), so
// callers can report only dumps that actually happened.
func (o *Observer) WriteFlightDump(path, program, reason string) (bool, error) {
	d := o.BuildFlightDump(program, reason)
	if d == nil {
		return false, nil
	}
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return false, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return false, err
	}
	return true, nil
}

// ReadFlightDump parses a flight dump file (the post-mortem analyzer's
// ingest path).
func ReadFlightDump(path string) (*FlightDump, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d FlightDump
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("flight dump %s: %w", path, err)
	}
	if d.Version != FlightDumpVersion {
		return nil, fmt.Errorf("flight dump %s: unsupported version %d (want %d)", path, d.Version, FlightDumpVersion)
	}
	return &d, nil
}
