package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestCampaignHeartbeatLifecycle(t *testing.T) {
	o := &Observer{}
	c := o.StartCampaign("stuckat c95s", 100)
	c.AddResumed(10)
	for i := 0; i < 60; i++ {
		c.FaultDone(OutcomeExact)
	}
	for i := 0; i < 5; i++ {
		c.FaultDone(OutcomeApproximate)
	}
	c.FaultDone(OutcomeError)

	s := c.Snapshot()
	if s.Done != 76 || s.Analyzed != 66 || s.Exact != 60 || s.Degraded != 5 || s.Errored != 1 || s.Resumed != 10 {
		t.Fatalf("mid-campaign snapshot %+v", s)
	}
	if s.Finished || s.Canceled || s.Skipped != 0 {
		t.Fatalf("snapshot finished early: %+v", s)
	}

	c.Finish(true)
	s = c.Snapshot()
	if !s.Finished || !s.Canceled {
		t.Fatalf("finish not recorded: %+v", s)
	}
	if s.Skipped != 24 { // 100 total − 76 done
		t.Fatalf("skipped = %d, want 24", s.Skipped)
	}
	if s.ETASec != 0 {
		t.Fatalf("finished campaign still projects ETA %f", s.ETASec)
	}
	if s.Done+s.Skipped != s.Total {
		t.Fatalf("done %d + skipped %d != total %d", s.Done, s.Skipped, s.Total)
	}
}

func TestCampaignConcurrentFaultDone(t *testing.T) {
	o := &Observer{}
	c := o.StartCampaign("x", 4*250)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				c.FaultDone(OutcomeExact)
			}
		}()
	}
	wg.Wait()
	c.Finish(false)
	s := c.Snapshot()
	if s.Done != 1000 || s.Exact != 1000 || s.Skipped != 0 {
		t.Fatalf("concurrent heartbeat lost updates: %+v", s)
	}
}

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	if o.Logger() == nil {
		t.Fatal("nil observer Logger() must not be nil")
	}
	o.Logger().Info("discarded")
	c := o.StartCampaign("x", 5)
	if c != nil {
		t.Fatal("nil observer must hand out a nil campaign")
	}
	c.FaultDone(OutcomeExact)
	c.AddResumed(3)
	c.Finish(false)
	if s := c.Snapshot(); s != (CampaignSnapshot{}) {
		t.Fatalf("nil campaign snapshot = %+v, want zero", s)
	}
	if got := o.Progress(); len(got.Campaigns) != 0 {
		t.Fatalf("nil observer progress %+v", got)
	}
	cm := o.CampaignMetrics()
	if cm == nil {
		t.Fatal("CampaignMetrics must never return nil")
	}
	cm.FaultsDone.Inc()
	cm.FaultLatency.Observe(0.1)
	cm.BDDPeakNodes.SetMax(100)
}

func TestCampaignMetricsRegisteredOnce(t *testing.T) {
	o := &Observer{Metrics: NewRegistry()}
	a := o.CampaignMetrics()
	b := o.CampaignMetrics()
	if a != b {
		t.Fatal("CampaignMetrics must be registered once per observer")
	}
	a.FaultsDone.Inc()
	if b.FaultsDone.Value() != 1 {
		t.Fatal("metric handles differ across CampaignMetrics calls")
	}
	o.StartCampaign("x", 1)
	if a.CampaignsRunning.Value() != 1 {
		t.Fatalf("campaigns_running = %d, want 1", a.CampaignsRunning.Value())
	}
	var buf strings.Builder
	if err := o.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bdd_cache_hit_ratio 0") {
		t.Fatal("cache hit ratio gauge func missing from exposition")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeExact:       "exact",
		OutcomeApproximate: "approximate",
		OutcomeError:       "error",
	} {
		if o.String() != want {
			t.Fatalf("Outcome(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}

func TestNopLoggerAllocFree(t *testing.T) {
	log := Nop()
	allocs := testing.AllocsPerRun(1000, func() {
		log.Debug("skipped", "fault", 7, "ops", 12345)
	})
	if allocs != 0 {
		t.Fatalf("nop logger allocated %.1f times per disabled log call, want 0", allocs)
	}
}

func TestParseLevelAndNewLogger(t *testing.T) {
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("bad level must error")
	}
	lv, err := ParseLevel("warn")
	if err != nil || lv != slog.LevelWarn {
		t.Fatalf("ParseLevel(warn) = %v, %v", lv, err)
	}
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo, true)
	log.Info("hello", "k", "v")
	if !strings.Contains(buf.String(), `"msg":"hello"`) {
		t.Fatalf("json logger output %q", buf.String())
	}
	log.Debug("below level")
	if strings.Contains(buf.String(), "below level") {
		t.Fatal("level filtering broken")
	}
}
