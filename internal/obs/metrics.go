// Metrics: lock-free counters, gauges and histograms with Prometheus-text
// and expvar export.
//
// Every metric type is nil-safe: methods on a nil *Counter, *Gauge or
// *Histogram return immediately, so instrumented code can hold nil handles
// when observability is off and pay exactly one pointer comparison on the
// hot path — no allocation, no atomic, no branch into the slow path. This
// is what keeps the per-fault analysis loop allocation-free with metrics
// disabled (enforced by the CI allocation guard).
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n. Safe on a nil receiver (no-op).
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// SetMax raises the gauge to n if n is larger (high-water marks such as
// peak BDD node counts). Safe on a nil receiver (no-op).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Add adjusts the gauge by n. Safe on a nil receiver (no-op).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counters.
// Buckets are defined by ascending upper bounds; one overflow bucket
// (+Inf) is implicit.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefaultLatencyBuckets spans 100µs to 60s exponentially — wide enough to
// cover both trivial shallow faults and deep-circuit analyses that are
// about to blow a wall-clock budget.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// NewHistogram builds a histogram over the ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. Safe on a nil receiver (no-op) and for
// concurrent use.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (zero on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (zero on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramSnapshot is a consistent-enough point-in-time view: per-bucket
// counts (last bucket is +Inf), total count, and value sum.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot captures the histogram's current state (zero value on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank, the standard
// Prometheus-style histogram_quantile estimate. The first bucket
// interpolates from 0; ranks landing in the +Inf overflow bucket clamp to
// the last finite bound (there is no upper edge to interpolate toward).
// An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := float64(0)
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		if cum+float64(n) < rank {
			cum += float64(n)
			continue
		}
		if i >= len(s.Bounds) {
			break // +Inf bucket: clamp below
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		return lower + (upper-lower)*(rank-cum)/float64(n)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// metricKind tags a registry entry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type entry struct {
	name, help string
	kind       metricKind
	c          *Counter
	g          *Gauge
	fn         func() float64
	h          *Histogram
}

// Registry holds named metrics and renders them as Prometheus text
// exposition format or an expvar map. Registration is idempotent by name;
// a nil *Registry hands out nil metric handles, so callers can register
// unconditionally and stay on the no-op path when observability is off.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byName  map[string]*entry
}

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*entry{}}
}

func (r *Registry) register(name, help string, kind metricKind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind}
	r.byName[name] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter registers (or returns the existing) counter under name.
// A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	e := r.register(name, help, kindCounter)
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.register(name, help, kindGauge)
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// GaugeFunc registers a computed gauge whose value is read at export time
// (derived quantities such as cache hit ratios).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	e := r.register(name, help, kindGaugeFunc)
	e.fn = fn
}

// Histogram registers (or returns the existing) histogram under name,
// with the given ascending bucket upper bounds (DefaultLatencyBuckets
// when empty).
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	e := r.register(name, help, kindHistogram)
	if e.h == nil {
		e.h = NewHistogram(bounds...)
	}
	return e.h
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	for _, e := range entries {
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", e.name, e.help, e.name, e.name, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", e.name, e.help, e.name, e.name, e.g.Value())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", e.name, e.help, e.name, e.name, e.fn())
		case kindHistogram:
			err = writePromHistogram(w, e.name, e.help, e.h.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name, help string, s HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	cum := int64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	if len(s.Counts) > 0 {
		cum += s.Counts[len(s.Counts)-1]
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n", name, cum, name, s.Sum, name, s.Count)
	return err
}

func formatFloat(f float64) string { return fmt.Sprintf("%g", f) }

// Handler serves the registry as a Prometheus /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // best-effort over HTTP
	})
}

// Snapshot returns every metric as a name → value map (histograms become
// {count, sum, buckets} maps); the expvar export serves this.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			out[e.name] = e.c.Value()
		case kindGauge:
			out[e.name] = e.g.Value()
		case kindGaugeFunc:
			out[e.name] = e.fn()
		case kindHistogram:
			s := e.h.Snapshot()
			out[e.name] = map[string]any{"count": s.Count, "sum": s.Sum, "buckets": s.Counts}
		}
	}
	return out
}

// expvarMu guards the published-name set; expvar.Publish panics on
// duplicates, so re-publishing (tests, repeated runs in one process) swaps
// the registry behind the existing name instead.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]*atomic.Pointer[Registry]{}
)

// PublishExpvar exposes the registry's snapshot under the given expvar
// name (served at /debug/vars). Publishing the same name again rebinds it
// to the new registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if p, ok := expvarPublished[name]; ok {
		p.Store(r)
		return
	}
	p := &atomic.Pointer[Registry]{}
	p.Store(r)
	expvarPublished[name] = p
	expvar.Publish(name, expvar.Func(func() any { return p.Load().Snapshot() }))
}
