// Structured-logging helpers: a no-op logger for the disabled path and a
// small constructor for the -log command-line flags.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// nopHandler rejects every record before it is built, so a Nop logger
// costs one interface call per log site and never allocates.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

var nopLogger = slog.New(nopHandler{})

// Nop returns a logger that discards everything (shared instance; safe
// for concurrent use).
func Nop() *slog.Logger { return nopLogger }

// ParseLevel maps a -log flag value to a slog level. The empty string is
// rejected — callers treat it as "logging off" before getting here.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
}

// NewLogger builds a structured logger writing to w at the given level,
// as logfmt-style text or JSON.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
