package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeHistogramConcurrency hammers every metric type from many
// goroutines; run under -race (the CI obs job does) this doubles as the
// data-race check, and the final totals prove no increment was lost.
func TestCounterGaugeHistogramConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	g := r.Gauge("g", "test gauge")
	h := r.Histogram("h_seconds", "test histogram", 0.001, 0.01, 0.1, 1)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				h.Observe(0.005)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per-1 {
		t.Fatalf("gauge max = %d, want %d", g.Value(), workers*per-1)
	}
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*per)
	}
	if s.Counts[1] != workers*per {
		t.Fatalf("0.005 observations landed in buckets %v, want all in le=0.01", s.Counts)
	}
	if math.Abs(s.Sum-workers*per*0.005) > 1e-6 {
		t.Fatalf("histogram sum = %f, want %f", s.Sum, workers*per*0.005)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 1, 1, 1} // le=1: {0.5, 1}; le=2: {1.5}; le=4: {3}; +Inf: {100}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
		}
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("faults_done_total", "done").Add(7)
	r.Gauge("nodes", "nodes").Set(42)
	r.GaugeFunc("ratio", "ratio", func() float64 { return 0.5 })
	h := r.Histogram("lat_seconds", "latency", 1, 10)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE faults_done_total counter",
		"faults_done_total 7",
		"# TYPE nodes gauge",
		"nodes 42",
		"ratio 0.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="10"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 55.5",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryIdempotent pins that re-registering a name returns the same
// metric: two packages asking for the same counter share it.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("re-registration built a second counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter lost an increment")
	}
}

// TestNilSafety drives every metric operation through nil receivers — the
// default-off path of instrumented code.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.SetMax(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if r.Counter("a", "") != nil || r.Gauge("b", "") != nil || r.Histogram("c", "") != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	r.GaugeFunc("d", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestNilMetricsAllocFree pins the disabled metric path at zero
// allocations — the same guarantee the analysis hot loop relies on.
func TestNilMetricsAllocFree(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.SetMax(9)
		h.Observe(1.5)
	})
	if allocs != 0 {
		t.Fatalf("nil metric ops allocated %.1f times per run, want 0", allocs)
	}
}

func TestPublishExpvarRebind(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("a_total", "a").Add(1)
	r1.PublishExpvar("obs_test_registry")
	// Publishing the same name again must rebind, not panic.
	r2 := NewRegistry()
	r2.Counter("a_total", "a").Add(2)
	r2.PublishExpvar("obs_test_registry")
	if got := r2.Snapshot()["a_total"]; got != int64(2) {
		t.Fatalf("snapshot a_total = %v, want 2", got)
	}
}
