package obs

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestFlightRecorderRingWrap(t *testing.T) {
	r := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		r.Record(FlightFaultDone, FlightLabelExact, i%4, i, int64(i*10), int64(i))
	}
	total, dropped := r.Total()
	if total != 20 || dropped != 12 {
		t.Fatalf("Total() = (%d, %d), want (20, 12)", total, dropped)
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("Snapshot() kept %d events, want ring capacity 8", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(12 + i) // oldest surviving event first
		if ev.Seq != wantSeq {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Index != 12+i || ev.A != int64((12+i)*10) {
			t.Errorf("event %d: payload {i:%d a:%d}, want {i:%d a:%d}", i, ev.Index, ev.A, 12+i, (12+i)*10)
		}
		if ev.Kind != "fault" || ev.Label != "exact" {
			t.Errorf("event %d: kind/label %q/%q, want fault/exact", i, ev.Kind, ev.Label)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var r *FlightRecorder
	r.Record(FlightGC, FlightLabelNone, 0, 0, 1, 2) // must not panic
	if total, dropped := r.Total(); total != 0 || dropped != 0 {
		t.Fatalf("nil Total() = (%d, %d), want zeros", total, dropped)
	}
	if evs := r.Snapshot(); evs != nil {
		t.Fatalf("nil Snapshot() = %v, want nil", evs)
	}
	var o *Observer
	if d := o.BuildFlightDump("x", "y"); d != nil {
		t.Fatalf("nil BuildFlightDump() = %v, want nil", d)
	}
	if ok, err := o.WriteFlightDump("/nonexistent/x", "x", "y"); ok || err != nil {
		t.Fatalf("nil WriteFlightDump() = (%v, %v), want (false, nil)", ok, err)
	}
}

func TestFlightKindLabelNameRoundTrip(t *testing.T) {
	for k := FlightKind(0); k < flightKindCount; k++ {
		got, ok := FlightKindByName(k.String())
		if !ok || got != k {
			t.Errorf("kind %d: round trip via %q gave (%d, %v)", k, k.String(), got, ok)
		}
	}
	for l := FlightLabelNone; l <= FlightLabelCanceled; l++ {
		if got := FlightLabelByName(FlightLabelName(l)); got != l {
			t.Errorf("label %d: round trip via %q gave %d", l, FlightLabelName(l), got)
		}
	}
	if _, ok := FlightKindByName("no-such-kind"); ok {
		t.Error("FlightKindByName accepted an unknown name")
	}
}

func TestFlightDumpWriteReadRoundTrip(t *testing.T) {
	o := &Observer{Metrics: NewRegistry(), Flight: NewFlightRecorder(64)}
	o.Flight.Record(FlightCampaignStart, FlightLabelNone, -1, -1, 10, 0)
	for i := 0; i < 10; i++ {
		o.Flight.Record(FlightFaultDone, FlightLabelExact, i%2, i, 100, 50)
		o.CampaignMetrics().FaultLatency.Observe(0.0001)
	}
	o.Flight.Record(FlightCampaignFinish, FlightLabelOK, -1, -1, 10, 0)

	path := filepath.Join(t.TempDir(), "run.flight.json")
	ok, err := o.WriteFlightDump(path, "test", "completed")
	if err != nil || !ok {
		t.Fatalf("WriteFlightDump = (%v, %v)", ok, err)
	}
	d, err := ReadFlightDump(path)
	if err != nil {
		t.Fatalf("ReadFlightDump: %v", err)
	}
	if d.Version != FlightDumpVersion || d.Program != "test" || d.Reason != "completed" {
		t.Fatalf("header = %+v", d)
	}
	if d.EventsTotal != 12 || d.EventsDropped != 0 || len(d.Events) != 12 {
		t.Fatalf("events: total %d dropped %d len %d, want 12/0/12", d.EventsTotal, d.EventsDropped, len(d.Events))
	}
	if d.FaultLatency == nil || d.FaultLatency.Count != 10 {
		t.Fatalf("FaultLatency = %+v, want 10 samples", d.FaultLatency)
	}
	if d.Events[0].Kind != "campaign_start" || d.Events[11].Kind != "campaign_finish" {
		t.Fatalf("event order: first %q last %q", d.Events[0].Kind, d.Events[11].Kind)
	}
}

func TestReadFlightDumpRejectsBadVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.flight.json")
	if err := os.WriteFile(path, []byte(`{"version": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlightDump(path); err == nil {
		t.Fatal("ReadFlightDump accepted an unknown version")
	}
}

func TestFlightRecorderConcurrentRecord(t *testing.T) {
	r := NewFlightRecorder(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(FlightFaultDone, FlightLabelExact, w, i, 1, 2)
			}
		}(w)
	}
	wg.Wait()
	total, dropped := r.Total()
	if total != 800 || dropped != 800-128 {
		t.Fatalf("Total() = (%d, %d), want (800, %d)", total, dropped, 800-128)
	}
	evs := r.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("snapshot not seq-ordered at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
